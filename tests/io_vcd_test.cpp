// Tests for io::VcdWriter: header/declaration structure, per-sequence
// scopes, initial-x dumpvars, change-only emission with strictly
// increasing timestamps, value agreement with the replayed trace, name
// sanitization, shape validation, and byte determinism.
#include "io/vcd.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/blif.hpp"
#include "sym/circuit_replay.hpp"

namespace simcov::io {
namespace {

sym::SequentialCircuit toggle_circuit() {
  // One input, one latch (t' = en ^ t), outputs q (the latch) and en's
  // complement — enough to see input, state and output columns move.
  return BlifReader()
      .read_string(
          ".model toggle\n"
          ".inputs en\n"
          ".outputs q nen\n"
          ".latch nt q 0\n"
          ".names en q nt\n01 1\n10 1\n"
          ".names en nen\n0 1\n"
          ".end\n")
      .circuit;
}

std::vector<std::vector<bool>> bits(std::initializer_list<int> steps) {
  std::vector<std::vector<bool>> out;
  for (int v : steps) out.push_back({v != 0});
  return out;
}

/// Minimal structural VCD check: every declared id is unique per scope,
/// every value change refers to a declared id, timestamps strictly
/// increase, and `$dumpvars` covers every id with 'x'.
struct ParsedVcd {
  std::set<std::string> ids;
  std::vector<std::string> scopes;
  std::size_t num_changes = 0;
  std::map<std::string, char> final_value;
};

ParsedVcd parse_vcd(const std::string& text) {
  ParsedVcd parsed;
  std::istringstream in(text);
  std::string line;
  long last_time = -1;
  bool in_dump = false;
  std::set<std::string> dumped;
  bool definitions_done = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream tok(line);
    std::string first;
    tok >> first;
    if (first == "$scope") {
      std::string kind, name;
      tok >> kind >> name;
      EXPECT_EQ(kind, "module") << line;
      parsed.scopes.push_back(name);
    } else if (first == "$var") {
      std::string kind, width, id, name;
      tok >> kind >> width >> id >> name;
      EXPECT_EQ(kind, "wire") << line;
      EXPECT_EQ(width, "1") << line;
      EXPECT_FALSE(id.empty()) << line;
      parsed.ids.insert(id);
    } else if (first == "$enddefinitions") {
      definitions_done = true;
    } else if (first == "$dumpvars") {
      in_dump = true;
    } else if (first == "$end" && in_dump) {
      in_dump = false;
      EXPECT_EQ(dumped, parsed.ids) << "$dumpvars must cover every $var";
    } else if (first[0] == '#') {
      const long t = std::stol(first.substr(1));
      EXPECT_GT(t, last_time) << "timestamps must strictly increase";
      last_time = t;
    } else if (first[0] == '0' || first[0] == '1' || first[0] == 'x') {
      EXPECT_TRUE(definitions_done || in_dump) << line;
      const std::string id = first.substr(1);
      EXPECT_TRUE(parsed.ids.count(id)) << "undeclared id in: " << line;
      if (in_dump) {
        EXPECT_EQ(first[0], 'x') << "$dumpvars must initialize to x";
        dumped.insert(id);
      } else {
        ++parsed.num_changes;
      }
      parsed.final_value[id] = first[0];
    }
  }
  EXPECT_TRUE(definitions_done);
  return parsed;
}

TEST(VcdWriterTest, DeclaresOneScopePerSequenceWithAllSignals) {
  const auto circuit = toggle_circuit();
  VcdWriter vcd(circuit, "toggle");
  vcd.add_sequence("seq0", sym::replay_sequence(circuit, bits({1, 1, 0})));
  vcd.add_sequence("seq1", sym::replay_sequence(circuit, bits({0, 1})));
  EXPECT_EQ(vcd.num_sequences(), 2u);

  const std::string text = vcd.to_string();
  const auto parsed = parse_vcd(text);
  ASSERT_EQ(parsed.scopes.size(), 3u);  // top module + one per sequence
  EXPECT_EQ(parsed.scopes[0], "toggle");
  EXPECT_EQ(parsed.scopes[1], "seq0");
  EXPECT_EQ(parsed.scopes[2], "seq1");
  // 2 sequences x (1 PI + 1 latch + 2 outputs) distinct ids.
  EXPECT_EQ(parsed.ids.size(), 8u);
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);
  EXPECT_NE(text.find(" en "), std::string::npos);
  EXPECT_NE(text.find(" q "), std::string::npos);
  EXPECT_NE(text.find(" nen "), std::string::npos);
}

TEST(VcdWriterTest, ValuesMatchTheReplayedTrace) {
  const auto circuit = toggle_circuit();
  const auto trace = sym::replay_sequence(circuit, bits({1, 1, 1}));
  // q toggles 0,1,0 across the three cycles and ends at 1.
  ASSERT_EQ(trace.steps, 3u);
  EXPECT_FALSE(trace.states[0][0]);
  EXPECT_TRUE(trace.states[1][0]);
  EXPECT_FALSE(trace.states[2][0]);
  EXPECT_TRUE(trace.states[3][0]);

  VcdWriter vcd(circuit);
  vcd.add_sequence("s", trace);
  const std::string text = vcd.to_string();
  const auto parsed = parse_vcd(text);
  // The final sample of every signal is parked at x except the latch,
  // whose trailing tick exposes the final state... which is itself parked
  // after the sequence ends — but this is the last sequence, so the final
  // latch value (1) survives as the last change before the closing time.
  // There must be at least one change per signal beyond the dump.
  EXPECT_GE(parsed.num_changes, 8u);
  // Timeline: 3 cycles + trailing tick => final timestamp is 4.
  EXPECT_NE(text.find("\n#4\n"), std::string::npos);
}

TEST(VcdWriterTest, SequencesPlayBackToBackOnOneTimeline) {
  const auto circuit = toggle_circuit();
  VcdWriter vcd(circuit);
  vcd.add_sequence("a", sym::replay_sequence(circuit, bits({1, 0})));
  vcd.add_sequence("b", sym::replay_sequence(circuit, bits({1})));
  const std::string text = vcd.to_string();
  // seq a occupies [0,3) (2 cycles + trailing tick), seq b starts at 3.
  EXPECT_NE(text.find("\n#3\n"), std::string::npos);
  EXPECT_NE(text.find("\n#5\n"), std::string::npos);
  (void)parse_vcd(text);  // structural checks (monotonic time, ids)
}

TEST(VcdWriterTest, SanitizesScopeAndSignalNames) {
  const auto circuit = toggle_circuit();
  VcdWriter vcd(circuit, "my top");
  vcd.add_sequence("seq one", sym::replay_sequence(circuit, bits({1})));
  const std::string text = vcd.to_string();
  EXPECT_NE(text.find("$scope module my_top"), std::string::npos);
  EXPECT_NE(text.find("$scope module seq_one"), std::string::npos);
}

TEST(VcdWriterTest, RejectsTracesWithMismatchedShape) {
  const auto circuit = toggle_circuit();
  const auto other = BlifReader()
                         .read_string(
                             ".inputs a b\n.outputs y\n"
                             ".names a b y\n11 1\n.end\n")
                         .circuit;
  VcdWriter vcd(circuit);
  const std::vector<std::vector<bool>> two_wide{{true, true}};
  EXPECT_THROW(
      vcd.add_sequence("bad", sym::replay_sequence(other, two_wide)),
      std::invalid_argument);
  // A well-shaped trace is still accepted afterwards.
  vcd.add_sequence("good", sym::replay_sequence(circuit, bits({1})));
  EXPECT_EQ(vcd.num_sequences(), 1u);
}

TEST(VcdWriterTest, OutputIsByteDeterministic) {
  const auto circuit = toggle_circuit();
  const auto make = [&] {
    VcdWriter vcd(circuit, "det");
    vcd.add_sequence("s0", sym::replay_sequence(circuit, bits({1, 0, 1})));
    vcd.add_sequence("s1", sym::replay_sequence(circuit, bits({0, 0})));
    return vcd.to_string();
  };
  EXPECT_EQ(make(), make());
  // No wall-clock leakage: a VCD $date section would break cold/warm diffs.
  EXPECT_EQ(make().find("$date"), std::string::npos);
}

TEST(VcdWriterTest, WriteFileFailsOnUnwritablePath) {
  const auto circuit = toggle_circuit();
  VcdWriter vcd(circuit);
  vcd.add_sequence("s", sym::replay_sequence(circuit, bits({1})));
  EXPECT_THROW(vcd.write_file("/nonexistent-dir/x.vcd"), std::runtime_error);
}

}  // namespace
}  // namespace simcov::io
