// Tests for the observability subsystem: the log2 histogram bucket scheme,
// MetricsRegistry's event -> metric folding, CounterRecorder gauge (max)
// semantics, the JSONL sink's flush boundaries, the coverage-telemetry
// curve builder and collector, and the Perfetto / Prometheus exporters'
// output formats.
#include "obs/coverage_telemetry.hpp"
#include "obs/event_sink.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fsm/mealy.hpp"
#include "model/explicit_model.hpp"

namespace simcov {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() /
         (std::string("simcov_obs_test_") + name);
}

// ---------------------------------------------------------------------------
// Histogram bucket scheme
// ---------------------------------------------------------------------------

TEST(HistogramBuckets, IndexIsBitWidthClampedToLastBucket) {
  EXPECT_EQ(obs::histogram_bucket_index(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(1), 1u);
  EXPECT_EQ(obs::histogram_bucket_index(2), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(3), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(4), 3u);
  EXPECT_EQ(obs::histogram_bucket_index(255), 8u);
  EXPECT_EQ(obs::histogram_bucket_index(256), 9u);
  EXPECT_EQ(obs::histogram_bucket_index(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(obs::histogram_bucket_index(std::uint64_t{1} << 63), 63u);
  EXPECT_EQ(
      obs::histogram_bucket_index(std::numeric_limits<std::uint64_t>::max()),
      63u);
}

TEST(HistogramBuckets, UpperBoundsArePowerOfTwoMinusOne) {
  EXPECT_EQ(obs::histogram_bucket_upper_bound(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_upper_bound(1), 1u);
  EXPECT_EQ(obs::histogram_bucket_upper_bound(2), 3u);
  EXPECT_EQ(obs::histogram_bucket_upper_bound(8), 255u);
  EXPECT_EQ(obs::histogram_bucket_upper_bound(obs::kHistogramBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HistogramBuckets, EveryValueFallsWithinItsBucketBound) {
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{7}, std::uint64_t{8},
                                std::uint64_t{1000}, std::uint64_t{1} << 40}) {
    const std::size_t i = obs::histogram_bucket_index(v);
    EXPECT_LE(v, obs::histogram_bucket_upper_bound(i)) << "v=" << v;
    if (i > 0) {
      EXPECT_GT(v, obs::histogram_bucket_upper_bound(i - 1)) << "v=" << v;
    }
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersSumAndGaugesMax) {
  obs::MetricsRegistry reg;
  reg.counter(obs::Stage::kTour, "store.hit", 2);
  reg.counter(obs::Stage::kTour, "store.hit", 3);
  reg.gauge(obs::Stage::kTour, "in_flight", 4);
  reg.gauge(obs::Stage::kTour, "in_flight", 2);  // lower: must not win

  const auto s = reg.summary();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].stage, obs::Stage::kTour);
  EXPECT_EQ(s.counters[0].name, "store.hit");
  EXPECT_EQ(s.counters[0].value, 5u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].value, 4u);
}

TEST(MetricsRegistry, EventVocabularyMapsToNamedHistograms) {
  obs::MetricsRegistry reg;
  reg.span(obs::Stage::kSimulate, 1e-6);                     // -> span_ns=1000
  reg.item(obs::Stage::kTour, "sequence", 0, 5);             // -> sequence=5
  reg.latency(obs::Stage::kConcretize, "program", 7, 2e-9);  // -> ..._ns=2

  const auto s = reg.summary();
  ASSERT_EQ(s.histograms.size(), 3u);
  // Deterministic (stage, name) order: kTour < kConcretize < kSimulate.
  EXPECT_EQ(s.histograms[0].stage, obs::Stage::kTour);
  EXPECT_EQ(s.histograms[0].name, "sequence");
  EXPECT_EQ(s.histograms[0].value.sum, 5u);
  EXPECT_EQ(s.histograms[1].stage, obs::Stage::kConcretize);
  EXPECT_EQ(s.histograms[1].name, "program.latency_ns");
  EXPECT_EQ(s.histograms[1].value.sum, 2u);
  EXPECT_EQ(s.histograms[2].stage, obs::Stage::kSimulate);
  EXPECT_EQ(s.histograms[2].name, "span_ns");
  EXPECT_EQ(s.histograms[2].value.sum, 1000u);
}

TEST(MetricsRegistry, QuantilesAreBucketUpperBoundsAndMaxIsExact) {
  obs::MetricsRegistry reg;
  // 90 small values in bucket 1 (ub 1), 10 larger in bucket 4 (ub 15).
  for (int i = 0; i < 90; ++i) reg.observe(obs::Stage::kTour, "h", 1);
  for (int i = 0; i < 10; ++i) reg.observe(obs::Stage::kTour, "h", 12);

  const auto s = reg.summary();
  ASSERT_EQ(s.histograms.size(), 1u);
  const auto& h = s.histograms[0].value;
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.sum, 90u + 120u);
  EXPECT_EQ(h.max, 12u);  // exact, not a bucket bound
  EXPECT_EQ(h.p50, 1u);
  EXPECT_EQ(h.p90, 1u);   // rank 90 still lands in the first bucket
  EXPECT_EQ(h.p99, 15u);  // rank 99 crosses into the bucket of 12
  EXPECT_EQ(h.buckets[obs::histogram_bucket_index(1)], 90u);
  EXPECT_EQ(h.buckets[obs::histogram_bucket_index(12)], 10u);
}

TEST(MetricsRegistry, ConcurrentObservationsAreAllCounted) {
  obs::MetricsRegistry reg;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        reg.add_counter(obs::Stage::kSimulate, "n", 1);
        reg.observe(obs::Stage::kSimulate, "v", i);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto s = reg.summary();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].value, kThreads * kPerThread);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].value.count, kThreads * kPerThread);
  EXPECT_EQ(s.histograms[0].value.max, kPerThread - 1);
}

TEST(MetricsRegistry, SnapshotWhileFoldingIsSafeAndMonotonic) {
  // The live monitor scrapes summary() from its watchdog/HTTP threads
  // while the campaign folds events concurrently. Any intermediate
  // snapshot must be internally sane (no torn reads: count covers every
  // bucketed observation) and the per-name counts must only grow; the
  // final snapshot after joining must be exact. Run under TSan in CI.
  obs::MetricsRegistry reg;
  static constexpr std::size_t kWriters = 4;
  static constexpr std::size_t kPerThread = 5000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&reg, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        reg.add_counter(obs::Stage::kSimulate, "commits", 1);
        reg.observe(obs::Stage::kSimulate, "cycles", t * kPerThread + i);
        reg.max_gauge(obs::Stage::kTour, "peak", i);
      }
    });
  }
  std::thread scraper([&reg, &done] {
    std::uint64_t last_counter = 0;
    std::uint64_t last_histo = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const auto s = reg.summary();
      for (const auto& c : s.counters) {
        EXPECT_GE(c.value, last_counter) << "counters must be monotonic";
        last_counter = c.value;
      }
      for (const auto& h : s.histograms) {
        EXPECT_GE(h.value.count, last_histo);
        last_histo = h.value.count;
        // Bucket and count are separate relaxed atomics, so a snapshot may
        // catch a writer between the two increments — but never by more
        // than one gap per in-flight writer.
        std::uint64_t bucketed = 0;
        for (const auto b : h.value.buckets) bucketed += b;
        const std::uint64_t lo = std::min(bucketed, h.value.count);
        const std::uint64_t hi = std::max(bucketed, h.value.count);
        EXPECT_LE(hi - lo, kWriters)
            << "snapshot tear wider than the in-flight writer count";
      }
    }
  });
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  const auto s = reg.summary();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].value, kWriters * kPerThread);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].value.count, kWriters * kPerThread);
  EXPECT_EQ(s.histograms[0].value.max, kWriters * kPerThread - 1);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].value, kPerThread - 1);
}

// ---------------------------------------------------------------------------
// CounterRecorder gauge semantics + JSONL flush
// ---------------------------------------------------------------------------

TEST(CounterRecorder, GaugeKeepsTheMaxAcrossEmissions) {
  obs::CounterRecorder rec;
  rec.gauge(obs::Stage::kTour, "peak", 3);
  rec.gauge(obs::Stage::kTour, "peak", 9);
  rec.gauge(obs::Stage::kTour, "peak", 5);
  EXPECT_EQ(rec.gauge_value("peak"), 9u);
  EXPECT_EQ(rec.value("peak"), 0u) << "gauges must not leak into counters";
  EXPECT_EQ(rec.gauge_value("missing"), 0u);
}

TEST(JsonlTraceSink, ExplicitFlushAndStatusBoundaryMakeEventsVisible) {
  const auto path = temp_file("jsonl_flush.jsonl");
  std::filesystem::remove(path);
  {
    obs::JsonlTraceSink sink(path.string());
    sink.gauge(obs::Stage::kTour, "peak", 7);
    sink.latency(obs::Stage::kSimulate, "clean_run", 3, 0.25);
    sink.flush();
    const std::string after_flush = slurp(path);
    EXPECT_NE(after_flush.find("\"event\":\"gauge\""), std::string::npos);
    EXPECT_NE(after_flush.find("\"event\":\"latency\""), std::string::npos);

    sink.status(obs::Stage::kTour, obs::StageStatus::kOk);
    const std::string after_status = slurp(path);
    EXPECT_NE(after_status.find("\"event\":\"status\""), std::string::npos)
        << "status events must flush without an explicit flush() call";
  }
  std::filesystem::remove(path);
}

TEST(JsonlTraceSink, RotatesAtTheSizeCapAndKeepsEveryLine) {
  const auto path = temp_file("jsonl_rotate.jsonl");
  const auto rotated1 = std::filesystem::path(path.string() + ".1");
  const auto rotated2 = std::filesystem::path(path.string() + ".2");
  for (const auto& p : {path, rotated1, rotated2}) {
    std::filesystem::remove(p);
  }
  constexpr std::uint64_t kMaxBytes = 512;
  constexpr std::size_t kEvents = 64;
  {
    obs::JsonlTraceSink sink(path.string(), kMaxBytes, 2);
    for (std::size_t i = 0; i < kEvents; ++i) {
      sink.gauge(obs::Stage::kTour, "peak", i);
    }
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(rotated1));
  ASSERT_TRUE(std::filesystem::exists(rotated2));
  // No rotated file exceeds the cap (the active one may be mid-fill).
  EXPECT_LE(std::filesystem::file_size(rotated1), kMaxBytes);
  EXPECT_LE(std::filesystem::file_size(rotated2), kMaxBytes);
  // Retention window: the newest files survive, oldest lines age out of
  // the two-file window. Lines never straddle a rotation boundary.
  std::size_t kept = 0;
  std::size_t last_value = 0;
  for (const auto& p : {rotated2, rotated1, path}) {
    std::ifstream in(p);
    std::string line;
    while (std::getline(in, line)) {
      EXPECT_NE(line.find("\"event\":\"gauge\""), std::string::npos)
          << "truncated line in " << p;
      const auto at = line.find("\"value\":");
      ASSERT_NE(at, std::string::npos);
      last_value = static_cast<std::size_t>(
          std::stoull(line.substr(at + std::string("\"value\":").size())));
      ++kept;
    }
  }
  EXPECT_LT(kept, kEvents) << "old lines must age out of the window";
  EXPECT_EQ(last_value, kEvents - 1) << "the newest line must survive";
  for (const auto& p : {path, rotated1, rotated2}) {
    std::filesystem::remove(p);
  }
}

TEST(JsonlTraceSink, NoCapMeansNoRotation) {
  const auto path = temp_file("jsonl_norotate.jsonl");
  const auto rotated1 = std::filesystem::path(path.string() + ".1");
  std::filesystem::remove(path);
  std::filesystem::remove(rotated1);
  {
    obs::JsonlTraceSink sink(path.string());  // max_bytes = 0: unlimited
    for (std::size_t i = 0; i < 256; ++i) {
      sink.gauge(obs::Stage::kTour, "peak", i);
    }
  }
  EXPECT_FALSE(std::filesystem::exists(rotated1));
  std::size_t lines = 0;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 256u);
  std::filesystem::remove(path);
  std::filesystem::remove(rotated1);
}

// ---------------------------------------------------------------------------
// Coverage curve builder
// ---------------------------------------------------------------------------

obs::CoveragePoint point(std::uint64_t i) {
  return obs::CoveragePoint{i, i, 2 * i};
}

TEST(CoverageCurveBuilder, KeepsEverythingUnderBudget) {
  obs::CoverageCurveBuilder b(16);
  for (std::uint64_t i = 1; i <= 10; ++i) b.add(point(i));
  const auto pts = b.points();
  ASSERT_EQ(pts.size(), 10u);
  for (std::uint64_t i = 1; i <= 10; ++i) EXPECT_EQ(pts[i - 1], point(i));
}

TEST(CoverageCurveBuilder, DownsamplesToBudgetAndKeepsTheLastPoint) {
  constexpr std::size_t kBudget = 8;
  obs::CoverageCurveBuilder b(kBudget);
  for (std::uint64_t i = 1; i <= 1000; ++i) b.add(point(i));
  const auto pts = b.points();
  ASSERT_GE(pts.size(), 2u);
  EXPECT_LE(pts.size(), kBudget + 1);  // +1 for the always-kept endpoint
  EXPECT_EQ(pts.back(), point(1000));
  for (std::size_t j = 1; j < pts.size(); ++j) {
    EXPECT_LT(pts[j - 1].sequence, pts[j].sequence)
        << "curve must stay strictly increasing in sequence index";
  }
}

TEST(CoverageCurveBuilder, IsDeterministicInTheAppendSequenceAlone) {
  obs::CoverageCurveBuilder a(32);
  obs::CoverageCurveBuilder b(32);
  for (std::uint64_t i = 1; i <= 777; ++i) {
    a.add(point(i));
    b.add(point(i));
  }
  EXPECT_EQ(a.points(), b.points());
}

// ---------------------------------------------------------------------------
// Coverage telemetry collector
// ---------------------------------------------------------------------------

TEST(CoverageTelemetryCollector, ReplayMatchesTheModelsOwnTourAccounting) {
  const auto m = fsm::random_connected_machine(24, 3, 4, 17);
  model::ExplicitModel tour_model(m, 0);
  auto stream = tour_model.tour_source();

  model::ExplicitModel replay_model(m, 0);
  obs::CoverageTelemetryCollector collector(replay_model, 64);
  while (auto seq = stream->next_sequence()) collector.commit_sequence(*seq);
  const auto summary = stream->summary();

  const auto telemetry = collector.snapshot();
  EXPECT_EQ(telemetry.curve_budget, 64u);
  ASSERT_FALSE(telemetry.convergence.empty());
  const auto& last = telemetry.convergence.back();
  EXPECT_EQ(last.sequence, collector.committed());
  EXPECT_EQ(last.transitions_covered, telemetry.distinct_transitions);
  EXPECT_EQ(static_cast<double>(telemetry.distinct_transitions),
            summary.coverage.transitions_covered);
  EXPECT_EQ(static_cast<double>(last.states_visited),
            summary.coverage.states_visited);
  EXPECT_GE(telemetry.max_transition_hits, 1u);

  // Every distinct transition appears in exactly one hit bucket.
  std::uint64_t bucketed = 0;
  for (const auto n : telemetry.transition_hits) bucketed += n;
  EXPECT_EQ(bucketed, telemetry.distinct_transitions);
  EXPECT_TRUE(telemetry.bug_exposure_latency.empty())
      << "the collector leaves exposure latency to the pipeline";
}

TEST(CoverageTelemetryCollector, BatchCommitIsByteIdenticalToSequential) {
  const auto m = fsm::random_connected_machine(24, 3, 4, 17);
  model::ExplicitModel tour_model(m, 0);
  auto stream = tour_model.tour_source();
  std::vector<std::vector<std::vector<bool>>> sequences;
  while (auto seq = stream->next_sequence()) sequences.push_back(*seq);
  ASSERT_FALSE(sequences.empty());

  model::ExplicitModel scalar_model(m, 0);
  obs::CoverageTelemetryCollector scalar(scalar_model, 64);
  for (const auto& seq : sequences) scalar.commit_sequence(seq);

  // The batch path replays lane-parallel but folds in batch order; the
  // telemetry — convergence points included — must not move. Mixed batch
  // sizes cover full, partial and single-sequence blocks.
  model::ExplicitModel batch_model(m, 0);
  obs::CoverageTelemetryCollector batch(batch_model, 64);
  std::size_t at = 0;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{128}}) {
    if (at >= sequences.size()) break;
    const std::size_t len = std::min(chunk, sequences.size() - at);
    batch.commit_batch(std::span(sequences).subspan(at, len));
    at += len;
  }
  if (at < sequences.size()) {
    batch.commit_batch(std::span(sequences).subspan(at));
  }

  EXPECT_EQ(batch.committed(), scalar.committed());
  const auto a = scalar.snapshot();
  const auto b = batch.snapshot();
  EXPECT_EQ(b.convergence, a.convergence);
  EXPECT_EQ(b.distinct_transitions, a.distinct_transitions);
  EXPECT_EQ(b.max_transition_hits, a.max_transition_hits);
  EXPECT_EQ(b.transition_hits, a.transition_hits);
}

TEST(CoverageTelemetryCollector, BatchCommitRejectsInvalidInputs) {
  const auto m = fsm::random_connected_machine(8, 3, 2, 5);  // 3 inputs
  model::ExplicitModel model(m, 0);
  obs::CoverageTelemetryCollector collector(model);
  const std::vector<std::vector<std::vector<bool>>> bad{{{true, true}}};
  EXPECT_THROW(collector.commit_batch(bad), std::domain_error);
}

TEST(CoverageTelemetryCollector, InvalidInputInACommittedSequenceThrows) {
  const auto m = fsm::random_connected_machine(8, 3, 2, 5);  // 3 inputs
  model::ExplicitModel model(m, 0);
  obs::CoverageTelemetryCollector collector(model);
  // Input id 3 needs two bits and does not exist in a 3-input machine.
  const std::vector<std::vector<bool>> bad{{true, true}};
  EXPECT_THROW(collector.commit_sequence(bad), std::domain_error);
}

// ---------------------------------------------------------------------------
// Prometheus exporter
// ---------------------------------------------------------------------------

TEST(PrometheusText, RendersCountersGaugesAndCumulativeHistograms) {
  obs::MetricsRegistry reg;
  reg.add_counter(obs::Stage::kTour, "store.hit", 5);
  reg.max_gauge(obs::Stage::kTour, "sequences_in_flight_peak", 3);
  for (int i = 0; i < 4; ++i) reg.observe(obs::Stage::kSimulate, "steps", 6);
  reg.observe(obs::Stage::kSimulate, "steps", 100);

  const std::string text = obs::write_prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE simcov_store_hit_total counter"),
            std::string::npos)
      << "dots must sanitize to underscores and counters get _total";
  EXPECT_NE(text.find("simcov_store_hit_total{stage=\"tour\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE simcov_sequences_in_flight_peak gauge"),
            std::string::npos);
  EXPECT_NE(text.find("simcov_sequences_in_flight_peak{stage=\"tour\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE simcov_steps histogram"), std::string::npos);
  // Cumulative buckets: the bucket holding 6 (ub 7) counts 4, +Inf counts 5.
  EXPECT_NE(text.find("simcov_steps_bucket{stage=\"simulate\",le=\"7\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("simcov_steps_bucket{stage=\"simulate\",le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("simcov_steps_sum{stage=\"simulate\"} 124"),
            std::string::npos);
  EXPECT_NE(text.find("simcov_steps_count{stage=\"simulate\"} 5"),
            std::string::npos);
}

TEST(PrometheusText, EmptyRegistryRendersEmpty) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(obs::write_prometheus_text(reg).empty());
}

TEST(PrometheusText, HelpLinesPrecedeEveryTypeLine) {
  obs::MetricsRegistry reg;
  reg.add_counter(obs::Stage::kTour, "store.hit", 1);
  reg.max_gauge(obs::Stage::kSymbolic, "bdd_live_nodes", 7);
  reg.observe(obs::Stage::kSimulate, "clean_run", 3);

  const std::string text = obs::write_prometheus_text(reg);
  // Golden HELP lines for the known vocabulary, counter name with _total.
  EXPECT_NE(text.find("# HELP simcov_store_hit_total "
                      "Artifact-store lookups served from disk.\n"
                      "# TYPE simcov_store_hit_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP simcov_bdd_live_nodes "
                      "Live BDD nodes of the symbolic backend.\n"
                      "# TYPE simcov_bdd_live_nodes gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP simcov_clean_run "
                      "Implementation cycles per committed clean run.\n"
                      "# TYPE simcov_clean_run histogram\n"),
            std::string::npos);
  // Every TYPE line is immediately preceded by its HELP line.
  std::istringstream lines(text);
  std::string prev;
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_EQ(prev.rfind("# HELP ", 0), 0u) << "TYPE without HELP: " << line;
    }
    prev = line;
  }
}

TEST(PrometheusText, UnknownMetricNamesGetAGenericHelpLine) {
  obs::MetricsRegistry reg;
  reg.add_counter(obs::Stage::kTour, "weird.new.metric", 1);
  const std::string text = obs::write_prometheus_text(reg);
  EXPECT_NE(text.find("# HELP simcov_weird_new_metric_total simcov metric "
                      "'weird.new.metric', aggregated per pipeline stage.\n"),
            std::string::npos);
}

TEST(PrometheusText, LabelValuesEscapePerExpositionFormat) {
  EXPECT_EQ(obs::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prometheus_escape_label("a\nb"), "a\\nb");
  EXPECT_EQ(obs::prometheus_escape_label("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusText, LargeValuesKeepFullPrecision) {
  // The exporter stream runs at max_digits10 precision, so values with more
  // than ostream's default 6 significant digits survive a parse back into
  // float64 unchanged. 2^53 + 1 is the sentinel: one digit lost anywhere in
  // the pipeline and the text below cannot appear.
  obs::MetricsRegistry reg;
  reg.add_counter(obs::Stage::kSimulate, "cycles", 9007199254740993ull);
  reg.max_gauge(obs::Stage::kSimulate, "peak", 123456789ull);
  reg.observe(obs::Stage::kSimulate, "lat", 987654321ull);

  const std::string text = obs::write_prometheus_text(reg);
  EXPECT_NE(
      text.find("simcov_cycles_total{stage=\"simulate\"} 9007199254740993"),
      std::string::npos);
  EXPECT_NE(text.find("simcov_peak{stage=\"simulate\"} 123456789"),
            std::string::npos);
  EXPECT_NE(text.find("simcov_lat_sum{stage=\"simulate\"} 987654321"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Perfetto exporter
// ---------------------------------------------------------------------------

TEST(PerfettoTraceSink, EmitsAParseableTraceEventArray) {
  const auto path = temp_file("perfetto.json");
  std::filesystem::remove(path);
  {
    obs::PerfettoTraceSink sink(path.string());
    sink.span(obs::Stage::kTour, 0.001);
    sink.counter(obs::Stage::kTour, "store.hit", 1);
    sink.counter(obs::Stage::kTour, "store.hit", 2);  // running total 3
    sink.gauge(obs::Stage::kTour, "peak", 4);
    sink.item(obs::Stage::kSimulate, "clean_run", 0, 6);
    sink.latency(obs::Stage::kSimulate, "clean_run", 0, 0.002);
    sink.status(obs::Stage::kTour, obs::StageStatus::kOk);
  }  // destructor closes the JSON array

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.find('['), text.rfind('[')) << "exactly one array opener";
  EXPECT_NE(text.find_last_of(']'), std::string::npos);
  // Metadata names the per-stage tracks.
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  // One of each phase type made it out.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  // Counter tracks plot running totals, not increments.
  EXPECT_NE(text.find("\"name\":\"tour.store.hit\",\"args\":{\"value\":3}"),
            std::string::npos);
  EXPECT_EQ(text.find("\"name\":\"tour.store.hit\",\"args\":{\"value\":2}"),
            std::string::npos)
      << "the second increment must plot the total, not the raw value";
  // Every event object is properly closed: rough balance check.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace simcov
