// Tests for ∀k-distinguishability (Definition 5), classical equivalence,
// distinguishing sequences and UIO search.
#include "distinguish/distinguish.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simcov::distinguish {
namespace {

using fsm::InputId;
using fsm::MealyMachine;
using fsm::StateId;

/// Outputs unique per (state, input): out = s * num_inputs + i. Any single
/// input separates any two states, so ∀1-distinguishability holds.
MealyMachine forall1_machine() {
  MealyMachine m(3, 2);
  for (StateId s = 0; s < 3; ++s) {
    for (InputId i = 0; i < 2; ++i) {
      m.set_transition(s, i, (s + i + 1) % 3, s * 2 + i);
    }
  }
  return m;
}

/// States 0 and 1 produce the same outputs on input 0 but different on
/// input 1: ∃-distinguishable, NOT ∀1-distinguishable.
MealyMachine exists_only_machine() {
  MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 5);
  m.set_transition(1, 0, 0, 5);  // same output as (0,0)
  m.set_transition(0, 1, 0, 0);
  m.set_transition(1, 1, 1, 1);  // differs
  return m;
}

TEST(ForallK, Forall1MachineSatisfiesK1) {
  const MealyMachine m = forall1_machine();
  EXPECT_TRUE(forall_k_distinguishable(m, 0, 1, 1));
  EXPECT_TRUE(forall_k_distinguishable(m, 1, 2, 1));
  EXPECT_TRUE(satisfies_forall_k(m, 0, 1));
}

TEST(ForallK, StateNeverDistinguishesFromItself) {
  const MealyMachine m = forall1_machine();
  EXPECT_FALSE(forall_k_distinguishable(m, 1, 1, 1));
  EXPECT_FALSE(forall_k_distinguishable(m, 1, 1, 5));
}

TEST(ForallK, ExistsOnlyPairFailsForall1) {
  const MealyMachine m = exists_only_machine();
  EXPECT_FALSE(forall_k_distinguishable(m, 0, 1, 1));
  EXPECT_FALSE(satisfies_forall_k(m, 0, 1));
  // But the states are classically distinguishable.
  EXPECT_TRUE(distinguishing_sequence(m, 0, 1).has_value());
}

TEST(ForallK, MonotoneInK) {
  // ∀k implies ∀(k+1): check on a machine that needs k=2.
  // States 0,1: input 0 gives equal outputs but moves to 2 vs 3 which
  // differ on every input.
  MealyMachine m(4, 2);
  m.set_transition(0, 0, 2, 0);
  m.set_transition(1, 0, 3, 0);
  m.set_transition(0, 1, 2, 1);
  m.set_transition(1, 1, 3, 2);  // differs: input 1 distinguishes 0,1
  // States 2 and 3: unique outputs on both inputs.
  m.set_transition(2, 0, 0, 10);
  m.set_transition(3, 0, 0, 11);
  m.set_transition(2, 1, 1, 12);
  m.set_transition(3, 1, 1, 13);
  // Pair (0,1): sequence <0> does not distinguish => not ∀1.
  EXPECT_FALSE(forall_k_distinguishable(m, 0, 1, 1));
  // All length-2 sequences distinguish: <0,*> reaches (2,3) which differ on
  // anything; <1,*> differs at step one.
  EXPECT_TRUE(forall_k_distinguishable(m, 0, 1, 2));
  EXPECT_TRUE(forall_k_distinguishable(m, 0, 1, 3));  // monotone
  EXPECT_EQ(min_forall_k(m, 0, 5), std::optional<unsigned>(2));
}

TEST(ForallK, BehaviourallyEquivalentPairNeverForallK) {
  // A two-state swap cycle with constant output: the states are
  // behaviourally identical and both reachable.
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 7);
  m.set_transition(1, 0, 0, 7);
  EXPECT_FALSE(forall_k_distinguishable(m, 0, 1, 1));
  EXPECT_FALSE(forall_k_distinguishable(m, 0, 1, 4));
  EXPECT_FALSE(min_forall_k(m, 0, 6).has_value());
}

TEST(ForallK, DeadEndPairIsConservativelyIndistinguishable) {
  MealyMachine m(2, 1);  // no transitions at all
  EXPECT_FALSE(forall_k_distinguishable(m, 0, 1, 1));
}

TEST(ForallK, DefinednessMismatchDistinguishes) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 0, 0);  // state 1 has no transition on 0
  EXPECT_TRUE(forall_k_distinguishable(m, 0, 1, 1));
}

TEST(ForallK, TableIsSymmetricWithTrueDiagonal) {
  const MealyMachine m = exists_only_machine();
  const PairTable table = forall_k_equal_table(m, 2);
  for (StateId s = 0; s < m.num_states(); ++s) {
    EXPECT_TRUE(table.get(s, s));
    for (StateId t = 0; t < m.num_states(); ++t) {
      EXPECT_EQ(table.get(s, t), table.get(t, s));
    }
  }
}

TEST(ForallK, OutOfRangeThrows) {
  const MealyMachine m = forall1_machine();
  EXPECT_THROW((void)forall_k_distinguishable(m, 0, 9, 1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Classical equivalence
// ---------------------------------------------------------------------------

TEST(EquivClasses, MergesBehaviourallyIdenticalStates) {
  MealyMachine m(3, 1);
  m.set_transition(0, 0, 1, 5);
  m.set_transition(1, 0, 0, 5);
  m.set_transition(2, 0, 1, 5);  // state 2 behaves like state 0
  const auto cls = equivalence_classes(m);
  EXPECT_EQ(cls[0], cls[2]);
  EXPECT_EQ(cls[0], cls[1]);  // all same outputs forever: one class
}

TEST(EquivClasses, SeparatesByOutput) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 0, 1);
  m.set_transition(1, 0, 1, 2);
  const auto cls = equivalence_classes(m);
  EXPECT_NE(cls[0], cls[1]);
}

TEST(EquivClasses, SeparatesBySuccessorBehaviour) {
  // Same immediate outputs; successors differ.
  MealyMachine m(4, 1);
  m.set_transition(0, 0, 2, 0);
  m.set_transition(1, 0, 3, 0);
  m.set_transition(2, 0, 2, 5);
  m.set_transition(3, 0, 3, 6);
  const auto cls = equivalence_classes(m);
  EXPECT_NE(cls[0], cls[1]);
}

TEST(EquivClasses, PartialityMatters) {
  MealyMachine m(2, 2);
  m.set_transition(0, 0, 0, 1);
  m.set_transition(1, 0, 1, 1);
  m.set_transition(1, 1, 1, 1);  // state 0 lacks input 1
  const auto cls = equivalence_classes(m);
  EXPECT_NE(cls[0], cls[1]);
}

TEST(DistSeq, ShortestSequenceReturned) {
  const MealyMachine m = exists_only_machine();
  const auto seq = distinguishing_sequence(m, 0, 1);
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(seq->size(), 1u);
  EXPECT_EQ((*seq)[0], 1u);
  EXPECT_NE(m.run(*seq, 0), m.run(*seq, 1));
}

TEST(DistSeq, EquivalentStatesHaveNone) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 3);
  m.set_transition(1, 0, 0, 3);
  EXPECT_FALSE(distinguishing_sequence(m, 0, 1).has_value());
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

TEST(Minimize, MergesEquivalentStates) {
  // 4 states; 2 and 3 behave like 0 and 1.
  MealyMachine m(4, 1);
  m.set_transition(0, 0, 1, 5);
  m.set_transition(1, 0, 2, 6);
  m.set_transition(2, 0, 3, 5);  // like state 0
  m.set_transition(3, 0, 0, 6);  // like state 1
  const auto r = minimize(m, 0);
  EXPECT_EQ(r.machine.num_states(), 2u);
  EXPECT_EQ(r.state_map[0], r.state_map[2]);
  EXPECT_EQ(r.state_map[1], r.state_map[3]);
  // Behaviour is preserved from reset.
  EXPECT_TRUE(fsm::check_equivalence(m, 0, r.machine,
                                     r.machine.initial_state())
                  .equivalent);
}

TEST(Minimize, DropsUnreachableStates) {
  MealyMachine m(3, 1);
  m.set_transition(0, 0, 0, 1);
  m.set_transition(1, 0, 2, 2);  // unreachable island
  m.set_transition(2, 0, 1, 3);
  const auto r = minimize(m, 0);
  EXPECT_EQ(r.machine.num_states(), 1u);
  EXPECT_EQ(r.state_map[1], MinimizationResult::kUnmapped);
  EXPECT_EQ(r.state_map[2], MinimizationResult::kUnmapped);
}

TEST(Minimize, AlreadyMinimalIsIsomorphic) {
  const MealyMachine m = forall1_machine();
  const auto r = minimize(m, 0);
  EXPECT_EQ(r.machine.num_states(), m.num_states());
  EXPECT_TRUE(fsm::check_equivalence(m, 0, r.machine,
                                     r.machine.initial_state())
                  .equivalent);
}

TEST(Minimize, PreservesPartiality) {
  MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 1);
  m.set_transition(1, 0, 0, 2);
  m.set_transition(0, 1, 0, 3);  // input 1 defined only in state 0
  const auto r = minimize(m, 0);
  EXPECT_EQ(r.machine.num_states(), 2u);
  EXPECT_FALSE(
      r.machine.transition(r.state_map[1], 1).has_value());
}

TEST(Minimize, MinimizedMachineHasNoEquivalentPairs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const MealyMachine m = fsm::random_connected_machine(10, 2, 2, seed);
    const auto r = minimize(m, 0);
    const auto cls = equivalence_classes(r.machine);
    for (StateId s = 0; s < r.machine.num_states(); ++s) {
      for (StateId t = s + 1; t < r.machine.num_states(); ++t) {
        EXPECT_NE(cls[s], cls[t]) << "seed " << seed;
      }
    }
    EXPECT_TRUE(fsm::check_equivalence(m, 0, r.machine,
                                       r.machine.initial_state())
                    .equivalent);
  }
}

// ---------------------------------------------------------------------------
// UIO
// ---------------------------------------------------------------------------

TEST(Uio, UniqueOutputGivesLengthOneUio) {
  const MealyMachine m = forall1_machine();
  for (StateId s = 0; s < 3; ++s) {
    const auto uio = find_uio(m, s, 0, 4);
    ASSERT_TRUE(uio.has_value());
    EXPECT_EQ(uio->size(), 1u);
  }
}

/// Four states, all reachable from 0. On input 0 states 0,1 share outputs
/// but their successors 2,3 separate; input 1 is an output-silent shuffle
/// keeping everything reachable.
MealyMachine shared_output_machine() {
  MealyMachine m(4, 2);
  m.set_transition(0, 0, 2, 0);
  m.set_transition(1, 0, 3, 0);
  m.set_transition(2, 0, 2, 5);
  m.set_transition(3, 0, 3, 6);
  m.set_transition(0, 1, 1, 9);
  m.set_transition(1, 1, 0, 9);
  m.set_transition(2, 1, 2, 9);
  m.set_transition(3, 1, 3, 9);
  return m;
}

TEST(Uio, NeedsTwoStepsWhenOutputsShared) {
  const MealyMachine m = shared_output_machine();
  const auto uio = find_uio(m, 0, 0, 4);
  ASSERT_TRUE(uio.has_value());
  EXPECT_EQ(uio->size(), 2u);
  // Verify the defining property directly against states 2,3 as well.
  const auto reachable = m.reachable_states(0);
  for (StateId t = 0; t < 4; ++t) {
    if (t == 0 || !reachable[t]) continue;
    EXPECT_NE(m.run(*uio, 0), m.run(*uio, t)) << "state " << t;
  }
}

TEST(Uio, NoneWhenStatesEquivalent) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 3);
  m.set_transition(1, 0, 0, 3);
  EXPECT_FALSE(find_uio(m, 0, 0, 6).has_value());
}

TEST(Uio, RespectsLengthBound) {
  // UIO for state 0 requires 2 steps; bound of 1 must fail.
  const MealyMachine m = shared_output_machine();
  EXPECT_FALSE(find_uio(m, 0, 0, 1).has_value());
  EXPECT_TRUE(find_uio(m, 0, 0, 2).has_value());
}

TEST(Uio, UnreachableStateHasNoUio) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 0, 0);
  m.set_transition(1, 0, 1, 9);
  EXPECT_FALSE(find_uio(m, 1, 0, 4).has_value());
}

// ---------------------------------------------------------------------------
// Cross-validation property: for random machines, the ∀k table at a large k
// agrees with classical equivalence on which pairs are separable at all, and
// any UIO found truly separates its state from all others.
// ---------------------------------------------------------------------------

class DistinguishProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistinguishProperty, UioAndEquivalenceAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const MealyMachine m = fsm::random_connected_machine(7, 2, 3, seed);
  const auto cls = equivalence_classes(m);
  for (StateId s = 0; s < m.num_states(); ++s) {
    const auto uio = find_uio(m, s, 0, 8);
    if (!uio.has_value()) continue;
    for (StateId t = 0; t < m.num_states(); ++t) {
      if (t == s) continue;
      // A UIO separates s from every *reachable* other state; in particular
      // no reachable state can be behaviourally equivalent to s.
      if (m.reachable_states(0)[t]) {
        EXPECT_NE(cls[s], cls[t]);
        EXPECT_NE(m.run(*uio, s), m.run(*uio, t));
      }
    }
  }
}

TEST_P(DistinguishProperty, ForallKImpliesExistsDistinguishing) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 50;
  const MealyMachine m = fsm::random_connected_machine(6, 2, 2, seed);
  for (unsigned k = 1; k <= 3; ++k) {
    for (StateId s = 0; s < m.num_states(); ++s) {
      for (StateId t = 0; t < m.num_states(); ++t) {
        if (s == t) continue;
        if (forall_k_distinguishable(m, s, t, k)) {
          EXPECT_TRUE(distinguishing_sequence(m, s, t).has_value())
              << "∀" << k << "-dist pair (" << s << "," << t
              << ") must be ∃-distinguishable";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistinguishProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace simcov::distinguish
