// Tests for symbolic (implicit) transition-tour generation: coverage is
// cross-checked against explicit extraction, and recorded sequences must
// replay exactly on the explicit machine.
#include "sym/symbolic_tour.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sym/symbolic_fsm.hpp"
#include "testmodel/testmodel.hpp"
#include "tour/tour.hpp"

namespace simcov::sym {
namespace {

/// 2-bit counter with enable (same circuit as sym_test).
SequentialCircuit counter_circuit() {
  SequentialCircuit c;
  const SignalId en = c.net.add_input("en");
  const SignalId q0 = c.net.add_input("q0");
  const SignalId q1 = c.net.add_input("q1");
  const SignalId n0 = c.net.make_xor(q0, en);
  const SignalId n1 = c.net.make_xor(q1, c.net.make_and(q0, en));
  c.primary_inputs = {en};
  c.latches = {{q0, n0, false, "q0"}, {q1, n1, false, "q1"}};
  c.outputs = {{"carry", c.net.make_and(en, c.net.make_and(q0, q1))}};
  return c;
}

/// Replays recorded symbolic-tour sequences on the explicit machine and
/// returns the covered-transition count.
std::size_t replay_coverage(const SequentialCircuit& circuit,
                            const SymbolicTourResult& tour) {
  const auto em = extract_explicit(circuit, 1u << 20);
  // Input symbol lookup by PI bit pattern.
  std::map<std::vector<bool>, fsm::InputId> symbol_of;
  for (fsm::InputId k = 0; k < em.input_bits.size(); ++k) {
    symbol_of[em.input_bits[k]] = k;
  }
  std::set<std::pair<fsm::StateId, fsm::InputId>> covered;
  for (const auto& seq : tour.sequences) {
    fsm::StateId at = 0;
    for (const auto& input : seq) {
      const auto it = symbol_of.find(input);
      if (it == symbol_of.end()) {
        ADD_FAILURE() << "tour used an input symbol unknown to the explicit "
                         "model";
        return 0;
      }
      const auto t = em.machine.transition(at, it->second);
      if (!t.has_value()) {
        ADD_FAILURE() << "tour took an undefined transition";
        return 0;
      }
      covered.insert({at, it->second});
      at = t->next;
    }
  }
  return covered.size();
}

TEST(SymbolicTour, CoversCounterCompletely) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const auto tour = symbolic_transition_tour(fsm);
  EXPECT_TRUE(tour.complete);
  EXPECT_DOUBLE_EQ(tour.transitions_total, 8.0);
  EXPECT_DOUBLE_EQ(tour.transitions_covered, 8.0);
  EXPECT_DOUBLE_EQ(tour.coverage(), 1.0);
  EXPECT_GE(tour.steps, 8u);
  // Replay on the explicit machine confirms the coverage claim.
  EXPECT_EQ(replay_coverage(c, tour), 8u);
}

TEST(SymbolicTour, SequencesIdenticalUnderDynamicReordering) {
  // Dynamic reordering must be semantically invisible: the tour driver
  // addresses variables by stable id, so an aggressively resifted manager
  // yields the exact same sequences as a static-order one.
  const SequentialCircuit c = counter_circuit();

  bdd::BddManager static_mgr;
  SymbolicFsm static_fsm(static_mgr, c);
  const auto baseline = symbolic_transition_tour(static_fsm);

  bdd::BddManager auto_mgr;
  auto_mgr.set_reorder_policy(bdd::ReorderPolicy::kAuto);
  auto_mgr.set_reorder_threshold(16);  // sift eagerly during construction
  SymbolicFsm auto_fsm(auto_mgr, c);
  (void)auto_mgr.try_reorder();  // plus an explicit pass before the tour
  const auto reordered = symbolic_transition_tour(auto_fsm);

  EXPECT_EQ(reordered.sequences, baseline.sequences);
  EXPECT_EQ(reordered.steps, baseline.steps);
  EXPECT_EQ(reordered.restarts, baseline.restarts);
  EXPECT_EQ(reordered.complete, baseline.complete);
  EXPECT_DOUBLE_EQ(reordered.transitions_covered,
                   baseline.transitions_covered);
  EXPECT_EQ(replay_coverage(c, reordered), 8u);
}

TEST(SymbolicTour, RespectsStepCap) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  SymbolicTourOptions opt;
  opt.max_steps = 3;
  const auto tour = symbolic_transition_tour(fsm, opt);
  EXPECT_FALSE(tour.complete);
  EXPECT_EQ(tour.steps, 3u);
  EXPECT_LT(tour.coverage(), 1.0);
}

TEST(SymbolicTour, RecordingCanBeDisabled) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  SymbolicTourOptions opt;
  opt.record_inputs = false;
  const auto tour = symbolic_transition_tour(fsm, opt);
  EXPECT_TRUE(tour.complete);
  EXPECT_TRUE(tour.sequences.empty());
  EXPECT_DOUBLE_EQ(tour.coverage(), 1.0);
}

TEST(SymbolicTour, HandlesConstrainedInputs) {
  // en must be 1 in state 00: the tour must respect the constraint.
  SequentialCircuit c = counter_circuit();
  const auto ins = c.net.inputs();
  c.valid = c.net.make_or(ins[0], c.net.make_or(ins[1], ins[2]));
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const auto tour = symbolic_transition_tour(fsm);
  EXPECT_TRUE(tour.complete);
  EXPECT_DOUBLE_EQ(tour.transitions_total, 7.0);  // (00, en=0) invalid
  EXPECT_EQ(replay_coverage(c, tour), 7u);
}

TEST(SymbolicTour, RestartsAcrossTransientResetState) {
  // A machine whose reset state is transient: bit q latches to 1 on first
  // enable and can never return; covering (q=0, en=0) and (q=0, en=1)
  // requires... actually both are coverable in one pass; build a fork:
  // two latches, input chooses a branch, branches are absorbing.
  SequentialCircuit c;
  const SignalId in = c.net.add_input("in");
  const SignalId a = c.net.add_input("a");
  const SignalId b = c.net.add_input("b");
  // a latches 1 if input=1 while idle; b latches 1 if input=0 while idle.
  const SignalId idle =
      c.net.make_and(c.net.make_not(a), c.net.make_not(b));
  const SignalId na = c.net.make_or(a, c.net.make_and(idle, in));
  const SignalId nb =
      c.net.make_or(b, c.net.make_and(idle, c.net.make_not(in)));
  c.primary_inputs = {in};
  c.latches = {{a, na, false, "a"}, {b, nb, false, "b"}};
  c.outputs = {{"a", a}, {"b", b}};
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const auto tour = symbolic_transition_tour(fsm);
  EXPECT_TRUE(tour.complete);
  EXPECT_GE(tour.restarts, 1u);  // both fork arms need their own sequence
  EXPECT_EQ(replay_coverage(c, tour),
            static_cast<std::size_t>(tour.transitions_total));
}

TEST(SymbolicTour, MatchesExplicitTransitionCountOnControlModel) {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 1;
  opt.reduced_isa = true;
  const auto model = testmodel::build_dlx_control_model(opt);
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, model.circuit);
  SymbolicTourOptions topt;
  topt.record_inputs = false;  // ~100k steps: skip recording
  const auto tour = symbolic_transition_tour(fsm, topt);
  EXPECT_TRUE(tour.complete);
  // Cross-check against the explicit enumeration.
  const auto em = extract_explicit(model.circuit, 100000);
  EXPECT_DOUBLE_EQ(tour.transitions_total,
                   static_cast<double>(
                       em.machine.num_defined_transitions()));
  EXPECT_DOUBLE_EQ(tour.transitions_covered, tour.transitions_total);
}

}  // namespace
}  // namespace simcov::sym
