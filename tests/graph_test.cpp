// Tests for the digraph / SCC / Eulerian / min-cost-flow / Chinese Postman
// substrate behind minimum-cost transition tours.
#include "graph/digraph.hpp"
#include "graph/min_cost_flow.hpp"
#include "graph/postman.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <random>
#include <set>

namespace simcov::graph {
namespace {

// ---------------------------------------------------------------------------
// Digraph basics
// ---------------------------------------------------------------------------

TEST(Digraph, DegreesTrackEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 2);  // self-loop
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(2), 3u);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(Digraph, ParallelEdgesAllowed) {
  Digraph g(2);
  g.add_edge(0, 1, 1, 10);
  g.add_edge(0, 1, 2, 20);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0).label, 10u);
  EXPECT_EQ(g.edge(1).label, 20u);
  EXPECT_EQ(g.total_cost(), 3);
}

TEST(Digraph, AddEdgeOutOfRangeThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(7, 0), std::out_of_range);
}

TEST(Digraph, AddNodeGrowsGraph) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

// ---------------------------------------------------------------------------
// SCC
// ---------------------------------------------------------------------------

TEST(Scc, SingleCycleIsOneComponent) {
  Digraph g(4);
  for (NodeId v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 1u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, ChainIsAllSingletons) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 4u);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, TwoCyclesJoinedOneWay) {
  // 0 <-> 1 --> 2 <-> 3 : two SCCs.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
  // Tarjan numbers components in reverse topological order: the sink SCC
  // {2,3} closes first.
  EXPECT_LT(scc.component[2], scc.component[0]);
}

TEST(Scc, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(strongly_connected_components(g).count, 0u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, SelfLoopSingleton) {
  Digraph g(2);
  g.add_edge(0, 0);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 2u);
}

// Property: on random graphs, u and v share a component iff both reach each
// other (checked by brute-force reachability).
class SccRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(SccRandomProperty, MatchesBruteForceReachability) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const NodeId n = 9;
  Digraph g(n);
  for (int e = 0; e < 16; ++e) {
    g.add_edge(rng() % n, rng() % n);
  }
  // Brute force transitive closure.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (NodeId v = 0; v < n; ++v) reach[v][v] = true;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    reach[g.edge(e).from][g.edge(e).to] = true;
  }
  for (NodeId k = 0; k < n; ++k)
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = 0; j < n; ++j)
        if (reach[i][k] && reach[k][j]) reach[i][j] = true;
  const auto scc = strongly_connected_components(g);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      const bool same = scc.component[u] == scc.component[v];
      EXPECT_EQ(same, reach[u][v] && reach[v][u])
          << "nodes " << u << "," << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccRandomProperty, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Eulerian circuits
// ---------------------------------------------------------------------------

void expect_valid_circuit(const Digraph& g, const std::vector<EdgeId>& circuit,
                          NodeId start) {
  ASSERT_EQ(circuit.size(), g.num_edges());
  std::set<EdgeId> used;
  NodeId at = start;
  for (EdgeId e : circuit) {
    EXPECT_EQ(g.edge(e).from, at) << "walk discontinuity";
    EXPECT_TRUE(used.insert(e).second) << "edge reused";
    at = g.edge(e).to;
  }
  EXPECT_EQ(at, start) << "walk not closed";
}

TEST(Euler, SimpleCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  ASSERT_TRUE(has_eulerian_circuit(g));
  expect_valid_circuit(g, eulerian_circuit(g, 0), 0);
}

TEST(Euler, TwoLobesThroughSharedNode) {
  // Figure-eight: 0->1->0 and 0->2->0.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 2);
  g.add_edge(2, 0);
  ASSERT_TRUE(has_eulerian_circuit(g));
  expect_valid_circuit(g, eulerian_circuit(g, 0), 0);
}

TEST(Euler, WithSelfLoopsAndParallels) {
  Digraph g(3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  ASSERT_TRUE(has_eulerian_circuit(g));
  expect_valid_circuit(g, eulerian_circuit(g, 1), 1);
}

TEST(Euler, UnbalancedHasNoCircuit) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_FALSE(has_eulerian_circuit(g));
}

TEST(Euler, DisconnectedEdgesHaveNoCircuit) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  EXPECT_FALSE(has_eulerian_circuit(g));
}

TEST(Euler, EmptyGraphHasEmptyCircuit) {
  Digraph g(3);
  EXPECT_TRUE(has_eulerian_circuit(g));
  EXPECT_TRUE(eulerian_circuit(g, 0).empty());
}

// ---------------------------------------------------------------------------
// Min-cost flow
// ---------------------------------------------------------------------------

TEST(MinCostFlowTest, SingleArc) {
  MinCostFlow mcf(2);
  const auto a = mcf.add_arc(0, 1, 5, 3);
  const auto [flow, cost] = mcf.solve(0, 1);
  EXPECT_EQ(flow, 5);
  EXPECT_EQ(cost, 15);
  EXPECT_EQ(mcf.flow_on(a), 5);
}

TEST(MinCostFlowTest, PrefersCheaperPath) {
  // 0 -> 1 -> 3 costs 1+1; 0 -> 2 -> 3 costs 5+5. Capacity forces a split.
  MinCostFlow mcf(4);
  const auto cheap1 = mcf.add_arc(0, 1, 2, 1);
  const auto cheap2 = mcf.add_arc(1, 3, 2, 1);
  const auto dear1 = mcf.add_arc(0, 2, 2, 5);
  const auto dear2 = mcf.add_arc(2, 3, 2, 5);
  const auto [flow, cost] = mcf.solve(0, 3, 3);
  EXPECT_EQ(flow, 3);
  EXPECT_EQ(cost, 2 * 2 + 1 * 10);
  EXPECT_EQ(mcf.flow_on(cheap1), 2);
  EXPECT_EQ(mcf.flow_on(cheap2), 2);
  EXPECT_EQ(mcf.flow_on(dear1), 1);
  EXPECT_EQ(mcf.flow_on(dear2), 1);
}

TEST(MinCostFlowTest, RespectsMaxFlowCap) {
  MinCostFlow mcf(2);
  mcf.add_arc(0, 1, 100, 1);
  const auto [flow, cost] = mcf.solve(0, 1, 7);
  EXPECT_EQ(flow, 7);
  EXPECT_EQ(cost, 7);
}

TEST(MinCostFlowTest, DisconnectedGivesZeroFlow) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 4, 1);
  const auto [flow, cost] = mcf.solve(0, 2);
  EXPECT_EQ(flow, 0);
  EXPECT_EQ(cost, 0);
}

TEST(MinCostFlowTest, NegativeInputsThrow) {
  MinCostFlow mcf(2);
  EXPECT_THROW((void)mcf.add_arc(0, 1, -1, 0), std::invalid_argument);
  EXPECT_THROW((void)mcf.add_arc(0, 1, 1, -2), std::invalid_argument);
  EXPECT_THROW((void)mcf.add_arc(0, 9, 1, 1), std::out_of_range);
}

TEST(MinCostFlowTest, ResidualReroutingFindsOptimum) {
  // Classic case where a later augmentation must push flow back.
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1, 1);
  mcf.add_arc(0, 2, 1, 10);
  mcf.add_arc(1, 2, 1, 1);
  mcf.add_arc(1, 3, 1, 10);
  mcf.add_arc(2, 3, 1, 1);
  const auto [flow, cost] = mcf.solve(0, 3, 2);
  EXPECT_EQ(flow, 2);
  // Optimal: 0-1-2-3 (3) + 0-2? cap of 0->2 is 1 cost 10... paths:
  // 0-1-2-3 = 1+1+1 = 3 and 0-2-3 blocked (2->3 cap 1 used) so 0-1-3 & 0-2-3:
  // best pairing is {0-1-2-3? } enumerate: two edge-disjoint path sets:
  //   {0-1-3, 0-2-3} = (1+10) + (10+1) = 22
  //   {0-1-2-3, 0-2-3} shares 2->3: invalid.
  // So optimum is 22... unless flow splits: total = 22.
  EXPECT_EQ(cost, 22);
}

// ---------------------------------------------------------------------------
// Chinese Postman
// ---------------------------------------------------------------------------

void expect_valid_postman_tour(const Digraph& g, const PostmanResult& r,
                               NodeId start) {
  // Covers every edge at least once, forms a closed walk from start.
  std::vector<int> covered(g.num_edges(), 0);
  NodeId at = start;
  for (EdgeId e : r.tour) {
    ASSERT_LT(e, g.num_edges());
    EXPECT_EQ(g.edge(e).from, at);
    ++covered[e];
    at = g.edge(e).to;
  }
  EXPECT_EQ(at, start);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(covered[e], 1) << "edge " << e << " not covered";
  }
  EXPECT_GE(r.total_cost, r.lower_bound);
}

TEST(Postman, EulerianGraphNeedsNoDuplicates) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const auto r = directed_chinese_postman(g, 0);
  ASSERT_TRUE(r.has_value());
  expect_valid_postman_tour(g, *r, 0);
  EXPECT_EQ(r->total_cost, r->lower_bound);
  EXPECT_EQ(r->duplicated_edges, 0u);
}

TEST(Postman, UnbalancedGraphDuplicatesCheapestPath) {
  // 0->1 (x2 needed): graph 0->1 cost 1, 1->0 cost 1, 1->0 cost 9 parallel.
  // Balanced? out(0)=1,in(0)=2; out(1)=2,in(1)=1. Path from 0 (b=-1) to 1
  // duplicates the cost-1 edge 0->1.
  Digraph g(2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  g.add_edge(1, 0, 9);
  const auto r = directed_chinese_postman(g, 0);
  ASSERT_TRUE(r.has_value());
  expect_valid_postman_tour(g, *r, 0);
  EXPECT_EQ(r->duplicated_edges, 1u);
  EXPECT_EQ(r->total_cost, 11 + 1);  // all edges once (11) + one dup of cost 1
}

TEST(Postman, InfeasibleWhenNotStronglyConnected) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(directed_chinese_postman(g, 0).has_value());
}

TEST(Postman, InfeasibleWhenStartDisconnected) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(directed_chinese_postman(g, 2).has_value());
}

TEST(Postman, EmptyGraphEmptyTour) {
  Digraph g(2);
  const auto r = directed_chinese_postman(g, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->tour.empty());
  EXPECT_EQ(r->total_cost, 0);
}

TEST(Postman, NegativeCostThrows) {
  Digraph g(2);
  g.add_edge(0, 1, -3);
  g.add_edge(1, 0, 1);
  EXPECT_THROW((void)directed_chinese_postman(g, 0), std::invalid_argument);
}

/// Brute-force optimal covering closed walk via BFS over
/// (node, covered-edge bitmask) — exact for graphs with few edges.
std::optional<std::int64_t> brute_force_postman_cost(const Digraph& g,
                                                     NodeId start) {
  if (g.num_edges() == 0) return 0;
  if (g.num_edges() > 12) throw std::logic_error("too many edges for BFS");
  const std::uint32_t full = (1u << g.num_edges()) - 1;
  // Dijkstra over (node, mask) with edge costs.
  using Key = std::uint64_t;
  auto key = [&](NodeId v, std::uint32_t mask) {
    return (static_cast<Key>(v) << 32) | mask;
  };
  std::map<Key, std::int64_t> dist;
  using Item = std::pair<std::int64_t, Key>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[key(start, 0)] = 0;
  pq.emplace(0, key(start, 0));
  while (!pq.empty()) {
    const auto [d, k] = pq.top();
    pq.pop();
    const NodeId v = static_cast<NodeId>(k >> 32);
    const std::uint32_t mask = static_cast<std::uint32_t>(k);
    if (d != dist[k]) continue;
    if (v == start && mask == full) return d;
    for (const EdgeId e : g.out_edges(v)) {
      const Edge& ed = g.edge(e);
      const Key nk = key(ed.to, mask | (1u << e));
      const std::int64_t nd = d + ed.cost;
      const auto it = dist.find(nk);
      if (it == dist.end() || nd < it->second) {
        dist[nk] = nd;
        pq.emplace(nd, nk);
      }
    }
  }
  return std::nullopt;
}

// Property: the CPP solver is exactly optimal on small random graphs,
// cross-checked against exhaustive search.
class PostmanOptimality : public ::testing::TestWithParam<int> {};

TEST_P(PostmanOptimality, MatchesBruteForceOnTinyGraphs) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 311 + 13);
  const NodeId n = 2 + rng() % 3;
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, (v + 1) % n, 1 + rng() % 4);  // backbone cycle
  }
  const int extra = static_cast<int>(rng() % (11 - n));
  for (int e = 0; e < extra; ++e) {
    g.add_edge(rng() % n, rng() % n, 1 + rng() % 4);
  }
  const NodeId start = rng() % n;
  const auto cpp = directed_chinese_postman(g, start);
  const auto brute = brute_force_postman_cost(g, start);
  ASSERT_TRUE(cpp.has_value());
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(cpp->total_cost, *brute)
      << "CPP must produce a minimum-cost covering tour";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostmanOptimality, ::testing::Range(0, 25));

// Property: on random strongly connected graphs the tour is valid and its
// cost stays within the trivial upper bound (every edge duplicated at most
// n times would be far worse; we check validity + lower bound + optimality
// versus exhaustive duplication search on tiny graphs).
class PostmanRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(PostmanRandomProperty, RandomStronglyConnectedGraphs) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 977 + 5);
  const NodeId n = 2 + rng() % 6;
  Digraph g(n);
  // Backbone cycle guarantees strong connectivity.
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, (v + 1) % n, 1 + rng() % 5);
  }
  const int extra = static_cast<int>(rng() % 10);
  for (int e = 0; e < extra; ++e) {
    g.add_edge(rng() % n, rng() % n, 1 + rng() % 5);
  }
  const NodeId start = rng() % n;
  const auto r = directed_chinese_postman(g, start);
  ASSERT_TRUE(r.has_value());
  expect_valid_postman_tour(g, *r, start);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostmanRandomProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace simcov::graph
