// Unit and property tests for the ROBDD package.
#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace simcov::bdd {
namespace {

class BddTest : public ::testing::Test {
 protected:
  BddManager mgr;
};

TEST_F(BddTest, ConstantsAreDistinctAndCanonical) {
  EXPECT_TRUE(mgr.zero().is_zero());
  EXPECT_TRUE(mgr.one().is_one());
  EXPECT_NE(mgr.zero(), mgr.one());
  EXPECT_EQ(mgr.zero(), mgr.zero());
  EXPECT_TRUE(mgr.zero().is_constant());
  EXPECT_TRUE(mgr.one().is_constant());
}

TEST_F(BddTest, VariablesAreHashConsed) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, mgr.var(1));
  EXPECT_EQ(mgr.var_count(), 2u);
}

TEST_F(BddTest, LiteralPolarity) {
  const Bdd a = mgr.literal(0, true);
  const Bdd na = mgr.literal(0, false);
  EXPECT_EQ(na, !a);
  EXPECT_EQ(a & na, mgr.zero());
  EXPECT_EQ(a | na, mgr.one());
}

TEST_F(BddTest, BasicBooleanIdentities) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_EQ(a & mgr.one(), a);
  EXPECT_EQ(a & mgr.zero(), mgr.zero());
  EXPECT_EQ(a | mgr.zero(), a);
  EXPECT_EQ(a | mgr.one(), mgr.one());
  EXPECT_EQ(a ^ a, mgr.zero());
  EXPECT_EQ(a ^ !a, mgr.one());
  EXPECT_EQ(!(!a), a);
  EXPECT_EQ(a & b, b & a);
  EXPECT_EQ(a | b, b | a);
  // De Morgan.
  EXPECT_EQ(!(a & b), (!a) | (!b));
  EXPECT_EQ(!(a | b), (!a) & (!b));
}

TEST_F(BddTest, IteAgainstTruthTable) {
  const Bdd f = mgr.var(0);
  const Bdd g = mgr.var(1);
  const Bdd h = mgr.var(2);
  const Bdd r = mgr.ite(f, g, h);
  // ite(f,g,h) == (f & g) | (!f & h)
  EXPECT_EQ(r, (f & g) | ((!f) & h));
}

TEST_F(BddTest, ImpliesAndIff) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_EQ(a.implies(b), (!a) | b);
  EXPECT_EQ(a.iff(b), (a & b) | ((!a) & (!b)));
  EXPECT_TRUE(mgr.leq(a & b, a));
  EXPECT_TRUE(mgr.leq(a, a | b));
  EXPECT_FALSE(mgr.leq(a, a & b));
}

TEST_F(BddTest, ReductionRuleCollapsesRedundantTests) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  // (a & b) | (!a & b) must reduce to b exactly.
  EXPECT_EQ((a & b) | ((!a) & b), b);
}

TEST_F(BddTest, ExistentialQuantification) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);
  const std::vector<unsigned> vs{0};
  const Bdd cube_a = mgr.cube(vs);
  // exists a. (a & b) == b
  EXPECT_EQ(mgr.exists(a & b, cube_a), b);
  // exists a. (a | b) == 1
  EXPECT_EQ(mgr.exists(a | b, cube_a), mgr.one());
  // exists a. (b & c) == b & c (a not in support)
  EXPECT_EQ(mgr.exists(b & c, cube_a), b & c);
}

TEST_F(BddTest, UniversalQuantification) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const std::vector<unsigned> vs{0};
  const Bdd cube_a = mgr.cube(vs);
  EXPECT_EQ(mgr.forall(a & b, cube_a), mgr.zero());
  EXPECT_EQ(mgr.forall(a | b, cube_a), b);
  EXPECT_EQ(mgr.forall((!a) | b, cube_a), b);
}

TEST_F(BddTest, AndExistsEqualsComposition) {
  // Property: and_exists(f, g, cube) == exists(f & g, cube) on random inputs.
  std::mt19937 rng(7);
  const unsigned kVars = 8;
  auto random_function = [&]() {
    Bdd f = mgr.zero();
    for (int m = 0; m < 6; ++m) {
      Bdd term = mgr.one();
      for (unsigned v = 0; v < kVars; ++v) {
        const int pick = static_cast<int>(rng() % 3);
        if (pick == 0) term &= mgr.var(v);
        if (pick == 1) term &= !mgr.var(v);
      }
      f |= term;
    }
    return f;
  };
  const std::vector<unsigned> qvars{1, 3, 5};
  const Bdd cube = mgr.cube(qvars);
  for (int trial = 0; trial < 25; ++trial) {
    const Bdd f = random_function();
    const Bdd g = random_function();
    EXPECT_EQ(mgr.and_exists(f, g, cube), mgr.exists(f & g, cube));
  }
}

TEST_F(BddTest, CofactorShannonExpansion) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Bdd f = mgr.zero();
    for (int m = 0; m < 5; ++m) {
      Bdd term = mgr.one();
      for (unsigned v = 0; v < 6; ++v) {
        const int pick = static_cast<int>(rng() % 3);
        if (pick == 0) term &= mgr.var(v);
        if (pick == 1) term &= !mgr.var(v);
      }
      f |= term;
    }
    for (unsigned v = 0; v < 6; ++v) {
      const Bdd lo = mgr.cofactor(f, v, false);
      const Bdd hi = mgr.cofactor(f, v, true);
      EXPECT_EQ(f, mgr.ite(mgr.var(v), hi, lo));
      // Cofactors are independent of v.
      auto sup_lo = mgr.support(lo);
      EXPECT_EQ(std::count(sup_lo.begin(), sup_lo.end(), v), 0);
    }
  }
}

TEST_F(BddTest, PermuteRenamesSupport) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd f = a & !b;
  // Map 0 -> 2, 1 -> 3.
  const std::vector<int> perm{2, 3};
  const Bdd g = mgr.permute(f, perm);
  EXPECT_EQ(g, mgr.var(2) & !mgr.var(3));
  const auto sup = mgr.support(g);
  EXPECT_EQ(sup, (std::vector<unsigned>{2, 3}));
}

TEST_F(BddTest, PermuteSwapRoundTrips) {
  const Bdd f = (mgr.var(0) & mgr.var(2)) | ((!mgr.var(1)) & mgr.var(3));
  const std::vector<int> swap01{1, 0, 3, 2};
  const Bdd g = mgr.permute(f, swap01);
  EXPECT_NE(f, g);
  EXPECT_EQ(mgr.permute(g, swap01), f);
}

TEST_F(BddTest, CubeAndMinterm) {
  const std::vector<unsigned> vars{0, 2, 4};
  const Bdd c = mgr.cube(vars);
  EXPECT_EQ(c, mgr.var(0) & mgr.var(2) & mgr.var(4));
  const std::vector<bool> vals{true, false, true};
  const Bdd m = mgr.minterm(vars, vals);
  EXPECT_EQ(m, mgr.var(0) & !mgr.var(2) & mgr.var(4));
}

TEST_F(BddTest, MintermSizeMismatchThrows) {
  const std::vector<unsigned> vars{0, 1};
  const std::vector<bool> vals{true};
  EXPECT_THROW((void)mgr.minterm(vars, vals), std::invalid_argument);
}

TEST_F(BddTest, SatCountSmallFunctions) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.zero(), 3), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.one(), 3), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(a, 3), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(a & b, 3), 2.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(a | b, 3), 6.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(a ^ b, 2), 2.0);
}

TEST_F(BddTest, SatCountMatchesEnumeration) {
  std::mt19937 rng(3);
  const unsigned kVars = 7;
  std::vector<unsigned> vars(kVars);
  for (unsigned v = 0; v < kVars; ++v) vars[v] = v;
  for (int trial = 0; trial < 10; ++trial) {
    Bdd f = mgr.zero();
    for (int m = 0; m < 8; ++m) {
      Bdd term = mgr.one();
      for (unsigned v = 0; v < kVars; ++v) {
        const int pick = static_cast<int>(rng() % 3);
        if (pick == 0) term &= mgr.var(v);
        if (pick == 1) term &= !mgr.var(v);
      }
      f |= term;
    }
    std::size_t enumerated = 0;
    mgr.for_each_minterm(f, vars, [&](const std::vector<bool>&) {
      ++enumerated;
      return true;
    });
    EXPECT_DOUBLE_EQ(mgr.sat_count(f, kVars),
                     static_cast<double>(enumerated));
  }
}

TEST_F(BddTest, PickMintermSatisfiesFunction) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);
  const Bdd f = (a & !b) | (b & c);
  const std::vector<unsigned> vars{0, 1, 2};
  const auto m = mgr.pick_minterm(f, vars);
  ASSERT_TRUE(m.has_value());
  const Bdd point = mgr.minterm(vars, *m);
  EXPECT_TRUE(mgr.leq(point, f));
  EXPECT_FALSE(mgr.pick_minterm(mgr.zero(), vars).has_value());
}

TEST_F(BddTest, ForEachMintermEnumeratesAll) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd f = a ^ b;
  const std::vector<unsigned> vars{0, 1};
  std::vector<std::vector<bool>> seen;
  mgr.for_each_minterm(f, vars, [&](const std::vector<bool>& v) {
    seen.push_back(v);
    return true;
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::vector<bool>{false, true}));
  EXPECT_EQ(seen[1], (std::vector<bool>{true, false}));
}

TEST_F(BddTest, ForEachMintermEarlyStop) {
  const Bdd f = mgr.one();
  const std::vector<unsigned> vars{0, 1, 2};
  int count = 0;
  const bool completed = mgr.for_each_minterm(f, vars, [&](const auto&) {
    ++count;
    return count < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3);
}

TEST_F(BddTest, SupportComputation) {
  const Bdd f = (mgr.var(1) & mgr.var(4)) | mgr.var(2);
  EXPECT_EQ(mgr.support(f), (std::vector<unsigned>{1, 2, 4}));
  EXPECT_TRUE(mgr.support(mgr.one()).empty());
  EXPECT_TRUE(mgr.support(mgr.zero()).empty());
}

TEST_F(BddTest, Intersects) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_TRUE(mgr.intersects(a, b));
  EXPECT_FALSE(mgr.intersects(a, !a));
  EXPECT_FALSE(mgr.intersects(a & b, !a));
}

TEST_F(BddTest, NodeCountOfSimpleFunctions) {
  EXPECT_EQ(mgr.zero().node_count(), 1u);
  EXPECT_EQ(mgr.one().node_count(), 1u);
  // A single variable: the node plus both constants.
  EXPECT_EQ(mgr.var(0).node_count(), 3u);
}

TEST_F(BddTest, GarbageCollectionPreservesLiveHandles) {
  const Bdd keep = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  const auto keep_idx = keep.index();
  {
    // Create and drop a pile of temporaries.
    Bdd junk = mgr.zero();
    for (unsigned v = 3; v < 14; ++v) junk |= mgr.var(v) & mgr.var(v - 1);
  }
  mgr.collect_garbage();
  EXPECT_EQ(keep.index(), keep_idx);  // index stability across GC
  // The function is still intact and operable.
  EXPECT_EQ(keep & mgr.one(), keep);
  EXPECT_TRUE(mgr.leq(mgr.var(0) & mgr.var(1), keep));
  const auto s = mgr.stats();
  EXPECT_GE(s.gc_runs, 1u);
}

TEST_F(BddTest, GarbageCollectionReclaimsDeadNodes) {
  {
    Bdd junk = mgr.zero();
    for (unsigned v = 0; v < 16; ++v) junk ^= mgr.var(v);
  }
  const auto before = mgr.stats();
  mgr.collect_garbage();
  const auto after = mgr.stats();
  EXPECT_GT(after.free_nodes, before.free_nodes);
  // Recreating the same function after GC works and is canonical.
  Bdd f = mgr.zero();
  for (unsigned v = 0; v < 16; ++v) f ^= mgr.var(v);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, 16), 32768.0);
}

TEST_F(BddTest, CrossManagerOperandThrows) {
  BddManager other;
  const Bdd a = mgr.var(0);
  const Bdd b = other.var(0);
  EXPECT_THROW((void)mgr.apply_and(a, b), std::invalid_argument);
}

TEST_F(BddTest, PermuteMissingMappingThrows) {
  const Bdd f = mgr.var(0) & mgr.var(1);
  const std::vector<int> bad{2, -1};
  EXPECT_THROW((void)mgr.permute(f, bad), std::invalid_argument);
}

TEST_F(BddTest, ConstrainAgreesOnCareSet) {
  std::mt19937 rng(21);
  const unsigned kVars = 6;
  auto random_function = [&]() {
    Bdd f = mgr.zero();
    for (int m = 0; m < 5; ++m) {
      Bdd term = mgr.one();
      for (unsigned v = 0; v < kVars; ++v) {
        const int pick = static_cast<int>(rng() % 3);
        if (pick == 0) term &= mgr.var(v);
        if (pick == 1) term &= !mgr.var(v);
      }
      f |= term;
    }
    return f;
  };
  for (int trial = 0; trial < 20; ++trial) {
    const Bdd f = random_function();
    Bdd c = random_function();
    if (c.is_zero()) c = mgr.one();
    const Bdd g = mgr.constrain(f, c);
    // Defining property: g & c == f & c.
    EXPECT_EQ(g & c, f & c);
  }
}

TEST_F(BddTest, ConstrainSimplifies) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  // Under care set a, f = a & b collapses to b.
  EXPECT_EQ(mgr.constrain(a & b, a), b);
  // Constraining by itself yields one.
  EXPECT_EQ(mgr.constrain(a & b, a & b), mgr.one());
  EXPECT_THROW((void)mgr.constrain(a, mgr.zero()), std::invalid_argument);
}

TEST_F(BddTest, ComposeSubstitutesFunction) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);
  const Bdd f = a ^ b;
  // Substitute b := (a & c).
  EXPECT_EQ(mgr.compose(f, 1, a & c), a ^ (a & c));
  // Substituting a variable not in the support is the identity.
  EXPECT_EQ(mgr.compose(f, 5, c), f);
  // Substituting a constant equals the cofactor.
  EXPECT_EQ(mgr.compose(f, 1, mgr.one()), mgr.cofactor(f, 1, true));
  EXPECT_EQ(mgr.compose(f, 1, mgr.zero()), mgr.cofactor(f, 1, false));
}

TEST_F(BddTest, ComposeShannonIdentity) {
  // f == ite(g, compose(f, v, 1), compose(f, v, 0)) when substituting g.
  std::mt19937 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Bdd f = mgr.zero();
    for (int m = 0; m < 4; ++m) {
      Bdd term = mgr.one();
      for (unsigned v = 0; v < 5; ++v) {
        const int pick = static_cast<int>(rng() % 3);
        if (pick == 0) term &= mgr.var(v);
        if (pick == 1) term &= !mgr.var(v);
      }
      f |= term;
    }
    const Bdd g = mgr.var(3) ^ mgr.var(4);
    const unsigned v = 1;
    const Bdd composed = mgr.compose(f, v, g);
    const Bdd expected = mgr.ite(g, mgr.cofactor(f, v, true),
                                 mgr.cofactor(f, v, false));
    EXPECT_EQ(composed, expected);
  }
}

TEST_F(BddTest, PointEvaluation) {
  const Bdd f = (mgr.var(0) & mgr.var(2)) | ((!mgr.var(1)) & mgr.var(3));
  for (unsigned a = 0; a < 16; ++a) {
    std::vector<bool> point(4);
    for (unsigned v = 0; v < 4; ++v) point[v] = (a >> v) & 1u;
    const bool expected =
        (point[0] && point[2]) || (!point[1] && point[3]);
    EXPECT_EQ(mgr.eval(f, point), expected) << "assignment " << a;
  }
  // Variables beyond the vector default to false.
  const std::vector<bool> kShort{true};
  EXPECT_FALSE(mgr.eval(mgr.var(7), kShort));
  EXPECT_TRUE(mgr.eval(mgr.one(), kShort));
  EXPECT_FALSE(mgr.eval(mgr.zero(), kShort));
}

TEST_F(BddTest, DotExport) {
  const Bdd f = mgr.var(0) & !mgr.var(1);
  const std::string dot = mgr.to_dot(f);
  EXPECT_NE(dot.find("digraph bdd"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  const std::string named =
      mgr.to_dot(f, [](unsigned v) { return "var" + std::to_string(v); });
  EXPECT_NE(named.find("var0"), std::string::npos);
}

// Property sweep: random 3-term DNFs over n variables evaluated against a
// brute-force truth table.
class BddSemanticsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddSemanticsProperty, RandomDnfMatchesTruthTable) {
  BddManager mgr;
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const unsigned n = 6;
  // Build a random DNF both as a BDD and as an evaluatable description.
  struct Term {
    unsigned pos_mask, neg_mask;
  };
  std::vector<Term> terms;
  Bdd f = mgr.zero();
  for (int t = 0; t < 4; ++t) {
    Term term{0, 0};
    Bdd tb = mgr.one();
    for (unsigned v = 0; v < n; ++v) {
      const int pick = static_cast<int>(rng() % 3);
      if (pick == 0) {
        term.pos_mask |= 1u << v;
        tb &= mgr.var(v);
      } else if (pick == 1) {
        term.neg_mask |= 1u << v;
        tb &= !mgr.var(v);
      }
    }
    terms.push_back(term);
    f |= tb;
  }
  auto eval = [&terms](unsigned assignment) {
    for (const Term& t : terms) {
      if ((assignment & t.pos_mask) == t.pos_mask &&
          (assignment & t.neg_mask) == 0) {
        return true;
      }
    }
    return false;
  };
  std::vector<unsigned> vars(n);
  for (unsigned v = 0; v < n; ++v) vars[v] = v;
  for (unsigned a = 0; a < (1u << n); ++a) {
    std::vector<bool> vals(n);
    for (unsigned v = 0; v < n; ++v) vals[v] = (a >> v) & 1u;
    const Bdd point = mgr.minterm(vars, vals);
    EXPECT_EQ(mgr.leq(point, f), eval(a)) << "assignment " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddSemanticsProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Variable ordering: id/level decoupling, set_order, sifting
// ---------------------------------------------------------------------------

class BddReorderTest : public ::testing::Test {
 protected:
  BddManager mgr;

  /// Random 5-term DNF over `n` variables (deterministic per seed).
  Bdd random_dnf(unsigned n, unsigned seed) {
    std::mt19937 rng(seed);
    Bdd f = mgr.zero();
    for (int m = 0; m < 5; ++m) {
      Bdd term = mgr.one();
      for (unsigned v = 0; v < n; ++v) {
        const int pick = static_cast<int>(rng() % 3);
        if (pick == 0) term &= mgr.var(v);
        if (pick == 1) term &= !mgr.var(v);
      }
      f |= term;
    }
    return f;
  }

  /// Truth table of f over variables 0..n-1 as a bitset-by-assignment.
  std::vector<bool> truth_table(const Bdd& f, unsigned n) {
    std::vector<bool> table(std::size_t{1} << n);
    for (unsigned a = 0; a < (1u << n); ++a) {
      std::vector<bool> point(n);
      for (unsigned v = 0; v < n; ++v) point[v] = (a >> v) & 1u;
      table[a] = mgr.eval(f, point);
    }
    return table;
  }
};

TEST_F(BddReorderTest, InitialOrderMatchesVariableIds) {
  (void)mgr.var(3);  // creates vars 0..3
  for (unsigned v = 0; v < 4; ++v) {
    EXPECT_EQ(mgr.level_of(v), v);
    EXPECT_EQ(mgr.var_at_level(v), v);
  }
  EXPECT_EQ(mgr.level_order(), (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST_F(BddReorderTest, SetOrderPreservesSemantics) {
  const unsigned n = 6;
  const Bdd f = random_dnf(n, 42);
  const auto before = truth_table(f, n);
  const auto support_before = mgr.support(f);

  const std::vector<unsigned> reversed{5, 4, 3, 2, 1, 0};
  mgr.set_order(reversed);

  EXPECT_EQ(mgr.level_order(), reversed);
  for (unsigned v = 0; v < n; ++v) {
    EXPECT_EQ(mgr.var_at_level(mgr.level_of(v)), v);  // maps stay bijective
  }
  EXPECT_EQ(truth_table(f, n), before);
  EXPECT_EQ(mgr.support(f), support_before);  // support is id-based
}

TEST_F(BddReorderTest, SetOrderKeepsHandlesIndicesAndCanonicity) {
  const Bdd f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  const NodeIndex idx = f.index();

  mgr.set_order(std::vector<unsigned>{2, 1, 0});

  // The handle still points at the same slot and the slot still holds the
  // same function: rebuilding it hash-conses onto the identical index.
  EXPECT_EQ(f.index(), idx);
  const Bdd rebuilt = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  EXPECT_EQ(rebuilt, f);
  EXPECT_EQ(rebuilt.index(), idx);
}

TEST_F(BddReorderTest, SetOrderRoundTripRestoresFingerprint) {
  const Bdd f = random_dnf(5, 7);
  const std::uint64_t fp0 = mgr.order_fingerprint();
  const auto table = truth_table(f, 5);

  mgr.set_order(std::vector<unsigned>{4, 2, 0, 3, 1});
  EXPECT_NE(mgr.order_fingerprint(), fp0);
  mgr.set_order(std::vector<unsigned>{0, 1, 2, 3, 4});
  EXPECT_EQ(mgr.order_fingerprint(), fp0);
  EXPECT_EQ(truth_table(f, 5), table);
}

TEST_F(BddReorderTest, SetOrderRejectsNonPermutations) {
  (void)mgr.var(2);  // three variables
  EXPECT_THROW(mgr.set_order(std::vector<unsigned>{0, 1}),
               std::invalid_argument);
  EXPECT_THROW(mgr.set_order(std::vector<unsigned>{0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(mgr.set_order(std::vector<unsigned>{0, 1, 3}),
               std::invalid_argument);
}

TEST_F(BddReorderTest, SiftingShrinksAdversarialOrder) {
  // (x0&x1) | (x2&x3) | (x4&x5) is linear under the pairing order but
  // exponential when the ands are split across the order. Force the bad
  // interleaving, then let sifting find its way back.
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3)) |
                (mgr.var(4) & mgr.var(5));
  const auto table = truth_table(f, 6);

  mgr.set_order(std::vector<unsigned>{0, 2, 4, 1, 3, 5});
  const std::size_t bad = f.node_count();

  (void)mgr.try_reorder();
  const std::size_t sifted = f.node_count();

  EXPECT_LE(sifted * 2, bad);  // at least a 2x reduction on this family
  EXPECT_EQ(truth_table(f, 6), table);
  const auto s = mgr.stats();
  EXPECT_GE(s.reorders, 1u);
  EXPECT_GT(s.level_swaps, 0u);
}

TEST_F(BddReorderTest, SiftingIsDeterministicAcrossManagers) {
  auto run = [](BddManager& m) {
    const Bdd f = (m.var(0) & m.var(1)) | (m.var(2) & m.var(3)) |
                  (m.var(4) & m.var(5));
    m.set_order(std::vector<unsigned>{0, 2, 4, 1, 3, 5});
    (void)m.try_reorder();
    return std::make_pair(m.level_order(), m.stats());
  };
  BddManager a, b;
  const auto [order_a, stats_a] = run(a);
  const auto [order_b, stats_b] = run(b);
  EXPECT_EQ(order_a, order_b);
  EXPECT_EQ(stats_a.order_fingerprint, stats_b.order_fingerprint);
  EXPECT_EQ(stats_a.level_swaps, stats_b.level_swaps);
  EXPECT_EQ(stats_a.live_nodes, stats_b.live_nodes);
}

TEST_F(BddReorderTest, OperationsAgreeAcrossReorder) {
  // Results computed before a reorder keep working as operands after it,
  // and post-reorder recomputation reaches the same canonical nodes.
  const Bdd f = random_dnf(6, 1);
  const Bdd g = random_dnf(6, 2);
  const Bdd pre_and = f & g;
  const Bdd pre_exists = mgr.exists(f, mgr.cube(std::vector<unsigned>{1, 3}));

  mgr.set_order(std::vector<unsigned>{5, 3, 1, 4, 2, 0});
  (void)mgr.try_reorder();

  EXPECT_EQ(f & g, pre_and);
  EXPECT_EQ(mgr.exists(f, mgr.cube(std::vector<unsigned>{1, 3})), pre_exists);
  EXPECT_EQ(mgr.ite(f, g, !g), (f & g) | ((!f) & !g));
  for (unsigned v = 0; v < 6; ++v) {
    EXPECT_EQ(f, mgr.ite(mgr.var(v), mgr.cofactor(f, v, true),
                         mgr.cofactor(f, v, false)));
  }
}

TEST_F(BddReorderTest, AutoPolicyTriggersSifting) {
  mgr.set_reorder_policy(ReorderPolicy::kAuto);
  mgr.set_reorder_threshold(64);
  EXPECT_EQ(mgr.reorder_policy(), ReorderPolicy::kAuto);

  std::mt19937 rng(13);
  Bdd acc = mgr.zero();
  for (int round = 0; round < 40; ++round) {
    Bdd term = mgr.one();
    for (unsigned v = 0; v < 12; ++v) {
      const int pick = static_cast<int>(rng() % 3);
      if (pick == 0) term &= mgr.var(v);
      if (pick == 1) term &= !mgr.var(v);
    }
    acc |= term;
  }
  EXPECT_GE(mgr.stats().reorders, 1u);
  // The accumulated function still evaluates consistently.
  const auto m = mgr.pick_minterm(acc, std::vector<unsigned>{0, 1, 2, 3, 4, 5,
                                                             6, 7, 8, 9, 10,
                                                             11});
  ASSERT_TRUE(m.has_value());
  std::vector<bool> point(*m);
  EXPECT_TRUE(mgr.eval(acc, point));
}

TEST_F(BddReorderTest, PeakLiveNodesIsMonotoneHighWaterMark) {
  const auto s0 = mgr.stats();
  { const Bdd junk = random_dnf(10, 99); (void)junk; }
  const auto s1 = mgr.stats();
  mgr.collect_garbage();
  const auto s2 = mgr.stats();
  EXPECT_GE(s1.peak_live_nodes, s0.peak_live_nodes);
  EXPECT_GE(s2.peak_live_nodes, s1.peak_live_nodes);  // GC cannot lower it
  EXPECT_LE(s2.live_nodes, s2.peak_live_nodes);
}

// ---------------------------------------------------------------------------
// cube()/minterm() argument hygiene
// ---------------------------------------------------------------------------

TEST_F(BddTest, CubeDeduplicatesVariables) {
  const Bdd deduped = mgr.cube(std::vector<unsigned>{0, 2, 0, 2, 2});
  EXPECT_EQ(deduped, mgr.var(0) & mgr.var(2));
  EXPECT_EQ(deduped, mgr.cube(std::vector<unsigned>{0, 2}));
}

TEST_F(BddTest, MintermDeduplicatesConsistentRepeats) {
  const std::vector<unsigned> vars{0, 1, 0};
  const std::vector<bool> vals{true, false, true};
  EXPECT_EQ(mgr.minterm(vars, vals), mgr.var(0) & !mgr.var(1));
}

TEST_F(BddTest, MintermConflictingValuesThrow) {
  const std::vector<unsigned> vars{0, 1, 0};
  const std::vector<bool> vals{true, false, false};
  EXPECT_THROW((void)mgr.minterm(vars, vals), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GC invariants
// ---------------------------------------------------------------------------

TEST_F(BddTest, GcRetainsExactlyTheReachableNodes) {
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) ^ mgr.var(3));
  {
    Bdd junk = mgr.zero();
    for (unsigned v = 4; v < 20; ++v) junk ^= mgr.var(v);
  }
  mgr.collect_garbage();
  const auto s = mgr.stats();
  // Everything not on the free list is reachable from the one live handle.
  EXPECT_EQ(s.live_nodes, mgr.node_count(f));
  EXPECT_EQ(s.allocated_nodes, s.live_nodes + s.free_nodes);
}

TEST_F(BddTest, GcPreservesCofactorStructure) {
  const Bdd f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  const Bdd lo = f.low();
  const Bdd hi = f.high();
  mgr.collect_garbage();
  // Child handles survive and still stitch back into the parent.
  EXPECT_EQ(mgr.ite(mgr.var(f.top_var()), hi, lo), f);
}

TEST_F(BddTest, NoStaleCacheAcrossGc) {
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd before = a & b;  // populates the op cache
  mgr.collect_garbage();     // must not leave entries for reclaimed slots
  {
    Bdd churn = mgr.zero();
    for (unsigned v = 2; v < 10; ++v) churn |= mgr.var(v) & mgr.var(v - 1);
  }
  mgr.collect_garbage();
  EXPECT_EQ(a & b, before);           // recomputed or validly cached
  EXPECT_EQ(!(!(a & b)), before);     // derived ops agree too
  EXPECT_DOUBLE_EQ(mgr.sat_count(a & b, 2), 1.0);
}

TEST_F(BddTest, FreeSlotsAreReusedAfterGc) {
  {
    Bdd junk = mgr.zero();
    for (unsigned v = 0; v < 12; ++v) junk ^= mgr.var(v);
  }
  mgr.collect_garbage();
  const auto after_gc = mgr.stats();
  ASSERT_GT(after_gc.free_nodes, 0u);
  // Rebuilding fills freed slots instead of growing the arena.
  Bdd f = mgr.zero();
  for (unsigned v = 0; v < 12; ++v) f ^= mgr.var(v);
  EXPECT_EQ(mgr.stats().allocated_nodes, after_gc.allocated_nodes);
}

// ---------------------------------------------------------------------------
// pick_minterm: lexicographic-in-list-order, reorder-invariant
// ---------------------------------------------------------------------------

TEST_F(BddTest, PickMintermIsLexSmallestInListOrder) {
  const Bdd f = mgr.var(0) | mgr.var(1);
  // Over {0, 1}: var0=false works (f|_{!x0} = x1 != 0), then var1 is forced.
  const auto m01 = mgr.pick_minterm(f, std::vector<unsigned>{0, 1});
  ASSERT_TRUE(m01.has_value());
  EXPECT_EQ(*m01, (std::vector<bool>{false, true}));
  // Over {1, 0}: var1=false first, then var0 forced — list order decides.
  const auto m10 = mgr.pick_minterm(f, std::vector<unsigned>{1, 0});
  ASSERT_TRUE(m10.has_value());
  EXPECT_EQ(*m10, (std::vector<bool>{false, true}));
}

TEST_F(BddTest, PickMintermUnaffectedByReorder) {
  const Bdd f = (mgr.var(0) & !mgr.var(2)) | (mgr.var(1) & mgr.var(3));
  const std::vector<unsigned> vars{0, 1, 2, 3};
  const auto before = mgr.pick_minterm(f, vars);
  ASSERT_TRUE(before.has_value());
  mgr.set_order(std::vector<unsigned>{3, 1, 2, 0});
  const auto after = mgr.pick_minterm(f, vars);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, *before);
}

}  // namespace
}  // namespace simcov::bdd
