// Unit tests for the coverage-directed sequence generators (src/gen) and
// the pluggable SequenceSource seam they plug into: determinism per
// (seed, spec), budget/termination behaviour, hybrid seed-phase
// truncation, factory dispatch, and the deprecated transition_tour_stream
// shim.
#include "gen/generators.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fsm/mealy.hpp"
#include "model/explicit_model.hpp"
#include "pipeline/stages.hpp"

namespace simcov {
namespace {

using Sequences = std::vector<std::vector<std::vector<bool>>>;

Sequences drain(model::SequenceSource& source) {
  Sequences out;
  while (auto seq = source.next_sequence()) out.push_back(std::move(*seq));
  return out;
}

model::GeneratorSpec biased_spec() {
  model::GeneratorSpec spec;
  spec.kind = model::GeneratorKind::kBiasedRandom;
  spec.sequence_length = 16;
  spec.max_walk_steps = 4096;
  return spec;
}

TEST(BiasedRandomSource, DeterministicPerSeedAndSpec) {
  const auto m = fsm::random_connected_machine(40, 4, 4, 7);
  const auto spec = biased_spec();
  model::ExplicitModel a(m, 0), b(m, 0), c(m, 0);
  gen::BiasedRandomSource sa(a, spec, 1), sb(b, spec, 1), sc(c, spec, 2);
  const auto seqs_a = drain(sa);
  const auto seqs_b = drain(sb);
  EXPECT_EQ(seqs_a, seqs_b) << "same (model, spec, seed) must reproduce";
  EXPECT_NE(seqs_a, drain(sc)) << "a different seed must change the walk";
  ASSERT_FALSE(seqs_a.empty());
}

TEST(BiasedRandomSource, RespectsBudgetsAndReportsConsistentSummary) {
  const auto m = fsm::random_connected_machine(64, 4, 4, 11);
  model::ExplicitModel em(m, 0);
  auto spec = biased_spec();
  spec.sequence_length = 8;
  spec.max_walk_steps = 100;
  gen::BiasedRandomSource source(em, spec, 3);
  const auto seqs = drain(source);
  std::size_t steps = 0;
  for (const auto& s : seqs) {
    EXPECT_LE(s.size(), spec.sequence_length);
    steps += s.size();
  }
  EXPECT_LE(steps, spec.max_walk_steps);
  const auto summary = source.summary();
  EXPECT_EQ(summary.steps, steps);
  EXPECT_EQ(summary.restarts, seqs.size() - 1);
  // The walk's own replay must agree with the tracker it filled.
  model::ExplicitModel replay(m, 0);
  model::Tour tour;
  tour.sequences = seqs;
  EXPECT_EQ(replay.evaluate(tour), summary.coverage);
  // Exhausted source keeps answering nullopt and a stable summary.
  EXPECT_FALSE(source.next_sequence().has_value());
  const auto again = source.summary();
  EXPECT_EQ(again.steps, summary.steps);
  EXPECT_EQ(again.restarts, summary.restarts);
  EXPECT_EQ(again.coverage, summary.coverage);
}

TEST(BiasedRandomSource, CoversSmallMachineCompletelyAndStops) {
  // On a small strongly-connected machine the bias chases the un-hit
  // transitions, so the walk reaches complete transition coverage well
  // inside a generous budget and then terminates on its own.
  const auto m = fsm::random_connected_machine(12, 3, 3, 5);
  model::ExplicitModel em(m, 0);
  auto spec = biased_spec();
  spec.max_walk_steps = 1 << 20;
  gen::BiasedRandomSource source(em, spec, 1);
  const auto seqs = drain(source);
  const auto summary = source.summary();
  EXPECT_TRUE(summary.complete)
      << "covered " << summary.coverage.transitions_covered << "/"
      << summary.coverage.transitions_total;
  EXPECT_LT(summary.steps, spec.max_walk_steps);
  ASSERT_FALSE(seqs.empty());
}

TEST(BiasedRandomSource, AbsorbRejectsInvalidInputs) {
  // A machine with an undefined transition: state 0 only defines input 0.
  fsm::MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 0, 0);
  m.set_transition(1, 1, 1, 0);
  model::ExplicitModel em(m, 0);
  gen::BiasedRandomSource source(em, biased_spec(), 1);
  const Sequences bad{{model::TestModel::unpack_bits(1, em.input_bits())}};
  EXPECT_THROW(source.absorb_sequence(bad[0]), std::domain_error);
}

TEST(HybridSource, SeedPhaseIsATruncatedTourPrefix) {
  const auto m = fsm::random_connected_machine(48, 4, 4, 13);
  model::ExplicitModel tour_model(m, 0);
  const auto full_tour = drain(*tour_model.tour_source());

  model::GeneratorSpec spec;
  spec.kind = model::GeneratorKind::kHybrid;
  spec.sequence_length = 16;
  spec.max_walk_steps = 64;
  spec.hybrid_tour_steps = 24;
  model::ExplicitModel em(m, 0);
  gen::HybridSource source(em, spec, 1);
  const auto seqs = drain(source);
  ASSERT_FALSE(seqs.empty());

  // The seed phase replays tour sequences verbatim, truncating the one
  // that crosses the budget; every step after that comes from the walk.
  std::size_t seed_steps = 0;
  std::size_t i = 0;
  for (; i < seqs.size() && seed_steps < spec.hybrid_tour_steps; ++i) {
    ASSERT_LT(i, full_tour.size());
    const std::size_t remaining = spec.hybrid_tour_steps - seed_steps;
    if (seqs[i].size() == full_tour[i].size() &&
        full_tour[i].size() <= remaining) {
      EXPECT_EQ(seqs[i], full_tour[i]);
    } else {
      ASSERT_EQ(seqs[i].size(), remaining) << "truncated seed sequence";
      for (std::size_t s = 0; s < seqs[i].size(); ++s) {
        EXPECT_EQ(seqs[i][s], full_tour[i][s]);
      }
    }
    seed_steps += seqs[i].size();
  }
  EXPECT_LE(seed_steps, spec.hybrid_tour_steps);

  const auto summary = source.summary();
  std::size_t steps = 0;
  for (const auto& s : seqs) steps += s.size();
  EXPECT_EQ(summary.steps, steps);
  EXPECT_EQ(summary.restarts, seqs.size() - 1);
  model::ExplicitModel replay(m, 0);
  model::Tour tour;
  tour.sequences = seqs;
  EXPECT_EQ(replay.evaluate(tour), summary.coverage);
}

TEST(HybridSource, DeterministicPerSeedAndSpec) {
  const auto m = fsm::random_connected_machine(48, 4, 4, 13);
  model::GeneratorSpec spec;
  spec.kind = model::GeneratorKind::kHybrid;
  spec.sequence_length = 16;
  spec.max_walk_steps = 256;
  spec.hybrid_tour_steps = 40;
  model::ExplicitModel a(m, 0), b(m, 0);
  gen::HybridSource sa(a, spec, 9), sb(b, spec, 9);
  EXPECT_EQ(drain(sa), drain(sb));
}

TEST(HybridSource, ZeroTourBudgetDegeneratesToPureBiasedWalk) {
  const auto m = fsm::random_connected_machine(40, 4, 4, 7);
  auto spec = biased_spec();
  spec.kind = model::GeneratorKind::kHybrid;
  spec.hybrid_tour_steps = 0;
  model::ExplicitModel hybrid_model(m, 0), biased_model(m, 0);
  gen::HybridSource hybrid(hybrid_model, spec, 1);
  gen::BiasedRandomSource biased(biased_model, spec, 1);
  EXPECT_EQ(drain(hybrid), drain(biased));
}

TEST(OpenSequenceSource, TourKindMatchesTheModelsOwnTourSource) {
  const auto m = fsm::random_connected_machine(32, 3, 3, 3);
  model::ExplicitModel a(m, 0), b(m, 0);
  auto via_factory =
      gen::open_sequence_source(a, model::GeneratorSpec{}, 1);
  auto direct = b.tour_source();
  EXPECT_EQ(drain(*via_factory), drain(*direct));
}

TEST(OpenSequenceSource, DispatchesOnKind) {
  const auto m = fsm::random_connected_machine(32, 3, 3, 3);
  for (const auto kind : {model::GeneratorKind::kBiasedRandom,
                          model::GeneratorKind::kHybrid}) {
    model::ExplicitModel em(m, 0);
    model::GeneratorSpec spec = biased_spec();
    spec.kind = kind;
    auto source = gen::open_sequence_source(em, spec, 1);
    ASSERT_NE(source, nullptr);
    EXPECT_TRUE(source->next_sequence().has_value());
  }
}

TEST(GeneratorSpec, ParsingAndNames) {
  EXPECT_EQ(model::parse_generator_kind("tour"),
            model::GeneratorKind::kTransitionTour);
  EXPECT_EQ(model::parse_generator_kind("biased"),
            model::GeneratorKind::kBiasedRandom);
  EXPECT_EQ(model::parse_generator_kind("biased_random"),
            model::GeneratorKind::kBiasedRandom);
  EXPECT_EQ(model::parse_generator_kind("hybrid"),
            model::GeneratorKind::kHybrid);
  EXPECT_FALSE(model::parse_generator_kind("w-method").has_value());
  EXPECT_STREQ(model::generator_kind_name(model::GeneratorKind::kHybrid),
               "hybrid");
  EXPECT_TRUE(model::is_default_generator(model::GeneratorSpec{}));
  model::GeneratorSpec tweaked;
  tweaked.bias_strength = 5;
  EXPECT_FALSE(model::is_default_generator(tweaked));
}

TEST(GenerateTestSet, RejectsNonDefaultSpecOnOtherMethods) {
  const auto m = fsm::random_connected_machine(16, 3, 3, 3);
  model::GeneratorSpec spec = biased_spec();
  EXPECT_THROW(pipeline::generate_test_set(
                   m, 0, pipeline::TestMethod::kRandomWalk, 100, 1, spec),
               std::invalid_argument);
}

TEST(GenerateTestSet, BiasedSpecRoundTripsThroughInputIds) {
  // Machine-level generation wraps the machine as a bare ExplicitModel;
  // the yielded PI bit vectors must pack back into valid InputIds that
  // replay on the original machine.
  const auto m = fsm::random_connected_machine(24, 3, 4, 17);
  auto spec = biased_spec();
  spec.max_walk_steps = 512;
  const auto set = pipeline::generate_test_set(
      m, 0, pipeline::TestMethod::kTransitionTourSet, 100, 1, spec);
  ASSERT_FALSE(set.sequences.empty());
  for (const auto& seq : set.sequences) {
    fsm::StateId at = 0;
    for (const auto input : seq) {
      const auto t = m.transition(at, input);
      ASSERT_TRUE(t.has_value()) << "generated input invalid on the machine";
      at = t->next;
    }
  }
}

TEST(SequenceSourceSeam, DeprecatedShimDelegatesToTourSource) {
  const auto m = fsm::random_connected_machine(24, 3, 3, 5);
  model::ExplicitModel via_shim(m, 0), via_source(m, 0);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto shim = via_shim.transition_tour_stream();
#pragma GCC diagnostic pop
  auto source = via_source.tour_source();
  EXPECT_EQ(drain(*shim), drain(*source));
}

}  // namespace
}  // namespace simcov
