// Tests for the logic-network IR and the symbolic FSM layer (transition
// relations, image computation, reachability, counting, explicit extraction).
#include "sym/logic_network.hpp"
#include "sym/symbolic_fsm.hpp"

#include <gtest/gtest.h>

#include <random>

#include "testmodel/testmodel.hpp"
#include "tour/tour.hpp"

namespace simcov::sym {
namespace {

// ---------------------------------------------------------------------------
// LogicNetwork
// ---------------------------------------------------------------------------

TEST(LogicNet, ConcreteEvaluation) {
  LogicNetwork net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId x = net.make_xor(a, b);
  const SignalId n = net.make_not(x);
  const SignalId m = net.make_mux(a, b, n);
  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      const auto val = net.eval({va, vb});
      EXPECT_EQ(val[x], va != vb);
      EXPECT_EQ(val[n], !(va != vb));
      EXPECT_EQ(val[m], va ? vb : !(va != vb));
    }
  }
}

TEST(LogicNet, ConstantsAreShared) {
  LogicNetwork net;
  EXPECT_EQ(net.constant(true), net.constant(true));
  EXPECT_EQ(net.constant(false), net.constant(false));
  EXPECT_NE(net.constant(true), net.constant(false));
}

TEST(LogicNet, NaryHelpers) {
  LogicNetwork net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  const std::vector<SignalId> xs{a, b, c};
  const SignalId all = net.make_and(xs);
  const SignalId any = net.make_or(xs);
  const auto v1 = net.eval({true, true, false});
  EXPECT_FALSE(v1[all]);
  EXPECT_TRUE(v1[any]);
  const auto v2 = net.eval({true, true, true});
  EXPECT_TRUE(v2[all]);
  // Empty spans give neutral elements.
  const std::vector<SignalId> empty;
  EXPECT_TRUE(net.eval({false, false, false})[net.make_and(empty)]);
  EXPECT_FALSE(net.eval({false, false, false})[net.make_or(empty)]);
}

TEST(LogicNet, EqualityComparators) {
  LogicNetwork net;
  const SignalId a0 = net.add_input("a0");
  const SignalId a1 = net.add_input("a1");
  const SignalId b0 = net.add_input("b0");
  const SignalId b1 = net.add_input("b1");
  const std::vector<SignalId> a{a0, a1};
  const std::vector<SignalId> b{b0, b1};
  const SignalId eq = net.make_eq(a, b);
  const SignalId is2 = net.make_eq_const(a, 2);  // a1=1, a0=0
  EXPECT_TRUE(net.eval({true, false, true, false})[eq]);
  EXPECT_FALSE(net.eval({true, false, false, false})[eq]);
  EXPECT_TRUE(net.eval({false, true, false, false})[is2]);
  EXPECT_FALSE(net.eval({true, true, false, false})[is2]);
}

TEST(LogicNet, ValidationErrors) {
  LogicNetwork net;
  const SignalId a = net.add_input("a");
  EXPECT_THROW((void)net.make_not(99), std::out_of_range);
  EXPECT_THROW((void)net.eval({}), std::invalid_argument);
  const std::vector<SignalId> one{a};
  const std::vector<SignalId> two{a, a};
  EXPECT_THROW((void)net.make_eq(one, two), std::invalid_argument);
}

TEST(LogicNet, EqConstRejectsOverWidthConstants) {
  LogicNetwork net;
  const SignalId a0 = net.add_input("a0");
  const SignalId a1 = net.add_input("a1");
  const std::vector<SignalId> a{a0, a1};
  // 4 needs three bits — it can never match a 2-bit vector; building a
  // comparator that is constant-false would silently hide an encoding bug.
  EXPECT_THROW((void)net.make_eq_const(a, 4), std::invalid_argument);
  EXPECT_THROW((void)net.make_eq_const(a, ~std::uint64_t{0}),
               std::invalid_argument);
  // The full in-range span still builds: 3 is the 2-bit maximum.
  const SignalId is3 = net.make_eq_const(a, 3);
  EXPECT_TRUE(net.eval({true, true})[is3]);
  EXPECT_FALSE(net.eval({true, false})[is3]);
  // A 64-bit vector accepts any constant (nothing is over-width).
  LogicNetwork wide;
  std::vector<SignalId> bits;
  for (int i = 0; i < 64; ++i) {
    bits.push_back(wide.add_input("b" + std::to_string(i)));
  }
  EXPECT_NO_THROW((void)wide.make_eq_const(bits, ~std::uint64_t{0}));
}

TEST(LogicNet, SymbolicMatchesConcrete) {
  LogicNetwork net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  const SignalId f =
      net.make_or(net.make_and(a, net.make_not(b)), net.make_xor(b, c));
  bdd::BddManager mgr;
  const std::vector<bdd::Bdd> in{mgr.var(0), mgr.var(1), mgr.var(2)};
  const auto sym = net.eval_bdd(mgr, in);
  const std::vector<unsigned> vars{0, 1, 2};
  for (unsigned assignment = 0; assignment < 8; ++assignment) {
    const std::vector<bool> bits{(assignment & 1) != 0, (assignment & 2) != 0,
                                 (assignment & 4) != 0};
    const bool concrete = net.eval(bits)[f];
    const bdd::Bdd point = mgr.minterm(vars, bits);
    EXPECT_EQ(mgr.leq(point, sym[f]), concrete) << "assignment " << assignment;
  }
}

// ---------------------------------------------------------------------------
// SymbolicFsm on a hand-built 2-bit counter with enable.
// ---------------------------------------------------------------------------

/// 2-bit counter: counts up when `en`, holds otherwise. Output = carry.
SequentialCircuit counter_circuit() {
  SequentialCircuit c;
  const SignalId en = c.net.add_input("en");
  const SignalId q0 = c.net.add_input("q0");
  const SignalId q1 = c.net.add_input("q1");
  const SignalId n0 = c.net.make_xor(q0, en);
  const SignalId n1 = c.net.make_xor(q1, c.net.make_and(q0, en));
  const SignalId carry = c.net.make_and(en, c.net.make_and(q0, q1));
  c.primary_inputs = {en};
  c.latches = {{q0, n0, false, "q0"}, {q1, n1, false, "q1"}};
  c.outputs = {{"carry", carry}};
  return c;
}

TEST(SymFsm, CounterReachesAllFourStates) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  EXPECT_EQ(fsm.num_latches(), 2u);
  EXPECT_EQ(fsm.num_inputs(), 1u);
  const auto stats = fsm.stats();
  EXPECT_DOUBLE_EQ(stats.reachable_states, 4.0);
  // Each state has 2 valid inputs: 8 transitions.
  EXPECT_DOUBLE_EQ(stats.transitions, 8.0);
  EXPECT_DOUBLE_EQ(stats.valid_input_combinations, 2.0);
  // BFS depth: 00 -> 01 -> 10 -> 11 then a no-growth check round.
  EXPECT_GE(stats.reachability_iterations, 4u);
}

TEST(SymFsm, ImageOfSingleState) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  // Image of {00} = {00 (en=0), 01 (en=1)}.
  const bdd::Bdd img = fsm.image(fsm.initial_states());
  EXPECT_DOUBLE_EQ(fsm.count_states(img), 2.0);
  // The initial state is in its own image (en=0 holds).
  EXPECT_TRUE(mgr.leq(fsm.initial_states(), img));
}

TEST(SymFsm, ConstraintPrunesStateSpace) {
  // Constrain en=1: counter must cycle, and "hold" transitions vanish.
  SequentialCircuit c = counter_circuit();
  c.valid = c.net.inputs()[0];  // en itself must be 1
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const auto stats = fsm.stats();
  EXPECT_DOUBLE_EQ(stats.reachable_states, 4.0);
  EXPECT_DOUBLE_EQ(stats.transitions, 4.0);  // one valid input per state
  EXPECT_DOUBLE_EQ(stats.valid_input_combinations, 1.0);
}

TEST(SymFsm, UndeclaredInputThrows) {
  SequentialCircuit c;
  const SignalId a = c.net.add_input("a");
  const SignalId q = c.net.add_input("q");
  c.latches = {{q, c.net.make_not(q), false, "q"}};
  // `a` is neither latch nor declared primary input.
  (void)a;
  bdd::BddManager mgr;
  EXPECT_THROW((void)SymbolicFsm(mgr, c), std::invalid_argument);
}

TEST(SymFsm, SignalDeclaredTwiceThrows) {
  SequentialCircuit c;
  const SignalId q = c.net.add_input("q");
  c.latches = {{q, q, false, "q"}};
  c.primary_inputs = {q};
  bdd::BddManager mgr;
  EXPECT_THROW((void)SymbolicFsm(mgr, c), std::invalid_argument);
}

TEST(SymFsm, PreimageInvertsImage) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  // Preimage of the image of the initial state contains the initial state.
  const bdd::Bdd img = fsm.image(fsm.initial_states());
  const bdd::Bdd pre = fsm.preimage(img);
  EXPECT_TRUE(mgr.leq(fsm.initial_states(), pre));
  // State 01 is entered only from 00 (en=1) and from itself (en=0).
  const std::vector<unsigned> ps{fsm.ps_var(0), fsm.ps_var(1)};
  const std::vector<bool> s01{true, false};
  const bdd::Bdd state01 = mgr.minterm(ps, s01);
  const bdd::Bdd pred = fsm.preimage(state01);
  EXPECT_DOUBLE_EQ(fsm.count_states(pred), 2.0);
}

TEST(SymFsm, ReorderIsSemanticallyInvisible) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const bdd::Bdd reached = fsm.reachable_states();
  const bdd::Bdd img = fsm.image(fsm.initial_states());
  const double states = fsm.count_states(reached);
  const double transitions = fsm.count_transitions(reached);
  const std::uint64_t fp_before = mgr.order_fingerprint();

  (void)mgr.try_reorder();

  // Handles stay valid and recomputation reaches the same functions.
  EXPECT_EQ(fsm.image(fsm.initial_states()), img);
  EXPECT_DOUBLE_EQ(fsm.count_states(reached), states);
  EXPECT_DOUBLE_EQ(fsm.count_transitions(reached), transitions);
  // ps/ns/pi var ids address the same variables whatever the level map
  // says now (the order itself may or may not have moved).
  const std::vector<unsigned> ps{fsm.ps_var(0), fsm.ps_var(1)};
  const bdd::Bdd s00 = mgr.minterm(ps, std::vector<bool>{false, false});
  EXPECT_TRUE(mgr.leq(s00, reached));
  (void)fp_before;
  EXPECT_GE(mgr.stats().reorders, 1u);
}

TEST(SymFsm, AutoReorderPolicyGivesIdenticalCounts) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager static_mgr;
  SymbolicFsm static_fsm(static_mgr, c);
  const auto baseline = static_fsm.stats();

  bdd::BddManager auto_mgr;
  auto_mgr.set_reorder_policy(bdd::ReorderPolicy::kAuto);
  auto_mgr.set_reorder_threshold(16);
  SymbolicFsm auto_fsm(auto_mgr, c);
  const auto reordered = auto_fsm.stats();

  EXPECT_DOUBLE_EQ(reordered.reachable_states, baseline.reachable_states);
  EXPECT_DOUBLE_EQ(reordered.transitions, baseline.transitions);
  EXPECT_DOUBLE_EQ(reordered.valid_input_combinations,
                   baseline.valid_input_combinations);
  EXPECT_EQ(reordered.reachability_iterations,
            baseline.reachability_iterations);
}

TEST(Invariant, HoldsWhenBadUnreachable) {
  // Counter with the top bit forced off: q1 stays 0.
  SequentialCircuit c;
  const SignalId en = c.net.add_input("en");
  const SignalId q0 = c.net.add_input("q0");
  const SignalId q1 = c.net.add_input("q1");
  c.primary_inputs = {en};
  c.latches = {{q0, c.net.make_xor(q0, en), false, "q0"},
               {q1, c.net.constant(false), false, "q1"}};
  c.outputs = {{"q0", q0}};
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const auto result = fsm.check_invariant(!mgr.var(fsm.ps_var(1)));
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.counterexample.has_value());
}

TEST(Invariant, ShortestCounterexampleTrace) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  // "The counter never reaches 11": violated after 3 increments.
  const bdd::Bdd bad_state =
      mgr.var(fsm.ps_var(0)) & mgr.var(fsm.ps_var(1));
  const auto result = fsm.check_invariant(!bad_state);
  ASSERT_FALSE(result.holds);
  ASSERT_TRUE(result.counterexample.has_value());
  const auto& trace = *result.counterexample;
  ASSERT_EQ(trace.states.size(), 4u);  // 00 -> 01 -> 10 -> 11 (shortest)
  ASSERT_EQ(trace.inputs.size(), 3u);
  // Starts at reset, ends in the bad state.
  EXPECT_EQ(trace.states.front(), (std::vector<bool>{false, false}));
  EXPECT_EQ(trace.states.back(), (std::vector<bool>{true, true}));
  // Every step must be enabled (en = 1) to keep counting.
  for (const auto& in : trace.inputs) {
    ASSERT_EQ(in.size(), 1u);
    EXPECT_TRUE(in[0]);
  }
  // Replay the trace through the netlist to validate it end to end.
  std::vector<bool> state = trace.states.front();
  for (std::size_t k = 0; k < trace.inputs.size(); ++k) {
    const std::vector<bool> net_in{trace.inputs[k][0], state[0], state[1]};
    const auto values = c.net.eval(net_in);
    state = {values[c.latches[0].next], values[c.latches[1].next]};
    EXPECT_EQ(state, trace.states[k + 1]) << "step " << k;
  }
}

TEST(Invariant, ViolatedAtReset) {
  const SequentialCircuit c = counter_circuit();
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const auto result = fsm.check_invariant(mgr.zero());
  ASSERT_FALSE(result.holds);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(result.counterexample->states.size(), 1u);
  EXPECT_TRUE(result.counterexample->inputs.empty());
}

TEST(Invariant, ControlModelSafetyProperty) {
  // On the DLX control model: "stall and squash never assert together"
  // (they are driven by a load vs a control transfer in EX — exclusive).
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 2;
  const auto model = testmodel::build_dlx_control_model(opt);
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, model.circuit);
  // stall & squash are outputs over (ps, pi): check no reachable state
  // admits a valid input with both asserted.
  const auto& outs = fsm.output_functions();
  // outputs: stall=0, squash=1 (see testmodel.cpp ordering).
  const bdd::Bdd both = outs[0] & outs[1] & fsm.valid_inputs();
  const bdd::Bdd reachable = fsm.reachable_states();
  EXPECT_FALSE(mgr.intersects(reachable, both));
}

// ---------------------------------------------------------------------------
// Explicit extraction
// ---------------------------------------------------------------------------

TEST(Extract, CounterBecomesFourStateMachine) {
  const SequentialCircuit c = counter_circuit();
  const auto model = extract_explicit(c, 100);
  EXPECT_FALSE(model.truncated);
  EXPECT_EQ(model.machine.num_states(), 4u);
  EXPECT_EQ(model.machine.num_inputs(), 2u);  // en in {0,1}
  EXPECT_TRUE(model.machine.is_complete());
  EXPECT_EQ(model.state_bits.size(), 4u);
  // Output symbol: carry fires only on (11, en=1).
  fsm::OutputId carries = 0;
  for (fsm::StateId s = 0; s < 4; ++s) {
    for (fsm::InputId i = 0; i < 2; ++i) {
      carries += model.machine.transition(s, i)->output;
    }
  }
  EXPECT_EQ(carries, 1u);
}

TEST(Extract, AgreesWithSymbolicCounts) {
  const SequentialCircuit c = counter_circuit();
  const auto model = extract_explicit(c, 100);
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const auto stats = fsm.stats();
  EXPECT_DOUBLE_EQ(stats.reachable_states,
                   static_cast<double>(model.machine.num_states()));
  EXPECT_DOUBLE_EQ(stats.transitions,
                   static_cast<double>(model.machine.num_defined_transitions()));
}

TEST(Extract, ConstraintLeavesInvalidInputsUndefined) {
  SequentialCircuit c = counter_circuit();
  // en must be 1 in state 00 (q0=q1=0); elsewhere anything goes:
  // valid = en | q0 | q1.
  const auto ins = c.net.inputs();
  c.valid = c.net.make_or(ins[0], c.net.make_or(ins[1], ins[2]));
  const auto model = extract_explicit(c, 100);
  EXPECT_EQ(model.machine.num_states(), 4u);
  EXPECT_FALSE(model.machine.is_complete());
  // State 00 is the initial state: input en=0 undefined there.
  fsm::InputId en0 = model.input_bits[0][0] ? 1 : 0;
  EXPECT_FALSE(model.machine.transition(0, en0).has_value());
  EXPECT_TRUE(model.machine.transition(0, 1 - en0).has_value());
}

TEST(Extract, TruncationFlag) {
  const SequentialCircuit c = counter_circuit();
  const auto model = extract_explicit(c, 2);
  EXPECT_TRUE(model.truncated);
  EXPECT_LE(model.machine.num_states(), 2u);
}

TEST(Extract, ExtractedMachineSupportsTours) {
  const SequentialCircuit c = counter_circuit();
  const auto model = extract_explicit(c, 100);
  const auto t = tour::minimum_transition_tour(model.machine, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(tour::is_transition_tour(model.machine, 0, t->inputs));
  EXPECT_EQ(t->length(), 8u);  // Eulerian: every state in=out=2
}

// Property: on random gate networks, concrete evaluation and symbolic
// (BDD) evaluation agree on every assignment.
class LogicNetProperty : public ::testing::TestWithParam<int> {};

TEST_P(LogicNetProperty, ConcreteAndSymbolicAgree) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 53 + 11);
  LogicNetwork net;
  const unsigned kInputs = 5;
  std::vector<SignalId> pool;
  for (unsigned k = 0; k < kInputs; ++k) {
    pool.push_back(net.add_input("i" + std::to_string(k)));
  }
  pool.push_back(net.constant(false));
  pool.push_back(net.constant(true));
  auto pick = [&]() { return pool[rng() % pool.size()]; };
  for (int g = 0; g < 30; ++g) {
    switch (rng() % 5) {
      case 0: pool.push_back(net.make_not(pick())); break;
      case 1: pool.push_back(net.make_and(pick(), pick())); break;
      case 2: pool.push_back(net.make_or(pick(), pick())); break;
      case 3: pool.push_back(net.make_xor(pick(), pick())); break;
      case 4: pool.push_back(net.make_mux(pick(), pick(), pick())); break;
    }
  }
  bdd::BddManager mgr;
  std::vector<bdd::Bdd> in_funcs;
  for (unsigned k = 0; k < kInputs; ++k) in_funcs.push_back(mgr.var(k));
  const auto sym = net.eval_bdd(mgr, in_funcs);
  for (unsigned a = 0; a < (1u << kInputs); ++a) {
    std::vector<bool> bits(kInputs);
    std::vector<bool> by_var(kInputs);
    for (unsigned v = 0; v < kInputs; ++v) {
      bits[v] = (a >> v) & 1u;
      by_var[v] = bits[v];
    }
    const auto concrete = net.eval(bits);
    for (std::size_t s = 0; s < net.num_signals(); ++s) {
      ASSERT_EQ(concrete[s], mgr.eval(sym[s], by_var))
          << "signal " << s << " assignment " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogicNetProperty, ::testing::Range(0, 10));

// Property: random small circuits — symbolic and explicit agree on
// reachable-state and transition counts.
class SymExplicitAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SymExplicitAgreement, CountsMatch) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31 + 7);
  SequentialCircuit c;
  const unsigned kLatches = 3;
  const unsigned kInputs = 2;
  std::vector<SignalId> pis, qs;
  for (unsigned k = 0; k < kInputs; ++k) {
    pis.push_back(c.net.add_input("i" + std::to_string(k)));
  }
  for (unsigned j = 0; j < kLatches; ++j) {
    qs.push_back(c.net.add_input("q" + std::to_string(j)));
  }
  c.primary_inputs = pis;
  auto random_signal = [&]() {
    // Random 2-level expression over the available signals.
    auto pick = [&]() {
      const auto& pool = (rng() % 2 == 0) ? pis : qs;
      SignalId s = pool[rng() % pool.size()];
      return (rng() % 2 == 0) ? c.net.make_not(s) : s;
    };
    SignalId x = c.net.make_and(pick(), pick());
    SignalId y = c.net.make_xor(pick(), pick());
    return c.net.make_or(x, y);
  };
  for (unsigned j = 0; j < kLatches; ++j) {
    c.latches.push_back({qs[j], random_signal(), false, "q"});
  }
  c.outputs = {{"o", random_signal()}};

  const auto model = extract_explicit(c, 1u << kLatches);
  bdd::BddManager mgr;
  SymbolicFsm fsm(mgr, c);
  const auto stats = fsm.stats();
  EXPECT_FALSE(model.truncated);
  EXPECT_DOUBLE_EQ(stats.reachable_states,
                   static_cast<double>(model.machine.num_states()));
  EXPECT_DOUBLE_EQ(stats.transitions,
                   static_cast<double>(model.machine.num_defined_transitions()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymExplicitAgreement, ::testing::Range(0, 12));

}  // namespace
}  // namespace simcov::sym
