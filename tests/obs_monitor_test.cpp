// Tests for the live campaign monitor plane: the embedded HTTP server and
// its /metrics, /progress and /healthz routes, the ProgressEstimator's
// convergence-based ETA (driven by a synthetic clock), the stall watchdog's
// exactly-once latching and stage attribution (driven by manual ticks),
// the monitor's read-only-observer guarantee (campaign reports identical
// with it on or off), and the store-backed performance baseline flow.
#include "obs/monitor_server.hpp"
#include "obs/progress.hpp"
#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "store/artifact_store.hpp"
#include "store/codec.hpp"

namespace simcov {
namespace {

testmodel::TestModelOptions tiny_model_options() {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 1;
  opt.reduced_isa = true;
  return opt;
}

core::CampaignOptions tour_campaign_options() {
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = core::TestMethod::kTransitionTourSet;
  options.threads = 1;
  return options;
}

const std::vector<dlx::PipelineBug> kTwoBugs{
    dlx::PipelineBug::kNoLoadUseStall,
    dlx::PipelineBug::kNoForwardExMemA,
};

/// The campaign outcome with every wall-clock artifact erased — what must
/// not move a byte when a monitor observes the run.
std::string semantic_fingerprint(core::CampaignResult result) {
  result.timings = {};
  result.bdd_stats.reset();
  result.symbolic_stats.reset();
  result.store_stats.reset();
  result.baseline.reset();
  result.metrics.reset();
  return core::to_json(result);
}

/// RAII temp directory for store-backed tests.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* name)
      : path(std::filesystem::temp_directory_path() /
             (std::string("simcov_monitor_test_") + name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

// ---------------------------------------------------------------------------
// MonitorServer + http_get
// ---------------------------------------------------------------------------

TEST(MonitorServer, ServesHandlerResponsesOnAnEphemeralPort) {
  obs::MonitorServer server(0, [](const std::string& path)
                                   -> std::optional<obs::HttpResponse> {
    if (path == "/hello") {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "world\n"};
    }
    return std::nullopt;
  });
  ASSERT_NE(server.port(), 0u) << "port 0 must resolve to a real port";

  const auto ok = obs::http_get(server.port(), "/hello");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->body, "world\n");

  // The query string is stripped before routing.
  const auto with_query = obs::http_get(server.port(), "/hello?x=1");
  ASSERT_TRUE(with_query.has_value());
  EXPECT_EQ(with_query->status, 200);

  const auto missing = obs::http_get(server.port(), "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
}

TEST(MonitorServer, ServesManySequentialScrapes) {
  std::atomic<int> served{0};
  obs::MonitorServer server(0, [&served](const std::string&)
                                   -> std::optional<obs::HttpResponse> {
    served.fetch_add(1);
    return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok"};
  });
  for (int i = 0; i < 16; ++i) {
    const auto r = obs::http_get(server.port(), "/");
    ASSERT_TRUE(r.has_value()) << "scrape " << i;
    EXPECT_EQ(r->status, 200);
  }
  EXPECT_EQ(served.load(), 16);
}

// ---------------------------------------------------------------------------
// ProgressEstimator (synthetic clock)
// ---------------------------------------------------------------------------

/// Estimator wired to a test-owned clock variable.
struct ClockedEstimator {
  double now = 0.0;
  obs::ProgressEstimator estimator;
  ClockedEstimator()
      : estimator([this] { return now; }) {}
};

TEST(ProgressEstimator, SnapshotReflectsCommitsAndCoverage) {
  ClockedEstimator c;
  c.now = 10.0;
  c.estimator.begin(200);
  c.now = 12.0;
  c.estimator.on_commit(4, 40, 30, 50);

  const auto s = c.estimator.snapshot();
  EXPECT_TRUE(s.active);
  EXPECT_EQ(s.committed_sequences, 4u);
  EXPECT_EQ(s.committed_steps, 40u);
  EXPECT_EQ(s.states_visited, 30u);
  EXPECT_EQ(s.transitions_covered, 50u);
  EXPECT_EQ(s.transitions_total, 200u);
  EXPECT_DOUBLE_EQ(s.transition_coverage, 0.25);
  EXPECT_DOUBLE_EQ(s.elapsed_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.sequences_per_second, 2.0);

  c.estimator.end();
  EXPECT_FALSE(c.estimator.snapshot().active);
}

TEST(ProgressEstimator, FlatDiscoveryRateExtrapolatesLinearly) {
  ClockedEstimator c;
  c.now = 0.0;
  c.estimator.begin(100);
  // Constant discovery: 10 transitions per second.
  for (int i = 1; i <= 3; ++i) {
    c.now = i;
    c.estimator.on_commit(i, 10 * i, 5, 10 * static_cast<std::uint64_t>(i));
  }
  const auto s = c.estimator.snapshot();
  ASSERT_TRUE(s.eta_seconds.has_value());
  // 70 transitions remain at 10/s.
  EXPECT_NEAR(*s.eta_seconds, 7.0, 1e-9);
}

TEST(ProgressEstimator, DecayingDiscoverySumsTheGeometricTail) {
  ClockedEstimator c;
  c.now = 0.0;
  c.estimator.begin(120);
  // Halving gains: +64 @t=1, +32 @t=2, +16 @t=3 → r = 1/2, tail = 16.
  c.now = 1.0;
  c.estimator.on_commit(1, 10, 5, 64);
  c.now = 2.0;
  c.estimator.on_commit(2, 20, 5, 96);
  c.now = 3.0;
  c.estimator.on_commit(3, 30, 5, 112);

  const auto s = c.estimator.snapshot();
  ASSERT_TRUE(s.eta_seconds.has_value());
  // remaining = 8 = exactly the next half-window's gain → one more dt2.
  EXPECT_NEAR(*s.eta_seconds, 1.0, 1e-9);
}

TEST(ProgressEstimator, UnreachableGeometricTailReportsUnknown) {
  ClockedEstimator c;
  c.now = 0.0;
  c.estimator.begin(500);  // tail tops out at 112 + 16 = 128 < 500
  c.now = 1.0;
  c.estimator.on_commit(1, 10, 5, 64);
  c.now = 2.0;
  c.estimator.on_commit(2, 20, 5, 96);
  c.now = 3.0;
  c.estimator.on_commit(3, 30, 5, 112);

  EXPECT_FALSE(c.estimator.snapshot().eta_seconds.has_value())
      << "a decaying curve that cannot reach the total must not invent an "
         "ETA";
}

TEST(ProgressEstimator, FullCoverageMeansZeroEta) {
  ClockedEstimator c;
  c.now = 0.0;
  c.estimator.begin(50);
  c.now = 1.0;
  c.estimator.on_commit(1, 10, 5, 50);
  const auto s = c.estimator.snapshot();
  ASSERT_TRUE(s.eta_seconds.has_value());
  EXPECT_DOUBLE_EQ(*s.eta_seconds, 0.0);
}

TEST(ProgressEstimator, NoCommitsMeansUnknownEta) {
  ClockedEstimator c;
  c.now = 0.0;
  c.estimator.begin(50);
  EXPECT_FALSE(c.estimator.snapshot().eta_seconds.has_value());
}

// ---------------------------------------------------------------------------
// Watchdog (manual ticks)
// ---------------------------------------------------------------------------

TEST(Watchdog, InjectedStallFiresExactlyOnceWithStageAttribution) {
  obs::MetricsRegistry registry;
  obs::WatchdogOptions opt;
  opt.interval_seconds = 1.0;
  opt.stall_intervals = 3;
  obs::Watchdog dog(registry, opt);
  obs::CounterRecorder stall_events;
  dog.set_stall_sink(&stall_events);
  dog.set_queue_depth_fn([] { return std::uint64_t{7}; });
  std::atomic<int> cancelled{0};
  dog.set_on_stall([&cancelled] { cancelled.fetch_add(1); });

  // Healthy phase: commits advance every tick.
  std::uint64_t commit = 0;
  for (double t = 1.0; t <= 2.0; t += 1.0) {
    registry.item(obs::Stage::kSimulate, "clean_run", commit, 5);
    ++commit;
    dog.tick(t);
  }
  EXPECT_FALSE(dog.stalled());

  // Wedged phase: the tour stage keeps emitting events but nothing
  // commits — the stall must attribute to kTour, the stage last alive.
  for (double t = 3.0; t <= 8.0; t += 1.0) {
    registry.item(obs::Stage::kTour, "sequence", commit + 100, 3);
    dog.tick(t);
  }
  EXPECT_TRUE(dog.stalled());
  const auto stalls = dog.stalls();
  ASSERT_EQ(stalls.size(), 1u) << "the alarm must latch: one stall episode, "
                                  "one event, however long it persists";
  EXPECT_EQ(stalls[0].stage, obs::Stage::kTour);
  EXPECT_EQ(stalls[0].committed, 2u);
  EXPECT_EQ(stalls[0].queue_depth, 7u);
  EXPECT_EQ(stalls[0].idle_intervals, 3u);
  EXPECT_EQ(stall_events.value("campaign.stall"), 1u);
  EXPECT_EQ(cancelled.load(), 1);

  // Commits resume: the alarm re-arms ...
  registry.item(obs::Stage::kSimulate, "clean_run", commit, 5);
  dog.tick(9.0);
  EXPECT_FALSE(dog.stalled());
  // ... and a second wedge fires a second (distinct) stall.
  for (double t = 10.0; t <= 13.0; t += 1.0) dog.tick(t);
  EXPECT_TRUE(dog.stalled());
  EXPECT_EQ(dog.stalls().size(), 2u);
  EXPECT_EQ(stall_events.value("campaign.stall"), 2u);
  EXPECT_EQ(cancelled.load(), 2);
}

TEST(Watchdog, SeriesIsABoundedRingBuffer) {
  obs::MetricsRegistry registry;
  obs::WatchdogOptions opt;
  opt.stall_intervals = 1000;  // never stall here
  opt.series_capacity = 4;
  obs::Watchdog dog(registry, opt);
  for (double t = 1.0; t <= 10.0; t += 1.0) dog.tick(t);
  EXPECT_EQ(dog.ticks(), 10u);
  const auto series = dog.series();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series.front().at_seconds, 7.0);
  EXPECT_DOUBLE_EQ(series.back().at_seconds, 10.0);
}

// ---------------------------------------------------------------------------
// CampaignMonitor + pipeline integration
// ---------------------------------------------------------------------------

TEST(CampaignMonitor, ServesLiveEndpointsForACampaign) {
  obs::MonitorOptions mopt;
  mopt.port = 0;  // ephemeral
  obs::CampaignMonitor monitor(mopt);
  ASSERT_NE(monitor.port(), 0u);

  core::CampaignOptions options = tour_campaign_options();
  options.monitor = &monitor;
  const auto result = core::run_campaign(options, kTwoBugs);
  ASSERT_GT(result.sequences, 0u);

  // /progress: the committed totals the pipeline reported live.
  const auto progress = obs::http_get(monitor.port(), "/progress");
  ASSERT_TRUE(progress.has_value());
  EXPECT_EQ(progress->status, 200);
  EXPECT_NE(progress->body.find("\"report\":\"progress\""),
            std::string::npos);
  EXPECT_NE(progress->body.find("\"committed_sequences\":" +
                                std::to_string(result.sequences)),
            std::string::npos);
  EXPECT_NE(progress->body.find("\"transitions_total\":" +
                                std::to_string(result.model_transitions)),
            std::string::npos);
  // The campaign ended, so the snapshot reports inactive.
  EXPECT_NE(progress->body.find("\"active\":false"), std::string::npos);
  // Per-stage items and the watchdog section are present.
  EXPECT_NE(progress->body.find("\"stage\":\"simulate\""), std::string::npos);
  EXPECT_NE(progress->body.find("\"kind\":\"clean_run\""), std::string::npos);
  EXPECT_NE(progress->body.find("\"watchdog\""), std::string::npos);

  // /metrics: Prometheus exposition of the monitor's private registry.
  const auto metrics = obs::http_get(monitor.port(), "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("# TYPE simcov_clean_run histogram"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("simcov_clean_run_count{stage=\"simulate\"} " +
                               std::to_string(result.sequences)),
            std::string::npos);

  // /healthz: no watchdog ran, so never stalled.
  const auto health = obs::http_get(monitor.port(), "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  const auto missing = obs::http_get(monitor.port(), "/not-a-route");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
}

TEST(CampaignMonitor, IsAReadOnlyObserver) {
  core::CampaignOptions plain = tour_campaign_options();
  plain.collect_coverage_telemetry = true;
  const std::string reference =
      semantic_fingerprint(core::run_campaign(plain, kTwoBugs));

  obs::CampaignMonitor monitor;  // server on, watchdog off
  core::CampaignOptions observed = plain;
  observed.monitor = &monitor;
  EXPECT_EQ(semantic_fingerprint(core::run_campaign(observed, kTwoBugs)),
            reference)
      << "attaching a monitor must not move a byte of the semantic report";
}

TEST(CampaignMonitor, MonitorWithoutTelemetryFlagAddsNoReportSection) {
  core::CampaignOptions options = tour_campaign_options();
  ASSERT_FALSE(options.collect_coverage_telemetry);
  obs::CampaignMonitor monitor;
  options.monitor = &monitor;
  const auto result = core::run_campaign(options, kTwoBugs);
  EXPECT_FALSE(result.coverage_telemetry.has_value())
      << "the monitor forces the collector on for its live feed, but the "
         "report section stays gated on collect_coverage_telemetry";
}

TEST(CampaignMonitor, OutlivesCampaignsAndServesBetweenThem) {
  obs::CampaignMonitor monitor;
  core::CampaignOptions options = tour_campaign_options();
  options.monitor = &monitor;
  (void)core::run_campaign(options, {});
  const auto first = monitor.progress().snapshot();
  EXPECT_FALSE(first.active);
  EXPECT_GT(first.committed_sequences, 0u);

  // A second campaign re-arms the estimator through begin_campaign.
  (void)core::run_campaign(options, {});
  const auto second = monitor.progress().snapshot();
  EXPECT_FALSE(second.active);
  EXPECT_GT(second.committed_sequences, 0u);
}

// ---------------------------------------------------------------------------
// Store-backed performance baselines
// ---------------------------------------------------------------------------

TEST(PerfBaseline, CodecRoundTrips) {
  store::PerfBaseline b;
  b.sequences = 12;
  b.test_steps = 345;
  b.total_impl_cycles = 6789;
  b.total_seconds = 1.5;
  b.tour_seconds = 0.25;
  b.concretize_seconds = 0.5;
  b.simulate_seconds = 0.75;
  const auto payload = store::to_payload(b);
  EXPECT_EQ(store::baseline_from_payload(payload), b);
}

TEST(PerfBaseline, StoreKindIsRegistered) {
  EXPECT_EQ(store::kind_name(store::ArtifactKind::kBaseline),
            std::string_view("baseline"));
}

TEST(PerfBaseline, ColdRunPublishesAndWarmRunCompares) {
  TempDir dir("baseline");
  core::CampaignOptions options = tour_campaign_options();
  options.store_dir = dir.path.string();
  options.baseline_check = true;

  // Cold: no baseline stored yet — this run publishes its own summary.
  const auto cold = core::run_campaign(options, kTwoBugs);
  ASSERT_TRUE(cold.baseline.has_value());
  EXPECT_FALSE(cold.baseline->found);
  EXPECT_FALSE(cold.baseline->regression);
  EXPECT_EQ(cold.baseline->current.sequences, cold.sequences);
  EXPECT_EQ(cold.baseline->baseline, cold.baseline->current)
      << "a published baseline is this run's own summary";

  // Warm: the stored baseline is found and compared. The warm run reuses
  // the cached tour, so it cannot be 50% + 50ms slower than the cold one.
  const auto warm = core::run_campaign(options, kTwoBugs);
  ASSERT_TRUE(warm.baseline.has_value());
  EXPECT_TRUE(warm.baseline->found);
  EXPECT_FALSE(warm.baseline->regression);
  EXPECT_GT(warm.baseline->wall_ratio, 0.0);
  EXPECT_EQ(warm.baseline->baseline.sequences, cold.sequences);

  // The comparison lands in the report JSON.
  const std::string json = core::to_json(warm);
  EXPECT_NE(json.find("\"baseline\":{\"found\":true"), std::string::npos);
  EXPECT_NE(json.find("\"regression\":false"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ratio\":"), std::string::npos);
}

TEST(PerfBaseline, RegressionThresholdUsesToleranceAndFloor) {
  // Unit-check the comparison arithmetic via a synthetic stored payload:
  // publish a baseline claiming the campaign took ~0 seconds, then re-run
  // with a zero tolerance so any measurable time would regress — except
  // the 50ms absolute floor absorbs smoke-scale noise.
  TempDir dir("baseline_floor");
  core::CampaignOptions options = tour_campaign_options();
  options.store_dir = dir.path.string();
  options.baseline_check = true;
  options.baseline_tolerance = 0.0;

  const auto cold = core::run_campaign(options, kTwoBugs);
  ASSERT_TRUE(cold.baseline.has_value());
  if (cold.baseline->current.total_seconds < 0.04) {
    // Fast box: the warm run sits under the floor and must not regress.
    const auto warm = core::run_campaign(options, kTwoBugs);
    ASSERT_TRUE(warm.baseline.has_value());
    EXPECT_FALSE(warm.baseline->regression);
  }
}

}  // namespace
}  // namespace simcov
