// Tests for the parallel runtime: thread-pool scheduling/exception
// semantics and deterministic RNG stream derivation.
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace simcov::runtime {
namespace {

TEST(ResolveThreads, ZeroMeansHardware) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  // More tasks than lanes: the shared counter must hand out each index to
  // exactly one lane.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each_index(kCount, [&](std::size_t k) {
    hits[k].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t k = 0; k < kCount; ++k) {
    EXPECT_EQ(hits[k].load(), 1) << "index " << k;
  }
}

TEST(ThreadPool, EmptyLoopNeverCallsTheTask) {
  ThreadPool pool(3);
  bool called = false;
  pool.for_each_index(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(5);
  pool.for_each_index(5, [&](std::size_t k) {
    ran[k] = std::this_thread::get_id();
  });
  for (const auto id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.for_each_index(100,
                          [&](std::size_t k) {
                            if (k == 37) {
                              throw std::runtime_error("task 37 failed");
                            }
                            ran.fetch_add(1, std::memory_order_relaxed);
                          }),
      std::runtime_error);
  // The failing loop drains early: not every remaining task runs.
  EXPECT_LT(ran.load(), 100);
  // The pool stays usable after a failed loop.
  std::atomic<int> after{0};
  pool.for_each_index(50, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPool, BackToBackLoopsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.for_each_index(64, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64) << "round " << round;
  }
}

TEST(ParallelForEach, CoversAllIndicesAtAnyThreadCount) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}, std::size_t{0}}) {
    std::vector<std::atomic<int>> hits(123);
    parallel_for_each(threads, hits.size(), [&](std::size_t k) {
      hits[k].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t k = 0; k < hits.size(); ++k) {
      ASSERT_EQ(hits[k].load(), 1) << "threads=" << threads << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// RNG stream derivation
// ---------------------------------------------------------------------------

TEST(Rng, DeriveStreamIsDeterministic) {
  EXPECT_EQ(derive_stream(1, kWalkStream), derive_stream(1, kWalkStream));
  EXPECT_EQ(derive_run_stream(42, 7), derive_run_stream(42, 7));
}

TEST(Rng, StreamsAreDecoupledAcrossRelatedSeeds) {
  // Regression for the old `seed ^ 0x9e3779b9` split: there, the sampling
  // stream of seed s equalled the walk stream of seed s ^ 0x9e3779b9, so
  // related user seeds collapsed the two phases onto one RNG sequence. No
  // affine relative of a seed may reproduce another stream's seed.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 64; ++s) {
    for (const std::uint64_t seed :
         {s, s ^ std::uint64_t{0x9e3779b9}, s + 1, ~s, s << 1}) {
      seeds.insert(seed);
    }
  }
  std::set<std::uint64_t> seen;
  for (const std::uint64_t seed : seeds) {
    for (const std::uint64_t stream :
         {std::uint64_t{kWalkStream}, std::uint64_t{kMutantStream},
          std::uint64_t{kRunStream}}) {
      seen.insert(derive_stream(seed, stream));
    }
  }
  // All distinct (seed, stream) pairs map to distinct 64-bit values — in
  // particular no walk stream collides with any mutant stream of any
  // related seed.
  EXPECT_EQ(seen.size(), seeds.size() * 3);
}

TEST(Rng, RunStreamsDifferPerRun) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t run = 0; run < 1000; ++run) {
    seen.insert(derive_run_stream(123, run));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace simcov::runtime
