// Tests for the pipelined DLX implementation: lockstep equivalence with the
// ISA model on bug-free configs, hazard/bypass/squash mechanics, and the
// injectable control-bug catalogue (each bug must be exposable by a program
// and invisible to programs that avoid its trigger).
#include "dlx/pipeline.hpp"

#include <gtest/gtest.h>

#include <random>

#include "dlx/isa_model.hpp"

namespace simcov::dlx {
namespace {

std::vector<std::uint32_t> assemble(const std::vector<Instruction>& prog) {
  std::vector<std::uint32_t> words;
  words.reserve(prog.size());
  for (const auto& ins : prog) words.push_back(encode(ins));
  return words;
}

/// Runs both models on the program and expects identical retirement traces.
void expect_lockstep(const std::vector<Instruction>& prog,
                     PipelineConfig config = {}) {
  const auto words = assemble(prog);
  IsaModel spec(words);
  Pipeline impl(words, config);
  const auto spec_trace = spec.run();
  const auto impl_trace = impl.run();
  ASSERT_EQ(spec_trace.size(), impl_trace.size());
  for (std::size_t k = 0; k < spec_trace.size(); ++k) {
    EXPECT_EQ(spec_trace[k], impl_trace[k])
        << "divergence at instruction " << k << ": "
        << disassemble(spec_trace[k].ins);
  }
}

/// Expects the traces to differ somewhere (the bug is exposed).
void expect_divergence(const std::vector<Instruction>& prog,
                       PipelineConfig config) {
  const auto words = assemble(prog);
  IsaModel spec(words);
  Pipeline impl(words, config);
  const auto spec_trace = spec.run();
  const auto impl_trace = impl.run();
  const bool same = spec_trace.size() == impl_trace.size() &&
                    std::equal(spec_trace.begin(), spec_trace.end(),
                               impl_trace.begin());
  EXPECT_FALSE(same) << "bug was not exposed";
}

// ---------------------------------------------------------------------------
// Bug-free lockstep
// ---------------------------------------------------------------------------

TEST(PipelineLockstep, StraightLineAlu) {
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_itype(Opcode::kAddi, 2, 0, 7),
      make_rtype(Opcode::kAdd, 3, 1, 2),
      make_rtype(Opcode::kSub, 4, 3, 1),
      make_rtype(Opcode::kXor, 5, 4, 2),
      make_halt(),
  });
}

TEST(PipelineLockstep, BackToBackDependencies) {
  // Each instruction consumes the previous result: exercises EX/MEM bypass.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_rtype(Opcode::kAdd, 1, 1, 1),
      make_rtype(Opcode::kAdd, 1, 1, 1),
      make_rtype(Opcode::kAdd, 1, 1, 1),
      make_halt(),
  });
}

TEST(PipelineLockstep, DistanceTwoDependency) {
  // Producer and consumer two apart: exercises MEM/WB bypass.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 3),
      make_nop(),
      make_rtype(Opcode::kAdd, 2, 1, 1),
      make_halt(),
  });
}

TEST(PipelineLockstep, DistanceThreeDependency) {
  // Producer in WB while consumer reads in ID: regfile bypass.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 3),
      make_nop(),
      make_nop(),
      make_rtype(Opcode::kAdd, 2, 1, 1),
      make_halt(),
  });
}

TEST(PipelineLockstep, LoadUseInterlock) {
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 42),
      make_store(Opcode::kSw, 0, 1, 0x80),
      make_load(Opcode::kLw, 2, 0, 0x80),
      make_rtype(Opcode::kAdd, 3, 2, 2),  // load-use: needs the stall
      make_halt(),
  });
}

TEST(PipelineLockstep, LoadUseOnRs2) {
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 9),
      make_store(Opcode::kSw, 0, 1, 0x40),
      make_load(Opcode::kLw, 2, 0, 0x40),
      make_rtype(Opcode::kSub, 3, 1, 2),  // hazard via rs2
      make_halt(),
  });
}

TEST(PipelineLockstep, StoreDataNeedsForwarding) {
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_store(Opcode::kSw, 0, 1, 0x20),  // store right after producer
      make_load(Opcode::kLw, 2, 0, 0x20),
      make_halt(),
  });
}

TEST(PipelineLockstep, TakenBranchSquashesWrongPath) {
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBnez, 1, 8),     // taken: skip 2 instructions
      make_itype(Opcode::kAddi, 2, 0, 99),  // wrong path
      make_itype(Opcode::kAddi, 3, 0, 98),  // wrong path
      make_itype(Opcode::kAddi, 4, 0, 1),
      make_halt(),
  });
}

TEST(PipelineLockstep, UntakenBranchFallsThrough) {
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBeqz, 1, 8),  // not taken
      make_itype(Opcode::kAddi, 2, 0, 5),
      make_halt(),
  });
}

TEST(PipelineLockstep, BranchConditionFreshFromForwarding) {
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBnez, 1, 4),     // condition produced 1 cycle ago
      make_itype(Opcode::kAddi, 2, 0, 77),  // skipped if taken
      make_itype(Opcode::kAddi, 3, 0, 1),
      make_halt(),
  });
}

TEST(PipelineLockstep, JumpsAndCalls) {
  expect_lockstep({
      make_jump(Opcode::kJal, 8),           // to 12
      make_itype(Opcode::kAddi, 1, 0, 1),   // return point (4)
      make_halt(),                          // 8
      make_itype(Opcode::kAddi, 2, 0, 2),   // 12
      make_jump_reg(Opcode::kJr, 31),       // back to 4
  });
}

TEST(PipelineLockstep, LoadIntoBranchCondition) {
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_store(Opcode::kSw, 0, 1, 0x10),
      make_load(Opcode::kLw, 2, 0, 0x10),
      make_branch(Opcode::kBnez, 2, 4),     // stall + forward into branch
      make_itype(Opcode::kAddi, 3, 0, 66),  // skipped
      make_halt(),
  });
}

// Property: random straight-line ALU/memory programs behave identically.
class PipelineRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineRandomProperty, RandomProgramsLockstep) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 131 + 17);
  std::vector<Instruction> prog;
  const unsigned kRegs = 8;  // work in r1..r8
  auto reg = [&]() { return 1 + rng() % kRegs; };
  for (int k = 0; k < 60; ++k) {
    switch (rng() % 8) {
      case 0:
        prog.push_back(make_itype(Opcode::kAddi, reg(), reg(),
                                  static_cast<std::int32_t>(rng() % 64)));
        break;
      case 1:
        prog.push_back(make_rtype(Opcode::kAdd, reg(), reg(), reg()));
        break;
      case 2:
        prog.push_back(make_rtype(Opcode::kSub, reg(), reg(), reg()));
        break;
      case 3:
        prog.push_back(make_rtype(Opcode::kXor, reg(), reg(), reg()));
        break;
      case 4:
        prog.push_back(make_store(Opcode::kSw, 0, reg(),
                                  static_cast<std::int32_t>(4 * (rng() % 16))));
        break;
      case 5:
        prog.push_back(make_load(Opcode::kLw, reg(), 0,
                                 static_cast<std::int32_t>(4 * (rng() % 16))));
        break;
      case 6:
        prog.push_back(make_rtype(Opcode::kSlt, reg(), reg(), reg()));
        break;
      case 7:
        prog.push_back(make_nop());
        break;
    }
  }
  prog.push_back(make_halt());
  expect_lockstep(prog);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRandomProperty,
                         ::testing::Range(0, 20));

// Property: random programs WITH control flow (forward branches/jumps only,
// so termination is guaranteed) behave identically on both models —
// exercising squash, branch-condition forwarding and link-register paths.
class PipelineControlFlowProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineControlFlowProperty, RandomBranchyProgramsLockstep) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 977 + 3);
  std::vector<Instruction> prog;
  const unsigned kLen = 50;
  auto reg = [&]() { return 1 + rng() % 6; };
  for (unsigned k = 0; k < kLen; ++k) {
    const unsigned remaining = kLen - k;  // slots before the final halt
    switch (rng() % 10) {
      case 0:
      case 1:
      case 2:
        prog.push_back(make_itype(Opcode::kAddi, reg(), reg(),
                                  static_cast<std::int32_t>(rng() % 8)));
        break;
      case 3:
      case 4:
        prog.push_back(make_rtype(Opcode::kSub, reg(), reg(), reg()));
        break;
      case 5:
        prog.push_back(make_rtype(Opcode::kSne, reg(), reg(), reg()));
        break;
      case 6:
      case 7: {
        // Forward branch over 1..3 instructions (stays inside the program).
        const unsigned skip = 1 + rng() % 3;
        if (remaining > skip + 1) {
          const Opcode op = rng() % 2 == 0 ? Opcode::kBeqz : Opcode::kBnez;
          prog.push_back(
              make_branch(op, reg(), static_cast<std::int32_t>(4 * skip)));
        } else {
          prog.push_back(make_nop());
        }
        break;
      }
      case 8: {
        const unsigned skip = 1 + rng() % 2;
        if (remaining > skip + 1) {
          const Opcode op = rng() % 2 == 0 ? Opcode::kJ : Opcode::kJal;
          prog.push_back(
              make_jump(op, static_cast<std::int32_t>(4 * skip)));
        } else {
          prog.push_back(make_nop());
        }
        break;
      }
      case 9:
        prog.push_back(make_store(Opcode::kSw, 0, reg(),
                                  static_cast<std::int32_t>(4 * (rng() % 8))));
        break;
    }
  }
  prog.push_back(make_halt());
  expect_lockstep(prog);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineControlFlowProperty,
                         ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Bug catalogue: each bug must be exposed by its trigger program and remain
// hidden on a program that avoids the trigger.
// ---------------------------------------------------------------------------

TEST(PipelineBugs, NoForwardExMemA) {
  PipelineConfig cfg{{PipelineBug::kNoForwardExMemA}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_rtype(Opcode::kAdd, 2, 1, 0),  // needs EX/MEM bypass on A
      make_halt(),
  }, cfg);
  // Independent instructions: hidden.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_nop(),
      make_nop(),
      make_itype(Opcode::kAddi, 2, 0, 6),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, NoForwardExMemB) {
  PipelineConfig cfg{{PipelineBug::kNoForwardExMemB}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_rtype(Opcode::kAdd, 2, 0, 1),  // dependency through rs2
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, NoForwardMemWbA) {
  PipelineConfig cfg{{PipelineBug::kNoForwardMemWbA}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_nop(),
      make_rtype(Opcode::kAdd, 2, 1, 0),  // distance 2: MEM/WB bypass
      make_halt(),
  }, cfg);
  // Distance 1 uses EX/MEM (still intact): hidden.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_rtype(Opcode::kAdd, 2, 1, 0),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, NoIdBypass) {
  PipelineConfig cfg{{PipelineBug::kNoIdBypass}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_nop(),
      make_nop(),
      make_rtype(Opcode::kAdd, 2, 1, 0),  // distance 3: WB/ID bypass
      make_halt(),
  }, cfg);
  // Distance 4: plain regfile read works.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_nop(),
      make_nop(),
      make_nop(),
      make_rtype(Opcode::kAdd, 2, 1, 0),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, NoLoadUseStall) {
  PipelineConfig cfg{{PipelineBug::kNoLoadUseStall}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 7),
      make_store(Opcode::kSw, 0, 1, 0x30),
      make_load(Opcode::kLw, 2, 0, 0x30),
      make_rtype(Opcode::kAdd, 3, 2, 0),  // load-use
      make_halt(),
  }, cfg);
  // One instruction of slack: hidden.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 7),
      make_store(Opcode::kSw, 0, 1, 0x30),
      make_load(Opcode::kLw, 2, 0, 0x30),
      make_nop(),
      make_rtype(Opcode::kAdd, 3, 2, 0),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, InterlockChecksRs1Only) {
  PipelineConfig cfg{{PipelineBug::kInterlockChecksRs1Only}};
  // Hazard through rs2 is missed...
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 7),
      make_store(Opcode::kSw, 0, 1, 0x30),
      make_load(Opcode::kLw, 2, 0, 0x30),
      make_rtype(Opcode::kAdd, 3, 0, 2),  // load-use via rs2
      make_halt(),
  }, cfg);
  // ...while the rs1 hazard is still handled.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 7),
      make_store(Opcode::kSw, 0, 1, 0x30),
      make_load(Opcode::kLw, 2, 0, 0x30),
      make_rtype(Opcode::kAdd, 3, 2, 0),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, NoSquashOnTakenBranch) {
  PipelineConfig cfg{{PipelineBug::kNoSquashOnTakenBranch}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBnez, 1, 8),
      make_itype(Opcode::kAddi, 2, 0, 99),  // must be squashed
      make_itype(Opcode::kAddi, 3, 0, 98),  // must be squashed
      make_itype(Opcode::kAddi, 4, 0, 1),
      make_halt(),
  }, cfg);
  // Untaken branch: no squash needed, hidden.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBeqz, 1, 8),
      make_itype(Opcode::kAddi, 2, 0, 5),
      make_itype(Opcode::kAddi, 3, 0, 6),
      make_itype(Opcode::kAddi, 4, 0, 7),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, SquashOnlyFetch) {
  PipelineConfig cfg{{PipelineBug::kSquashOnlyFetch}};
  // The instruction directly after the branch (in ID at resolve time)
  // wrongly survives.
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBnez, 1, 8),
      make_itype(Opcode::kAddi, 2, 0, 99),
      make_itype(Opcode::kAddi, 3, 0, 98),
      make_itype(Opcode::kAddi, 4, 0, 1),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, JalLinksR30) {
  PipelineConfig cfg{{PipelineBug::kJalLinksR30}};
  expect_divergence({
      make_jump(Opcode::kJal, 0),  // to 4; link must be r31
      make_halt(),
  }, cfg);
  // Plain J doesn't link: hidden.
  expect_lockstep({
      make_jump(Opcode::kJ, 0),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, BranchTargetOffByFour) {
  PipelineConfig cfg{{PipelineBug::kBranchTargetOffByFour}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBnez, 1, 4),
      make_itype(Opcode::kAddi, 2, 0, 99),
      make_itype(Opcode::kAddi, 3, 0, 1),
      make_halt(),
  }, cfg);
  // Untaken branches unaffected.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBeqz, 1, 4),
      make_itype(Opcode::kAddi, 2, 0, 3),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, WritebackSelectsAluForLoad) {
  PipelineConfig cfg{{PipelineBug::kWritebackSelectsAluForLoad}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 42),
      make_store(Opcode::kSw, 0, 1, 0x50),
      make_load(Opcode::kLw, 2, 0, 0x50),  // rd gets 0x50 instead of 42
      make_halt(),
  }, cfg);
  // ALU-only program: hidden.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 42),
      make_rtype(Opcode::kAdd, 2, 1, 1),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, StoreDataStale) {
  PipelineConfig cfg{{PipelineBug::kStoreDataStale}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_store(Opcode::kSw, 0, 1, 0x20),  // store data needs forwarding
      make_halt(),
  }, cfg);
  // Store with slack: hidden.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_nop(),
      make_nop(),
      make_nop(),
      make_store(Opcode::kSw, 0, 1, 0x20),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, BranchUsesStaleCondition) {
  PipelineConfig cfg{{PipelineBug::kBranchUsesStaleCondition}};
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 1),   // r1: 0 -> 1
      make_branch(Opcode::kBnez, 1, 8),     // stale read sees 0: not taken
      make_itype(Opcode::kAddi, 2, 0, 99),
      make_itype(Opcode::kAddi, 3, 0, 98),
      make_itype(Opcode::kAddi, 4, 0, 1),
      make_halt(),
  }, cfg);
  // Condition settled long before: hidden.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_nop(),
      make_nop(),
      make_nop(),
      make_branch(Opcode::kBnez, 1, 8),
      make_itype(Opcode::kAddi, 2, 0, 99),
      make_itype(Opcode::kAddi, 3, 0, 98),
      make_itype(Opcode::kAddi, 4, 0, 1),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, ForwardPriorityWrong) {
  PipelineConfig cfg{{PipelineBug::kForwardPriorityWrong}};
  // Two back-to-back writes to r1, then an immediate use: both bypasses
  // match and the buggy mux picks the older value.
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_itype(Opcode::kAddi, 1, 0, 9),
      make_rtype(Opcode::kAdd, 2, 1, 0),
      make_halt(),
  }, cfg);
  // A single in-flight producer: priority never comes into play.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_rtype(Opcode::kAdd, 2, 1, 0),
      make_nop(),
      make_itype(Opcode::kAddi, 3, 0, 9),
      make_nop(),
      make_rtype(Opcode::kAdd, 4, 3, 0),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, InterlockMissesDoubleHazard) {
  PipelineConfig cfg{{PipelineBug::kInterlockMissesDoubleHazard}};
  // Consumer reads the loaded register through BOTH operands.
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 7),
      make_store(Opcode::kSw, 0, 1, 0x30),
      make_load(Opcode::kLw, 2, 0, 0x30),
      make_rtype(Opcode::kAdd, 3, 2, 2),  // rs1 == rs2 == load dest
      make_halt(),
  }, cfg);
  // Single-operand hazards still stall correctly.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 7),
      make_store(Opcode::kSw, 0, 1, 0x30),
      make_load(Opcode::kLw, 2, 0, 0x30),
      make_rtype(Opcode::kAdd, 3, 2, 1),
      make_rtype(Opcode::kAdd, 4, 1, 2),
      make_halt(),
  }, cfg);
}

TEST(PipelineBugs, ForwardFromR0) {
  PipelineConfig cfg{{PipelineBug::kForwardFromR0}};
  // An r0-destination producer (its write is discarded) wrongly feeds a
  // consumer reading r0.
  expect_divergence({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_rtype(Opcode::kAdd, 0, 1, 1),  // writes r0: discarded
      make_rtype(Opcode::kAdd, 2, 0, 0),  // should read 0, gets 10
      make_halt(),
  }, cfg);
  // No r0-writing producer in flight: hidden.
  expect_lockstep({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_rtype(Opcode::kAdd, 2, 0, 1),
      make_rtype(Opcode::kAdd, 3, 0, 0),
      make_halt(),
  }, cfg);
}

// ---------------------------------------------------------------------------
// Structural checks
// ---------------------------------------------------------------------------

TEST(PipelineStructure, FiveStageLatency) {
  // A single instruction retires on cycle 5.
  Pipeline p(assemble({make_itype(Opcode::kAddi, 1, 0, 1), make_halt()}));
  int retire_cycle = 0;
  for (int cycle = 1; cycle <= 10; ++cycle) {
    if (p.step_cycle().has_value()) {
      retire_cycle = cycle;
      break;
    }
  }
  EXPECT_EQ(retire_cycle, 5);
}

TEST(PipelineStructure, LoadUseCostsExactlyOneCycle) {
  const auto with_hazard = assemble({
      make_load(Opcode::kLw, 1, 0, 0),
      make_rtype(Opcode::kAdd, 2, 1, 1),
      make_halt(),
  });
  const auto without_hazard = assemble({
      make_load(Opcode::kLw, 1, 0, 0),
      make_rtype(Opcode::kAdd, 2, 3, 3),
      make_halt(),
  });
  Pipeline a(with_hazard);
  Pipeline b(without_hazard);
  a.run();
  b.run();
  EXPECT_EQ(a.cycles(), b.cycles() + 1);
}

TEST(PipelineStructure, TakenBranchCostsTwoCycles) {
  const auto taken = assemble({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBnez, 1, 0),  // taken to next instruction
      make_halt(),
  });
  const auto untaken = assemble({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_branch(Opcode::kBeqz, 1, 0),
      make_halt(),
  });
  Pipeline a(taken);
  Pipeline b(untaken);
  a.run();
  b.run();
  EXPECT_EQ(a.cycles(), b.cycles() + 2);
}

TEST(PipelineStructure, ControlSnapshotTracksStages) {
  Pipeline p(assemble({
      make_load(Opcode::kLw, 1, 0, 0),
      make_rtype(Opcode::kAdd, 2, 1, 1),
      make_halt(),
  }));
  p.step_cycle();  // load in IF/ID
  auto snap = p.control_snapshot();
  EXPECT_TRUE(snap.id.valid);
  EXPECT_EQ(snap.id.cls, OpClass::kLoad);
  EXPECT_EQ(snap.id.dest, 1);
  p.step_cycle();  // load in ID/EX, add in IF/ID: load-use hazard visible
  snap = p.control_snapshot();
  EXPECT_TRUE(snap.stall);
  EXPECT_EQ(snap.ex.cls, OpClass::kLoad);
  EXPECT_EQ(snap.id.cls, OpClass::kAlu);
}

TEST(PipelineStructure, CountersTrackEvents) {
  Pipeline p(assemble({
      make_itype(Opcode::kAddi, 1, 0, 1),
      make_load(Opcode::kLw, 2, 0, 0),
      make_rtype(Opcode::kAdd, 3, 2, 0),  // load-use: 1 stall
      make_branch(Opcode::kBnez, 1, 8),   // taken: squash, 2 slots killed
      make_itype(Opcode::kAddi, 4, 0, 9),  // squashed
      make_itype(Opcode::kAddi, 5, 0, 9),  // squashed
      make_halt(),                         // branch target
  }));
  p.run();
  const auto& c = p.counters();
  EXPECT_EQ(c.retired, 5u);  // addi, lw, add, bnez, halt
  EXPECT_EQ(c.stall_cycles, 1u);
  EXPECT_EQ(c.squashes, 1u);
  EXPECT_EQ(c.squashed_slots, 2u);
  EXPECT_GT(p.cpi(), 1.0);  // stalls + squashes + fill cost
}

TEST(PipelineStructure, CpiApproachesOneOnLongStraightLineCode) {
  std::vector<Instruction> prog;
  for (int k = 0; k < 300; ++k) {
    prog.push_back(make_itype(Opcode::kAddi, 1 + (k % 4), 0, k % 17));
  }
  prog.push_back(make_halt());
  Pipeline p(assemble(prog));
  p.run();
  EXPECT_EQ(p.counters().stall_cycles, 0u);
  EXPECT_EQ(p.counters().squashes, 0u);
  EXPECT_LT(p.cpi(), 1.05);  // only the 4-cycle fill amortized over 301
}

TEST(PipelineStructure, NoRetiresAfterHalt) {
  Pipeline p(assemble({
      make_halt(),
      make_itype(Opcode::kAddi, 1, 0, 9),  // must never retire
  }));
  const auto trace = p.run();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_TRUE(trace[0].halted);
  EXPECT_EQ(p.reg(1), 0u);
}

}  // namespace
}  // namespace simcov::dlx
