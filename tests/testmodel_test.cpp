// Tests for the DLX control test model: the Figure 3(b) abstraction ladder,
// the input constraint, the control behaviour (stall / squash / forwarding)
// against the real pipeline's semantics, and the symbolic statistics.
#include "testmodel/testmodel.hpp"
#include "testmodel/control_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bdd/bdd.hpp"

namespace simcov::testmodel {
namespace {

using dlx::OpClass;

TestModelOptions final_options() {
  TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.reg_addr_bits = 2;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  return opt;
}

TEST(Ladder, LatchCountsStrictlyDecrease) {
  const auto steps = figure3b_ladder();
  ASSERT_EQ(steps.size(), 7u);
  unsigned prev = 0;
  std::vector<unsigned> counts;
  for (const auto& step : steps) {
    const auto model = build_dlx_control_model(step.options);
    counts.push_back(model.num_latches);
    if (prev != 0) {
      EXPECT_LT(model.num_latches, prev) << step.label;
    }
    prev = model.num_latches;
  }
  // Shape of Figure 3(b): initial model within the paper's order of
  // magnitude (160), final model a couple dozen latches (22).
  EXPECT_GE(counts.front(), 120u);
  EXPECT_LE(counts.front(), 200u);
  EXPECT_GE(counts.back(), 15u);
  EXPECT_LE(counts.back(), 35u);
}

TEST(Ladder, FinalModelIoShape) {
  const auto model = build_dlx_control_model(final_options());
  // Reduced instruction format (4-bit class + 3 x 2-bit regs) + branch
  // outcome: 11 primary inputs; core outputs only.
  EXPECT_EQ(model.num_inputs, 11u);
  EXPECT_EQ(model.num_outputs, 6u + 6u);  // core + observable dest addrs
}

TEST(Ladder, RegAddrBitsValidation) {
  TestModelOptions opt;
  opt.reg_addr_bits = 0;
  EXPECT_THROW((void)build_dlx_control_model(opt), std::invalid_argument);
  opt.reg_addr_bits = 9;
  EXPECT_THROW((void)build_dlx_control_model(opt), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Input constraint
// ---------------------------------------------------------------------------

TEST(Constraint, UnusedFieldsMustBeZero) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  // NOP with a nonzero rs1: invalid.
  EXPECT_FALSE(sim.input_valid({OpClass::kNop, 1, 0, 0, false, true}));
  EXPECT_TRUE(sim.input_valid({OpClass::kNop, 0, 0, 0, false, true}));
  // Branch reads rs1 but has no rd/rs2.
  EXPECT_TRUE(sim.input_valid({OpClass::kBranch, 2, 0, 0, false, true}));
  EXPECT_FALSE(sim.input_valid({OpClass::kBranch, 2, 1, 0, false, true}));
  EXPECT_FALSE(sim.input_valid({OpClass::kBranch, 2, 0, 1, false, true}));
  // Link destinations are implicit: rd must be zero.
  EXPECT_TRUE(sim.input_valid({OpClass::kJumpLink, 0, 0, 0, false, true}));
  EXPECT_FALSE(sim.input_valid({OpClass::kJumpLink, 0, 0, 2, false, true}));
}

TEST(Constraint, BranchOutcomeTiedToExStageBranch) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  // No branch in EX yet: outcome must be 0.
  EXPECT_FALSE(sim.input_valid({OpClass::kNop, 0, 0, 0, true, true}));
  // Put a branch into EX, then the outcome signal is allowed.
  sim.step({OpClass::kBranch, 1, 0, 0, false, true});
  EXPECT_TRUE(sim.input_valid({OpClass::kNop, 0, 0, 0, true, true}));
  EXPECT_TRUE(sim.input_valid({OpClass::kNop, 0, 0, 0, false, true}));
}

TEST(Constraint, StepThrowsOnInvalidInput) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  EXPECT_THROW((void)sim.step({OpClass::kNop, 3, 3, 3, false, true}),
               std::domain_error);
}

// ---------------------------------------------------------------------------
// Control behaviour (matches the pipeline's semantics)
// ---------------------------------------------------------------------------

TEST(Behaviour, LoadUseStallAsserted) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  // Cycle 1: load into r2 enters decode -> EX next cycle.
  sim.step({OpClass::kLoad, 1, 0, 2, false, true});
  // Cycle 2: ALU consuming r2 arrives while the load is in EX: stall.
  const auto out = sim.step({OpClass::kAlu, 2, 1, 3, false, true});
  EXPECT_TRUE(out.at("stall"));
}

TEST(Behaviour, NoStallWithoutDependency) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  sim.step({OpClass::kLoad, 1, 0, 2, false, true});
  const auto out = sim.step({OpClass::kAlu, 1, 3, 3, false, true});
  EXPECT_FALSE(out.at("stall"));
}

TEST(Behaviour, StallOnRs2Dependency) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  sim.step({OpClass::kLoad, 1, 0, 2, false, true});
  const auto out = sim.step({OpClass::kAlu, 3, 2, 1, false, true});
  EXPECT_TRUE(out.at("stall"));
}

TEST(Behaviour, TakenBranchSquashes) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  sim.step({OpClass::kBranch, 1, 0, 0, false, true});
  // Branch now in EX; outcome=1 -> squash.
  const auto out = sim.step({OpClass::kNop, 0, 0, 0, true, true});
  EXPECT_TRUE(out.at("squash"));
  // Untaken: no squash.
  ControlModelSim sim2(model);
  sim2.step({OpClass::kBranch, 1, 0, 0, false, true});
  const auto out2 = sim2.step({OpClass::kNop, 0, 0, 0, false, true});
  EXPECT_FALSE(out2.at("squash"));
}

TEST(Behaviour, JumpAlwaysSquashes) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  sim.step({OpClass::kJump, 0, 0, 0, false, true});
  const auto out = sim.step({OpClass::kNop, 0, 0, 0, false, true});
  EXPECT_TRUE(out.at("squash"));
}

TEST(Behaviour, ForwardingSelectsYoungestProducer) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  // ALU producing r2, then ALU consuming r2 (distance 1: EX/MEM bypass).
  sim.step({OpClass::kAlu, 1, 1, 2, false, true});
  sim.step({OpClass::kAlu, 2, 1, 3, false, true});
  // Consumer now in EX, producer in MEM.
  const auto out = sim.step({OpClass::kNop, 0, 0, 0, false, true});
  EXPECT_TRUE(out.at("fwdA_exmem"));
  EXPECT_FALSE(out.at("fwdA_memwb"));
}

TEST(Behaviour, ForwardingFromWbAtDistanceTwo) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  sim.step({OpClass::kAlu, 1, 1, 2, false, true});   // producer of r2
  sim.step({OpClass::kNop, 0, 0, 0, false, true});   // gap
  sim.step({OpClass::kAlu, 2, 1, 3, false, true});   // consumer of r2 (rs1)
  const auto out = sim.step({OpClass::kNop, 0, 0, 0, false, true});
  EXPECT_FALSE(out.at("fwdA_exmem"));
  EXPECT_TRUE(out.at("fwdA_memwb"));
}

TEST(Behaviour, LoadInMemDoesNotForward) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  sim.step({OpClass::kLoad, 1, 0, 2, false, true});  // load r2
  // Consumer stalls one cycle (bubble in EX), so present it again.
  sim.step({OpClass::kAlu, 2, 1, 3, false, true});   // stalled (not accepted)
  sim.step({OpClass::kAlu, 2, 1, 3, false, true});   // accepted now
  const auto out = sim.step({OpClass::kNop, 0, 0, 0, false, true});
  // Load is now in WB: forwarding comes from MEM/WB.
  EXPECT_FALSE(out.at("fwdA_exmem"));
  EXPECT_TRUE(out.at("fwdA_memwb"));
}

TEST(Behaviour, DestObservabilityOutputs) {
  const auto model = build_dlx_control_model(final_options());
  ControlModelSim sim(model);
  sim.step({OpClass::kAlu, 1, 1, 2, false, true});  // dest r2 enters EX
  sim.step({OpClass::kNop, 0, 0, 0, false, true});
  // Requirement 5: the EX-stage destination address is visible.
  EXPECT_TRUE(sim.out("obs_ex_dest0") == false || true);  // present by name
  // dest r2 = binary 10.
  EXPECT_FALSE(sim.out("obs_ex_dest0"));
  EXPECT_TRUE(sim.out("obs_ex_dest1"));
}

TEST(Behaviour, Req5AblationHidesDestOutputs) {
  TestModelOptions opt = final_options();
  opt.expose_dest_outputs = false;
  const auto model = build_dlx_control_model(opt);
  EXPECT_EQ(model.num_outputs, 6u);
  ControlModelSim sim(model);
  sim.step({OpClass::kAlu, 1, 1, 2, false, true});
  EXPECT_THROW((void)sim.out("obs_ex_dest0"), std::out_of_range);
}

TEST(Behaviour, Req1AblationDropsDestState) {
  TestModelOptions opt = final_options();
  opt.keep_dest_in_state = false;
  const auto model = build_dlx_control_model(opt);
  // Destination latches gone: 6 fewer latches, and the interlock can no
  // longer fire (it has lost the state it needs).
  const auto full = build_dlx_control_model(final_options());
  EXPECT_EQ(model.num_latches + 6, full.num_latches);
  ControlModelSim sim(model);
  sim.step({OpClass::kLoad, 1, 0, 2, false, true});
  const auto out = sim.step({OpClass::kAlu, 2, 1, 3, false, true});
  EXPECT_FALSE(out.at("stall"));  // over-abstracted: hazard invisible
}

TEST(Behaviour, FetchControllerHoldsOnStall) {
  TestModelOptions opt = final_options();
  opt.fetch_controller = true;
  const auto model = build_dlx_control_model(opt);
  ControlModelSim sim(model);
  // With a fetch controller the instruction passes through IF/ID first.
  sim.step({OpClass::kLoad, 1, 0, 2, false, true});   // load in IF/ID
  sim.step({OpClass::kAlu, 2, 1, 3, false, true});    // load->EX? no: ->ID/EX
  // Load now in EX, consumer in IF/ID: stall asserted this cycle.
  const auto out = sim.step({OpClass::kNop, 0, 0, 0, false, true});
  EXPECT_TRUE(out.at("stall"));
}

// ---------------------------------------------------------------------------
// Symbolic statistics (Table 1 shape)
// ---------------------------------------------------------------------------

TEST(Symbolic, FinalModelStats) {
  const auto model = build_dlx_control_model(final_options());
  bdd::BddManager mgr;
  sym::SymbolicFsm fsm(mgr, model.circuit);
  const auto stats = fsm.stats();
  EXPECT_EQ(stats.num_latches, model.num_latches);
  EXPECT_EQ(stats.num_primary_inputs, 11u);
  // Valid input combinations are a small fraction of 2^11 = 2048.
  EXPECT_GT(stats.valid_input_combinations, 50.0);
  EXPECT_LT(stats.valid_input_combinations, 512.0);
  // Reachable states far below 2^latches but well above trivial.
  EXPECT_GT(stats.reachable_states, 1000.0);
  EXPECT_LT(stats.reachable_states, std::exp2(model.num_latches) / 1000.0);
  EXPECT_GT(stats.transitions, stats.reachable_states);
}

TEST(Symbolic, ReducedIsaModelIsSmaller) {
  TestModelOptions opt = final_options();
  opt.reduced_isa = true;
  opt.reg_addr_bits = 1;
  const auto model = build_dlx_control_model(opt);
  bdd::BddManager mgr;
  sym::SymbolicFsm fsm(mgr, model.circuit);
  const auto stats = fsm.stats();
  EXPECT_LT(stats.reachable_states, 4000.0);
  EXPECT_GT(stats.reachable_states, 10.0);
}

}  // namespace
}  // namespace simcov::testmodel
