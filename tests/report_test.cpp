// Tests for report formatting, the umbrella header, DOT exports, and the
// set-based test evaluation helpers.
#include "simcov.hpp"  // umbrella header must compile standalone

#include <gtest/gtest.h>

namespace simcov {
namespace {

testmodel::TestModelOptions tiny_model_options() {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 1;
  opt.reduced_isa = true;
  return opt;
}

TEST(Report, CampaignSummaryContainsKeyFacts) {
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = core::TestMethod::kStateTour;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall};
  const auto result = core::run_campaign(options, bugs);
  const std::string text = core::format_report(result);
  EXPECT_NE(text.find("validation campaign"), std::string::npos);
  EXPECT_NE(text.find("latches"), std::string::npos);
  EXPECT_NE(text.find("missing load-use interlock"), std::string::npos);
  EXPECT_NE(text.find(result.clean_pass ? "PASS" : "FAIL"),
            std::string::npos);
}

TEST(Report, RequirementsSummary) {
  fsm::MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 0, 1);
  const auto req = core::assess_requirements(m, 0, tiny_model_options(), 4,
                                             10, 50);
  const std::string text = core::format_report(req);
  EXPECT_NE(text.find("requirements assessment"), std::string::npos);
  EXPECT_NE(text.find("Req. 5"), std::string::npos);
}

TEST(Report, MutantCoverageLine) {
  core::MutantCoverageResult r;
  r.mutants = 100;
  r.exposed = 88;
  r.equivalent = 3;
  r.sequences = 4;
  r.test_length = 1234;
  const std::string line =
      core::format_line(core::TestMethod::kTransitionTourSet, r);
  EXPECT_NE(line.find("transition-tour"), std::string::npos);
  EXPECT_NE(line.find("88/100"), std::string::npos);
  EXPECT_NE(line.find("3 equivalent"), std::string::npos);
}

TEST(Report, EveryBugHasAName) {
  for (int raw = 0;
       raw <= static_cast<int>(dlx::PipelineBug::kForwardFromR0); ++raw) {
    const auto bug = static_cast<dlx::PipelineBug>(raw);
    EXPECT_STRNE(core::bug_name(bug), "?");
  }
}

namespace {

/// Structural sanity of an emitted JSON string without a parser: balanced
/// braces/brackets outside string literals, and object/array delimiters.
void expect_balanced_json(const std::string& json) {
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  int depth = 0;
  bool in_string = false;
  for (std::size_t k = 0; k < json.size(); ++k) {
    const char c = json[k];
    if (in_string) {
      if (c == '\\') {
        ++k;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // No empty elements / stray commas.
  EXPECT_EQ(json.find(",,"), std::string::npos);
  EXPECT_EQ(json.find("{,"), std::string::npos);
  EXPECT_EQ(json.find("[,"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
  EXPECT_EQ(json.find(",]"), std::string::npos);
}

}  // namespace

TEST(Json, CampaignReportIsWellFormedAndComplete) {
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = core::TestMethod::kTransitionTourSet;
  options.collect_symbolic_stats = true;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoForwardExMemA};
  const auto result = core::run_campaign(options, bugs);
  const std::string json = core::to_json(result);
  expect_balanced_json(json);
  for (const char* key :
       {"\"report\":\"campaign\"", "\"model\":", "\"test_set\":",
        "\"clean_pass\":true", "\"clean_runs\":[", "\"exposures\":[",
        "\"timings\":", "\"bdd\":", "\"symbolic\":", "\"impl_cycles\":",
        "\"runs_inconclusive\":0",
        "\"bug\":\"missing load-use interlock\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(Json, MutantCoverageReportHandlesEmptySample) {
  core::MutantCoverageResult empty;
  const std::string json =
      core::to_json(core::TestMethod::kRandomWalk, empty);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"exposure_rate\":null"), std::string::npos);
  core::MutantCoverageResult some;
  some.mutants = 4;
  some.exposed = 3;
  const std::string json2 =
      core::to_json(core::TestMethod::kTransitionTourSet, some);
  expect_balanced_json(json2);
  EXPECT_NE(json2.find("\"exposure_rate\":0.75"), std::string::npos);
}

TEST(Report, EmptyMutantSampleFormatsAsNa) {
  core::MutantCoverageResult empty;
  const std::string line =
      core::format_line(core::TestMethod::kStateTour, empty);
  EXPECT_NE(line.find("n/a"), std::string::npos);
  EXPECT_EQ(line.find("100"), std::string::npos);
}

TEST(Report, CampaignSummaryIncludesTimingsAndExposureDetail) {
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall};
  const auto result = core::run_campaign(options, bugs);
  const std::string text = core::format_report(result);
  EXPECT_NE(text.find("wall time"), std::string::npos);
  EXPECT_NE(text.find("sequence"), std::string::npos);
}

TEST(Dot, MealyMachineExport) {
  fsm::MealyMachine m(3, 1);
  m.set_state_name(0, "IDLE");
  m.set_transition(0, 0, 1, 7);
  m.set_transition(1, 0, 0, 8);
  m.set_transition(2, 0, 2, 9);  // unreachable: must not appear
  const std::string dot = m.to_dot(0);
  EXPECT_NE(dot.find("digraph mealy"), std::string::npos);
  EXPECT_NE(dot.find("IDLE"), std::string::npos);
  EXPECT_NE(dot.find("i0/7"), std::string::npos);
  EXPECT_EQ(dot.find("s2"), std::string::npos);
}

TEST(TestSetEval, MultiSequenceVariantMatchesUnion) {
  fsm::MealyMachine m(3, 2);
  for (fsm::StateId s = 0; s < 3; ++s) {
    m.set_transition(s, 0, (s + 1) % 3, s);
    m.set_transition(s, 1, s, 10 + s);
  }
  const auto muts =
      errmodel::enumerate_output_errors(m, 0, m.output_alphabet_size());
  const std::vector<std::vector<fsm::InputId>> sequences{
      {0, 0, 0}, {1}, {0, 1}};
  const auto set_report = errmodel::evaluate_test_set(m, muts, 0, sequences);
  // A mutant is exposed by the set iff some individual sequence exposes it.
  for (std::size_t k = 0; k < muts.size(); ++k) {
    bool any = false;
    for (const auto& seq : sequences) {
      any = any || errmodel::evaluate_test_set(
                       m, std::span(&muts[k], 1), 0, seq)
                       .exposed > 0;
    }
    EXPECT_EQ(set_report.exposed_flags[k], any) << "mutant " << k;
  }
}

TEST(Campaign, WMethodWorksOnMinimizableModel) {
  // The W-method path in the campaign minimizes first, so it must succeed
  // even though the control model has equivalent states.
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  const auto em = sym::extract_explicit(model.circuit, 100000);
  const auto minimized = distinguish::minimize(em.machine, 0);
  EXPECT_LT(minimized.machine.num_states(), em.machine.num_states());
  core::MutantCoverageOptions opt;
  opt.method = core::TestMethod::kWMethod;
  opt.mutant_sample = 100;
  const auto r = core::evaluate_mutant_coverage(
      model::ExplicitModel(minimized.machine,
                           minimized.machine.initial_state()),
      opt);
  // On the minimized machine the W-method exposes every real fault.
  EXPECT_EQ(r.exposed, r.mutants);
}

}  // namespace
}  // namespace simcov
