// Golden-string tests for the core/report JSON schema and the shared
// core/json.hpp writer: exact serialized form of a campaign report,
// omitted-vs-null optional-field semantics, and string escaping.
#include "core/json.hpp"
#include "core/report.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace simcov {
namespace {

core::CampaignResult golden_result() {
  core::CampaignResult result;
  result.backend = model::Backend::kExplicit;
  result.latches = 3;
  result.primary_inputs = 2;
  result.model_states = 4;
  result.model_transitions = 9;
  result.sequences = 2;
  result.test_length = 17;
  result.state_coverage = 1.0;
  result.transition_coverage = 0.5;
  result.total_instructions = 21;
  result.clean_pass = true;
  result.clean_runs.push_back(core::RunMetrics{0, 100, 5, true, false});
  core::BugExposure exposed;
  exposed.bug = dlx::PipelineBug::kNoLoadUseStall;
  exposed.exposed = true;
  exposed.exposing_sequence = 1;
  exposed.programs_run = 2;
  exposed.impl_cycles = 50;
  result.exposures.push_back(exposed);
  core::BugExposure missed;
  missed.bug = dlx::PipelineBug::kNoForwardExMemA;
  missed.exposed = false;
  missed.programs_run = 2;
  result.exposures.push_back(missed);
  // Timings stay zero: the golden string must be reproducible.
  return result;
}

TEST(ReportJsonGolden, CampaignReportExactString) {
  const std::string expected =
      "{\"report\":\"campaign\","
      "\"model\":{\"backend\":\"explicit\",\"latches\":3,"
      "\"primary_inputs\":2,\"states\":4,\"transitions\":9},"
      "\"test_set\":{\"sequences\":2,\"steps\":17,\"instructions\":21,"
      "\"state_coverage\":1,\"transition_coverage\":0.5},"
      "\"clean_pass\":true,\"bugs_exposed\":1,\"runs_inconclusive\":0,"
      "\"total_impl_cycles\":150,"
      "\"clean_runs\":[{\"sequence\":0,\"impl_cycles\":100,"
      "\"checkpoints\":5,\"passed\":true,\"budget_exhausted\":false}],"
      "\"exposures\":["
      "{\"bug\":\"missing load-use interlock\",\"exposed\":true,"
      "\"programs_run\":2,\"impl_cycles\":50,\"budget_exhausted\":false,"
      "\"exposing_sequence\":1},"
      "{\"bug\":\"no EX/MEM bypass (A)\",\"exposed\":false,"
      "\"programs_run\":2,\"impl_cycles\":0,\"budget_exhausted\":false,"
      "\"exposing_sequence\":null}],"
      "\"timings\":{\"model_build_seconds\":0,\"symbolic_seconds\":0,"
      "\"tour_seconds\":0,\"concretize_seconds\":0,"
      "\"simulate_seconds\":0,\"total_seconds\":0}}";
  EXPECT_EQ(core::to_json(golden_result()), expected);
}

TEST(ReportJsonGolden, OptionalSectionsOmittedNotNull) {
  // Absent symbolic/bdd snapshots disappear from the document entirely —
  // they are never emitted as null (unlike exposing_sequence, which is a
  // per-element slot and uses an explicit null).
  const std::string without = core::to_json(golden_result());
  EXPECT_EQ(without.find("\"symbolic\""), std::string::npos);
  EXPECT_EQ(without.find("\"bdd\""), std::string::npos);

  auto result = golden_result();
  sym::SymbolicFsmStats symbolic{};
  symbolic.transition_relation_nodes = 11;
  symbolic.reachability_iterations = 3;
  symbolic.reachable_states = 4.0;
  symbolic.transitions = 9.0;
  symbolic.valid_input_combinations = 3.0;
  result.symbolic_stats = symbolic;
  bdd::BddStats bstats{};
  bstats.allocated_nodes = 42;
  result.bdd_stats = bstats;
  const std::string with = core::to_json(result);
  EXPECT_NE(with.find("\"symbolic\":{\"transition_relation_nodes\":11,"
                      "\"reachability_iterations\":3,"
                      "\"reachable_states\":4,\"transitions\":9,"
                      "\"valid_input_combinations\":3}"),
            std::string::npos);
  EXPECT_NE(with.find("\"bdd\":{\"allocated_nodes\":42,"), std::string::npos);
  // The optional sections append after timings; the common prefix is
  // byte-identical to the golden document.
  EXPECT_EQ(with.rfind(without.substr(0, without.size() - 1), 0), 0u);
}

TEST(ReportJsonGolden, MutantCoverageExactStringWithUnexposedMutants) {
  // Satellite contract: never-exposed mutants carry an explicit
  // "exposed":false with the latency OMITTED — not 0, which would read as
  // a real (and impossibly early, indices are 1-based) exposure.
  core::MutantCoverageResult r;
  r.mutants = 3;
  r.exposed = 2;
  r.equivalent = 1;
  r.sequences = 4;
  r.test_length = 40;
  r.exposure_latency = {2, 5};
  r.mutant_exposures = {{true, 2}, {false, 0}, {true, 5}};
  // Timings stay zero: the golden string must be reproducible.
  const std::string expected =
      "{\"report\":\"mutant_coverage\",\"method\":\"transition-tour\","
      "\"mutants\":3,\"exposed\":2,\"equivalent\":1,"
      "\"exposure_rate\":0.6666666666666666,"
      "\"sequences\":4,\"test_length\":40,"
      "\"exposure_latency\":["
      "{\"exposed\":true,\"sequences\":2},"
      "{\"exposed\":false},"
      "{\"exposed\":true,\"sequences\":5}],"
      "\"timings\":{\"model_build_seconds\":0,\"symbolic_seconds\":0,"
      "\"tour_seconds\":0,\"concretize_seconds\":0,"
      "\"simulate_seconds\":0,\"total_seconds\":0}}";
  EXPECT_EQ(core::to_json(core::TestMethod::kTransitionTourSet, r), expected);
}

TEST(ReportJsonGolden, GeneratorSectionOnlyForNonDefaultSpec) {
  // The default transition-tour spec emits no "generator" section at all —
  // pre-generator-layer reports stay byte-identical (the campaign golden
  // above already pins that). A non-default spec appends the section after
  // "timings" with every sequence-shaping knob echoed.
  const std::string without = core::to_json(golden_result());
  EXPECT_EQ(without.find("\"generator\""), std::string::npos);

  auto result = golden_result();
  result.generator.kind = core::GeneratorKind::kBiasedRandom;
  result.generator.sequence_length = 32;
  result.generator.max_walk_steps = 2048;
  result.generator.bias_strength = 4;
  result.generator.hybrid_tour_steps = 512;
  const std::string with = core::to_json(result);
  EXPECT_NE(with.find("\"generator\":{\"kind\":\"biased_random\","
                      "\"sequence_length\":32,\"max_walk_steps\":2048,"
                      "\"bias_strength\":4,\"hybrid_tour_steps\":512}"),
            std::string::npos);
  // Appended after timings: the default-spec document is a byte-identical
  // prefix of the non-default one.
  EXPECT_EQ(with.rfind(without.substr(0, without.size() - 1), 0), 0u);
}

TEST(ReportJsonGolden, SymbolicBackendRendersBackendTag) {
  auto result = golden_result();
  result.backend = model::Backend::kSymbolic;
  const std::string json = core::to_json(result);
  EXPECT_NE(json.find("\"backend\":\"symbolic\""), std::string::npos);
  EXPECT_EQ(json.find("\"truncated\""), std::string::npos)
      << "the truncation flag is gone from the schema";
}

TEST(ReportJsonGolden, SymbolicModelSectionCarriesReorderStats) {
  auto result = golden_result();
  result.backend = model::Backend::kSymbolic;
  bdd::BddStats bstats{};
  bstats.allocated_nodes = 42;
  bstats.gc_runs = 4;
  bstats.reorders = 2;
  bstats.peak_live_nodes = 321;
  bstats.order_fingerprint = 0x0123456789abcdefull;
  result.bdd_stats = bstats;
  const std::string json = core::to_json(result);
  EXPECT_NE(json.find("\"model\":{\"backend\":\"symbolic\",\"latches\":3,"
                      "\"primary_inputs\":2,\"states\":4,\"transitions\":9,"
                      "\"bdd_order\":\"0123456789abcdef\",\"bdd_gc_runs\":4,"
                      "\"bdd_reorders\":2,\"bdd_peak_nodes\":321}"),
            std::string::npos);
  // The standalone "bdd" section keeps its original 8-field shape.
  EXPECT_NE(json.find("\"bdd\":{\"allocated_nodes\":42,"), std::string::npos);
}

TEST(ReportJsonGolden, ExplicitBackendModelSectionUnchangedByBddStats) {
  // The reorder summary is keyed on the symbolic backend: an explicit-model
  // campaign that also collected a BDD snapshot must render the exact
  // pre-refactor model section.
  auto result = golden_result();
  bdd::BddStats bstats{};
  bstats.reorders = 9;
  result.bdd_stats = bstats;
  const std::string json = core::to_json(result);
  EXPECT_NE(json.find("\"model\":{\"backend\":\"explicit\",\"latches\":3,"
                      "\"primary_inputs\":2,\"states\":4,\"transitions\":9}"),
            std::string::npos);
  EXPECT_EQ(json.find("\"bdd_order\""), std::string::npos);
}

TEST(JsonWriterTest, EscapesQuotesAndBackslashes) {
  core::JsonWriter w;
  w.begin_object()
      .field("text", "say \"hi\" and C:\\path")
      .end_object();
  EXPECT_EQ(w.str(), "{\"text\":\"say \\\"hi\\\" and C:\\\\path\"}");
}

TEST(JsonWriterTest, EscapesNewlinesAndTabs) {
  // Regression: control characters used to pass through raw, producing
  // invalid JSON documents for any value containing a newline.
  core::JsonWriter w;
  w.begin_object().field("text", "line1\nline2\tend\r").end_object();
  EXPECT_EQ(w.str(), "{\"text\":\"line1\\nline2\\tend\\r\"}");
}

TEST(JsonWriterTest, EscapesLowControlCharactersAsUnicode) {
  // Characters below 0x20 without a short escape become \u00XX — including
  // NUL and the bytes right next to it. Built char-by-char: hex escapes in
  // a literal would greedily swallow the following letters.
  const std::string value{'a', '\0', 'b', '\x01', 'c', '\x1f', 'd'};
  core::JsonWriter w;
  w.begin_object().field("text", value).end_object();
  EXPECT_EQ(w.str(), "{\"text\":\"a\\u0000b\\u0001c\\u001fd\"}");
}

TEST(JsonWriterTest, ShortEscapesForBackspaceAndFormFeed) {
  core::JsonWriter w;
  w.begin_object().field("text", "\b\f").end_object();
  EXPECT_EQ(w.str(), "{\"text\":\"\\b\\f\"}");
}

TEST(JsonWriterTest, HighBytesPassThroughUnchanged) {
  // Bytes >= 0x20 (including UTF-8 continuation bytes) are emitted as-is.
  core::JsonWriter w;
  w.begin_object().field("text", "caf\xc3\xa9").end_object();
  EXPECT_EQ(w.str(), "{\"text\":\"caf\xc3\xa9\"}");
}

TEST(JsonWriterTest, ElementStringsAreEscapedToo) {
  core::JsonWriter w;
  w.begin_object().begin_array("items");
  w.element("tab\there");
  w.end_array().end_object();
  EXPECT_EQ(w.str(), "{\"items\":[\"tab\\there\"]}");
}

TEST(JsonWriterTest, RawFieldEmbedsDocumentVerbatim) {
  core::JsonWriter inner;
  inner.begin_object().field("a", 1).end_object();
  core::JsonWriter outer;
  outer.begin_object()
      .field("kind", "wrapper")
      .raw_field("payload", inner.str())
      .end_object();
  EXPECT_EQ(outer.str(), "{\"kind\":\"wrapper\",\"payload\":{\"a\":1}}");
}

TEST(JsonWriterTest, ElementsAndArrays) {
  core::JsonWriter w;
  w.begin_object().begin_array("items");
  w.element("x").element("y");
  w.end_array().field("n", 2).end_object();
  EXPECT_EQ(w.str(), "{\"items\":[\"x\",\"y\"],\"n\":2}");
}

TEST(JsonWriterTest, DoublesUseShortestRoundTripForm) {
  // Exact short values keep their short spellings (the golden campaign
  // reports depend on "1", "0.5" and "0" staying as-is) ...
  core::JsonWriter w;
  w.begin_object()
      .field("one", 1.0)
      .field("half", 0.5)
      .field("zero", 0.0)
      .end_object();
  EXPECT_EQ(w.str(), "{\"one\":1,\"half\":0.5,\"zero\":0}");

  // ... while values that need more than ostream's default 6 significant
  // digits are no longer rounded: the emitted text parses back bit-equal.
  const double precise = 0.005532824995350567;
  core::JsonWriter p;
  p.begin_object().field("v", precise).end_object();
  const std::string json = p.str();
  EXPECT_EQ(json, "{\"v\":0.005532824995350567}");
  const std::string number = json.substr(5, json.size() - 6);
  EXPECT_EQ(std::stod(number), precise);
  EXPECT_EQ(std::stod(number) == precise, true);
}

TEST(JsonWriterTest, NonFiniteDoublesSerializeAsNull) {
  // Regression: `os_ << value` printed bare nan/inf tokens, which no JSON
  // parser accepts. RFC 8259 has no encoding for them — null is the only
  // faithful in-band representation.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  core::JsonWriter w;
  w.begin_object()
      .field("nan", nan)
      .field("inf", inf)
      .field("ninf", -inf)
      .field("fine", 2.0)
      .end_object();
  EXPECT_EQ(w.str(), "{\"nan\":null,\"inf\":null,\"ninf\":null,\"fine\":2}");
}

}  // namespace
}  // namespace simcov
