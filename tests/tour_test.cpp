// Tests for transition-tour / state-tour / random-walk generation and
// coverage evaluation.
#include "tour/tour.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simcov::tour {
namespace {

using fsm::InputId;
using fsm::MealyMachine;
using fsm::StateId;

/// Three-state ring; input 0 advances, input 1 self-loops.
MealyMachine ring_machine() {
  MealyMachine m(3, 2);
  for (StateId s = 0; s < 3; ++s) {
    m.set_transition(s, 0, (s + 1) % 3, s);
    m.set_transition(s, 1, s, 10 + s);
  }
  return m;
}

TEST(MinimumTour, CoversEveryTransitionOnRing) {
  const MealyMachine m = ring_machine();
  const auto t = minimum_transition_tour(m, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(is_transition_tour(m, 0, t->inputs));
  // Ring + self-loops: 6 transitions; the optimal tour needs no duplicates
  // (the graph is Eulerian: every node has in = out = 2).
  EXPECT_EQ(t->length(), 6u);
}

TEST(MinimumTour, ClosedWalkReturnsToStart) {
  const MealyMachine m = ring_machine();
  const auto t = minimum_transition_tour(m, 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(m.run_to_state(t->inputs, 1), 1u);
}

TEST(MinimumTour, FailsWhenNotStronglyConnected) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 1, 0);  // sink
  EXPECT_FALSE(minimum_transition_tour(m, 0).has_value());
}

TEST(MinimumTour, IgnoresUnreachablePart) {
  MealyMachine m(4, 1);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 0, 0);
  m.set_transition(2, 0, 3, 0);  // unreachable island
  m.set_transition(3, 0, 2, 0);
  const auto t = minimum_transition_tour(m, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->length(), 2u);
  EXPECT_TRUE(is_transition_tour(m, 0, t->inputs));
}

TEST(GreedyTour, CoversRing) {
  const MealyMachine m = ring_machine();
  const auto t = greedy_transition_tour(m, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(is_transition_tour(m, 0, t->inputs));
}

TEST(GreedyTour, HandlesNonStronglyConnectedWhenOrderAllows) {
  // 0 -> 1 -> 2(sink with self-loop): coverable by one pass.
  MealyMachine m(3, 1);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 2, 0);
  m.set_transition(2, 0, 2, 0);
  const auto t = greedy_transition_tour(m, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(is_transition_tour(m, 0, t->inputs));
  // CPP-based generator must refuse here.
  EXPECT_FALSE(minimum_transition_tour(m, 0).has_value());
}

TEST(GreedyTour, FailsWhenCoverageImpossible) {
  // Two branches from 0; taking one loses the other forever.
  MealyMachine m(3, 2);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(0, 1, 2, 0);
  m.set_transition(1, 0, 1, 0);
  m.set_transition(1, 1, 1, 0);
  m.set_transition(2, 0, 2, 0);
  m.set_transition(2, 1, 2, 0);
  EXPECT_FALSE(greedy_transition_tour(m, 0).has_value());
}

TEST(StateTour, VisitsAllStatesButNotAllTransitions) {
  const MealyMachine m = ring_machine();
  const auto t = state_tour(m, 0);
  ASSERT_TRUE(t.has_value());
  const auto stats = evaluate_coverage(m, 0, t->inputs);
  EXPECT_EQ(stats.states_visited, 3u);
  EXPECT_DOUBLE_EQ(stats.state_coverage(), 1.0);
  // The ring state tour takes 2 advancing steps and skips all self-loops.
  EXPECT_LT(stats.transitions_covered, stats.transitions_total);
}

TEST(StateTour, SingleStateMachine) {
  MealyMachine m(1, 1);
  m.set_transition(0, 0, 0, 0);
  const auto t = state_tour(m, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->length(), 0u);
}

TEST(RandomWalk, ProducesRequestedLength) {
  const MealyMachine m = ring_machine();
  const Tour t = random_walk(m, 0, 50, 1234);
  EXPECT_EQ(t.length(), 50u);
  // Must be executable.
  EXPECT_NO_THROW((void)m.run(t.inputs, 0));
}

TEST(RandomWalk, DeterministicInSeed) {
  const MealyMachine m = ring_machine();
  EXPECT_EQ(random_walk(m, 0, 30, 9).inputs, random_walk(m, 0, 30, 9).inputs);
}

TEST(RandomWalk, DeadEndThrows) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 0);  // state 1 has no outgoing transition
  EXPECT_THROW((void)random_walk(m, 0, 5, 0), std::domain_error);
}

TEST(Coverage, EmptySequence) {
  const MealyMachine m = ring_machine();
  const std::vector<InputId> empty;
  const auto stats = evaluate_coverage(m, 0, empty);
  EXPECT_EQ(stats.states_visited, 1u);
  EXPECT_EQ(stats.transitions_covered, 0u);
  EXPECT_EQ(stats.transitions_total, 6u);
  EXPECT_FALSE(is_transition_tour(m, 0, empty));
}

TEST(Coverage, RepeatedTransitionCountsOnce) {
  const MealyMachine m = ring_machine();
  const std::vector<InputId> seq{1, 1, 1, 1};
  const auto stats = evaluate_coverage(m, 0, seq);
  EXPECT_EQ(stats.transitions_covered, 1u);
}

TEST(Coverage, UndefinedTransitionThrows) {
  MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 0);
  const std::vector<InputId> seq{1};
  EXPECT_THROW((void)evaluate_coverage(m, 0, seq), std::domain_error);
}

// ---------------------------------------------------------------------------
// Tour sets (reset-separated sequences)
// ---------------------------------------------------------------------------

TEST(TourSet, SingleSequenceOnStronglyConnectedMachine) {
  const MealyMachine m = ring_machine();
  const auto set = greedy_transition_tour_set(m, 0);
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->sequences.size(), 1u);
  EXPECT_TRUE(is_transition_tour_set(m, *set));
  const auto stats = evaluate_coverage_set(m, *set);
  EXPECT_DOUBLE_EQ(stats.transition_coverage(), 1.0);
}

TEST(TourSet, TransientStartNeedsMultipleSequences) {
  // 0 is transient: 0 -> {1, 2}; 1 and 2 are separate sink SCCs, so the
  // tour must restart at 0 to cover both branches.
  MealyMachine m(3, 2);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(0, 1, 2, 0);
  m.set_transition(1, 0, 1, 1);
  m.set_transition(1, 1, 1, 2);
  m.set_transition(2, 0, 2, 3);
  m.set_transition(2, 1, 2, 4);
  // Single-walk greedy fails...
  EXPECT_FALSE(greedy_transition_tour(m, 0).has_value());
  // ...but the reset-separated set covers everything.
  const auto set = greedy_transition_tour_set(m, 0);
  ASSERT_TRUE(set.has_value());
  EXPECT_GE(set->sequences.size(), 2u);
  EXPECT_TRUE(is_transition_tour_set(m, *set));
}

TEST(TourSet, TotalLengthSumsSequences) {
  TourSet set;
  set.sequences = {{0, 1}, {1}, {}};
  EXPECT_EQ(set.total_length(), 3u);
}

TEST(TourSet, CoverageSetCountsAcrossSequences) {
  const MealyMachine m = ring_machine();
  TourSet set;
  set.start = 0;
  set.sequences = {{0}, {1}};  // one advance, one self-loop at 0
  const auto stats = evaluate_coverage_set(m, set);
  EXPECT_EQ(stats.transitions_covered, 2u);
  EXPECT_EQ(stats.states_visited, 2u);  // states 0 and 1
  EXPECT_FALSE(is_transition_tour_set(m, set));
}

TEST(TourSet, CoverageSetRejectsInvalidSequences) {
  MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 0);
  TourSet set;
  set.start = 0;
  set.sequences = {{1}};  // undefined input at state 0
  EXPECT_THROW((void)evaluate_coverage_set(m, set), std::domain_error);
}

// ---------------------------------------------------------------------------
// Properties on random strongly-connected machines
// ---------------------------------------------------------------------------

class TourProperty : public ::testing::TestWithParam<int> {};

TEST_P(TourProperty, MinimumAndGreedyToursBothCover) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  // random_connected_machine guarantees reachability from 0 but not strong
  // connectivity; make it strongly connected by adding a reset input that
  // returns every state to 0.
  fsm::MealyMachine m = fsm::random_connected_machine(10, 3, 4, seed);
  const fsm::InputId reset = 2;
  for (StateId s = 0; s < m.num_states(); ++s) {
    m.set_transition(s, reset, 0, 99);
  }
  const auto opt = minimum_transition_tour(m, 0);
  const auto greedy = greedy_transition_tour(m, 0);
  ASSERT_TRUE(opt.has_value());
  ASSERT_TRUE(greedy.has_value());
  EXPECT_TRUE(is_transition_tour(m, 0, opt->inputs));
  EXPECT_TRUE(is_transition_tour(m, 0, greedy->inputs));
  // Optimality sanity: CPP tour is never longer than the greedy tour and
  // never shorter than the number of transitions.
  EXPECT_GE(opt->length(), m.reachable_transitions(0).size());
  EXPECT_LE(opt->length(), greedy->length() + m.num_states());
}

TEST_P(TourProperty, StateTourDominatedByTransitionTour) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 100;
  fsm::MealyMachine m = fsm::random_connected_machine(12, 3, 4, seed);
  for (StateId s = 0; s < m.num_states(); ++s) {
    m.set_transition(s, 2, 0, 99);
  }
  const auto st = state_tour(m, 0);
  const auto tt = minimum_transition_tour(m, 0);
  ASSERT_TRUE(st.has_value());
  ASSERT_TRUE(tt.has_value());
  const auto s_stats = evaluate_coverage(m, 0, st->inputs);
  const auto t_stats = evaluate_coverage(m, 0, tt->inputs);
  EXPECT_DOUBLE_EQ(s_stats.state_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(t_stats.state_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(t_stats.transition_coverage(), 1.0);
  EXPECT_LE(s_stats.transition_coverage(), 1.0);
  EXPECT_LE(st->length(), tt->length());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TourProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace simcov::tour
