// Differential tests for the bit-parallel (64-lane) simulation paths.
//
// Every packed component here has a scalar twin that predates it; the
// contract is always the same — lane L of the packed run must equal the
// scalar run of lane L's inputs, bit for bit. The suites below pin that
// contract with randomized differentials (including partial final blocks
// of fewer than 64 lanes) for:
//
//   * sym::PackedLogicSim            vs LogicNetwork::eval_into
//   * model step_batch/output_batch  vs scalar step/output (both backends)
//   * testmodel::PackedControlModelSim vs ControlModelSim
//   * errmodel::PackedMutantBlock    vs scalar exposes()
//   * MutantCoverageOptions::packed  vs the scalar replay loop
//   * CampaignOptions::packed        vs the scalar campaign (byte-identical
//                                    report JSON at 1/2/8 threads)
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "errmodel/errmodel.hpp"
#include "fsm/mealy.hpp"
#include "model/explicit_model.hpp"
#include "model/symbolic_model.hpp"
#include "sym/packed_logic_sim.hpp"
#include "testmodel/control_sim.hpp"
#include "testmodel/packed_control_sim.hpp"
#include "testmodel/testmodel.hpp"
#include "tour/tour.hpp"

namespace simcov {
namespace {

// ---------------------------------------------------------------------------
// PackedLogicSim vs LogicNetwork::eval_into
// ---------------------------------------------------------------------------

/// Random gate soup: `num_gates` gates drawn over the growing signal pool,
/// so deep and wide structures both occur.
sym::LogicNetwork random_network(std::mt19937_64& rng, std::size_t num_inputs,
                                 std::size_t num_gates) {
  sym::LogicNetwork net;
  std::vector<sym::SignalId> pool;
  for (std::size_t i = 0; i < num_inputs; ++i) {
    pool.push_back(net.add_input("in" + std::to_string(i)));
  }
  pool.push_back(net.constant(false));
  pool.push_back(net.constant(true));
  const auto pick = [&] { return pool[rng() % pool.size()]; };
  for (std::size_t g = 0; g < num_gates; ++g) {
    sym::SignalId s = 0;
    switch (rng() % 5) {
      case 0: s = net.make_not(pick()); break;
      case 1: s = net.make_and(pick(), pick()); break;
      case 2: s = net.make_or(pick(), pick()); break;
      case 3: s = net.make_xor(pick(), pick()); break;
      default: s = net.make_mux(pick(), pick(), pick()); break;
    }
    pool.push_back(s);
  }
  return net;
}

TEST(PackedLogicSim, MatchesScalarEvalOnRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    const auto net = random_network(rng, 3 + rng() % 8, 64 + rng() % 256);
    const sym::PackedLogicSim packed(net);

    // 64 random scalar input vectors, one per lane.
    std::vector<std::vector<bool>> lane_inputs(sym::PackedLogicSim::kLanes);
    for (auto& in : lane_inputs) {
      in.resize(net.num_inputs());
      for (std::size_t k = 0; k < in.size(); ++k) in[k] = (rng() & 1) != 0;
    }
    std::vector<std::uint64_t> input_words(net.num_inputs(), 0);
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
      for (std::size_t l = 0; l < lane_inputs.size(); ++l) {
        if (lane_inputs[l][k]) input_words[k] |= std::uint64_t{1} << l;
      }
    }

    std::vector<std::uint64_t> packed_values;
    packed.eval_into(input_words, packed_values);

    std::vector<bool> scalar_values;
    for (std::size_t l = 0; l < lane_inputs.size(); ++l) {
      net.eval_into(lane_inputs[l], scalar_values);
      for (sym::SignalId s = 0; s < net.num_signals(); ++s) {
        ASSERT_EQ(((packed_values[s] >> l) & 1u) != 0, scalar_values[s])
            << "seed=" << seed << " lane=" << l << " signal=" << s;
      }
    }
  }
}

TEST(PackedLogicSim, LevelizationIsTopological) {
  std::mt19937_64 rng(99);
  const auto net = random_network(rng, 5, 200);
  const sym::PackedLogicSim packed(net);
  for (sym::SignalId s = 0; s < net.num_signals(); ++s) {
    const auto g = net.gate(s);
    switch (g.op) {
      case sym::GateOp::kInput:
      case sym::GateOp::kConst:
        EXPECT_EQ(packed.level(s), 0u);
        break;
      case sym::GateOp::kNot:
        EXPECT_GT(packed.level(s), packed.level(g.a));
        break;
      case sym::GateOp::kAnd:
      case sym::GateOp::kOr:
      case sym::GateOp::kXor:
        EXPECT_GT(packed.level(s), packed.level(g.a));
        EXPECT_GT(packed.level(s), packed.level(g.b));
        break;
      case sym::GateOp::kMux:
        EXPECT_GT(packed.level(s), packed.level(g.a));
        EXPECT_GT(packed.level(s), packed.level(g.b));
        EXPECT_GT(packed.level(s), packed.level(g.c));
        break;
    }
    EXPECT_LE(packed.level(s), packed.num_levels());
  }
}

TEST(PackedLogicSim, PackLanesRoundTrips) {
  const bool lanes[]{true, false, true, true, false};
  const std::uint64_t word = sym::PackedLogicSim::pack_lanes(lanes);
  EXPECT_EQ(word, 0b01101u);
}

// ---------------------------------------------------------------------------
// Batch model stepping vs scalar step/output
// ---------------------------------------------------------------------------

testmodel::TestModelOptions tiny_model_options() {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 1;
  opt.reduced_isa = true;
  return opt;
}

/// Random (state, input) key pairs covering valid and invalid
/// combinations, deliberately NOT a multiple of 64 so the final packed
/// block is partial.
void random_keys(std::mt19937_64& rng, unsigned state_bits,
                 unsigned input_bits, std::size_t count,
                 std::vector<std::uint64_t>& states,
                 std::vector<std::uint64_t>& inputs) {
  const std::uint64_t smask = (std::uint64_t{1} << state_bits) - 1;
  const std::uint64_t imask = (std::uint64_t{1} << input_bits) - 1;
  states.resize(count);
  inputs.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    states[i] = rng() & smask;
    inputs[i] = rng() & imask;
  }
}

void expect_batch_matches_scalar(model::TestModel& model, std::size_t count,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> states, inputs;
  random_keys(rng, model.state_bits(), model.input_bits(), count, states,
              inputs);

  std::vector<std::optional<std::uint64_t>> next(count), out(count);
  model.step_batch(states, inputs, next);
  model.output_batch(states, inputs, out);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(next[i], model.step(states[i], inputs[i])) << "pair " << i;
    ASSERT_EQ(out[i], model.output(states[i], inputs[i])) << "pair " << i;
  }
}

TEST(BatchStepping, SymbolicModelMatchesScalarIncludingPartialBlock) {
  const auto built = testmodel::build_dlx_control_model(tiny_model_options());
  model::SymbolicModel model(built.circuit);
  // 3 full blocks plus a 21-lane partial one.
  expect_batch_matches_scalar(model, 3 * 64 + 21, 11);
}

TEST(BatchStepping, SymbolicModelHandlesTinySpans) {
  const auto built = testmodel::build_dlx_control_model(tiny_model_options());
  model::SymbolicModel model(built.circuit);
  expect_batch_matches_scalar(model, 1, 12);
  expect_batch_matches_scalar(model, 63, 13);
}

TEST(BatchStepping, ExplicitModelMatchesScalar) {
  const auto m = fsm::random_connected_machine(24, 3, 4, 17);
  model::ExplicitModel model(m, 0);
  expect_batch_matches_scalar(model, 150, 18);
}

TEST(BatchStepping, MismatchedSpansThrow) {
  const auto m = fsm::random_connected_machine(8, 2, 2, 5);
  model::ExplicitModel model(m, 0);
  std::vector<std::uint64_t> states(4, 0), inputs(3, 0);
  std::vector<std::optional<std::uint64_t>> next(4);
  EXPECT_THROW(model.step_batch(states, inputs, next), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PackedControlModelSim vs ControlModelSim
// ---------------------------------------------------------------------------

testmodel::ControlInput random_control_input(std::mt19937_64& rng,
                                             unsigned reg_addr_bits) {
  static constexpr dlx::OpClass kClasses[] = {
      dlx::OpClass::kNop,  dlx::OpClass::kAlu,    dlx::OpClass::kAluImm,
      dlx::OpClass::kLoad, dlx::OpClass::kStore,  dlx::OpClass::kBranch,
  };
  testmodel::ControlInput in;
  in.cls = kClasses[rng() % std::size(kClasses)];
  const unsigned mask = (1u << reg_addr_bits) - 1;
  in.rs1 = static_cast<unsigned>(rng()) & mask;
  in.rs2 = static_cast<unsigned>(rng()) & mask;
  in.rd = static_cast<unsigned>(rng()) & mask;
  in.branch_outcome = (rng() & 1) != 0;
  in.instr_valid = true;
  return in;
}

TEST(PackedControlSim, MatchesScalarControlSimLaneForLane) {
  const auto opt = tiny_model_options();
  const auto built = testmodel::build_dlx_control_model(opt);
  constexpr std::size_t kTestLanes = 37;  // deliberately a partial block
  constexpr std::size_t kSteps = 40;

  std::vector<testmodel::ControlModelSim> scalars;
  scalars.reserve(kTestLanes);
  for (std::size_t l = 0; l < kTestLanes; ++l) scalars.emplace_back(built);
  testmodel::PackedControlModelSim packed(built);
  packed.reset();

  std::mt19937_64 rng(23);
  std::vector<testmodel::ControlInput> lane_inputs(kTestLanes);
  for (std::size_t step = 0; step < kSteps; ++step) {
    for (std::size_t l = 0; l < kTestLanes; ++l) {
      // Draw until valid for this lane's current state, so neither
      // simulator throws and the walks stay in lockstep.
      do {
        lane_inputs[l] = random_control_input(rng, opt.reg_addr_bits);
      } while (!scalars[l].input_valid(lane_inputs[l]));
    }
    packed.step(lane_inputs);
    for (std::size_t l = 0; l < kTestLanes; ++l) {
      scalars[l].step_fast(lane_inputs[l]);
      const auto& latches = scalars[l].latch_values();
      for (std::size_t j = 0; j < latches.size(); ++j) {
        ASSERT_EQ(packed.latch(l, j), latches[j])
            << "step=" << step << " lane=" << l << " latch=" << j;
      }
    }
  }
  // Output words agree with the scalar sims' last outputs, by index.
  const auto& one = scalars.front();
  const std::size_t num_outputs = built.num_outputs;
  for (std::size_t k = 0; k < num_outputs; ++k) {
    for (std::size_t l = 0; l < kTestLanes; ++l) {
      ASSERT_EQ(packed.out_at(l, k), scalars[l].out_at(k))
          << "lane=" << l << " output=" << k;
    }
  }
  // Name resolution agrees between the two simulators.
  (void)one;
  EXPECT_EQ(packed.output_index("stall"), one.output_index("stall"));
}

// ---------------------------------------------------------------------------
// PackedMutantBlock vs scalar exposes()
// ---------------------------------------------------------------------------

TEST(PackedMutantBlock, MatchesScalarExposesPerSequence) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto m = fsm::random_connected_machine(30, 4, 5, seed);
    const auto mutants = errmodel::sample_mutations(
        m, 0, m.output_alphabet_size(), 100, seed + 100);
    ASSERT_FALSE(mutants.empty());

    // Test sequences: the transition tour set plus short random walks.
    auto set = tour::greedy_transition_tour_set(m, 0);
    ASSERT_TRUE(set.has_value());
    std::vector<std::vector<fsm::InputId>> sequences = set->sequences;
    std::mt19937_64 rng(seed + 7);
    for (int w = 0; w < 10; ++w) {
      std::vector<fsm::InputId> walk;
      for (int s = 0; s < 12; ++s) {
        walk.push_back(static_cast<fsm::InputId>(rng() % m.num_inputs()));
      }
      sequences.push_back(std::move(walk));
    }

    for (std::size_t base = 0; base < mutants.size();
         base += errmodel::PackedMutantBlock::kLanes) {
      const std::size_t len = std::min(errmodel::PackedMutantBlock::kLanes,
                                       mutants.size() - base);
      const errmodel::PackedMutantBlock block(
          m, std::span(mutants).subspan(base, len));
      const std::uint64_t all =
          len == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << len) - 1;
      for (std::size_t s = 0; s < sequences.size(); ++s) {
        const std::uint64_t mask = block.exposes(0, sequences[s], all);
        for (std::size_t l = 0; l < len; ++l) {
          const bool scalar =
              errmodel::exposes(m, mutants[base + l], 0, sequences[s]);
          ASSERT_EQ(((mask >> l) & 1u) != 0, scalar)
              << "seed=" << seed << " mutant=" << base + l << " seq=" << s;
        }
      }
    }
  }
}

TEST(PackedMutantBlock, ActiveMaskSkipsLanes) {
  const auto m = fsm::random_connected_machine(16, 3, 3, 2);
  const auto mutants =
      errmodel::sample_mutations(m, 0, m.output_alphabet_size(), 20, 3);
  ASSERT_GE(mutants.size(), 2u);
  auto set = tour::greedy_transition_tour_set(m, 0);
  ASSERT_TRUE(set.has_value());
  const errmodel::PackedMutantBlock block(m, mutants);
  const auto& seq = set->sequences.front();
  const std::uint64_t full = block.exposes(
      0, seq, mutants.size() == 64 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << mutants.size()) - 1);
  // Restricting to one lane returns at most that lane's bit.
  for (std::size_t l = 0; l < mutants.size(); ++l) {
    const std::uint64_t bit = std::uint64_t{1} << l;
    EXPECT_EQ(block.exposes(0, seq, bit), full & bit) << "lane=" << l;
  }
  EXPECT_EQ(block.exposes(0, seq, 0), 0u);
}

TEST(PackedMutantBlock, RejectsOversizedAndUndefinedSiteBlocks) {
  const auto m = fsm::random_connected_machine(8, 2, 2, 4);
  std::vector<errmodel::Mutation> block(65);
  for (auto& mut : block) {
    mut.at = fsm::TransitionRef{0, 0};
    mut.kind = errmodel::ErrorKind::kOutput;
    mut.new_output = 1;
  }
  EXPECT_THROW(errmodel::PackedMutantBlock(m, block), std::invalid_argument);

  fsm::MealyMachine partial(2, 2);
  partial.set_transition(0, 0, 1, 0);  // (1, *) and (0, 1) stay undefined
  std::vector<errmodel::Mutation> bad(1);
  bad[0].at = fsm::TransitionRef{1, 1};
  EXPECT_THROW(errmodel::PackedMutantBlock(partial, bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Packed replay / campaign end-to-end identity
// ---------------------------------------------------------------------------

TEST(PackedReplay, MutantCoverageIdenticalToScalarAtAnyThreadCount) {
  const auto m = fsm::random_connected_machine(24, 3, 4, 21);
  model::ExplicitModel model(m, 0);
  core::MutantCoverageOptions scalar;
  scalar.mutant_sample = 150;
  scalar.k_extension = 3;
  scalar.exclude_equivalent = true;
  scalar.threads = 1;
  const auto reference = core::evaluate_mutant_coverage(model, scalar);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    core::MutantCoverageOptions packed = scalar;
    packed.packed = true;
    packed.threads = threads;
    const auto r = core::evaluate_mutant_coverage(model, packed);
    EXPECT_EQ(r.mutants, reference.mutants) << "threads=" << threads;
    EXPECT_EQ(r.exposed, reference.exposed) << "threads=" << threads;
    EXPECT_EQ(r.equivalent, reference.equivalent) << "threads=" << threads;
    EXPECT_EQ(r.sequences, reference.sequences) << "threads=" << threads;
    EXPECT_EQ(r.test_length, reference.test_length) << "threads=" << threads;
    EXPECT_EQ(r.exposure_latency, reference.exposure_latency)
        << "threads=" << threads;
  }
}

/// Campaign result with wall-clock noise erased (timings and latency
/// histograms); coverage_telemetry is deterministic and stays in.
std::string semantic_fingerprint(core::CampaignResult result) {
  result.timings = {};
  result.bdd_stats.reset();
  result.symbolic_stats.reset();
  result.store_stats.reset();
  result.metrics.reset();
  return core::to_json(result);
}

TEST(PackedReplay, CampaignReportByteIdenticalToScalarAt128Threads) {
  core::CampaignOptions scalar;
  scalar.model_options = tiny_model_options();
  scalar.method = core::TestMethod::kTransitionTourSet;
  scalar.threads = 1;
  scalar.collect_coverage_telemetry = true;
  const std::vector<dlx::PipelineBug> bugs{dlx::PipelineBug::kNoLoadUseStall};
  const std::string reference =
      semantic_fingerprint(core::run_campaign(scalar, bugs));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    core::CampaignOptions packed = scalar;
    packed.packed = true;
    packed.threads = threads;
    EXPECT_EQ(semantic_fingerprint(core::run_campaign(packed, bugs)),
              reference)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace simcov
