// Tests for the artifact store subsystem: hash accumulator canonicality,
// cross-backend behavioural fingerprint stability (the property that makes
// content addressing sound — same machine, either backend, same key; any
// single-transition mutation, different key), codec roundtrips, store
// durability/eviction semantics, and the tour record/replay adapters.
#include "store/artifact_store.hpp"
#include "store/codec.hpp"
#include "store/fingerprint.hpp"
#include "store/tour_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "errmodel/errmodel.hpp"
#include "fsm/mealy.hpp"
#include "model/encode.hpp"
#include "model/explicit_model.hpp"
#include "model/symbolic_model.hpp"
#include "obs/event_sink.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::store {
namespace {

// ---- Hasher canonicality ---------------------------------------------------

TEST(HasherTest, DeterministicAndOrderSensitive) {
  Hasher a;
  a.u64(1).u64(2).str("x");
  Hasher b;
  b.u64(1).u64(2).str("x");
  EXPECT_EQ(a.digest(), b.digest());

  Hasher c;
  c.u64(2).u64(1).str("x");
  EXPECT_NE(a.digest(), c.digest());
}

TEST(HasherTest, StringsAreLengthPrefixed) {
  // "ab" + "c" and "a" + "bc" feed identical bytes; only the length
  // prefixes keep them apart.
  Hasher a;
  a.str("ab").str("c");
  Hasher b;
  b.str("a").str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HasherTest, NegativeZeroCanonicalizes) {
  Hasher a;
  a.f64(0.0);
  Hasher b;
  b.f64(-0.0);
  EXPECT_EQ(a.digest(), b.digest());

  Hasher c;
  c.f64(1.0);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(HasherTest, HexIsThirtyTwoLowercaseDigits) {
  Hasher h;
  h.str("simcov");
  const std::string hex = h.digest().hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char ch : hex) {
    EXPECT_TRUE((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) << ch;
  }
}

// ---- Behavioural fingerprints ----------------------------------------------

fsm::MealyMachine ring_machine() {
  fsm::MealyMachine m(3, 2);
  for (fsm::StateId s = 0; s < 3; ++s) {
    m.set_transition(s, 0, (s + 1) % 3, s);
    m.set_transition(s, 1, s, 10 + s);
  }
  return m;
}

TEST(FingerprintModelTest, StableAcrossBackends) {
  const fsm::MealyMachine m = ring_machine();
  model::ExplicitModel explicit_model(m, 0);
  const auto circuit = model::encode_circuit(m, 0);
  model::SymbolicModel symbolic_model(circuit);
  EXPECT_EQ(fingerprint_model(explicit_model),
            fingerprint_model(symbolic_model));
}

TEST(FingerprintModelTest, EverySingleTransitionMutationChangesIt) {
  const fsm::MealyMachine m = ring_machine();
  model::ExplicitModel base_model(m, 0);
  const Fingerprint base = fingerprint_model(base_model);

  // The full output+transfer mutant enumeration of the paper's error model
  // (the sample size exceeds the enumeration, so every mutant is returned).
  const auto mutations = errmodel::sample_mutations(m, 0, 13, 1000000, 3);
  ASSERT_GT(mutations.size(), 10u);
  std::set<std::string> digests{base.hex()};
  for (const auto& mut : mutations) {
    model::ExplicitModel mutant(errmodel::apply_mutation(m, mut), 0);
    const Fingerprint fp = fingerprint_model(mutant);
    EXPECT_NE(fp, base) << "mutation left the fingerprint unchanged";
    digests.insert(fp.hex());
  }
  // Distinct mutants give distinct transition tables, hence distinct keys.
  EXPECT_EQ(digests.size(), mutations.size() + 1);
}

TEST(FingerprintModelTest, MutantStableAcrossBackendsToo) {
  const fsm::MealyMachine m = ring_machine();
  const errmodel::Mutation mut{errmodel::ErrorKind::kTransfer, {1, 0}, 0, 0};
  const fsm::MealyMachine mutant = errmodel::apply_mutation(m, mut);
  model::ExplicitModel explicit_model(mutant, 0);
  const auto circuit = model::encode_circuit(mutant, 0);
  model::SymbolicModel symbolic_model(circuit);
  EXPECT_EQ(fingerprint_model(explicit_model),
            fingerprint_model(symbolic_model));
}

TEST(FingerprintModelTest, TinyStateCapThrows) {
  const fsm::MealyMachine m = ring_machine();
  model::ExplicitModel model(m, 0);
  EXPECT_THROW((void)fingerprint_model(model, 1), std::runtime_error);
}

TEST(FingerprintTest, CircuitFingerprintSeesStructure) {
  const fsm::MealyMachine m = ring_machine();
  const auto a = model::encode_circuit(m, 0);
  const auto b = model::encode_circuit(m, 0);
  EXPECT_EQ(fingerprint_circuit(a), fingerprint_circuit(b));

  const errmodel::Mutation mut{errmodel::ErrorKind::kOutput, {1, 0}, 0, 4};
  const auto c = model::encode_circuit(errmodel::apply_mutation(m, mut), 0);
  EXPECT_NE(fingerprint_circuit(a), fingerprint_circuit(c));
}

TEST(FingerprintTest, OptionsFingerprintSeesEveryKnob) {
  testmodel::TestModelOptions base;
  EXPECT_EQ(fingerprint_options(base), fingerprint_options(base));

  testmodel::TestModelOptions narrow = base;
  narrow.reg_addr_bits = 1;
  EXPECT_NE(fingerprint_options(base), fingerprint_options(narrow));

  testmodel::TestModelOptions reduced = base;
  reduced.reduced_isa = !base.reduced_isa;
  EXPECT_NE(fingerprint_options(base), fingerprint_options(reduced));
}

// ---- Codec roundtrips ------------------------------------------------------

TEST(CodecTest, SequenceRoundtripsAtAwkwardWidth) {
  // 9 input bits -> 2 packed bytes per step, exercising the partial byte.
  const unsigned width = 9;
  std::vector<std::vector<bool>> sequence;
  for (std::size_t s = 0; s < 5; ++s) {
    std::vector<bool> step(width);
    for (unsigned b = 0; b < width; ++b) step[b] = ((s + b) % 3) == 0;
    sequence.push_back(step);
  }
  ByteWriter w;
  encode_sequence(w, sequence, width);
  ByteReader r(w.data());
  EXPECT_EQ(decode_sequence(r, width), sequence);
  r.expect_done();
}

TEST(CodecTest, SequenceWidthMismatchThrows) {
  ByteWriter w;
  const std::vector<std::vector<bool>> sequence{{true, false, true}};
  EXPECT_THROW(encode_sequence(w, sequence, 4), CodecError);
}

TEST(CodecTest, TourSummaryRoundtrips) {
  model::TourResult summary;
  summary.coverage.states_visited = 24;
  summary.coverage.states_total = 24;
  summary.coverage.transitions_covered = 95;
  summary.coverage.transitions_total = 96;
  summary.steps = 311;
  summary.restarts = 4;
  summary.complete = false;
  ByteWriter w;
  encode_tour_summary(w, summary);
  ByteReader r(w.data());
  const auto back = decode_tour_summary(r);
  r.expect_done();
  EXPECT_EQ(back.coverage.states_visited, summary.coverage.states_visited);
  EXPECT_EQ(back.coverage.transitions_covered,
            summary.coverage.transitions_covered);
  EXPECT_EQ(back.steps, summary.steps);
  EXPECT_EQ(back.restarts, summary.restarts);
  EXPECT_EQ(back.complete, summary.complete);
}

TEST(CodecTest, SymbolicSnapshotRoundtrips) {
  SymbolicSnapshot snap;
  snap.fsm.num_latches = 25;
  snap.fsm.num_primary_inputs = 25;
  snap.fsm.num_outputs = 7;
  snap.fsm.transition_relation_nodes = 4242;
  snap.fsm.reachability_iterations = 13;
  snap.fsm.reachable_states = 12288.0;
  snap.fsm.transitions = 65536.0;
  snap.fsm.valid_input_combinations = 8228.0;
  snap.bdd.allocated_nodes = 99;
  snap.bdd.live_nodes = 60;
  snap.bdd.free_nodes = 39;
  snap.bdd.unique_lookups = 1000;
  snap.bdd.unique_hits = 900;
  snap.bdd.cache_lookups = 500;
  snap.bdd.cache_hits = 450;
  snap.bdd.gc_runs = 2;
  snap.bdd.reorders = 3;
  snap.bdd.level_swaps = 128;
  snap.bdd.peak_live_nodes = 77;
  snap.bdd.order_fingerprint = 0xdeadbeefcafef00dull;
  const auto back = snapshot_from_payload(to_payload(snap));
  EXPECT_EQ(back.fsm.transition_relation_nodes,
            snap.fsm.transition_relation_nodes);
  EXPECT_EQ(back.fsm.reachability_iterations, snap.fsm.reachability_iterations);
  EXPECT_DOUBLE_EQ(back.fsm.reachable_states, snap.fsm.reachable_states);
  EXPECT_DOUBLE_EQ(back.fsm.valid_input_combinations,
                   snap.fsm.valid_input_combinations);
  EXPECT_EQ(back.bdd.allocated_nodes, snap.bdd.allocated_nodes);
  EXPECT_EQ(back.bdd.gc_runs, snap.bdd.gc_runs);
  EXPECT_EQ(back.bdd.reorders, snap.bdd.reorders);
  EXPECT_EQ(back.bdd.level_swaps, snap.bdd.level_swaps);
  EXPECT_EQ(back.bdd.peak_live_nodes, snap.bdd.peak_live_nodes);
  EXPECT_EQ(back.bdd.order_fingerprint, snap.bdd.order_fingerprint);
}

TEST(CodecTest, CheckpointRoundtripsAndRejectsMalformedPayloads) {
  CampaignCheckpoint ckpt;
  ckpt.clean_runs.push_back(CheckpointRun{0, 120, 6, true, false});
  ckpt.clean_runs.push_back(CheckpointRun{1, 88, 4, false, true});
  const auto payload = to_payload(ckpt);
  const auto back = checkpoint_from_payload(payload);
  ASSERT_EQ(back.clean_runs.size(), 2u);
  EXPECT_EQ(back.clean_runs[1].sequence, 1u);
  EXPECT_EQ(back.clean_runs[1].impl_cycles, 88u);
  EXPECT_EQ(back.clean_runs[1].checkpoints, 4u);
  EXPECT_FALSE(back.clean_runs[1].passed);
  EXPECT_TRUE(back.clean_runs[1].budget_exhausted);

  // Truncated and padded payloads both fail closed.
  auto truncated = payload;
  truncated.pop_back();
  EXPECT_THROW((void)checkpoint_from_payload(truncated), CodecError);
  auto padded = payload;
  padded.push_back(0);
  EXPECT_THROW((void)checkpoint_from_payload(padded), CodecError);
}

// ---- ArtifactStore ---------------------------------------------------------

Fingerprint key_of(std::string_view label) {
  Hasher h;
  h.str(label);
  return h.digest();
}

class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("simcov_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(ArtifactStoreTest, MissThenPublishThenVerifiedHit) {
  ArtifactStore store(StoreOptions{dir_, 0});
  obs::CounterRecorder counters;
  const Fingerprint key = key_of("tour-a");
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};

  EXPECT_FALSE(
      store.load(ArtifactKind::kTour, key, obs::Stage::kTour, counters)
          .has_value());
  store.publish(ArtifactKind::kTour, key, payload, obs::Stage::kTour,
                counters);
  const auto back =
      store.load(ArtifactKind::kTour, key, obs::Stage::kTour, counters);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);

  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GT(stats.bytes_written, payload.size());  // header included
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_EQ(counters.value("store.miss"), 1u);
  EXPECT_EQ(counters.value("store.hit"), 1u);

  // The on-disk name is the content address: <kind>-<32 hex>.art.
  const auto path = store.path_for(ArtifactKind::kTour, key);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(path.filename().string(), "tour-" + key.hex() + ".art");
}

TEST_F(ArtifactStoreTest, CorruptedArtifactIsDeletedAndReportedAsMiss) {
  ArtifactStore store(StoreOptions{dir_, 0});
  auto& sink = obs::null_sink();
  const Fingerprint key = key_of("tour-b");
  std::vector<std::uint8_t> payload(64, 0xAB);
  store.publish(ArtifactKind::kTour, key, payload, obs::Stage::kTour, sink);

  // Flip one payload byte on disk; the checksum must catch it.
  const auto path = store.path_for(ArtifactKind::kTour, key);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\x00');
  }
  EXPECT_FALSE(store.load(ArtifactKind::kTour, key, obs::Stage::kTour, sink)
                   .has_value());
  EXPECT_FALSE(std::filesystem::exists(path))
      << "a corrupt artifact must not survive to poison later runs";
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST_F(ArtifactStoreTest, TruncatedArtifactIsDeletedAndReportedAsMiss) {
  ArtifactStore store(StoreOptions{dir_, 0});
  auto& sink = obs::null_sink();
  const Fingerprint key = key_of("tour-c");
  store.publish(ArtifactKind::kTour, key,
                std::vector<std::uint8_t>(32, 0x11), obs::Stage::kTour, sink);
  const auto path = store.path_for(ArtifactKind::kTour, key);
  std::filesystem::resize_file(path, 10);  // cuts into the header
  EXPECT_FALSE(store.load(ArtifactKind::kTour, key, obs::Stage::kTour, sink)
                   .has_value());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(ArtifactStoreTest, EraseRemovesWithoutCountingEviction) {
  ArtifactStore store(StoreOptions{dir_, 0});
  auto& sink = obs::null_sink();
  const Fingerprint key = key_of("ckpt");
  store.publish(ArtifactKind::kCheckpoint, key,
                std::vector<std::uint8_t>{9, 9}, obs::Stage::kSimulate, sink);
  EXPECT_EQ(store.stats().checkpoint_writes, 1u);
  store.erase(ArtifactKind::kCheckpoint, key);
  EXPECT_FALSE(std::filesystem::exists(
      store.path_for(ArtifactKind::kCheckpoint, key)));
  EXPECT_EQ(store.stats().evictions, 0u);
}

TEST_F(ArtifactStoreTest, LruEvictionRespectsCapAndSparesCheckpoints) {
  // Cap far below three payloads; checkpoints never count against it.
  ArtifactStore store(StoreOptions{dir_, 300});
  obs::CounterRecorder counters;
  const std::vector<std::uint8_t> big(200, 0x5A);
  store.publish(ArtifactKind::kCheckpoint, key_of("ckpt"), big,
                obs::Stage::kSimulate, counters);
  for (const char* label : {"t1", "t2", "t3"}) {
    store.publish(ArtifactKind::kTour, key_of(label), big, obs::Stage::kTour,
                  counters);
  }

  EXPECT_TRUE(std::filesystem::exists(
      store.path_for(ArtifactKind::kCheckpoint, key_of("ckpt"))))
      << "evicting a checkpoint would discard resumable progress";
  EXPECT_GT(store.stats().evictions, 0u);
  EXPECT_EQ(counters.value("store.evict"), store.stats().evictions);

  std::uintmax_t tour_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("tour-", 0) == 0) {
      tour_bytes += entry.file_size();
    }
  }
  EXPECT_LE(tour_bytes, 300u);
}

TEST_F(ArtifactStoreTest, DistinctKindsShareAKeyWithoutColliding) {
  ArtifactStore store(StoreOptions{dir_, 0});
  auto& sink = obs::null_sink();
  const Fingerprint key = key_of("shared");
  store.publish(ArtifactKind::kTour, key, std::vector<std::uint8_t>{1},
                obs::Stage::kTour, sink);
  store.publish(ArtifactKind::kReport, key, std::vector<std::uint8_t>{2},
                obs::Stage::kCompare, sink);
  const auto tour =
      store.load(ArtifactKind::kTour, key, obs::Stage::kTour, sink);
  const auto report =
      store.load(ArtifactKind::kReport, key, obs::Stage::kCompare, sink);
  ASSERT_TRUE(tour.has_value());
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ((*tour)[0], 1);
  EXPECT_EQ((*report)[0], 2);
}

// ---- Tour record/replay ----------------------------------------------------

model::TourResult sample_tour() {
  model::TourResult result;
  result.tour.sequences = {
      {{true, false, true}, {false, false, false}},
      {{false, true, true}},
  };
  result.coverage.states_visited = 3;
  result.coverage.states_total = 3;
  result.coverage.transitions_covered = 6;
  result.coverage.transitions_total = 6;
  result.steps = 3;
  result.restarts = 1;
  result.complete = true;
  return result;
}

TEST(TourCacheTest, RecordThenReplayIsIdentical) {
  const auto original = sample_tour();
  const auto expected = original.tour.sequences;
  RecordingTourStream recorder(
      std::make_unique<model::MaterializedTourStream>(original), 3);

  EXPECT_THROW((void)recorder.artifact(), std::logic_error)
      << "a partial tour must never be published";

  std::vector<std::vector<std::vector<bool>>> seen;
  while (auto seq = recorder.next_sequence()) seen.push_back(*seq);
  EXPECT_EQ(seen, expected);
  ASSERT_TRUE(recorder.exhausted());

  StoredTourStream replay(recorder.artifact());
  const auto summary = replay.summary();
  EXPECT_EQ(summary.steps, original.steps);
  EXPECT_EQ(summary.restarts, original.restarts);
  EXPECT_EQ(summary.complete, original.complete);
  EXPECT_EQ(summary.coverage.transitions_covered,
            original.coverage.transitions_covered);

  std::vector<std::vector<std::vector<bool>>> replayed;
  while (auto seq = replay.next_sequence()) replayed.push_back(*seq);
  EXPECT_EQ(replayed, expected);
}

TEST(TourCacheTest, MalformedPayloadThrowsInsteadOfReplayingGarbage) {
  EXPECT_THROW(StoredTourStream(std::vector<std::uint8_t>{1, 2, 3}),
               CodecError);
}

// ---- CounterRecorder -------------------------------------------------------

TEST(CounterRecorderTest, AccumulatesAcrossStagesByName) {
  obs::CounterRecorder counters;
  counters.counter(obs::Stage::kTour, "store.hit", 2);
  counters.counter(obs::Stage::kSimulate, "store.hit", 3);
  counters.counter(obs::Stage::kTour, "store.miss", 1);
  EXPECT_EQ(counters.value("store.hit"), 5u);
  EXPECT_EQ(counters.value("store.miss"), 1u);
  EXPECT_EQ(counters.value("never.emitted"), 0u);
}

}  // namespace
}  // namespace simcov::store
