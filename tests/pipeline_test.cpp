// Tests for the streaming validation pipeline: stage budgets, cooperative
// cancellation, the in-flight window, the span-derived timings view, the
// JSONL trace sink, and — the refactor's safety net — bit-identity of the
// pipelined campaign against pre-refactor golden reports at several thread
// counts.
#include "pipeline/contracts.hpp"
#include "pipeline/stages.hpp"
#include "pipeline/validation_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "fsm/mealy.hpp"
#include "model/explicit_model.hpp"
#include "obs/event_sink.hpp"
#include "pipeline/store_keys.hpp"
#include "store/artifact_store.hpp"
#include "tour/tour.hpp"

namespace simcov {
namespace {

testmodel::TestModelOptions tiny_model_options() {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 1;
  opt.reduced_isa = true;
  return opt;
}

core::CampaignOptions tour_campaign_options() {
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = core::TestMethod::kTransitionTourSet;
  options.threads = 1;
  return options;
}

const std::vector<dlx::PipelineBug> kThreeBugs{
    dlx::PipelineBug::kNoLoadUseStall,
    dlx::PipelineBug::kNoForwardExMemA,
    dlx::PipelineBug::kNoSquashOnTakenBranch,
};

/// The campaign outcome with wall-clock timings and store activity erased
/// (cache hit/miss counts legitimately differ between semantically
/// identical cold, warm and resumed runs). The metrics section is erased
/// for the same reason — latency histograms are wall-clock — while
/// coverage_telemetry is deterministic by contract and stays in.
std::string semantic_fingerprint(core::CampaignResult result) {
  result.timings = {};
  result.bdd_stats.reset();
  result.symbolic_stats.reset();
  result.store_stats.reset();
  result.metrics.reset();
  return core::to_json(result);
}

const pipeline::StageReport* find_report(
    const std::vector<pipeline::StageReport>& reports, obs::Stage stage) {
  for (const auto& r : reports) {
    if (r.stage == stage) return &r;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Streaming tour generation matches the materialized generators
// ---------------------------------------------------------------------------

TEST(TourStreaming, GeneratorMatchesMaterializedTourSet) {
  const auto m = fsm::random_connected_machine(40, 3, 5, 11);
  const auto set = tour::greedy_transition_tour_set(m, 0);
  ASSERT_TRUE(set.has_value());

  tour::TransitionTourSetGenerator gen(m, 0);
  std::vector<std::vector<fsm::InputId>> streamed;
  while (auto seq = gen.next()) streamed.push_back(std::move(*seq));
  EXPECT_TRUE(gen.done());
  EXPECT_FALSE(gen.stuck());
  EXPECT_EQ(streamed, set->sequences);
}

TEST(TourStreaming, ExplicitStreamMatchesMaterializedTour) {
  const auto m = fsm::random_connected_machine(30, 2, 4, 5);
  model::ExplicitModel materialized(m, 0);
  const auto full = materialized.transition_tour();

  model::ExplicitModel streamed_model(m, 0);
  auto stream = streamed_model.tour_source();
  std::vector<std::vector<std::vector<bool>>> sequences;
  while (auto seq = stream->next_sequence()) {
    sequences.push_back(std::move(*seq));
  }
  const auto summary = stream->summary();

  EXPECT_EQ(sequences, full.tour.sequences);
  EXPECT_EQ(summary.steps, full.steps);
  EXPECT_EQ(summary.restarts, full.restarts);
  EXPECT_EQ(summary.complete, full.complete);
  EXPECT_DOUBLE_EQ(summary.coverage.state_coverage(),
                   full.coverage.state_coverage());
  EXPECT_DOUBLE_EQ(summary.coverage.transition_coverage(),
                   full.coverage.transition_coverage());
  EXPECT_TRUE(summary.tour.sequences.empty())
      << "the summary must not rematerialize the yielded sequences";
}

TEST(TourStreaming, MaterializedStreamHandlesEmptyTour) {
  model::MaterializedTourStream stream{model::TourResult{}};
  EXPECT_FALSE(stream.next_sequence().has_value());
  const auto summary = stream.summary();
  EXPECT_EQ(summary.steps, 0u);
  EXPECT_FALSE(summary.complete);
  // An exhausted (here: empty) source keeps answering nullopt — a resumed
  // campaign may pull past the end again after restoring its checkpoint.
  EXPECT_FALSE(stream.next_sequence().has_value());
  EXPECT_EQ(stream.summary().steps, 0u);
}

TEST(TourStreaming, MaterializedStreamResumesMidPullWithStableSummary) {
  // A cancelled campaign stops pulling mid-stream and reads summary();
  // resuming pulls the remaining sequences from where it stopped, in
  // order, without disturbing them.
  model::TourResult result;
  result.tour.sequences = {{{true}}, {{false}}, {{true}, {false}}};
  result.steps = 4;
  result.restarts = 2;
  result.complete = true;
  model::MaterializedTourStream stream{result};

  const auto first = stream.next_sequence();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, result.tour.sequences[0]);

  const auto paused = stream.summary();
  EXPECT_EQ(paused.steps, 4u);
  EXPECT_EQ(paused.restarts, 2u);
  EXPECT_TRUE(paused.complete);
  EXPECT_TRUE(paused.tour.sequences.empty())
      << "summary must not rematerialize or consume the pending sequences";

  const auto second = stream.next_sequence();
  const auto third = stream.next_sequence();
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(*second, result.tour.sequences[1]);
  EXPECT_EQ(*third, result.tour.sequences[2]);
  EXPECT_FALSE(stream.next_sequence().has_value());
  EXPECT_FALSE(stream.next_sequence().has_value());
  EXPECT_EQ(stream.summary().steps, 4u);
}

// ---------------------------------------------------------------------------
// Stage budgets
// ---------------------------------------------------------------------------

TEST(PipelineBudget, TourItemCapTruncatesAndReportsExhausted) {
  auto options = tour_campaign_options();
  options.budgets.tour.max_items = 3;
  const auto result = core::run_campaign(options, kThreeBugs);

  EXPECT_EQ(result.sequences, 3u);
  EXPECT_EQ(result.clean_runs.size(), 3u);
  EXPECT_TRUE(result.budget_exhausted());
  EXPECT_FALSE(result.cancelled());
  const auto* tour = find_report(result.stage_reports, obs::Stage::kTour);
  ASSERT_NE(tour, nullptr);
  EXPECT_EQ(tour->status, obs::StageStatus::kBudgetExhausted);
  EXPECT_EQ(tour->items, 3u);
  // Compare still runs over the truncated test set.
  EXPECT_EQ(result.exposures.size(), kThreeBugs.size());
  // A truncated tour reports the coverage of what was actually yielded.
  EXPECT_LT(result.transition_coverage, 1.0);
  EXPECT_GT(result.transition_coverage, 0.0);
}

TEST(PipelineBudget, ZeroTourBudgetYieldsEmptyInconclusiveRun) {
  auto options = tour_campaign_options();
  options.budgets.tour.max_items = 0;
  const auto result = core::run_campaign(options, kThreeBugs);

  EXPECT_EQ(result.sequences, 0u);
  EXPECT_TRUE(result.clean_runs.empty());
  EXPECT_TRUE(result.budget_exhausted());
  // Nothing ran, so nothing failed — but nothing was exposed either.
  EXPECT_TRUE(result.clean_pass);
  ASSERT_EQ(result.exposures.size(), kThreeBugs.size());
  for (const auto& e : result.exposures) {
    EXPECT_FALSE(e.exposed);
    EXPECT_EQ(e.programs_run, 0u);
  }
}

TEST(PipelineBudget, CompareItemCapTruncatesBugList) {
  auto options = tour_campaign_options();
  options.budgets.compare.max_items = 1;
  const auto result = core::run_campaign(options, kThreeBugs);

  ASSERT_EQ(result.exposures.size(), 1u);
  EXPECT_EQ(result.exposures[0].bug, kThreeBugs[0]);
  EXPECT_TRUE(result.budget_exhausted());
  const auto* compare = find_report(result.stage_reports,
                                    obs::Stage::kCompare);
  ASSERT_NE(compare, nullptr);
  EXPECT_EQ(compare->status, obs::StageStatus::kBudgetExhausted);
  EXPECT_EQ(compare->items, 1u);
}

TEST(PipelineBudget, DefaultBudgetsMatchUnbudgetedRun) {
  auto options = tour_campaign_options();
  const auto plain = core::run_campaign(options, kThreeBugs);
  EXPECT_FALSE(plain.budget_exhausted());
  EXPECT_FALSE(plain.cancelled());

  // Budgets far above the workload must not perturb the outcome.
  options.budgets.tour.max_items = 1u << 20;
  options.budgets.simulate.deadline_seconds = 1e9;
  options.max_in_flight_sequences = 2;
  const auto budgeted = core::run_campaign(options, kThreeBugs);
  EXPECT_EQ(semantic_fingerprint(budgeted), semantic_fingerprint(plain));
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// Cancels the campaign's token when the Nth tour sequence is announced.
class CancelAfterSequences final : public obs::EventSink {
 public:
  CancelAfterSequences(pipeline::CancellationToken token, std::uint64_t after)
      : token_(std::move(token)), after_(after) {}

  void item(obs::Stage stage, std::string_view kind, std::uint64_t id,
            std::uint64_t) override {
    if (stage == obs::Stage::kTour && kind == "sequence" && id + 1 >= after_) {
      token_.cancel();
    }
  }

 private:
  pipeline::CancellationToken token_;
  std::uint64_t after_;
};

TEST(PipelineCancel, MidStreamCancellationIsBatchAtomic) {
  auto options = tour_campaign_options();
  options.max_in_flight_sequences = 1;  // one sequence per batch
  CancelAfterSequences sink(options.cancel, 3);
  options.sink = &sink;
  const auto result = core::run_campaign(options, kThreeBugs);

  // The token trips while sequence 2 (the third) is pulled; its batch is
  // dropped whole, so exactly the two earlier sequences were committed.
  EXPECT_TRUE(result.cancelled());
  EXPECT_EQ(result.sequences, 2u);
  EXPECT_EQ(result.clean_runs.size(), 2u);
  const auto* concretize = find_report(result.stage_reports,
                                       obs::Stage::kConcretize);
  ASSERT_NE(concretize, nullptr);
  EXPECT_EQ(concretize->status, obs::StageStatus::kCancelled);
  // Compare never starts on a cancelled campaign.
  EXPECT_TRUE(result.exposures.empty());
  const auto* compare = find_report(result.stage_reports,
                                    obs::Stage::kCompare);
  ASSERT_NE(compare, nullptr);
  EXPECT_EQ(compare->status, obs::StageStatus::kCancelled);
}

TEST(PipelineCancel, PreCancelledMutantReplayReportsNothingExposed) {
  const auto m = fsm::random_connected_machine(10, 2, 4, 3);
  core::MutantCoverageOptions options;
  options.mutant_sample = 50;
  options.cancel.cancel();
  const auto result =
      core::evaluate_mutant_coverage(model::ExplicitModel(m, 0), options);
  EXPECT_TRUE(result.cancelled());
  EXPECT_EQ(result.exposed, 0u);
  const auto* replay = find_report(result.stage_reports,
                                   obs::Stage::kMutantReplay);
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(replay->status, obs::StageStatus::kCancelled);
}

// ---------------------------------------------------------------------------
// Streaming window
// ---------------------------------------------------------------------------

/// Records the in-flight peak a pipeline run emits — a level snapshot, so
/// it arrives as a gauge (max semantics), never as a summed counter.
class PeakGaugeRecorder final : public obs::EventSink {
 public:
  void gauge(obs::Stage, std::string_view name,
             std::uint64_t value) override {
    if (name == "sequences_in_flight_peak") peak_ = std::max(peak_, value);
  }

  [[nodiscard]] std::uint64_t peak() const { return peak_; }

 private:
  std::uint64_t peak_ = 0;
};

TEST(PipelineWindow, InFlightSequencesBoundedByWindow) {
  auto options = tour_campaign_options();
  const auto reference = core::run_campaign(options, kThreeBugs);
  ASSERT_GT(reference.sequences, 2u);

  // Cap the window far below the sequence count: the peak must respect it
  // and the outcome must not change — streaming bounds memory, not results.
  PeakGaugeRecorder counters;
  options.max_in_flight_sequences = 2;
  options.sink = &counters;
  const auto windowed = core::run_campaign(options, kThreeBugs);
  EXPECT_LE(counters.peak(), 2u);
  EXPECT_GT(counters.peak(), 0u);
  EXPECT_EQ(semantic_fingerprint(windowed), semantic_fingerprint(reference));
}

// ---------------------------------------------------------------------------
// Timings as a projection of the stage spans
// ---------------------------------------------------------------------------

TEST(PipelineTimings, TotalSecondsIsThePhaseSum) {
  const auto result = core::run_campaign(tour_campaign_options(), kThreeBugs);
  // Equal up to floating-point summation order (the invariant
  // timings_from_spans itself asserts).
  EXPECT_NEAR(result.timings.total_seconds, result.timings.phase_sum(),
              1e-9 * result.timings.total_seconds + 1e-12);
  EXPECT_GT(result.timings.total_seconds, 0.0);

  // The stage reports carry the same span accumulation the timings view is
  // computed from, so their sum reproduces the total.
  double stage_sum = 0.0;
  for (const auto& r : result.stage_reports) stage_sum += r.seconds;
  EXPECT_NEAR(stage_sum, result.timings.total_seconds,
              1e-9 * result.timings.total_seconds + 1e-12);
}

TEST(PipelineTimings, MutantReplayTimingsAreSpanDerived) {
  const auto m = fsm::random_connected_machine(12, 2, 4, 9);
  core::MutantCoverageOptions options;
  options.mutant_sample = 40;
  const auto result =
      core::evaluate_mutant_coverage(model::ExplicitModel(m, 0), options);
  EXPECT_NEAR(result.timings.total_seconds, result.timings.phase_sum(),
              1e-9 * result.timings.total_seconds + 1e-12);
  EXPECT_GT(result.timings.tour_seconds, 0.0);
  EXPECT_GT(result.timings.simulate_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// JSONL trace sink
// ---------------------------------------------------------------------------

TEST(PipelineTrace, JsonlSinkStreamsParseableEvents) {
  const std::string path =
      testing::TempDir() + "pipeline_trace_test.jsonl";
  {
    obs::JsonlTraceSink sink(path);
    auto options = tour_campaign_options();
    options.sink = &sink;
    const auto result = core::run_campaign(options, kThreeBugs);
    ASSERT_TRUE(result.clean_pass);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  bool saw_span = false;
  bool saw_item = false;
  bool saw_status = false;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"event\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"stage\":"), std::string::npos) << line;
    saw_span = saw_span || line.find("\"event\":\"span\"") != std::string::npos;
    saw_item = saw_item || line.find("\"event\":\"item\"") != std::string::npos;
    saw_status =
        saw_status || line.find("\"event\":\"status\"") != std::string::npos;
  }
  EXPECT_GT(lines, 10u);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_item);
  EXPECT_TRUE(saw_status);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Golden bit-identity: the streamed pipeline reproduces the pre-refactor
// monolithic engine exactly (timings erased), at any thread count.
// ---------------------------------------------------------------------------

// Captured from the pre-refactor engine (commit "Unify explicit and
// symbolic test models behind one TestModel interface") with the dumper
// configuration mirrored in each test below.
constexpr const char* kGoldenExplicitTour =
    R"json({"report":"campaign","model":{"backend":"explicit","latches":21,"primary_inputs":8,"states":1024,"transitions":21508},"test_set":{"sequences":19,"steps":40678,"instructions":39401,"state_coverage":1,"transition_coverage":1},"clean_pass":true,"bugs_exposed":3,"runs_inconclusive":0,"total_impl_cycles":42783,"clean_runs":[{"sequence":0,"impl_cycles":39631,"checkpoints":35261,"passed":true,"budget_exhausted":false},{"sequence":1,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":2,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":3,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":4,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":5,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":6,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":7,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":8,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":9,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":10,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":11,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":12,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":13,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":14,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":15,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":16,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":17,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":18,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false}],"exposures":[{"bug":"missing load-use interlock","exposed":true,"programs_run":1,"impl_cycles":586,"budget_exhausted":false,"exposing_sequence":0},{"bug":"no EX/MEM bypass (A)","exposed":true,"programs_run":1,"impl_cycles":1050,"budget_exhausted":false,"exposing_sequence":0},{"bug":"no squash on taken branch","exposed":true,"programs_run":1,"impl_cycles":1408,"budget_exhausted":false,"exposing_sequence":0}],"timings":{"model_build_seconds":0,"symbolic_seconds":0,"tour_seconds":0,"concretize_seconds":0,"simulate_seconds":0,"total_seconds":0}})json";

constexpr const char* kGoldenRandomWalk =
    R"json({"report":"campaign","model":{"backend":"explicit","latches":21,"primary_inputs":8,"states":1024,"transitions":21508},"test_set":{"sequences":1,"steps":120,"instructions":111,"state_coverage":0.1005859375,"transition_coverage":0.005532824995350567},"clean_pass":true,"bugs_exposed":1,"runs_inconclusive":0,"total_impl_cycles":155,"clean_runs":[{"sequence":0,"impl_cycles":120,"checkpoints":101,"passed":true,"budget_exhausted":false}],"exposures":[{"bug":"missing load-use interlock","exposed":true,"programs_run":1,"impl_cycles":35,"budget_exhausted":false,"exposing_sequence":0}],"timings":{"model_build_seconds":0,"symbolic_seconds":0,"tour_seconds":0,"concretize_seconds":0,"simulate_seconds":0,"total_seconds":0}})json";

constexpr const char* kGoldenSymbolicTour =
    R"json({"report":"campaign","model":{"backend":"symbolic","latches":21,"primary_inputs":8,"states":1024,"transitions":21508},"test_set":{"sequences":19,"steps":41497,"instructions":40220,"state_coverage":1,"transition_coverage":1},"clean_pass":true,"bugs_exposed":2,"runs_inconclusive":0,"total_impl_cycles":42558,"clean_runs":[{"sequence":0,"impl_cycles":40460,"checkpoints":36080,"passed":true,"budget_exhausted":false},{"sequence":1,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":2,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":3,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":4,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":5,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":6,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":7,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":8,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":9,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":10,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":11,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":12,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":13,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":14,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":15,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":16,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":17,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false},{"sequence":18,"impl_cycles":6,"checkpoints":2,"passed":true,"budget_exhausted":false}],"exposures":[{"bug":"missing load-use interlock","exposed":true,"programs_run":1,"impl_cycles":586,"budget_exhausted":false,"exposing_sequence":0},{"bug":"no squash on taken branch","exposed":true,"programs_run":1,"impl_cycles":1404,"budget_exhausted":false,"exposing_sequence":0}],"timings":{"model_build_seconds":0,"symbolic_seconds":0,"tour_seconds":0,"concretize_seconds":0,"simulate_seconds":0,"total_seconds":0}})json";

const std::size_t kGoldenThreadCounts[] = {1, 2, 8};

TEST(PipelineGolden, ExplicitTourMatchesPreRefactorEngine) {
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = core::TestMethod::kTransitionTourSet;
  options.seed = 1;
  for (const std::size_t threads : kGoldenThreadCounts) {
    options.threads = threads;
    const auto result = core::run_campaign(options, kThreeBugs);
    EXPECT_EQ(semantic_fingerprint(result), kGoldenExplicitTour)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Artifact store integration: warm reuse, report archival, checkpoint/resume
// ---------------------------------------------------------------------------

/// A fresh store directory under the system temp dir, wiped on both ends of
/// the test.
class PipelineStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("simcov_pipeline_store_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::size_t checkpoint_files() const {
    std::size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().filename().string().rfind("checkpoint-", 0) == 0) ++n;
    }
    return n;
  }

  std::filesystem::path dir_;
};

TEST_F(PipelineStoreTest, WarmRunSkipsTourGenerationAndIsByteIdentical) {
  core::CampaignOptions options = tour_campaign_options();
  options.store_dir = dir_.string();

  const auto cold = core::run_campaign(options, kThreeBugs);
  ASSERT_TRUE(cold.store_stats.has_value());
  EXPECT_EQ(cold.store_stats->hits, 0u);
  EXPECT_GT(cold.store_stats->misses, 0u);

  const auto warm = core::run_campaign(options, kThreeBugs);
  ASSERT_TRUE(warm.store_stats.has_value());
  EXPECT_GT(warm.store_stats->hits, 0u);
  EXPECT_EQ(warm.store_stats->misses, 0u)
      << "the warm run recomputed something the cold run published";
  EXPECT_EQ(semantic_fingerprint(warm), semantic_fingerprint(cold));
}

TEST_F(PipelineStoreTest, CompletedCampaignArchivesItsReport) {
  core::CampaignOptions options = tour_campaign_options();
  options.store_dir = dir_.string();
  const auto result = core::run_campaign(options, kThreeBugs);
  ASSERT_TRUE(result.report_key.has_value());

  store::ArtifactStore store(store::StoreOptions{dir_, 0});
  const auto payload = store.load(store::ArtifactKind::kReport,
                                  *result.report_key, obs::Stage::kCompare,
                                  obs::null_sink());
  ASSERT_TRUE(payload.has_value());
  const std::string archived(payload->begin(), payload->end());
  EXPECT_EQ(archived, core::to_json(result));
  // The campaign ran to completion, so no checkpoint survives it.
  EXPECT_EQ(checkpoint_files(), 0u);
}

TEST_F(PipelineStoreTest, TourBudgetBypassesTheTourCache) {
  core::CampaignOptions options = tour_campaign_options();
  options.store_dir = dir_.string();
  options.budgets.tour.max_items = 2;  // truncated tour != the keyed tour
  const auto first = core::run_campaign(options, kThreeBugs);
  const auto second = core::run_campaign(options, kThreeBugs);
  ASSERT_TRUE(second.store_stats.has_value());
  EXPECT_EQ(second.store_stats->hits + second.store_stats->misses, 0u)
      << "a budget-truncated tour must never be cached or served";
  EXPECT_EQ(semantic_fingerprint(second), semantic_fingerprint(first));
}

/// Cancels the campaign after `after` committed clean runs — a
/// deterministic stand-in for killing the process mid-stream.
class KillAfterRuns final : public obs::EventSink {
 public:
  KillAfterRuns(core::CancellationToken token, std::size_t after)
      : token_(std::move(token)), after_(after) {}

  void item(obs::Stage stage, std::string_view kind, std::uint64_t,
            std::uint64_t) override {
    if (stage == obs::Stage::kSimulate && kind == "clean_run" &&
        seen_.fetch_add(1) + 1 >= after_) {
      token_.cancel();
    }
  }

 private:
  core::CancellationToken token_;
  std::size_t after_;
  std::atomic<std::size_t> seen_{0};
};

TEST_F(PipelineStoreTest, KilledCampaignResumesIdenticallyAcrossThreads) {
  // Reference: the uninterrupted run (no store involved at all).
  core::CampaignOptions base = tour_campaign_options();
  base.checkpoint_every = 2;
  const std::string reference =
      semantic_fingerprint(core::run_campaign(base, kThreeBugs));

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto dir = dir_ / ("t" + std::to_string(threads));

    // Copied CampaignOptions share one cancellation flag; each run needs
    // its own token so the kill only hits the run it targets.
    core::CampaignOptions kopt = base;
    kopt.cancel = core::CancellationToken{};
    kopt.threads = threads;
    kopt.store_dir = dir.string();
    KillAfterRuns killer(kopt.cancel, 3);
    kopt.sink = &killer;
    const auto killed = core::run_campaign(kopt, kThreeBugs);
    EXPECT_TRUE(killed.cancelled()) << "threads=" << threads;
    EXPECT_NE(semantic_fingerprint(killed), reference);

    core::CampaignOptions ropt = base;
    ropt.cancel = core::CancellationToken{};
    ropt.threads = threads;
    ropt.store_dir = dir.string();
    ropt.resume = true;
    const auto resumed = core::run_campaign(ropt, kThreeBugs);
    ASSERT_TRUE(resumed.store_stats.has_value());
    EXPECT_GT(resumed.store_stats->resumed_sequences, 0u)
        << "threads=" << threads;
    EXPECT_EQ(semantic_fingerprint(resumed), reference)
        << "threads=" << threads;
  }
}

TEST_F(PipelineStoreTest, ResumeWithoutACheckpointIsACleanColdRun) {
  core::CampaignOptions options = tour_campaign_options();
  options.store_dir = dir_.string();
  options.resume = true;  // nothing to resume from yet
  const auto result = core::run_campaign(options, kThreeBugs);
  ASSERT_TRUE(result.store_stats.has_value());
  EXPECT_EQ(result.store_stats->resumed_sequences, 0u);

  core::CampaignOptions plain = tour_campaign_options();
  EXPECT_EQ(semantic_fingerprint(result),
            semantic_fingerprint(core::run_campaign(plain, kThreeBugs)));
}

// ---------------------------------------------------------------------------
// Coverage telemetry: deterministic at any thread count and across resume
// ---------------------------------------------------------------------------

TEST(PipelineTelemetry, ConvergenceCurveIsIdenticalAcrossThreadCounts) {
  core::CampaignOptions options = tour_campaign_options();
  options.collect_coverage_telemetry = true;

  options.threads = 1;
  const auto reference = core::run_campaign(options, kThreeBugs);
  ASSERT_TRUE(reference.coverage_telemetry.has_value());
  const auto& ref = *reference.coverage_telemetry;
  ASSERT_FALSE(ref.convergence.empty());
  EXPECT_EQ(ref.convergence.back().transitions_covered,
            ref.distinct_transitions);
  EXPECT_GE(ref.max_transition_hits, 1u);
  ASSERT_EQ(ref.bug_exposure_latency.size(), kThreeBugs.size());

  const std::string fingerprint = semantic_fingerprint(reference);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    const auto result = core::run_campaign(options, kThreeBugs);
    ASSERT_TRUE(result.coverage_telemetry.has_value())
        << "threads=" << threads;
    EXPECT_EQ(result.coverage_telemetry->convergence, ref.convergence)
        << "threads=" << threads;
    EXPECT_EQ(result.coverage_telemetry->transition_hits, ref.transition_hits)
        << "threads=" << threads;
    EXPECT_EQ(result.coverage_telemetry->bug_exposure_latency,
              ref.bug_exposure_latency)
        << "threads=" << threads;
    EXPECT_EQ(semantic_fingerprint(result), fingerprint)
        << "threads=" << threads;
  }
}

TEST(PipelineTelemetry, ExposureLatencyAgreesWithTheCompareVerdicts) {
  core::CampaignOptions options = tour_campaign_options();
  options.collect_coverage_telemetry = true;
  const auto result = core::run_campaign(options, kThreeBugs);
  ASSERT_TRUE(result.coverage_telemetry.has_value());
  const auto& latencies = result.coverage_telemetry->bug_exposure_latency;
  ASSERT_EQ(latencies.size(), result.exposures.size());
  for (std::size_t b = 0; b < latencies.size(); ++b) {
    EXPECT_EQ(latencies[b].exposed, result.exposures[b].exposed) << "bug " << b;
    if (result.exposures[b].exposed) {
      ASSERT_TRUE(result.exposures[b].exposing_sequence.has_value());
      EXPECT_EQ(latencies[b].sequences,
                *result.exposures[b].exposing_sequence + 1)
          << "bug " << b << ": latency must be the 1-based exposing index";
    }
  }
}

TEST(PipelineTelemetry, CurveBudgetBoundsThePointCountButNotTheEndpoint) {
  core::CampaignOptions full = tour_campaign_options();
  full.collect_coverage_telemetry = true;
  const auto reference = core::run_campaign(full, kThreeBugs);
  ASSERT_TRUE(reference.coverage_telemetry.has_value());

  core::CampaignOptions tight = full;
  tight.telemetry_curve_budget = 2;
  const auto result = core::run_campaign(tight, kThreeBugs);
  ASSERT_TRUE(result.coverage_telemetry.has_value());
  EXPECT_LE(result.coverage_telemetry->convergence.size(), 3u);
  EXPECT_EQ(result.coverage_telemetry->convergence.back(),
            reference.coverage_telemetry->convergence.back())
      << "downsampling must keep the campaign's final coverage point";
}

TEST(PipelineTelemetry, DisabledByDefaultAndAbsentFromTheReport) {
  const auto result =
      core::run_campaign(tour_campaign_options(), kThreeBugs);
  EXPECT_FALSE(result.coverage_telemetry.has_value());
  EXPECT_EQ(core::to_json(result).find("coverage_telemetry"),
            std::string::npos);
}

TEST(PipelineTelemetry, MetricsRegistrySummaryLandsInTheReport) {
  obs::MetricsRegistry registry;
  core::CampaignOptions options = tour_campaign_options();
  options.metrics = &registry;
  const auto result = core::run_campaign(options, kThreeBugs);
  ASSERT_TRUE(result.metrics.has_value());
  EXPECT_FALSE(result.metrics->histograms.empty());

  // Per-sequence latency instrumentation fed the registry for every stage
  // of the Figure-1 flow.
  bool tour_latency = false, concretize_latency = false,
       simulate_latency = false, queue_wait = false;
  for (const auto& h : result.metrics->histograms) {
    if (h.stage == obs::Stage::kTour && h.name == "sequence.latency_ns")
      tour_latency = true;
    if (h.stage == obs::Stage::kConcretize && h.name == "program.latency_ns")
      concretize_latency = true;
    if (h.stage == obs::Stage::kSimulate && h.name == "clean_run.latency_ns")
      simulate_latency = true;
    if (h.name == "queue_wait.latency_ns") queue_wait = true;
  }
  EXPECT_TRUE(tour_latency);
  EXPECT_TRUE(concretize_latency);
  EXPECT_TRUE(simulate_latency);
  EXPECT_TRUE(queue_wait);

  const std::string json = core::to_json(result);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"clean_run.latency_ns\""), std::string::npos);
}

TEST_F(PipelineStoreTest, TelemetrySurvivesKillAndResumeBitIdentically) {
  core::CampaignOptions base = tour_campaign_options();
  base.checkpoint_every = 2;
  base.collect_coverage_telemetry = true;
  const auto uninterrupted = core::run_campaign(base, kThreeBugs);
  ASSERT_TRUE(uninterrupted.coverage_telemetry.has_value());
  const std::string reference = semantic_fingerprint(uninterrupted);

  core::CampaignOptions kopt = base;
  kopt.cancel = core::CancellationToken{};
  kopt.store_dir = dir_.string();
  KillAfterRuns killer(kopt.cancel, 2);
  kopt.sink = &killer;
  const auto killed = core::run_campaign(kopt, kThreeBugs);
  ASSERT_TRUE(killed.cancelled());

  core::CampaignOptions ropt = base;
  ropt.cancel = core::CancellationToken{};
  ropt.store_dir = dir_.string();
  ropt.resume = true;
  const auto resumed = core::run_campaign(ropt, kThreeBugs);
  ASSERT_TRUE(resumed.store_stats.has_value());
  EXPECT_GT(resumed.store_stats->resumed_sequences, 0u);
  ASSERT_TRUE(resumed.coverage_telemetry.has_value());
  EXPECT_EQ(resumed.coverage_telemetry->convergence,
            uninterrupted.coverage_telemetry->convergence)
      << "replay across the resume boundary must reproduce the curve";
  EXPECT_EQ(semantic_fingerprint(resumed), reference);
}

TEST(PipelineTelemetry, MutantReplayRecordsExposureLatencies) {
  const auto m = fsm::random_connected_machine(20, 3, 4, 9);
  model::ExplicitModel model(m, 0);
  core::MutantCoverageOptions options;
  options.mutant_sample = 40;
  options.k_extension = 2;
  const auto reference = core::evaluate_mutant_coverage(model, options);
  EXPECT_EQ(reference.exposure_latency.size(), reference.exposed);
  for (const auto latency : reference.exposure_latency) {
    EXPECT_GE(latency, 1u);
    EXPECT_LE(latency, reference.sequences);
  }
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    core::MutantCoverageOptions opt = options;
    opt.threads = threads;
    const auto r = core::evaluate_mutant_coverage(model, opt);
    EXPECT_EQ(r.exposure_latency, reference.exposure_latency)
        << "threads=" << threads;
  }
}

TEST(PipelineGolden, RandomWalkMatchesPreRefactorEngine) {
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = core::TestMethod::kRandomWalk;
  options.random_length = 120;
  options.seed = 7;
  const std::vector<dlx::PipelineBug> bugs{dlx::PipelineBug::kNoLoadUseStall};
  for (const std::size_t threads : kGoldenThreadCounts) {
    options.threads = threads;
    const auto result = core::run_campaign(options, bugs);
    EXPECT_EQ(semantic_fingerprint(result), kGoldenRandomWalk)
        << "threads=" << threads;
  }
}

TEST(PipelineGolden, SymbolicTourMatchesPreRefactorEngine) {
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = core::TestMethod::kTransitionTourSet;
  options.backend = core::BackendChoice::kSymbolic;
  options.seed = 1;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoSquashOnTakenBranch,
  };
  for (const std::size_t threads : kGoldenThreadCounts) {
    options.threads = threads;
    const auto result = core::run_campaign(options, bugs);
    EXPECT_EQ(semantic_fingerprint(result), kGoldenSymbolicTour)
        << "threads=" << threads;
  }
}

TEST(PipelineGolden, SymbolicTourUnchangedByDynamicReordering) {
  // The reorder policy is a runtime knob: with it on, the campaign report
  // must stay byte-identical (modulo engine telemetry, erased exactly like
  // wall clock) to the static-order golden — at every thread count, since
  // all BDD work runs on the coordinator thread.
  core::CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = core::TestMethod::kTransitionTourSet;
  options.backend = core::BackendChoice::kSymbolic;
  options.seed = 1;
  options.reorder = bdd::ReorderPolicy::kAuto;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoSquashOnTakenBranch,
  };
  for (const std::size_t threads : kGoldenThreadCounts) {
    options.threads = threads;
    const auto result = core::run_campaign(options, bugs);
    EXPECT_EQ(semantic_fingerprint(result), kGoldenSymbolicTour)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Generator layer: pluggable sequence sources at the campaign level
// ---------------------------------------------------------------------------

/// A biased-random spec small enough to keep tiny-model campaigns fast.
core::GeneratorSpec biased_campaign_spec() {
  core::GeneratorSpec spec;
  spec.kind = core::GeneratorKind::kBiasedRandom;
  spec.sequence_length = 32;
  spec.max_walk_steps = 2000;
  return spec;
}

core::GeneratorSpec hybrid_campaign_spec() {
  core::GeneratorSpec spec = biased_campaign_spec();
  spec.kind = core::GeneratorKind::kHybrid;
  spec.hybrid_tour_steps = 256;
  return spec;
}

TEST(PipelineGenerator, BiasedCampaignIsBitIdenticalAcrossThreadCounts) {
  core::CampaignOptions options = tour_campaign_options();
  options.generator = biased_campaign_spec();
  const auto reference = core::run_campaign(options, kThreeBugs);
  const std::string fingerprint = semantic_fingerprint(reference);
  EXPECT_NE(fingerprint.find("\"generator\":{\"kind\":\"biased_random\""),
            std::string::npos);
  EXPECT_GT(reference.sequences, 1u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    EXPECT_EQ(semantic_fingerprint(core::run_campaign(options, kThreeBugs)),
              fingerprint)
        << "threads=" << threads;
  }

  // The strategy actually changed what ran: a default-spec campaign
  // produces a different report, and one without a "generator" section.
  const std::string default_fingerprint =
      semantic_fingerprint(core::run_campaign(tour_campaign_options(),
                                              kThreeBugs));
  EXPECT_NE(default_fingerprint, fingerprint);
  EXPECT_EQ(default_fingerprint.find("\"generator\""), std::string::npos);
}

TEST(PipelineGenerator, HybridCampaignIsBitIdenticalAcrossThreadCounts) {
  core::CampaignOptions options = tour_campaign_options();
  options.generator = hybrid_campaign_spec();
  const auto reference = core::run_campaign(options, kThreeBugs);
  const std::string fingerprint = semantic_fingerprint(reference);
  EXPECT_NE(fingerprint.find("\"generator\":{\"kind\":\"hybrid\""),
            std::string::npos);
  EXPECT_GT(reference.sequences, 1u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    EXPECT_EQ(semantic_fingerprint(core::run_campaign(options, kThreeBugs)),
              fingerprint)
        << "threads=" << threads;
  }
}

TEST(PipelineGenerator, NonDefaultSpecRejectsOtherMethods) {
  core::CampaignOptions options = tour_campaign_options();
  options.method = core::TestMethod::kRandomWalk;
  options.generator = biased_campaign_spec();
  EXPECT_THROW(core::run_campaign(options, kThreeBugs),
               std::invalid_argument);
}

TEST(PipelineGenerator, MutantReplayListsEveryRealMutantOnce) {
  const auto m = fsm::random_connected_machine(20, 3, 4, 9);
  model::ExplicitModel model(m, 0);
  core::MutantCoverageOptions options;
  options.mutant_sample = 40;
  options.k_extension = 2;
  const auto r = core::evaluate_mutant_coverage(model, options);
  ASSERT_EQ(r.mutant_exposures.size(), r.mutants);

  std::size_t exposed = 0;
  std::vector<std::uint64_t> exposed_latencies;
  for (const auto& e : r.mutant_exposures) {
    if (e.exposed) {
      ++exposed;
      EXPECT_GE(e.sequences, 1u);
      EXPECT_LE(e.sequences, r.sequences);
      exposed_latencies.push_back(e.sequences);
    } else {
      EXPECT_EQ(e.sequences, 0u) << "unexposed mutants carry no latency";
    }
  }
  EXPECT_EQ(exposed, r.exposed);
  EXPECT_EQ(exposed_latencies, r.exposure_latency)
      << "the exposed-only view must be a projection of mutant_exposures";
}

TEST(PipelineGenerator, MutantReplayWithBiasedGeneratorIsThreadInvariant) {
  const auto m = fsm::random_connected_machine(20, 3, 4, 9);
  model::ExplicitModel model(m, 0);
  core::MutantCoverageOptions options;
  options.mutant_sample = 30;
  options.k_extension = 2;
  options.generator = biased_campaign_spec();
  const auto reference = core::evaluate_mutant_coverage(model, options);
  EXPECT_GT(reference.sequences, 0u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    core::MutantCoverageOptions opt = options;
    opt.threads = threads;
    const auto r = core::evaluate_mutant_coverage(model, opt);
    EXPECT_EQ(r.mutant_exposures, reference.mutant_exposures)
        << "threads=" << threads;
    EXPECT_EQ(r.exposure_latency, reference.exposure_latency)
        << "threads=" << threads;
  }
}

TEST(PipelineStoreKeys, TourKeyCoversEverySequenceShapingKnob) {
  const auto built = testmodel::build_dlx_control_model(tiny_model_options());
  const core::CampaignOptions base = tour_campaign_options();
  const auto baseline = pipeline::campaign_store_keys(
      base, built.circuit, model::Backend::kExplicit, kThreeBugs);

  using Mutator = std::function<void(core::CampaignOptions&)>;
  const std::vector<std::pair<const char*, Mutator>> knobs{
      {"method",
       [](core::CampaignOptions& o) {
         o.method = core::TestMethod::kStateTour;
       }},
      {"max_tour_steps",
       [](core::CampaignOptions& o) { o.max_tour_steps += 1; }},
      {"random_length",
       [](core::CampaignOptions& o) { o.random_length += 1; }},
      {"seed", [](core::CampaignOptions& o) { o.seed += 1; }},
      {"generator.kind",
       [](core::CampaignOptions& o) {
         o.generator.kind = core::GeneratorKind::kBiasedRandom;
       }},
      {"generator.sequence_length",
       [](core::CampaignOptions& o) { o.generator.sequence_length += 1; }},
      {"generator.max_walk_steps",
       [](core::CampaignOptions& o) { o.generator.max_walk_steps += 1; }},
      {"generator.bias_strength",
       [](core::CampaignOptions& o) { o.generator.bias_strength += 1; }},
      {"generator.hybrid_tour_steps",
       [](core::CampaignOptions& o) { o.generator.hybrid_tour_steps += 1; }},
  };
  for (const auto& [name, mutate] : knobs) {
    core::CampaignOptions opt = base;
    mutate(opt);
    const auto keys = pipeline::campaign_store_keys(
        opt, built.circuit, model::Backend::kExplicit, kThreeBugs);
    EXPECT_NE(keys.tour, baseline.tour) << name;
    // Checkpoint and report keys chain off the tour key, so a sequence-
    // shaping change invalidates those artifacts too.
    EXPECT_NE(keys.checkpoint, baseline.checkpoint) << name;
    EXPECT_NE(keys.report, baseline.report) << name;
  }

  // The resolved backend shapes generation as well.
  const auto symbolic = pipeline::campaign_store_keys(
      base, built.circuit, model::Backend::kSymbolic, kThreeBugs);
  EXPECT_NE(symbolic.tour, baseline.tour);

  // The cycle budget shapes verdicts (checkpoint/report) but not the tour.
  core::CampaignOptions cycles = base;
  cycles.max_cycles += 1;
  const auto cycle_keys = pipeline::campaign_store_keys(
      cycles, built.circuit, model::Backend::kExplicit, kThreeBugs);
  EXPECT_EQ(cycle_keys.tour, baseline.tour);
  EXPECT_NE(cycle_keys.checkpoint, baseline.checkpoint);

  // Runtime-only knobs stay out: artifacts are shareable across them.
  core::CampaignOptions runtime_only = base;
  runtime_only.threads = 7;
  runtime_only.max_in_flight_sequences = 3;
  runtime_only.checkpoint_every = 1;
  const auto same = pipeline::campaign_store_keys(
      runtime_only, built.circuit, model::Backend::kExplicit, kThreeBugs);
  EXPECT_EQ(same.tour, baseline.tour);
  EXPECT_EQ(same.checkpoint, baseline.checkpoint);
  EXPECT_EQ(same.report, baseline.report);
}

TEST_F(PipelineStoreTest, WarmTourCacheNeverCrossesGeneratorSpecs) {
  core::CampaignOptions tour_options = tour_campaign_options();
  tour_options.store_dir = dir_.string();
  const auto tour_run = core::run_campaign(tour_options, kThreeBugs);
  ASSERT_TRUE(tour_run.store_stats.has_value());

  // A biased-spec campaign on the same store must regenerate: the tour the
  // default run published is keyed under a different generator spec.
  core::CampaignOptions biased_options = tour_options;
  biased_options.generator = biased_campaign_spec();
  const auto biased_cold = core::run_campaign(biased_options, kThreeBugs);
  ASSERT_TRUE(biased_cold.store_stats.has_value());
  EXPECT_GT(biased_cold.store_stats->misses, 0u)
      << "the biased run reused an artifact keyed for another generator";
  EXPECT_NE(semantic_fingerprint(biased_cold),
            semantic_fingerprint(tour_run));

  // Same spec, same store: now it's a legitimate warm hit.
  const auto biased_warm = core::run_campaign(biased_options, kThreeBugs);
  ASSERT_TRUE(biased_warm.store_stats.has_value());
  EXPECT_GT(biased_warm.store_stats->hits, 0u);
  EXPECT_EQ(biased_warm.store_stats->misses, 0u);
  EXPECT_EQ(semantic_fingerprint(biased_warm),
            semantic_fingerprint(biased_cold));
}

TEST_F(PipelineStoreTest, KilledBiasedCampaignResumesIdenticallyAcrossThreads) {
  core::CampaignOptions base = tour_campaign_options();
  base.generator = biased_campaign_spec();
  base.checkpoint_every = 2;
  const std::string reference =
      semantic_fingerprint(core::run_campaign(base, kThreeBugs));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const auto dir = dir_ / ("t" + std::to_string(threads));

    core::CampaignOptions kopt = base;
    kopt.cancel = core::CancellationToken{};
    kopt.threads = threads;
    kopt.store_dir = dir.string();
    KillAfterRuns killer(kopt.cancel, 3);
    kopt.sink = &killer;
    const auto killed = core::run_campaign(kopt, kThreeBugs);
    EXPECT_TRUE(killed.cancelled()) << "threads=" << threads;
    EXPECT_NE(semantic_fingerprint(killed), reference);

    core::CampaignOptions ropt = base;
    ropt.cancel = core::CancellationToken{};
    ropt.threads = threads;
    ropt.store_dir = dir.string();
    ropt.resume = true;
    const auto resumed = core::run_campaign(ropt, kThreeBugs);
    ASSERT_TRUE(resumed.store_stats.has_value());
    EXPECT_GT(resumed.store_stats->resumed_sequences, 0u)
        << "threads=" << threads;
    EXPECT_EQ(semantic_fingerprint(resumed), reference)
        << "the biased stream must re-pull deterministically across resume, "
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace simcov
