// Tests for homomorphic abstraction: quotient machines, output-error
// uniformity (Requirement 1), variable projection, and ∀k inheritance.
#include "abstraction/abstraction.hpp"

#include <gtest/gtest.h>

#include "distinguish/distinguish.hpp"

namespace simcov::abstraction {
namespace {

using errmodel::ErrorKind;
using errmodel::Mutation;
using fsm::InputId;
using fsm::MealyMachine;
using fsm::StateId;

TEST(StateAbstractionTest, ValidatesSurjectivity) {
  EXPECT_THROW(StateAbstraction({0, 0, 0}, 2), std::invalid_argument);
  EXPECT_THROW(StateAbstraction({0, 5}, 2), std::invalid_argument);
  EXPECT_NO_THROW(StateAbstraction({0, 1, 0}, 2));
}

TEST(StateAbstractionTest, PreimagesAreInverse) {
  const StateAbstraction abs({0, 1, 0, 1}, 2);
  EXPECT_EQ(abs.apply(2), 0u);
  const auto pre0 = abs.preimage(0);
  EXPECT_EQ(std::vector<StateId>(pre0.begin(), pre0.end()),
            (std::vector<StateId>{0, 2}));
  EXPECT_EQ(abs.num_concrete(), 4u);
  EXPECT_EQ(abs.num_abstract(), 2u);
}

TEST(StateAbstractionTest, IdentityMapsEachToItself) {
  const auto id = StateAbstraction::identity(3);
  for (StateId s = 0; s < 3; ++s) {
    EXPECT_EQ(id.apply(s), s);
    EXPECT_EQ(id.preimage(s).size(), 1u);
  }
}

TEST(Quotient, TransitionsAreImagesOfConcreteOnes) {
  // 4-state machine; merge {0,2} and {1,3}.
  MealyMachine m(4, 1);
  m.set_transition(0, 0, 1, 10);
  m.set_transition(1, 0, 2, 11);
  m.set_transition(2, 0, 3, 10);
  m.set_transition(3, 0, 0, 11);
  const StateAbstraction abs({0, 1, 0, 1}, 2);
  const auto q = quotient_machine(m, abs);
  EXPECT_EQ(q.num_states(), 2u);
  // Both concrete transitions from {0,2} go to abstract 1 with output 10:
  // the quotient is deterministic here.
  ASSERT_EQ(q.transitions(0, 0).size(), 1u);
  EXPECT_EQ(q.transitions(0, 0)[0].next, 1u);
  EXPECT_EQ(q.transitions(0, 0)[0].output, 10u);
  EXPECT_TRUE(q.is_deterministic());
  EXPECT_EQ(q.initial_state(), abs.apply(m.initial_state()));
}

TEST(Quotient, MergingBehaviourallyDifferentStatesGivesNondeterminism) {
  MealyMachine m(3, 1);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 2, 1);
  m.set_transition(2, 0, 0, 2);  // outputs differ per state
  const StateAbstraction abs({0, 0, 1}, 2);  // merge 0 and 1
  const auto q = quotient_machine(m, abs);
  EXPECT_FALSE(q.is_deterministic());
  EXPECT_TRUE(q.has_output_nondeterminism());
}

TEST(Quotient, DomainMismatchThrows) {
  MealyMachine m(3, 1);
  const StateAbstraction abs({0, 1}, 2);
  EXPECT_THROW((void)quotient_machine(m, abs), std::invalid_argument);
  EXPECT_THROW((void)analyze_abstraction(m, abs), std::invalid_argument);
}

TEST(Analyze, ReportsOutputNondeterminismPairs) {
  MealyMachine m(3, 2);
  // States 0,1 merged; they differ in output on input 0 but agree on 1.
  m.set_transition(0, 0, 2, 0);
  m.set_transition(1, 0, 2, 1);
  m.set_transition(0, 1, 2, 7);
  m.set_transition(1, 1, 2, 7);
  m.set_transition(2, 0, 0, 9);
  m.set_transition(2, 1, 1, 9);
  const StateAbstraction abs({0, 0, 1}, 2);
  const auto report = analyze_abstraction(m, abs);
  EXPECT_FALSE(report.output_deterministic);
  ASSERT_EQ(report.nondet_output_pairs.size(), 1u);
  EXPECT_EQ(report.nondet_output_pairs[0], (fsm::TransitionRef{0, 0}));
}

TEST(Analyze, RestrictedToReachablePart) {
  MealyMachine m(4, 1);
  m.set_transition(0, 0, 0, 5);
  // Unreachable pair that would conflict if counted:
  m.set_transition(1, 0, 0, 6);
  m.set_transition(2, 0, 0, 7);
  m.set_transition(3, 0, 3, 7);
  const StateAbstraction abs({0, 0, 0, 1}, 2);  // merge 0,1,2
  const auto report = analyze_abstraction(m, abs);
  // Only state 0 is reachable, so no observable nondeterminism.
  EXPECT_TRUE(report.output_deterministic);
  EXPECT_TRUE(report.deterministic);
}

// ---------------------------------------------------------------------------
// Requirement 1: uniformity of output errors through abstraction.
// This reconstructs the paper's interlock example in miniature: when the
// distinguishing state bit is abstracted away, the error is visible only
// from some merged states -> non-uniform.
// ---------------------------------------------------------------------------

TEST(Uniformity, SingleStatePreimageIsUniform) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 0, 1);
  const Mutation mut{ErrorKind::kOutput, {0, 0}, 0, 9};
  const auto id = StateAbstraction::identity(2);
  EXPECT_EQ(classify_output_error(m, mut, id, 0), OutputErrorClass::kUniform);
}

TEST(Uniformity, MergedPreimageMakesErrorNonUniform) {
  // Concrete states 0 and 2 merge; the error lives only on (0, input 0).
  MealyMachine m(3, 1);
  m.set_transition(0, 0, 1, 4);
  m.set_transition(1, 0, 2, 5);
  m.set_transition(2, 0, 0, 4);  // same output as (0,0): clean twin
  const Mutation mut{ErrorKind::kOutput, {0, 0}, 0, 9};
  const StateAbstraction abs({0, 1, 0}, 2);
  EXPECT_EQ(classify_output_error(m, mut, abs, 0),
            OutputErrorClass::kNonUniform);
  // Keeping the distinguishing state separate restores uniformity.
  const auto id = StateAbstraction::identity(3);
  EXPECT_EQ(classify_output_error(m, mut, id, 0), OutputErrorClass::kUniform);
}

TEST(Uniformity, UnreachableTwinDoesNotCount) {
  MealyMachine m(3, 1);
  m.set_transition(0, 0, 0, 4);
  m.set_transition(1, 0, 1, 4);  // unreachable twin of 0
  m.set_transition(2, 0, 2, 0);
  const Mutation mut{ErrorKind::kOutput, {0, 0}, 0, 9};
  const StateAbstraction abs({0, 0, 1}, 2);
  EXPECT_EQ(classify_output_error(m, mut, abs, 0), OutputErrorClass::kUniform);
}

TEST(Uniformity, TransferMutationRejected) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 0, 1);
  const Mutation mut{ErrorKind::kTransfer, {0, 0}, 0, 0};
  EXPECT_THROW((void)classify_output_error(m, mut,
                                           StateAbstraction::identity(2), 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Variable projection
// ---------------------------------------------------------------------------

TEST(VariableProjection, ProjectsBits) {
  const std::vector<unsigned> kept{0, 2};
  const auto abs = variable_projection(3, kept);
  EXPECT_EQ(abs.num_concrete(), 8u);
  EXPECT_EQ(abs.num_abstract(), 4u);
  // state 0b110 keeps bits {0,2} -> (bit0=0, bit2=1) -> 0b10.
  EXPECT_EQ(abs.apply(0b110), 0b10u);
  EXPECT_EQ(abs.apply(0b011), 0b01u);
  // Preimage of each abstract state has 2^(3-2) elements.
  for (StateId a = 0; a < 4; ++a) EXPECT_EQ(abs.preimage(a).size(), 2u);
}

TEST(VariableProjection, KeepAllIsIdentityUpToBitOrder) {
  const std::vector<unsigned> kept{0, 1};
  const auto abs = variable_projection(2, kept);
  for (StateId s = 0; s < 4; ++s) EXPECT_EQ(abs.apply(s), s);
}

TEST(VariableProjection, Validation) {
  const std::vector<unsigned> bad{5};
  EXPECT_THROW((void)variable_projection(3, bad), std::invalid_argument);
  const std::vector<unsigned> ok{0};
  EXPECT_THROW((void)variable_projection(40, ok), std::invalid_argument);
}

TEST(Compose, LaddersCompose) {
  // 3 bits -> keep {0,1} -> keep {1} (of the 2 remaining).
  const std::vector<unsigned> step1{0, 1};
  const std::vector<unsigned> step2{1};
  const auto a1 = variable_projection(3, step1);
  const auto a2 = variable_projection(2, step2);
  const auto ladder = compose(a1, a2);
  EXPECT_EQ(ladder.num_concrete(), 8u);
  EXPECT_EQ(ladder.num_abstract(), 2u);
  // Final bit is original bit 1.
  EXPECT_EQ(ladder.apply(0b010), 1u);
  EXPECT_EQ(ladder.apply(0b101), 0u);
}

TEST(Compose, MismatchThrows) {
  const auto a = StateAbstraction::identity(4);
  const auto b = StateAbstraction::identity(3);
  EXPECT_THROW((void)compose(a, b), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Section 6.2: ∀k-distinguishability is inherited by abstraction.
// If the quotient is deterministic and all distinct concrete states are
// ∀k-distinguishable, then distinct abstract states are too. Verified
// empirically on random machines with exact (bisimulation-respecting)
// abstractions.
// ---------------------------------------------------------------------------

class InheritanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(InheritanceProperty, ForallKSurvivesExactAbstraction) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  // Build a concrete machine as two copies of a base machine: state s and
  // s + n behave identically -> merging copies is an exact abstraction.
  const MealyMachine base = fsm::random_connected_machine(5, 2, 5, seed);
  const StateId n = base.num_states();
  MealyMachine doubled(2 * n, base.num_inputs());
  for (StateId s = 0; s < n; ++s) {
    for (InputId i = 0; i < base.num_inputs(); ++i) {
      const auto t = base.transition(s, i).value();
      // Copy A feeds into copy B and vice versa, keeping both reachable.
      doubled.set_transition(s, i, t.next + n, t.output);
      doubled.set_transition(s + n, i, t.next, t.output);
    }
  }
  std::vector<StateId> map(2 * n);
  for (StateId s = 0; s < 2 * n; ++s) map[s] = s % n;
  const StateAbstraction abs(std::move(map), n);
  const auto q = quotient_machine(doubled, abs).to_deterministic();
  ASSERT_TRUE(q.has_value());
  for (unsigned k = 1; k <= 3; ++k) {
    for (StateId a = 0; a < n; ++a) {
      for (StateId b = a + 1; b < n; ++b) {
        // If every concrete preimage pair is ∀k-distinguishable, the
        // abstract pair must be as well (Section 6.2).
        bool all_concrete = true;
        for (StateId ca : abs.preimage(a)) {
          for (StateId cb : abs.preimage(b)) {
            all_concrete = all_concrete &&
                           distinguish::forall_k_distinguishable(doubled, ca,
                                                                 cb, k);
          }
        }
        if (all_concrete) {
          EXPECT_TRUE(distinguish::forall_k_distinguishable(*q, a, b, k))
              << "pair (" << a << "," << b << ") at k=" << k;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InheritanceProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace simcov::abstraction
