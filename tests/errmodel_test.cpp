// Tests for the paper's error model (Definitions 1-4): mutation application,
// enumeration, excitation/exposure, and masking analysis.
#include "errmodel/errmodel.hpp"

#include <gtest/gtest.h>

#include <random>

#include "tour/tour.hpp"

namespace simcov::errmodel {
namespace {

using fsm::InputId;
using fsm::MealyMachine;
using fsm::StateId;

MealyMachine ring_machine() {
  MealyMachine m(3, 2);
  for (StateId s = 0; s < 3; ++s) {
    m.set_transition(s, 0, (s + 1) % 3, s);
    m.set_transition(s, 1, s, 10 + s);
  }
  return m;
}

TEST(Mutation, OutputMutationChangesOnlyOutput) {
  const MealyMachine m = ring_machine();
  const Mutation mut{ErrorKind::kOutput, {1, 0}, 0, 42};
  const MealyMachine mutant = apply_mutation(m, mut);
  EXPECT_EQ(mutant.transition(1, 0)->output, 42u);
  EXPECT_EQ(mutant.transition(1, 0)->next, m.transition(1, 0)->next);
  // All other transitions intact.
  EXPECT_EQ(mutant.transition(0, 0), m.transition(0, 0));
  EXPECT_EQ(mutant.transition(1, 1), m.transition(1, 1));
}

TEST(Mutation, TransferMutationChangesOnlyNextState) {
  const MealyMachine m = ring_machine();
  const Mutation mut{ErrorKind::kTransfer, {1, 0}, 0, 0};
  const MealyMachine mutant = apply_mutation(m, mut);
  EXPECT_EQ(mutant.transition(1, 0)->next, 0u);
  EXPECT_EQ(mutant.transition(1, 0)->output, m.transition(1, 0)->output);
}

TEST(Mutation, VacuousMutationThrows) {
  const MealyMachine m = ring_machine();
  const Mutation same_output{ErrorKind::kOutput, {1, 0},
                             0, m.transition(1, 0)->output};
  EXPECT_THROW((void)apply_mutation(m, same_output), std::invalid_argument);
  const Mutation same_next{ErrorKind::kTransfer, {1, 0},
                           m.transition(1, 0)->next, 0};
  EXPECT_THROW((void)apply_mutation(m, same_next), std::invalid_argument);
}

TEST(Mutation, UndefinedTransitionThrows) {
  MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 0);
  const Mutation mut{ErrorKind::kOutput, {0, 1}, 0, 5};
  EXPECT_THROW((void)apply_mutation(m, mut), std::invalid_argument);
}

TEST(Enumeration, OutputErrorCounts) {
  const MealyMachine m = ring_machine();
  // 6 reachable transitions x (alphabet 13 - 1 correct) output variants.
  const auto muts = enumerate_output_errors(m, 0, 13);
  EXPECT_EQ(muts.size(), 6u * 12u);
}

TEST(Enumeration, TransferErrorCounts) {
  const MealyMachine m = ring_machine();
  // 6 transitions x 2 wrong-but-reachable destinations.
  const auto muts = enumerate_transfer_errors(m, 0);
  EXPECT_EQ(muts.size(), 12u);
}

TEST(Enumeration, SkipsUnreachableTransitionsAndTargets) {
  MealyMachine m(3, 1);
  m.set_transition(0, 0, 0, 0);  // only state 0 reachable
  m.set_transition(1, 0, 2, 0);
  const auto transfers = enumerate_transfer_errors(m, 0);
  EXPECT_TRUE(transfers.empty());  // no wrong reachable destination exists
  const auto outputs = enumerate_output_errors(m, 0, 2);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].at, (fsm::TransitionRef{0, 0}));
}

TEST(Sampling, SampleIsBoundedAndReproducible) {
  const MealyMachine m = ring_machine();
  const auto a = sample_mutations(m, 0, 13, 10, 3);
  const auto b = sample_mutations(m, 0, 13, 10, 3);
  EXPECT_EQ(a.size(), 10u);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].at, b[k].at);
    EXPECT_EQ(static_cast<int>(a[k].kind), static_cast<int>(b[k].kind));
  }
  // Requesting more than the pool returns the whole pool.
  const auto all = sample_mutations(m, 0, 13, 1000000, 3);
  EXPECT_EQ(all.size(), 6u * 12u + 12u);
}

TEST(Exposure, OutputErrorExposedExactlyWhenExcited) {
  const MealyMachine m = ring_machine();
  const Mutation mut{ErrorKind::kOutput, {1, 1}, 0, 42};
  const MealyMachine mutant = apply_mutation(m, mut);
  // Sequence avoiding (1,1): not exposed.
  const std::vector<InputId> avoid{0, 0, 0};
  EXPECT_FALSE(excites(mutant, mut, 0, avoid));
  EXPECT_FALSE(exposes(m, mutant, 0, avoid));
  // Sequence through (1,1): exposed immediately (deterministic machine =>
  // output errors are uniform, Def. 2 holds trivially at concrete level).
  const std::vector<InputId> hit{0, 1};
  EXPECT_TRUE(excites(mutant, mut, 0, hit));
  EXPECT_TRUE(exposes(m, mutant, 0, hit));
}

TEST(Exposure, TransferErrorNeedsFollowUpToExpose) {
  const MealyMachine m = ring_machine();
  // Redirect (0,0) from state 1 to state 0; output unchanged.
  const Mutation mut{ErrorKind::kTransfer, {0, 0}, 0, 0};
  const MealyMachine mutant = apply_mutation(m, mut);
  // Excited but not exposed by the single step.
  const std::vector<InputId> one{0};
  EXPECT_TRUE(excites(mutant, mut, 0, one));
  EXPECT_FALSE(exposes(m, mutant, 0, one));
  // The self-loop output (10+state) differs between states: one more step
  // on input 1 exposes.
  const std::vector<InputId> two{0, 1};
  EXPECT_TRUE(exposes(m, mutant, 0, two));
}

TEST(Exposure, DefinednessMismatchCountsAsExposure) {
  MealyMachine spec(2, 1);
  spec.set_transition(0, 0, 1, 0);
  spec.set_transition(1, 0, 0, 0);
  // Mutant redirects (0,0) to state 0... then (0,0) defined. Build a spec
  // with a partial state instead.
  MealyMachine partial = spec;
  partial.clear_transition(1, 0);
  const std::vector<InputId> seq{0, 0};
  EXPECT_TRUE(exposes(spec, partial, 0, seq));
}

TEST(TestSet, TransitionTourExposesAllOutputErrors) {
  const MealyMachine m = ring_machine();
  const auto t = tour::minimum_transition_tour(m, 0);
  ASSERT_TRUE(t.has_value());
  const auto muts = enumerate_output_errors(m, 0, 13);
  const auto report = evaluate_test_set(m, muts, 0, t->inputs);
  EXPECT_EQ(report.total_mutants, muts.size());
  EXPECT_EQ(report.exposed, muts.size());
  EXPECT_EQ(report.excited, muts.size());
  EXPECT_DOUBLE_EQ(report.exposure_rate(), 1.0);
}

TEST(TestSet, EmptySequenceExposesNothing) {
  const MealyMachine m = ring_machine();
  const auto muts = enumerate_transfer_errors(m, 0);
  const std::vector<InputId> empty;
  const auto report = evaluate_test_set(m, muts, 0, empty);
  EXPECT_EQ(report.exposed, 0u);
  EXPECT_EQ(report.excited, 0u);
  EXPECT_EQ(report.exposed_flags.size(), muts.size());
}

TEST(Masking, ReconvergenceWithoutOutputDifferenceIsMasked) {
  // Machine where a transfer error diverges and a structural symmetry brings
  // it back: states 1 and 2 behave identically on input 0 (both -> 0, same
  // output), so redirecting 0->1 to 0->2 reconverges after one step.
  MealyMachine m(3, 1);
  m.set_transition(0, 0, 1, 7);
  m.set_transition(1, 0, 0, 8);
  m.set_transition(2, 0, 0, 8);  // same output as from state 1
  const Mutation mut{ErrorKind::kTransfer, {0, 0}, 2, 0};
  const MealyMachine mutant = apply_mutation(m, mut);
  const std::vector<InputId> seq{0, 0, 0};
  const auto analysis = analyze_masking(m, mutant, 0, seq);
  EXPECT_TRUE(analysis.diverged);
  EXPECT_TRUE(analysis.reconverged);
  EXPECT_FALSE(analysis.output_differed);
  EXPECT_TRUE(analysis.masked());
  EXPECT_EQ(analysis.diverge_step, 1u);
  EXPECT_EQ(analysis.reconverge_step, 2u);
  // Masked means no test sequence through this path exposes it: indeed the
  // machines are output-equivalent here.
  EXPECT_FALSE(exposes(m, mutant, 0, seq));
}

TEST(Masking, ExposedDivergenceIsNotMasked) {
  const MealyMachine m = ring_machine();
  const Mutation mut{ErrorKind::kTransfer, {0, 0}, 0, 0};
  const MealyMachine mutant = apply_mutation(m, mut);
  const std::vector<InputId> seq{0, 1, 0, 1};
  const auto analysis = analyze_masking(m, mutant, 0, seq);
  EXPECT_TRUE(analysis.diverged);
  EXPECT_TRUE(analysis.output_differed);
  EXPECT_FALSE(analysis.masked());
}

TEST(Masking, NoDivergenceForOutputError) {
  const MealyMachine m = ring_machine();
  const Mutation mut{ErrorKind::kOutput, {0, 0}, 0, 42};
  const MealyMachine mutant = apply_mutation(m, mut);
  const std::vector<InputId> seq{0, 0, 0};
  const auto analysis = analyze_masking(m, mutant, 0, seq);
  EXPECT_FALSE(analysis.diverged);
  EXPECT_TRUE(analysis.output_differed);
  EXPECT_FALSE(analysis.masked());
}

// Property: the allocation-free exposes(spec, Mutation, ...) overload agrees
// with the materialized-mutant version on random machines and sequences.
class ExposesOverloadProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExposesOverloadProperty, OverloadsAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const fsm::MealyMachine m = fsm::random_connected_machine(7, 3, 3, seed);
  const auto mutants =
      sample_mutations(m, 0, m.output_alphabet_size(), 40, seed ^ 7);
  std::mt19937_64 rng(seed * 3 + 1);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<fsm::InputId> seq(20);
    for (auto& i : seq) i = static_cast<fsm::InputId>(rng() % 3);
    for (const auto& mut : mutants) {
      const auto mutant = apply_mutation(m, mut);
      EXPECT_EQ(exposes(m, mutant, 0, seq), exposes(m, mut, 0, seq));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExposesOverloadProperty,
                         ::testing::Range(0, 8));

TEST(ExposesOverload, UndefinedTransitionThrows) {
  fsm::MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 0);
  const Mutation mut{ErrorKind::kOutput, {0, 1}, 0, 5};
  const std::vector<fsm::InputId> seq{0};
  EXPECT_THROW((void)exposes(m, mut, 0, seq), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property: the headline theorem on a favourable class of machines.
//
// If outputs are unique per (state, input), every pair of distinct states is
// ∀1-distinguishable (ANY single input separates them), the strongest form
// of the paper's Definition 5. Theorem 1 then promises that a transition
// tour (plus one trailing step so the final transition also has a follow-up)
// exposes ALL output and transfer errors. This is Theorem 3's mechanism in
// miniature on random machines.
// ---------------------------------------------------------------------------

class TourCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(TourCompleteness, TourExposesAllErrorsOnForallDistinguishableMachines) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  fsm::MealyMachine m = fsm::random_connected_machine(8, 3, 3, seed);
  // Input 2 becomes a reset so the machine is strongly connected; then make
  // every output unique per (state, input): out(s, i) = s * 3 + i.
  for (StateId s = 0; s < m.num_states(); ++s) {
    m.set_transition(s, 2, 0, 0);
    for (InputId i = 0; i < m.num_inputs(); ++i) {
      const auto t = m.transition(s, i).value();
      m.set_transition(s, i, t.next, s * m.num_inputs() + i);
    }
  }
  auto t = tour::minimum_transition_tour(m, 0);
  ASSERT_TRUE(t.has_value());
  // Close the tour with one status read so the final transition's transfer
  // errors are also followed by a distinguishing step.
  t->inputs.push_back(2);
  const auto outputs = enumerate_output_errors(m, 0, m.output_alphabet_size());
  const auto transfers = enumerate_transfer_errors(m, 0);
  const auto rep_o = evaluate_test_set(m, outputs, 0, t->inputs);
  EXPECT_EQ(rep_o.exposed, rep_o.total_mutants);
  const auto rep_t = evaluate_test_set(m, transfers, 0, t->inputs);
  EXPECT_EQ(rep_t.exposed, rep_t.total_mutants)
      << "a transfer error escaped the tour";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TourCompleteness, ::testing::Range(0, 15));

}  // namespace
}  // namespace simcov::errmodel
