// Tests for the DLX ISA: encode/decode round-trips, field semantics, and the
// architectural (golden) simulator.
#include "dlx/isa.hpp"
#include "dlx/isa_model.hpp"

#include <gtest/gtest.h>

namespace simcov::dlx {
namespace {

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

TEST(Encoding, RoundTripAllOpcodes) {
  const std::vector<Instruction> samples{
      make_nop(),
      make_halt(),
      make_rtype(Opcode::kAdd, 3, 1, 2),
      make_rtype(Opcode::kSub, 31, 30, 29),
      make_rtype(Opcode::kAnd, 1, 2, 3),
      make_rtype(Opcode::kOr, 4, 5, 6),
      make_rtype(Opcode::kXor, 7, 8, 9),
      make_rtype(Opcode::kSll, 10, 11, 12),
      make_rtype(Opcode::kSrl, 13, 14, 15),
      make_rtype(Opcode::kSra, 16, 17, 18),
      make_rtype(Opcode::kSlt, 19, 20, 21),
      make_rtype(Opcode::kSltu, 22, 23, 24),
      make_rtype(Opcode::kSeq, 25, 26, 27),
      make_rtype(Opcode::kSne, 28, 0, 1),
      make_itype(Opcode::kAddi, 1, 2, -5),
      make_itype(Opcode::kAndi, 3, 4, 0x7fff),
      make_itype(Opcode::kOri, 5, 6, 1),
      make_itype(Opcode::kXori, 7, 8, -32768),
      make_itype(Opcode::kSlli, 9, 10, 7),
      make_itype(Opcode::kSrli, 11, 12, 31),
      make_itype(Opcode::kSrai, 13, 14, 1),
      make_itype(Opcode::kSlti, 15, 16, -1),
      make_lhi(17, 0xbeef),
      make_load(Opcode::kLw, 1, 2, 64),
      make_load(Opcode::kLh, 3, 4, -2),
      make_load(Opcode::kLhu, 5, 6, 2),
      make_load(Opcode::kLb, 7, 8, -1),
      make_load(Opcode::kLbu, 9, 10, 3),
      make_store(Opcode::kSw, 2, 1, 8),
      make_store(Opcode::kSh, 4, 3, -4),
      make_store(Opcode::kSb, 6, 5, 1),
      make_branch(Opcode::kBeqz, 1, -8),
      make_branch(Opcode::kBnez, 2, 16),
      make_jump(Opcode::kJ, 1024),
      make_jump(Opcode::kJal, -1024),
      make_jump_reg(Opcode::kJr, 9),
      make_jump_reg(Opcode::kJalr, 10),
  };
  for (const auto& ins : samples) {
    const auto back = decode(encode(ins));
    ASSERT_TRUE(back.has_value()) << disassemble(ins);
    EXPECT_EQ(*back, ins) << disassemble(ins);
  }
}

TEST(Encoding, InvalidWordsRejected) {
  // Unused primary opcode.
  EXPECT_FALSE(decode(63u << 26).has_value());
  // R-type with invalid function field.
  EXPECT_FALSE(decode(0x000007ffu).has_value());
}

TEST(Encoding, JumpOffsetsSignExtend26Bits) {
  const auto ins = make_jump(Opcode::kJ, -4);
  const auto back = decode(encode(ins));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->imm, -4);
}

TEST(Encoding, BuilderValidation) {
  EXPECT_THROW((void)make_rtype(Opcode::kAddi, 1, 2, 3), std::invalid_argument);
  EXPECT_THROW((void)make_rtype(Opcode::kAdd, 32, 0, 0), std::out_of_range);
  EXPECT_THROW((void)make_itype(Opcode::kLhi, 1, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)make_load(Opcode::kSw, 1, 2, 0), std::invalid_argument);
  EXPECT_THROW((void)make_branch(Opcode::kJ, 1, 0), std::invalid_argument);
}

TEST(Encoding, Disassembly) {
  EXPECT_EQ(disassemble(make_rtype(Opcode::kAdd, 3, 1, 2)), "add r3, r1, r2");
  EXPECT_EQ(disassemble(make_load(Opcode::kLw, 1, 2, 8)), "lw r1, 8(r2)");
  EXPECT_EQ(disassemble(make_store(Opcode::kSw, 2, 1, 8)), "sw 8(r2), r1");
  EXPECT_EQ(disassemble(make_branch(Opcode::kBeqz, 4, -8)), "beqz r4, -8");
  EXPECT_EQ(disassemble(make_nop()), "nop");
}

TEST(Classification, ReadWriteSets) {
  EXPECT_TRUE(writes_register(Opcode::kAdd));
  EXPECT_TRUE(writes_register(Opcode::kLw));
  EXPECT_TRUE(writes_register(Opcode::kJal));
  EXPECT_FALSE(writes_register(Opcode::kSw));
  EXPECT_FALSE(writes_register(Opcode::kBeqz));
  EXPECT_TRUE(reads_rs1(Opcode::kSw));
  EXPECT_TRUE(reads_rs2(Opcode::kSw));
  EXPECT_TRUE(reads_rs1(Opcode::kBeqz));
  EXPECT_FALSE(reads_rs2(Opcode::kBeqz));
  EXPECT_FALSE(reads_rs1(Opcode::kLhi));
  EXPECT_FALSE(reads_rs1(Opcode::kJ));
}

// ---------------------------------------------------------------------------
// ISA model semantics
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> assemble(const std::vector<Instruction>& prog) {
  std::vector<std::uint32_t> words;
  words.reserve(prog.size());
  for (const auto& ins : prog) words.push_back(encode(ins));
  return words;
}

TEST(IsaModelTest, AluArithmetic) {
  IsaModel m(assemble({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_itype(Opcode::kAddi, 2, 0, 7),
      make_rtype(Opcode::kAdd, 3, 1, 2),
      make_rtype(Opcode::kSub, 4, 1, 2),
      make_halt(),
  }));
  m.run();
  EXPECT_EQ(m.reg(3), 12u);
  EXPECT_EQ(m.reg(4), static_cast<std::uint32_t>(-2));
  EXPECT_TRUE(m.halted());
}

TEST(IsaModelTest, R0IsHardwiredZero) {
  IsaModel m(assemble({
      make_itype(Opcode::kAddi, 0, 0, 99),
      make_rtype(Opcode::kAdd, 1, 0, 0),
      make_halt(),
  }));
  m.run();
  EXPECT_EQ(m.reg(0), 0u);
  EXPECT_EQ(m.reg(1), 0u);
}

TEST(IsaModelTest, SignedVsUnsignedCompare) {
  IsaModel m(assemble({
      make_itype(Opcode::kAddi, 1, 0, -1),  // 0xffffffff
      make_itype(Opcode::kAddi, 2, 0, 1),
      make_rtype(Opcode::kSlt, 3, 1, 2),    // -1 < 1 signed -> 1
      make_rtype(Opcode::kSltu, 4, 1, 2),   // max > 1 unsigned -> 0
      make_halt(),
  }));
  m.run();
  EXPECT_EQ(m.reg(3), 1u);
  EXPECT_EQ(m.reg(4), 0u);
}

TEST(IsaModelTest, ShiftsAndLhi) {
  IsaModel m(assemble({
      make_itype(Opcode::kAddi, 1, 0, -8),
      make_itype(Opcode::kSrai, 2, 1, 1),  // arithmetic: -4
      make_itype(Opcode::kSrli, 3, 1, 1),  // logical: big positive
      make_lhi(4, 0x1234),
      make_halt(),
  }));
  m.run();
  EXPECT_EQ(m.reg(2), static_cast<std::uint32_t>(-4));
  EXPECT_EQ(m.reg(3), 0x7ffffffcu);
  EXPECT_EQ(m.reg(4), 0x12340000u);
}

TEST(IsaModelTest, LoadsAndStoresAllWidths) {
  IsaModel m(assemble({
      make_lhi(1, 0xdead),
      make_itype(Opcode::kOri, 1, 1, 0x7eef),
      make_store(Opcode::kSw, 0, 1, 0x100),
      make_load(Opcode::kLw, 2, 0, 0x100),
      make_load(Opcode::kLh, 3, 0, 0x100),   // 0x7eef sign-extended (+)
      make_load(Opcode::kLb, 4, 0, 0x101),   // 0x7e
      make_load(Opcode::kLbu, 5, 0, 0x103),  // 0xde
      make_load(Opcode::kLhu, 6, 0, 0x102),  // 0xdead
      make_halt(),
  }));
  m.run();
  EXPECT_EQ(m.reg(2), 0xdead7eefu);
  EXPECT_EQ(m.reg(3), 0x00007eefu);
  EXPECT_EQ(m.reg(4), 0x0000007eu);
  EXPECT_EQ(m.reg(5), 0x000000deu);
  EXPECT_EQ(m.reg(6), 0x0000deadu);
}

TEST(IsaModelTest, ByteStoreLeavesNeighboursIntact) {
  IsaModel m(assemble({
      make_itype(Opcode::kAddi, 1, 0, 0x41),
      make_store(Opcode::kSb, 0, 1, 0x201),
      make_halt(),
  }));
  m.poke_word(0x200, 0xffffffffu);
  m.run();
  EXPECT_EQ(m.peek_word(0x200), 0xffff41ffu);
}

TEST(IsaModelTest, MisalignedAccessThrows) {
  IsaModel m(assemble({
      make_load(Opcode::kLw, 1, 0, 2),
      make_halt(),
  }));
  EXPECT_THROW((void)m.run(), std::domain_error);
}

TEST(IsaModelTest, BranchesAndPsw) {
  // r1 = 0 -> beqz taken, skipping the poison instruction.
  IsaModel m(assemble({
      make_branch(Opcode::kBeqz, 1, 4),      // +4: skip one instruction
      make_itype(Opcode::kAddi, 2, 0, 99),   // skipped
      make_itype(Opcode::kAddi, 3, 0, 1),
      make_halt(),
  }));
  const auto trace = m.run();
  EXPECT_EQ(m.reg(2), 0u);
  EXPECT_EQ(m.reg(3), 1u);
  ASSERT_GE(trace.size(), 1u);
  EXPECT_EQ(trace[0].next_pc, 8u);
  // PSW reflects the last ALU result (1): not zero, not negative.
  EXPECT_FALSE(m.psw().zero);
  EXPECT_FALSE(m.psw().negative);
}

TEST(IsaModelTest, PswZeroAndNegativeFlags) {
  IsaModel m(assemble({
      make_itype(Opcode::kAddi, 1, 0, 5),
      make_rtype(Opcode::kSub, 2, 1, 1),  // 0 -> Z
      make_halt(),
  }));
  m.run();
  EXPECT_TRUE(m.psw().zero);
  EXPECT_FALSE(m.psw().negative);
  IsaModel n(assemble({
      make_itype(Opcode::kAddi, 1, 0, -5),
      make_halt(),
  }));
  n.run();
  EXPECT_FALSE(n.psw().zero);
  EXPECT_TRUE(n.psw().negative);
}

TEST(IsaModelTest, JumpAndLink) {
  IsaModel m(assemble({
      make_jump(Opcode::kJal, 4),           // to pc 8, r31 = 4
      make_halt(),                          // at 4: return point
      make_itype(Opcode::kAddi, 1, 0, 7),   // at 8
      make_jump_reg(Opcode::kJr, 31),       // back to 4
  }));
  m.run();
  EXPECT_EQ(m.reg(31), 4u);
  EXPECT_EQ(m.reg(1), 7u);
  EXPECT_TRUE(m.halted());
}

TEST(IsaModelTest, JalrReadsTargetBeforeLinking) {
  IsaModel m(assemble({
      make_itype(Opcode::kAddi, 31, 0, 12),  // target in r31 itself
      make_jump_reg(Opcode::kJalr, 31),      // jump to 12, link r31 = 8
      make_halt(),                           // at 8 (skipped)
      make_halt(),                           // at 12
  }));
  const auto trace = m.run();
  EXPECT_EQ(m.reg(31), 8u);
  EXPECT_EQ(trace.back().pc, 12u);
}

TEST(IsaModelTest, RetireRecordsCarryWrites) {
  IsaModel m(assemble({
      make_itype(Opcode::kAddi, 1, 0, 3),
      make_store(Opcode::kSw, 0, 1, 8),
      make_halt(),
  }));
  const auto trace = m.run();
  ASSERT_EQ(trace.size(), 3u);
  ASSERT_TRUE(trace[0].reg_write.has_value());
  EXPECT_EQ(trace[0].reg_write->first, 1);
  EXPECT_EQ(trace[0].reg_write->second, 3u);
  ASSERT_TRUE(trace[1].mem_write.has_value());
  EXPECT_EQ(trace[1].mem_write->addr, 8u);
  EXPECT_EQ(trace[1].mem_write->value, 3u);
  EXPECT_TRUE(trace[2].halted);
}

TEST(IsaModelTest, RunStopsAtProgramEnd) {
  IsaModel m(assemble({make_nop()}));
  const auto trace = m.run();
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_FALSE(m.halted());
  EXPECT_FALSE(m.step().has_value());
}

}  // namespace
}  // namespace simcov::dlx
