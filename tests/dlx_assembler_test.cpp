// Tests for the DLX text assembler: syntax, labels, directives, error
// reporting, round-trips with the disassembler, and execution of assembled
// programs on both models.
#include "dlx/assembler.hpp"

#include <gtest/gtest.h>

#include "dlx/isa_model.hpp"
#include "dlx/pipeline.hpp"

namespace simcov::dlx {
namespace {

TEST(Assembler, BasicInstructions) {
  const auto prog = assemble(
      "addi r1, r0, 5\n"
      "add r3, r1, r2\n"
      "nop\n"
      "halt\n");
  ASSERT_EQ(prog.words.size(), 4u);
  const auto ins = prog.instructions();
  EXPECT_EQ(ins[0], make_itype(Opcode::kAddi, 1, 0, 5));
  EXPECT_EQ(ins[1], make_rtype(Opcode::kAdd, 3, 1, 2));
  EXPECT_EQ(ins[2], make_nop());
  EXPECT_EQ(ins[3], make_halt());
}

TEST(Assembler, MemoryOperands) {
  const auto prog = assemble(
      "lw r1, 16(r2)\n"
      "lb r3, -1(r4)\n"
      "sw 8(r5), r6\n"
      "sh (r7), r8\n");  // empty offset = 0
  const auto ins = prog.instructions();
  EXPECT_EQ(ins[0], make_load(Opcode::kLw, 1, 2, 16));
  EXPECT_EQ(ins[1], make_load(Opcode::kLb, 3, 4, -1));
  EXPECT_EQ(ins[2], make_store(Opcode::kSw, 5, 6, 8));
  EXPECT_EQ(ins[3], make_store(Opcode::kSh, 7, 8, 0));
}

TEST(Assembler, CommentsAndWhitespace) {
  const auto prog = assemble(
      "  ; full-line comment\n"
      "\taddi r1, r0, 1   # trailing comment\n"
      "\n"
      "   halt\n");
  EXPECT_EQ(prog.words.size(), 2u);
}

TEST(Assembler, LabelsResolveToRelativeOffsets) {
  const auto prog = assemble(
      "start: addi r1, r0, 1\n"
      "       beqz r0, end\n"
      "       addi r2, r0, 2\n"
      "end:   halt\n");
  const auto ins = prog.instructions();
  // beqz at pc=4, target 12: offset = 12 - 8 = 4.
  EXPECT_EQ(ins[1], make_branch(Opcode::kBeqz, 0, 4));
  EXPECT_EQ(prog.labels.at("start"), 0u);
  EXPECT_EQ(prog.labels.at("end"), 12u);
}

TEST(Assembler, BackwardBranchAndJumpLabels) {
  const auto prog = assemble(
      "loop: addi r1, r1, 1\n"
      "      bnez r1, loop\n"
      "      j loop\n"
      "      jal loop\n");
  const auto ins = prog.instructions();
  EXPECT_EQ(ins[1].imm, -8);   // from pc=4: 0 - 8
  EXPECT_EQ(ins[2].imm, -12);  // from pc=8
  EXPECT_EQ(ins[3].imm, -16);  // from pc=12
}

TEST(Assembler, LabelOnOwnLine) {
  const auto prog = assemble(
      "entry:\n"
      "  halt\n");
  EXPECT_EQ(prog.labels.at("entry"), 0u);
  EXPECT_EQ(prog.words.size(), 1u);
}

TEST(Assembler, NumericTargetsStillWork) {
  const auto prog = assemble("beqz r1, -8\nj 0x10\n");
  const auto ins = prog.instructions();
  EXPECT_EQ(ins[0].imm, -8);
  EXPECT_EQ(ins[1].imm, 16);
}

TEST(Assembler, WordDirective) {
  const auto prog = assemble(".word 0xdeadbeef\nhalt\n");
  EXPECT_EQ(prog.words[0], 0xdeadbeefu);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const auto prog = assemble("addi r1, r0, 0x7f\naddi r2, r0, -42\n");
  const auto ins = prog.instructions();
  EXPECT_EQ(ins[0].imm, 127);
  EXPECT_EQ(ins[1].imm, -42);
}

TEST(Assembler, LhiAndJumpRegister) {
  const auto prog = assemble("lhi r4, 0xbeef\njr r4\njalr r5\n");
  const auto ins = prog.instructions();
  EXPECT_EQ(ins[0], make_lhi(4, 0xbeef));
  EXPECT_EQ(ins[1], make_jump_reg(Opcode::kJr, 4));
  EXPECT_EQ(ins[2], make_jump_reg(Opcode::kJalr, 5));
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

TEST(AssemblerErrors, ReportLineNumbers) {
  try {
    assemble("nop\nbogus r1\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(AssemblerErrors, AllTheWaysToFail) {
  EXPECT_THROW((void)assemble("frobnicate r1, r2\n"), AssemblyError);
  EXPECT_THROW((void)assemble("add r1, r2\n"), AssemblyError);       // arity
  EXPECT_THROW((void)assemble("add r1, r2, r3, r4\n"), AssemblyError);
  EXPECT_THROW((void)assemble("add r1, r2, x3\n"), AssemblyError);   // reg
  EXPECT_THROW((void)assemble("add r1, r2, r32\n"), AssemblyError);  // range
  EXPECT_THROW((void)assemble("addi r1, r0, 40000\n"), AssemblyError);
  EXPECT_THROW((void)assemble("lw r1, 8[r2]\n"), AssemblyError);     // syntax
  EXPECT_THROW((void)assemble("beqz r1, nowhere\n"), AssemblyError);
  EXPECT_THROW((void)assemble("a: nop\na: nop\n"), AssemblyError);   // dup
  EXPECT_THROW((void)assemble(".word zzz\n"), AssemblyError);
  EXPECT_THROW((void)assemble("add r1, , r2\n"), AssemblyError);
  EXPECT_THROW((void)assemble("bad label: nop\n"), AssemblyError);
}

// ---------------------------------------------------------------------------
// Round-trips and execution
// ---------------------------------------------------------------------------

TEST(Assembler, DisassembleReassembleRoundTrip) {
  const std::string source =
      "addi r1, r0, 5\n"
      "add r3, r1, r2\n"
      "lw r4, 16(r1)\n"
      "sw 8(r1), r4\n"
      "beqz r3, 8\n"
      "jal -4\n"
      "jr r31\n"
      "lhi r9, 4660\n"
      "halt\n";
  const auto prog = assemble(source);
  // disassemble_program output contains addresses; strip and reassemble.
  std::string dis = disassemble_program(prog.words);
  std::string stripped;
  std::istringstream lines(dis);
  std::string line;
  while (std::getline(lines, line)) {
    stripped += line.substr(line.find('\t') + 1) + "\n";
  }
  const auto again = assemble(stripped);
  EXPECT_EQ(prog.words, again.words);
}

TEST(Assembler, HandWrittenRegressionExposesInterlockBug) {
  // Text-assembled directed test, straight from the methodology's output
  // format: load followed by an immediate use.
  const auto prog = assemble(
      "      addi r1, r0, 7\n"
      "      sw   0x30(r0), r1\n"
      "      lw   r2, 0x30(r0)\n"
      "      add  r3, r2, r0\n"   // load-use hazard
      "      sw   0x34(r0), r3\n"
      "      halt\n");
  IsaModel spec(prog.words);
  Pipeline good(prog.words);
  PipelineConfig buggy_cfg{{PipelineBug::kNoLoadUseStall}};
  Pipeline buggy(prog.words, buggy_cfg);
  const auto st = spec.run();
  const auto gt = good.run();
  const auto bt = buggy.run();
  ASSERT_EQ(st.size(), gt.size());
  for (std::size_t k = 0; k < st.size(); ++k) EXPECT_EQ(st[k], gt[k]);
  // The buggy pipeline stores a stale value.
  EXPECT_EQ(spec.peek_word(0x34), 7u);
  EXPECT_NE(buggy.peek_word(0x34), 7u);
  (void)bt;
}

TEST(Assembler, AssembledProgramRunsOnBothModels) {
  const auto prog = assemble(
      "        addi r1, r0, 10\n"
      "        addi r2, r0, 0\n"
      "loop:   add  r2, r2, r1\n"
      "        addi r1, r1, -1\n"
      "        bnez r1, loop\n"
      "        sw   0x40(r0), r2\n"
      "        halt\n");
  IsaModel spec(prog.words);
  Pipeline impl(prog.words);
  const auto st = spec.run();
  const auto it = impl.run();
  ASSERT_EQ(st.size(), it.size());
  for (std::size_t k = 0; k < st.size(); ++k) EXPECT_EQ(st[k], it[k]);
  // Sum 10+9+...+1 = 55.
  EXPECT_EQ(spec.peek_word(0x40), 55u);
  EXPECT_EQ(impl.peek_word(0x40), 55u);
}

}  // namespace
}  // namespace simcov::dlx
