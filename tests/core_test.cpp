// Tests for the methodology core: requirement assessment, over-abstraction
// quotient analysis (Requirement 1), mutant-coverage evaluation, and the
// end-to-end validation campaign.
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "core/requirements.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "errmodel/errmodel.hpp"
#include "runtime/rng.hpp"
#include "sym/symbolic_fsm.hpp"
#include "tour/tour.hpp"

namespace simcov::core {
namespace {

testmodel::TestModelOptions tiny_model_options() {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 1;
  opt.reduced_isa = true;
  return opt;
}

// ---------------------------------------------------------------------------
// Requirements
// ---------------------------------------------------------------------------

TEST(Requirements, TinyControlModelAssessment) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  const auto em = sym::extract_explicit(model.circuit, 20000);
  ASSERT_FALSE(em.truncated);
  const auto report =
      assess_requirements(em.machine, 0, model.options, /*max_k=*/6,
                          /*mutant_sample=*/30, /*probe_length=*/100);
  EXPECT_TRUE(report.r5_interaction_state_observable);
  EXPECT_TRUE(report.r1_deterministic_outputs);
  // Masking should be rare on a model with observable interaction state.
  EXPECT_LE(report.r4_masked_fraction, 0.3);
}

TEST(Requirements, Req5AblationFlagged) {
  auto opt = tiny_model_options();
  opt.expose_dest_outputs = false;
  const auto model = testmodel::build_dlx_control_model(opt);
  const auto em = sym::extract_explicit(model.circuit, 20000);
  const auto report = assess_requirements(em.machine, 0, model.options, 4,
                                          10, 50);
  EXPECT_FALSE(report.r5_interaction_state_observable);
}

TEST(Requirements, ForallKOnFavourableMachine) {
  // Unique outputs per (state, input): ∀1-distinguishable.
  fsm::MealyMachine m(3, 2);
  for (fsm::StateId s = 0; s < 3; ++s) {
    for (fsm::InputId i = 0; i < 2; ++i) {
      m.set_transition(s, i, (s + i + 1) % 3, s * 2 + i);
    }
  }
  testmodel::TestModelOptions opt;  // irrelevant except observability flags
  const auto report = assess_requirements(m, 0, opt, 4, 10, 50);
  EXPECT_EQ(report.forall_k, std::optional<unsigned>(1));
}

// ---------------------------------------------------------------------------
// Projection (Requirement 1 ablation)
// ---------------------------------------------------------------------------

TEST(Projection, DroppingDestLatchesBreaksOutputDeterminism) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  const auto em = sym::extract_explicit(model.circuit, 20000);
  ASSERT_FALSE(em.truncated);
  // Identity projection: nothing dropped, quotient deterministic.
  const std::vector<std::string> none;
  const auto id_report = analyze_projection(em, model, none);
  EXPECT_EQ(id_report.dropped_latches, 0u);
  EXPECT_TRUE(id_report.output_deterministic);
  EXPECT_EQ(id_report.abstract_states, em.machine.num_states());

  // Dropping the destination-register addresses merges states that the
  // interlock/forwarding outputs depend on: the paper's "abstracting too
  // much" example, producing output nondeterminism (Requirement 1 hazard).
  const std::vector<std::string> drop{"ex_dest", "mem_dest", "wb_dest"};
  const auto report = analyze_projection(em, model, drop);
  EXPECT_EQ(report.dropped_latches, 3u);  // 1 bit each at R=1
  EXPECT_LT(report.abstract_states, em.machine.num_states());
  EXPECT_FALSE(report.output_deterministic);
  EXPECT_GT(report.output_nondet_pairs, 0u);
}

TEST(Projection, DroppingDeadLatchesIsExact) {
  // The squash_pending latch correlates with other state only in ways that
  // keep behaviour deterministic? Not necessarily — use a latch that is
  // genuinely redundant: build with interlock registers and drop them.
  auto opt = tiny_model_options();
  opt.interlock_registers = true;
  const auto model = testmodel::build_dlx_control_model(opt);
  const auto em = sym::extract_explicit(model.circuit, 50000);
  ASSERT_FALSE(em.truncated);
  const std::vector<std::string> drop{"r_"};
  const auto report = analyze_projection(em, model, drop);
  EXPECT_EQ(report.dropped_latches, 12u);
  // Redundant latches: quotient stays fully deterministic.
  EXPECT_TRUE(report.deterministic);
  EXPECT_TRUE(report.output_deterministic);
}

TEST(Projection, MismatchedModelThrows) {
  const auto model_a = testmodel::build_dlx_control_model(tiny_model_options());
  auto opt = tiny_model_options();
  opt.reg_addr_bits = 2;
  const auto model_b = testmodel::build_dlx_control_model(opt);
  const auto em = sym::extract_explicit(model_a.circuit, 20000);
  const std::vector<std::string> none;
  EXPECT_THROW((void)analyze_projection(em, model_b, none),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mutant coverage (Theorem 3 apparatus)
// ---------------------------------------------------------------------------

TEST(MutantCoverage, TransitionTourBeatsBaselines) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  const auto em = sym::extract_explicit(model.circuit, 20000);
  ASSERT_FALSE(em.truncated);

  MutantCoverageOptions tt;
  tt.method = TestMethod::kTransitionTourSet;
  tt.k_extension = 5;
  tt.mutant_sample = 150;
  // Fair denominator: behaviourally equivalent mutants are no error at all
  // and would otherwise depress every method's rate by the same noise.
  tt.exclude_equivalent = true;
  const model::ExplicitModel test_model(em.machine, 0);
  const auto tour_result = evaluate_mutant_coverage(test_model, tt);
  EXPECT_EQ(tour_result.mutants + tour_result.equivalent, 150u);

  MutantCoverageOptions st = tt;
  st.method = TestMethod::kStateTour;
  const auto state_result = evaluate_mutant_coverage(test_model, st);

  MutantCoverageOptions rw = tt;
  rw.method = TestMethod::kRandomWalk;
  rw.random_length = state_result.test_length;  // equal length budget
  const auto random_result = evaluate_mutant_coverage(test_model, rw);

  // The transition tour exposes the most mutants; the state tour and the
  // random walk miss transitions they never exercise.
  ASSERT_TRUE(tour_result.exposure_rate().has_value());
  EXPECT_GE(*tour_result.exposure_rate(), 0.85);
  EXPECT_GT(*tour_result.exposure_rate(), *state_result.exposure_rate());
  EXPECT_GE(*tour_result.exposure_rate(), *random_result.exposure_rate());
}

TEST(MutantCoverage, ExcitedButUnexposedWithoutExtension) {
  // On the favourable ∀1 machine, the tour plus 1-step extension exposes
  // every mutant (Theorem 1); without the extension the final transition's
  // transfer errors can escape.
  fsm::MealyMachine m(4, 2);
  for (fsm::StateId s = 0; s < 4; ++s) {
    for (fsm::InputId i = 0; i < 2; ++i) {
      m.set_transition(s, i, (s + i + 1) % 4, s * 2 + i);
    }
  }
  MutantCoverageOptions with;
  with.method = TestMethod::kTransitionTourSet;
  with.k_extension = 1;
  with.mutant_sample = 1000;  // all mutants of this small machine
  const auto full =
      evaluate_mutant_coverage(model::ExplicitModel(m, 0), with);
  ASSERT_TRUE(full.exposure_rate().has_value());
  EXPECT_DOUBLE_EQ(*full.exposure_rate(), 1.0);
}

// ---------------------------------------------------------------------------
// Full campaign
// ---------------------------------------------------------------------------

TEST(Campaign, TransitionTourCampaignExposesControlBugs) {
  CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = TestMethod::kTransitionTourSet;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoSquashOnTakenBranch,
      dlx::PipelineBug::kNoForwardExMemA,
      dlx::PipelineBug::kNoForwardMemWbA,
      dlx::PipelineBug::kInterlockChecksRs1Only,
  };
  const auto result = run_campaign(options, bugs);
  EXPECT_TRUE(result.clean_pass);
  EXPECT_EQ(result.backend, model::Backend::kExplicit);
  EXPECT_DOUBLE_EQ(result.transition_coverage, 1.0);
  EXPECT_DOUBLE_EQ(result.state_coverage, 1.0);
  EXPECT_EQ(result.bugs_exposed(), bugs.size())
      << "the transition-tour campaign must expose every injected bug";
  EXPECT_GT(result.total_instructions, 100u);
}

TEST(Campaign, RandomCampaignWeakerThanTour) {
  CampaignOptions tour_options;
  tour_options.model_options = tiny_model_options();
  tour_options.method = TestMethod::kTransitionTourSet;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoSquashOnTakenBranch,
      dlx::PipelineBug::kNoForwardExMemA,
      dlx::PipelineBug::kInterlockChecksRs1Only,
      dlx::PipelineBug::kStoreDataStale,
      dlx::PipelineBug::kBranchUsesStaleCondition,
  };
  const auto tour_result = run_campaign(tour_options, bugs);

  CampaignOptions random_options = tour_options;
  random_options.method = TestMethod::kRandomWalk;
  random_options.random_length = 60;  // short random sim: the usual baseline
  const auto random_result = run_campaign(random_options, bugs);

  EXPECT_GE(tour_result.bugs_exposed(), random_result.bugs_exposed());
  EXPECT_LT(random_result.transition_coverage, 1.0);
}

// ---------------------------------------------------------------------------
// Parallel engine: determinism and RNG stream decoupling
// ---------------------------------------------------------------------------

namespace det {

/// Everything about a campaign outcome except wall-clock timings.
void expect_same_campaign(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.model_states, b.model_states);
  EXPECT_EQ(a.sequences, b.sequences);
  EXPECT_EQ(a.test_length, b.test_length);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_DOUBLE_EQ(a.state_coverage, b.state_coverage);
  EXPECT_DOUBLE_EQ(a.transition_coverage, b.transition_coverage);
  EXPECT_EQ(a.clean_pass, b.clean_pass);
  EXPECT_EQ(a.runs_inconclusive, b.runs_inconclusive);
  ASSERT_EQ(a.clean_runs.size(), b.clean_runs.size());
  for (std::size_t k = 0; k < a.clean_runs.size(); ++k) {
    EXPECT_EQ(a.clean_runs[k].impl_cycles, b.clean_runs[k].impl_cycles);
    EXPECT_EQ(a.clean_runs[k].checkpoints, b.clean_runs[k].checkpoints);
    EXPECT_EQ(a.clean_runs[k].passed, b.clean_runs[k].passed);
  }
  ASSERT_EQ(a.exposures.size(), b.exposures.size());
  for (std::size_t k = 0; k < a.exposures.size(); ++k) {
    EXPECT_EQ(a.exposures[k].bug, b.exposures[k].bug);
    EXPECT_EQ(a.exposures[k].exposed, b.exposures[k].exposed);
    EXPECT_EQ(a.exposures[k].exposing_sequence,
              b.exposures[k].exposing_sequence);
    EXPECT_EQ(a.exposures[k].programs_run, b.exposures[k].programs_run);
    EXPECT_EQ(a.exposures[k].impl_cycles, b.exposures[k].impl_cycles);
  }
}

}  // namespace det

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

TEST(CampaignBackend, AutoFallsBackToSymbolicBeyondExplicitBudget) {
  CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = TestMethod::kTransitionTourSet;
  options.max_states = 4;  // far below the model's reachable count
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoForwardExMemA,
  };
  const auto result = run_campaign(options, bugs);
  EXPECT_EQ(result.backend, model::Backend::kSymbolic);
  EXPECT_DOUBLE_EQ(result.transition_coverage, 1.0);
  EXPECT_DOUBLE_EQ(result.state_coverage, 1.0);
  EXPECT_TRUE(result.clean_pass);
  EXPECT_EQ(result.bugs_exposed(), bugs.size());
  // The symbolic campaign carries its model statistics along for free.
  ASSERT_TRUE(result.symbolic_stats.has_value());
  ASSERT_TRUE(result.bdd_stats.has_value());
  const std::string report = to_json(result);
  EXPECT_NE(report.find("\"backend\":\"symbolic\""), std::string::npos);
  EXPECT_NE(report.find("\"symbolic\":{"), std::string::npos);
}

TEST(CampaignBackend, BackendsAgreeOnModelAndCoverage) {
  CampaignOptions explicit_options;
  explicit_options.model_options = tiny_model_options();
  explicit_options.method = TestMethod::kTransitionTourSet;
  explicit_options.backend = BackendChoice::kExplicit;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall};
  const auto explicit_result = run_campaign(explicit_options, bugs);
  ASSERT_EQ(explicit_result.backend, model::Backend::kExplicit);

  CampaignOptions symbolic_options = explicit_options;
  symbolic_options.backend = BackendChoice::kSymbolic;
  const auto symbolic_result = run_campaign(symbolic_options, bugs);
  ASSERT_EQ(symbolic_result.backend, model::Backend::kSymbolic);

  // The tours differ (different generators) but the model they measure and
  // the coverage they reach are identically defined.
  EXPECT_EQ(explicit_result.model_states, symbolic_result.model_states);
  EXPECT_EQ(explicit_result.model_transitions,
            symbolic_result.model_transitions);
  EXPECT_DOUBLE_EQ(explicit_result.transition_coverage, 1.0);
  EXPECT_DOUBLE_EQ(symbolic_result.transition_coverage, 1.0);
  EXPECT_TRUE(explicit_result.clean_pass);
  EXPECT_TRUE(symbolic_result.clean_pass);
  EXPECT_EQ(explicit_result.bugs_exposed(), bugs.size());
  EXPECT_EQ(symbolic_result.bugs_exposed(), bugs.size());
}

TEST(CampaignBackend, ForcedExplicitThrowsBeyondBudget) {
  CampaignOptions options;
  options.model_options = tiny_model_options();
  options.backend = BackendChoice::kExplicit;
  options.max_states = 4;
  EXPECT_THROW(run_campaign(options, {}), std::runtime_error);
}

TEST(CampaignBackend, StateTourRequiresExplicitBackend) {
  CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = TestMethod::kStateTour;
  options.backend = BackendChoice::kSymbolic;
  EXPECT_THROW(run_campaign(options, {}), std::runtime_error);
}

TEST(CampaignBackend, SymbolicCampaignBitIdenticalAcrossThreads) {
  CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = TestMethod::kTransitionTourSet;
  options.backend = BackendChoice::kSymbolic;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoSquashOnTakenBranch,
  };
  options.threads = 1;
  const auto serial = run_campaign(options, bugs);
  for (const std::size_t threads :
       {std::size_t{2}, std::size_t{std::thread::hardware_concurrency()}}) {
    options.threads = threads;
    const auto parallel = run_campaign(options, bugs);
    det::expect_same_campaign(serial, parallel);
  }
}

TEST(ParallelCampaign, BitIdenticalAtAnyThreadCount) {
  CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = TestMethod::kTransitionTourSet;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoForwardExMemA,
      dlx::PipelineBug::kNoSquashOnTakenBranch,
  };
  options.threads = 1;
  const auto serial = run_campaign(options, bugs);
  for (const std::size_t threads :
       {std::size_t{2}, std::size_t{std::thread::hardware_concurrency()}}) {
    options.threads = threads;
    const auto parallel = run_campaign(options, bugs);
    det::expect_same_campaign(serial, parallel);
  }
}

TEST(ParallelCampaign, RandomWalkCampaignDeterministicAcrossThreads) {
  CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = TestMethod::kRandomWalk;
  options.random_length = 200;
  options.seed = 7;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall};
  options.threads = 1;
  const auto serial = run_campaign(options, bugs);
  options.threads = 4;
  const auto parallel = run_campaign(options, bugs);
  det::expect_same_campaign(serial, parallel);
}

TEST(ParallelMutantCoverage, BitIdenticalAtAnyThreadCount) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  const auto em = sym::extract_explicit(model.circuit, 20000);
  MutantCoverageOptions options;
  options.method = TestMethod::kTransitionTourSet;
  options.mutant_sample = 120;
  options.k_extension = 3;
  options.exclude_equivalent = true;
  options.threads = 1;
  const model::ExplicitModel test_model(em.machine, 0);
  const auto serial = evaluate_mutant_coverage(test_model, options);
  for (const std::size_t threads :
       {std::size_t{2}, std::size_t{std::thread::hardware_concurrency()},
        std::size_t{0}}) {
    options.threads = threads;
    const auto parallel = evaluate_mutant_coverage(test_model, options);
    EXPECT_EQ(serial.mutants, parallel.mutants);
    EXPECT_EQ(serial.exposed, parallel.exposed);
    EXPECT_EQ(serial.equivalent, parallel.equivalent);
    EXPECT_EQ(serial.test_length, parallel.test_length);
  }
}

TEST(RngStreams, MutantSamplingDecoupledFromWalkGeneration) {
  // Regression: mutant sampling used to seed from
  // `options.seed ^ 0x9e3779b9`, the same stream family the random walk
  // draws from. The sampling stream must now be a genuinely different
  // stream: sampling with the walk-derived seed yields a different sample.
  fsm::MealyMachine m(6, 3);
  for (fsm::StateId s = 0; s < 6; ++s) {
    for (fsm::InputId i = 0; i < 3; ++i) {
      m.set_transition(s, i, (s * 2 + i + 1) % 6, (s + i) % 4);
    }
  }
  const std::uint64_t seed = 99;
  const auto walk_seed =
      runtime::derive_stream(seed, runtime::Stream::kWalkStream);
  const auto mutant_seed =
      runtime::derive_stream(seed, runtime::Stream::kMutantStream);
  EXPECT_NE(walk_seed, mutant_seed);
  const auto sample_a = errmodel::sample_mutations(
      m, 0, m.output_alphabet_size(), 20, walk_seed);
  const auto sample_b = errmodel::sample_mutations(
      m, 0, m.output_alphabet_size(), 20, mutant_seed);
  bool differ = sample_a.size() != sample_b.size();
  for (std::size_t k = 0; !differ && k < sample_a.size(); ++k) {
    differ = sample_a[k].kind != sample_b[k].kind ||
             sample_a[k].at.state != sample_b[k].at.state ||
             sample_a[k].at.input != sample_b[k].at.input;
  }
  EXPECT_TRUE(differ)
      << "walk-seeded and mutant-seeded samples must not coincide";
  // And the same seed keeps giving the same sample (reproducibility).
  const auto sample_b2 = errmodel::sample_mutations(
      m, 0, m.output_alphabet_size(), 20, mutant_seed);
  ASSERT_EQ(sample_b.size(), sample_b2.size());
  for (std::size_t k = 0; k < sample_b.size(); ++k) {
    EXPECT_EQ(sample_b[k].at.state, sample_b2[k].at.state);
    EXPECT_EQ(sample_b[k].at.input, sample_b2[k].at.input);
  }
}

TEST(MutantCoverage, EmptySampleHasNoExposureRate) {
  // Zero real mutants must read as "nothing to measure", not "100%".
  MutantCoverageResult empty;
  EXPECT_FALSE(empty.exposure_rate().has_value());
  MutantCoverageResult one;
  one.mutants = 1;
  one.exposed = 1;
  ASSERT_TRUE(one.exposure_rate().has_value());
  EXPECT_DOUBLE_EQ(*one.exposure_rate(), 1.0);
}

TEST(Campaign, MethodNames) {
  EXPECT_STREQ(method_name(TestMethod::kTransitionTourSet),
               "transition-tour");
  EXPECT_STREQ(method_name(TestMethod::kStateTour), "state-tour");
  EXPECT_STREQ(method_name(TestMethod::kRandomWalk), "random-walk");
}

}  // namespace
}  // namespace simcov::core
