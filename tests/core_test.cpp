// Tests for the methodology core: requirement assessment, over-abstraction
// quotient analysis (Requirement 1), mutant-coverage evaluation, and the
// end-to-end validation campaign.
#include "core/campaign.hpp"
#include "core/requirements.hpp"

#include <gtest/gtest.h>

#include "sym/symbolic_fsm.hpp"
#include "tour/tour.hpp"

namespace simcov::core {
namespace {

testmodel::TestModelOptions tiny_model_options() {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 1;
  opt.reduced_isa = true;
  return opt;
}

// ---------------------------------------------------------------------------
// Requirements
// ---------------------------------------------------------------------------

TEST(Requirements, TinyControlModelAssessment) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  const auto em = sym::extract_explicit(model.circuit, 20000);
  ASSERT_FALSE(em.truncated);
  const auto report =
      assess_requirements(em.machine, 0, model.options, /*max_k=*/6,
                          /*mutant_sample=*/30, /*probe_length=*/100);
  EXPECT_TRUE(report.r5_interaction_state_observable);
  EXPECT_TRUE(report.r1_deterministic_outputs);
  // Masking should be rare on a model with observable interaction state.
  EXPECT_LE(report.r4_masked_fraction, 0.3);
}

TEST(Requirements, Req5AblationFlagged) {
  auto opt = tiny_model_options();
  opt.expose_dest_outputs = false;
  const auto model = testmodel::build_dlx_control_model(opt);
  const auto em = sym::extract_explicit(model.circuit, 20000);
  const auto report = assess_requirements(em.machine, 0, model.options, 4,
                                          10, 50);
  EXPECT_FALSE(report.r5_interaction_state_observable);
}

TEST(Requirements, ForallKOnFavourableMachine) {
  // Unique outputs per (state, input): ∀1-distinguishable.
  fsm::MealyMachine m(3, 2);
  for (fsm::StateId s = 0; s < 3; ++s) {
    for (fsm::InputId i = 0; i < 2; ++i) {
      m.set_transition(s, i, (s + i + 1) % 3, s * 2 + i);
    }
  }
  testmodel::TestModelOptions opt;  // irrelevant except observability flags
  const auto report = assess_requirements(m, 0, opt, 4, 10, 50);
  EXPECT_EQ(report.forall_k, std::optional<unsigned>(1));
}

// ---------------------------------------------------------------------------
// Projection (Requirement 1 ablation)
// ---------------------------------------------------------------------------

TEST(Projection, DroppingDestLatchesBreaksOutputDeterminism) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  const auto em = sym::extract_explicit(model.circuit, 20000);
  ASSERT_FALSE(em.truncated);
  // Identity projection: nothing dropped, quotient deterministic.
  const std::vector<std::string> none;
  const auto id_report = analyze_projection(em, model, none);
  EXPECT_EQ(id_report.dropped_latches, 0u);
  EXPECT_TRUE(id_report.output_deterministic);
  EXPECT_EQ(id_report.abstract_states, em.machine.num_states());

  // Dropping the destination-register addresses merges states that the
  // interlock/forwarding outputs depend on: the paper's "abstracting too
  // much" example, producing output nondeterminism (Requirement 1 hazard).
  const std::vector<std::string> drop{"ex_dest", "mem_dest", "wb_dest"};
  const auto report = analyze_projection(em, model, drop);
  EXPECT_EQ(report.dropped_latches, 3u);  // 1 bit each at R=1
  EXPECT_LT(report.abstract_states, em.machine.num_states());
  EXPECT_FALSE(report.output_deterministic);
  EXPECT_GT(report.output_nondet_pairs, 0u);
}

TEST(Projection, DroppingDeadLatchesIsExact) {
  // The squash_pending latch correlates with other state only in ways that
  // keep behaviour deterministic? Not necessarily — use a latch that is
  // genuinely redundant: build with interlock registers and drop them.
  auto opt = tiny_model_options();
  opt.interlock_registers = true;
  const auto model = testmodel::build_dlx_control_model(opt);
  const auto em = sym::extract_explicit(model.circuit, 50000);
  ASSERT_FALSE(em.truncated);
  const std::vector<std::string> drop{"r_"};
  const auto report = analyze_projection(em, model, drop);
  EXPECT_EQ(report.dropped_latches, 12u);
  // Redundant latches: quotient stays fully deterministic.
  EXPECT_TRUE(report.deterministic);
  EXPECT_TRUE(report.output_deterministic);
}

TEST(Projection, MismatchedModelThrows) {
  const auto model_a = testmodel::build_dlx_control_model(tiny_model_options());
  auto opt = tiny_model_options();
  opt.reg_addr_bits = 2;
  const auto model_b = testmodel::build_dlx_control_model(opt);
  const auto em = sym::extract_explicit(model_a.circuit, 20000);
  const std::vector<std::string> none;
  EXPECT_THROW((void)analyze_projection(em, model_b, none),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mutant coverage (Theorem 3 apparatus)
// ---------------------------------------------------------------------------

TEST(MutantCoverage, TransitionTourBeatsBaselines) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  const auto em = sym::extract_explicit(model.circuit, 20000);
  ASSERT_FALSE(em.truncated);

  MutantCoverageOptions tt;
  tt.method = TestMethod::kTransitionTourSet;
  tt.k_extension = 5;
  tt.mutant_sample = 150;
  const auto tour_result = evaluate_mutant_coverage(em.machine, 0, tt);
  EXPECT_EQ(tour_result.mutants, 150u);

  MutantCoverageOptions st = tt;
  st.method = TestMethod::kStateTour;
  const auto state_result = evaluate_mutant_coverage(em.machine, 0, st);

  MutantCoverageOptions rw = tt;
  rw.method = TestMethod::kRandomWalk;
  rw.random_length = state_result.test_length;  // equal length budget
  const auto random_result = evaluate_mutant_coverage(em.machine, 0, rw);

  // The transition tour exposes the most mutants; the state tour and the
  // random walk miss transitions they never exercise.
  EXPECT_GE(tour_result.exposure_rate(), 0.85);
  EXPECT_GT(tour_result.exposure_rate(), state_result.exposure_rate());
  EXPECT_GE(tour_result.exposure_rate(), random_result.exposure_rate());
}

TEST(MutantCoverage, ExcitedButUnexposedWithoutExtension) {
  // On the favourable ∀1 machine, the tour plus 1-step extension exposes
  // every mutant (Theorem 1); without the extension the final transition's
  // transfer errors can escape.
  fsm::MealyMachine m(4, 2);
  for (fsm::StateId s = 0; s < 4; ++s) {
    for (fsm::InputId i = 0; i < 2; ++i) {
      m.set_transition(s, i, (s + i + 1) % 4, s * 2 + i);
    }
  }
  MutantCoverageOptions with;
  with.method = TestMethod::kTransitionTourSet;
  with.k_extension = 1;
  with.mutant_sample = 1000;  // all mutants of this small machine
  const auto full = evaluate_mutant_coverage(m, 0, with);
  EXPECT_DOUBLE_EQ(full.exposure_rate(), 1.0);
}

// ---------------------------------------------------------------------------
// Full campaign
// ---------------------------------------------------------------------------

TEST(Campaign, TransitionTourCampaignExposesControlBugs) {
  CampaignOptions options;
  options.model_options = tiny_model_options();
  options.method = TestMethod::kTransitionTourSet;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoSquashOnTakenBranch,
      dlx::PipelineBug::kNoForwardExMemA,
      dlx::PipelineBug::kNoForwardMemWbA,
      dlx::PipelineBug::kInterlockChecksRs1Only,
  };
  const auto result = run_campaign(options, bugs);
  EXPECT_TRUE(result.clean_pass);
  EXPECT_FALSE(result.model_truncated);
  EXPECT_DOUBLE_EQ(result.transition_coverage, 1.0);
  EXPECT_DOUBLE_EQ(result.state_coverage, 1.0);
  EXPECT_EQ(result.bugs_exposed(), bugs.size())
      << "the transition-tour campaign must expose every injected bug";
  EXPECT_GT(result.total_instructions, 100u);
}

TEST(Campaign, RandomCampaignWeakerThanTour) {
  CampaignOptions tour_options;
  tour_options.model_options = tiny_model_options();
  tour_options.method = TestMethod::kTransitionTourSet;
  const std::vector<dlx::PipelineBug> bugs{
      dlx::PipelineBug::kNoLoadUseStall,
      dlx::PipelineBug::kNoSquashOnTakenBranch,
      dlx::PipelineBug::kNoForwardExMemA,
      dlx::PipelineBug::kInterlockChecksRs1Only,
      dlx::PipelineBug::kStoreDataStale,
      dlx::PipelineBug::kBranchUsesStaleCondition,
  };
  const auto tour_result = run_campaign(tour_options, bugs);

  CampaignOptions random_options = tour_options;
  random_options.method = TestMethod::kRandomWalk;
  random_options.random_length = 60;  // short random sim: the usual baseline
  const auto random_result = run_campaign(random_options, bugs);

  EXPECT_GE(tour_result.bugs_exposed(), random_result.bugs_exposed());
  EXPECT_LT(random_result.transition_coverage, 1.0);
}

TEST(Campaign, MethodNames) {
  EXPECT_STREQ(method_name(TestMethod::kTransitionTourSet),
               "transition-tour");
  EXPECT_STREQ(method_name(TestMethod::kStateTour), "state-tour");
  EXPECT_STREQ(method_name(TestMethod::kRandomWalk), "random-walk");
}

}  // namespace
}  // namespace simcov::core
