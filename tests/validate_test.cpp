// Integration tests: tour concretization and the spec-vs-implementation
// validation harness (Figure 1 end to end).
#include "validate/concretize.hpp"
#include "validate/harness.hpp"

#include <gtest/gtest.h>

#include "sym/symbolic_fsm.hpp"
#include "tour/tour.hpp"

namespace simcov::validate {
namespace {

using dlx::OpClass;
using dlx::PipelineBug;
using dlx::PipelineConfig;
using testmodel::ControlInput;

testmodel::TestModelOptions tour_model_options() {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 2;
  opt.reduced_isa = true;
  return opt;
}

ControlInput ci(OpClass cls, unsigned rs1 = 0, unsigned rs2 = 0,
                unsigned rd = 0, bool outcome = false) {
  return ControlInput{cls, rs1, rs2, rd, outcome, true};
}

// ---------------------------------------------------------------------------
// Concretization mechanics
// ---------------------------------------------------------------------------

TEST(Concretize, EmptyTourYieldsHaltOnly) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  const auto prog = concretize_tour(model, {});
  ASSERT_EQ(prog.instructions.size(), 1u);
  EXPECT_EQ(prog.instructions[0].op, dlx::Opcode::kHalt);
}

TEST(Concretize, StraightLineInstructionsEmittedInOrder) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  const auto prog = concretize_tour(model, {
      ci(OpClass::kNop),
      ci(OpClass::kAlu, 1, 2, 1),
      ci(OpClass::kLoad, 0, 0, 2),
  });
  ASSERT_EQ(prog.instructions.size(), 4u);  // 3 + final halt
  EXPECT_EQ(prog.instructions[0].op, dlx::Opcode::kNop);
  EXPECT_EQ(dlx::op_class(prog.instructions[1].op), OpClass::kAlu);
  EXPECT_EQ(dlx::op_class(prog.instructions[2].op), OpClass::kLoad);
  EXPECT_EQ(prog.steps_emitted, 3u);
  EXPECT_EQ(prog.steps_dropped, 0u);
}

TEST(Concretize, StallCycleInputIsDropped) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  // Load r2, consumer presented during the stall cycle, then re-presented.
  const auto prog = concretize_tour(model, {
      ci(OpClass::kLoad, 0, 0, 2),
      ci(OpClass::kAlu, 2, 0, 1),  // stall cycle: dropped
      ci(OpClass::kAlu, 2, 0, 1),  // accepted: emitted
  });
  EXPECT_EQ(prog.steps_dropped, 1u);
  EXPECT_EQ(prog.steps_emitted, 2u);
  ASSERT_EQ(prog.instructions.size(), 3u);
  EXPECT_EQ(dlx::op_class(prog.instructions[1].op), OpClass::kAlu);
}

TEST(Concretize, LoadsGetUniquePreloadedData) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  const auto prog = concretize_tour(model, {
      ci(OpClass::kLoad, 0, 0, 1),
      ci(OpClass::kNop),
      ci(OpClass::kLoad, 0, 0, 2),
      ci(OpClass::kNop),
  });
  ASSERT_EQ(prog.memory_init.size(), 2u);
  EXPECT_NE(prog.memory_init[0].first, prog.memory_init[1].first);
  EXPECT_NE(prog.memory_init[0].second, prog.memory_init[1].second);
}

TEST(Concretize, BranchDirectionMatchesTourOutcome) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  // Taken branch: outcome bit on the following step; r1 is 0 initially, so
  // the concretizer must pick BEQZ.
  const auto prog = concretize_tour(model, {
      ci(OpClass::kBranch, 1),
      ci(OpClass::kNop, 0, 0, 0, /*outcome=*/true),  // wrong path
      ci(OpClass::kNop),                             // wrong path
      ci(OpClass::kAlu, 0, 0, 1),                    // target path
  });
  EXPECT_EQ(prog.instructions[0].op, dlx::Opcode::kBeqz);
  // Its run must follow the taken path in both models.
  const auto result = run_validation(prog);
  EXPECT_TRUE(result.passed) << describe(result);
}

TEST(Concretize, UntakenBranchPicksOppositeOpcode) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  const auto prog = concretize_tour(model, {
      ci(OpClass::kBranch, 1),
      ci(OpClass::kNop),  // outcome stays false: untaken
      ci(OpClass::kNop),
  });
  EXPECT_EQ(prog.instructions[0].op, dlx::Opcode::kBnez);
}

TEST(Concretize, CommittedJumpRegisterRejected) {
  testmodel::TestModelOptions opt = tour_model_options();
  opt.reduced_isa = false;  // allow JR in the model
  const auto model = testmodel::build_dlx_control_model(opt);
  EXPECT_THROW((void)concretize_tour(model, {ci(OpClass::kJumpReg, 1)}),
               std::invalid_argument);
}

TEST(Concretize, FetchControllerModelRejected) {
  testmodel::TestModelOptions opt = tour_model_options();
  opt.fetch_controller = true;
  const auto model = testmodel::build_dlx_control_model(opt);
  EXPECT_THROW((void)concretize_tour(model, {ci(OpClass::kNop)}),
               std::invalid_argument);
}

TEST(Concretize, InvalidTourInputThrows) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  EXPECT_THROW((void)concretize_tour(model, {ci(OpClass::kNop, 3, 3, 3)}),
               std::domain_error);
}

// ---------------------------------------------------------------------------
// Validation harness
// ---------------------------------------------------------------------------

TEST(Harness, CorrectImplementationPasses) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  const auto prog = concretize_tour(model, {
      ci(OpClass::kAlu, 1, 2, 3),
      ci(OpClass::kLoad, 0, 0, 2),
      ci(OpClass::kStore, 0, 2, 0),
      ci(OpClass::kStore, 0, 2, 0),  // store waits out the load-use window
      ci(OpClass::kBranch, 1),
      ci(OpClass::kNop, 0, 0, 0, true),
      ci(OpClass::kNop),
      ci(OpClass::kAlu, 0, 0, 1),
  });
  const auto result = run_validation(prog);
  EXPECT_TRUE(result.passed) << describe(result);
  EXPECT_GT(result.checkpoints_compared, 0u);
}

TEST(Harness, DirectedTourExposesMissingInterlock) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  const auto prog = concretize_tour(model, {
      ci(OpClass::kLoad, 0, 0, 2),
      ci(OpClass::kAlu, 2, 0, 1),  // stall cycle
      ci(OpClass::kAlu, 2, 0, 1),  // the hazardous consumer
      ci(OpClass::kStore, 0, 1, 0),
  });
  PipelineConfig buggy{{PipelineBug::kNoLoadUseStall}};
  const auto result = run_validation(prog, buggy);
  EXPECT_FALSE(result.passed);
  ASSERT_TRUE(result.divergence.has_value());
  // Sanity: the same program passes on the correct implementation.
  EXPECT_TRUE(run_validation(prog).passed);
}

TEST(Harness, DirectedTourExposesSquashBug) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  const auto prog = concretize_tour(model, {
      ci(OpClass::kBranch, 1),
      ci(OpClass::kAlu, 0, 0, 1, /*outcome=*/true),  // wrong path, squashed
      ci(OpClass::kAlu, 0, 0, 2),                    // wrong path, squashed
      ci(OpClass::kStore, 0, 1, 0),                  // target path
  });
  PipelineConfig buggy{{PipelineBug::kNoSquashOnTakenBranch}};
  const auto result = run_validation(prog, buggy);
  EXPECT_FALSE(result.passed);
  EXPECT_TRUE(run_validation(prog).passed);
}

TEST(Harness, DescribeFormatsOutcomes) {
  const auto model = testmodel::build_dlx_control_model(tour_model_options());
  const auto prog = concretize_tour(model, {ci(OpClass::kAlu, 1, 2, 3)});
  const auto pass = run_validation(prog);
  EXPECT_NE(describe(pass).find("PASS"), std::string::npos);
  PipelineConfig buggy{{PipelineBug::kJalLinksR30}};
  ConcretizedProgram jal;
  jal.instructions = {dlx::make_jump(dlx::Opcode::kJal, 0), dlx::make_halt()};
  const auto fail = run_validation(jal, buggy);
  EXPECT_FALSE(fail.passed);
  EXPECT_NE(describe(fail).find("FAIL"), std::string::npos);
}

TEST(Harness, CycleBudgetExhaustionIsNotADivergence) {
  // An infinite loop (J to itself) exhausts any cycle budget in both
  // models. The spec retires one instruction per step while the pipeline
  // needs several cycles, so the truncated streams have different lengths —
  // which used to be misreported as a divergence (an "exposed bug").
  ConcretizedProgram loop;
  loop.instructions = {dlx::make_jump(dlx::Opcode::kJ, -4)};
  const auto result = run_validation(loop, {}, /*max_cycles=*/256);
  EXPECT_TRUE(result.cycle_budget_exhausted);
  EXPECT_FALSE(result.divergence.has_value());
  EXPECT_FALSE(result.error_detected());
  EXPECT_FALSE(result.passed);  // inconclusive, not a pass
  EXPECT_NE(describe(result).find("INCONCLUSIVE"), std::string::npos);
  // The matching prefix was still compared.
  EXPECT_GT(result.checkpoints_compared, 0u);
}

TEST(Harness, HaltingProgramDoesNotReportBudgetExhaustion) {
  ConcretizedProgram prog;
  prog.instructions = {dlx::make_nop(), dlx::make_halt()};
  const auto result = run_validation(prog);
  EXPECT_TRUE(result.passed);
  EXPECT_FALSE(result.cycle_budget_exhausted);
  EXPECT_FALSE(result.error_detected());
}

TEST(Harness, RunOffProgramEndStillComparesByLength) {
  // Ending without a halt (PC past the program) is a genuine end of both
  // streams, not budget exhaustion: length-mismatch semantics stay intact.
  ConcretizedProgram prog;
  prog.instructions = {dlx::make_nop(), dlx::make_nop()};
  const auto result = run_validation(prog);
  EXPECT_FALSE(result.cycle_budget_exhausted);
  EXPECT_TRUE(result.passed) << describe(result);
}

// ---------------------------------------------------------------------------
// End-to-end: a transition tour of the reduced explicit test model,
// concretized and simulated — the full Figure 1 flow.
// ---------------------------------------------------------------------------

TEST(EndToEnd, ExplicitModelTourConcretizesAndValidates) {
  testmodel::TestModelOptions opt = tour_model_options();
  opt.reg_addr_bits = 1;  // keep the explicit machine small
  const auto model = testmodel::build_dlx_control_model(opt);
  const auto explicit_model = sym::extract_explicit(model.circuit, 20000);
  ASSERT_FALSE(explicit_model.truncated);

  // Transition tour SET over the explicit machine: the empty-pipeline reset
  // state is transient, so the tour is a set of reset-started sequences
  // (exactly the paper's "test set consisting of test vector sequences").
  const auto set =
      tour::greedy_transition_tour_set(explicit_model.machine, 0);
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE(tour::is_transition_tour_set(explicit_model.machine, *set));

  // Concretize and validate every sequence of the test set.
  std::size_t total_instructions = 0;
  std::vector<ConcretizedProgram> programs;
  for (const auto& seq : set->sequences) {
    std::vector<ControlInput> steps;
    steps.reserve(seq.size());
    for (fsm::InputId sym_id : seq) {
      steps.push_back(
          decode_control_input(model, explicit_model.input_bits[sym_id]));
    }
    programs.push_back(concretize_tour(model, steps));
    total_instructions += programs.back().instructions.size();
    // The correct implementation validates cleanly against the spec.
    const auto result = run_validation(programs.back());
    EXPECT_TRUE(result.passed) << describe(result);
  }
  EXPECT_GT(total_instructions, 100u);

  // And the tour-derived test set exposes representative control bugs.
  for (const PipelineBug bug : {PipelineBug::kNoLoadUseStall,
                                PipelineBug::kNoSquashOnTakenBranch,
                                PipelineBug::kNoForwardExMemA}) {
    PipelineConfig buggy{{bug}};
    bool exposed = false;
    for (const auto& prog : programs) {
      if (!run_validation(prog, buggy).passed) {
        exposed = true;
        break;
      }
    }
    EXPECT_TRUE(exposed) << "bug " << static_cast<int>(bug)
                         << " not exposed by the transition tour set";
  }
}

}  // namespace
}  // namespace simcov::validate
