// Tests for the BLIF frontend (io::BlifReader / io::BlifWriter): subset
// parsing, canonical-cover recognition, generic sum-of-products and
// OFF-set lowering semantics, the malformed-input rejection table
// (line-numbered std::invalid_argument), and the round-trip guarantee —
// write(read(x)) re-reads to an identical store::Fingerprint for the
// bundled example circuits and a randomized generated-netlist corpus.
#include "io/blif.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/fingerprint.hpp"
#include "sym/circuit_replay.hpp"

namespace simcov::io {
namespace {

BlifCircuit parse(const std::string& text) {
  return BlifReader().read_string(text, "test.blif");
}

/// Evaluates a latch-free circuit on one input vector via a 1-step replay.
std::vector<bool> eval_comb(const sym::SequentialCircuit& circuit,
                            const std::vector<bool>& inputs) {
  const std::vector<std::vector<bool>> steps{inputs};
  const auto trace = sym::replay_sequence(circuit, steps);
  EXPECT_EQ(trace.steps, 1u);
  return trace.outputs.at(0);
}

// ---- Positive parsing ------------------------------------------------------

TEST(BlifReaderTest, ParsesModelInputsOutputsLatches) {
  const auto parsed = parse(
      ".model demo\n"
      ".inputs a b\n"
      ".outputs y q\n"
      ".latch ny q 1\n"
      ".names a b y\n11 1\n"
      ".names y ny\n1 1\n"
      ".end\n");
  EXPECT_EQ(parsed.name, "demo");
  EXPECT_EQ(parsed.circuit.primary_inputs.size(), 2u);
  EXPECT_EQ(parsed.circuit.latches.size(), 1u);
  EXPECT_EQ(parsed.circuit.outputs.size(), 2u);
  EXPECT_TRUE(parsed.circuit.latches[0].init);
  EXPECT_EQ(parsed.circuit.latches[0].name, "q");
  EXPECT_FALSE(parsed.circuit.valid.has_value());
}

TEST(BlifReaderTest, CommentsContinuationsAndRepeatedDeclarations) {
  const auto parsed = parse(
      "# leading comment\n"
      ".model demo # trailing comment\n"
      ".inputs a \\\n"
      "  b\n"
      ".inputs c\n"
      "\n"
      ".outputs y\n"
      ".names a b \\\n  c y\n"
      "11- 1\n"
      "--1 1\n"
      ".end\n"
      "garbage after .end is ignored\n");
  EXPECT_EQ(parsed.circuit.primary_inputs.size(), 3u);
  // y = a&b | c
  EXPECT_TRUE(eval_comb(parsed.circuit, {true, true, false}).at(0));
  EXPECT_TRUE(eval_comb(parsed.circuit, {false, false, true}).at(0));
  EXPECT_FALSE(eval_comb(parsed.circuit, {true, false, false}).at(0));
}

TEST(BlifReaderTest, LatchFormsAndInitValues) {
  const auto parsed = parse(
      ".inputs a\n"
      ".outputs q0 q1 q2 q3\n"
      ".latch a q0\n"          // no init: defaults to 0
      ".latch a q1 3\n"        // unknown: resolves to 0
      ".latch a q2 re clk\n"   // clocking spec, no init
      ".latch a q3 fe clk 1\n" // clocking spec + init
      ".end\n");
  ASSERT_EQ(parsed.circuit.latches.size(), 4u);
  EXPECT_FALSE(parsed.circuit.latches[0].init);
  EXPECT_FALSE(parsed.circuit.latches[1].init);
  EXPECT_FALSE(parsed.circuit.latches[2].init);
  EXPECT_TRUE(parsed.circuit.latches[3].init);
}

TEST(BlifReaderTest, MissingModelDirectiveIsAllowed) {
  const auto parsed = parse(".inputs a\n.outputs a\n.end\n");
  EXPECT_TRUE(parsed.name.empty());
  EXPECT_EQ(parsed.circuit.outputs.size(), 1u);
}

// ---- Canonical-cover recognition -------------------------------------------

TEST(BlifReaderTest, CanonicalCoversLowerToSingleGates) {
  // 2 inputs + exactly one gate per canonical cover; the buffer adds none.
  const auto parsed = parse(
      ".inputs a b c\n"
      ".outputs n x o m y\n"
      ".names a n\n0 1\n"            // NOT
      ".names a b x\n01 1\n10 1\n"   // XOR
      ".names a b o\n1- 1\n-1 1\n"   // OR
      ".names a b c m\n11- 1\n0-1 1\n"  // MUX(a, b, c)
      ".names a y\n1 1\n"            // buffer: alias, no gate
      ".end\n");
  EXPECT_EQ(parsed.circuit.net.num_signals(), 3u + 4u);
  // MUX truth: a ? b : c.
  EXPECT_TRUE(eval_comb(parsed.circuit, {true, true, false}).at(3));
  EXPECT_FALSE(eval_comb(parsed.circuit, {true, false, true}).at(3));
  EXPECT_TRUE(eval_comb(parsed.circuit, {false, false, true}).at(3));
  // Buffer output tracks its source.
  EXPECT_TRUE(eval_comb(parsed.circuit, {true, false, false}).at(4));
}

TEST(BlifReaderTest, ConstantCovers) {
  const auto parsed = parse(
      ".outputs one zero empty\n"
      ".names one\n1\n"
      ".names zero\n0\n"
      ".names empty\n"  // no rows: constant 0
      ".end\n");
  const auto out = eval_comb(parsed.circuit, {});
  EXPECT_TRUE(out.at(0));
  EXPECT_FALSE(out.at(1));
  EXPECT_FALSE(out.at(2));
}

TEST(BlifReaderTest, GenericSumOfProducts) {
  // y = a&!b | !a&b&c — not a canonical shape.
  const auto parsed = parse(
      ".inputs a b c\n.outputs y\n"
      ".names a b c y\n10- 1\n011 1\n.end\n");
  for (int mask = 0; mask < 8; ++mask) {
    const bool a = (mask & 1) != 0;
    const bool b = (mask & 2) != 0;
    const bool c = (mask & 4) != 0;
    const bool expect = (a && !b) || (!a && b && c);
    EXPECT_EQ(eval_comb(parsed.circuit, {a, b, c}).at(0), expect)
        << "mask=" << mask;
  }
}

TEST(BlifReaderTest, OffSetCoverComplementsTheSum) {
  // zero = NOT(q1 | q0), written as an OFF-set cover.
  const auto parsed = parse(
      ".inputs q1 q0\n.outputs zero\n"
      ".names q1 q0 zero\n1- 0\n-1 0\n.end\n");
  EXPECT_TRUE(eval_comb(parsed.circuit, {false, false}).at(0));
  EXPECT_FALSE(eval_comb(parsed.circuit, {true, false}).at(0));
  EXPECT_FALSE(eval_comb(parsed.circuit, {false, true}).at(0));
}

TEST(BlifReaderTest, CoversLowerInFileOrderWithDepthFirstDependencies) {
  // t is used before its .names appears; the DFS must resolve it.
  const auto parsed = parse(
      ".inputs a b\n.outputs y\n"
      ".names t a y\n11 1\n"
      ".names a b t\n01 1\n10 1\n"
      ".end\n");
  EXPECT_TRUE(eval_comb(parsed.circuit, {true, false}).at(0));
  EXPECT_FALSE(eval_comb(parsed.circuit, {true, true}).at(0));
}

// ---- Malformed-input rejection table ---------------------------------------

struct NegativeCase {
  const char* label;
  const char* text;
  const char* expected;  ///< substring of the invalid_argument message
};

TEST(BlifReaderTest, NegativeInputTable) {
  const std::vector<NegativeCase> cases{
      {"truncated cover row",
       ".inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n",
       "line 4: truncated cover row"},
      {"bad cover literal",
       ".inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
       "line 4: invalid cover literal '2'"},
      {"multi-output names",
       ".inputs a b\n.outputs y\n.names a b y\n11 11\n.end\n",
       "line 4: multi-bit output plane"},
      {"bad output plane",
       ".inputs a\n.outputs y\n.names a y\n1 x\n.end\n",
       "line 4: output plane must be 0 or 1"},
      {"mixed on/off cover",
       ".inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n",
       "line 5: mixed ON-set/OFF-set cover"},
      {"bad constant row",
       ".outputs y\n.names y\nx\n.end\n",
       "line 3: output plane must be 0 or 1"},
      {"row outside a table",
       ".inputs a\n.outputs a\n11 1\n.end\n",
       "line 3: cover row outside a .names table"},
      {"duplicate cover driver",
       ".inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n",
       "line 5: duplicate driver for 'y'"},
      {"cover redefines an input",
       ".inputs a\n.outputs a\n.names a\n1\n.end\n",
       "line 3: duplicate driver for 'a'"},
      {"duplicate primary input",
       ".inputs a a\n.outputs a\n.end\n",
       "line 1: duplicate driver for 'a'"},
      {"duplicate latch output",
       ".inputs a\n.outputs q\n.latch a q 0\n.latch a q 0\n.end\n",
       "line 4: duplicate driver for 'q'"},
      {"undriven output",
       ".inputs a\n.outputs y\n.end\n",
       "line 2: undriven signal 'y' (declared output)"},
      {"duplicate output",
       ".inputs a\n.outputs a a\n.end\n",
       "line 2: duplicate output 'a'"},
      {"undriven latch input",
       ".outputs q\n.latch d q 0\n.end\n",
       "line 2: undriven signal 'd' (latch input)"},
      {"undriven cover input",
       ".inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n",
       "line 3: undriven signal 'ghost'"},
      {"combinational cycle",
       ".inputs a\n.outputs x\n.names y a x\n11 1\n.names x a y\n11 1\n"
       ".end\n",
       "combinational cycle"},
      {"self cycle",
       ".inputs a\n.outputs x\n.names x a x\n11 1\n.end\n",
       "line 3: combinational cycle through 'x'"},
      {"unsupported .subckt",
       ".inputs a\n.outputs a\n.subckt sub x=a\n.end\n",
       "line 3: unsupported construct '.subckt'"},
      {"unsupported .exdc",
       ".inputs a\n.outputs a\n.exdc\n.end\n",
       "line 3: unsupported construct '.exdc'"},
      {"second model",
       ".model a\n.model b\n.end\n",
       "line 2: second .model"},
      {"names without output",
       ".inputs a\n.outputs a\n.names\n.end\n",
       "line 3: .names needs an output signal"},
      {"latch arity",
       ".inputs a\n.outputs a\n.latch a\n.end\n",
       "line 3: .latch expects"},
      {"latch bad type",
       ".inputs a\n.outputs q\n.latch a q xx clk 0\n.end\n",
       "line 3: .latch type must be"},
      {"latch bad init",
       ".inputs a\n.outputs q\n.latch a q 7\n.end\n",
       "line 3: .latch init value must be"},
  };
  for (const auto& c : cases) {
    try {
      (void)parse(c.text);
      FAIL() << c.label << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.expected), std::string::npos)
          << c.label << ": message was: " << e.what();
      EXPECT_NE(std::string(e.what()).find("test.blif"), std::string::npos)
          << c.label << ": message lacks the source name: " << e.what();
    }
  }
}

TEST(BlifReaderTest, UnopenableFileIsRuntimeError) {
  EXPECT_THROW((void)BlifReader().read_file("/nonexistent/x.blif"),
               std::runtime_error);
}

// ---- Writer ----------------------------------------------------------------

TEST(BlifWriterTest, RejectsValidityConstrainedCircuits) {
  auto parsed = parse(".inputs a\n.outputs a\n.end\n");
  parsed.circuit.valid = parsed.circuit.primary_inputs[0];
  EXPECT_THROW((void)BlifWriter().to_string(parsed.circuit, "m"),
               std::invalid_argument);
}

TEST(BlifWriterTest, EmitsAliasedOutputsAsBufferCovers) {
  // Output name differs from the driving signal's own name.
  const auto parsed = parse(
      ".inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n");
  sym::SequentialCircuit renamed = parsed.circuit;
  renamed.outputs[0].first = "result";
  const std::string text = BlifWriter().to_string(renamed, "m");
  EXPECT_NE(text.find("result"), std::string::npos);
  const auto again = BlifReader().read_string(text);
  EXPECT_EQ(again.circuit.outputs[0].first, "result");
  EXPECT_TRUE(eval_comb(again.circuit, {true, true}).at(0));
}

// ---- Round-trip fingerprints -----------------------------------------------

void expect_roundtrip_identical(const BlifCircuit& parsed,
                                const std::string& label) {
  const std::string emitted = BlifWriter().to_string(parsed.circuit,
                                                     parsed.name);
  const auto again = BlifReader().read_string(emitted, "roundtrip.blif");
  EXPECT_EQ(store::fingerprint_circuit(parsed.circuit),
            store::fingerprint_circuit(again.circuit))
      << label << ": round-trip changed the structural fingerprint.\n"
      << emitted;
  EXPECT_EQ(again.name, parsed.name) << label;
}

TEST(BlifRoundTripTest, BundledCircuitsRoundTripToIdenticalFingerprints) {
  const std::string dir = SIMCOV_CIRCUITS_DIR;
  for (const char* name :
       {"count3.blif", "tlc.blif", "shift4.blif", "updown2.blif"}) {
    const auto parsed = BlifReader().read_file(dir + "/" + name);
    expect_roundtrip_identical(parsed, name);
  }
}

/// Randomized canonical-corpus netlist: declared signals only, covers in
/// dependency order, random shapes (canonical, generic ON/OFF, constants,
/// buffers), random latches and outputs.
std::string random_netlist(std::mt19937_64& rng) {
  auto pick = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  std::string text = ".model rand\n.inputs";
  const std::size_t num_pi = 1 + pick(4);
  std::vector<std::string> driven;
  for (std::size_t k = 0; k < num_pi; ++k) {
    driven.push_back("p" + std::to_string(k));
    text += " " + driven.back();
  }
  text += "\n";
  const std::size_t num_latch = pick(4);
  for (std::size_t j = 0; j < num_latch; ++j) {
    driven.push_back("q" + std::to_string(j));
  }
  const std::size_t num_gates = 3 + pick(12);
  for (std::size_t g = 0; g < num_gates; ++g) {
    const std::string out = "g" + std::to_string(g);
    const std::size_t arity = pick(4);  // 0..3 inputs
    text += ".names";
    for (std::size_t k = 0; k < arity; ++k) {
      text += " " + driven[pick(driven.size())];
    }
    text += " " + out + "\n";
    const std::size_t rows = arity == 0 ? pick(2) : 1 + pick(3);
    const char plane = pick(4) == 0 ? '0' : '1';  // occasional OFF-set
    for (std::size_t r = 0; r < rows; ++r) {
      std::string row;
      for (std::size_t k = 0; k < arity; ++k) {
        row += "01-"[pick(3)];
      }
      if (arity == 0) {
        text += std::string(1, plane) + "\n";
      } else {
        text += row + " " + plane + "\n";
      }
    }
    driven.push_back(out);
  }
  // Latch inputs may be any driven signal, including other latches.
  for (std::size_t j = 0; j < num_latch; ++j) {
    text += ".latch " + driven[pick(driven.size())] + " q" +
            std::to_string(j) + " " + (pick(2) == 0 ? "0" : "1") + "\n";
  }
  std::set<std::string> outs;
  const std::size_t num_outputs = 1 + pick(3);
  for (std::size_t o = 0; o < num_outputs; ++o) {
    outs.insert(driven[pick(driven.size())]);
  }
  text += ".outputs";
  for (const auto& o : outs) text += " " + o;
  text += "\n.end\n";
  return text;
}

TEST(BlifRoundTripTest, RandomizedCorpusRoundTripsToIdenticalFingerprints) {
  std::mt19937_64 rng(0xb11fu);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string text = random_netlist(rng);
    const auto parsed = BlifReader().read_string(text, "rand.blif");
    expect_roundtrip_identical(parsed,
                               "trial " + std::to_string(trial) + ":\n" +
                                   text);
  }
}

TEST(BlifRoundTripTest, EditedNetlistChangesTheFingerprint) {
  const std::string base =
      ".inputs a b\n.outputs y q\n.latch y q 0\n.names a b y\n11 1\n.end\n";
  const auto fp = [&](const std::string& text) {
    return store::fingerprint_circuit(
        BlifReader().read_string(text).circuit);
  };
  // Gate change, latch-init change, output change: all must move the key.
  EXPECT_NE(fp(base),
            fp(".inputs a b\n.outputs y q\n.latch y q 0\n"
               ".names a b y\n1- 1\n-1 1\n.end\n"));
  EXPECT_NE(fp(base),
            fp(".inputs a b\n.outputs y q\n.latch y q 1\n"
               ".names a b y\n11 1\n.end\n"));
  EXPECT_NE(fp(base), fp(".inputs a b\n.outputs y\n.latch y q 0\n"
                         ".names a b y\n11 1\n.end\n"));
}

}  // namespace
}  // namespace simcov::io
