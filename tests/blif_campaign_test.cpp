// End-to-end campaign tests over the BLIF frontend: run_campaign on a
// bundled netlist (explicit and symbolic backends), determinism across
// thread counts and the packed-replay toggle, content-addressed store
// reuse (warm hit on re-run, miss after a netlist edit, hit after a pure
// rename), VCD export covering every committed sequence, and the
// external-circuit restrictions (no DLX bug injection).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/report.hpp"

namespace simcov::core {
namespace {

namespace fs = std::filesystem;

std::string bundled(const char* name) {
  return std::string(SIMCOV_CIRCUITS_DIR) + "/" + name;
}

/// Fresh scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("simcov_blif_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int n = 0;
    return n;
  }
  std::string str(const char* leaf) const { return (path / leaf).string(); }
};

CampaignOptions blif_options(const std::string& circuit) {
  CampaignOptions options;
  options.circuit_path = circuit;
  options.method = TestMethod::kTransitionTourSet;
  options.threads = 1;
  options.collect_coverage_telemetry = true;
  return options;
}

/// Report with timings and store activity erased — the fields that may
/// legitimately differ between semantically identical runs.
std::string semantic_fingerprint(CampaignResult result) {
  result.timings = {};
  result.store_stats.reset();
  result.metrics.reset();
  return to_json(result);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(BlifCampaignTest, ExplicitBackendRunsEndToEnd) {
  const auto result = run_campaign(blif_options(bundled("count3.blif")), {});
  EXPECT_EQ(result.backend, model::Backend::kExplicit);
  EXPECT_TRUE(result.clean_pass);
  EXPECT_GT(result.sequences, 0u);
  EXPECT_GT(result.test_length, 0u);
  EXPECT_EQ(result.model_states, 8u);  // 3-bit counter: all states reachable
  EXPECT_DOUBLE_EQ(result.state_coverage, 1.0);
  EXPECT_DOUBLE_EQ(result.transition_coverage, 1.0);
  EXPECT_EQ(result.latches, 3u);
  EXPECT_EQ(result.primary_inputs, 2u);
  // External circuits have no DLX programs behind them.
  EXPECT_EQ(result.total_instructions, 0u);
}

TEST(BlifCampaignTest, SymbolicBackendAgreesWithExplicit) {
  auto options = blif_options(bundled("tlc.blif"));
  const auto explicit_result = run_campaign(options, {});
  options.backend = BackendChoice::kSymbolic;
  const auto symbolic_result = run_campaign(options, {});
  EXPECT_EQ(symbolic_result.backend, model::Backend::kSymbolic);
  EXPECT_TRUE(symbolic_result.clean_pass);
  EXPECT_EQ(symbolic_result.sequences, explicit_result.sequences);
  EXPECT_EQ(symbolic_result.test_length, explicit_result.test_length);
  EXPECT_EQ(symbolic_result.model_states, explicit_result.model_states);
  EXPECT_EQ(symbolic_result.state_coverage, explicit_result.state_coverage);
  EXPECT_EQ(symbolic_result.transition_coverage,
            explicit_result.transition_coverage);
}

TEST(BlifCampaignTest, ReportIsIdenticalAcrossThreadCounts) {
  auto options = blif_options(bundled("updown2.blif"));
  const std::string reference = semantic_fingerprint(run_campaign(options, {}));
  options.threads = 3;
  EXPECT_EQ(semantic_fingerprint(run_campaign(options, {})), reference);
}

TEST(BlifCampaignTest, PackedReplayIsVerdictIdenticalToScalar) {
  auto options = blif_options(bundled("shift4.blif"));
  options.packed = false;
  const std::string scalar = semantic_fingerprint(run_campaign(options, {}));
  options.packed = true;
  EXPECT_EQ(semantic_fingerprint(run_campaign(options, {})), scalar);
}

TEST(BlifCampaignTest, StoreHitsWarmOnRerunAndMissesAfterNetlistEdit) {
  TempDir tmp;
  const std::string netlist = tmp.str("edit_me.blif");
  fs::copy_file(bundled("count3.blif"), netlist);

  auto options = blif_options(netlist);
  options.store_dir = tmp.str("store");

  const auto cold = run_campaign(options, {});
  ASSERT_TRUE(cold.store_stats.has_value());
  EXPECT_GT(cold.store_stats->misses, 0u);
  EXPECT_EQ(cold.store_stats->hits, 0u);

  const auto warm = run_campaign(options, {});
  ASSERT_TRUE(warm.store_stats.has_value());
  EXPECT_GT(warm.store_stats->hits, 0u);
  EXPECT_EQ(warm.store_stats->misses, 0u);
  EXPECT_EQ(semantic_fingerprint(warm), semantic_fingerprint(cold));

  // Keys address netlist *content*: renaming the file still hits...
  const std::string renamed = tmp.str("renamed.blif");
  fs::copy_file(netlist, renamed);
  auto moved = options;
  moved.circuit_path = renamed;
  const auto rename_run = run_campaign(moved, {});
  ASSERT_TRUE(rename_run.store_stats.has_value());
  EXPECT_GT(rename_run.store_stats->hits, 0u);
  EXPECT_EQ(rename_run.store_stats->misses, 0u);

  // ...while any semantic edit (flip a latch reset value) misses.
  std::string text = slurp(netlist);
  const auto pos = text.find(".latch n0 q0 0");
  ASSERT_NE(pos, std::string::npos) << text;
  text.replace(pos, 14, ".latch n0 q0 1");
  std::ofstream(netlist, std::ios::binary) << text;
  const auto edited = run_campaign(options, {});
  ASSERT_TRUE(edited.store_stats.has_value());
  EXPECT_GT(edited.store_stats->misses, 0u);
  EXPECT_NE(semantic_fingerprint(edited), semantic_fingerprint(cold));
}

TEST(BlifCampaignTest, VcdExportCoversEveryCommittedSequence) {
  TempDir tmp;
  auto options = blif_options(bundled("tlc.blif"));
  options.vcd_path = tmp.str("tlc.vcd");
  const auto result = run_campaign(options, {});
  const std::string text = slurp(options.vcd_path);

  std::size_t sequence_scopes = 0;
  std::istringstream in(text);
  std::string line;
  long last_time = -1;
  while (std::getline(in, line)) {
    if (line.rfind("$scope module seq", 0) == 0) ++sequence_scopes;
    if (!line.empty() && line[0] == '#') {
      const long t = std::stol(line.substr(1));
      EXPECT_GT(t, last_time);
      last_time = t;
    }
  }
  EXPECT_EQ(sequence_scopes, result.sequences);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  // Total timeline: one tick per committed cycle plus one trailing tick
  // per sequence showing the final latch state.
  EXPECT_EQ(static_cast<std::size_t>(last_time),
            result.test_length + result.sequences);

  // The export is deterministic: a second run reproduces it byte for byte.
  auto again = options;
  again.vcd_path = tmp.str("tlc_again.vcd");
  (void)run_campaign(again, {});
  EXPECT_EQ(slurp(again.vcd_path), text);
}

TEST(BlifCampaignTest, RejectsBugInjectionForExternalCircuits) {
  const dlx::PipelineBug one_bug[] = {dlx::PipelineBug::kNoIdBypass};
  EXPECT_THROW((void)run_campaign(blif_options(bundled("count3.blif")),
                                  one_bug),
               std::invalid_argument);
}

TEST(BlifCampaignTest, MissingNetlistFileFailsCleanly) {
  EXPECT_THROW((void)run_campaign(blif_options("/nonexistent/x.blif"), {}),
               std::runtime_error);
}

}  // namespace
}  // namespace simcov::core
