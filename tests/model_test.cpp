// Cross-backend differential tests for the TestModel seam: an explicitly
// enumerated model and its implicit (BDD) counterpart must agree on every
// observable of the interface — packed keys, edge lists, reachable counts,
// and tour coverage statistics. This is the contract that lets
// core::run_campaign pick a backend by model size without changing results.
#include "model/encode.hpp"
#include "model/explicit_model.hpp"
#include "model/symbolic_model.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "fsm/mealy.hpp"
#include "sym/symbolic_fsm.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::model {
namespace {

testmodel::TestModelOptions tiny_model_options() {
  testmodel::TestModelOptions opt;
  opt.output_sync_latches = false;
  opt.fetch_controller = false;
  opt.aux_outputs = false;
  opt.onehot_opclass = false;
  opt.interlock_registers = false;
  opt.reg_addr_bits = 1;
  opt.reduced_isa = true;
  return opt;
}

/// Walks the reachable state graph of `a` (BFS over packed keys) and checks
/// `b` produces the identical edge list at every state, and that both report
/// reachable counts matching the enumeration.
void expect_models_agree(TestModel& a, TestModel& b) {
  ASSERT_EQ(a.reset_state(), b.reset_state());
  EXPECT_DOUBLE_EQ(a.count_reachable_states(), b.count_reachable_states());
  EXPECT_DOUBLE_EQ(a.count_reachable_transitions(),
                   b.count_reachable_transitions());

  std::unordered_set<std::uint64_t> seen{a.reset_state()};
  std::deque<std::uint64_t> queue{a.reset_state()};
  std::size_t edges_total = 0;
  while (!queue.empty()) {
    const std::uint64_t s = queue.front();
    queue.pop_front();
    const auto ea = a.edges(s);
    const auto eb = b.edges(s);
    ASSERT_EQ(ea.size(), eb.size()) << "edge count differs at state " << s;
    for (std::size_t k = 0; k < ea.size(); ++k) {
      EXPECT_EQ(ea[k].input, eb[k].input) << "state " << s << " edge " << k;
      EXPECT_EQ(ea[k].next, eb[k].next) << "state " << s << " edge " << k;
      EXPECT_EQ(a.step(s, ea[k].input), b.step(s, ea[k].input));
      EXPECT_EQ(a.input_vector(ea[k].input), b.input_vector(eb[k].input));
    }
    edges_total += ea.size();
    for (const auto& e : ea) {
      if (seen.insert(e.next).second) queue.push_back(e.next);
    }
  }
  // The enumerated graph must match what both backends counted.
  EXPECT_DOUBLE_EQ(static_cast<double>(seen.size()),
                   a.count_reachable_states());
  EXPECT_DOUBLE_EQ(static_cast<double>(edges_total),
                   a.count_reachable_transitions());
}

/// Both backends generate a complete transition tour and report the
/// identical coverage statistics; each backend's tour replays on the other
/// with the same result (the coverage definition is representation-blind).
void expect_tours_agree(TestModel& a, TestModel& b) {
  auto ta = a.transition_tour();
  auto tb = b.transition_tour();
  EXPECT_TRUE(ta.complete);
  EXPECT_TRUE(tb.complete);
  EXPECT_EQ(ta.coverage, tb.coverage);
  EXPECT_EQ(ta.coverage.state_coverage(), 1.0);
  EXPECT_EQ(ta.coverage.transition_coverage(), 1.0);
  // Cross-replay: a tour generated on one backend evaluates identically on
  // the other.
  EXPECT_EQ(b.evaluate(ta.tour), ta.coverage);
  EXPECT_EQ(a.evaluate(tb.tour), tb.coverage);
}

TEST(ModelDifferential, RandomMachinesExplicitVsSymbolicEncoding) {
  const std::vector<std::tuple<unsigned, unsigned, std::uint64_t>> corpus{
      {5, 2, 1}, {12, 3, 2}, {23, 2, 3}, {40, 4, 4}, {64, 3, 5},
  };
  for (const auto& [states, inputs, seed] : corpus) {
    SCOPED_TRACE(testing::Message() << "machine " << states << "x" << inputs
                                    << " seed " << seed);
    const auto machine =
        fsm::random_connected_machine(states, inputs, 4, seed);
    ExplicitModel explicit_model(machine, 0);
    const auto circuit = encode_circuit(machine, 0);
    SymbolicModel symbolic_model(circuit);

    EXPECT_EQ(explicit_model.backend(), Backend::kExplicit);
    EXPECT_EQ(symbolic_model.backend(), Backend::kSymbolic);
    EXPECT_EQ(explicit_model.state_bits(), symbolic_model.state_bits());
    EXPECT_EQ(explicit_model.input_bits(), symbolic_model.input_bits());
    expect_models_agree(explicit_model, symbolic_model);
    expect_tours_agree(explicit_model, symbolic_model);
  }
}

TEST(ModelDifferential, RandomWalksAgreeAcrossBackends) {
  // The walk RNG draws are backend-local, so the step sequences need not
  // match — but replaying one backend's walk on the other must reproduce
  // its coverage statistics exactly.
  const auto machine = fsm::random_connected_machine(17, 3, 4, 7);
  ExplicitModel explicit_model(machine, 0);
  const auto circuit = encode_circuit(machine, 0);
  SymbolicModel symbolic_model(circuit);

  auto we = explicit_model.random_walk(200, 42);
  auto ws = symbolic_model.random_walk(200, 42);
  EXPECT_EQ(we.steps, 200u);
  EXPECT_EQ(ws.steps, 200u);
  EXPECT_EQ(symbolic_model.evaluate(we.tour), we.coverage);
  EXPECT_EQ(explicit_model.evaluate(ws.tour), ws.coverage);
}

TEST(ModelDifferential, ReducedDlxControlModel) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  auto extraction = sym::extract_explicit(model.circuit, 100000);
  ASSERT_FALSE(extraction.truncated);
  ExplicitModel explicit_model(std::move(extraction));
  SymbolicModel symbolic_model(model.circuit);

  expect_models_agree(explicit_model, symbolic_model);
  expect_tours_agree(explicit_model, symbolic_model);
}

TEST(TestModelKeys, PackUnpackRoundTrip) {
  const std::vector<bool> bits{true, false, true, true, false};
  const std::uint64_t key = TestModel::pack_bits(bits);
  EXPECT_EQ(key, 0b01101u);
  EXPECT_EQ(TestModel::unpack_bits(key, 5), bits);
  EXPECT_THROW(TestModel::pack_bits(std::vector<bool>(64, true)),
               std::invalid_argument);
}

TEST(ExplicitModelAdapter, RejectsTruncatedExtraction) {
  const auto model = testmodel::build_dlx_control_model(tiny_model_options());
  auto truncated = sym::extract_explicit(model.circuit, 4);
  ASSERT_TRUE(truncated.truncated);
  EXPECT_THROW(ExplicitModel{std::move(truncated)}, std::invalid_argument);
}

TEST(CoverageTrackerTest, CountsDistinctStatesAndTransitions) {
  CoverageTracker tracker(3.0, 4.0);
  tracker.visit_state(7);
  tracker.visit_state(7);
  tracker.visit_state(9);
  tracker.cover_transition(7, 0);
  tracker.cover_transition(7, 1);
  tracker.cover_transition(7, 1);
  const auto stats = tracker.stats();
  EXPECT_DOUBLE_EQ(stats.states_visited, 2.0);
  EXPECT_DOUBLE_EQ(stats.transitions_covered, 2.0);
  EXPECT_DOUBLE_EQ(stats.state_coverage(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.transition_coverage(), 0.5);
  EXPECT_FALSE(stats.complete());
}

}  // namespace
}  // namespace simcov::model
