// Tests for characterizing sets, transition covers, and the W-method test
// suite — the classical conformance-testing baseline.
#include "distinguish/wmethod.hpp"

#include <gtest/gtest.h>

#include "errmodel/errmodel.hpp"
#include "tour/tour.hpp"

namespace simcov::distinguish {
namespace {

using fsm::InputId;
using fsm::MealyMachine;
using fsm::StateId;

MealyMachine three_state_machine() {
  // Strongly connected, pairwise distinguishable.
  MealyMachine m(3, 2);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 2, 0);
  m.set_transition(2, 0, 0, 1);
  m.set_transition(0, 1, 0, 2);
  m.set_transition(1, 1, 1, 3);
  m.set_transition(2, 1, 2, 4);
  return m;
}

TEST(CharacterizingSet, SeparatesEveryPair) {
  const MealyMachine m = three_state_machine();
  const auto w = characterizing_set(m, 0);
  ASSERT_TRUE(w.has_value());
  // Each distinct pair must be separated by some experiment.
  for (StateId s = 0; s < 3; ++s) {
    for (StateId t = s + 1; t < 3; ++t) {
      bool separated = false;
      for (const auto& seq : *w) {
        separated = separated || (m.run(seq, s) != m.run(seq, t));
      }
      EXPECT_TRUE(separated) << "pair " << s << "," << t;
    }
  }
}

TEST(CharacterizingSet, NoneForEquivalentStates) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 7);
  m.set_transition(1, 0, 0, 7);  // behaviourally identical swap
  EXPECT_FALSE(characterizing_set(m, 0).has_value());
}

TEST(CharacterizingSet, SingleStateMachine) {
  MealyMachine m(1, 1);
  m.set_transition(0, 0, 0, 0);
  const auto w = characterizing_set(m, 0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 1u);
  EXPECT_TRUE((*w)[0].empty());
}

TEST(TransitionCover, ReachesEveryTransition) {
  const MealyMachine m = three_state_machine();
  const auto cover = transition_cover(m, 0);
  // Empty prefix + 6 transitions.
  EXPECT_EQ(cover.size(), 7u);
  // Each non-empty sequence must be executable and its last step must be a
  // distinct (state, input) pair.
  std::set<std::pair<StateId, InputId>> covered;
  for (const auto& seq : cover) {
    if (seq.empty()) continue;
    StateId at = 0;
    for (std::size_t k = 0; k + 1 < seq.size(); ++k) {
      at = m.transition(at, seq[k])->next;
    }
    covered.insert({at, seq.back()});
    EXPECT_TRUE(m.transition(at, seq.back()).has_value());
  }
  EXPECT_EQ(covered.size(), 6u);
}

TEST(WMethod, SuiteDetectsAllSingleFaults) {
  const MealyMachine m = three_state_machine();
  const auto suite = wmethod_test_suite(m, 0);
  ASSERT_TRUE(suite.has_value());
  // The W-method guarantee: every output and transfer fault is detected,
  // with no side conditions (unlike transition tours).
  const auto outputs =
      errmodel::enumerate_output_errors(m, 0, m.output_alphabet_size());
  const auto transfers = errmodel::enumerate_transfer_errors(m, 0);
  auto all = outputs;
  all.insert(all.end(), transfers.begin(), transfers.end());
  for (const auto& mut : all) {
    bool exposed = false;
    for (const auto& seq : suite->sequences) {
      if (errmodel::exposes(m, mut, 0, seq)) {
        exposed = true;
        break;
      }
    }
    EXPECT_TRUE(exposed);
  }
}

TEST(WMethod, SuiteLargerThanTour) {
  const MealyMachine m = three_state_machine();
  const auto suite = wmethod_test_suite(m, 0);
  const auto tour = tour::minimum_transition_tour(m, 0);
  ASSERT_TRUE(suite.has_value());
  ASSERT_TRUE(tour.has_value());
  // The completeness guarantee costs test length: P x W outweighs one tour.
  EXPECT_GT(suite->total_length(), tour->length());
  EXPECT_GT(suite->sequences.size(), 1u);
}

TEST(WMethod, NoneWhenStatesEquivalent) {
  MealyMachine m(2, 1);
  m.set_transition(0, 0, 1, 7);
  m.set_transition(1, 0, 0, 7);
  EXPECT_FALSE(wmethod_test_suite(m, 0).has_value());
}

TEST(WMethod, HandlesPartialMachines) {
  MealyMachine m(3, 2);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 2, 1);
  m.set_transition(2, 0, 0, 2);
  m.set_transition(0, 1, 0, 3);  // input 1 defined only in state 0
  const auto suite = wmethod_test_suite(m, 0);
  ASSERT_TRUE(suite.has_value());
  // Every sequence must be executable from reset.
  for (const auto& seq : suite->sequences) {
    EXPECT_NO_THROW((void)m.run(seq, 0));
  }
}

// Property: on random machines with distinguishable states, the W-method
// suite detects every sampled fault — including ones a plain transition
// tour misses.
class WMethodProperty : public ::testing::TestWithParam<int> {};

TEST_P(WMethodProperty, CompleteOnRandomMachines) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  fsm::MealyMachine m = fsm::random_connected_machine(6, 2, 3, seed);
  const auto suite = wmethod_test_suite(m, 0);
  if (!suite.has_value()) return;  // equivalent states: skip this seed
  const auto mutants =
      errmodel::sample_mutations(m, 0, m.output_alphabet_size(), 120, seed);
  std::size_t exposed = 0;
  for (const auto& mut : mutants) {
    for (const auto& seq : suite->sequences) {
      if (errmodel::exposes(m, mut, 0, seq)) {
        ++exposed;
        break;
      }
    }
  }
  EXPECT_EQ(exposed, mutants.size())
      << "W-method must expose every single fault";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WMethodProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace simcov::distinguish
