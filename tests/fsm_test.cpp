// Tests for explicit Mealy machines: construction, simulation, reachability,
// equivalence checking, and the nondeterministic variant used by abstraction.
#include "fsm/mealy.hpp"
#include "fsm/nondet.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simcov::fsm {
namespace {

/// A small two-state toggle machine: input 0 toggles (output = new state id),
/// input 1 holds (output 2).
MealyMachine toggle_machine() {
  MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 1);
  m.set_transition(1, 0, 0, 0);
  m.set_transition(0, 1, 0, 2);
  m.set_transition(1, 1, 1, 2);
  return m;
}

TEST(Mealy, ConstructionAndAccessors) {
  MealyMachine m(3, 2);
  EXPECT_EQ(m.num_states(), 3u);
  EXPECT_EQ(m.num_inputs(), 2u);
  EXPECT_FALSE(m.is_complete());
  EXPECT_EQ(m.num_defined_transitions(), 0u);
  EXPECT_FALSE(m.transition(0, 0).has_value());
}

TEST(Mealy, SetAndClearTransitions) {
  MealyMachine m(2, 2);
  m.set_transition(0, 1, 1, 7);
  ASSERT_TRUE(m.transition(0, 1).has_value());
  EXPECT_EQ(m.transition(0, 1)->next, 1u);
  EXPECT_EQ(m.transition(0, 1)->output, 7u);
  EXPECT_EQ(m.num_defined_transitions(), 1u);
  // Redefining doesn't double-count.
  m.set_transition(0, 1, 0, 3);
  EXPECT_EQ(m.num_defined_transitions(), 1u);
  m.clear_transition(0, 1);
  EXPECT_FALSE(m.transition(0, 1).has_value());
  EXPECT_EQ(m.num_defined_transitions(), 0u);
}

TEST(Mealy, BoundsChecking) {
  MealyMachine m(2, 2);
  EXPECT_THROW(m.set_transition(2, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(m.set_transition(0, 2, 0, 0), std::out_of_range);
  EXPECT_THROW(m.set_transition(0, 0, 9, 0), std::out_of_range);
  EXPECT_THROW((void)m.transition(5, 0), std::out_of_range);
  EXPECT_THROW(m.set_initial_state(4), std::out_of_range);
}

TEST(Mealy, CompletenessDetection) {
  MealyMachine m = toggle_machine();
  EXPECT_TRUE(m.is_complete());
  m.clear_transition(1, 1);
  EXPECT_FALSE(m.is_complete());
}

TEST(Mealy, OutputAlphabetSize) {
  EXPECT_EQ(toggle_machine().output_alphabet_size(), 3u);
  MealyMachine empty(2, 2);
  EXPECT_EQ(empty.output_alphabet_size(), 0u);
}

TEST(Mealy, RunProducesOutputTrace) {
  const MealyMachine m = toggle_machine();
  const std::vector<InputId> seq{0, 0, 1, 0};
  const auto out = m.run(seq, 0);
  EXPECT_EQ(out, (std::vector<OutputId>{1, 0, 2, 1}));
  EXPECT_EQ(m.run_to_state(seq, 0), 1u);
}

TEST(Mealy, RunOnUndefinedTransitionThrows) {
  MealyMachine m(2, 2);
  m.set_transition(0, 0, 1, 0);
  const std::vector<InputId> seq{0, 0};
  EXPECT_THROW((void)m.run(seq, 0), std::domain_error);
  EXPECT_THROW((void)m.run_to_state(seq, 0), std::domain_error);
}

TEST(Mealy, ReachabilityIgnoresUnreachableIsland) {
  MealyMachine m(4, 1);
  m.set_transition(0, 0, 1, 0);
  m.set_transition(1, 0, 0, 0);
  m.set_transition(2, 0, 3, 0);  // island 2 -> 3
  m.set_transition(3, 0, 2, 0);
  const auto seen = m.reachable_states(0);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_FALSE(seen[2]);
  EXPECT_FALSE(seen[3]);
  EXPECT_EQ(m.num_reachable_states(0), 2u);
  const auto trans = m.reachable_transitions(0);
  EXPECT_EQ(trans.size(), 2u);
}

TEST(Mealy, DefaultNamesAndCustomNames) {
  MealyMachine m(2, 2);
  EXPECT_EQ(m.state_name(1), "s1");
  EXPECT_EQ(m.input_name(0), "i0");
  m.set_state_name(1, "EXEC");
  m.set_input_name(0, "nop");
  EXPECT_EQ(m.state_name(1), "EXEC");
  EXPECT_EQ(m.input_name(0), "nop");
}

// ---------------------------------------------------------------------------
// Equivalence
// ---------------------------------------------------------------------------

TEST(Equivalence, IdenticalMachinesAreEquivalent) {
  const MealyMachine m = toggle_machine();
  const auto r = check_equivalence(m, m);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.counterexample.empty());
}

TEST(Equivalence, OutputMismatchYieldsShortestCounterexample) {
  const MealyMachine a = toggle_machine();
  MealyMachine b = toggle_machine();
  // Corrupt the output of transition (1, 0): reachable after one input 0.
  b.set_transition(1, 0, 0, 9);
  const auto r = check_equivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  EXPECT_EQ(r.counterexample, (std::vector<InputId>{0, 0}));
  // The counterexample indeed separates the machines.
  EXPECT_NE(a.run(r.counterexample), b.run(r.counterexample));
}

TEST(Equivalence, TransferErrorDetectedViaLaterOutputs) {
  const MealyMachine a = toggle_machine();
  MealyMachine b = toggle_machine();
  // Transfer error: (0,0) goes to 0 instead of 1 but keeps output 1.
  b.set_transition(0, 0, 0, 1);
  const auto r = check_equivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  EXPECT_NE(a.run(r.counterexample), b.run(r.counterexample));
}

TEST(Equivalence, StateRenamingIsInvisible) {
  // Same behavior with permuted state ids.
  MealyMachine a = toggle_machine();
  MealyMachine b(2, 2);
  // State 0 <-> 1 swapped, outputs adjusted to match behavior from initial.
  b.set_transition(1, 0, 0, 1);
  b.set_transition(0, 0, 1, 0);
  b.set_transition(1, 1, 1, 2);
  b.set_transition(0, 1, 0, 2);
  b.set_initial_state(1);
  EXPECT_TRUE(check_equivalence(a, b).equivalent);
}

TEST(Equivalence, DefinednessMismatchIsACounterexample) {
  MealyMachine a = toggle_machine();
  MealyMachine b = toggle_machine();
  b.clear_transition(1, 1);
  const auto r = check_equivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  // Counterexample must reach (1,1): e.g. <0, 1>.
  EXPECT_EQ(r.counterexample.size(), 2u);
}

TEST(Equivalence, DifferentInputAlphabetsThrow) {
  MealyMachine a(2, 2);
  MealyMachine b(2, 3);
  EXPECT_THROW((void)check_equivalence(a, b), std::invalid_argument);
}

// Property: a random machine is equivalent to itself from every state, and a
// machine with one corrupted reachable transition output is never equivalent.
class EquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceProperty, CorruptedOutputAlwaysDetected) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const MealyMachine a = random_connected_machine(8, 3, 4, seed);
  EXPECT_TRUE(check_equivalence(a, a).equivalent);
  std::mt19937_64 rng(seed ^ 0xabcdef);
  MealyMachine b = a;
  const auto trans = a.reachable_transitions(0);
  const auto& pick = trans[rng() % trans.size()];
  const auto t = a.transition(pick.state, pick.input).value();
  b.set_transition(pick.state, pick.input, t.next,
                   t.output + 1);  // guaranteed-different output
  const auto r = check_equivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  EXPECT_NE(a.run(r.counterexample), b.run(r.counterexample));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty, ::testing::Range(0, 15));

TEST(RandomMachine, AllStatesReachableAndComplete) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto m = random_connected_machine(12, 3, 4, seed);
    EXPECT_TRUE(m.is_complete());
    EXPECT_EQ(m.num_reachable_states(0), 12u);
  }
}

TEST(RandomMachine, DeterministicInSeed) {
  const auto a = random_connected_machine(6, 2, 3, 42);
  const auto b = random_connected_machine(6, 2, 3, 42);
  EXPECT_TRUE(check_equivalence(a, b).equivalent);
}

TEST(RandomMachine, ZeroSizesThrow) {
  EXPECT_THROW((void)random_connected_machine(0, 1, 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)random_connected_machine(1, 0, 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)random_connected_machine(1, 1, 0, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Nondeterministic machines
// ---------------------------------------------------------------------------

TEST(Nondet, DuplicateEdgesCollapse) {
  NondetMealyMachine m(2, 1);
  m.add_transition(0, 0, 1, 5);
  m.add_transition(0, 0, 1, 5);
  EXPECT_EQ(m.transitions(0, 0).size(), 1u);
}

TEST(Nondet, DetectsOutputNondeterminism) {
  NondetMealyMachine m(2, 2);
  m.add_transition(0, 0, 1, 0);
  m.add_transition(0, 0, 1, 1);  // same (s,i), different output
  m.add_transition(0, 1, 0, 0);
  m.add_transition(0, 1, 1, 0);  // same output: target nondeterminism only
  EXPECT_FALSE(m.is_deterministic());
  EXPECT_TRUE(m.has_output_nondeterminism());
  const auto pairs = m.output_nondeterministic_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (TransitionRef{0, 0}));
}

TEST(Nondet, ToDeterministicSucceedsWhenSingleValued) {
  NondetMealyMachine m(2, 2);
  m.add_transition(0, 0, 1, 3);
  m.add_transition(1, 0, 0, 4);
  m.set_initial_state(1);
  const auto det = m.to_deterministic();
  ASSERT_TRUE(det.has_value());
  EXPECT_EQ(det->initial_state(), 1u);
  EXPECT_EQ(det->transition(0, 0)->output, 3u);
  EXPECT_FALSE(det->transition(0, 1).has_value());
}

TEST(Nondet, ToDeterministicFailsOnMultipleEdges) {
  NondetMealyMachine m(2, 1);
  m.add_transition(0, 0, 0, 0);
  m.add_transition(0, 0, 1, 0);
  EXPECT_FALSE(m.to_deterministic().has_value());
}

TEST(Nondet, BoundsChecking) {
  NondetMealyMachine m(2, 2);
  EXPECT_THROW(m.add_transition(2, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(m.add_transition(0, 3, 0, 0), std::out_of_range);
  EXPECT_THROW(m.add_transition(0, 0, 5, 0), std::out_of_range);
  EXPECT_THROW(m.set_initial_state(9), std::out_of_range);
  EXPECT_THROW((void)m.transitions(4, 0), std::out_of_range);
}

}  // namespace
}  // namespace simcov::fsm
