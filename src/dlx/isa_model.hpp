// Architectural (ISA-level) DLX simulator — the "golden" specification model.
//
// This is the behaviour-level description of Figure 1: one instruction per
// step, no timing. The validation harness runs it in lockstep with the
// pipelined implementation and compares RetireInfo checkpoints.
//
// Memory arrangement is Harvard-style: instructions live in a read-only
// word-array, data in a separate byte-addressable RAM (little-endian).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dlx/arch.hpp"
#include "dlx/isa.hpp"

namespace simcov::dlx {

class IsaModel {
 public:
  /// @param program   instruction words; instruction i sits at address 4*i.
  /// @param data_size data memory size in bytes (must be a multiple of 4).
  explicit IsaModel(std::vector<std::uint32_t> program,
                    std::size_t data_size = 1 << 16);

  [[nodiscard]] const ArchState& state() const { return state_; }
  [[nodiscard]] std::uint32_t reg(unsigned r) const { return state_.regs[r]; }
  [[nodiscard]] std::uint32_t pc() const { return state_.pc; }
  [[nodiscard]] const Psw& psw() const { return state_.psw; }
  [[nodiscard]] bool halted() const { return halted_; }

  /// Test setup: preset a register / data word.
  void set_reg(unsigned r, std::uint32_t value);
  void poke_word(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] std::uint32_t peek_word(std::uint32_t addr) const;

  /// Executes one instruction. Returns the checkpoint record, or nullopt if
  /// the machine has halted or the PC ran past the program.
  std::optional<RetireInfo> step();

  /// Runs until halt or `max_steps`; returns all checkpoints.
  std::vector<RetireInfo> run(std::size_t max_steps = 100000);

 private:
  [[nodiscard]] std::uint32_t load(std::uint32_t addr, unsigned size,
                                   bool sign_extend) const;
  void store(std::uint32_t addr, std::uint32_t value, unsigned size);

  std::vector<std::uint32_t> program_;
  std::vector<std::uint8_t> data_;
  ArchState state_;
  bool halted_ = false;
};

/// Pure ALU semantics shared by the ISA model and the pipeline EX stage.
std::uint32_t alu_eval(Opcode op, std::uint32_t a, std::uint32_t b);

}  // namespace simcov::dlx
