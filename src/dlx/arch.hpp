// Shared architectural types for the DLX models.
//
// Both the ISA-level golden model (spec side of Figure 1) and the pipelined
// implementation emit a stream of RetireInfo records — one per completed
// instruction. The validation harness compares these streams at each
// checkpoint ("at the completion of each instruction", Section 2).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "dlx/isa.hpp"

namespace simcov::dlx {

/// Processor Status Word: condition flags updated by ALU-class instructions.
/// The paper keeps the PSW in the test model because a later branch may
/// consume it (the s2 "interaction state" of Section 5.1); here it is
/// architecturally visible so Requirement 5 (observability) holds.
struct Psw {
  bool zero = false;
  bool negative = false;

  friend bool operator==(const Psw&, const Psw&) = default;
};

struct MemWrite {
  std::uint32_t addr = 0;
  std::uint32_t value = 0;
  std::uint8_t size = 4;  ///< bytes: 1, 2 or 4

  friend bool operator==(const MemWrite&, const MemWrite&) = default;
};

/// Checkpoint record emitted when an instruction completes.
struct RetireInfo {
  std::uint32_t pc = 0;
  Instruction ins;
  std::optional<std::pair<std::uint8_t, std::uint32_t>> reg_write;
  std::optional<MemWrite> mem_write;
  std::uint32_t next_pc = 0;
  Psw psw;  ///< PSW after this instruction
  bool halted = false;

  friend bool operator==(const RetireInfo&, const RetireInfo&) = default;
};

/// Architectural register/PC state snapshot.
struct ArchState {
  std::uint32_t pc = 0;
  std::array<std::uint32_t, kNumRegisters> regs{};
  Psw psw;

  friend bool operator==(const ArchState&, const ArchState&) = default;
};

}  // namespace simcov::dlx
