// Two-pass text assembler for the DLX integer subset.
//
// Accepts the same mnemonic syntax `disassemble` emits, plus labels,
// comments and a few directives, so test programs can be written as text:
//
//     ; compute r3 = r1 + r2, store it, and loop
//     start:  addi r1, r0, 5
//             addi r2, r0, 7
//             add  r3, r1, r2
//             sw   16(r0), r3
//             beqz r0, start      ; branch offsets may also be labels
//             halt
//
// Syntax:
//   * one instruction per line; `;` or `#` start a comment
//   * `label:` defines a label at the current address (may share a line
//     with an instruction)
//   * branch/jump targets may be numeric byte offsets or label names
//     (labels are resolved to PC-relative offsets per DLX semantics)
//   * `.word <value>` emits a raw 32-bit word
//
// Errors are reported with 1-based line numbers.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "dlx/isa.hpp"

namespace simcov::dlx {

/// Error with source line attribution.
class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct AssembledProgram {
  std::vector<std::uint32_t> words;
  std::map<std::string, std::uint32_t> labels;  ///< label -> byte address

  [[nodiscard]] std::vector<Instruction> instructions() const;
};

/// Assembles `source` (the full program text). Throws AssemblyError.
AssembledProgram assemble(const std::string& source);

/// Disassembles a program with addresses, one instruction per line.
std::string disassemble_program(const std::vector<std::uint32_t>& words);

}  // namespace simcov::dlx
