#include "dlx/pipeline.hpp"

#include <stdexcept>

#include "dlx/isa_model.hpp"  // alu_eval

namespace simcov::dlx {

namespace {

/// The architectural destination register of an instruction, with the
/// JAL-link bug applied if configured.
unsigned effective_dest(const Instruction& ins, const PipelineConfig& cfg) {
  const OpClass cls = op_class(ins.op);
  if (cls == OpClass::kJumpLink || cls == OpClass::kJumpLinkReg) {
    return cfg.has(PipelineBug::kJalLinksR30) ? kLinkRegister - 1
                                              : kLinkRegister;
  }
  return ins.rd;
}

bool is_load(const Instruction& ins) {
  return op_class(ins.op) == OpClass::kLoad;
}

}  // namespace

Pipeline::Pipeline(std::vector<std::uint32_t> program, PipelineConfig config,
                   std::size_t data_size)
    : program_(std::move(program)), data_(data_size, 0),
      config_(std::move(config)) {
  if (data_size % 4 != 0) {
    throw std::invalid_argument("Pipeline: data size must be word-aligned");
  }
}

void Pipeline::set_reg(unsigned r, std::uint32_t value) {
  if (r >= kNumRegisters) throw std::out_of_range("set_reg: bad register");
  if (r != 0) regs_[r] = value;
}

void Pipeline::poke_word(std::uint32_t addr, std::uint32_t value) {
  mem_store(addr, value, 4);
}

std::uint32_t Pipeline::peek_word(std::uint32_t addr) const {
  return mem_load(addr, 4, false);
}

std::optional<Instruction> Pipeline::fetch(std::uint32_t pc) const {
  const std::size_t index = pc / 4;
  if (pc % 4 != 0 || index >= program_.size()) return std::nullopt;
  const auto decoded = decode(program_[index]);
  if (!decoded.has_value()) {
    throw std::domain_error("Pipeline: invalid instruction word");
  }
  return decoded;
}

std::uint32_t Pipeline::mem_load(std::uint32_t addr, unsigned size,
                                 bool sign_extend) const {
  if (addr % size != 0) throw std::domain_error("Pipeline: misaligned load");
  if (addr + size > data_.size()) {
    throw std::out_of_range("Pipeline: load out of data memory");
  }
  std::uint32_t v = 0;
  for (unsigned k = 0; k < size; ++k) {
    v |= static_cast<std::uint32_t>(data_[addr + k]) << (8 * k);
  }
  if (sign_extend && size < 4) {
    const std::uint32_t sign_bit = 1u << (8 * size - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return v;
}

void Pipeline::mem_store(std::uint32_t addr, std::uint32_t value,
                         unsigned size) {
  if (addr % size != 0) throw std::domain_error("Pipeline: misaligned store");
  if (addr + size > data_.size()) {
    throw std::out_of_range("Pipeline: store out of data memory");
  }
  for (unsigned k = 0; k < size; ++k) {
    data_[addr + k] = static_cast<std::uint8_t>(value >> (8 * k));
  }
}

bool Pipeline::detect_load_use_hazard() const {
  if (config_.has(PipelineBug::kNoLoadUseStall)) return false;
  if (!id_ex_.valid || !is_load(id_ex_.ins) || !if_id_.valid) return false;
  const unsigned dest = effective_dest(id_ex_.ins, config_);
  if (dest == 0) return false;
  const Instruction& consumer = if_id_.ins;
  const bool rs1_hazard = reads_rs1(consumer.op) && consumer.rs1 == dest;
  const bool rs2_hazard = reads_rs2(consumer.op) && consumer.rs2 == dest;
  if (config_.has(PipelineBug::kInterlockMissesDoubleHazard) && rs1_hazard &&
      rs2_hazard) {
    return false;  // corner case: the double-match term was dropped
  }
  if (rs1_hazard) return true;
  if (config_.has(PipelineBug::kInterlockChecksRs1Only)) return false;
  return rs2_hazard;
}

std::uint32_t Pipeline::forward_operand(unsigned reg,
                                        std::uint32_t id_ex_value,
                                        bool allow_ex_mem,
                                        bool allow_mem_wb) const {
  // r0 is hardwired zero and never forwarded — unless the kForwardFromR0
  // corner bug drops that guard, in which case an r0-destination producer
  // wrongly feeds consumers of r0.
  if (reg == 0 && !config_.has(PipelineBug::kForwardFromR0)) return 0;
  auto dest_of = [&](const Instruction& ins) {
    const unsigned d = effective_dest(ins, config_);
    // Without the bug, r0 producers never match (their writes vanish).
    if (d == 0 && !config_.has(PipelineBug::kForwardFromR0)) return ~0u;
    return d;
  };
  const bool ex_mem_hit = allow_ex_mem && ex_mem_.valid &&
                          writes_register(ex_mem_.ins.op) &&
                          !is_load(ex_mem_.ins) && dest_of(ex_mem_.ins) == reg;
  const bool mem_wb_hit = allow_mem_wb && mem_wb_.valid &&
                          writes_register(mem_wb_.ins.op) &&
                          dest_of(mem_wb_.ins) == reg;
  if (ex_mem_hit && mem_wb_hit &&
      config_.has(PipelineBug::kForwardPriorityWrong)) {
    return mem_wb_.value;  // corner case: the OLDER producer wins
  }
  // Younger producer wins: EX/MEM (the instruction now in MEM), unless it is
  // a load whose data is not available yet (the interlock is responsible for
  // keeping that case out of here).
  if (ex_mem_hit) return ex_mem_.alu;
  if (mem_wb_hit) return mem_wb_.value;
  if (reg == 0) return 0;  // r0 with the bug but no bogus producer
  return id_ex_value;
}

ControlSnapshot Pipeline::control_snapshot() const {
  ControlSnapshot snap;
  auto fill = [&](ControlSnapshot::StageInfo& out, bool valid,
                  const Instruction& ins) {
    out.valid = valid;
    if (valid) {
      out.cls = op_class(ins.op);
      out.dest = static_cast<std::uint8_t>(
          writes_register(ins.op) ? effective_dest(ins, config_) : 0);
    }
  };
  fill(snap.id, if_id_.valid, if_id_.ins);
  fill(snap.ex, id_ex_.valid, id_ex_.ins);
  fill(snap.mem, ex_mem_.valid, ex_mem_.ins);
  fill(snap.wb, mem_wb_.valid, mem_wb_.ins);
  snap.stall = detect_load_use_hazard();
  // Squash decision requires evaluating the EX-stage branch; recompute
  // cheaply: a valid control-transfer in EX that will be taken.
  if (id_ex_.valid) {
    const OpClass cls = op_class(id_ex_.ins.op);
    if (cls == OpClass::kJump || cls == OpClass::kJumpLink ||
        cls == OpClass::kJumpReg || cls == OpClass::kJumpLinkReg) {
      snap.squash = true;
    } else if (cls == OpClass::kBranch) {
      const std::uint32_t cond =
          config_.has(PipelineBug::kBranchUsesStaleCondition)
              ? id_ex_.a
              : forward_operand(id_ex_.ins.rs1, id_ex_.a, true, true);
      snap.squash = id_ex_.ins.op == Opcode::kBeqz ? cond == 0 : cond != 0;
    }
  }
  return snap;
}

std::optional<RetireInfo> Pipeline::step_cycle() {
  if (halted_) return std::nullopt;
  ++cycles_;

  // Snapshot the register file before the WB write so the stale-read bug
  // (kNoIdBypass) can observe pre-writeback values.
  const std::array<std::uint32_t, kNumRegisters> regs_pre = regs_;

  // ---- WB: retire the instruction in MEM/WB --------------------------------
  std::optional<RetireInfo> retired;
  if (mem_wb_.valid) {
    RetireInfo info;
    info.pc = mem_wb_.pc;
    info.ins = mem_wb_.ins;
    info.mem_write = mem_wb_.mem_write;
    info.next_pc = mem_wb_.next_pc;
    if (writes_register(mem_wb_.ins.op)) {
      const unsigned dest = effective_dest(mem_wb_.ins, config_);
      if (dest != 0) {
        regs_[dest] = mem_wb_.value;
        info.reg_write = {static_cast<std::uint8_t>(dest), mem_wb_.value};
      }
    }
    const OpClass cls = op_class(mem_wb_.ins.op);
    if (cls == OpClass::kAlu || cls == OpClass::kAluImm) {
      psw_.zero = mem_wb_.value == 0;
      psw_.negative = (mem_wb_.value >> 31) != 0;
    }
    if (cls == OpClass::kHalt) halted_ = true;
    info.psw = psw_;
    info.halted = halted_;
    retired = info;
    ++counters_.retired;
  }

  // ---- MEM: old EX/MEM -> new MEM/WB ---------------------------------------
  MemWb new_mem_wb;
  if (ex_mem_.valid) {
    new_mem_wb.valid = true;
    new_mem_wb.pc = ex_mem_.pc;
    new_mem_wb.ins = ex_mem_.ins;
    new_mem_wb.next_pc = ex_mem_.next_pc;
    const Instruction& ins = ex_mem_.ins;
    switch (op_class(ins.op)) {
      case OpClass::kLoad: {
        std::uint32_t v = 0;
        switch (ins.op) {
          case Opcode::kLw: v = mem_load(ex_mem_.alu, 4, false); break;
          case Opcode::kLh: v = mem_load(ex_mem_.alu, 2, true); break;
          case Opcode::kLhu: v = mem_load(ex_mem_.alu, 2, false); break;
          case Opcode::kLb: v = mem_load(ex_mem_.alu, 1, true); break;
          case Opcode::kLbu: v = mem_load(ex_mem_.alu, 1, false); break;
          default: break;
        }
        new_mem_wb.value =
            config_.has(PipelineBug::kWritebackSelectsAluForLoad) ? ex_mem_.alu
                                                                  : v;
        break;
      }
      case OpClass::kStore: {
        const unsigned size = ins.op == Opcode::kSw
                                  ? 4
                                  : (ins.op == Opcode::kSh ? 2 : 1);
        const std::uint32_t masked =
            size == 4 ? ex_mem_.store_data
                      : (ex_mem_.store_data & ((1u << (8 * size)) - 1));
        mem_store(ex_mem_.alu, masked, size);
        new_mem_wb.mem_write =
            MemWrite{ex_mem_.alu, masked, static_cast<std::uint8_t>(size)};
        break;
      }
      default:
        new_mem_wb.value = ex_mem_.alu;
        break;
    }
  }

  // ---- EX: old ID/EX -> new EX/MEM; resolve control transfers --------------
  ExMem new_ex_mem;
  bool redirect = false;
  std::uint32_t redirect_target = 0;
  if (id_ex_.valid) {
    new_ex_mem.valid = true;
    new_ex_mem.pc = id_ex_.pc;
    new_ex_mem.ins = id_ex_.ins;
    const Instruction& ins = id_ex_.ins;
    const std::uint32_t imm = static_cast<std::uint32_t>(ins.imm);

    const std::uint32_t a = forward_operand(
        ins.rs1, id_ex_.a, !config_.has(PipelineBug::kNoForwardExMemA),
        !config_.has(PipelineBug::kNoForwardMemWbA));
    const std::uint32_t b = forward_operand(
        ins.rs2, id_ex_.b, !config_.has(PipelineBug::kNoForwardExMemB),
        !config_.has(PipelineBug::kNoForwardMemWbB));

    std::uint32_t next_pc = id_ex_.pc + 4;
    switch (op_class(ins.op)) {
      case OpClass::kNop:
        break;
      case OpClass::kHalt:
        next_pc = id_ex_.pc;
        break;
      case OpClass::kAlu:
        new_ex_mem.alu = alu_eval(ins.op, a, b);
        break;
      case OpClass::kAluImm:
        new_ex_mem.alu = alu_eval(ins.op, a, imm);
        break;
      case OpClass::kLoad:
        new_ex_mem.alu = a + imm;
        break;
      case OpClass::kStore:
        new_ex_mem.alu = a + imm;
        new_ex_mem.store_data =
            config_.has(PipelineBug::kStoreDataStale) ? id_ex_.b : b;
        break;
      case OpClass::kBranch: {
        const std::uint32_t cond =
            config_.has(PipelineBug::kBranchUsesStaleCondition) ? id_ex_.a : a;
        const bool taken =
            ins.op == Opcode::kBeqz ? cond == 0 : cond != 0;
        if (taken) {
          const std::uint32_t base =
              config_.has(PipelineBug::kBranchTargetOffByFour)
                  ? id_ex_.pc
                  : id_ex_.pc + 4;
          redirect = true;
          redirect_target = base + imm;
          next_pc = redirect_target;
        }
        break;
      }
      case OpClass::kJump:
      case OpClass::kJumpLink:
        redirect = true;
        redirect_target = id_ex_.pc + 4 + imm;
        next_pc = redirect_target;
        if (op_class(ins.op) == OpClass::kJumpLink) {
          new_ex_mem.alu = id_ex_.pc + 4;  // link value
        }
        break;
      case OpClass::kJumpReg:
      case OpClass::kJumpLinkReg:
        redirect = true;
        redirect_target = a;
        next_pc = redirect_target;
        if (op_class(ins.op) == OpClass::kJumpLinkReg) {
          new_ex_mem.alu = id_ex_.pc + 4;
        }
        break;
    }
    new_ex_mem.next_pc = next_pc;
  }

  // ---- Interlock -------------------------------------------------------------
  const bool stall = detect_load_use_hazard();
  if (stall) ++counters_.stall_cycles;
  if (redirect) {
    ++counters_.squashes;
    if (!config_.has(PipelineBug::kNoSquashOnTakenBranch)) {
      // The slot being fetched this cycle is killed; the instruction in
      // IF/ID is killed too unless the squash-only-fetch bug is active.
      counters_.squashed_slots += fetch(pc_).has_value() ? 1 : 0;
      if (!config_.has(PipelineBug::kSquashOnlyFetch)) {
        counters_.squashed_slots += if_id_.valid ? 1 : 0;
      }
    }
  }

  // ---- ID: old IF/ID -> new ID/EX -------------------------------------------
  IdEx new_id_ex;
  const bool squash_id =
      redirect && !config_.has(PipelineBug::kNoSquashOnTakenBranch) &&
      !config_.has(PipelineBug::kSquashOnlyFetch);
  if (!stall && !squash_id && if_id_.valid) {
    new_id_ex.valid = true;
    new_id_ex.pc = if_id_.pc;
    new_id_ex.ins = if_id_.ins;
    const auto& read_file =
        config_.has(PipelineBug::kNoIdBypass) ? regs_pre : regs_;
    new_id_ex.a = read_file[if_id_.ins.rs1];
    new_id_ex.b = read_file[if_id_.ins.rs2];
  }

  // ---- IF --------------------------------------------------------------------
  IfId new_if_id = if_id_;
  std::uint32_t new_pc = pc_;
  const bool squash_if =
      redirect && !config_.has(PipelineBug::kNoSquashOnTakenBranch);
  // Freeze fetch while a HALT is in flight so nothing retires after it.
  const bool halt_pending =
      (if_id_.valid && if_id_.ins.op == Opcode::kHalt) ||
      (id_ex_.valid && id_ex_.ins.op == Opcode::kHalt) ||
      (ex_mem_.valid && ex_mem_.ins.op == Opcode::kHalt) ||
      (mem_wb_.valid && mem_wb_.ins.op == Opcode::kHalt);
  if (stall) {
    // Hold IF/ID and PC.
  } else if (squash_if) {
    new_if_id = IfId{};
    new_pc = redirect_target;
  } else {
    if (halt_pending) {
      new_if_id = IfId{};
    } else {
      const auto ins = fetch(pc_);
      if (ins.has_value()) {
        new_if_id = IfId{true, pc_, *ins};
        new_pc = pc_ + 4;
      } else {
        new_if_id = IfId{};
      }
    }
    if (redirect) new_pc = redirect_target;  // kNoSquashOnTakenBranch path
  }

  // ---- Clock edge --------------------------------------------------------------
  mem_wb_ = new_mem_wb;
  ex_mem_ = new_ex_mem;
  id_ex_ = new_id_ex;
  if_id_ = new_if_id;
  pc_ = new_pc;
  return retired;
}

std::vector<RetireInfo> Pipeline::run(std::size_t max_cycles) {
  std::vector<RetireInfo> trace;
  for (std::size_t k = 0; k < max_cycles && !halted_; ++k) {
    auto info = step_cycle();
    if (info.has_value()) trace.push_back(*info);
    // Drained pipeline with nothing left to fetch: stop.
    if (!if_id_.valid && !id_ex_.valid && !ex_mem_.valid && !mem_wb_.valid &&
        fetch(pc_) == std::nullopt) {
      break;
    }
  }
  return trace;
}

}  // namespace simcov::dlx
