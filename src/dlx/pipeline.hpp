// Cycle-accurate 5-stage pipelined DLX implementation.
//
// This stands in for the NCSU Verilog RTL design of the paper's case study
// (Section 7): a standard IF/ID/EX/MEM/WB pipeline with
//   * an interlock unit for the load-use hazard (1-cycle stall),
//   * full bypassing (EX/MEM and MEM/WB into EX; WB into the ID register
//     read),
//   * control transfers resolved in EX with squashing of the two
//     wrong-path instructions behind them.
//
// The `PipelineBug` catalogue injects the classes of control errors the
// methodology is meant to catch: each bug corrupts exactly one control
// mechanism (a transition/output error of the control FSM) while leaving
// the datapath intact, mirroring Section 6.4's observation that "typically
// errors creep in on the transitions".
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "dlx/arch.hpp"
#include "dlx/isa.hpp"

namespace simcov::dlx {

enum class PipelineBug : std::uint8_t {
  kNoForwardExMemA,      ///< EX/MEM -> EX operand-A bypass disabled
  kNoForwardExMemB,      ///< EX/MEM -> EX operand-B bypass disabled
  kNoForwardMemWbA,      ///< MEM/WB -> EX operand-A bypass disabled
  kNoForwardMemWbB,      ///< MEM/WB -> EX operand-B bypass disabled
  kNoIdBypass,           ///< WB -> ID register-read bypass disabled
  kNoLoadUseStall,       ///< interlock unit disabled
  kInterlockChecksRs1Only,  ///< interlock misses rs2 load-use hazards
  kNoSquashOnTakenBranch,   ///< PC redirects but wrong-path instrs retire
  kSquashOnlyFetch,         ///< only the IF/ID slot is squashed
  kJalLinksR30,             ///< JAL/JALR link into r30 instead of r31
  kBranchTargetOffByFour,   ///< target = pc + imm (missing the +4)
  kWritebackSelectsAluForLoad,  ///< WB mux returns the address for loads
  kStoreDataStale,          ///< store data skips EX forwarding
  kBranchUsesStaleCondition,  ///< branch condition skips EX forwarding
  // Corner-case bugs (the hard-to-hit class motivating coverage-driven test
  // generation in Ho et al. and Section 3):
  kForwardPriorityWrong,  ///< both bypasses match: picks the OLDER value
  kInterlockMissesDoubleHazard,  ///< stall suppressed when rs1 AND rs2 hazard
  kForwardFromR0,  ///< bypass matches r0 producers (r0 reads become garbage)
};

struct PipelineConfig {
  std::set<PipelineBug> bugs;

  [[nodiscard]] bool has(PipelineBug b) const { return bugs.count(b) != 0; }
};

/// Per-cycle snapshot of the pipeline's *control* state — the projection the
/// test model retains (Section 6.1): per-stage opcode class / destination /
/// validity plus the interlock and squash decisions of the current cycle.
struct ControlSnapshot {
  struct StageInfo {
    bool valid = false;
    OpClass cls = OpClass::kNop;
    std::uint8_t dest = 0;
  };
  StageInfo id, ex, mem, wb;
  bool stall = false;
  bool squash = false;
};

class Pipeline {
 public:
  explicit Pipeline(std::vector<std::uint32_t> program,
                    PipelineConfig config = {},
                    std::size_t data_size = 1 << 16);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint32_t reg(unsigned r) const { return regs_[r]; }
  [[nodiscard]] const Psw& psw() const { return psw_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Microarchitectural event counters (for CPI analyses and tests).
  struct Counters {
    std::uint64_t retired = 0;
    std::uint64_t stall_cycles = 0;    ///< load-use interlock stalls
    std::uint64_t squashes = 0;        ///< taken control transfers
    std::uint64_t squashed_slots = 0;  ///< wrong-path instructions killed
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Cycles per retired instruction so far (0 when nothing retired).
  [[nodiscard]] double cpi() const {
    return counters_.retired == 0
               ? 0.0
               : static_cast<double>(cycles_) /
                     static_cast<double>(counters_.retired);
  }

  void set_reg(unsigned r, std::uint32_t value);
  void poke_word(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] std::uint32_t peek_word(std::uint32_t addr) const;

  /// Advances one clock cycle. Returns the checkpoint record if an
  /// instruction retired this cycle.
  std::optional<RetireInfo> step_cycle();

  /// Runs until halt (or cycle budget); returns the retirement trace.
  std::vector<RetireInfo> run(std::size_t max_cycles = 200000);

  /// Control-state projection observed *before* the next clock edge.
  [[nodiscard]] ControlSnapshot control_snapshot() const;

 private:
  struct IfId {
    bool valid = false;
    std::uint32_t pc = 0;
    Instruction ins;
  };
  struct IdEx {
    bool valid = false;
    std::uint32_t pc = 0;
    Instruction ins;
    std::uint32_t a = 0;  ///< rs1 value read in ID
    std::uint32_t b = 0;  ///< rs2 value read in ID
  };
  struct ExMem {
    bool valid = false;
    std::uint32_t pc = 0;
    Instruction ins;
    std::uint32_t alu = 0;         ///< ALU result / mem address / link value
    std::uint32_t store_data = 0;
    std::uint32_t next_pc = 0;     ///< architecturally correct successor PC
  };
  struct MemWb {
    bool valid = false;
    std::uint32_t pc = 0;
    Instruction ins;
    std::uint32_t value = 0;  ///< writeback value
    std::optional<MemWrite> mem_write;
    std::uint32_t next_pc = 0;
  };

  [[nodiscard]] std::optional<Instruction> fetch(std::uint32_t pc) const;
  [[nodiscard]] std::uint32_t mem_load(std::uint32_t addr, unsigned size,
                                       bool sign_extend) const;
  void mem_store(std::uint32_t addr, std::uint32_t value, unsigned size);
  [[nodiscard]] bool detect_load_use_hazard() const;
  [[nodiscard]] std::uint32_t forward_operand(unsigned reg,
                                              std::uint32_t id_ex_value,
                                              bool allow_ex_mem,
                                              bool allow_mem_wb) const;

  std::vector<std::uint32_t> program_;
  std::vector<std::uint8_t> data_;
  PipelineConfig config_;

  std::uint32_t pc_ = 0;
  std::array<std::uint32_t, kNumRegisters> regs_{};
  Psw psw_;
  IfId if_id_;
  IdEx id_ex_;
  ExMem ex_mem_;
  MemWb mem_wb_;
  bool halted_ = false;
  std::uint64_t cycles_ = 0;
  Counters counters_;
};

}  // namespace simcov::dlx
