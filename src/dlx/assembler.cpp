#include "dlx/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

namespace simcov::dlx {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string strip(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Tokenized line: mnemonic + comma-separated operand strings.
struct ParsedLine {
  std::string mnemonic;
  std::vector<std::string> operands;
};

ParsedLine tokenize(const std::string& text, std::size_t line_no) {
  ParsedLine out;
  const auto space = text.find_first_of(" \t");
  out.mnemonic = to_lower(strip(text.substr(0, space)));
  if (space == std::string::npos) return out;
  std::string rest = strip(text.substr(space));
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    out.operands.push_back(strip(rest.substr(0, comma)));
    if (comma == std::string::npos) break;
    rest = strip(rest.substr(comma + 1));
  }
  for (const auto& op : out.operands) {
    if (op.empty()) throw AssemblyError(line_no, "empty operand");
  }
  return out;
}

unsigned parse_register(const std::string& s, std::size_t line_no) {
  if (s.size() < 2 || (s[0] != 'r' && s[0] != 'R')) {
    throw AssemblyError(line_no, "expected register, got '" + s + "'");
  }
  try {
    const unsigned long r = std::stoul(s.substr(1));
    if (r >= kNumRegisters) {
      throw AssemblyError(line_no, "register out of range: " + s);
    }
    return static_cast<unsigned>(r);
  } catch (const AssemblyError&) {
    throw;
  } catch (const std::exception&) {
    throw AssemblyError(line_no, "bad register: '" + s + "'");
  }
}

std::optional<std::int64_t> try_parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t pos = 0;
  try {
    const std::int64_t v = std::stoll(s, &pos, 0);  // base 0: dec/hex/oct
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::int32_t parse_imm(const std::string& s, std::size_t line_no,
                       std::int64_t min, std::int64_t max) {
  const auto v = try_parse_int(s);
  if (!v.has_value()) {
    throw AssemblyError(line_no, "expected immediate, got '" + s + "'");
  }
  if (*v < min || *v > max) {
    throw AssemblyError(line_no, "immediate out of range: " + s);
  }
  return static_cast<std::int32_t>(*v);
}

/// Parses "offset(rN)" memory operands.
std::pair<std::int32_t, unsigned> parse_mem_operand(const std::string& s,
                                                    std::size_t line_no) {
  const auto open = s.find('(');
  const auto close = s.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open || close != s.size() - 1) {
    throw AssemblyError(line_no, "expected offset(rN), got '" + s + "'");
  }
  const std::string offset_str = strip(s.substr(0, open));
  const std::string reg_str = strip(s.substr(open + 1, close - open - 1));
  const std::int32_t offset =
      offset_str.empty() ? 0 : parse_imm(offset_str, line_no, -32768, 32767);
  return {offset, parse_register(reg_str, line_no)};
}

struct MnemonicInfo {
  Opcode op;
  OpClass cls;
};

std::optional<MnemonicInfo> lookup_mnemonic(const std::string& m) {
  static const std::map<std::string, Opcode> table = [] {
    std::map<std::string, Opcode> t;
    for (int raw = 0; raw <= static_cast<int>(Opcode::kJalr); ++raw) {
      const Opcode op = static_cast<Opcode>(raw);
      t[opcode_name(op)] = op;
    }
    return t;
  }();
  const auto it = table.find(m);
  if (it == table.end()) return std::nullopt;
  return MnemonicInfo{it->second, op_class(it->second)};
}

/// A branch/jump operand pending label resolution.
struct Fixup {
  std::size_t word_index;
  std::string label;
  std::size_t line_no;
  Opcode op;
  unsigned rs1;  // for branches
};

}  // namespace

std::vector<Instruction> AssembledProgram::instructions() const {
  std::vector<Instruction> out;
  out.reserve(words.size());
  for (const std::uint32_t w : words) {
    const auto ins = decode(w);
    out.push_back(ins.value_or(make_nop()));
  }
  return out;
}

AssembledProgram assemble(const std::string& source) {
  AssembledProgram prog;
  std::vector<Fixup> fixups;

  std::istringstream stream(source);
  std::string raw_line;
  std::size_t line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    // Strip comments.
    const auto comment = raw_line.find_first_of(";#");
    std::string text =
        strip(comment == std::string::npos ? raw_line
                                           : raw_line.substr(0, comment));
    // Labels (possibly several, possibly alone on the line).
    for (auto colon = text.find(':'); colon != std::string::npos;
         colon = text.find(':')) {
      const std::string label = strip(text.substr(0, colon));
      if (label.empty() ||
          label.find_first_of(" \t") != std::string::npos) {
        throw AssemblyError(line_no, "bad label '" + label + "'");
      }
      if (!prog.labels.emplace(label, 4 * prog.words.size()).second) {
        throw AssemblyError(line_no, "duplicate label '" + label + "'");
      }
      text = strip(text.substr(colon + 1));
    }
    if (text.empty()) continue;

    const ParsedLine line = tokenize(text, line_no);
    const auto& ops = line.operands;
    auto expect = [&](std::size_t n) {
      if (ops.size() != n) {
        throw AssemblyError(line_no, "expected " + std::to_string(n) +
                                         " operands for '" + line.mnemonic +
                                         "', got " +
                                         std::to_string(ops.size()));
      }
    };

    if (line.mnemonic == ".word") {
      expect(1);
      const auto v = try_parse_int(ops[0]);
      if (!v.has_value()) {
        throw AssemblyError(line_no, "bad .word value '" + ops[0] + "'");
      }
      prog.words.push_back(static_cast<std::uint32_t>(*v));
      continue;
    }

    const auto info = lookup_mnemonic(line.mnemonic);
    if (!info.has_value()) {
      throw AssemblyError(line_no, "unknown mnemonic '" + line.mnemonic + "'");
    }
    const std::uint32_t here = 4 * static_cast<std::uint32_t>(
                                       prog.words.size());
    Instruction ins;
    switch (info->cls) {
      case OpClass::kNop:
        expect(0);
        ins = make_nop();
        break;
      case OpClass::kHalt:
        expect(0);
        ins = make_halt();
        break;
      case OpClass::kAlu: {
        expect(3);
        ins = make_rtype(info->op, parse_register(ops[0], line_no),
                         parse_register(ops[1], line_no),
                         parse_register(ops[2], line_no));
        break;
      }
      case OpClass::kAluImm: {
        if (info->op == Opcode::kLhi) {
          expect(2);
          ins = make_lhi(parse_register(ops[0], line_no),
                         static_cast<std::uint16_t>(
                             parse_imm(ops[1], line_no, 0, 0xffff)));
        } else {
          expect(3);
          ins = make_itype(info->op, parse_register(ops[0], line_no),
                           parse_register(ops[1], line_no),
                           parse_imm(ops[2], line_no, -32768, 32767));
        }
        break;
      }
      case OpClass::kLoad: {
        expect(2);
        const auto [offset, base] = parse_mem_operand(ops[1], line_no);
        ins = make_load(info->op, parse_register(ops[0], line_no), base,
                        offset);
        break;
      }
      case OpClass::kStore: {
        expect(2);
        const auto [offset, base] = parse_mem_operand(ops[0], line_no);
        ins = make_store(info->op, base, parse_register(ops[1], line_no),
                         offset);
        break;
      }
      case OpClass::kBranch: {
        expect(2);
        const unsigned rs1 = parse_register(ops[0], line_no);
        const auto imm = try_parse_int(ops[1]);
        if (imm.has_value()) {
          ins = make_branch(info->op, rs1,
                            parse_imm(ops[1], line_no, -32768, 32767));
        } else {
          fixups.push_back({prog.words.size(), ops[1], line_no, info->op,
                            rs1});
          ins = make_branch(info->op, rs1, 0);  // patched in pass 2
        }
        break;
      }
      case OpClass::kJump:
      case OpClass::kJumpLink: {
        expect(1);
        const auto imm = try_parse_int(ops[0]);
        if (imm.has_value()) {
          ins = make_jump(info->op, static_cast<std::int32_t>(*imm));
        } else {
          fixups.push_back({prog.words.size(), ops[0], line_no, info->op, 0});
          ins = make_jump(info->op, 0);
        }
        break;
      }
      case OpClass::kJumpReg:
      case OpClass::kJumpLinkReg:
        expect(1);
        ins = make_jump_reg(info->op, parse_register(ops[0], line_no));
        break;
    }
    (void)here;
    prog.words.push_back(encode(ins));
  }

  // Pass 2: resolve label fixups to PC-relative offsets (target - (pc + 4)).
  for (const Fixup& fix : fixups) {
    const auto it = prog.labels.find(fix.label);
    if (it == prog.labels.end()) {
      throw AssemblyError(fix.line_no, "undefined label '" + fix.label + "'");
    }
    const std::int64_t pc = 4 * static_cast<std::int64_t>(fix.word_index);
    const std::int64_t offset = static_cast<std::int64_t>(it->second) -
                                (pc + 4);
    const OpClass cls = op_class(fix.op);
    Instruction ins;
    if (cls == OpClass::kBranch) {
      if (offset < -32768 || offset > 32767) {
        throw AssemblyError(fix.line_no, "branch target out of range");
      }
      ins = make_branch(fix.op, fix.rs1, static_cast<std::int32_t>(offset));
    } else {
      if (offset < -(1 << 25) || offset >= (1 << 25)) {
        throw AssemblyError(fix.line_no, "jump target out of range");
      }
      ins = make_jump(fix.op, static_cast<std::int32_t>(offset));
    }
    prog.words[fix.word_index] = encode(ins);
  }
  return prog;
}

std::string disassemble_program(const std::vector<std::uint32_t>& words) {
  std::ostringstream os;
  for (std::size_t k = 0; k < words.size(); ++k) {
    const auto ins = decode(words[k]);
    os << 4 * k << ":\t"
       << (ins.has_value() ? disassemble(*ins) : ".word " +
                                                     std::to_string(words[k]))
       << "\n";
  }
  return os.str();
}

}  // namespace simcov::dlx
