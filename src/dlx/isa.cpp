#include "dlx/isa.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace simcov::dlx {

namespace {

// Primary opcode values (bits [31:26]).
enum : std::uint32_t {
  kPrimRtype = 0,
  kPrimNop = 1,
  kPrimHalt = 2,
  kPrimAddi = 8,
  kPrimAndi = 9,
  kPrimOri = 10,
  kPrimXori = 11,
  kPrimSlli = 12,
  kPrimSrli = 13,
  kPrimSrai = 14,
  kPrimSlti = 15,
  kPrimLhi = 16,
  kPrimLw = 17,
  kPrimLh = 18,
  kPrimLhu = 19,
  kPrimLb = 20,
  kPrimLbu = 21,
  kPrimSw = 22,
  kPrimSh = 23,
  kPrimSb = 24,
  kPrimBeqz = 25,
  kPrimBnez = 26,
  kPrimJ = 27,
  kPrimJal = 28,
  kPrimJr = 29,
  kPrimJalr = 30,
};

// R-type function values (bits [10:0]).
enum : std::uint32_t {
  kFuncAdd = 1, kFuncSub, kFuncAnd, kFuncOr, kFuncXor, kFuncSll, kFuncSrl,
  kFuncSra, kFuncSlt, kFuncSltu, kFuncSeq, kFuncSne,
};

void check_reg(unsigned r) {
  if (r >= kNumRegisters) {
    throw std::out_of_range("dlx: register index out of range");
  }
}

std::int32_t sign_extend16(std::uint32_t v) {
  return static_cast<std::int32_t>(static_cast<std::int16_t>(v & 0xffffu));
}

std::int32_t sign_extend26(std::uint32_t v) {
  const std::uint32_t m = v & 0x03ffffffu;
  return static_cast<std::int32_t>((m ^ 0x02000000u)) -
         static_cast<std::int32_t>(0x02000000);
}

}  // namespace

OpClass op_class(Opcode op) {
  switch (op) {
    case Opcode::kNop:
      return OpClass::kNop;
    case Opcode::kHalt:
      return OpClass::kHalt;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kSeq:
    case Opcode::kSne:
      return OpClass::kAlu;
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kSlti:
    case Opcode::kLhi:
      return OpClass::kAluImm;
    case Opcode::kLw:
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLb:
    case Opcode::kLbu:
      return OpClass::kLoad;
    case Opcode::kSw:
    case Opcode::kSh:
    case Opcode::kSb:
      return OpClass::kStore;
    case Opcode::kBeqz:
    case Opcode::kBnez:
      return OpClass::kBranch;
    case Opcode::kJ:
      return OpClass::kJump;
    case Opcode::kJal:
      return OpClass::kJumpLink;
    case Opcode::kJr:
      return OpClass::kJumpReg;
    case Opcode::kJalr:
      return OpClass::kJumpLinkReg;
  }
  throw std::logic_error("op_class: unhandled opcode");
}

bool writes_register(Opcode op) {
  switch (op_class(op)) {
    case OpClass::kAlu:
    case OpClass::kAluImm:
    case OpClass::kLoad:
    case OpClass::kJumpLink:
    case OpClass::kJumpLinkReg:
      return true;
    default:
      return false;
  }
}

bool reads_rs1(Opcode op) {
  switch (op_class(op)) {
    case OpClass::kAlu:
    case OpClass::kLoad:
    case OpClass::kStore:
    case OpClass::kBranch:
    case OpClass::kJumpReg:
    case OpClass::kJumpLinkReg:
      return true;
    case OpClass::kAluImm:
      return op != Opcode::kLhi;  // LHI has no register source
    default:
      return false;
  }
}

bool reads_rs2(Opcode op) {
  switch (op_class(op)) {
    case OpClass::kAlu:
    case OpClass::kStore:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

Instruction make_nop() { return Instruction{}; }

Instruction make_halt() { return Instruction{Opcode::kHalt, 0, 0, 0, 0}; }

Instruction make_rtype(Opcode op, unsigned rd, unsigned rs1, unsigned rs2) {
  if (op_class(op) != OpClass::kAlu) {
    throw std::invalid_argument("make_rtype: not an R-type ALU opcode");
  }
  check_reg(rd);
  check_reg(rs1);
  check_reg(rs2);
  return Instruction{op, static_cast<std::uint8_t>(rd),
                     static_cast<std::uint8_t>(rs1),
                     static_cast<std::uint8_t>(rs2), 0};
}

Instruction make_itype(Opcode op, unsigned rd, unsigned rs1,
                       std::int32_t imm) {
  if (op_class(op) != OpClass::kAluImm || op == Opcode::kLhi) {
    throw std::invalid_argument("make_itype: not an immediate ALU opcode");
  }
  check_reg(rd);
  check_reg(rs1);
  return Instruction{op, static_cast<std::uint8_t>(rd),
                     static_cast<std::uint8_t>(rs1), 0, imm};
}

Instruction make_load(Opcode op, unsigned rd, unsigned rs1,
                      std::int32_t offset) {
  if (op_class(op) != OpClass::kLoad) {
    throw std::invalid_argument("make_load: not a load opcode");
  }
  check_reg(rd);
  check_reg(rs1);
  return Instruction{op, static_cast<std::uint8_t>(rd),
                     static_cast<std::uint8_t>(rs1), 0, offset};
}

Instruction make_store(Opcode op, unsigned rs1, unsigned rs2,
                       std::int32_t offset) {
  if (op_class(op) != OpClass::kStore) {
    throw std::invalid_argument("make_store: not a store opcode");
  }
  check_reg(rs1);
  check_reg(rs2);
  return Instruction{op, 0, static_cast<std::uint8_t>(rs1),
                     static_cast<std::uint8_t>(rs2), offset};
}

Instruction make_branch(Opcode op, unsigned rs1, std::int32_t offset) {
  if (op_class(op) != OpClass::kBranch) {
    throw std::invalid_argument("make_branch: not a branch opcode");
  }
  check_reg(rs1);
  return Instruction{op, 0, static_cast<std::uint8_t>(rs1), 0, offset};
}

Instruction make_jump(Opcode op, std::int32_t offset) {
  if (op != Opcode::kJ && op != Opcode::kJal) {
    throw std::invalid_argument("make_jump: not J/JAL");
  }
  return Instruction{op, 0, 0, 0, offset};
}

Instruction make_jump_reg(Opcode op, unsigned rs1) {
  if (op != Opcode::kJr && op != Opcode::kJalr) {
    throw std::invalid_argument("make_jump_reg: not JR/JALR");
  }
  check_reg(rs1);
  return Instruction{op, 0, static_cast<std::uint8_t>(rs1), 0, 0};
}

Instruction make_lhi(unsigned rd, std::uint16_t imm) {
  check_reg(rd);
  return Instruction{Opcode::kLhi, static_cast<std::uint8_t>(rd), 0, 0,
                     static_cast<std::int32_t>(imm)};
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

namespace {

struct PrimEntry {
  Opcode op;
  std::uint32_t prim;
};

constexpr std::array<PrimEntry, 24> kItypePrims{{
    {Opcode::kAddi, kPrimAddi}, {Opcode::kAndi, kPrimAndi},
    {Opcode::kOri, kPrimOri},   {Opcode::kXori, kPrimXori},
    {Opcode::kSlli, kPrimSlli}, {Opcode::kSrli, kPrimSrli},
    {Opcode::kSrai, kPrimSrai}, {Opcode::kSlti, kPrimSlti},
    {Opcode::kLhi, kPrimLhi},   {Opcode::kLw, kPrimLw},
    {Opcode::kLh, kPrimLh},     {Opcode::kLhu, kPrimLhu},
    {Opcode::kLb, kPrimLb},     {Opcode::kLbu, kPrimLbu},
    {Opcode::kSw, kPrimSw},     {Opcode::kSh, kPrimSh},
    {Opcode::kSb, kPrimSb},     {Opcode::kBeqz, kPrimBeqz},
    {Opcode::kBnez, kPrimBnez}, {Opcode::kJ, kPrimJ},
    {Opcode::kJal, kPrimJal},   {Opcode::kJr, kPrimJr},
    {Opcode::kJalr, kPrimJalr}, {Opcode::kNop, kPrimNop},
}};

std::uint32_t rtype_func(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return kFuncAdd;
    case Opcode::kSub: return kFuncSub;
    case Opcode::kAnd: return kFuncAnd;
    case Opcode::kOr: return kFuncOr;
    case Opcode::kXor: return kFuncXor;
    case Opcode::kSll: return kFuncSll;
    case Opcode::kSrl: return kFuncSrl;
    case Opcode::kSra: return kFuncSra;
    case Opcode::kSlt: return kFuncSlt;
    case Opcode::kSltu: return kFuncSltu;
    case Opcode::kSeq: return kFuncSeq;
    case Opcode::kSne: return kFuncSne;
    default:
      throw std::logic_error("rtype_func: not an R-type opcode");
  }
}

std::optional<Opcode> func_to_opcode(std::uint32_t func) {
  switch (func) {
    case kFuncAdd: return Opcode::kAdd;
    case kFuncSub: return Opcode::kSub;
    case kFuncAnd: return Opcode::kAnd;
    case kFuncOr: return Opcode::kOr;
    case kFuncXor: return Opcode::kXor;
    case kFuncSll: return Opcode::kSll;
    case kFuncSrl: return Opcode::kSrl;
    case kFuncSra: return Opcode::kSra;
    case kFuncSlt: return Opcode::kSlt;
    case kFuncSltu: return Opcode::kSltu;
    case kFuncSeq: return Opcode::kSeq;
    case kFuncSne: return Opcode::kSne;
    default: return std::nullopt;
  }
}

std::optional<Opcode> prim_to_opcode(std::uint32_t prim) {
  for (const auto& e : kItypePrims) {
    if (e.prim == prim) return e.op;
  }
  return std::nullopt;
}

}  // namespace

std::uint32_t encode(const Instruction& ins) {
  const OpClass cls = op_class(ins.op);
  switch (cls) {
    case OpClass::kNop:
      return kPrimNop << 26;
    case OpClass::kHalt:
      return kPrimHalt << 26;
    case OpClass::kAlu:
      return (kPrimRtype << 26) | (std::uint32_t{ins.rs1} << 21) |
             (std::uint32_t{ins.rs2} << 16) | (std::uint32_t{ins.rd} << 11) |
             rtype_func(ins.op);
    case OpClass::kJump:
    case OpClass::kJumpLink: {
      std::uint32_t prim = ins.op == Opcode::kJ ? kPrimJ : kPrimJal;
      return (prim << 26) |
             (static_cast<std::uint32_t>(ins.imm) & 0x03ffffffu);
    }
    default: {
      // I-type layout: prim | rs1 | rd | imm16. Stores put the data register
      // (rs2) in the rd slot, as in real DLX encodings.
      std::uint32_t prim = 0;
      for (const auto& e : kItypePrims) {
        if (e.op == ins.op) {
          prim = e.prim;
          break;
        }
      }
      const std::uint32_t regfield =
          cls == OpClass::kStore ? ins.rs2 : ins.rd;
      return (prim << 26) | (std::uint32_t{ins.rs1} << 21) |
             (regfield << 16) | (static_cast<std::uint32_t>(ins.imm) & 0xffffu);
    }
  }
}

std::optional<Instruction> decode(std::uint32_t word) {
  const std::uint32_t prim = word >> 26;
  const std::uint32_t rs1 = (word >> 21) & 31u;
  const std::uint32_t rfield = (word >> 16) & 31u;

  if (prim == kPrimRtype) {
    const auto op = func_to_opcode(word & 0x7ffu);
    if (!op.has_value()) return std::nullopt;
    Instruction ins;
    ins.op = *op;
    ins.rs1 = static_cast<std::uint8_t>(rs1);
    ins.rs2 = static_cast<std::uint8_t>(rfield);
    ins.rd = static_cast<std::uint8_t>((word >> 11) & 31u);
    return ins;
  }
  if (prim == kPrimNop) return make_nop();
  if (prim == kPrimHalt) return make_halt();
  if (prim == kPrimJ || prim == kPrimJal) {
    Instruction ins;
    ins.op = prim == kPrimJ ? Opcode::kJ : Opcode::kJal;
    ins.imm = sign_extend26(word);
    return ins;
  }
  const auto op = prim_to_opcode(prim);
  if (!op.has_value()) return std::nullopt;
  Instruction ins;
  ins.op = *op;
  ins.rs1 = static_cast<std::uint8_t>(rs1);
  const OpClass cls = op_class(*op);
  if (cls == OpClass::kStore) {
    ins.rs2 = static_cast<std::uint8_t>(rfield);
  } else {
    ins.rd = static_cast<std::uint8_t>(rfield);
  }
  ins.imm = op == Opcode::kLhi ? static_cast<std::int32_t>(word & 0xffffu)
                               : sign_extend16(word);
  return ins;
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kSll: return "sll";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kSeq: return "seq";
    case Opcode::kSne: return "sne";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kXori: return "xori";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kSlti: return "slti";
    case Opcode::kLhi: return "lhi";
    case Opcode::kLw: return "lw";
    case Opcode::kLh: return "lh";
    case Opcode::kLhu: return "lhu";
    case Opcode::kLb: return "lb";
    case Opcode::kLbu: return "lbu";
    case Opcode::kSw: return "sw";
    case Opcode::kSh: return "sh";
    case Opcode::kSb: return "sb";
    case Opcode::kBeqz: return "beqz";
    case Opcode::kBnez: return "bnez";
    case Opcode::kJ: return "j";
    case Opcode::kJal: return "jal";
    case Opcode::kJr: return "jr";
    case Opcode::kJalr: return "jalr";
  }
  return "?";
}

std::string disassemble(const Instruction& ins) {
  std::ostringstream os;
  os << opcode_name(ins.op);
  switch (op_class(ins.op)) {
    case OpClass::kNop:
    case OpClass::kHalt:
      break;
    case OpClass::kAlu:
      os << " r" << +ins.rd << ", r" << +ins.rs1 << ", r" << +ins.rs2;
      break;
    case OpClass::kAluImm:
      if (ins.op == Opcode::kLhi) {
        os << " r" << +ins.rd << ", " << ins.imm;
      } else {
        os << " r" << +ins.rd << ", r" << +ins.rs1 << ", " << ins.imm;
      }
      break;
    case OpClass::kLoad:
      os << " r" << +ins.rd << ", " << ins.imm << "(r" << +ins.rs1 << ")";
      break;
    case OpClass::kStore:
      os << " " << ins.imm << "(r" << +ins.rs1 << "), r" << +ins.rs2;
      break;
    case OpClass::kBranch:
      os << " r" << +ins.rs1 << ", " << ins.imm;
      break;
    case OpClass::kJump:
    case OpClass::kJumpLink:
      os << " " << ins.imm;
      break;
    case OpClass::kJumpReg:
    case OpClass::kJumpLinkReg:
      os << " r" << +ins.rs1;
      break;
  }
  return os.str();
}

}  // namespace simcov::dlx
