#include "dlx/isa_model.hpp"

#include <stdexcept>

namespace simcov::dlx {

std::uint32_t alu_eval(Opcode op, std::uint32_t a, std::uint32_t b) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kAddi:
      return a + b;
    case Opcode::kSub:
      return a - b;
    case Opcode::kAnd:
    case Opcode::kAndi:
      return a & b;
    case Opcode::kOr:
    case Opcode::kOri:
      return a | b;
    case Opcode::kXor:
    case Opcode::kXori:
      return a ^ b;
    case Opcode::kSll:
    case Opcode::kSlli:
      return a << (b & 31u);
    case Opcode::kSrl:
    case Opcode::kSrli:
      return a >> (b & 31u);
    case Opcode::kSra:
    case Opcode::kSrai:
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                        (b & 31u));
    case Opcode::kSlt:
    case Opcode::kSlti:
      return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) ? 1
                                                                         : 0;
    case Opcode::kSltu:
      return a < b ? 1 : 0;
    case Opcode::kSeq:
      return a == b ? 1 : 0;
    case Opcode::kSne:
      return a != b ? 1 : 0;
    case Opcode::kLhi:
      return b << 16;
    default:
      throw std::logic_error("alu_eval: not an ALU opcode");
  }
}

IsaModel::IsaModel(std::vector<std::uint32_t> program, std::size_t data_size)
    : program_(std::move(program)), data_(data_size, 0) {
  if (data_size % 4 != 0) {
    throw std::invalid_argument("IsaModel: data size must be word-aligned");
  }
}

void IsaModel::set_reg(unsigned r, std::uint32_t value) {
  if (r >= kNumRegisters) throw std::out_of_range("set_reg: bad register");
  if (r != 0) state_.regs[r] = value;
}

void IsaModel::poke_word(std::uint32_t addr, std::uint32_t value) {
  store(addr, value, 4);
}

std::uint32_t IsaModel::peek_word(std::uint32_t addr) const {
  return load(addr, 4, false);
}

std::uint32_t IsaModel::load(std::uint32_t addr, unsigned size,
                             bool sign_extend) const {
  if (addr % size != 0) {
    throw std::domain_error("IsaModel: misaligned load");
  }
  if (addr + size > data_.size()) {
    throw std::out_of_range("IsaModel: load out of data memory");
  }
  std::uint32_t v = 0;
  for (unsigned k = 0; k < size; ++k) {
    v |= static_cast<std::uint32_t>(data_[addr + k]) << (8 * k);
  }
  if (sign_extend && size < 4) {
    const std::uint32_t sign_bit = 1u << (8 * size - 1);
    if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  }
  return v;
}

void IsaModel::store(std::uint32_t addr, std::uint32_t value, unsigned size) {
  if (addr % size != 0) {
    throw std::domain_error("IsaModel: misaligned store");
  }
  if (addr + size > data_.size()) {
    throw std::out_of_range("IsaModel: store out of data memory");
  }
  for (unsigned k = 0; k < size; ++k) {
    data_[addr + k] = static_cast<std::uint8_t>(value >> (8 * k));
  }
}

std::optional<RetireInfo> IsaModel::step() {
  if (halted_) return std::nullopt;
  const std::uint32_t pc = state_.pc;
  const std::size_t index = pc / 4;
  if (pc % 4 != 0 || index >= program_.size()) return std::nullopt;
  const auto decoded = decode(program_[index]);
  if (!decoded.has_value()) {
    throw std::domain_error("IsaModel: invalid instruction word");
  }
  const Instruction ins = *decoded;

  RetireInfo info;
  info.pc = pc;
  info.ins = ins;
  std::uint32_t next_pc = pc + 4;

  auto write_reg = [&](unsigned r, std::uint32_t value) {
    if (r != 0) {
      state_.regs[r] = value;
      info.reg_write = {static_cast<std::uint8_t>(r), value};
    }
  };
  auto update_psw = [&](std::uint32_t result) {
    state_.psw.zero = result == 0;
    state_.psw.negative = (result >> 31) != 0;
  };

  const std::uint32_t a = state_.regs[ins.rs1];
  const std::uint32_t b = state_.regs[ins.rs2];
  const std::uint32_t imm = static_cast<std::uint32_t>(ins.imm);

  switch (op_class(ins.op)) {
    case OpClass::kNop:
      break;
    case OpClass::kHalt:
      halted_ = true;
      next_pc = pc;
      break;
    case OpClass::kAlu: {
      const std::uint32_t r = alu_eval(ins.op, a, b);
      write_reg(ins.rd, r);
      update_psw(r);
      break;
    }
    case OpClass::kAluImm: {
      const std::uint32_t r = alu_eval(ins.op, a, imm);
      write_reg(ins.rd, r);
      update_psw(r);
      break;
    }
    case OpClass::kLoad: {
      const std::uint32_t addr = a + imm;
      std::uint32_t v = 0;
      switch (ins.op) {
        case Opcode::kLw: v = load(addr, 4, false); break;
        case Opcode::kLh: v = load(addr, 2, true); break;
        case Opcode::kLhu: v = load(addr, 2, false); break;
        case Opcode::kLb: v = load(addr, 1, true); break;
        case Opcode::kLbu: v = load(addr, 1, false); break;
        default: break;
      }
      write_reg(ins.rd, v);
      break;
    }
    case OpClass::kStore: {
      const std::uint32_t addr = a + imm;
      const unsigned size =
          ins.op == Opcode::kSw ? 4 : (ins.op == Opcode::kSh ? 2 : 1);
      const std::uint32_t masked =
          size == 4 ? b : (b & ((1u << (8 * size)) - 1));
      store(addr, masked, size);
      info.mem_write = MemWrite{addr, masked, static_cast<std::uint8_t>(size)};
      break;
    }
    case OpClass::kBranch: {
      const bool taken = ins.op == Opcode::kBeqz ? (a == 0) : (a != 0);
      if (taken) next_pc = pc + 4 + imm;
      break;
    }
    case OpClass::kJump:
      next_pc = pc + 4 + imm;
      break;
    case OpClass::kJumpLink:
      write_reg(kLinkRegister, pc + 4);
      next_pc = pc + 4 + imm;
      break;
    case OpClass::kJumpReg:
      next_pc = a;
      break;
    case OpClass::kJumpLinkReg:
      // Read rs1 before the link write (jalr r31 semantics).
      next_pc = a;
      write_reg(kLinkRegister, pc + 4);
      break;
  }

  state_.pc = next_pc;
  info.next_pc = next_pc;
  info.psw = state_.psw;
  info.halted = halted_;
  return info;
}

std::vector<RetireInfo> IsaModel::run(std::size_t max_steps) {
  std::vector<RetireInfo> trace;
  for (std::size_t k = 0; k < max_steps; ++k) {
    auto info = step();
    if (!info.has_value()) break;
    trace.push_back(*info);
    if (info->halted) break;
  }
  return trace;
}

}  // namespace simcov::dlx
