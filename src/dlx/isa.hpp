// DLX instruction set architecture (integer subset).
//
// The paper's case study is an RTL implementation of the DLX processor of
// Hennessy & Patterson, "except the floating-point and exception-handling
// instructions" (Section 7). This header defines that integer subset: the
// decoded instruction form, the 32-bit encoding (6-bit primary opcode,
// R-type function field, 16-bit immediates, 26-bit jump offset), and
// encode/decode/disassemble utilities.
//
// Conventions:
//  * 32 general-purpose registers; R0 reads as zero, writes are discarded.
//  * JAL/JALR link into R31.
//  * Branch/jump offsets are relative to the address of the *next*
//    instruction (PC + 4), as in H&P.
//  * Memory is little-endian in this implementation (documented deviation
//    from the historically big-endian DLX; nothing in the methodology
//    depends on byte order).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace simcov::dlx {

inline constexpr unsigned kNumRegisters = 32;
inline constexpr std::uint32_t kLinkRegister = 31;

enum class Opcode : std::uint8_t {
  kNop,
  kHalt,  // TRAP 0 in DLX terms: stops the machine
  // R-type ALU
  kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kSra,
  kSlt, kSltu, kSeq, kSne,
  // I-type ALU
  kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kSlti, kLhi,
  // Memory
  kLw, kLh, kLhu, kLb, kLbu, kSw, kSh, kSb,
  // Control
  kBeqz, kBnez, kJ, kJal, kJr, kJalr,
};

/// Coarse classification used by hazard logic and the test model.
enum class OpClass : std::uint8_t {
  kNop, kHalt, kAlu, kAluImm, kLoad, kStore, kBranch, kJump, kJumpLink,
  kJumpReg, kJumpLinkReg,
};

[[nodiscard]] OpClass op_class(Opcode op);

/// True for instructions that write a general-purpose register.
[[nodiscard]] bool writes_register(Opcode op);
/// True when the instruction reads rs1 / rs2.
[[nodiscard]] bool reads_rs1(Opcode op);
[[nodiscard]] bool reads_rs2(Opcode op);

/// A decoded instruction. Fields not used by the opcode are zero.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;  ///< sign-extended; jump offset for J/JAL

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// ---- Builders (programmatic assembler) ------------------------------------
Instruction make_nop();
Instruction make_halt();
Instruction make_rtype(Opcode op, unsigned rd, unsigned rs1, unsigned rs2);
Instruction make_itype(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm);
Instruction make_load(Opcode op, unsigned rd, unsigned rs1, std::int32_t offset);
Instruction make_store(Opcode op, unsigned rs1, unsigned rs2,
                       std::int32_t offset);
Instruction make_branch(Opcode op, unsigned rs1, std::int32_t offset);
Instruction make_jump(Opcode op, std::int32_t offset);      // J / JAL
Instruction make_jump_reg(Opcode op, unsigned rs1);         // JR / JALR
Instruction make_lhi(unsigned rd, std::uint16_t imm);

// ---- Encoding ---------------------------------------------------------------
/// Encodes to the 32-bit DLX word.
[[nodiscard]] std::uint32_t encode(const Instruction& ins);
/// Decodes a 32-bit word; nullopt for invalid opcodes/function fields.
[[nodiscard]] std::optional<Instruction> decode(std::uint32_t word);
/// Human-readable mnemonic form, e.g. "add r3, r1, r2".
[[nodiscard]] std::string disassemble(const Instruction& ins);
[[nodiscard]] const char* opcode_name(Opcode op);

}  // namespace simcov::dlx
