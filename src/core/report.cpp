#include "core/report.hpp"

#include <sstream>

namespace simcov::core {

const char* bug_name(dlx::PipelineBug bug) {
  using dlx::PipelineBug;
  switch (bug) {
    case PipelineBug::kNoForwardExMemA: return "no EX/MEM bypass (A)";
    case PipelineBug::kNoForwardExMemB: return "no EX/MEM bypass (B)";
    case PipelineBug::kNoForwardMemWbA: return "no MEM/WB bypass (A)";
    case PipelineBug::kNoForwardMemWbB: return "no MEM/WB bypass (B)";
    case PipelineBug::kNoIdBypass: return "no WB->ID bypass";
    case PipelineBug::kNoLoadUseStall: return "missing load-use interlock";
    case PipelineBug::kInterlockChecksRs1Only:
      return "interlock checks rs1 only";
    case PipelineBug::kNoSquashOnTakenBranch:
      return "no squash on taken branch";
    case PipelineBug::kSquashOnlyFetch: return "squash only in fetch";
    case PipelineBug::kJalLinksR30: return "JAL links r30";
    case PipelineBug::kBranchTargetOffByFour: return "branch target off by 4";
    case PipelineBug::kWritebackSelectsAluForLoad:
      return "WB selects address for load";
    case PipelineBug::kStoreDataStale: return "store data not bypassed";
    case PipelineBug::kBranchUsesStaleCondition:
      return "stale branch condition";
    case PipelineBug::kForwardPriorityWrong:
      return "bypass priority inverted";
    case PipelineBug::kInterlockMissesDoubleHazard:
      return "interlock misses double hazard";
    case PipelineBug::kForwardFromR0: return "bypass matches r0 producers";
  }
  return "?";
}

std::string format_report(const CampaignResult& result) {
  std::ostringstream os;
  os << "validation campaign\n";
  os << "  test model: " << result.latches << " latches, "
     << result.primary_inputs << " primary inputs\n";
  os << "  state space: " << result.model_states << " states, "
     << result.model_transitions << " transitions"
     << (result.model_truncated ? " (TRUNCATED)" : "") << "\n";
  os << "  test set: " << result.sequences << " sequences, "
     << result.test_length << " steps, " << result.total_instructions
     << " instructions\n";
  os << "  coverage: " << 100.0 * result.state_coverage << "% states, "
     << 100.0 * result.transition_coverage << "% transitions\n";
  os << "  clean implementation: "
     << (result.clean_pass ? "PASS" : "FAIL") << "\n";
  os << "  bugs exposed: " << result.bugs_exposed() << "/"
     << result.exposures.size() << "\n";
  for (const auto& e : result.exposures) {
    os << "    " << (e.exposed ? "EXPOSED " : "missed  ") << bug_name(e.bug)
       << "\n";
  }
  return os.str();
}

std::string format_report(const RequirementsReport& report) {
  std::ostringstream os;
  os << "requirements assessment\n";
  os << "  Def. 5 forall-k: ";
  if (report.forall_k.has_value()) {
    os << "all reachable pairs are forall-" << *report.forall_k
       << "-distinguishable\n";
  } else {
    os << "NOT satisfied for any checked k (Theorem 1 hypothesis fails)\n";
  }
  os << "  Req. 1 (uniform output errors): "
     << (report.r1_deterministic_outputs ? "holds (deterministic model)"
                                         : "VIOLATED")
     << "\n";
  os << "  Req. 4 (no masking), sampled masked fraction: "
     << 100.0 * report.r4_masked_fraction << "%\n";
  os << "  Req. 5 (interaction state observable): "
     << (report.r5_interaction_state_observable ? "yes" : "NO") << "\n";
  return os.str();
}

std::string format_line(TestMethod method, const MutantCoverageResult& r) {
  std::ostringstream os;
  os << method_name(method) << ": " << r.exposed << "/" << r.mutants;
  os.precision(3);
  os << " (" << 100.0 * r.exposure_rate() << "%) over " << r.sequences
     << " sequences, " << r.test_length << " steps";
  if (r.equivalent > 0) {
    os << " [" << r.equivalent << " equivalent mutants excluded]";
  }
  return os.str();
}

}  // namespace simcov::core
