#include "core/report.hpp"

#include <sstream>

#include "core/json.hpp"
#include "model/test_model.hpp"

namespace simcov::core {

const char* bug_name(dlx::PipelineBug bug) {
  using dlx::PipelineBug;
  switch (bug) {
    case PipelineBug::kNoForwardExMemA: return "no EX/MEM bypass (A)";
    case PipelineBug::kNoForwardExMemB: return "no EX/MEM bypass (B)";
    case PipelineBug::kNoForwardMemWbA: return "no MEM/WB bypass (A)";
    case PipelineBug::kNoForwardMemWbB: return "no MEM/WB bypass (B)";
    case PipelineBug::kNoIdBypass: return "no WB->ID bypass";
    case PipelineBug::kNoLoadUseStall: return "missing load-use interlock";
    case PipelineBug::kInterlockChecksRs1Only:
      return "interlock checks rs1 only";
    case PipelineBug::kNoSquashOnTakenBranch:
      return "no squash on taken branch";
    case PipelineBug::kSquashOnlyFetch: return "squash only in fetch";
    case PipelineBug::kJalLinksR30: return "JAL links r30";
    case PipelineBug::kBranchTargetOffByFour: return "branch target off by 4";
    case PipelineBug::kWritebackSelectsAluForLoad:
      return "WB selects address for load";
    case PipelineBug::kStoreDataStale: return "store data not bypassed";
    case PipelineBug::kBranchUsesStaleCondition:
      return "stale branch condition";
    case PipelineBug::kForwardPriorityWrong:
      return "bypass priority inverted";
    case PipelineBug::kInterlockMissesDoubleHazard:
      return "interlock misses double hazard";
    case PipelineBug::kForwardFromR0: return "bypass matches r0 producers";
  }
  return "?";
}

std::string format_report(const CampaignResult& result) {
  std::ostringstream os;
  os << "validation campaign\n";
  os << "  test model: " << result.latches << " latches, "
     << result.primary_inputs << " primary inputs\n";
  os << "  state space: " << result.model_states << " states, "
     << result.model_transitions << " transitions ("
     << model::backend_name(result.backend) << " backend)\n";
  os << "  test set: " << result.sequences << " sequences, "
     << result.test_length << " steps, " << result.total_instructions
     << " instructions\n";
  os << "  coverage: " << 100.0 * result.state_coverage << "% states, "
     << 100.0 * result.transition_coverage << "% transitions\n";
  os << "  clean implementation: "
     << (result.clean_pass ? "PASS" : "FAIL") << "\n";
  os << "  bugs exposed: " << result.bugs_exposed() << "/"
     << result.exposures.size() << "\n";
  for (const auto& e : result.exposures) {
    os << "    " << (e.exposed ? "EXPOSED " : "missed  ") << bug_name(e.bug);
    if (e.exposing_sequence.has_value()) {
      os << " (sequence " << *e.exposing_sequence << ", " << e.programs_run
         << " runs)";
    }
    if (e.budget_exhausted) os << " [cycle budget hit]";
    os << "\n";
  }
  if (result.runs_inconclusive > 0) {
    os << "  inconclusive runs (cycle budget): " << result.runs_inconclusive
       << "\n";
  }
  os.precision(3);
  os << "  wall time: " << result.timings.total_seconds << "s (model "
     << result.timings.model_build_seconds << "s, tour "
     << result.timings.tour_seconds << "s, concretize "
     << result.timings.concretize_seconds << "s, simulate "
     << result.timings.simulate_seconds << "s), "
     << result.total_impl_cycles() << " impl cycles\n";
  return os.str();
}

std::string format_report(const RequirementsReport& report) {
  std::ostringstream os;
  os << "requirements assessment\n";
  os << "  Def. 5 forall-k: ";
  if (report.forall_k.has_value()) {
    os << "all reachable pairs are forall-" << *report.forall_k
       << "-distinguishable\n";
  } else {
    os << "NOT satisfied for any checked k (Theorem 1 hypothesis fails)\n";
  }
  os << "  Req. 1 (uniform output errors): "
     << (report.r1_deterministic_outputs ? "holds (deterministic model)"
                                         : "VIOLATED")
     << "\n";
  os << "  Req. 4 (no masking), sampled masked fraction: "
     << 100.0 * report.r4_masked_fraction << "%\n";
  os << "  Req. 5 (interaction state observable): "
     << (report.r5_interaction_state_observable ? "yes" : "NO") << "\n";
  return os.str();
}

std::string format_line(TestMethod method, const MutantCoverageResult& r) {
  std::ostringstream os;
  os << method_name(method) << ": " << r.exposed << "/" << r.mutants;
  os.precision(3);
  const auto rate = r.exposure_rate();
  if (rate.has_value()) {
    os << " (" << 100.0 * *rate << "%)";
  } else {
    os << " (n/a: no real mutants sampled)";
  }
  os << " over " << r.sequences << " sequences, " << r.test_length
     << " steps";
  if (r.equivalent > 0) {
    os << " [" << r.equivalent << " equivalent mutants excluded]";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

namespace {

/// Fixed-width lowercase hex rendering of the variable-order fingerprint —
/// a stable string token consumers can diff across runs and thread counts.
std::string fingerprint_hex(std::uint64_t fp) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[fp & 0xfu];
    fp >>= 4;
  }
  return out;
}

void emit_timings(JsonWriter& w, const PhaseTimings& t) {
  w.begin_object("timings")
      .field("model_build_seconds", t.model_build_seconds)
      .field("symbolic_seconds", t.symbolic_seconds)
      .field("tour_seconds", t.tour_seconds)
      .field("concretize_seconds", t.concretize_seconds)
      .field("simulate_seconds", t.simulate_seconds)
      .field("total_seconds", t.total_seconds)
      .end_object();
}

/// The "metrics" section: histogram summaries plus flat counters/gauges.
/// Wall-clock derived — consumers needing determinism erase it, exactly
/// like "timings". Bucket arrays stay out of the report (the Prometheus
/// export carries them); the summary quantiles are what a human reads.
void emit_metrics(JsonWriter& w, const obs::MetricsSummary& m) {
  w.begin_object("metrics");
  w.begin_array("counters");
  for (const auto& c : m.counters) {
    w.element_object()
        .field("stage", obs::stage_name(c.stage))
        .field("name", c.name)
        .field("value", c.value)
        .end_object();
  }
  w.end_array();
  w.begin_array("gauges");
  for (const auto& g : m.gauges) {
    w.element_object()
        .field("stage", obs::stage_name(g.stage))
        .field("name", g.name)
        .field("value", g.value)
        .end_object();
  }
  w.end_array();
  w.begin_array("histograms");
  for (const auto& h : m.histograms) {
    w.element_object()
        .field("stage", obs::stage_name(h.stage))
        .field("name", h.name)
        .field("count", h.value.count)
        .field("sum", h.value.sum)
        .field("p50", h.value.p50)
        .field("p90", h.value.p90)
        .field("p99", h.value.p99)
        .field("max", h.value.max)
        .end_object();
  }
  w.end_array();
  w.end_object();
}

/// The "coverage_telemetry" section. Every value is an exact integer (the
/// JsonWriter prints doubles at 6 significant digits — integers round-trip,
/// which the bit-identity contract depends on).
void emit_coverage_telemetry(JsonWriter& w, const obs::CoverageTelemetry& t) {
  w.begin_object("coverage_telemetry");
  w.field("curve_budget", t.curve_budget);
  w.begin_array("convergence");
  for (const auto& p : t.convergence) {
    w.element_object()
        .field("sequence", p.sequence)
        .field("states_visited", p.states_visited)
        .field("transitions_covered", p.transitions_covered)
        .end_object();
  }
  w.end_array();
  w.begin_object("transition_hits")
      .field("distinct", t.distinct_transitions)
      .field("max_hits", t.max_transition_hits);
  // Log2 hit-count buckets, trailing zeros trimmed (bucket i holds the
  // transitions hit between 2^(i-1) and 2^i - 1 times).
  std::size_t last = t.transition_hits.size();
  while (last > 0 && t.transition_hits[last - 1] == 0) --last;
  w.begin_array("histogram");
  for (std::size_t i = 0; i < last; ++i) w.element(t.transition_hits[i]);
  w.end_array();
  w.end_object();
  w.begin_array("bug_exposure_latency");
  for (const auto& lat : t.bug_exposure_latency) {
    w.element_object().field("exposed", lat.exposed);
    if (lat.exposed) {
      w.field("sequences", lat.sequences);
    } else {
      w.null_field("sequences");
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string to_json(const CampaignResult& result) {
  JsonWriter w;
  w.begin_object();
  w.field("report", "campaign");
  w.begin_object("model")
      .field("backend", model::backend_name(result.backend))
      .field("latches", result.latches)
      .field("primary_inputs", result.primary_inputs)
      .field("states", result.model_states)
      .field("transitions", result.model_transitions);
  if (result.backend == model::Backend::kSymbolic &&
      result.bdd_stats.has_value()) {
    // Ordering/housekeeping summary of the live symbolic engine: the final
    // variable order (fingerprint of the level->var map), collection and
    // sifting pass counts, and the peak live-node high-water mark. Gated on
    // the symbolic backend so explicit-backend reports stay byte-identical.
    const auto& b = *result.bdd_stats;
    w.field("bdd_order", fingerprint_hex(b.order_fingerprint))
        .field("bdd_gc_runs", b.gc_runs)
        .field("bdd_reorders", b.reorders)
        .field("bdd_peak_nodes", b.peak_live_nodes);
  }
  w.end_object();
  w.begin_object("test_set")
      .field("sequences", result.sequences)
      .field("steps", result.test_length)
      .field("instructions", result.total_instructions)
      .field("state_coverage", result.state_coverage)
      .field("transition_coverage", result.transition_coverage)
      .end_object();
  w.field("clean_pass", result.clean_pass);
  w.field("bugs_exposed", result.bugs_exposed());
  w.field("runs_inconclusive", result.runs_inconclusive);
  w.field("total_impl_cycles", result.total_impl_cycles());
  w.begin_array("clean_runs");
  for (const auto& r : result.clean_runs) {
    w.element_object()
        .field("sequence", r.sequence)
        .field("impl_cycles", r.impl_cycles)
        .field("checkpoints", r.checkpoints)
        .field("passed", r.passed)
        .field("budget_exhausted", r.budget_exhausted)
        .end_object();
  }
  w.end_array();
  w.begin_array("exposures");
  for (const auto& e : result.exposures) {
    w.element_object()
        .field("bug", bug_name(e.bug))
        .field("exposed", e.exposed)
        .field("programs_run", e.programs_run)
        .field("impl_cycles", e.impl_cycles)
        .field("budget_exhausted", e.budget_exhausted);
    if (e.exposing_sequence.has_value()) {
      w.field("exposing_sequence", *e.exposing_sequence);
    } else {
      w.null_field("exposing_sequence");
    }
    w.end_object();
  }
  w.end_array();
  emit_timings(w, result.timings);
  // Optional sections append after "timings" — the default-spec campaign
  // report must stay a byte-identical prefix of a non-default one (pinned
  // by report_json_test's OptionalSectionsOmittedNotNull). The default
  // transition-tour spec emits no section, keeping pre-generator-layer
  // reports byte-identical.
  if (!model::is_default_generator(result.generator)) {
    const auto& g = result.generator;
    w.begin_object("generator")
        .field("kind", model::generator_kind_name(g.kind))
        .field("sequence_length", g.sequence_length)
        .field("max_walk_steps", g.max_walk_steps)
        .field("bias_strength", g.bias_strength)
        .field("hybrid_tour_steps", g.hybrid_tour_steps)
        .end_object();
  }
  if (result.symbolic_stats.has_value()) {
    const auto& s = *result.symbolic_stats;
    w.begin_object("symbolic")
        .field("transition_relation_nodes", s.transition_relation_nodes)
        .field("reachability_iterations", s.reachability_iterations)
        .field("reachable_states", s.reachable_states)
        .field("transitions", s.transitions)
        .field("valid_input_combinations", s.valid_input_combinations)
        .end_object();
  }
  if (result.bdd_stats.has_value()) {
    const auto& b = *result.bdd_stats;
    w.begin_object("bdd")
        .field("allocated_nodes", b.allocated_nodes)
        .field("live_nodes", b.live_nodes)
        .field("unique_lookups", b.unique_lookups)
        .field("unique_hits", b.unique_hits)
        .field("cache_lookups", b.cache_lookups)
        .field("cache_hits", b.cache_hits)
        .field("gc_runs", b.gc_runs)
        .end_object();
  }
  if (result.store_stats.has_value()) {
    const auto& s = *result.store_stats;
    w.begin_object("store")
        .field("hits", s.hits)
        .field("misses", s.misses)
        .field("evictions", s.evictions)
        .field("checkpoint_writes", s.checkpoint_writes)
        .field("bytes_read", s.bytes_read)
        .field("bytes_written", s.bytes_written)
        .field("resumed_sequences", s.resumed_sequences)
        .end_object();
  }
  if (result.metrics.has_value()) emit_metrics(w, *result.metrics);
  if (result.coverage_telemetry.has_value()) {
    emit_coverage_telemetry(w, *result.coverage_telemetry);
  }
  if (result.baseline.has_value()) {
    const auto& cmp = *result.baseline;
    const auto emit_perf = [&w](const char* key,
                                const store::PerfBaseline& b) {
      w.begin_object(key)
          .field("sequences", b.sequences)
          .field("test_steps", b.test_steps)
          .field("total_impl_cycles", b.total_impl_cycles)
          .field("total_seconds", b.total_seconds)
          .field("tour_seconds", b.tour_seconds)
          .field("concretize_seconds", b.concretize_seconds)
          .field("simulate_seconds", b.simulate_seconds)
          .end_object();
    };
    w.begin_object("baseline");
    w.field("found", cmp.found);
    w.field("regression", cmp.regression);
    w.field("tolerance", cmp.tolerance);
    w.field("wall_ratio", cmp.wall_ratio);
    emit_perf("stored", cmp.baseline);
    emit_perf("current", cmp.current);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::string to_json(TestMethod method, const MutantCoverageResult& result) {
  JsonWriter w;
  w.begin_object();
  w.field("report", "mutant_coverage");
  w.field("method", method_name(method));
  w.field("mutants", result.mutants);
  w.field("exposed", result.exposed);
  w.field("equivalent", result.equivalent);
  const auto rate = result.exposure_rate();
  if (rate.has_value()) {
    w.field("exposure_rate", *rate);
  } else {
    w.null_field("exposure_rate");
  }
  w.field("sequences", result.sequences);
  w.field("test_length", result.test_length);
  // Per real mutant, in sample order. Never-exposed mutants carry an
  // explicit "exposed":false with the latency omitted — not 0, which
  // would read as a real (and impossibly early) exposure index.
  w.begin_array("exposure_latency");
  for (const auto& m : result.mutant_exposures) {
    w.element_object().field("exposed", m.exposed);
    if (m.exposed) w.field("sequences", m.sequences);
    w.end_object();
  }
  w.end_array();
  emit_timings(w, result.timings);
  w.end_object();
  return w.str();
}

}  // namespace simcov::core
