// Minimal JSON assembly: objects/arrays with comma tracking. Shared by the
// core report emitters and the bench binaries' --json output; no external
// dependencies. Keys are always literal identifiers; string *values* get
// full RFC 8259 escaping (quotes, backslashes, and every control character
// below 0x20, including NUL), so arbitrary bytes survive the round trip.
// Double fields use the shortest representation that parses back to the
// same bits (up to max_digits10 significant digits), and non-finite values
// — which JSON cannot represent — serialize as null.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <type_traits>

namespace simcov::core {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    sep();
    os_ << '{';
    first_ = true;
    return *this;
  }
  JsonWriter& begin_object(const char* key) {
    sep();
    write_key(key);
    os_ << '{';
    first_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    os_ << '}';
    first_ = false;
    return *this;
  }
  JsonWriter& begin_array(const char* key) {
    sep();
    write_key(key);
    os_ << '[';
    first_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    os_ << ']';
    first_ = false;
    return *this;
  }
  /// Begins an unnamed object (array element).
  JsonWriter& element_object() { return begin_object(); }

  JsonWriter& field(const char* key, const std::string& value) {
    sep();
    write_key(key);
    write_string(value);
    return *this;
  }
  JsonWriter& field(const char* key, const char* value) {
    return field(key, std::string(value));
  }
  JsonWriter& field(const char* key, bool value) {
    sep();
    write_key(key);
    os_ << (value ? "true" : "false");
    return *this;
  }
  JsonWriter& field(const char* key, double value) {
    sep();
    write_key(key);
    write_double(value);
    return *this;
  }
  /// All counters in the reports are unsigned; one template avoids the
  /// size_t/uint64_t overload collision on LP64 platforms.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& field(const char* key, T value) {
    sep();
    write_key(key);
    os_ << static_cast<std::uint64_t>(value);
    return *this;
  }
  JsonWriter& null_field(const char* key) {
    sep();
    write_key(key);
    os_ << "null";
    return *this;
  }
  /// Embeds `raw_json` verbatim as the value of `key`. For splicing an
  /// already-serialized report (e.g. core::to_json output) into a larger
  /// document; the caller guarantees it is valid JSON.
  JsonWriter& raw_field(const char* key, const std::string& raw_json) {
    sep();
    write_key(key);
    os_ << raw_json;
    return *this;
  }
  /// Unnamed string value (array element).
  JsonWriter& element(const std::string& value) {
    sep();
    write_string(value);
    return *this;
  }
  /// Unnamed integral value (array element).
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& element(T value) {
    sep();
    os_ << static_cast<std::uint64_t>(value);
    return *this;
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  /// Emits the separating comma unless this is the first element at the
  /// current nesting level. Closing a container makes it count as an
  /// emitted element of its parent (end_* resets first_ to false).
  void sep() {
    if (!first_) os_ << ',';
    first_ = false;
  }
  void write_key(const char* key) { os_ << '"' << key << "\":"; }
  /// Shortest round-tripping decimal form: the first precision in
  /// [1, max_digits10] whose %g rendering parses back bit-equal. NaN and
  /// infinities have no JSON number form — they become null rather than the
  /// bare `nan`/`inf` tokens ostream would emit (which no parser accepts).
  void write_double(double value) {
    if (!std::isfinite(value)) {
      os_ << "null";
      return;
    }
    char buf[40];
    for (int prec = 1; prec <= std::numeric_limits<double>::max_digits10;
         ++prec) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, value);
      if (std::strtod(buf, nullptr) == value) break;
    }
    os_ << buf;
  }
  void write_string(const std::string& value) {
    os_ << '"';
    for (const char c : value) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        case '\b': os_ << "\\b"; break;
        case '\f': os_ << "\\f"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostringstream os_;
  bool first_ = true;
};

}  // namespace simcov::core
