#include "core/requirements.hpp"

#include <map>
#include <stdexcept>

#include "abstraction/abstraction.hpp"
#include "distinguish/distinguish.hpp"
#include "errmodel/errmodel.hpp"
#include "tour/tour.hpp"

namespace simcov::core {

RequirementsReport assess_requirements(const fsm::MealyMachine& machine,
                                       fsm::StateId start,
                                       const testmodel::TestModelOptions& opt,
                                       unsigned max_k,
                                       std::size_t mutant_sample,
                                       std::size_t probe_length,
                                       std::uint64_t seed) {
  RequirementsReport report;
  report.forall_k = distinguish::min_forall_k(machine, start, max_k);
  report.r5_interaction_state_observable =
      opt.expose_dest_outputs && opt.keep_dest_in_state;
  report.r1_deterministic_outputs = true;  // explicit machines are built
                                           // deterministic; see
                                           // analyze_projection for quotients

  // Requirement 4 estimate: sample transfer errors, probe with a random
  // walk, and count divergences that reconverge silently (Definition 4).
  const auto transfers = errmodel::enumerate_transfer_errors(machine, start);
  if (!transfers.empty() && probe_length > 0) {
    std::size_t masked = 0;
    std::size_t sampled = 0;
    const std::size_t step = std::max<std::size_t>(
        1, transfers.size() / std::max<std::size_t>(1, mutant_sample));
    for (std::size_t k = 0; k < transfers.size() && sampled < mutant_sample;
         k += step) {
      const auto mutant = errmodel::apply_mutation(machine, transfers[k]);
      // Probe along a walk through the MUTANT so the faulty transition is
      // actually exercised when reached.
      std::vector<fsm::InputId> probe;
      try {
        probe = tour::random_walk(mutant, start, probe_length, seed + k)
                    .inputs;
      } catch (const std::domain_error&) {
        continue;  // dead-end in the mutant: skip this sample
      }
      const auto analysis =
          errmodel::analyze_masking(machine, mutant, start, probe);
      if (analysis.masked()) ++masked;
      ++sampled;
    }
    if (sampled > 0) {
      report.r4_masked_fraction =
          static_cast<double>(masked) / static_cast<double>(sampled);
    }
  }
  return report;
}

ProjectionReport analyze_projection(
    const sym::ExplicitModel& explicit_model,
    const testmodel::BuiltTestModel& model,
    std::span<const std::string> dropped_prefixes) {
  const auto& latches = model.circuit.latches;
  if (!explicit_model.state_bits.empty() &&
      explicit_model.state_bits.front().size() != latches.size()) {
    throw std::invalid_argument(
        "analyze_projection: explicit model does not match circuit");
  }
  std::vector<bool> dropped(latches.size(), false);
  unsigned dropped_count = 0;
  for (std::size_t j = 0; j < latches.size(); ++j) {
    for (const std::string& prefix : dropped_prefixes) {
      if (latches[j].name.rfind(prefix, 0) == 0) {
        dropped[j] = true;
        ++dropped_count;
        break;
      }
    }
  }

  // Build the state map: explicit state -> masked bit vector -> abstract id.
  std::map<std::vector<bool>, fsm::StateId> abstract_of;
  std::vector<fsm::StateId> map(explicit_model.state_bits.size());
  for (fsm::StateId s = 0; s < explicit_model.state_bits.size(); ++s) {
    std::vector<bool> masked = explicit_model.state_bits[s];
    for (std::size_t j = 0; j < masked.size(); ++j) {
      if (dropped[j]) masked[j] = false;
    }
    const auto [it, inserted] = abstract_of.emplace(
        std::move(masked), static_cast<fsm::StateId>(abstract_of.size()));
    map[s] = it->second;
  }

  const abstraction::StateAbstraction abs(
      std::move(map), static_cast<fsm::StateId>(abstract_of.size()));
  const auto analysis =
      abstraction::analyze_abstraction(explicit_model.machine, abs);

  ProjectionReport report;
  report.kept_latches = static_cast<unsigned>(latches.size()) - dropped_count;
  report.dropped_latches = dropped_count;
  report.abstract_states = abstract_of.size();
  report.output_nondet_pairs = analysis.nondet_output_pairs.size();
  report.output_deterministic = analysis.output_deterministic;
  report.deterministic = analysis.deterministic;
  return report;
}

}  // namespace simcov::core
