// Textual reporting for campaign and requirement results — the same
// summaries the bench binaries print, available to library users.
#pragma once

#include <string>

#include "core/campaign.hpp"
#include "core/requirements.hpp"

namespace simcov::core {

/// Multi-line human-readable campaign summary.
std::string format_report(const CampaignResult& result);

/// Multi-line requirements assessment summary.
std::string format_report(const RequirementsReport& report);

/// One line per mutant-coverage run, e.g.
/// "transition-tour: 265/273 (97.1%) over 19 sequences, 40773 steps".
/// An empty sample prints "n/a" instead of a rate.
std::string format_line(TestMethod method, const MutantCoverageResult& r);

/// Short display name of a pipeline bug, e.g. "missing load-use interlock".
const char* bug_name(dlx::PipelineBug bug);

// ---------------------------------------------------------------------------
// Machine-readable reports
// ---------------------------------------------------------------------------
//
// Single JSON object per result, stable keys, no external dependencies
// (writer: core/json.hpp).
// Schema (see DESIGN.md "Structured run reports"):
//   campaign: model{backend,...}, test_set{...}, timings{...},
//             clean_runs[...], exposures[...], runs_inconclusive,
//             bdd{...}?, symbolic{...}? (always present on the symbolic
//             backend)
//   mutant coverage: method, mutants, exposed, equivalent, exposure_rate
//             (null when no real mutants were sampled), timings{...}

/// JSON report of a full campaign.
std::string to_json(const CampaignResult& result);

/// JSON report of one mutant-coverage run.
std::string to_json(TestMethod method, const MutantCoverageResult& result);

}  // namespace simcov::core
