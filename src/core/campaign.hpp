// End-to-end validation campaigns — the complete Figure 1 flow, and the
// abstract (machine-level) completeness experiments behind Theorem 3.
//
// A campaign: build the control test model -> extract its reachable state
// space -> generate a test set with a chosen coverage method (transition
// tour set / state tour / random walk) -> concretize each sequence into a
// DLX program -> simulate spec vs implementation and compare checkpoints.
// Run once per injected implementation bug to measure error exposure.
//
// The mutant-coverage evaluator performs the same comparison purely at the
// test-model level with the paper's error model (output/transfer mutations),
// which is what Theorem 3 actually speaks about.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dlx/pipeline.hpp"
#include "fsm/mealy.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::core {

enum class TestMethod : std::uint8_t {
  kTransitionTourSet,  ///< every transition covered (the paper's method)
  kStateTour,          ///< every state covered [Iwashita+94-style]
  kRandomWalk,         ///< plain random simulation baseline
  kWMethod,            ///< P·W conformance suite [Chow/Dahbura+90 lineage]
};

[[nodiscard]] const char* method_name(TestMethod method);

struct CampaignOptions {
  testmodel::TestModelOptions model_options;
  TestMethod method = TestMethod::kTransitionTourSet;
  std::size_t max_states = 100000;
  /// Length of the random-walk baseline.
  std::size_t random_length = 2000;
  std::uint64_t seed = 1;
};

struct BugExposure {
  dlx::PipelineBug bug;
  bool exposed = false;
};

struct CampaignResult {
  unsigned latches = 0;
  unsigned primary_inputs = 0;
  std::size_t model_states = 0;
  std::size_t model_transitions = 0;
  bool model_truncated = false;
  std::size_t sequences = 0;
  std::size_t test_length = 0;  ///< total tour steps
  double state_coverage = 0.0;
  double transition_coverage = 0.0;
  std::size_t total_instructions = 0;
  /// The correct implementation passes every program of the test set.
  bool clean_pass = false;
  std::vector<BugExposure> exposures;

  [[nodiscard]] std::size_t bugs_exposed() const;
};

/// Runs a full campaign against each bug in `bugs` (plus a clean run).
CampaignResult run_campaign(const CampaignOptions& options,
                            std::span<const dlx::PipelineBug> bugs);

// ---------------------------------------------------------------------------
// Abstract completeness experiments (machine-level, Theorem 3)
// ---------------------------------------------------------------------------

struct MutantCoverageOptions {
  TestMethod method = TestMethod::kTransitionTourSet;
  std::size_t random_length = 500;
  std::uint64_t seed = 1;
  /// Extra steps appended to every sequence so the final transitions also
  /// get their k-step exposure window (Theorem 1's simulation horizon).
  unsigned k_extension = 0;
  std::size_t mutant_sample = 200;
  /// Detect mutants that are behaviourally equivalent to the specification
  /// (no test can expose them) and report them separately instead of
  /// counting them against the method.
  bool exclude_equivalent = false;
};

struct MutantCoverageResult {
  std::size_t mutants = 0;   ///< sampled mutants that are real errors
  std::size_t exposed = 0;
  std::size_t equivalent = 0;  ///< sampled mutants with identical behaviour
  std::size_t sequences = 0;
  std::size_t test_length = 0;

  [[nodiscard]] double exposure_rate() const {
    return mutants == 0 ? 1.0
                        : static_cast<double>(exposed) /
                              static_cast<double>(mutants);
  }
};

/// Samples output+transfer mutants of `machine` and measures how many the
/// chosen test method exposes. Throws std::runtime_error when the method
/// cannot generate a test set for the machine.
MutantCoverageResult evaluate_mutant_coverage(
    const fsm::MealyMachine& machine, fsm::StateId start,
    const MutantCoverageOptions& options);

}  // namespace simcov::core
