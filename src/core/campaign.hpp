// End-to-end validation campaigns — the complete Figure 1 flow, and the
// abstract (machine-level) completeness experiments behind Theorem 3.
//
// A campaign: build the control test model -> pick a backend (explicit
// enumeration when the reachable state space fits the budget, the implicit
// BDD representation otherwise) -> generate a test set with a chosen
// coverage method (transition tour set / state tour / random walk) ->
// concretize each sequence into a DLX program -> simulate spec vs
// implementation and compare checkpoints. Run once per injected
// implementation bug to measure error exposure.
//
// The mutant-coverage evaluator performs the same comparison purely at the
// test-model level with the paper's error model (output/transfer mutations),
// which is what Theorem 3 actually speaks about.
//
// Both experiments are embarrassingly parallel (one simulation per injected
// bug, one replay per sampled mutant) and shard their hot loops across a
// runtime::ThreadPool. Every randomized phase draws from its own RNG stream
// derived from (options.seed, stream tag) — see runtime/rng.hpp — so results
// are bit-identical at any thread count, including 1.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bdd/bdd.hpp"
#include "dlx/pipeline.hpp"
#include "fsm/mealy.hpp"
#include "model/explicit_model.hpp"
#include "model/test_model.hpp"
#include "sym/symbolic_fsm.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::core {

enum class TestMethod : std::uint8_t {
  kTransitionTourSet,  ///< every transition covered (the paper's method)
  kStateTour,          ///< every state covered [Iwashita+94-style]
  kRandomWalk,         ///< plain random simulation baseline
  kWMethod,            ///< P·W conformance suite [Chow/Dahbura+90 lineage]
};

[[nodiscard]] const char* method_name(TestMethod method);

/// Which test-model representation the campaign runs on. kAuto picks
/// explicit when the reachable state space fits the enumeration budget
/// (CampaignOptions::max_states) and falls back to the implicit (BDD)
/// backend otherwise — large models are no longer truncated.
enum class BackendChoice : std::uint8_t {
  kAuto,
  kExplicit,  ///< force enumeration; throws if the budget is exceeded
  kSymbolic,  ///< force the implicit representation
};

/// Wall-clock seconds spent in each campaign phase. Only the phases a given
/// experiment runs are filled; the rest stay zero.
struct PhaseTimings {
  double model_build_seconds = 0.0;  ///< circuit build + explicit extraction
  double symbolic_seconds = 0.0;     ///< optional BDD reachability snapshot
  double tour_seconds = 0.0;         ///< test-set generation + coverage eval
  double concretize_seconds = 0.0;   ///< tour -> DLX program translation
  double simulate_seconds = 0.0;     ///< spec-vs-impl runs / mutant replays
  double total_seconds = 0.0;
};

/// Telemetry of one spec-vs-impl simulation run (one test-set program).
struct RunMetrics {
  std::size_t sequence = 0;  ///< index of the program within the test set
  std::uint64_t impl_cycles = 0;
  std::size_t checkpoints = 0;  ///< retire checkpoints compared
  bool passed = false;
  bool budget_exhausted = false;  ///< hit max_cycles: inconclusive
};

struct CampaignOptions {
  testmodel::TestModelOptions model_options;
  TestMethod method = TestMethod::kTransitionTourSet;
  /// Test-model representation (see BackendChoice). State-tour and W-method
  /// generation are explicit-only and throw on the symbolic backend.
  BackendChoice backend = BackendChoice::kAuto;
  /// Explicit-enumeration budget: kAuto switches to the symbolic backend
  /// when the reachable state space exceeds this.
  std::size_t max_states = 100000;
  /// Step cap for symbolic transition tours (explicit generators always
  /// terminate on their own).
  std::size_t max_tour_steps = 10'000'000;
  /// Length of the random-walk baseline.
  std::size_t random_length = 2000;
  std::uint64_t seed = 1;
  /// Worker threads for the concretization/simulation loops
  /// (0 = one per hardware thread). Results are identical at any setting.
  std::size_t threads = 0;
  /// Per-run cycle budget handed to the validation harness.
  std::size_t max_cycles = 1u << 20;
  /// Also build the symbolic (BDD) view of the test model and snapshot its
  /// statistics into the result. Costs one reachability fixpoint.
  bool collect_symbolic_stats = false;
};

struct BugExposure {
  dlx::PipelineBug bug;
  bool exposed = false;
  /// Index of the first test-set program that exposed the bug.
  std::optional<std::size_t> exposing_sequence;
  std::size_t programs_run = 0;   ///< simulations until exposure (or all)
  std::uint64_t impl_cycles = 0;  ///< implementation cycles across them
  /// Some run against this bug hit the cycle budget (inconclusive; never
  /// counted as exposure).
  bool budget_exhausted = false;
};

struct CampaignResult {
  unsigned latches = 0;
  unsigned primary_inputs = 0;
  /// Representation the campaign actually ran on (after kAuto resolution).
  model::Backend backend = model::Backend::kExplicit;
  std::size_t model_states = 0;
  std::size_t model_transitions = 0;
  std::size_t sequences = 0;
  std::size_t test_length = 0;  ///< total tour steps
  double state_coverage = 0.0;
  double transition_coverage = 0.0;
  std::size_t total_instructions = 0;
  /// The correct implementation passes every program of the test set.
  bool clean_pass = false;
  std::vector<BugExposure> exposures;
  /// Telemetry of each clean (bug-free) run, one per test-set program.
  std::vector<RunMetrics> clean_runs;
  /// Runs (clean + per-bug) that exhausted the cycle budget.
  std::size_t runs_inconclusive = 0;
  PhaseTimings timings;
  /// Filled when CampaignOptions::collect_symbolic_stats is set.
  std::optional<sym::SymbolicFsmStats> symbolic_stats;
  std::optional<bdd::BddStats> bdd_stats;

  [[nodiscard]] std::size_t bugs_exposed() const;
  [[nodiscard]] std::uint64_t total_impl_cycles() const;
};

/// Runs a full campaign against each bug in `bugs` (plus a clean run).
CampaignResult run_campaign(const CampaignOptions& options,
                            std::span<const dlx::PipelineBug> bugs);

// ---------------------------------------------------------------------------
// Abstract completeness experiments (machine-level, Theorem 3)
// ---------------------------------------------------------------------------

struct MutantCoverageOptions {
  TestMethod method = TestMethod::kTransitionTourSet;
  std::size_t random_length = 500;
  std::uint64_t seed = 1;
  /// Extra steps appended to every sequence so the final transitions also
  /// get their k-step exposure window (Theorem 1's simulation horizon).
  unsigned k_extension = 0;
  std::size_t mutant_sample = 200;
  /// Detect mutants that are behaviourally equivalent to the specification
  /// (no test can expose them) and report them separately instead of
  /// counting them against the method.
  bool exclude_equivalent = false;
  /// Worker threads for the per-mutant replay loop (0 = one per hardware
  /// thread). Results are identical at any setting.
  std::size_t threads = 0;
};

struct MutantCoverageResult {
  std::size_t mutants = 0;   ///< sampled mutants that are real errors
  std::size_t exposed = 0;
  std::size_t equivalent = 0;  ///< sampled mutants with identical behaviour
  std::size_t sequences = 0;
  std::size_t test_length = 0;
  PhaseTimings timings;

  /// Fraction of real sampled mutants the test set exposed. Empty when the
  /// sampler produced no real mutants: "nothing to expose" is not "complete
  /// coverage", and must not read as 100%.
  [[nodiscard]] std::optional<double> exposure_rate() const {
    if (mutants == 0) return std::nullopt;
    return static_cast<double>(exposed) / static_cast<double>(mutants);
  }
};

/// Samples output+transfer mutants of `machine` and measures how many the
/// chosen test method exposes. Throws std::runtime_error when the method
/// cannot generate a test set for the machine.
MutantCoverageResult evaluate_mutant_coverage(
    const fsm::MealyMachine& machine, fsm::StateId start,
    const MutantCoverageOptions& options);

/// Convenience overload over the TestModel adapter (explicit backend only —
/// the error model enumerates the transition table).
MutantCoverageResult evaluate_mutant_coverage(
    const model::ExplicitModel& model, const MutantCoverageOptions& options);

}  // namespace simcov::core
