// End-to-end validation campaigns — the complete Figure 1 flow, and the
// abstract (machine-level) completeness experiments behind Theorem 3.
//
// The campaign engine itself lives in src/pipeline: a streaming
// pipeline::ValidationPipeline assembled from typed stages (model build ->
// tour -> concretize -> simulate -> compare), instrumented through
// obs::EventSink, with per-stage budgets and cooperative cancellation.
// This header re-exports the pipeline contracts under the historical
// core:: names and keeps the two entry points as thin assemblies:
//
//   * run_campaign — the Figure-1 DLX campaign;
//   * evaluate_mutant_coverage — the Theorem-3 mutant-coverage evaluator.
//
// Every randomized phase draws from its own RNG stream derived from
// (options.seed, stream tag) — see runtime/rng.hpp — so results are
// bit-identical at any thread count, including 1.
#pragma once

#include <span>

#include "fsm/mealy.hpp"
#include "model/explicit_model.hpp"
#include "pipeline/contracts.hpp"

namespace simcov::core {

// Campaign contracts (moved to pipeline/contracts.hpp; re-exported so
// existing core:: callers compile unchanged).
using pipeline::BackendChoice;
using pipeline::BugExposure;
using pipeline::CampaignOptions;
using pipeline::CampaignResult;
using pipeline::CancellationToken;
using pipeline::method_name;
// Generator-spec vocabulary (model/generator_spec.hpp) — selects the
// sequence-generation strategy carried by CampaignOptions::generator.
using model::GeneratorKind;
using model::GeneratorSpec;
using model::generator_kind_name;
using model::parse_generator_kind;
using pipeline::MutantCoverageOptions;
using pipeline::MutantCoverageResult;
using pipeline::PhaseTimings;
using pipeline::RunMetrics;
using pipeline::StageBudget;
using pipeline::StageBudgets;
using pipeline::StageReport;
using pipeline::TestMethod;
using pipeline::timings_from_spans;

/// Runs a full campaign against each bug in `bugs` (plus a clean run).
/// Thin assembly of pipeline::ValidationPipeline.
CampaignResult run_campaign(const CampaignOptions& options,
                            std::span<const dlx::PipelineBug> bugs);

/// Samples output+transfer mutants of the model's machine and measures how
/// many the chosen test method exposes (Theorem 3). Throws
/// std::runtime_error when the method cannot generate a test set.
MutantCoverageResult evaluate_mutant_coverage(
    const model::ExplicitModel& model, const MutantCoverageOptions& options);

}  // namespace simcov::core
