// Methodology-level checkers for the paper's Requirements 1-5 and
// Definition 5, applied to an (explicit) test model.
//
//  * Definition 5 / Theorem 2: `forall_k` computes the smallest k for which
//    every pair of distinct reachable states is ∀k-distinguishable.
//  * Requirement 1 (uniform output errors): `analyze_projection` drops named
//    latch groups from the model state (the paper's "abstracting too much",
//    Section 6.3) and reports the output nondeterminism of the quotient —
//    each nondeterministic (state, input) pair is an abstract transition on
//    which an output error need not be uniform.
//  * Requirement 4 (no masking): `estimate_masking` samples transfer errors
//    and measures how often the state traces reconverge without an output
//    difference along probe runs.
//  * Requirements 2/3/5 are structural: bounded pipeline latency, data
//    selection during concretization, and the expose_dest_outputs switch;
//    `assess_requirements` folds them into one report.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fsm/mealy.hpp"
#include "sym/symbolic_fsm.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::core {

struct RequirementsReport {
  /// Smallest k such that all distinct reachable state pairs are
  /// ∀k-distinguishable (Definition 5); nullopt if none up to max_k.
  std::optional<unsigned> forall_k;
  /// Requirement 5: interaction state (destination addresses) observable.
  bool r5_interaction_state_observable = false;
  /// Requirement 1 on the model as built: the machine is deterministic, so
  /// output errors on its own transitions are uniform by construction.
  bool r1_deterministic_outputs = true;
  /// Requirement 4 estimate: fraction of sampled transfer errors that are
  /// masked along the probe run (0 = none masked).
  double r4_masked_fraction = 0.0;
};

/// Assesses the requirements on an explicit test model.
/// @param probe_length  length of the random probe used for the masking
///                      estimate.
RequirementsReport assess_requirements(const fsm::MealyMachine& machine,
                                       fsm::StateId start,
                                       const testmodel::TestModelOptions& opt,
                                       unsigned max_k = 8,
                                       std::size_t mutant_sample = 50,
                                       std::size_t probe_length = 200,
                                       std::uint64_t seed = 1);

/// Over-abstraction analysis (Requirement 1 ablation): project away the
/// latches whose names start with any of `dropped_prefixes` and inspect the
/// quotient machine.
struct ProjectionReport {
  unsigned kept_latches = 0;
  unsigned dropped_latches = 0;
  std::size_t abstract_states = 0;
  /// (state, input) pairs of the quotient with conflicting outputs: on these
  /// abstract transitions an output error is NOT guaranteed uniform.
  std::size_t output_nondet_pairs = 0;
  bool output_deterministic = true;
  bool deterministic = true;
};

ProjectionReport analyze_projection(
    const sym::ExplicitModel& explicit_model,
    const testmodel::BuiltTestModel& model,
    std::span<const std::string> dropped_prefixes);

}  // namespace simcov::core
