#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "distinguish/distinguish.hpp"
#include "distinguish/wmethod.hpp"
#include "errmodel/errmodel.hpp"
#include "model/symbolic_model.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "sym/symbolic_fsm.hpp"
#include "tour/tour.hpp"
#include "validate/concretize.hpp"
#include "validate/harness.hpp"

namespace simcov::core {

const char* method_name(TestMethod method) {
  switch (method) {
    case TestMethod::kTransitionTourSet: return "transition-tour";
    case TestMethod::kStateTour: return "state-tour";
    case TestMethod::kRandomWalk: return "random-walk";
    case TestMethod::kWMethod: return "w-method";
  }
  return "?";
}

std::size_t CampaignResult::bugs_exposed() const {
  std::size_t n = 0;
  for (const auto& e : exposures) {
    if (e.exposed) ++n;
  }
  return n;
}

std::uint64_t CampaignResult::total_impl_cycles() const {
  std::uint64_t n = 0;
  for (const auto& r : clean_runs) n += r.impl_cycles;
  for (const auto& e : exposures) n += e.impl_cycles;
  return n;
}

namespace {

/// Stopwatch for the per-phase wall times of PhaseTimings.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  /// Seconds since construction or the last lap(), and restarts.
  double lap() {
    const auto now = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Generates the test set for a method over an explicit machine.
tour::TourSet generate_test_set(const fsm::MealyMachine& machine,
                                fsm::StateId start, TestMethod method,
                                std::size_t random_length,
                                std::uint64_t seed) {
  tour::TourSet set;
  set.start = start;
  switch (method) {
    case TestMethod::kTransitionTourSet: {
      auto t = tour::greedy_transition_tour_set(machine, start);
      if (!t.has_value()) {
        throw std::runtime_error("transition tour set generation failed");
      }
      return *t;
    }
    case TestMethod::kStateTour: {
      auto t = tour::state_tour(machine, start);
      if (!t.has_value()) {
        throw std::runtime_error("state tour generation failed");
      }
      set.sequences.push_back(std::move(t->inputs));
      return set;
    }
    case TestMethod::kRandomWalk: {
      set.sequences.push_back(
          tour::random_walk(machine, start,
                            random_length,
                            runtime::derive_stream(
                                seed, runtime::Stream::kWalkStream))
              .inputs);
      return set;
    }
    case TestMethod::kWMethod: {
      // The W-method requires a minimal machine; minimize first. Suite
      // sequences remain valid on the original machine (behavioural
      // equivalence from reset includes definedness).
      const auto minimized = distinguish::minimize(machine, start);
      auto suite = distinguish::wmethod_test_suite(
          minimized.machine, minimized.machine.initial_state());
      if (!suite.has_value()) {
        throw std::runtime_error("W-method suite generation failed");
      }
      suite->start = start;
      return *suite;
    }
  }
  throw std::logic_error("unknown test method");
}

/// Extends a sequence by `extra` valid steps (smallest defined input each
/// step), providing the exposure window of Theorem 1.
void extend_sequence(const fsm::MealyMachine& machine, fsm::StateId start,
                     std::vector<fsm::InputId>& seq, unsigned extra) {
  fsm::StateId at = machine.run_to_state(seq, start);
  for (unsigned k = 0; k < extra; ++k) {
    bool stepped = false;
    for (fsm::InputId i = 0; i < machine.num_inputs(); ++i) {
      const auto t = machine.transition(at, i);
      if (t.has_value()) {
        seq.push_back(i);
        at = t->next;
        stepped = true;
        break;
      }
    }
    if (!stepped) return;  // dead end: nothing to extend with
  }
}

/// Resolves the backend choice into a concrete TestModel. Returns the
/// adapter; `out_explicit` is set when it is the explicit one (some phases
/// — state tour, W-method — need the underlying machine).
std::unique_ptr<model::TestModel> select_backend(
    const CampaignOptions& options, const testmodel::BuiltTestModel& built,
    model::ExplicitModel** out_explicit) {
  *out_explicit = nullptr;
  if (options.backend != BackendChoice::kSymbolic) {
    auto extraction = sym::extract_explicit(built.circuit, options.max_states);
    if (!extraction.truncated) {
      auto exp = std::make_unique<model::ExplicitModel>(std::move(extraction));
      *out_explicit = exp.get();
      return exp;
    }
    if (options.backend == BackendChoice::kExplicit) {
      throw std::runtime_error(
          "run_campaign: explicit backend requested but the reachable state "
          "space exceeds max_states");
    }
  }
  return std::make_unique<model::SymbolicModel>(built.circuit);
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options,
                            std::span<const dlx::PipelineBug> bugs) {
  Stopwatch total;
  Stopwatch phase;
  CampaignResult result;
  const auto model =
      testmodel::build_dlx_control_model(options.model_options);
  result.latches = model.num_latches;
  result.primary_inputs = model.num_inputs;

  model::ExplicitModel* exp = nullptr;
  const auto test_model = select_backend(options, model, &exp);
  result.backend = test_model->backend();
  result.model_states =
      static_cast<std::size_t>(test_model->count_reachable_states());
  result.model_transitions =
      static_cast<std::size_t>(test_model->count_reachable_transitions());
  result.timings.model_build_seconds = phase.lap();

  if (options.collect_symbolic_stats ||
      result.backend == model::Backend::kSymbolic) {
    if (auto* sym_model = dynamic_cast<model::SymbolicModel*>(
            test_model.get())) {
      // The campaign already holds the implicit representation; snapshot it
      // instead of paying a second reachability fixpoint.
      result.symbolic_stats = sym_model->fsm().stats();
      result.bdd_stats = sym_model->manager().stats();
    } else if (options.collect_symbolic_stats) {
      bdd::BddManager mgr;
      sym::SymbolicFsm symbolic(mgr, model.circuit);
      result.symbolic_stats = symbolic.stats();
      result.bdd_stats = mgr.stats();
    }
    result.timings.symbolic_seconds = phase.lap();
  }

  model::TourResult tour_result;
  switch (options.method) {
    case TestMethod::kTransitionTourSet: {
      model::TourOptions tour_options;
      tour_options.max_steps = options.max_tour_steps;
      tour_result = test_model->transition_tour(tour_options);
      break;
    }
    case TestMethod::kRandomWalk:
      tour_result = test_model->random_walk(
          options.random_length,
          runtime::derive_stream(options.seed, runtime::Stream::kWalkStream));
      break;
    case TestMethod::kStateTour:
    case TestMethod::kWMethod: {
      if (exp == nullptr) {
        throw std::runtime_error(
            std::string("run_campaign: ") + method_name(options.method) +
            " generation requires the explicit backend");
      }
      tour_result = exp->to_result(
          generate_test_set(exp->machine(), exp->start(), options.method,
                            options.random_length, options.seed));
      break;
    }
  }
  result.sequences = tour_result.tour.sequences.size();
  result.test_length = tour_result.steps;
  result.state_coverage = tour_result.coverage.state_coverage();
  result.transition_coverage = tour_result.coverage.transition_coverage();
  result.timings.tour_seconds = phase.lap();

  // One worker pool for every sharded loop below. Each loop writes into
  // pre-sized per-index slots, so the outcome is independent of scheduling.
  runtime::ThreadPool pool(options.threads);

  // Concretize every sequence (backend-neutral: each tour step is already a
  // primary-input bit vector).
  const auto& sequences = tour_result.tour.sequences;
  std::vector<validate::ConcretizedProgram> programs(sequences.size());
  pool.for_each_index(sequences.size(), [&](std::size_t i) {
    programs[i] = validate::concretize_sequence(model, sequences[i]);
  });
  for (const auto& prog : programs) {
    result.total_instructions += prog.instructions.size();
  }
  result.timings.concretize_seconds = phase.lap();

  // Clean run: the bug-free implementation must pass everything.
  result.clean_runs.resize(programs.size());
  pool.for_each_index(programs.size(), [&](std::size_t i) {
    const auto r =
        validate::run_validation(programs[i], {}, options.max_cycles);
    result.clean_runs[i] = RunMetrics{i, r.impl_cycles,
                                      r.checkpoints_compared, r.passed,
                                      r.cycle_budget_exhausted};
  });
  result.clean_pass =
      std::all_of(result.clean_runs.begin(), result.clean_runs.end(),
                  [](const RunMetrics& r) { return r.passed; });

  // Per-bug exposure: independent across bugs; within a bug the programs
  // run in order with early exit at the first exposing one, exactly like
  // the serial engine. Budget-exhausted runs never count as exposure.
  result.exposures.resize(bugs.size());
  pool.for_each_index(bugs.size(), [&](std::size_t b) {
    BugExposure exposure;
    exposure.bug = bugs[b];
    const dlx::PipelineConfig config{{bugs[b]}};
    for (std::size_t i = 0; i < programs.size(); ++i) {
      const auto r =
          validate::run_validation(programs[i], config, options.max_cycles);
      ++exposure.programs_run;
      exposure.impl_cycles += r.impl_cycles;
      if (r.cycle_budget_exhausted) exposure.budget_exhausted = true;
      if (r.error_detected()) {
        exposure.exposed = true;
        exposure.exposing_sequence = i;
        break;
      }
    }
    result.exposures[b] = exposure;
  });
  result.timings.simulate_seconds = phase.lap();

  for (const auto& r : result.clean_runs) {
    if (r.budget_exhausted) ++result.runs_inconclusive;
  }
  for (const auto& e : result.exposures) {
    if (e.budget_exhausted) ++result.runs_inconclusive;
  }
  result.timings.total_seconds = total.lap();
  return result;
}

MutantCoverageResult evaluate_mutant_coverage(
    const fsm::MealyMachine& machine, fsm::StateId start,
    const MutantCoverageOptions& options) {
  Stopwatch total;
  Stopwatch phase;
  MutantCoverageResult result;
  tour::TourSet set = generate_test_set(machine, start, options.method,
                                        options.random_length, options.seed);
  if (options.k_extension > 0) {
    for (auto& seq : set.sequences) {
      extend_sequence(machine, start, seq, options.k_extension);
    }
  }
  result.sequences = set.sequences.size();
  result.test_length = set.total_length();
  result.timings.tour_seconds = phase.lap();

  // Mutant sampling draws from its own stream: deriving it from the walk's
  // seed (the old `seed ^ 0x9e3779b9` scheme) correlates the sampled error
  // space with the random tests meant to find it.
  const auto mutants = errmodel::sample_mutations(
      machine, start, machine.output_alphabet_size(), options.mutant_sample,
      runtime::derive_stream(options.seed, runtime::Stream::kMutantStream));

  // Replay every mutant against the test set, sharded; per-mutant verdicts
  // land in their own slot and are folded in sample order afterwards.
  struct Verdict {
    bool exposed = false;
    bool equivalent = false;
  };
  std::vector<Verdict> verdicts(mutants.size());
  runtime::parallel_for_each(
      options.threads, mutants.size(), [&](std::size_t m) {
        const auto& mut = mutants[m];
        Verdict v;
        for (const auto& seq : set.sequences) {
          if (errmodel::exposes(machine, mut, start, seq)) {
            v.exposed = true;
            break;
          }
        }
        if (!v.exposed && options.exclude_equivalent) {
          // An unexposed mutant may simply be no error at all: check full
          // behavioural equivalence before counting it against the method.
          const auto mutant = errmodel::apply_mutation(machine, mut);
          v.equivalent =
              fsm::check_equivalence(machine, start, mutant, start)
                  .equivalent;
        }
        verdicts[m] = v;
      });
  for (const auto& v : verdicts) {
    if (v.equivalent) {
      ++result.equivalent;
      continue;
    }
    ++result.mutants;
    if (v.exposed) ++result.exposed;
  }
  result.timings.simulate_seconds = phase.lap();
  result.timings.total_seconds = total.lap();
  return result;
}

MutantCoverageResult evaluate_mutant_coverage(
    const model::ExplicitModel& model, const MutantCoverageOptions& options) {
  return evaluate_mutant_coverage(model.machine(), model.start(), options);
}

}  // namespace simcov::core
