#include "core/campaign.hpp"

#include "pipeline/stages.hpp"
#include "pipeline/validation_pipeline.hpp"

namespace simcov::core {

CampaignResult run_campaign(const CampaignOptions& options,
                            std::span<const dlx::PipelineBug> bugs) {
  return pipeline::ValidationPipeline(options).run(bugs);
}

MutantCoverageResult evaluate_mutant_coverage(
    const model::ExplicitModel& model, const MutantCoverageOptions& options) {
  return pipeline::MutantReplayStage::run(model.machine(), model.start(),
                                          options);
}

MutantCoverageResult evaluate_mutant_coverage(
    const fsm::MealyMachine& machine, fsm::StateId start,
    const MutantCoverageOptions& options) {
  return pipeline::MutantReplayStage::run(machine, start, options);
}

}  // namespace simcov::core
