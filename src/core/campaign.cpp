#include "core/campaign.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "obs/event_sink.hpp"
#include "pipeline/stages.hpp"
#include "pipeline/validation_pipeline.hpp"
#include "store/artifact_store.hpp"

namespace simcov::core {

CampaignResult run_campaign(const CampaignOptions& options,
                            std::span<const dlx::PipelineBug> bugs) {
  CampaignResult result = pipeline::ValidationPipeline(options).run(bugs);
  // Archive the JSON report of a complete campaign under its content key.
  // The pipeline cannot do this itself — JSON emission lives up here — so
  // the store is reopened briefly; the published bytes are a record, not a
  // cache (nothing consults them to skip work), so the report's own store
  // stats predate this publish.
  if (!options.store_dir.empty() && result.report_key.has_value() &&
      !result.cancelled() && !result.budget_exhausted()) {
    store::ArtifactStore store(
        store::StoreOptions{options.store_dir, options.store_max_bytes});
    const std::string json = to_json(result);
    const std::vector<std::uint8_t> payload(json.begin(), json.end());
    obs::EventSink& sink =
        options.sink != nullptr ? *options.sink : obs::null_sink();
    store.publish(store::ArtifactKind::kReport, *result.report_key, payload,
                  obs::Stage::kCompare, sink);
  }
  return result;
}

MutantCoverageResult evaluate_mutant_coverage(
    const model::ExplicitModel& model, const MutantCoverageOptions& options) {
  return pipeline::MutantReplayStage::run(model.machine(), model.start(),
                                          options);
}

}  // namespace simcov::core
