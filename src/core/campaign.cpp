#include "core/campaign.hpp"

#include <random>
#include <stdexcept>

#include "distinguish/distinguish.hpp"
#include "distinguish/wmethod.hpp"
#include "errmodel/errmodel.hpp"
#include "sym/symbolic_fsm.hpp"
#include "tour/tour.hpp"
#include "validate/concretize.hpp"
#include "validate/harness.hpp"

namespace simcov::core {

const char* method_name(TestMethod method) {
  switch (method) {
    case TestMethod::kTransitionTourSet: return "transition-tour";
    case TestMethod::kStateTour: return "state-tour";
    case TestMethod::kRandomWalk: return "random-walk";
    case TestMethod::kWMethod: return "w-method";
  }
  return "?";
}

std::size_t CampaignResult::bugs_exposed() const {
  std::size_t n = 0;
  for (const auto& e : exposures) {
    if (e.exposed) ++n;
  }
  return n;
}

namespace {

/// Generates the test set for a method over an explicit machine.
tour::TourSet generate_test_set(const fsm::MealyMachine& machine,
                                fsm::StateId start, TestMethod method,
                                std::size_t random_length,
                                std::uint64_t seed) {
  tour::TourSet set;
  set.start = start;
  switch (method) {
    case TestMethod::kTransitionTourSet: {
      auto t = tour::greedy_transition_tour_set(machine, start);
      if (!t.has_value()) {
        throw std::runtime_error("transition tour set generation failed");
      }
      return *t;
    }
    case TestMethod::kStateTour: {
      auto t = tour::state_tour(machine, start);
      if (!t.has_value()) {
        throw std::runtime_error("state tour generation failed");
      }
      set.sequences.push_back(std::move(t->inputs));
      return set;
    }
    case TestMethod::kRandomWalk: {
      set.sequences.push_back(
          tour::random_walk(machine, start, random_length, seed).inputs);
      return set;
    }
    case TestMethod::kWMethod: {
      // The W-method requires a minimal machine; minimize first. Suite
      // sequences remain valid on the original machine (behavioural
      // equivalence from reset includes definedness).
      const auto minimized = distinguish::minimize(machine, start);
      auto suite = distinguish::wmethod_test_suite(
          minimized.machine, minimized.machine.initial_state());
      if (!suite.has_value()) {
        throw std::runtime_error("W-method suite generation failed");
      }
      suite->start = start;
      return *suite;
    }
  }
  throw std::logic_error("unknown test method");
}

/// Extends a sequence by `extra` valid steps (smallest defined input each
/// step), providing the exposure window of Theorem 1.
void extend_sequence(const fsm::MealyMachine& machine, fsm::StateId start,
                     std::vector<fsm::InputId>& seq, unsigned extra) {
  fsm::StateId at = machine.run_to_state(seq, start);
  for (unsigned k = 0; k < extra; ++k) {
    bool stepped = false;
    for (fsm::InputId i = 0; i < machine.num_inputs(); ++i) {
      const auto t = machine.transition(at, i);
      if (t.has_value()) {
        seq.push_back(i);
        at = t->next;
        stepped = true;
        break;
      }
    }
    if (!stepped) return;  // dead end: nothing to extend with
  }
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options,
                            std::span<const dlx::PipelineBug> bugs) {
  CampaignResult result;
  const auto model =
      testmodel::build_dlx_control_model(options.model_options);
  result.latches = model.num_latches;
  result.primary_inputs = model.num_inputs;

  const auto explicit_model =
      sym::extract_explicit(model.circuit, options.max_states);
  result.model_truncated = explicit_model.truncated;
  result.model_states = explicit_model.machine.num_states();
  result.model_transitions =
      explicit_model.machine.num_defined_transitions();

  const tour::TourSet set =
      generate_test_set(explicit_model.machine, 0, options.method,
                        options.random_length, options.seed);
  result.sequences = set.sequences.size();
  result.test_length = set.total_length();
  const auto coverage =
      tour::evaluate_coverage_set(explicit_model.machine, set);
  result.state_coverage = coverage.state_coverage();
  result.transition_coverage = coverage.transition_coverage();

  // Concretize every sequence.
  std::vector<validate::ConcretizedProgram> programs;
  programs.reserve(set.sequences.size());
  for (const auto& seq : set.sequences) {
    std::vector<testmodel::ControlInput> steps;
    steps.reserve(seq.size());
    for (fsm::InputId sym_id : seq) {
      steps.push_back(validate::decode_control_input(
          model, explicit_model.input_bits[sym_id]));
    }
    programs.push_back(validate::concretize_tour(model, steps));
    result.total_instructions += programs.back().instructions.size();
  }

  // Clean run: the bug-free implementation must pass everything.
  result.clean_pass = true;
  for (const auto& prog : programs) {
    if (!validate::run_validation(prog).passed) {
      result.clean_pass = false;
      break;
    }
  }

  // Per-bug exposure.
  for (const dlx::PipelineBug bug : bugs) {
    BugExposure exposure{bug, false};
    dlx::PipelineConfig config{{bug}};
    for (const auto& prog : programs) {
      if (!validate::run_validation(prog, config).passed) {
        exposure.exposed = true;
        break;
      }
    }
    result.exposures.push_back(exposure);
  }
  return result;
}

MutantCoverageResult evaluate_mutant_coverage(
    const fsm::MealyMachine& machine, fsm::StateId start,
    const MutantCoverageOptions& options) {
  MutantCoverageResult result;
  tour::TourSet set = generate_test_set(machine, start, options.method,
                                        options.random_length, options.seed);
  if (options.k_extension > 0) {
    for (auto& seq : set.sequences) {
      extend_sequence(machine, start, seq, options.k_extension);
    }
  }
  result.sequences = set.sequences.size();
  result.test_length = set.total_length();

  const auto mutants = errmodel::sample_mutations(
      machine, start, machine.output_alphabet_size(), options.mutant_sample,
      options.seed ^ 0x9e3779b9u);
  for (const auto& mut : mutants) {
    bool exposed = false;
    for (const auto& seq : set.sequences) {
      if (errmodel::exposes(machine, mut, start, seq)) {
        exposed = true;
        break;
      }
    }
    if (!exposed && options.exclude_equivalent) {
      // An unexposed mutant may simply be no error at all: check full
      // behavioural equivalence before counting it against the method.
      const auto mutant = errmodel::apply_mutation(machine, mut);
      if (fsm::check_equivalence(machine, start, mutant, start).equivalent) {
        ++result.equivalent;
        continue;
      }
    }
    ++result.mutants;
    if (exposed) ++result.exposed;
  }
  return result;
}

}  // namespace simcov::core
