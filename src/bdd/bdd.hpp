// Reduced Ordered Binary Decision Diagram (ROBDD) package.
//
// This is the implicit-representation substrate used throughout simcov for
// symbolic FSM traversal (transition relations, image computation, reachable
// state counting), in the style of the BDD engines inside SIS/VIS that the
// paper uses for its test-model traversal [Bryant86, Touati+90].
//
// Design notes:
//  * Nodes are hash-consed in a unique table, so structural equality of
//    functions is pointer (index) equality.
//  * Variable identifiers are decoupled from ordering levels: every manager
//    maintains an explicit var->level / level->var bijection. Newly created
//    variables append at the bottom of the order, so until the first reorder
//    the id sequence IS the order (variable 0 on top). Rudell-style sifting
//    (`try_reorder`, or automatic via `ReorderPolicy::kAuto`) permutes
//    levels in place; variable ids, node indices, and external handles all
//    stay valid across a reorder.
//  * `Bdd` is an RAII external handle. Externally referenced nodes (and
//    everything below them) survive mark-and-sweep garbage collection
//    (`collect_garbage`, auto-triggered on table growth); all other nodes
//    are reclaimed onto a free list.
//  * No complement edges: simpler invariants, negligible cost at the sizes
//    this library targets (tens of state bits).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace simcov::bdd {

class BddManager;

/// Index of a node inside a BddManager. 0 and 1 are the constant leaves.
using NodeIndex = std::uint32_t;

/// Dynamic variable reordering policy of a manager.
///  * kNone: the order only changes via explicit `try_reorder`/`set_order`
///    calls (default; matches the historical static-order behaviour).
///  * kAuto: public operation entry points additionally trigger sifting when
///    the live node count crosses an adaptive threshold.
enum class ReorderPolicy : std::uint8_t { kNone = 0, kAuto = 1 };

/// RAII handle to a BDD node. Copying bumps the external reference count;
/// destruction releases it. A default-constructed handle is "null" and may
/// only be assigned to or destroyed.
class Bdd {
 public:
  Bdd() noexcept = default;
  Bdd(const Bdd& other) noexcept;
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other) noexcept;
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  /// True when the handle refers to a node (including constants).
  [[nodiscard]] bool valid() const noexcept { return mgr_ != nullptr; }
  [[nodiscard]] BddManager* manager() const noexcept { return mgr_; }
  [[nodiscard]] NodeIndex index() const noexcept { return idx_; }

  [[nodiscard]] bool is_zero() const noexcept { return valid() && idx_ == 0; }
  [[nodiscard]] bool is_one() const noexcept { return valid() && idx_ == 1; }
  [[nodiscard]] bool is_constant() const noexcept {
    return valid() && idx_ <= 1;
  }

  /// Variable id of the root node (the topmost-ordered variable in the
  /// function's support). Precondition: non-constant node.
  [[nodiscard]] unsigned top_var() const;
  /// Negative/positive cofactor children. Precondition: non-constant node.
  [[nodiscard]] Bdd low() const;
  [[nodiscard]] Bdd high() const;

  /// Canonicity makes structural equality function equality.
  friend bool operator==(const Bdd& a, const Bdd& b) noexcept {
    return a.mgr_ == b.mgr_ && a.idx_ == b.idx_;
  }

  // Logical operators (convenience wrappers over BddManager ops).
  [[nodiscard]] Bdd operator!() const;
  [[nodiscard]] Bdd operator&(const Bdd& rhs) const;
  [[nodiscard]] Bdd operator|(const Bdd& rhs) const;
  [[nodiscard]] Bdd operator^(const Bdd& rhs) const;
  Bdd& operator&=(const Bdd& rhs);
  Bdd& operator|=(const Bdd& rhs);
  Bdd& operator^=(const Bdd& rhs);
  /// Logical implication (!this | rhs).
  [[nodiscard]] Bdd implies(const Bdd& rhs) const;
  /// Boolean equivalence (XNOR).
  [[nodiscard]] Bdd iff(const Bdd& rhs) const;

  /// Number of distinct DAG nodes reachable from this function
  /// (including the constant leaves).
  [[nodiscard]] std::size_t node_count() const;

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, NodeIndex idx) noexcept;

  BddManager* mgr_ = nullptr;
  NodeIndex idx_ = 0;
};

/// Statistics snapshot of a manager, for benches and regression checks.
struct BddStats {
  std::size_t allocated_nodes = 0;  ///< Slots ever allocated (incl. free).
  std::size_t live_nodes = 0;       ///< Nodes reachable from external refs.
  std::size_t free_nodes = 0;       ///< Slots currently on the free list.
  std::size_t unique_lookups = 0;
  std::size_t unique_hits = 0;
  std::size_t cache_lookups = 0;
  std::size_t cache_hits = 0;
  std::size_t gc_runs = 0;
  std::size_t reorders = 0;          ///< Completed try_reorder passes.
  std::size_t level_swaps = 0;       ///< Adjacent-level swap primitives run.
  std::size_t peak_live_nodes = 0;   ///< High-water mark of live node slots.
  std::uint64_t order_fingerprint = 0;  ///< Hash of the level->var map.
};

/// The BDD node store and operation engine.
///
/// All `Bdd` handles returned by a manager must not outlive it.
class BddManager {
 public:
  /// @param cache_bits  log2 of the operation-cache size (entries).
  explicit BddManager(unsigned cache_bits = 18);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // ---- Constants and variables ------------------------------------------
  [[nodiscard]] Bdd zero();
  [[nodiscard]] Bdd one();
  /// The projection function of variable `var`. Creates all variables up to
  /// `var` on demand. New variables join at the bottom of the current order,
  /// so with no reorders variable ids coincide with levels (0 = top).
  [[nodiscard]] Bdd var(unsigned var_id);
  /// Literal: the variable if `positive`, else its negation.
  [[nodiscard]] Bdd literal(unsigned var_id, bool positive);
  [[nodiscard]] unsigned var_count() const noexcept { return num_vars_; }

  // ---- Core operations ---------------------------------------------------
  [[nodiscard]] Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  [[nodiscard]] Bdd apply_not(const Bdd& f);
  [[nodiscard]] Bdd apply_and(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_or(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_xor(const Bdd& f, const Bdd& g);

  /// Existential quantification of every variable in `cube` (a positive
  /// product of variables, as built by cube()).
  [[nodiscard]] Bdd exists(const Bdd& f, const Bdd& cube);
  /// Universal quantification over the variables of `cube`.
  [[nodiscard]] Bdd forall(const Bdd& f, const Bdd& cube);
  /// Relational product: exists(cube, f & g) computed without building the
  /// intermediate conjunction. This is the workhorse of image computation.
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Cofactor of f with respect to the literal (var_id, value).
  [[nodiscard]] Bdd cofactor(const Bdd& f, unsigned var_id, bool value);

  /// Coudert-Madre generalized cofactor (constrain): a function agreeing
  /// with f on the care set c, typically smaller than f. Satisfies
  /// constrain(f, c) & c == f & c. Precondition: c != 0.
  [[nodiscard]] Bdd constrain(const Bdd& f, const Bdd& c);

  /// Functional composition: f with variable `var_id` replaced by g.
  [[nodiscard]] Bdd compose(const Bdd& f, unsigned var_id, const Bdd& g);

  /// Rename variables: `perm[v]` is the new variable for old variable `v`.
  /// `perm` must be defined (>=0) for every variable in the support of `f`;
  /// the mapping must be injective on that support.
  [[nodiscard]] Bdd permute(const Bdd& f, std::span<const int> perm);

  /// Positive cube (conjunction) of the given variables. Duplicate entries
  /// are deduplicated (the conjunction is idempotent).
  [[nodiscard]] Bdd cube(std::span<const unsigned> vars);
  /// Minterm over `vars`: conjunction of literals with the given values.
  /// Duplicate (var, value) pairs are deduplicated; conflicting values for
  /// the same variable throw std::invalid_argument.
  [[nodiscard]] Bdd minterm(std::span<const unsigned> vars,
                            const std::vector<bool>& values);

  // ---- Inspection ---------------------------------------------------------
  /// Variables in the support of f, ascending by id.
  [[nodiscard]] std::vector<unsigned> support(const Bdd& f);
  /// Number of satisfying assignments of f over `num_vars` variables.
  /// Exact for counts below 2^53; larger counts lose low-order precision.
  [[nodiscard]] double sat_count(const Bdd& f, unsigned num_vars);
  /// One satisfying assignment restricted to `vars`: the lexicographically
  /// smallest over the listed variables in list order (don't-care positions
  /// are forced to false). Independent of the current variable order.
  /// Empty optional iff f is the zero function.
  [[nodiscard]] std::optional<std::vector<bool>> pick_minterm(
      const Bdd& f, std::span<const unsigned> vars);
  /// Invoke `fn` for every satisfying assignment of f over `vars`.
  /// Stops early (returning false) once `fn` returns false.
  /// Returns true when the enumeration ran to completion.
  bool for_each_minterm(const Bdd& f, std::span<const unsigned> vars,
                        const std::function<bool(const std::vector<bool>&)>& fn);
  /// Evaluates f at a point: values_by_var[v] is the value of variable v
  /// (variables beyond the vector evaluate false). O(path length).
  [[nodiscard]] bool eval(const Bdd& f,
                          const std::vector<bool>& values_by_var) const;

  /// True iff the conjunction f & g is satisfiable (no result node built
  /// beyond the AND; convenience used by containment checks).
  [[nodiscard]] bool intersects(const Bdd& f, const Bdd& g);
  /// True iff f implies g (f & !g == 0).
  [[nodiscard]] bool leq(const Bdd& f, const Bdd& g);

  [[nodiscard]] std::size_t node_count(const Bdd& f) const;

  /// Graphviz DOT rendering of the function's DAG (solid = high edge,
  /// dashed = low edge). `var_name(v)` labels variables; defaults to "x<v>".
  [[nodiscard]] std::string to_dot(
      const Bdd& f,
      const std::function<std::string(unsigned)>& var_name = {}) const;

  // ---- Memory management ---------------------------------------------------
  /// Run a mark/sweep collection now. Nodes reachable from live handles
  /// keep their indices; everything else is reclaimed.
  void collect_garbage();
  [[nodiscard]] BddStats stats() const;

  // ---- Variable ordering ---------------------------------------------------
  /// Ordering level currently assigned to `var_id` (0 = top).
  /// Throws std::out_of_range for unknown variables.
  [[nodiscard]] unsigned level_of(unsigned var_id) const {
    return var2level_.at(var_id);
  }
  /// Variable id sitting at ordering level `level`.
  [[nodiscard]] unsigned var_at_level(unsigned level) const {
    return level2var_.at(level);
  }
  /// The full level->var map, top level first.
  [[nodiscard]] std::vector<unsigned> level_order() const {
    return level2var_;
  }
  /// Deterministic hash of the level->var map; equal orders hash equal.
  [[nodiscard]] std::uint64_t order_fingerprint() const noexcept;

  /// Install an explicit order: `level2var[l]` is the variable at level l.
  /// Must be a permutation of all current variables. Applied as a sequence
  /// of adjacent-level swaps, so handles and node indices stay valid.
  /// Invalidates the operation cache.
  void set_order(std::span<const unsigned> level2var);

  /// Run one deterministic Rudell sifting pass: garbage-collect, sift
  /// variables (largest subtable first) through all levels keeping the best
  /// position, abort a sift leg when the table grows past the max-growth
  /// factor, then collect intermediates and invalidate the operation cache.
  /// Returns the number of live nodes reclaimed by the pass.
  std::size_t try_reorder();

  void set_reorder_policy(ReorderPolicy policy) noexcept {
    reorder_policy_ = policy;
  }
  [[nodiscard]] ReorderPolicy reorder_policy() const noexcept {
    return reorder_policy_;
  }
  /// Live-node count beyond which kAuto triggers sifting (adapts upward
  /// after every automatic pass so reordering cannot thrash).
  void set_reorder_threshold(std::size_t nodes) noexcept {
    reorder_threshold_ = nodes;
  }
  /// Abort factor for one sift leg: a variable stops moving in a direction
  /// once the table exceeds `factor` times its size at sift start.
  void set_max_growth(double factor) noexcept { max_growth_ = factor; }

 private:
  friend class Bdd;

  struct Node {
    unsigned var;      // variable id; kInvalidVar for constants / free slots
    NodeIndex low;     // also: next free slot when on the free list
    NodeIndex high;
    NodeIndex next;    // unique-table bucket chain
  };
  static_assert(sizeof(unsigned) == 4, "Node must stay 16 bytes");

  // Per-variable unique subtable. Since var<->level is a bijection this is
  // exactly a per-level subtable, but keying by the stable id means a level
  // swap only touches the two participating tables and never rehashes the
  // rest of the order.
  struct SubTable {
    std::vector<NodeIndex> buckets;  // size is a power of two
    std::size_t count = 0;           // labelled nodes currently chained
  };

  struct CacheEntry {
    std::uint64_t key = ~0ull;  // packed op tag (valid entries never ~0)
    NodeIndex a = 0, b = 0, c = 0;
    NodeIndex result = 0;
  };

  static constexpr unsigned kInvalidVar = 0xffffffffu;
  /// Ordering level reported for the constant leaves: below every variable,
  /// so `std::min` over levels picks the recursion's true top variable.
  static constexpr unsigned kConstLevel = 0xffffffffu;

  void ref(NodeIndex idx) noexcept;
  void deref(NodeIndex idx) noexcept;

  void ensure_var(unsigned var_id);
  NodeIndex make_node(unsigned var, NodeIndex low, NodeIndex high);
  NodeIndex alloc_slot();
  void grow_subtable(SubTable& table);
  void maybe_housekeep();
  std::size_t swap_adjacent_levels(unsigned level);
  void sift_var(unsigned var_id);

  // Reorder-scoped exact liveness. While `in_reorder_`, every node carries
  // an in-degree count and a node whose last reference disappears is
  // unchained and freed immediately. This keeps `allocated - free` equal to
  // the true live size mid-sift (the metric steering sift_var) and
  // guarantees swaps never leave dead nodes in the unique table.
  void rebuild_reorder_indeg();
  NodeIndex reorder_make(unsigned var, NodeIndex low, NodeIndex high);
  void reorder_acquire(NodeIndex n) noexcept;
  void reorder_release(NodeIndex n);

  NodeIndex ite_rec(NodeIndex f, NodeIndex g, NodeIndex h);
  NodeIndex not_rec(NodeIndex f);
  NodeIndex and_rec(NodeIndex f, NodeIndex g);
  NodeIndex or_rec(NodeIndex f, NodeIndex g);
  NodeIndex xor_rec(NodeIndex f, NodeIndex g);
  NodeIndex exists_rec(NodeIndex f, NodeIndex cube);
  NodeIndex and_exists_rec(NodeIndex f, NodeIndex g, NodeIndex cube);
  NodeIndex permute_rec(NodeIndex f, std::span<const int> perm,
                        std::uint32_t perm_tag);
  NodeIndex cofactor_rec(NodeIndex f, unsigned var_id, bool value);
  NodeIndex constrain_rec(NodeIndex f, NodeIndex c);
  NodeIndex compose_rec(NodeIndex f, unsigned var_id, NodeIndex g);

  [[nodiscard]] unsigned var_of(NodeIndex n) const noexcept {
    return nodes_[n].var;
  }
  [[nodiscard]] bool is_const(NodeIndex n) const noexcept { return n <= 1; }
  /// Ordering level of a node (kConstLevel for the constant leaves).
  [[nodiscard]] unsigned level_of_node(NodeIndex n) const noexcept {
    return is_const(n) ? kConstLevel : var2level_[nodes_[n].var];
  }

  // Operation cache.
  enum class Op : std::uint8_t {
    kIte = 1, kNot, kAnd, kOr, kXor, kExists, kAndExists, kPermute, kCofactor,
    kConstrain, kCompose,
  };
  [[nodiscard]] std::size_t cache_slot(std::uint64_t key, NodeIndex a,
                                       NodeIndex b, NodeIndex c) const noexcept;
  bool cache_find(Op op, NodeIndex a, NodeIndex b, NodeIndex c,
                  NodeIndex& out);
  void cache_insert(Op op, NodeIndex a, NodeIndex b, NodeIndex c,
                    NodeIndex result);
  void clear_cache();

  // GC and reordering never run mid-operation: both are only triggered from
  // the public entry points (maybe_housekeep) before an operation starts,
  // so recursive construction never loses partial results and cached
  // subresults of the running operation stay valid.
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> ext_refs_;  // external refcount per slot
  NodeIndex free_list_ = 0;              // 0 = empty (0 is a constant)
  std::size_t free_count_ = 0;

  std::vector<SubTable> subtables_;  // unique table, split per variable id
  std::size_t live_estimate_ = 0;    // nodes allocated since last gc baseline
  std::size_t gc_threshold_ = 1u << 16;

  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_ = 0;

  unsigned num_vars_ = 0;
  std::vector<unsigned> var2level_;  // variable id -> ordering level
  std::vector<unsigned> level2var_;  // ordering level -> variable id
  ReorderPolicy reorder_policy_ = ReorderPolicy::kNone;
  std::size_t reorder_threshold_ = 1u << 13;
  double max_growth_ = 1.2;
  bool in_reorder_ = false;
  std::size_t peak_live_ = 0;
  std::vector<std::uint32_t> reorder_indeg_;  // live only while in_reorder_

  std::uint32_t perm_counter_ = 0;  // tags permutations for the cache

  mutable BddStats stats_{};
};

}  // namespace simcov::bdd
