#include "bdd/bdd.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace simcov::bdd {

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer: cheap and well-distributed.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash3(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c) noexcept {
  return mix64(a * 0x100000001b3ull + mix64(b) * 31 + mix64(c));
}

// Unique-subtable key: the variable is implied by the table, so only the
// children hash. Both operands are 32-bit, so the packing is injective.
constexpr std::uint64_t hash2(std::uint64_t low, std::uint64_t high) noexcept {
  return mix64((low << 32) | high);
}

}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, NodeIndex idx) noexcept : mgr_(mgr), idx_(idx) {
  if (mgr_ != nullptr) mgr_->ref(idx_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  if (mgr_ != nullptr) mgr_->ref(idx_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  other.mgr_ = nullptr;
  other.idx_ = 0;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->ref(other.idx_);
  if (mgr_ != nullptr) mgr_->deref(idx_);
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->deref(idx_);
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  other.mgr_ = nullptr;
  other.idx_ = 0;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->deref(idx_);
}

unsigned Bdd::top_var() const {
  assert(valid() && !is_constant());
  return mgr_->var_of(idx_);
}

Bdd Bdd::low() const {
  assert(valid() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[idx_].low);
}

Bdd Bdd::high() const {
  assert(valid() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[idx_].high);
}

Bdd Bdd::operator!() const { return mgr_->apply_not(*this); }
Bdd Bdd::operator&(const Bdd& rhs) const { return mgr_->apply_and(*this, rhs); }
Bdd Bdd::operator|(const Bdd& rhs) const { return mgr_->apply_or(*this, rhs); }
Bdd Bdd::operator^(const Bdd& rhs) const { return mgr_->apply_xor(*this, rhs); }
Bdd& Bdd::operator&=(const Bdd& rhs) { return *this = *this & rhs; }
Bdd& Bdd::operator|=(const Bdd& rhs) { return *this = *this | rhs; }
Bdd& Bdd::operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }
Bdd Bdd::implies(const Bdd& rhs) const { return (!*this) | rhs; }
Bdd Bdd::iff(const Bdd& rhs) const { return !(*this ^ rhs); }

std::size_t Bdd::node_count() const { return mgr_->node_count(*this); }

// ---------------------------------------------------------------------------
// BddManager: construction, node store, unique table
// ---------------------------------------------------------------------------

BddManager::BddManager(unsigned cache_bits) {
  nodes_.reserve(1u << 12);
  // Slots 0 and 1 are the constant leaves.
  nodes_.push_back(Node{kInvalidVar, 0, 0, 0});
  nodes_.push_back(Node{kInvalidVar, 1, 1, 0});
  ext_refs_.assign(2, 0);
  peak_live_ = 2;

  cache_.assign(std::size_t{1} << cache_bits, CacheEntry{});
  cache_mask_ = cache_.size() - 1;
}

BddManager::~BddManager() = default;

void BddManager::ref(NodeIndex idx) noexcept { ++ext_refs_[idx]; }

void BddManager::deref(NodeIndex idx) noexcept {
  assert(ext_refs_[idx] > 0);
  --ext_refs_[idx];
}

std::size_t BddManager::cache_slot(std::uint64_t key, NodeIndex a, NodeIndex b,
                                   NodeIndex c) const noexcept {
  return static_cast<std::size_t>(
             hash3((key << 32) | a, b, c)) &
         cache_mask_;
}

bool BddManager::cache_find(Op op, NodeIndex a, NodeIndex b, NodeIndex c,
                            NodeIndex& out) {
  ++stats_.cache_lookups;
  const std::uint64_t key = static_cast<std::uint64_t>(op);
  const CacheEntry& e = cache_[cache_slot(key, a, b, c)];
  if (e.key == key && e.a == a && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    out = e.result;
    return true;
  }
  return false;
}

void BddManager::cache_insert(Op op, NodeIndex a, NodeIndex b, NodeIndex c,
                              NodeIndex result) {
  const std::uint64_t key = static_cast<std::uint64_t>(op);
  CacheEntry& e = cache_[cache_slot(key, a, b, c)];
  e = CacheEntry{key, a, b, c, result};
}

void BddManager::clear_cache() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
}

void BddManager::ensure_var(unsigned var_id) {
  if (var_id < num_vars_) return;
  if (var_id >= kInvalidVar) {
    throw std::invalid_argument("bdd: variable id out of range");
  }
  for (unsigned v = num_vars_; v <= var_id; ++v) {
    // New variables join at the bottom of the current order, so creation
    // order defines the initial order and reorders never shift ids.
    var2level_.push_back(v);
    level2var_.push_back(v);
    subtables_.emplace_back();
    subtables_.back().buckets.assign(8, 0);
  }
  num_vars_ = var_id + 1;
}

NodeIndex BddManager::alloc_slot() {
  if (free_list_ != 0) {
    const NodeIndex idx = free_list_;
    free_list_ = nodes_[idx].low;
    --free_count_;
    return idx;
  }
  nodes_.push_back(Node{});
  ext_refs_.push_back(0);
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

void BddManager::grow_subtable(SubTable& table) {
  std::vector<NodeIndex> old = std::move(table.buckets);
  table.buckets.assign(old.size() * 2, 0);
  const std::size_t mask = table.buckets.size() - 1;
  for (const NodeIndex head : old) {
    NodeIndex n = head;
    while (n != 0) {
      const NodeIndex next = nodes_[n].next;
      const std::size_t slot =
          static_cast<std::size_t>(hash2(nodes_[n].low, nodes_[n].high)) &
          mask;
      nodes_[n].next = table.buckets[slot];
      table.buckets[slot] = n;
      n = next;
    }
  }
}

NodeIndex BddManager::make_node(unsigned var, NodeIndex low, NodeIndex high) {
  if (low == high) return low;  // reduction rule
  assert(var < num_vars_);
  assert(level_of_node(low) > var2level_[var]);
  assert(level_of_node(high) > var2level_[var]);
  ++stats_.unique_lookups;
  SubTable& table = subtables_[var];
  const std::size_t slot = static_cast<std::size_t>(hash2(low, high)) &
                           (table.buckets.size() - 1);
  for (NodeIndex n = table.buckets[slot]; n != 0; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.low == low && nd.high == high) {
      ++stats_.unique_hits;
      return n;
    }
  }
  const NodeIndex idx = alloc_slot();
  nodes_[idx] = Node{var, low, high, table.buckets[slot]};
  table.buckets[slot] = idx;
  ++table.count;
  ++live_estimate_;
  const std::size_t live = nodes_.size() - free_count_;
  if (live > peak_live_) peak_live_ = live;
  if (table.count > table.buckets.size()) grow_subtable(table);
  return idx;
}

void BddManager::maybe_housekeep() {
  if (live_estimate_ >= gc_threshold_) {
    const std::size_t before = nodes_.size() - free_count_;
    collect_garbage();
    const std::size_t after = nodes_.size() - free_count_;
    // If little was reclaimed, raise the threshold so we don't thrash.
    if (after * 4 > before * 3) gc_threshold_ *= 2;
    live_estimate_ = 0;
  }
  if (reorder_policy_ == ReorderPolicy::kAuto && !in_reorder_ &&
      nodes_.size() - free_count_ >= reorder_threshold_) {
    try_reorder();
    // Back off so the next automatic pass only fires after real growth.
    reorder_threshold_ = std::max(reorder_threshold_ * 2,
                                  2 * (nodes_.size() - free_count_));
  }
}

void BddManager::collect_garbage() {
  ++stats_.gc_runs;
  std::vector<bool> marked(nodes_.size(), false);
  marked[0] = marked[1] = true;
  // Iterative DFS from every externally referenced node.
  std::vector<NodeIndex> stack;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (ext_refs_[i] > 0 && !marked[i]) stack.push_back(i);
  }
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (marked[n]) continue;
    marked[n] = true;
    const Node& nd = nodes_[n];
    if (nd.var == kInvalidVar) continue;  // constant or free
    if (!marked[nd.low]) stack.push_back(nd.low);
    if (!marked[nd.high]) stack.push_back(nd.high);
  }
  // Sweep, rebuilding each per-variable subtable. Chains are relinked from
  // the highest index down, so every bucket chain ends up ascending by node
  // index and lookups stream forward through the (level-major) node array.
  for (SubTable& table : subtables_) {
    std::fill(table.buckets.begin(), table.buckets.end(), 0);
    table.count = 0;
  }
  for (NodeIndex i = static_cast<NodeIndex>(nodes_.size() - 1); i >= 2; --i) {
    if (!marked[i]) continue;
    Node& nd = nodes_[i];
    SubTable& table = subtables_[nd.var];
    const std::size_t slot = static_cast<std::size_t>(
                                 hash2(nd.low, nd.high)) &
                             (table.buckets.size() - 1);
    nd.next = table.buckets[slot];
    table.buckets[slot] = i;
    ++table.count;
  }
  // Rebuild the free list ascending, so the head (served first) is the
  // highest index and low slots stay densely packed with long-lived nodes.
  free_list_ = 0;
  free_count_ = 0;
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    if (marked[i]) continue;
    Node& nd = nodes_[i];
    nd.var = kInvalidVar;
    nd.low = free_list_;
    free_list_ = i;
    ++free_count_;
  }
  // The cache may reference dead nodes: drop it wholesale.
  clear_cache();
}

BddStats BddManager::stats() const {
  BddStats s = stats_;
  s.allocated_nodes = nodes_.size();
  s.free_nodes = free_count_;
  s.live_nodes = nodes_.size() - free_count_;
  s.peak_live_nodes = std::max(peak_live_, s.live_nodes);
  s.order_fingerprint = order_fingerprint();
  return s;
}

// ---------------------------------------------------------------------------
// Variable ordering: adjacent swap primitive, sifting, explicit orders
// ---------------------------------------------------------------------------

std::uint64_t BddManager::order_fingerprint() const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ num_vars_;
  for (const unsigned v : level2var_) h = mix64(h ^ v);
  return h;
}

void BddManager::rebuild_reorder_indeg() {
  reorder_indeg_.assign(nodes_.size(), 0);
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    const Node& nd = nodes_[i];
    if (nd.var == kInvalidVar) continue;  // free slot
    if (!is_const(nd.low)) ++reorder_indeg_[nd.low];
    if (!is_const(nd.high)) ++reorder_indeg_[nd.high];
  }
}

NodeIndex BddManager::reorder_make(unsigned var, NodeIndex low,
                                   NodeIndex high) {
  const std::size_t live_before = nodes_.size() - free_count_;
  const NodeIndex r = make_node(var, low, high);
  if (reorder_indeg_.size() < nodes_.size()) {
    reorder_indeg_.resize(nodes_.size(), 0);
  }
  if (nodes_.size() - free_count_ > live_before) {
    // Fresh node: it newly references its children. (A hash-cons hit or a
    // reduction-rule return adds no edges; the caller accounts for its own
    // reference separately.)
    assert(reorder_indeg_[r] == 0);
    reorder_acquire(low);
    reorder_acquire(high);
  }
  return r;
}

void BddManager::reorder_acquire(NodeIndex n) noexcept {
  if (!is_const(n)) ++reorder_indeg_[n];
}

void BddManager::reorder_release(NodeIndex n) {
  if (is_const(n)) return;
  assert(reorder_indeg_[n] > 0);
  if (--reorder_indeg_[n] > 0 || ext_refs_[n] > 0) return;
  // Last reference gone: unchain and free now. Eager freeing keeps the
  // sift metric exact and makes it impossible for a later hash-cons lookup
  // to resurrect a node whose label/level relationship went stale.
  Node& nd = nodes_[n];
  SubTable& table = subtables_[nd.var];
  const std::size_t slot = static_cast<std::size_t>(hash2(nd.low, nd.high)) &
                           (table.buckets.size() - 1);
  NodeIndex* link = &table.buckets[slot];
  while (*link != n) link = &nodes_[*link].next;
  *link = nd.next;
  --table.count;
  const NodeIndex lo = nd.low;
  const NodeIndex hi = nd.high;
  nd.var = kInvalidVar;
  nd.low = free_list_;
  free_list_ = n;
  ++free_count_;
  reorder_release(lo);
  reorder_release(hi);
}

std::size_t BddManager::swap_adjacent_levels(unsigned level) {
  assert(level + 1 < num_vars_);
  const unsigned x = level2var_[level];
  const unsigned y = level2var_[level + 1];
  ++stats_.level_swaps;
  // Flip the maps first: make_node below must see x at level+1 already.
  level2var_[level] = y;
  level2var_[level + 1] = x;
  var2level_[x] = level + 1;
  var2level_[y] = level;

  SubTable& tx = subtables_[x];
  // Partition x's nodes: a node whose children don't test y keeps its
  // structure (its level changed implicitly); a node testing y below must
  // be rewritten so y comes first.
  std::vector<NodeIndex> keep;
  std::vector<NodeIndex> rewrite;
  for (const NodeIndex head : tx.buckets) {
    for (NodeIndex n = head; n != 0; n = nodes_[n].next) {
      const Node& nd = nodes_[n];
      const bool tests_y = (!is_const(nd.low) && nodes_[nd.low].var == y) ||
                           (!is_const(nd.high) && nodes_[nd.high].var == y);
      (tests_y ? rewrite : keep).push_back(n);
    }
  }
  if (!rewrite.empty()) {
    // Rebuild x's table with only the keepers: lookups during the rewrite
    // loop must not find a node that is about to change its label.
    std::fill(tx.buckets.begin(), tx.buckets.end(), 0);
    tx.count = keep.size();
    const std::size_t x_mask = tx.buckets.size() - 1;
    for (const NodeIndex n : keep) {
      const std::size_t slot =
          static_cast<std::size_t>(hash2(nodes_[n].low, nodes_[n].high)) &
          x_mask;
      nodes_[n].next = tx.buckets[slot];
      tx.buckets[slot] = n;
    }
    for (const NodeIndex n : rewrite) {
      // (x, F0, F1) becomes (y, (x, F00, F10), (x, F01, F11)) in place:
      // index n keeps denoting the same function, so external handles,
      // other nodes' child pointers and cached results all stay correct.
      const Node nd = nodes_[n];  // copy: make_node may reallocate nodes_
      NodeIndex f00 = nd.low;
      NodeIndex f01 = nd.low;
      if (!is_const(nd.low) && nodes_[nd.low].var == y) {
        f00 = nodes_[nd.low].low;
        f01 = nodes_[nd.low].high;
      }
      NodeIndex f10 = nd.high;
      NodeIndex f11 = nd.high;
      if (!is_const(nd.high) && nodes_[nd.high].var == y) {
        f10 = nodes_[nd.high].low;
        f11 = nodes_[nd.high].high;
      }
      const NodeIndex g0 = in_reorder_ ? reorder_make(x, f00, f10)
                                       : make_node(x, f00, f10);
      const NodeIndex g1 = in_reorder_ ? reorder_make(x, f01, f11)
                                       : make_node(x, f01, f11);
      // A rewrite node depends on y, so its two y-cofactors differ and the
      // relabelled node never collapses via the reduction rule.
      assert(g0 != g1);
      if (in_reorder_) {
        reorder_acquire(g0);
        reorder_acquire(g1);
      }
      Node& relabel = nodes_[n];
      relabel.var = y;
      relabel.low = g0;
      relabel.high = g1;
      SubTable& ty = subtables_[y];
      const std::size_t slot = static_cast<std::size_t>(hash2(g0, g1)) &
                               (ty.buckets.size() - 1);
      relabel.next = ty.buckets[slot];
      ty.buckets[slot] = n;
      ++ty.count;
      if (ty.count > ty.buckets.size()) grow_subtable(ty);
      if (in_reorder_) {
        // Drop the old child references last: the cascade can free stale
        // y-intermediates but never reaches the x/y tables above it.
        reorder_release(nd.low);
        reorder_release(nd.high);
      }
    }
  }
  return nodes_.size() - free_count_;
}

void BddManager::sift_var(unsigned var_id) {
  if (num_vars_ < 2) return;
  const std::size_t start = nodes_.size() - free_count_;
  const std::size_t limit =
      static_cast<std::size_t>(static_cast<double>(start) * max_growth_) + 16;
  const unsigned start_level = var2level_[var_id];
  unsigned cur = start_level;
  unsigned best = start_level;
  std::size_t best_size = start;
  // Visit the nearer end of the order first: fewer swaps on the way back.
  const bool down_first = (num_vars_ - 1 - start_level) <= start_level;
  for (int leg = 0; leg < 2; ++leg) {
    const bool down = (leg == 0) == down_first;
    if (down) {
      while (cur + 1 < num_vars_) {
        const std::size_t size = swap_adjacent_levels(cur);
        ++cur;
        if (size < best_size) {
          best_size = size;
          best = cur;
        }
        if (size > limit) break;  // max-growth abort for this leg
      }
    } else {
      while (cur > 0) {
        const std::size_t size = swap_adjacent_levels(cur - 1);
        --cur;
        if (size < best_size) {
          best_size = size;
          best = cur;
        }
        if (size > limit) break;
      }
    }
  }
  // Park the variable at the best level seen.
  while (cur < best) swap_adjacent_levels(cur++);
  while (cur > best) swap_adjacent_levels(--cur);
}

std::size_t BddManager::try_reorder() {
  if (in_reorder_ || num_vars_ < 2) return 0;
  in_reorder_ = true;
  collect_garbage();  // exact live set before measuring table sizes
  rebuild_reorder_indeg();
  const std::size_t before = nodes_.size() - free_count_;
  // Deterministic Rudell schedule: largest subtable first, ties by id.
  std::vector<std::pair<std::size_t, unsigned>> schedule;
  schedule.reserve(num_vars_);
  for (unsigned v = 0; v < num_vars_; ++v) {
    schedule.emplace_back(subtables_[v].count, v);
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [count, v] : schedule) {
    if (count == 0) continue;
    // Eager freeing keeps the arena tight, but a pathological sift can
    // still balloon allocation; collect and resync the in-degrees if so.
    if (nodes_.size() - free_count_ > before * 4) {
      collect_garbage();
      rebuild_reorder_indeg();
    }
    sift_var(v);
  }
  collect_garbage();  // drop anything ext-pinned-but-dead that sifting kept
  clear_cache();      // full op-cache invalidation on reorder
  ++stats_.reorders;
  const std::size_t after = nodes_.size() - free_count_;
  in_reorder_ = false;
  reorder_indeg_.clear();
  reorder_indeg_.shrink_to_fit();
  return before > after ? before - after : 0;
}

void BddManager::set_order(std::span<const unsigned> level2var) {
  if (level2var.size() != num_vars_) {
    throw std::invalid_argument("set_order: order must list every variable");
  }
  std::vector<bool> seen(num_vars_, false);
  for (const unsigned v : level2var) {
    if (v >= num_vars_ || seen[v]) {
      throw std::invalid_argument("set_order: not a permutation of variables");
    }
    seen[v] = true;
  }
  // Selection-style bubble: pull each target variable up to its level via
  // adjacent swaps. Handles and node indices stay valid throughout.
  for (unsigned target = 0; target < num_vars_; ++target) {
    const unsigned v = level2var[target];
    for (unsigned cur = var2level_[v]; cur > target; --cur) {
      swap_adjacent_levels(cur - 1);
    }
  }
  clear_cache();  // full op-cache invalidation on reorder
}

// ---------------------------------------------------------------------------
// Constants, variables, cubes
// ---------------------------------------------------------------------------

Bdd BddManager::zero() { return Bdd(this, 0); }
Bdd BddManager::one() { return Bdd(this, 1); }

Bdd BddManager::var(unsigned var_id) {
  ensure_var(var_id);
  return Bdd(this, make_node(var_id, 0, 1));
}

Bdd BddManager::literal(unsigned var_id, bool positive) {
  ensure_var(var_id);
  return positive ? Bdd(this, make_node(var_id, 0, 1))
                  : Bdd(this, make_node(var_id, 1, 0));
}

Bdd BddManager::cube(std::span<const unsigned> vars) {
  std::vector<unsigned> sorted(vars.begin(), vars.end());
  for (const unsigned v : sorted) ensure_var(v);
  // Build bottom-up: deepest level first. Sorting by level keeps the build
  // valid under any variable order; duplicates land adjacent and are
  // dropped (conjunction is idempotent).
  std::sort(sorted.begin(), sorted.end(), [this](unsigned a, unsigned b) {
    return var2level_[a] > var2level_[b];
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  NodeIndex acc = 1;
  for (const unsigned v : sorted) {
    acc = make_node(v, 0, acc);
  }
  return Bdd(this, acc);
}

Bdd BddManager::minterm(std::span<const unsigned> vars,
                        const std::vector<bool>& values) {
  if (vars.size() != values.size()) {
    throw std::invalid_argument("minterm: vars/values size mismatch");
  }
  std::vector<std::pair<unsigned, bool>> lits;
  lits.reserve(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    ensure_var(vars[i]);
    lits.emplace_back(vars[i], values[i]);
  }
  std::stable_sort(lits.begin(), lits.end(),
                   [this](const auto& a, const auto& b) {
                     return var2level_[a.first] > var2level_[b.first];
                   });
  NodeIndex acc = 1;
  unsigned prev_var = kInvalidVar;
  bool prev_val = false;
  for (const auto& [v, val] : lits) {
    if (v == prev_var) {
      if (val != prev_val) {
        throw std::invalid_argument(
            "minterm: conflicting values for variable " + std::to_string(v));
      }
      continue;  // duplicate literal: conjunction is idempotent
    }
    prev_var = v;
    prev_val = val;
    acc = val ? make_node(v, 0, acc) : make_node(v, acc, 0);
  }
  return Bdd(this, acc);
}

// ---------------------------------------------------------------------------
// Core recursive operations
// ---------------------------------------------------------------------------
// Every ordering decision below goes through levels (level_of_node /
// var2level_), never raw variable ids: after a reorder the id sequence says
// nothing about the order.

NodeIndex BddManager::not_rec(NodeIndex f) {
  if (f == 0) return 1;
  if (f == 1) return 0;
  NodeIndex cached;
  if (cache_find(Op::kNot, f, 0, 0, cached)) return cached;
  const Node nd = nodes_[f];
  const NodeIndex r = make_node(nd.var, not_rec(nd.low), not_rec(nd.high));
  cache_insert(Op::kNot, f, 0, 0, r);
  return r;
}

NodeIndex BddManager::and_rec(NodeIndex f, NodeIndex g) {
  if (f == 0 || g == 0) return 0;
  if (f == 1) return g;
  if (g == 1) return f;
  if (f == g) return f;
  if (f > g) std::swap(f, g);  // commutative: normalize operand order
  NodeIndex cached;
  if (cache_find(Op::kAnd, f, g, 0, cached)) return cached;
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const unsigned lf = var2level_[nf.var];
  const unsigned lg = var2level_[ng.var];
  const unsigned v = lf <= lg ? nf.var : ng.var;
  const NodeIndex f0 = lf <= lg ? nf.low : f;
  const NodeIndex f1 = lf <= lg ? nf.high : f;
  const NodeIndex g0 = lg <= lf ? ng.low : g;
  const NodeIndex g1 = lg <= lf ? ng.high : g;
  const NodeIndex r = make_node(v, and_rec(f0, g0), and_rec(f1, g1));
  cache_insert(Op::kAnd, f, g, 0, r);
  return r;
}

NodeIndex BddManager::or_rec(NodeIndex f, NodeIndex g) {
  if (f == 1 || g == 1) return 1;
  if (f == 0) return g;
  if (g == 0) return f;
  if (f == g) return f;
  if (f > g) std::swap(f, g);
  NodeIndex cached;
  if (cache_find(Op::kOr, f, g, 0, cached)) return cached;
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const unsigned lf = var2level_[nf.var];
  const unsigned lg = var2level_[ng.var];
  const unsigned v = lf <= lg ? nf.var : ng.var;
  const NodeIndex f0 = lf <= lg ? nf.low : f;
  const NodeIndex f1 = lf <= lg ? nf.high : f;
  const NodeIndex g0 = lg <= lf ? ng.low : g;
  const NodeIndex g1 = lg <= lf ? ng.high : g;
  const NodeIndex r = make_node(v, or_rec(f0, g0), or_rec(f1, g1));
  cache_insert(Op::kOr, f, g, 0, r);
  return r;
}

NodeIndex BddManager::xor_rec(NodeIndex f, NodeIndex g) {
  if (f == g) return 0;
  if (f == 0) return g;
  if (g == 0) return f;
  if (f == 1) return not_rec(g);
  if (g == 1) return not_rec(f);
  if (f > g) std::swap(f, g);
  NodeIndex cached;
  if (cache_find(Op::kXor, f, g, 0, cached)) return cached;
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const unsigned lf = var2level_[nf.var];
  const unsigned lg = var2level_[ng.var];
  const unsigned v = lf <= lg ? nf.var : ng.var;
  const NodeIndex f0 = lf <= lg ? nf.low : f;
  const NodeIndex f1 = lf <= lg ? nf.high : f;
  const NodeIndex g0 = lg <= lf ? ng.low : g;
  const NodeIndex g1 = lg <= lf ? ng.high : g;
  const NodeIndex r = make_node(v, xor_rec(f0, g0), xor_rec(f1, g1));
  cache_insert(Op::kXor, f, g, 0, r);
  return r;
}

NodeIndex BddManager::ite_rec(NodeIndex f, NodeIndex g, NodeIndex h) {
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;
  if (g == 0 && h == 1) return not_rec(f);
  NodeIndex cached;
  if (cache_find(Op::kIte, f, g, h, cached)) return cached;
  unsigned lv = var2level_[nodes_[f].var];
  if (!is_const(g)) lv = std::min(lv, var2level_[nodes_[g].var]);
  if (!is_const(h)) lv = std::min(lv, var2level_[nodes_[h].var]);
  const unsigned v = level2var_[lv];
  auto cof = [this, lv](NodeIndex x, bool hi) -> NodeIndex {
    if (is_const(x) || var2level_[nodes_[x].var] != lv) return x;
    return hi ? nodes_[x].high : nodes_[x].low;
  };
  const NodeIndex r = make_node(
      v, ite_rec(cof(f, false), cof(g, false), cof(h, false)),
      ite_rec(cof(f, true), cof(g, true), cof(h, true)));
  cache_insert(Op::kIte, f, g, h, r);
  return r;
}

NodeIndex BddManager::exists_rec(NodeIndex f, NodeIndex cube) {
  if (is_const(f)) return f;
  // Skip cube variables ordered above f's top variable.
  while (!is_const(cube) &&
         var2level_[nodes_[cube].var] < var2level_[nodes_[f].var]) {
    cube = nodes_[cube].high;
  }
  if (is_const(cube)) return f;
  NodeIndex cached;
  if (cache_find(Op::kExists, f, cube, 0, cached)) return cached;
  // Copy fields before recursing: make_node may reallocate nodes_.
  const Node nf = nodes_[f];
  const Node ncube = nodes_[cube];
  NodeIndex r;
  if (nf.var == ncube.var) {
    const NodeIndex lo = exists_rec(nf.low, ncube.high);
    if (lo == 1) {
      r = 1;  // early termination: disjunction already true
    } else {
      const NodeIndex hi = exists_rec(nf.high, ncube.high);
      r = or_rec(lo, hi);
    }
  } else {
    const NodeIndex lo = exists_rec(nf.low, cube);
    const NodeIndex hi = exists_rec(nf.high, cube);
    r = make_node(nf.var, lo, hi);
  }
  cache_insert(Op::kExists, f, cube, 0, r);
  return r;
}

NodeIndex BddManager::and_exists_rec(NodeIndex f, NodeIndex g,
                                     NodeIndex cube) {
  if (f == 0 || g == 0) return 0;
  if (cube == 1) return and_rec(f, g);
  if (f == 1 && g == 1) return 1;
  if (f > g) std::swap(f, g);  // AND is commutative
  NodeIndex cached;
  if (cache_find(Op::kAndExists, f, g, cube, cached)) return cached;
  const unsigned lf = level_of_node(f);
  const unsigned lg = level_of_node(g);
  const unsigned lv = std::min(lf, lg);
  // Drop quantified variables ordered above the top of f & g: vacuous.
  NodeIndex cb = cube;
  while (!is_const(cb) && var2level_[nodes_[cb].var] < lv) {
    cb = nodes_[cb].high;
  }
  if (is_const(cb)) {
    const NodeIndex r = and_rec(f, g);
    cache_insert(Op::kAndExists, f, g, cube, r);
    return r;
  }
  const NodeIndex f0 = (lf == lv) ? nodes_[f].low : f;
  const NodeIndex f1 = (lf == lv) ? nodes_[f].high : f;
  const NodeIndex g0 = (lg == lv) ? nodes_[g].low : g;
  const NodeIndex g1 = (lg == lv) ? nodes_[g].high : g;
  NodeIndex r;
  if (var2level_[nodes_[cb].var] == lv) {
    const NodeIndex lo = and_exists_rec(f0, g0, nodes_[cb].high);
    if (lo == 1) {
      r = 1;
    } else {
      const NodeIndex hi = and_exists_rec(f1, g1, nodes_[cb].high);
      r = or_rec(lo, hi);
    }
  } else {
    r = make_node(level2var_[lv], and_exists_rec(f0, g0, cb),
                  and_exists_rec(f1, g1, cb));
  }
  cache_insert(Op::kAndExists, f, g, cube, r);
  return r;
}

NodeIndex BddManager::cofactor_rec(NodeIndex f, unsigned var_id, bool value) {
  if (is_const(f)) return f;
  const unsigned lf = var2level_[nodes_[f].var];
  const unsigned lv = var2level_[var_id];
  if (lf > lv) return f;  // var_id is ordered above f's entire support
  if (nodes_[f].var == var_id) return value ? nodes_[f].high : nodes_[f].low;
  NodeIndex cached;
  const NodeIndex tag = (var_id << 1) | static_cast<NodeIndex>(value);
  if (cache_find(Op::kCofactor, f, tag, 0, cached)) return cached;
  // Copy fields before recursing: make_node may reallocate nodes_.
  const Node nf = nodes_[f];
  const NodeIndex lo = cofactor_rec(nf.low, var_id, value);
  const NodeIndex hi = cofactor_rec(nf.high, var_id, value);
  const NodeIndex r = make_node(nf.var, lo, hi);
  cache_insert(Op::kCofactor, f, tag, 0, r);
  return r;
}

NodeIndex BddManager::constrain_rec(NodeIndex f, NodeIndex c) {
  assert(c != 0);
  if (c == 1 || is_const(f)) return f;
  NodeIndex cached;
  if (cache_find(Op::kConstrain, f, c, 0, cached)) return cached;
  const unsigned lfv = var2level_[nodes_[f].var];
  const unsigned lcv = var2level_[nodes_[c].var];
  const unsigned lv = std::min(lfv, lcv);
  const NodeIndex f0 = (lfv == lv) ? nodes_[f].low : f;
  const NodeIndex f1 = (lfv == lv) ? nodes_[f].high : f;
  const NodeIndex c0 = (lcv == lv) ? nodes_[c].low : c;
  const NodeIndex c1 = (lcv == lv) ? nodes_[c].high : c;
  NodeIndex r;
  if (c0 == 0) {
    r = constrain_rec(f1, c1);
  } else if (c1 == 0) {
    r = constrain_rec(f0, c0);
  } else {
    r = make_node(level2var_[lv], constrain_rec(f0, c0),
                  constrain_rec(f1, c1));
  }
  cache_insert(Op::kConstrain, f, c, 0, r);
  return r;
}

NodeIndex BddManager::compose_rec(NodeIndex f, unsigned var_id, NodeIndex g) {
  if (is_const(f)) return f;
  const unsigned vf = nodes_[f].var;
  // var_id cannot appear below this level.
  if (var2level_[vf] > var2level_[var_id]) return f;
  NodeIndex cached;
  if (cache_find(Op::kCompose, f, var_id, g, cached)) return cached;
  NodeIndex r;
  if (vf == var_id) {
    r = ite_rec(g, nodes_[f].high, nodes_[f].low);
  } else {
    const NodeIndex lo = compose_rec(nodes_[f].low, var_id, g);
    const NodeIndex hi = compose_rec(nodes_[f].high, var_id, g);
    // g's support may reach above vf, so rebuild with ITE on vf.
    const NodeIndex vnode = make_node(vf, 0, 1);
    r = ite_rec(vnode, hi, lo);
  }
  cache_insert(Op::kCompose, f, var_id, g, r);
  return r;
}

NodeIndex BddManager::permute_rec(NodeIndex f, std::span<const int> perm,
                                  std::uint32_t perm_tag) {
  if (is_const(f)) return f;
  NodeIndex cached;
  if (cache_find(Op::kPermute, f, perm_tag, 0, cached)) return cached;
  // Copy fields before recursing: make_node may reallocate nodes_.
  const Node nf = nodes_[f];
  const NodeIndex lo = permute_rec(nf.low, perm, perm_tag);
  const NodeIndex hi = permute_rec(nf.high, perm, perm_tag);
  const int nv = nf.var < perm.size() ? perm[nf.var] : static_cast<int>(nf.var);
  if (nv < 0) {
    throw std::invalid_argument(
        "permute: support variable has no mapping (perm[v] < 0)");
  }
  ensure_var(static_cast<unsigned>(nv));
  // The renamed variable may land anywhere in the order, so rebuild with ITE.
  const NodeIndex vnode = make_node(static_cast<unsigned>(nv), 0, 1);
  const NodeIndex r = ite_rec(vnode, hi, lo);
  cache_insert(Op::kPermute, f, perm_tag, 0, r);
  return r;
}

// ---------------------------------------------------------------------------
// Public operation wrappers
// ---------------------------------------------------------------------------

namespace {
void check_same_manager(const BddManager* mgr, const Bdd& x) {
  if (!x.valid() || x.manager() != mgr) {
    throw std::invalid_argument("Bdd operand belongs to another manager");
  }
}
}  // namespace

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  check_same_manager(this, h);
  maybe_housekeep();
  return Bdd(this, ite_rec(f.index(), g.index(), h.index()));
}

Bdd BddManager::apply_not(const Bdd& f) {
  check_same_manager(this, f);
  maybe_housekeep();
  return Bdd(this, not_rec(f.index()));
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_housekeep();
  return Bdd(this, and_rec(f.index(), g.index()));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_housekeep();
  return Bdd(this, or_rec(f.index(), g.index()));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_housekeep();
  return Bdd(this, xor_rec(f.index(), g.index()));
}

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  check_same_manager(this, f);
  check_same_manager(this, cube);
  maybe_housekeep();
  return Bdd(this, exists_rec(f.index(), cube.index()));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  check_same_manager(this, f);
  check_same_manager(this, cube);
  maybe_housekeep();
  // forall x. f == !(exists x. !f)
  return Bdd(this, not_rec(exists_rec(not_rec(f.index()), cube.index())));
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  check_same_manager(this, cube);
  maybe_housekeep();
  return Bdd(this, and_exists_rec(f.index(), g.index(), cube.index()));
}

Bdd BddManager::cofactor(const Bdd& f, unsigned var_id, bool value) {
  check_same_manager(this, f);
  ensure_var(var_id);
  maybe_housekeep();
  return Bdd(this, cofactor_rec(f.index(), var_id, value));
}

Bdd BddManager::constrain(const Bdd& f, const Bdd& c) {
  check_same_manager(this, f);
  check_same_manager(this, c);
  if (c.is_zero()) {
    throw std::invalid_argument("constrain: care set must be non-empty");
  }
  maybe_housekeep();
  return Bdd(this, constrain_rec(f.index(), c.index()));
}

Bdd BddManager::compose(const Bdd& f, unsigned var_id, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  ensure_var(var_id);
  maybe_housekeep();
  return Bdd(this, compose_rec(f.index(), var_id, g.index()));
}

Bdd BddManager::permute(const Bdd& f, std::span<const int> perm) {
  check_same_manager(this, f);
  maybe_housekeep();
  // Exact-match registry of permutations, so repeated applications of the
  // same renaming (e.g. next-state -> present-state in every image step)
  // share cache entries without any risk of hash collisions.
  static thread_local std::map<std::vector<int>, std::uint32_t> registry;
  const std::vector<int> key(perm.begin(), perm.end());
  auto [it, inserted] = registry.try_emplace(key, perm_counter_);
  if (inserted) ++perm_counter_;
  return Bdd(this, permute_rec(f.index(), perm, it->second));
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

std::vector<unsigned> BddManager::support(const Bdd& f) {
  check_same_manager(this, f);
  std::vector<bool> in_support(num_vars_, false);
  std::vector<NodeIndex> stack{f.index()};
  std::unordered_map<NodeIndex, bool> visited;
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (is_const(n) || visited[n]) continue;
    visited[n] = true;
    in_support[nodes_[n].var] = true;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

double BddManager::sat_count(const Bdd& f, unsigned num_vars) {
  check_same_manager(this, f);
  // density(n) = fraction of the full space satisfying n. Each node halves
  // the weight of its children regardless of its level, so the result is
  // independent of the current variable order.
  std::unordered_map<NodeIndex, double> memo;
  auto density = [this, &memo](auto&& self, NodeIndex n) -> double {
    if (n == 0) return 0.0;
    if (n == 1) return 1.0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const Node& nd = nodes_[n];
    const double d = 0.5 * self(self, nd.low) + 0.5 * self(self, nd.high);
    memo.emplace(n, d);
    return d;
  };
  return density(density, f.index()) * std::exp2(static_cast<double>(num_vars));
}

std::optional<std::vector<bool>> BddManager::pick_minterm(
    const Bdd& f, std::span<const unsigned> vars) {
  check_same_manager(this, f);
  if (f.index() == 0) return std::nullopt;
  for (const unsigned v : vars) ensure_var(v);
  // Lexicographically smallest assignment over `vars` in list order: take
  // false at each position unless that cofactor is unsatisfiable. The
  // cofactors are by variable id, so the answer does not depend on the
  // current variable order (a plain graph walk would).
  std::vector<bool> values(vars.size(), false);
  NodeIndex n = f.index();
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const NodeIndex lo = cofactor_rec(n, vars[i], false);
    if (lo != 0) {
      n = lo;
    } else {
      values[i] = true;
      n = cofactor_rec(n, vars[i], true);
    }
  }
  return values;
}

bool BddManager::for_each_minterm(
    const Bdd& f, std::span<const unsigned> vars,
    const std::function<bool(const std::vector<bool>&)>& fn) {
  check_same_manager(this, f);
  for (const unsigned v : vars) ensure_var(v);
  std::vector<bool> values(vars.size(), false);
  // Recursive enumeration: split on each listed variable in order.
  auto rec = [this, &vars, &values, &fn](auto&& self, NodeIndex n,
                                         std::size_t pos) -> bool {
    if (n == 0) return true;
    if (pos == vars.size()) {
      // All listed variables assigned; n must not depend on them anymore.
      return n == 0 ? true : fn(values);
    }
    const unsigned v = vars[pos];
    for (const bool b : {false, true}) {
      values[pos] = b;
      if (!self(self, cofactor_rec(n, v, b), pos + 1)) return false;
    }
    return true;
  };
  return rec(rec, f.index(), 0);
}

bool BddManager::eval(const Bdd& f,
                      const std::vector<bool>& values_by_var) const {
  NodeIndex n = f.index();
  while (!is_const(n)) {
    const Node& nd = nodes_[n];
    const bool v = nd.var < values_by_var.size() && values_by_var[nd.var];
    n = v ? nd.high : nd.low;
  }
  return n == 1;
}

bool BddManager::intersects(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_housekeep();
  return and_rec(f.index(), g.index()) != 0;
}

bool BddManager::leq(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_housekeep();
  return and_rec(f.index(), not_rec(g.index())) == 0;
}

std::size_t BddManager::node_count(const Bdd& f) const {
  std::unordered_map<NodeIndex, bool> visited;
  std::vector<NodeIndex> stack{f.index()};
  std::size_t count = 0;
  bool seen_const[2] = {false, false};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (is_const(n)) {
      if (!seen_const[n]) {
        seen_const[n] = true;
        ++count;
      }
      continue;
    }
    if (visited[n]) continue;
    visited[n] = true;
    ++count;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return count;
}

std::string BddManager::to_dot(
    const Bdd& f, const std::function<std::string(unsigned)>& var_name) const {
  std::ostringstream os;
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  n0 [label=\"0\", shape=box];\n";
  os << "  n1 [label=\"1\", shape=box];\n";
  std::unordered_map<NodeIndex, bool> visited;
  std::vector<NodeIndex> stack{f.index()};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (is_const(n) || visited[n]) continue;
    visited[n] = true;
    const Node& nd = nodes_[n];
    const std::string label =
        var_name ? var_name(nd.var) : "x" + std::to_string(nd.var);
    os << "  n" << n << " [label=\"" << label << "\", shape=circle];\n";
    os << "  n" << n << " -> n" << nd.low << " [style=dashed];\n";
    os << "  n" << n << " -> n" << nd.high << " [style=solid];\n";
    stack.push_back(nd.low);
    stack.push_back(nd.high);
  }
  os << "}\n";
  return os.str();
}

}  // namespace simcov::bdd
