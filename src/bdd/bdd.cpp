#include "bdd/bdd.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace simcov::bdd {

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer: cheap and well-distributed.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash3(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c) noexcept {
  return mix64(a * 0x100000001b3ull + mix64(b) * 31 + mix64(c));
}

}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, NodeIndex idx) noexcept : mgr_(mgr), idx_(idx) {
  if (mgr_ != nullptr) mgr_->ref(idx_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  if (mgr_ != nullptr) mgr_->ref(idx_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  other.mgr_ = nullptr;
  other.idx_ = 0;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->ref(other.idx_);
  if (mgr_ != nullptr) mgr_->deref(idx_);
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->deref(idx_);
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  other.mgr_ = nullptr;
  other.idx_ = 0;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->deref(idx_);
}

unsigned Bdd::top_var() const {
  assert(valid() && !is_constant());
  return mgr_->var_of(idx_);
}

Bdd Bdd::low() const {
  assert(valid() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[idx_].low);
}

Bdd Bdd::high() const {
  assert(valid() && !is_constant());
  return Bdd(mgr_, mgr_->nodes_[idx_].high);
}

Bdd Bdd::operator!() const { return mgr_->apply_not(*this); }
Bdd Bdd::operator&(const Bdd& rhs) const { return mgr_->apply_and(*this, rhs); }
Bdd Bdd::operator|(const Bdd& rhs) const { return mgr_->apply_or(*this, rhs); }
Bdd Bdd::operator^(const Bdd& rhs) const { return mgr_->apply_xor(*this, rhs); }
Bdd& Bdd::operator&=(const Bdd& rhs) { return *this = *this & rhs; }
Bdd& Bdd::operator|=(const Bdd& rhs) { return *this = *this | rhs; }
Bdd& Bdd::operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }
Bdd Bdd::implies(const Bdd& rhs) const { return (!*this) | rhs; }
Bdd Bdd::iff(const Bdd& rhs) const { return !(*this ^ rhs); }

std::size_t Bdd::node_count() const { return mgr_->node_count(*this); }

// ---------------------------------------------------------------------------
// BddManager: construction, node store, unique table
// ---------------------------------------------------------------------------

BddManager::BddManager(unsigned cache_bits) {
  nodes_.reserve(1u << 12);
  // Slots 0 and 1 are the constant leaves.
  nodes_.push_back(Node{kInvalidVar, 0, 0, 0});
  nodes_.push_back(Node{kInvalidVar, 1, 1, 0});
  ext_refs_.assign(2, 0);

  buckets_.assign(1u << 12, 0);
  bucket_mask_ = buckets_.size() - 1;

  cache_.assign(std::size_t{1} << cache_bits, CacheEntry{});
  cache_mask_ = cache_.size() - 1;
}

BddManager::~BddManager() = default;

void BddManager::ref(NodeIndex idx) noexcept { ++ext_refs_[idx]; }

void BddManager::deref(NodeIndex idx) noexcept {
  assert(ext_refs_[idx] > 0);
  --ext_refs_[idx];
}

std::size_t BddManager::cache_slot(std::uint64_t key, NodeIndex a, NodeIndex b,
                                   NodeIndex c) const noexcept {
  return static_cast<std::size_t>(
             hash3((key << 32) | a, b, c)) &
         cache_mask_;
}

bool BddManager::cache_find(Op op, NodeIndex a, NodeIndex b, NodeIndex c,
                            NodeIndex& out) {
  ++stats_.cache_lookups;
  const std::uint64_t key = static_cast<std::uint64_t>(op);
  const CacheEntry& e = cache_[cache_slot(key, a, b, c)];
  if (e.key == key && e.a == a && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    out = e.result;
    return true;
  }
  return false;
}

void BddManager::cache_insert(Op op, NodeIndex a, NodeIndex b, NodeIndex c,
                              NodeIndex result) {
  const std::uint64_t key = static_cast<std::uint64_t>(op);
  CacheEntry& e = cache_[cache_slot(key, a, b, c)];
  e = CacheEntry{key, a, b, c, result};
}

NodeIndex BddManager::alloc_slot() {
  if (free_list_ != 0) {
    const NodeIndex idx = free_list_;
    free_list_ = nodes_[idx].low;
    --free_count_;
    return idx;
  }
  nodes_.push_back(Node{});
  ext_refs_.push_back(0);
  return static_cast<NodeIndex>(nodes_.size() - 1);
}

void BddManager::grow_buckets() {
  std::vector<NodeIndex> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, 0);
  bucket_mask_ = buckets_.size() - 1;
  for (NodeIndex head : old) {
    NodeIndex n = head;
    while (n != 0) {
      const NodeIndex next = nodes_[n].next;
      const std::size_t slot =
          static_cast<std::size_t>(
              hash3(nodes_[n].var, nodes_[n].low, nodes_[n].high)) &
          bucket_mask_;
      nodes_[n].next = buckets_[slot];
      buckets_[slot] = n;
      n = next;
    }
  }
}

NodeIndex BddManager::make_node(unsigned var, NodeIndex low, NodeIndex high) {
  if (low == high) return low;  // reduction rule
  ++stats_.unique_lookups;
  const std::size_t slot =
      static_cast<std::size_t>(hash3(var, low, high)) & bucket_mask_;
  for (NodeIndex n = buckets_[slot]; n != 0; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.var == var && nd.low == low && nd.high == high) {
      ++stats_.unique_hits;
      return n;
    }
  }
  const NodeIndex idx = alloc_slot();
  nodes_[idx] = Node{var, low, high, buckets_[slot]};
  buckets_[slot] = idx;
  ++live_estimate_;
  if (nodes_.size() - free_count_ > buckets_.size()) grow_buckets();
  return idx;
}

void BddManager::maybe_gc() {
  if (live_estimate_ < gc_threshold_) return;
  const std::size_t before = nodes_.size() - free_count_;
  collect_garbage();
  const std::size_t after = nodes_.size() - free_count_;
  // If little was reclaimed, raise the threshold so we don't thrash.
  if (after * 4 > before * 3) gc_threshold_ *= 2;
  live_estimate_ = 0;
}

void BddManager::collect_garbage() {
  ++stats_.gc_runs;
  std::vector<bool> marked(nodes_.size(), false);
  marked[0] = marked[1] = true;
  // Iterative DFS from every externally referenced node.
  std::vector<NodeIndex> stack;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (ext_refs_[i] > 0 && !marked[i]) stack.push_back(i);
  }
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (marked[n]) continue;
    marked[n] = true;
    const Node& nd = nodes_[n];
    if (nd.var == kInvalidVar) continue;  // constant or free
    if (!marked[nd.low]) stack.push_back(nd.low);
    if (!marked[nd.high]) stack.push_back(nd.high);
  }
  // Sweep: rebuild the unique table from marked nodes; free the rest.
  std::fill(buckets_.begin(), buckets_.end(), 0);
  free_list_ = 0;
  free_count_ = 0;
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    Node& nd = nodes_[i];
    if (nd.var == kInvalidVar && !marked[i]) continue;  // already free slot
    if (marked[i]) {
      const std::size_t slot =
          static_cast<std::size_t>(hash3(nd.var, nd.low, nd.high)) &
          bucket_mask_;
      nd.next = buckets_[slot];
      buckets_[slot] = i;
    } else {
      nd.var = kInvalidVar;
      nd.low = free_list_;
      free_list_ = i;
    }
  }
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kInvalidVar) ++free_count_;
  }
  // The cache may reference dead nodes: drop it wholesale.
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
}

BddStats BddManager::stats() const {
  BddStats s = stats_;
  s.allocated_nodes = nodes_.size();
  s.free_nodes = free_count_;
  s.live_nodes = nodes_.size() - free_count_;
  return s;
}

// ---------------------------------------------------------------------------
// Constants, variables, cubes
// ---------------------------------------------------------------------------

Bdd BddManager::zero() { return Bdd(this, 0); }
Bdd BddManager::one() { return Bdd(this, 1); }

Bdd BddManager::var(unsigned var_id) {
  if (var_id >= num_vars_) num_vars_ = var_id + 1;
  return Bdd(this, make_node(var_id, 0, 1));
}

Bdd BddManager::literal(unsigned var_id, bool positive) {
  if (var_id >= num_vars_) num_vars_ = var_id + 1;
  return positive ? Bdd(this, make_node(var_id, 0, 1))
                  : Bdd(this, make_node(var_id, 1, 0));
}

Bdd BddManager::cube(std::span<const unsigned> vars) {
  std::vector<unsigned> sorted(vars.begin(), vars.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  NodeIndex acc = 1;
  for (unsigned v : sorted) {
    if (v >= num_vars_) num_vars_ = v + 1;
    acc = make_node(v, 0, acc);
  }
  return Bdd(this, acc);
}

Bdd BddManager::minterm(std::span<const unsigned> vars,
                        const std::vector<bool>& values) {
  if (vars.size() != values.size()) {
    throw std::invalid_argument("minterm: vars/values size mismatch");
  }
  std::vector<std::pair<unsigned, bool>> lits;
  lits.reserve(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    lits.emplace_back(vars[i], values[i]);
  }
  std::sort(lits.begin(), lits.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  NodeIndex acc = 1;
  for (const auto& [v, val] : lits) {
    if (v >= num_vars_) num_vars_ = v + 1;
    acc = val ? make_node(v, 0, acc) : make_node(v, acc, 0);
  }
  return Bdd(this, acc);
}

// ---------------------------------------------------------------------------
// Core recursive operations
// ---------------------------------------------------------------------------

NodeIndex BddManager::not_rec(NodeIndex f) {
  if (f == 0) return 1;
  if (f == 1) return 0;
  NodeIndex cached;
  if (cache_find(Op::kNot, f, 0, 0, cached)) return cached;
  const Node nd = nodes_[f];
  const NodeIndex r = make_node(nd.var, not_rec(nd.low), not_rec(nd.high));
  cache_insert(Op::kNot, f, 0, 0, r);
  return r;
}

NodeIndex BddManager::and_rec(NodeIndex f, NodeIndex g) {
  if (f == 0 || g == 0) return 0;
  if (f == 1) return g;
  if (g == 1) return f;
  if (f == g) return f;
  if (f > g) std::swap(f, g);  // commutative: normalize operand order
  NodeIndex cached;
  if (cache_find(Op::kAnd, f, g, 0, cached)) return cached;
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const unsigned v = std::min(nf.var, ng.var);
  const NodeIndex f0 = nf.var == v ? nf.low : f;
  const NodeIndex f1 = nf.var == v ? nf.high : f;
  const NodeIndex g0 = ng.var == v ? ng.low : g;
  const NodeIndex g1 = ng.var == v ? ng.high : g;
  const NodeIndex r = make_node(v, and_rec(f0, g0), and_rec(f1, g1));
  cache_insert(Op::kAnd, f, g, 0, r);
  return r;
}

NodeIndex BddManager::or_rec(NodeIndex f, NodeIndex g) {
  if (f == 1 || g == 1) return 1;
  if (f == 0) return g;
  if (g == 0) return f;
  if (f == g) return f;
  if (f > g) std::swap(f, g);
  NodeIndex cached;
  if (cache_find(Op::kOr, f, g, 0, cached)) return cached;
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const unsigned v = std::min(nf.var, ng.var);
  const NodeIndex f0 = nf.var == v ? nf.low : f;
  const NodeIndex f1 = nf.var == v ? nf.high : f;
  const NodeIndex g0 = ng.var == v ? ng.low : g;
  const NodeIndex g1 = ng.var == v ? ng.high : g;
  const NodeIndex r = make_node(v, or_rec(f0, g0), or_rec(f1, g1));
  cache_insert(Op::kOr, f, g, 0, r);
  return r;
}

NodeIndex BddManager::xor_rec(NodeIndex f, NodeIndex g) {
  if (f == g) return 0;
  if (f == 0) return g;
  if (g == 0) return f;
  if (f == 1) return not_rec(g);
  if (g == 1) return not_rec(f);
  if (f > g) std::swap(f, g);
  NodeIndex cached;
  if (cache_find(Op::kXor, f, g, 0, cached)) return cached;
  const Node& nf = nodes_[f];
  const Node& ng = nodes_[g];
  const unsigned v = std::min(nf.var, ng.var);
  const NodeIndex f0 = nf.var == v ? nf.low : f;
  const NodeIndex f1 = nf.var == v ? nf.high : f;
  const NodeIndex g0 = ng.var == v ? ng.low : g;
  const NodeIndex g1 = ng.var == v ? ng.high : g;
  const NodeIndex r = make_node(v, xor_rec(f0, g0), xor_rec(f1, g1));
  cache_insert(Op::kXor, f, g, 0, r);
  return r;
}

NodeIndex BddManager::ite_rec(NodeIndex f, NodeIndex g, NodeIndex h) {
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;
  if (g == 0 && h == 1) return not_rec(f);
  NodeIndex cached;
  if (cache_find(Op::kIte, f, g, h, cached)) return cached;
  const Node& nf = nodes_[f];
  unsigned v = nf.var;
  if (!is_const(g)) v = std::min(v, nodes_[g].var);
  if (!is_const(h)) v = std::min(v, nodes_[h].var);
  auto cof = [this, v](NodeIndex x, bool hi) -> NodeIndex {
    if (is_const(x) || nodes_[x].var != v) return x;
    return hi ? nodes_[x].high : nodes_[x].low;
  };
  const NodeIndex r = make_node(
      v, ite_rec(cof(f, false), cof(g, false), cof(h, false)),
      ite_rec(cof(f, true), cof(g, true), cof(h, true)));
  cache_insert(Op::kIte, f, g, h, r);
  return r;
}

NodeIndex BddManager::exists_rec(NodeIndex f, NodeIndex cube) {
  if (is_const(f)) return f;
  // Skip cube variables above f's top variable.
  while (!is_const(cube) && nodes_[cube].var < nodes_[f].var) {
    cube = nodes_[cube].high;
  }
  if (is_const(cube)) return f;
  NodeIndex cached;
  if (cache_find(Op::kExists, f, cube, 0, cached)) return cached;
  // Copy fields before recursing: make_node may reallocate nodes_.
  const Node nf = nodes_[f];
  const Node ncube = nodes_[cube];
  NodeIndex r;
  if (nf.var == ncube.var) {
    const NodeIndex lo = exists_rec(nf.low, ncube.high);
    if (lo == 1) {
      r = 1;  // early termination: disjunction already true
    } else {
      const NodeIndex hi = exists_rec(nf.high, ncube.high);
      r = or_rec(lo, hi);
    }
  } else {
    const NodeIndex lo = exists_rec(nf.low, cube);
    const NodeIndex hi = exists_rec(nf.high, cube);
    r = make_node(nf.var, lo, hi);
  }
  cache_insert(Op::kExists, f, cube, 0, r);
  return r;
}

NodeIndex BddManager::and_exists_rec(NodeIndex f, NodeIndex g,
                                     NodeIndex cube) {
  if (f == 0 || g == 0) return 0;
  if (cube == 1) return and_rec(f, g);
  if (f == 1 && g == 1) return 1;
  if (f > g) std::swap(f, g);  // AND is commutative
  NodeIndex cached;
  if (cache_find(Op::kAndExists, f, g, cube, cached)) return cached;
  const unsigned vf = is_const(f) ? kInvalidVar : nodes_[f].var;
  const unsigned vg = is_const(g) ? kInvalidVar : nodes_[g].var;
  const unsigned v = std::min(vf, vg);
  // Drop quantified variables above the top of f & g: they are vacuous.
  NodeIndex cb = cube;
  while (!is_const(cb) && nodes_[cb].var < v) cb = nodes_[cb].high;
  if (is_const(cb)) {
    const NodeIndex r = and_rec(f, g);
    cache_insert(Op::kAndExists, f, g, cube, r);
    return r;
  }
  const NodeIndex f0 = (vf == v) ? nodes_[f].low : f;
  const NodeIndex f1 = (vf == v) ? nodes_[f].high : f;
  const NodeIndex g0 = (vg == v) ? nodes_[g].low : g;
  const NodeIndex g1 = (vg == v) ? nodes_[g].high : g;
  NodeIndex r;
  if (nodes_[cb].var == v) {
    const NodeIndex lo = and_exists_rec(f0, g0, nodes_[cb].high);
    if (lo == 1) {
      r = 1;
    } else {
      const NodeIndex hi = and_exists_rec(f1, g1, nodes_[cb].high);
      r = or_rec(lo, hi);
    }
  } else {
    r = make_node(v, and_exists_rec(f0, g0, cb), and_exists_rec(f1, g1, cb));
  }
  cache_insert(Op::kAndExists, f, g, cube, r);
  return r;
}

NodeIndex BddManager::cofactor_rec(NodeIndex f, unsigned var_id, bool value) {
  if (is_const(f) || nodes_[f].var > var_id) return f;
  if (nodes_[f].var == var_id) return value ? nodes_[f].high : nodes_[f].low;
  NodeIndex cached;
  const NodeIndex tag = (var_id << 1) | static_cast<NodeIndex>(value);
  if (cache_find(Op::kCofactor, f, tag, 0, cached)) return cached;
  // Copy fields before recursing: make_node may reallocate nodes_.
  const Node nf = nodes_[f];
  const NodeIndex lo = cofactor_rec(nf.low, var_id, value);
  const NodeIndex hi = cofactor_rec(nf.high, var_id, value);
  const NodeIndex r = make_node(nf.var, lo, hi);
  cache_insert(Op::kCofactor, f, tag, 0, r);
  return r;
}

NodeIndex BddManager::constrain_rec(NodeIndex f, NodeIndex c) {
  assert(c != 0);
  if (c == 1 || is_const(f)) return f;
  NodeIndex cached;
  if (cache_find(Op::kConstrain, f, c, 0, cached)) return cached;
  const unsigned vf = nodes_[f].var;
  const unsigned vc = nodes_[c].var;
  const unsigned v = std::min(vf, vc);
  const NodeIndex f0 = (vf == v) ? nodes_[f].low : f;
  const NodeIndex f1 = (vf == v) ? nodes_[f].high : f;
  const NodeIndex c0 = (vc == v) ? nodes_[c].low : c;
  const NodeIndex c1 = (vc == v) ? nodes_[c].high : c;
  NodeIndex r;
  if (c0 == 0) {
    r = constrain_rec(f1, c1);
  } else if (c1 == 0) {
    r = constrain_rec(f0, c0);
  } else {
    r = make_node(v, constrain_rec(f0, c0), constrain_rec(f1, c1));
  }
  cache_insert(Op::kConstrain, f, c, 0, r);
  return r;
}

NodeIndex BddManager::compose_rec(NodeIndex f, unsigned var_id, NodeIndex g) {
  if (is_const(f)) return f;
  const unsigned vf = nodes_[f].var;
  if (vf > var_id) return f;  // var_id cannot appear below this level
  NodeIndex cached;
  if (cache_find(Op::kCompose, f, var_id, g, cached)) return cached;
  NodeIndex r;
  if (vf == var_id) {
    r = ite_rec(g, nodes_[f].high, nodes_[f].low);
  } else {
    const NodeIndex lo = compose_rec(nodes_[f].low, var_id, g);
    const NodeIndex hi = compose_rec(nodes_[f].high, var_id, g);
    // g's support may reach above vf, so rebuild with ITE on vf.
    const NodeIndex vnode = make_node(vf, 0, 1);
    r = ite_rec(vnode, hi, lo);
  }
  cache_insert(Op::kCompose, f, var_id, g, r);
  return r;
}

NodeIndex BddManager::permute_rec(NodeIndex f, std::span<const int> perm,
                                  std::uint32_t perm_tag) {
  if (is_const(f)) return f;
  NodeIndex cached;
  if (cache_find(Op::kPermute, f, perm_tag, 0, cached)) return cached;
  // Copy fields before recursing: make_node may reallocate nodes_.
  const Node nf = nodes_[f];
  const NodeIndex lo = permute_rec(nf.low, perm, perm_tag);
  const NodeIndex hi = permute_rec(nf.high, perm, perm_tag);
  const int nv = nf.var < perm.size() ? perm[nf.var] : static_cast<int>(nf.var);
  if (nv < 0) {
    throw std::invalid_argument(
        "permute: support variable has no mapping (perm[v] < 0)");
  }
  if (static_cast<unsigned>(nv) >= num_vars_) num_vars_ = nv + 1;
  // The renamed variable may land anywhere in the order, so rebuild with ITE.
  const NodeIndex vnode = make_node(static_cast<unsigned>(nv), 0, 1);
  const NodeIndex r = ite_rec(vnode, hi, lo);
  cache_insert(Op::kPermute, f, perm_tag, 0, r);
  return r;
}

// ---------------------------------------------------------------------------
// Public operation wrappers
// ---------------------------------------------------------------------------

namespace {
void check_same_manager(const BddManager* mgr, const Bdd& x) {
  if (!x.valid() || x.manager() != mgr) {
    throw std::invalid_argument("Bdd operand belongs to another manager");
  }
}
}  // namespace

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  check_same_manager(this, h);
  maybe_gc();
  return Bdd(this, ite_rec(f.index(), g.index(), h.index()));
}

Bdd BddManager::apply_not(const Bdd& f) {
  check_same_manager(this, f);
  maybe_gc();
  return Bdd(this, not_rec(f.index()));
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_gc();
  return Bdd(this, and_rec(f.index(), g.index()));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_gc();
  return Bdd(this, or_rec(f.index(), g.index()));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_gc();
  return Bdd(this, xor_rec(f.index(), g.index()));
}

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  check_same_manager(this, f);
  check_same_manager(this, cube);
  maybe_gc();
  return Bdd(this, exists_rec(f.index(), cube.index()));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  check_same_manager(this, f);
  check_same_manager(this, cube);
  maybe_gc();
  // forall x. f == !(exists x. !f)
  return Bdd(this, not_rec(exists_rec(not_rec(f.index()), cube.index())));
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  check_same_manager(this, cube);
  maybe_gc();
  return Bdd(this, and_exists_rec(f.index(), g.index(), cube.index()));
}

Bdd BddManager::cofactor(const Bdd& f, unsigned var_id, bool value) {
  check_same_manager(this, f);
  maybe_gc();
  return Bdd(this, cofactor_rec(f.index(), var_id, value));
}

Bdd BddManager::constrain(const Bdd& f, const Bdd& c) {
  check_same_manager(this, f);
  check_same_manager(this, c);
  if (c.is_zero()) {
    throw std::invalid_argument("constrain: care set must be non-empty");
  }
  maybe_gc();
  return Bdd(this, constrain_rec(f.index(), c.index()));
}

Bdd BddManager::compose(const Bdd& f, unsigned var_id, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_gc();
  return Bdd(this, compose_rec(f.index(), var_id, g.index()));
}

Bdd BddManager::permute(const Bdd& f, std::span<const int> perm) {
  check_same_manager(this, f);
  maybe_gc();
  // Exact-match registry of permutations, so repeated applications of the
  // same renaming (e.g. next-state -> present-state in every image step)
  // share cache entries without any risk of hash collisions.
  static thread_local std::map<std::vector<int>, std::uint32_t> registry;
  const std::vector<int> key(perm.begin(), perm.end());
  auto [it, inserted] = registry.try_emplace(key, perm_counter_);
  if (inserted) ++perm_counter_;
  return Bdd(this, permute_rec(f.index(), perm, it->second));
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

std::vector<unsigned> BddManager::support(const Bdd& f) {
  check_same_manager(this, f);
  std::vector<bool> in_support(num_vars_, false);
  std::vector<NodeIndex> stack{f.index()};
  std::unordered_map<NodeIndex, bool> visited;
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (is_const(n) || visited[n]) continue;
    visited[n] = true;
    in_support[nodes_[n].var] = true;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

double BddManager::sat_count(const Bdd& f, unsigned num_vars) {
  check_same_manager(this, f);
  // density(n) = fraction of the full space satisfying n.
  std::unordered_map<NodeIndex, double> memo;
  auto density = [this, &memo](auto&& self, NodeIndex n) -> double {
    if (n == 0) return 0.0;
    if (n == 1) return 1.0;
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const Node& nd = nodes_[n];
    const double d = 0.5 * self(self, nd.low) + 0.5 * self(self, nd.high);
    memo.emplace(n, d);
    return d;
  };
  return density(density, f.index()) * std::exp2(static_cast<double>(num_vars));
}

std::optional<std::vector<bool>> BddManager::pick_minterm(
    const Bdd& f, std::span<const unsigned> vars) {
  check_same_manager(this, f);
  if (f.index() == 0) return std::nullopt;
  std::vector<bool> values(vars.size(), false);
  // Walk a satisfying path, preferring low branches.
  std::unordered_map<unsigned, bool> path;  // var -> value along the path
  NodeIndex n = f.index();
  while (!is_const(n)) {
    const Node& nd = nodes_[n];
    if (nd.low != 0) {
      path[nd.var] = false;
      n = nd.low;
    } else {
      path[nd.var] = true;
      n = nd.high;
    }
  }
  assert(n == 1);
  for (std::size_t i = 0; i < vars.size(); ++i) {
    auto it = path.find(vars[i]);
    values[i] = it != path.end() && it->second;
  }
  return values;
}

bool BddManager::for_each_minterm(
    const Bdd& f, std::span<const unsigned> vars,
    const std::function<bool(const std::vector<bool>&)>& fn) {
  check_same_manager(this, f);
  std::vector<bool> values(vars.size(), false);
  // Recursive enumeration: split on each listed variable in order.
  auto rec = [this, &vars, &values, &fn](auto&& self, NodeIndex n,
                                         std::size_t pos) -> bool {
    if (n == 0) return true;
    if (pos == vars.size()) {
      // All listed variables assigned; n must not depend on them anymore.
      return n == 0 ? true : fn(values);
    }
    const unsigned v = vars[pos];
    for (const bool b : {false, true}) {
      values[pos] = b;
      if (!self(self, cofactor_rec(n, v, b), pos + 1)) return false;
    }
    return true;
  };
  return rec(rec, f.index(), 0);
}

bool BddManager::eval(const Bdd& f,
                      const std::vector<bool>& values_by_var) const {
  NodeIndex n = f.index();
  while (!is_const(n)) {
    const Node& nd = nodes_[n];
    const bool v = nd.var < values_by_var.size() && values_by_var[nd.var];
    n = v ? nd.high : nd.low;
  }
  return n == 1;
}

bool BddManager::intersects(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_gc();
  return and_rec(f.index(), g.index()) != 0;
}

bool BddManager::leq(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f);
  check_same_manager(this, g);
  maybe_gc();
  return and_rec(f.index(), not_rec(g.index())) == 0;
}

std::size_t BddManager::node_count(const Bdd& f) const {
  std::unordered_map<NodeIndex, bool> visited;
  std::vector<NodeIndex> stack{f.index()};
  std::size_t count = 0;
  bool seen_const[2] = {false, false};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (is_const(n)) {
      if (!seen_const[n]) {
        seen_const[n] = true;
        ++count;
      }
      continue;
    }
    if (visited[n]) continue;
    visited[n] = true;
    ++count;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return count;
}

std::string BddManager::to_dot(
    const Bdd& f, const std::function<std::string(unsigned)>& var_name) const {
  std::ostringstream os;
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  n0 [label=\"0\", shape=box];\n";
  os << "  n1 [label=\"1\", shape=box];\n";
  std::unordered_map<NodeIndex, bool> visited;
  std::vector<NodeIndex> stack{f.index()};
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    if (is_const(n) || visited[n]) continue;
    visited[n] = true;
    const Node& nd = nodes_[n];
    const std::string label =
        var_name ? var_name(nd.var) : "x" + std::to_string(nd.var);
    os << "  n" << n << " [label=\"" << label << "\", shape=circle];\n";
    os << "  n" << n << " -> n" << nd.low << " [style=dashed];\n";
    os << "  n" << n << " -> n" << nd.high << " [style=solid];\n";
    stack.push_back(nd.low);
    stack.push_back(nd.high);
  }
  os << "}\n";
  return os.str();
}

}  // namespace simcov::bdd
