// Directed Chinese Postman Problem.
//
// The paper (Section 6.5) notes that a minimum-cost transition tour of a test
// model "corresponds directly to the Chinese postman problem, which can be
// solved in polynomial time" [Aho+91]. This module implements that reduction:
// balance the state graph by duplicating edges along min-cost-flow paths,
// then extract an Eulerian circuit of the augmented multigraph.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace simcov::graph {

struct PostmanResult {
  /// Closed walk from the start node covering every edge of the input graph
  /// at least once, as a sequence of *input-graph* edge ids (edges duplicated
  /// by the augmentation appear multiple times).
  std::vector<EdgeId> tour;
  /// Total cost of the tour.
  std::int64_t total_cost = 0;
  /// Sum of all edge costs = lower bound on any covering tour.
  std::int64_t lower_bound = 0;
  /// Number of duplicate traversals the augmentation added.
  std::size_t duplicated_edges = 0;
};

/// Solves the directed CPP from `start`. Edge costs must be non-negative.
/// Returns nullopt when no covering closed walk exists (the edge-touched part
/// of the graph is not strongly connected, or `start` cannot join it).
std::optional<PostmanResult> directed_chinese_postman(const Digraph& g,
                                                      NodeId start);

}  // namespace simcov::graph
