#include "graph/digraph.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace simcov::graph {

EdgeId Digraph::add_edge(NodeId from, NodeId to, std::int64_t cost,
                         std::uint64_t label) {
  if (from >= num_nodes() || to >= num_nodes()) {
    throw std::out_of_range("Digraph::add_edge: node id out of range");
  }
  edges_.push_back(Edge{from, to, cost, label});
  const EdgeId id = edges_.size() - 1;
  out_[from].push_back(id);
  ++in_degree_[to];
  return id;
}

std::int64_t Digraph::total_cost() const {
  return std::accumulate(edges_.begin(), edges_.end(), std::int64_t{0},
                         [](std::int64_t acc, const Edge& e) {
                           return acc + e.cost;
                         });
}

SccResult strongly_connected_components(const Digraph& g) {
  const NodeId n = g.num_nodes();
  SccResult result;
  result.component.assign(n, 0);

  constexpr NodeId kUnvisited = 0xffffffffu;
  std::vector<NodeId> index(n, kUnvisited);
  std::vector<NodeId> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> scc_stack;
  NodeId next_index = 0;

  // Iterative Tarjan: each frame tracks the node and the position within its
  // adjacency list.
  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back(Frame{root, 0});
    while (!call_stack.empty()) {
      Frame& fr = call_stack.back();
      const NodeId v = fr.node;
      if (fr.edge_pos == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      const auto edges = g.out_edges(v);
      while (fr.edge_pos < edges.size()) {
        const NodeId w = g.edge(edges[fr.edge_pos]).to;
        ++fr.edge_pos;
        if (index[w] == kUnvisited) {
          call_stack.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      // All successors processed: close the frame.
      if (lowlink[v] == index[v]) {
        NodeId w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          result.component[w] = result.count;
        } while (w != v);
        ++result.count;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const NodeId parent = call_stack.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.num_nodes() == 0) return true;
  return strongly_connected_components(g).count == 1;
}

bool has_eulerian_circuit(const Digraph& g) {
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (g.out_degree(v) != g.in_degree(v)) return false;
  }
  if (g.num_edges() == 0) return true;
  // All edge-touched nodes must be in one SCC.
  const SccResult scc = strongly_connected_components(g);
  NodeId edge_component = scc.count;  // sentinel
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId c = scc.component[g.edge(e).from];
    if (edge_component == scc.count) {
      edge_component = c;
    } else if (c != edge_component) {
      return false;
    }
  }
  return true;
}

std::vector<EdgeId> eulerian_circuit(const Digraph& g, NodeId start) {
  if (g.num_edges() == 0) return {};
  assert(has_eulerian_circuit(g));
  if (g.out_degree(start) == 0) {
    throw std::invalid_argument(
        "eulerian_circuit: start node touches no edges");
  }
  // Hierholzer, iterative. next_edge[v] is a cursor into v's adjacency list.
  std::vector<std::size_t> next_edge(g.num_nodes(), 0);
  std::vector<EdgeId> circuit;
  circuit.reserve(g.num_edges());
  // Stack of (node, edge-taken-to-get-here). Emit edges on unwinding to get
  // the circuit in order.
  std::vector<std::pair<NodeId, EdgeId>> stack;
  constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);
  stack.emplace_back(start, kNoEdge);
  while (!stack.empty()) {
    const NodeId v = stack.back().first;
    if (next_edge[v] < g.out_edges(v).size()) {
      const EdgeId e = g.out_edges(v)[next_edge[v]++];
      stack.emplace_back(g.edge(e).to, e);
    } else {
      if (stack.back().second != kNoEdge) circuit.push_back(stack.back().second);
      stack.pop_back();
    }
  }
  std::reverse(circuit.begin(), circuit.end());
  assert(circuit.size() == g.num_edges());
  return circuit;
}

}  // namespace simcov::graph
