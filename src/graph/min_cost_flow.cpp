#include "graph/min_cost_flow.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace simcov::graph {

std::size_t MinCostFlow::add_arc(std::uint32_t u, std::uint32_t v,
                                 std::int64_t capacity, std::int64_t cost) {
  if (u >= head_.size() || v >= head_.size()) {
    throw std::out_of_range("MinCostFlow::add_arc: node id out of range");
  }
  if (capacity < 0 || cost < 0) {
    throw std::invalid_argument(
        "MinCostFlow::add_arc: capacity and cost must be non-negative");
  }
  const std::size_t id = arcs_.size();
  arcs_.push_back(Arc{v, capacity, cost, head_[u]});
  head_[u] = static_cast<int>(id);
  arcs_.push_back(Arc{u, 0, -cost, head_[v]});
  head_[v] = static_cast<int>(id + 1);
  original_cap_.push_back(capacity);
  return id;
}

std::pair<std::int64_t, std::int64_t> MinCostFlow::solve(
    std::uint32_t s, std::uint32_t t, std::int64_t max_flow) {
  const std::size_t n = head_.size();
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  std::vector<std::int64_t> potential(n, 0);  // valid: all costs >= 0
  std::int64_t flow = 0;
  std::int64_t cost = 0;

  std::vector<std::int64_t> dist(n);
  std::vector<int> prev_arc(n);
  std::vector<bool> done(n);

  while (flow < max_flow) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(prev_arc.begin(), prev_arc.end(), -1);
    std::fill(done.begin(), done.end(), false);
    using Item = std::pair<std::int64_t, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[s] = 0;
    pq.emplace(0, s);
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (done[v]) continue;
      done[v] = true;
      for (int a = head_[v]; a != -1; a = arcs_[a].next) {
        const Arc& arc = arcs_[a];
        if (arc.cap <= 0 || done[arc.to]) continue;
        const std::int64_t nd =
            d + arc.cost + potential[v] - potential[arc.to];
        if (nd < dist[arc.to]) {
          dist[arc.to] = nd;
          prev_arc[arc.to] = a;
          pq.emplace(nd, arc.to);
        }
      }
    }
    if (dist[t] >= kInf) break;  // t unreachable: maximum flow reached
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }
    // Find bottleneck along the shortest path.
    std::int64_t push = max_flow - flow;
    for (std::uint32_t v = t; v != s;) {
      const Arc& arc = arcs_[prev_arc[v]];
      push = std::min(push, arc.cap);
      v = arcs_[prev_arc[v] ^ 1].to;
    }
    // Apply.
    for (std::uint32_t v = t; v != s;) {
      Arc& arc = arcs_[prev_arc[v]];
      arc.cap -= push;
      arcs_[prev_arc[v] ^ 1].cap += push;
      cost += push * arc.cost;
      v = arcs_[prev_arc[v] ^ 1].to;
    }
    flow += push;
  }
  return {flow, cost};
}

std::int64_t MinCostFlow::flow_on(std::size_t id) const {
  // add_arc returns the index of the forward arc (always even); the
  // corresponding original capacity lives at id/2.
  return original_cap_[id / 2] - arcs_[id].cap;
}

}  // namespace simcov::graph
