#include "graph/postman.hpp"

#include <stdexcept>

#include "graph/min_cost_flow.hpp"

namespace simcov::graph {

std::optional<PostmanResult> directed_chinese_postman(const Digraph& g,
                                                      NodeId start) {
  PostmanResult result;
  if (g.num_edges() == 0) return result;  // empty tour covers nothing

  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).cost < 0) {
      throw std::invalid_argument(
          "directed_chinese_postman: negative edge cost");
    }
    result.lower_bound += g.edge(e).cost;
  }

  // Feasibility: every edge-touched node (and the start) must share one SCC.
  const SccResult scc = strongly_connected_components(g);
  NodeId edge_comp = scc.count;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId c = scc.component[g.edge(e).from];
    const NodeId c2 = scc.component[g.edge(e).to];
    if (edge_comp == scc.count) edge_comp = c;
    if (c != edge_comp || c2 != edge_comp) return std::nullopt;
  }
  if (scc.component[start] != edge_comp) return std::nullopt;

  // Imbalance b(v) = out(v) - in(v). Duplicated paths must start at nodes
  // with b < 0 (entered more than left) and end at nodes with b > 0.
  const NodeId n = g.num_nodes();
  std::vector<std::int64_t> balance(n, 0);
  std::int64_t total_deficit = 0;
  for (NodeId v = 0; v < n; ++v) {
    balance[v] = static_cast<std::int64_t>(g.out_degree(v)) -
                 static_cast<std::int64_t>(g.in_degree(v));
    if (balance[v] < 0) total_deficit += -balance[v];
  }

  std::vector<std::int64_t> duplicates(g.num_edges(), 0);
  if (total_deficit > 0) {
    MinCostFlow mcf(n + 2);
    const std::uint32_t src = n;
    const std::uint32_t sink = n + 1;
    std::vector<std::size_t> edge_arcs(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      edge_arcs[e] = mcf.add_arc(g.edge(e).from, g.edge(e).to, total_deficit,
                                 g.edge(e).cost);
    }
    for (NodeId v = 0; v < n; ++v) {
      if (balance[v] < 0) mcf.add_arc(src, v, -balance[v], 0);
      if (balance[v] > 0) mcf.add_arc(v, sink, balance[v], 0);
    }
    const auto [flow, flow_cost] = mcf.solve(src, sink);
    (void)flow_cost;
    if (flow != total_deficit) return std::nullopt;  // defensive; SCC => feasible
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      duplicates[e] = mcf.flow_on(edge_arcs[e]);
    }
  }

  // Augmented multigraph: original edge ids ride in the label field.
  Digraph aug(n);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    for (std::int64_t k = 0; k <= duplicates[e]; ++k) {
      aug.add_edge(ed.from, ed.to, ed.cost, e);
      if (k > 0) ++result.duplicated_edges;
    }
  }
  const std::vector<EdgeId> circuit = eulerian_circuit(aug, start);
  result.tour.reserve(circuit.size());
  for (EdgeId ae : circuit) {
    const EdgeId orig = static_cast<EdgeId>(aug.edge(ae).label);
    result.tour.push_back(orig);
    result.total_cost += g.edge(orig).cost;
  }
  return result;
}

}  // namespace simcov::graph
