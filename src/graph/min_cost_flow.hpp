// Minimum-cost maximum-flow via successive shortest paths with Johnson
// potentials. Used by the Directed Chinese Postman solver to choose the
// cheapest set of edge duplications that makes the state graph Eulerian.
#pragma once

#include <cstdint>
#include <vector>

namespace simcov::graph {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::uint32_t num_nodes) : head_(num_nodes, -1) {}

  /// Adds a directed arc u -> v. Costs must be non-negative.
  /// Returns an arc id usable with flow_on().
  std::size_t add_arc(std::uint32_t u, std::uint32_t v, std::int64_t capacity,
                      std::int64_t cost);

  /// Sends up to `max_flow` units from s to t at minimum cost.
  /// Returns {flow actually sent, total cost of that flow}.
  std::pair<std::int64_t, std::int64_t> solve(
      std::uint32_t s, std::uint32_t t,
      std::int64_t max_flow = std::int64_t{1} << 62);

  /// Flow routed through arc `id` by the last solve() call.
  [[nodiscard]] std::int64_t flow_on(std::size_t id) const;

 private:
  struct Arc {
    std::uint32_t to;
    std::int64_t cap;   // residual capacity
    std::int64_t cost;
    int next;           // intrusive adjacency list
  };

  // Forward arc 2k pairs with backward arc 2k+1.
  std::vector<Arc> arcs_;
  std::vector<int> head_;
  std::vector<std::int64_t> original_cap_;
};

}  // namespace simcov::graph
