// Directed multigraph used by the tour generators.
//
// Transition tours reduce to walks on the state graph of a test model: each
// FSM transition becomes a labelled edge, and the minimum-cost transition
// tour is exactly the Directed Chinese Postman tour of that graph [Aho+91].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace simcov::graph {

using NodeId = std::uint32_t;
using EdgeId = std::size_t;

struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  std::int64_t cost = 1;
  /// Opaque user payload; tour code stores the FSM transition id here.
  std::uint64_t label = 0;
};

/// A directed multigraph with per-edge costs and labels. Parallel edges and
/// self-loops are allowed (both occur naturally in FSM state graphs).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(NodeId num_nodes) : out_(num_nodes), in_degree_(num_nodes) {}

  NodeId add_node() {
    out_.emplace_back();
    in_degree_.push_back(0);
    return static_cast<NodeId>(out_.size() - 1);
  }

  EdgeId add_edge(NodeId from, NodeId to, std::int64_t cost = 1,
                  std::uint64_t label = 0);

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(out_.size());
  }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[e]; }
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId v) const {
    return out_[v];
  }
  [[nodiscard]] std::size_t out_degree(NodeId v) const {
    return out_[v].size();
  }
  [[nodiscard]] std::size_t in_degree(NodeId v) const { return in_degree_[v]; }
  [[nodiscard]] std::int64_t total_cost() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::size_t> in_degree_;
};

/// Strongly connected components via Tarjan's algorithm (iterative).
struct SccResult {
  /// component[v] is the SCC index of node v; indices are in reverse
  /// topological order of the condensation (standard Tarjan numbering).
  std::vector<NodeId> component;
  NodeId count = 0;
};

SccResult strongly_connected_components(const Digraph& g);

/// True when every node is in a single SCC (the whole graph).
bool is_strongly_connected(const Digraph& g);

/// True when all edges lie in one SCC and every node touched by an edge is
/// degree-balanced (in == out) — the directed Eulerian circuit condition.
bool has_eulerian_circuit(const Digraph& g);

/// Eulerian circuit via Hierholzer's algorithm. Returns the sequence of edge
/// ids of a closed walk from `start` using every edge exactly once.
/// Precondition: has_eulerian_circuit(g) and `start` touches an edge (or the
/// graph has no edges, yielding an empty circuit).
std::vector<EdgeId> eulerian_circuit(const Digraph& g, NodeId start);

}  // namespace simcov::graph
