#include "errmodel/errmodel.hpp"

#include <algorithm>
#include <bit>
#include <random>
#include <stdexcept>

namespace simcov::errmodel {

using fsm::InputId;
using fsm::MealyMachine;
using fsm::OutputId;
using fsm::StateId;

fsm::MealyMachine apply_mutation(const MealyMachine& m, const Mutation& mut) {
  const auto t = m.transition(mut.at.state, mut.at.input);
  if (!t.has_value()) {
    throw std::invalid_argument("apply_mutation: transition undefined");
  }
  MealyMachine mutant = m;
  if (mut.kind == ErrorKind::kOutput) {
    if (mut.new_output == t->output) {
      throw std::invalid_argument("apply_mutation: vacuous output mutation");
    }
    mutant.set_transition(mut.at.state, mut.at.input, t->next, mut.new_output);
  } else {
    if (mut.new_next == t->next) {
      throw std::invalid_argument("apply_mutation: vacuous transfer mutation");
    }
    mutant.set_transition(mut.at.state, mut.at.input, mut.new_next, t->output);
  }
  return mutant;
}

std::vector<Mutation> enumerate_output_errors(const MealyMachine& m,
                                              StateId start,
                                              OutputId output_alphabet) {
  std::vector<Mutation> result;
  for (const auto& ref : m.reachable_transitions(start)) {
    const auto t = m.transition(ref.state, ref.input).value();
    for (OutputId o = 0; o < output_alphabet; ++o) {
      if (o == t.output) continue;
      result.push_back(Mutation{ErrorKind::kOutput, ref, 0, o});
    }
  }
  return result;
}

std::vector<Mutation> enumerate_transfer_errors(const MealyMachine& m,
                                                StateId start) {
  std::vector<Mutation> result;
  const auto reachable = m.reachable_states(start);
  for (const auto& ref : m.reachable_transitions(start)) {
    const auto t = m.transition(ref.state, ref.input).value();
    for (StateId s = 0; s < m.num_states(); ++s) {
      if (s == t.next || !reachable[s]) continue;
      result.push_back(Mutation{ErrorKind::kTransfer, ref, s, 0});
    }
  }
  return result;
}

std::vector<Mutation> sample_mutations(const MealyMachine& m, StateId start,
                                       OutputId output_alphabet,
                                       std::size_t count, std::uint64_t seed) {
  std::vector<Mutation> pool = enumerate_output_errors(m, start, output_alphabet);
  const auto transfers = enumerate_transfer_errors(m, start);
  pool.insert(pool.end(), transfers.begin(), transfers.end());
  std::mt19937_64 rng(seed);
  std::shuffle(pool.begin(), pool.end(), rng);
  if (pool.size() > count) pool.resize(count);
  return pool;
}

bool exposes(const MealyMachine& spec, const MealyMachine& mutant,
             StateId start, std::span<const InputId> inputs) {
  StateId at_spec = start;
  StateId at_mut = start;
  for (InputId i : inputs) {
    const auto ts = spec.transition(at_spec, i);
    const auto tm = mutant.transition(at_mut, i);
    if (ts.has_value() != tm.has_value()) return true;  // definedness mismatch
    if (!ts.has_value()) return false;  // sequence invalid for both: truncate
    if (ts->output != tm->output) return true;
    at_spec = ts->next;
    at_mut = tm->next;
  }
  return false;
}

bool exposes(const MealyMachine& spec, const Mutation& mut, StateId start,
             std::span<const InputId> inputs) {
  const auto original = spec.transition(mut.at.state, mut.at.input);
  if (!original.has_value()) {
    throw std::invalid_argument("exposes: mutated transition undefined");
  }
  fsm::Transition mutated = *original;
  if (mut.kind == ErrorKind::kOutput) {
    mutated.output = mut.new_output;
  } else {
    mutated.next = mut.new_next;
  }
  StateId at_spec = start;
  StateId at_mut = start;
  for (InputId i : inputs) {
    const auto ts = spec.transition(at_spec, i);
    auto tm = spec.transition(at_mut, i);
    if (tm.has_value() && at_mut == mut.at.state && i == mut.at.input) {
      tm = mutated;
    }
    if (ts.has_value() != tm.has_value()) return true;
    if (!ts.has_value()) return false;
    if (ts->output != tm->output) return true;
    at_spec = ts->next;
    at_mut = tm->next;
  }
  return false;
}

PackedMutantBlock::PackedMutantBlock(const MealyMachine& spec,
                                     std::span<const Mutation> block)
    : spec_(&spec), size_(block.size()) {
  if (block.size() > kLanes) {
    throw std::invalid_argument(
        "PackedMutantBlock: more than 64 mutants in a block");
  }
  state_lanes_.resize(spec.num_states(), 0);
  for (std::size_t l = 0; l < block.size(); ++l) {
    const Mutation& mut = block[l];
    const auto original = spec.transition(mut.at.state, mut.at.input);
    if (!original.has_value()) {
      throw std::invalid_argument(
          "PackedMutantBlock: mutated transition undefined");
    }
    site_state_[l] = mut.at.state;
    site_input_[l] = mut.at.input;
    new_next_[l] = mut.new_next;
    new_output_[l] = mut.new_output;
    const std::uint64_t bit = std::uint64_t{1} << l;
    if (mut.kind == ErrorKind::kOutput) output_kind_ |= bit;
    // A vacuous mutation (replacement equals the original) leaves the lane
    // behaving exactly like the spec — it can never be exposed, which is
    // what an unregistered site yields.
    const bool vacuous = mut.kind == ErrorKind::kOutput
                             ? mut.new_output == original->output
                             : mut.new_next == original->next;
    if (!vacuous) {
      state_lanes_[mut.at.state] |= bit;
    }
  }
}

std::uint64_t PackedMutantBlock::exposes(StateId start,
                                         std::span<const InputId> inputs,
                                         std::uint64_t active) const {
  const std::uint64_t lane_mask =
      size_ == kLanes ? ~std::uint64_t{0} : (std::uint64_t{1} << size_) - 1;
  std::uint64_t undecided = active & lane_mask;
  std::uint64_t lockstep = undecided;  // at_mut == at_spec, site not yet hit
  std::uint64_t diverged = 0;          // transfer mutants walking on their own
  std::uint64_t exposed = 0;
  std::array<StateId, kLanes> at_mut{};
  StateId at_spec = start;

  const MealyMachine& spec = *spec_;
  for (const InputId i : inputs) {
    if (undecided == 0) break;
    const auto ts = spec.transition(at_spec, i);
    // Diverged lanes still pending at the start of this step; lanes that
    // diverge on THIS step consumed input i at the site and must not also
    // walk below.
    const std::uint64_t walk = diverged & undecided;
    if (!ts.has_value()) {
      // Spec truncates here. Lockstep mutants truncate too (unexposed);
      // a diverged mutant is exposed iff its own transition is defined
      // (definedness mismatch).
      for (std::uint64_t w = walk; w != 0; w &= w - 1) {
        const auto l = static_cast<std::size_t>(std::countr_zero(w));
        if (spec.transition(at_mut[l], i).has_value()) {
          exposed |= std::uint64_t{1} << l;
        }
      }
      return exposed;
    }
    // Lockstep lanes whose mutation site is the spec's current transition:
    // an output mutant differs right here (non-vacuous, so exposed); a
    // transfer mutant silently branches off to its replacement state. The
    // state-indexed mask keeps the overwhelmingly common no-site step to a
    // single load; the input check happens per candidate lane.
    if (const std::uint64_t in_state =
            state_lanes_[at_spec] & lockstep & undecided;
        in_state != 0) {
      std::uint64_t hit = 0;
      for (std::uint64_t w = in_state; w != 0; w &= w - 1) {
        const auto l = static_cast<std::size_t>(std::countr_zero(w));
        if (site_input_[l] == i) hit |= std::uint64_t{1} << l;
      }
      const std::uint64_t out_hit = hit & output_kind_;
      exposed |= out_hit;
      undecided &= ~out_hit;
      for (std::uint64_t w = hit & ~output_kind_; w != 0; w &= w - 1) {
        const auto l = static_cast<std::size_t>(std::countr_zero(w));
        at_mut[l] = new_next_[l];
      }
      lockstep &= ~hit;
      diverged |= hit & ~output_kind_;
    }
    // Diverged lanes advance one at a time — each is in its own state, so
    // there is nothing word-level left to share beyond the spec's walk.
    for (std::uint64_t w = walk & undecided; w != 0; w &= w - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(w));
      const std::uint64_t bit = std::uint64_t{1} << l;
      auto tm = spec.transition(at_mut[l], i);
      if (tm.has_value() && at_mut[l] == site_state_[l] &&
          i == site_input_[l]) {
        if ((output_kind_ & bit) != 0) {
          tm->output = new_output_[l];
        } else {
          tm->next = new_next_[l];
        }
      }
      if (!tm.has_value() || tm->output != ts->output) {
        exposed |= bit;
        undecided &= ~bit;
        diverged &= ~bit;
        continue;
      }
      at_mut[l] = tm->next;
    }
    at_spec = ts->next;
    // Reconvergence (the paper's Definition 4 masking): a diverged mutant
    // landing back on the spec's state rejoins the lockstep herd.
    for (std::uint64_t w = diverged & undecided; w != 0; w &= w - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(w));
      if (at_mut[l] == at_spec) {
        diverged &= ~(std::uint64_t{1} << l);
        lockstep |= std::uint64_t{1} << l;
      }
    }
  }
  return exposed;
}

bool excites(const MealyMachine& mutant, const Mutation& mut, StateId start,
             std::span<const InputId> inputs) {
  StateId at = start;
  for (InputId i : inputs) {
    if (at == mut.at.state && i == mut.at.input) return true;
    const auto t = mutant.transition(at, i);
    if (!t.has_value()) return false;
    at = t->next;
  }
  return false;
}

TestSetReport evaluate_test_set(const MealyMachine& spec,
                                std::span<const Mutation> mutations,
                                StateId start,
                                std::span<const InputId> inputs) {
  TestSetReport report;
  report.total_mutants = mutations.size();
  report.exposed_flags.resize(mutations.size(), false);
  for (std::size_t k = 0; k < mutations.size(); ++k) {
    const MealyMachine mutant = apply_mutation(spec, mutations[k]);
    if (excites(mutant, mutations[k], start, inputs)) ++report.excited;
    if (exposes(spec, mutant, start, inputs)) {
      report.exposed_flags[k] = true;
      ++report.exposed;
    }
  }
  return report;
}

TestSetReport evaluate_test_set(
    const MealyMachine& spec, std::span<const Mutation> mutations,
    StateId start, const std::vector<std::vector<InputId>>& sequences) {
  TestSetReport report;
  report.total_mutants = mutations.size();
  report.exposed_flags.resize(mutations.size(), false);
  for (std::size_t k = 0; k < mutations.size(); ++k) {
    const MealyMachine mutant = apply_mutation(spec, mutations[k]);
    bool excited = false;
    bool exposed = false;
    for (const auto& seq : sequences) {
      excited = excited || excites(mutant, mutations[k], start, seq);
      exposed = exposed || exposes(spec, mutant, start, seq);
      if (excited && exposed) break;
    }
    if (excited) ++report.excited;
    if (exposed) {
      report.exposed_flags[k] = true;
      ++report.exposed;
    }
  }
  return report;
}

MaskingAnalysis analyze_masking(const MealyMachine& spec,
                                const MealyMachine& mutant, StateId start,
                                std::span<const InputId> inputs) {
  MaskingAnalysis result;
  StateId at_spec = start;
  StateId at_mut = start;
  std::size_t step = 0;
  for (InputId i : inputs) {
    const auto ts = spec.transition(at_spec, i);
    const auto tm = mutant.transition(at_mut, i);
    if (!ts.has_value() || !tm.has_value()) break;
    if (ts->output != tm->output) result.output_differed = true;
    at_spec = ts->next;
    at_mut = tm->next;
    ++step;
    if (at_spec != at_mut && !result.diverged) {
      result.diverged = true;
      result.diverge_step = step;
    } else if (at_spec == at_mut && result.diverged && !result.reconverged) {
      result.reconverged = true;
      result.reconverge_step = step;
    }
  }
  return result;
}

}  // namespace simcov::errmodel
