#include "errmodel/errmodel.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace simcov::errmodel {

using fsm::InputId;
using fsm::MealyMachine;
using fsm::OutputId;
using fsm::StateId;

fsm::MealyMachine apply_mutation(const MealyMachine& m, const Mutation& mut) {
  const auto t = m.transition(mut.at.state, mut.at.input);
  if (!t.has_value()) {
    throw std::invalid_argument("apply_mutation: transition undefined");
  }
  MealyMachine mutant = m;
  if (mut.kind == ErrorKind::kOutput) {
    if (mut.new_output == t->output) {
      throw std::invalid_argument("apply_mutation: vacuous output mutation");
    }
    mutant.set_transition(mut.at.state, mut.at.input, t->next, mut.new_output);
  } else {
    if (mut.new_next == t->next) {
      throw std::invalid_argument("apply_mutation: vacuous transfer mutation");
    }
    mutant.set_transition(mut.at.state, mut.at.input, mut.new_next, t->output);
  }
  return mutant;
}

std::vector<Mutation> enumerate_output_errors(const MealyMachine& m,
                                              StateId start,
                                              OutputId output_alphabet) {
  std::vector<Mutation> result;
  for (const auto& ref : m.reachable_transitions(start)) {
    const auto t = m.transition(ref.state, ref.input).value();
    for (OutputId o = 0; o < output_alphabet; ++o) {
      if (o == t.output) continue;
      result.push_back(Mutation{ErrorKind::kOutput, ref, 0, o});
    }
  }
  return result;
}

std::vector<Mutation> enumerate_transfer_errors(const MealyMachine& m,
                                                StateId start) {
  std::vector<Mutation> result;
  const auto reachable = m.reachable_states(start);
  for (const auto& ref : m.reachable_transitions(start)) {
    const auto t = m.transition(ref.state, ref.input).value();
    for (StateId s = 0; s < m.num_states(); ++s) {
      if (s == t.next || !reachable[s]) continue;
      result.push_back(Mutation{ErrorKind::kTransfer, ref, s, 0});
    }
  }
  return result;
}

std::vector<Mutation> sample_mutations(const MealyMachine& m, StateId start,
                                       OutputId output_alphabet,
                                       std::size_t count, std::uint64_t seed) {
  std::vector<Mutation> pool = enumerate_output_errors(m, start, output_alphabet);
  const auto transfers = enumerate_transfer_errors(m, start);
  pool.insert(pool.end(), transfers.begin(), transfers.end());
  std::mt19937_64 rng(seed);
  std::shuffle(pool.begin(), pool.end(), rng);
  if (pool.size() > count) pool.resize(count);
  return pool;
}

bool exposes(const MealyMachine& spec, const MealyMachine& mutant,
             StateId start, std::span<const InputId> inputs) {
  StateId at_spec = start;
  StateId at_mut = start;
  for (InputId i : inputs) {
    const auto ts = spec.transition(at_spec, i);
    const auto tm = mutant.transition(at_mut, i);
    if (ts.has_value() != tm.has_value()) return true;  // definedness mismatch
    if (!ts.has_value()) return false;  // sequence invalid for both: truncate
    if (ts->output != tm->output) return true;
    at_spec = ts->next;
    at_mut = tm->next;
  }
  return false;
}

bool exposes(const MealyMachine& spec, const Mutation& mut, StateId start,
             std::span<const InputId> inputs) {
  const auto original = spec.transition(mut.at.state, mut.at.input);
  if (!original.has_value()) {
    throw std::invalid_argument("exposes: mutated transition undefined");
  }
  fsm::Transition mutated = *original;
  if (mut.kind == ErrorKind::kOutput) {
    mutated.output = mut.new_output;
  } else {
    mutated.next = mut.new_next;
  }
  StateId at_spec = start;
  StateId at_mut = start;
  for (InputId i : inputs) {
    const auto ts = spec.transition(at_spec, i);
    auto tm = spec.transition(at_mut, i);
    if (tm.has_value() && at_mut == mut.at.state && i == mut.at.input) {
      tm = mutated;
    }
    if (ts.has_value() != tm.has_value()) return true;
    if (!ts.has_value()) return false;
    if (ts->output != tm->output) return true;
    at_spec = ts->next;
    at_mut = tm->next;
  }
  return false;
}

bool excites(const MealyMachine& mutant, const Mutation& mut, StateId start,
             std::span<const InputId> inputs) {
  StateId at = start;
  for (InputId i : inputs) {
    if (at == mut.at.state && i == mut.at.input) return true;
    const auto t = mutant.transition(at, i);
    if (!t.has_value()) return false;
    at = t->next;
  }
  return false;
}

TestSetReport evaluate_test_set(const MealyMachine& spec,
                                std::span<const Mutation> mutations,
                                StateId start,
                                std::span<const InputId> inputs) {
  TestSetReport report;
  report.total_mutants = mutations.size();
  report.exposed_flags.resize(mutations.size(), false);
  for (std::size_t k = 0; k < mutations.size(); ++k) {
    const MealyMachine mutant = apply_mutation(spec, mutations[k]);
    if (excites(mutant, mutations[k], start, inputs)) ++report.excited;
    if (exposes(spec, mutant, start, inputs)) {
      report.exposed_flags[k] = true;
      ++report.exposed;
    }
  }
  return report;
}

TestSetReport evaluate_test_set(
    const MealyMachine& spec, std::span<const Mutation> mutations,
    StateId start, const std::vector<std::vector<InputId>>& sequences) {
  TestSetReport report;
  report.total_mutants = mutations.size();
  report.exposed_flags.resize(mutations.size(), false);
  for (std::size_t k = 0; k < mutations.size(); ++k) {
    const MealyMachine mutant = apply_mutation(spec, mutations[k]);
    bool excited = false;
    bool exposed = false;
    for (const auto& seq : sequences) {
      excited = excited || excites(mutant, mutations[k], start, seq);
      exposed = exposed || exposes(spec, mutant, start, seq);
      if (excited && exposed) break;
    }
    if (excited) ++report.excited;
    if (exposed) {
      report.exposed_flags[k] = true;
      ++report.exposed;
    }
  }
  return report;
}

MaskingAnalysis analyze_masking(const MealyMachine& spec,
                                const MealyMachine& mutant, StateId start,
                                std::span<const InputId> inputs) {
  MaskingAnalysis result;
  StateId at_spec = start;
  StateId at_mut = start;
  std::size_t step = 0;
  for (InputId i : inputs) {
    const auto ts = spec.transition(at_spec, i);
    const auto tm = mutant.transition(at_mut, i);
    if (!ts.has_value() || !tm.has_value()) break;
    if (ts->output != tm->output) result.output_differed = true;
    at_spec = ts->next;
    at_mut = tm->next;
    ++step;
    if (at_spec != at_mut && !result.diverged) {
      result.diverged = true;
      result.diverge_step = step;
    } else if (at_spec == at_mut && result.diverged && !result.reconverged) {
      result.reconverged = true;
      result.reconverge_step = step;
    }
  }
  return result;
}

}  // namespace simcov::errmodel
