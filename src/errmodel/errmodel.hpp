// The paper's error (fault) model, Section 4.1.
//
//   Definition 1: a transition has an *output error* when some input sequence
//   ending in it yields an output different from the specification.
//   Definition 2: the output error is *uniform* when every input sequence
//   ending in the transition yields a wrong output.
//   Definition 3: a *transfer error* sends a transition to the wrong
//   destination state.
//   Definition 4: a transfer error is *masked* when a later transfer error
//   returns control to the state the correct machine would be in.
//
// This module realizes the model as single-transition mutations of a
// deterministic Mealy machine (the same FSM fault model used in protocol
// conformance testing [Dahbura+90]), plus evaluators that decide whether a
// given test sequence *excites* and *exposes* each mutant. The
// transition-tour completeness experiments (Theorem 3 bench) are built on
// these evaluators.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fsm/mealy.hpp"

namespace simcov::errmodel {

enum class ErrorKind : std::uint8_t {
  kOutput,    ///< wrong output value on a transition (Def. 1)
  kTransfer,  ///< wrong destination state on a transition (Def. 3)
};

/// A single-transition mutation of a Mealy machine.
struct Mutation {
  ErrorKind kind = ErrorKind::kOutput;
  fsm::TransitionRef at;
  /// Replacement destination (kTransfer) — must differ from the original.
  fsm::StateId new_next = 0;
  /// Replacement output (kOutput) — must differ from the original.
  fsm::OutputId new_output = 0;
};

/// Returns a copy of `m` with the mutation applied.
/// Throws std::invalid_argument if the mutated transition is undefined or
/// the mutation is vacuous (replacement equals the original).
fsm::MealyMachine apply_mutation(const fsm::MealyMachine& m,
                                 const Mutation& mut);

/// All output-error mutants of reachable transitions: for each transition,
/// every wrong output value in [0, output_alphabet).
std::vector<Mutation> enumerate_output_errors(const fsm::MealyMachine& m,
                                              fsm::StateId start,
                                              fsm::OutputId output_alphabet);

/// All transfer-error mutants of reachable transitions: for each transition,
/// every wrong destination among the reachable states.
std::vector<Mutation> enumerate_transfer_errors(const fsm::MealyMachine& m,
                                                fsm::StateId start);

/// A reproducible random sample (without replacement) of `count` mutations
/// from the full output+transfer enumeration.
std::vector<Mutation> sample_mutations(const fsm::MealyMachine& m,
                                       fsm::StateId start,
                                       fsm::OutputId output_alphabet,
                                       std::size_t count, std::uint64_t seed);

/// True when running `inputs` from `start` produces different output traces
/// on `spec` and `mutant` (i.e. the test sequence exposes the error).
/// Sequences that hit an undefined transition in either machine are
/// truncated at that point (definedness mismatch counts as exposure).
bool exposes(const fsm::MealyMachine& spec, const fsm::MealyMachine& mutant,
             fsm::StateId start, std::span<const fsm::InputId> inputs);

/// Same check without materializing the mutant machine: the mutation is
/// applied on the fly while walking `spec`. Equivalent to
/// exposes(spec, apply_mutation(spec, mut), start, inputs) but allocation-free
/// — use this inside mutant-coverage loops.
bool exposes(const fsm::MealyMachine& spec, const Mutation& mut,
             fsm::StateId start, std::span<const fsm::InputId> inputs);

/// Bit-parallel (word-level) mutant replay: up to 64 mutants of the same
/// specification ride in the lanes of ONE walk — the classic parallel
/// fault-simulation trick lifted to the Mealy level. The shared
/// specification walk advances once per step; lanes whose mutant is still
/// in lockstep (same state as the spec) cost nothing beyond a site-mask
/// lookup, and only lanes whose transfer mutant has diverged step
/// individually. Lane L's verdict equals exposes(spec, block[L], start,
/// inputs) exactly (pinned by the differential test in
/// tests/bitparallel_test.cpp).
class PackedMutantBlock {
 public:
  static constexpr std::size_t kLanes = 64;

  /// Indexes the block's mutation sites. The block must hold at most 64
  /// mutations of defined transitions of `spec` (else
  /// std::invalid_argument); both must outlive this object.
  PackedMutantBlock(const fsm::MealyMachine& spec,
                    std::span<const Mutation> block);

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Mask of lanes (restricted to `active`) whose mutant is exposed by
  /// running `inputs` from `start` — bit L set iff exposes(spec, block[L],
  /// start, inputs). Lanes outside `active` are skipped entirely, so a
  /// caller replaying many sequences can drop already-exposed lanes.
  [[nodiscard]] std::uint64_t exposes(fsm::StateId start,
                                      std::span<const fsm::InputId> inputs,
                                      std::uint64_t active) const;

 private:
  const fsm::MealyMachine* spec_;
  std::size_t size_ = 0;
  /// Per spec state: lanes whose mutation site sits in that state (input
  /// still checked per lane). Direct-indexed — the per-step lockstep fast
  /// path is one load, no hashing.
  std::vector<std::uint64_t> state_lanes_;
  std::uint64_t output_kind_ = 0;  ///< lanes carrying output mutations
  std::array<fsm::StateId, kLanes> site_state_{};
  std::array<fsm::InputId, kLanes> site_input_{};
  std::array<fsm::StateId, kLanes> new_next_{};
  std::array<fsm::OutputId, kLanes> new_output_{};
};

/// True when the walk of `inputs` through `mutant` takes the mutated
/// transition at least once (the error is *excited*).
bool excites(const fsm::MealyMachine& mutant, const Mutation& mut,
             fsm::StateId start, std::span<const fsm::InputId> inputs);

/// Aggregate quality of a test sequence against a set of mutants.
struct TestSetReport {
  std::size_t total_mutants = 0;
  std::size_t excited = 0;
  std::size_t exposed = 0;
  /// exposed_flags[k] says whether mutation k was exposed.
  std::vector<bool> exposed_flags;

  [[nodiscard]] double exposure_rate() const {
    return total_mutants == 0
               ? 1.0
               : static_cast<double>(exposed) / total_mutants;
  }
};

TestSetReport evaluate_test_set(const fsm::MealyMachine& spec,
                                std::span<const Mutation> mutations,
                                fsm::StateId start,
                                std::span<const fsm::InputId> inputs);

/// Multi-sequence variant: each sequence restarts from `start`; a mutant is
/// exposed (excited) when any sequence exposes (excites) it.
TestSetReport evaluate_test_set(
    const fsm::MealyMachine& spec, std::span<const Mutation> mutations,
    fsm::StateId start,
    const std::vector<std::vector<fsm::InputId>>& sequences);

/// Divergence/reconvergence structure of the state traces of spec vs mutant
/// along `inputs` — the operational form of Definition 4. A transfer error is
/// *masked on this run* when the traces diverge and later reconverge without
/// any output difference in between.
struct MaskingAnalysis {
  bool diverged = false;
  bool reconverged = false;
  bool output_differed = false;
  std::size_t diverge_step = 0;      ///< first step with different states
  std::size_t reconverge_step = 0;   ///< first step back in lockstep

  [[nodiscard]] bool masked() const {
    return diverged && reconverged && !output_differed;
  }
};

MaskingAnalysis analyze_masking(const fsm::MealyMachine& spec,
                                const fsm::MealyMachine& mutant,
                                fsm::StateId start,
                                std::span<const fsm::InputId> inputs);

}  // namespace simcov::errmodel
