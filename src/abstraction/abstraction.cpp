#include "abstraction/abstraction.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace simcov::abstraction {

using fsm::InputId;
using fsm::MealyMachine;
using fsm::NondetMealyMachine;
using fsm::StateId;

StateAbstraction::StateAbstraction(std::vector<StateId> map,
                                   StateId num_abstract)
    : map_(std::move(map)), num_abstract_(num_abstract) {
  preimages_.resize(num_abstract_);
  for (StateId c = 0; c < map_.size(); ++c) {
    if (map_[c] >= num_abstract_) {
      throw std::invalid_argument(
          "StateAbstraction: map value out of abstract range");
    }
    preimages_[map_[c]].push_back(c);
  }
  for (StateId a = 0; a < num_abstract_; ++a) {
    if (preimages_[a].empty()) {
      throw std::invalid_argument(
          "StateAbstraction: map is not surjective (empty abstract state)");
    }
  }
}

StateAbstraction StateAbstraction::identity(StateId n) {
  std::vector<StateId> map(n);
  for (StateId s = 0; s < n; ++s) map[s] = s;
  return StateAbstraction(std::move(map), n);
}

NondetMealyMachine quotient_machine(const MealyMachine& concrete,
                                    const StateAbstraction& abs) {
  if (abs.num_concrete() != concrete.num_states()) {
    throw std::invalid_argument(
        "quotient_machine: abstraction domain does not match machine");
  }
  NondetMealyMachine q(abs.num_abstract(), concrete.num_inputs());
  q.set_initial_state(abs.apply(concrete.initial_state()));
  for (StateId s = 0; s < concrete.num_states(); ++s) {
    for (InputId i = 0; i < concrete.num_inputs(); ++i) {
      const auto t = concrete.transition(s, i);
      if (!t.has_value()) continue;
      q.add_transition(abs.apply(s), i, abs.apply(t->next), t->output);
    }
  }
  return q;
}

AbstractionReport analyze_abstraction(const MealyMachine& concrete,
                                      const StateAbstraction& abs) {
  if (abs.num_concrete() != concrete.num_states()) {
    throw std::invalid_argument(
        "analyze_abstraction: abstraction domain does not match machine");
  }
  AbstractionReport report;
  const auto reachable = concrete.reachable_states(concrete.initial_state());
  // Rebuild the quotient restricted to reachable concrete states.
  NondetMealyMachine q(abs.num_abstract(), concrete.num_inputs());
  for (StateId s = 0; s < concrete.num_states(); ++s) {
    if (!reachable[s]) continue;
    for (InputId i = 0; i < concrete.num_inputs(); ++i) {
      const auto t = concrete.transition(s, i);
      if (!t.has_value()) continue;
      q.add_transition(abs.apply(s), i, abs.apply(t->next), t->output);
    }
  }
  report.deterministic = q.is_deterministic();
  report.nondet_output_pairs = q.output_nondeterministic_pairs();
  report.output_deterministic = report.nondet_output_pairs.empty();
  return report;
}

OutputErrorClass classify_output_error(const MealyMachine& spec,
                                       const errmodel::Mutation& mut,
                                       const StateAbstraction& abs,
                                       StateId start) {
  if (mut.kind != errmodel::ErrorKind::kOutput) {
    throw std::invalid_argument(
        "classify_output_error: mutation is not an output error");
  }
  const MealyMachine mutant = errmodel::apply_mutation(spec, mut);
  const StateId abstract_state = abs.apply(mut.at.state);
  const InputId input = mut.at.input;
  const auto reachable = spec.reachable_states(start);
  std::size_t wrong = 0;
  std::size_t total = 0;
  for (StateId c : abs.preimage(abstract_state)) {
    if (!reachable[c]) continue;
    const auto ts = spec.transition(c, input);
    const auto tm = mutant.transition(c, input);
    if (!ts.has_value()) continue;
    ++total;
    if (ts->output != tm->output) ++wrong;
  }
  if (wrong == 0) return OutputErrorClass::kNoError;
  return wrong == total ? OutputErrorClass::kUniform
                        : OutputErrorClass::kNonUniform;
}

StateAbstraction variable_projection(unsigned width,
                                     std::span<const unsigned> kept) {
  if (width >= 31) {
    throw std::invalid_argument(
        "variable_projection: width too large for explicit enumeration");
  }
  for (unsigned v : kept) {
    if (v >= width) {
      throw std::invalid_argument("variable_projection: kept var >= width");
    }
  }
  const StateId n = StateId{1} << width;
  const StateId na = StateId{1} << kept.size();
  std::vector<StateId> map(n);
  for (StateId c = 0; c < n; ++c) {
    StateId a = 0;
    for (std::size_t b = 0; b < kept.size(); ++b) {
      if ((c >> kept[b]) & 1u) a |= StateId{1} << b;
    }
    map[c] = a;
  }
  return StateAbstraction(std::move(map), na);
}

StateAbstraction compose(const StateAbstraction& inner,
                         const StateAbstraction& outer) {
  if (outer.num_concrete() != inner.num_abstract()) {
    throw std::invalid_argument("compose: domains do not line up");
  }
  std::vector<StateId> map(inner.num_concrete());
  for (StateId c = 0; c < inner.num_concrete(); ++c) {
    map[c] = outer.apply(inner.apply(c));
  }
  return StateAbstraction(std::move(map), outer.num_abstract());
}

}  // namespace simcov::abstraction
