// Homomorphic abstraction of test models (Section 6 of the paper).
//
// The test model is derived from the implementation by a many-to-one,
// transition-preserving mapping A from concrete to abstract states
// (Section 6.1). Two consequences drive this module's API:
//
//  * State merging can introduce *output nondeterminism* in the quotient
//    machine — the symptom of "abstracting too much" (Section 6.3): an
//    output error on an abstract transition is then no longer uniform
//    (Requirement 1), and a transition tour may miss it.
//  * ∀k-distinguishability is inherited through transition-preserving
//    abstraction (Section 6.2), which tests here verify empirically.
//
// In practice abstractions are mappings over *state variables* rather than
// states (the paper calls out the logarithmic complexity win); the
// VariableProjection helper builds exactly those maps for bit-encoded state
// spaces, and is what the DLX test-model ladder (Figure 3(b)) uses.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "errmodel/errmodel.hpp"
#include "fsm/mealy.hpp"
#include "fsm/nondet.hpp"

namespace simcov::abstraction {

/// A surjective map from concrete states onto abstract states.
class StateAbstraction {
 public:
  /// `map[c]` is the abstract state of concrete state c; every abstract id
  /// in [0, num_abstract) must appear (surjectivity is validated).
  StateAbstraction(std::vector<fsm::StateId> map, fsm::StateId num_abstract);

  [[nodiscard]] fsm::StateId apply(fsm::StateId concrete) const {
    return map_[concrete];
  }
  [[nodiscard]] fsm::StateId num_concrete() const {
    return static_cast<fsm::StateId>(map_.size());
  }
  [[nodiscard]] fsm::StateId num_abstract() const { return num_abstract_; }
  /// Concrete states mapping to abstract state `a`.
  [[nodiscard]] std::span<const fsm::StateId> preimage(fsm::StateId a) const {
    return preimages_[a];
  }

  /// The identity abstraction on n states.
  static StateAbstraction identity(fsm::StateId n);

 private:
  std::vector<fsm::StateId> map_;
  fsm::StateId num_abstract_;
  std::vector<std::vector<fsm::StateId>> preimages_;
};

/// Builds the quotient machine: for every concrete transition s -i-> (s', o),
/// the abstract machine gets A(s) -i-> (A(s'), o). By construction this is
/// transition-preserving; it may be nondeterministic.
fsm::NondetMealyMachine quotient_machine(const fsm::MealyMachine& concrete,
                                         const StateAbstraction& abs);

/// Structural quality report of an abstraction (restricted to the part of
/// the concrete machine reachable from its initial state).
struct AbstractionReport {
  /// Quotient has at most one edge per (state, input).
  bool deterministic = false;
  /// Quotient has a unique output per (state, input). When false, output
  /// errors on the listed abstract transitions are not guaranteed uniform —
  /// a Requirement 1 violation hazard (the paper's "abstracting too much").
  bool output_deterministic = false;
  std::vector<fsm::TransitionRef> nondet_output_pairs;
};

AbstractionReport analyze_abstraction(const fsm::MealyMachine& concrete,
                                      const StateAbstraction& abs);

/// Classification of an output error at the abstract level (Definitions 1/2
/// lifted through the abstraction).
enum class OutputErrorClass : std::uint8_t {
  kNoError,     ///< no concrete transition in the preimage has a wrong output
  kUniform,     ///< every concrete preimage transition has a wrong output
  kNonUniform,  ///< some do, some don't — a tour may pick a clean one
};

/// Classifies the output error that `mut` (an output mutation of `spec`)
/// induces on its abstract transition (A(state), input): compares spec and
/// mutant outputs across all *reachable* concrete transitions mapping to the
/// same abstract transition.
OutputErrorClass classify_output_error(const fsm::MealyMachine& spec,
                                       const errmodel::Mutation& mut,
                                       const StateAbstraction& abs,
                                       fsm::StateId start);

/// Abstraction over state *variables* for bit-encoded state spaces: concrete
/// state ids are read as `width`-bit vectors (bit v = variable v) and mapped
/// by keeping only the variables in `kept` (in the given order; kept.size()
/// result bits). This is the special, logarithmic-cost form of abstraction
/// the paper recommends.
StateAbstraction variable_projection(unsigned width,
                                     std::span<const unsigned> kept);

/// Composition: first `outer` after `inner` (inner maps concrete -> mid,
/// outer maps mid -> final). Models abstraction ladders such as Fig. 3(b).
StateAbstraction compose(const StateAbstraction& inner,
                         const StateAbstraction& outer);

}  // namespace simcov::abstraction
