// Coverage-directed sequence generators behind the model::SequenceSource
// seam.
//
// The paper's flow generates stimuli with a transition tour; this layer
// adds the coverage-feedback family the ROADMAP's methodology-comparison
// item asks for:
//
//   * BiasedRandomSource — deterministic random walks whose next-input
//     distribution is reweighted by live CoverageTracker hit counts toward
//     rarely-hit transitions (the biasing idea of coverage-directed random
//     simulation, cf. "Methodology for Biasing Random Simulation for Rapid
//     Coverage of Corner Cases", PAPERS.md);
//   * HybridSource — seeds coverage with a budget-bounded partial
//     transition tour, then hands the seeded tracker to the biased walk
//     (tour-seeded directed search, cf. "Hybrid Intelligent Testing in
//     Simulation-Based Verification", PAPERS.md).
//
// Determinism contract: both sources are pure functions of
// (model, spec, seed). Randomness comes from a counter-indexed splitmix64
// stream derived via runtime::derive_stream(seed, kGeneratorStream), so
// draw k is a function of (seed, k) alone — no hidden mutable generator
// state. Sequences are pulled serially by the pipeline coordinator, which
// makes campaign reports bit-identical at any thread count, and a resumed
// campaign re-pulls the identical stream from the start, so the sources
// compose with checkpoint/resume byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "model/generator_spec.hpp"
#include "model/test_model.hpp"

namespace simcov::gen {

/// Coverage-biased random walk. Each yielded sequence restarts from the
/// reset state (mirroring the tour-set restart discipline) and runs for
/// spec.sequence_length steps; at every step the valid inputs of the
/// current state are weighted 1 + bias_strength * (h_max - h), h being the
/// walk's own hit count for that edge. The source ends once
/// spec.max_walk_steps have been emitted, the tracker reports complete
/// transition coverage, or the walk hits a dead-end state at reset.
class BiasedRandomSource final : public model::SequenceSource {
 public:
  /// `model` must outlive the source.
  BiasedRandomSource(model::TestModel& model, const model::GeneratorSpec& spec,
                     std::uint64_t seed);

  std::optional<std::vector<std::vector<bool>>> next_sequence() override;
  model::TourResult summary() override;

  /// Replays an externally produced sequence into the walk's coverage
  /// tracker without counting it against the walk's own step budget — the
  /// hybrid seed phase feeds its partial tour through this, so the biased
  /// phase starts from the seeded coverage. Throws std::domain_error on an
  /// invalid input.
  void absorb_sequence(const std::vector<std::vector<bool>>& steps);

 private:
  [[nodiscard]] std::uint64_t next_u64();
  [[nodiscard]] bool coverage_complete() const;

  model::TestModel* model_;
  model::GeneratorSpec spec_;
  /// Counter-indexed splitmix64 stream: draw k is splitmix64(base + k*phi).
  std::uint64_t rng_base_ = 0;
  std::uint64_t draws_ = 0;
  model::CoverageTracker tracker_;
  std::size_t steps_ = 0;
  std::size_t yielded_ = 0;
  bool done_ = false;
};

/// Budget-bounded partial transition tour, then a biased walk over the
/// seeded coverage tracker. The seed phase replays the model's own tour
/// source sequence-by-sequence, truncating the sequence that crosses
/// spec.hybrid_tour_steps (a prefix of a valid sequence is valid); every
/// seed step lands in the shared tracker, so the walk phase is steered
/// away from what the tour already covered.
class HybridSource final : public model::SequenceSource {
 public:
  /// `model` must outlive the source. `tour_options` parameterize the
  /// inner tour source used for the seed phase.
  HybridSource(model::TestModel& model, const model::GeneratorSpec& spec,
               std::uint64_t seed, const model::TourOptions& tour_options = {});

  std::optional<std::vector<std::vector<bool>>> next_sequence() override;
  model::TourResult summary() override;

 private:
  model::GeneratorSpec spec_;
  std::unique_ptr<model::SequenceSource> inner_;
  BiasedRandomSource walker_;
  std::size_t seed_steps_ = 0;
  std::size_t seed_sequences_ = 0;
  bool seed_done_ = false;
};

/// Opens the sequence source selected by `spec`: the model's own
/// transition-tour source for kTransitionTour (byte-identical to the
/// pre-generator-layer pipeline), or one of the coverage-directed sources
/// above seeded from runtime::derive_stream(seed, kGeneratorStream).
std::unique_ptr<model::SequenceSource> open_sequence_source(
    model::TestModel& model, const model::GeneratorSpec& spec,
    std::uint64_t seed, const model::TourOptions& tour_options = {});

}  // namespace simcov::gen
