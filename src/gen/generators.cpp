#include "gen/generators.hpp"

#include <stdexcept>

#include "runtime/rng.hpp"

namespace simcov::gen {

namespace {
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
}  // namespace

// ---------------------------------------------------------------------------
// BiasedRandomSource
// ---------------------------------------------------------------------------

BiasedRandomSource::BiasedRandomSource(model::TestModel& model,
                                       const model::GeneratorSpec& spec,
                                       std::uint64_t seed)
    : model_(&model),
      spec_(spec),
      rng_base_(
          runtime::derive_stream(seed, runtime::Stream::kGeneratorStream)) {
  tracker_.set_totals(model.count_reachable_states(),
                      model.count_reachable_transitions());
}

std::uint64_t BiasedRandomSource::next_u64() {
  return runtime::splitmix64(rng_base_ + draws_++ * kGolden);
}

bool BiasedRandomSource::coverage_complete() const {
  return tracker_.stats().complete();
}

void BiasedRandomSource::absorb_sequence(
    const std::vector<std::vector<bool>>& steps) {
  std::uint64_t at = model_->reset_state();
  tracker_.visit_state(at);
  for (const auto& step : steps) {
    const std::uint64_t input = model::TestModel::pack_bits(step);
    const auto next = model_->step(at, input);
    if (!next) {
      throw std::domain_error(
          "BiasedRandomSource: absorbed sequence takes an invalid input");
    }
    tracker_.cover_transition(at, input);
    at = *next;
    tracker_.visit_state(at);
  }
}

std::optional<std::vector<std::vector<bool>>>
BiasedRandomSource::next_sequence() {
  if (done_) return std::nullopt;
  if (steps_ >= spec_.max_walk_steps || coverage_complete()) {
    done_ = true;
    return std::nullopt;
  }

  std::vector<std::vector<bool>> seq;
  std::uint64_t at = model_->reset_state();
  tracker_.visit_state(at);
  while (seq.size() < spec_.sequence_length &&
         steps_ < spec_.max_walk_steps) {
    const auto edges = model_->edges(at);
    if (edges.empty()) break;  // dead end — restart from reset

    // Integer-weighted choice toward rarely-hit edges: weight
    // 1 + bias_strength * (h_max - h) over the state's edges (sorted by
    // input key, the edges() contract, so the cumulative scan is
    // deterministic).
    std::uint64_t h_max = 0;
    for (const auto& e : edges) {
      const std::uint64_t h = tracker_.hits(at, e.input);
      if (h > h_max) h_max = h;
    }
    std::uint64_t total = 0;
    for (const auto& e : edges) {
      total += 1 + spec_.bias_strength * (h_max - tracker_.hits(at, e.input));
    }
    std::uint64_t r = next_u64() % total;
    const model::TestModel::Edge* chosen = &edges.back();
    for (const auto& e : edges) {
      const std::uint64_t w =
          1 + spec_.bias_strength * (h_max - tracker_.hits(at, e.input));
      if (r < w) {
        chosen = &e;
        break;
      }
      r -= w;
    }

    seq.push_back(model_->input_vector(chosen->input));
    tracker_.cover_transition(at, chosen->input);
    at = chosen->next;
    tracker_.visit_state(at);
    ++steps_;
    if (coverage_complete()) break;
  }

  if (seq.empty()) {
    // Reset state is a dead end or the sequence budget is 0 — nothing more
    // to generate.
    done_ = true;
    return std::nullopt;
  }
  ++yielded_;
  return seq;
}

model::TourResult BiasedRandomSource::summary() {
  model::TourResult out;
  out.coverage = tracker_.stats();
  out.steps = steps_;
  out.restarts = yielded_ == 0 ? 0 : yielded_ - 1;
  out.complete = out.coverage.complete();
  return out;
}

// ---------------------------------------------------------------------------
// HybridSource
// ---------------------------------------------------------------------------

HybridSource::HybridSource(model::TestModel& model,
                           const model::GeneratorSpec& spec,
                           std::uint64_t seed,
                           const model::TourOptions& tour_options)
    : spec_(spec),
      inner_(model.tour_source(tour_options)),
      walker_(model, spec, seed),
      seed_done_(spec.hybrid_tour_steps == 0) {}

std::optional<std::vector<std::vector<bool>>> HybridSource::next_sequence() {
  while (!seed_done_) {
    auto seq = inner_->next_sequence();
    if (!seq) {
      seed_done_ = true;  // tour ended under budget — switch to the walk
      break;
    }
    const std::size_t budget = spec_.hybrid_tour_steps - seed_steps_;
    if (seq->size() >= budget) {
      seq->resize(budget);
      seed_done_ = true;
    }
    if (seq->empty()) continue;
    seed_steps_ += seq->size();
    ++seed_sequences_;
    walker_.absorb_sequence(*seq);
    return seq;
  }
  return walker_.next_sequence();
}

model::TourResult HybridSource::summary() {
  // The walker's tracker holds the union coverage: every seed step was
  // absorbed into it before the walk phase began.
  model::TourResult out = walker_.summary();
  out.steps += seed_steps_;
  const std::size_t walk_sequences =
      out.restarts + (out.steps > seed_steps_ ? 1 : 0);
  const std::size_t sequences = seed_sequences_ + walk_sequences;
  out.restarts = sequences == 0 ? 0 : sequences - 1;
  return out;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<model::SequenceSource> open_sequence_source(
    model::TestModel& model, const model::GeneratorSpec& spec,
    std::uint64_t seed, const model::TourOptions& tour_options) {
  switch (spec.kind) {
    case model::GeneratorKind::kTransitionTour:
      return model.tour_source(tour_options);
    case model::GeneratorKind::kBiasedRandom:
      return std::make_unique<BiasedRandomSource>(model, spec, seed);
    case model::GeneratorKind::kHybrid:
      return std::make_unique<HybridSource>(model, spec, seed, tour_options);
  }
  throw std::invalid_argument("open_sequence_source: unknown generator kind");
}

}  // namespace simcov::gen
