// Umbrella header: the complete simcov public API.
//
// simcov reproduces "Toward Formalizing a Validation Methodology Using
// Simulation Coverage" (Gupta, Malik, Ashar — DAC 1997). See README.md for
// the architecture overview and DESIGN.md for the module inventory.
//
// Individual headers may of course be included directly; this header is for
// quick experiments and example code.
#pragma once

// Implicit representation substrate.
#include "bdd/bdd.hpp"

// Graph algorithms (SCC, Euler, min-cost flow, Chinese Postman).
#include "graph/digraph.hpp"
#include "graph/min_cost_flow.hpp"
#include "graph/postman.hpp"

// Explicit finite state machines.
#include "fsm/mealy.hpp"
#include "fsm/nondet.hpp"

// Symbolic FSMs and logic networks.
#include "sym/logic_network.hpp"
#include "sym/symbolic_fsm.hpp"

// Backend-neutral test models (explicit + symbolic behind one interface).
#include "model/coverage.hpp"
#include "model/encode.hpp"
#include "model/explicit_model.hpp"
#include "model/symbolic_model.hpp"
#include "model/test_model.hpp"

// Test-sequence generation and coverage.
#include "tour/tour.hpp"

// Content-addressed artifact store (fingerprints, versioned codecs,
// tour record/replay, checkpoint payloads).
#include "store/artifact_store.hpp"
#include "store/codec.hpp"
#include "store/fingerprint.hpp"
#include "store/tour_cache.hpp"

// The paper's error model (Definitions 1-4).
#include "errmodel/errmodel.hpp"

// Distinguishability theory (Definition 5) and conformance baselines.
#include "distinguish/distinguish.hpp"
#include "distinguish/wmethod.hpp"

// Homomorphic abstraction (Section 6).
#include "abstraction/abstraction.hpp"

// The DLX processor substrate (Section 7's design).
#include "dlx/arch.hpp"
#include "dlx/assembler.hpp"
#include "dlx/isa.hpp"
#include "dlx/isa_model.hpp"
#include "dlx/pipeline.hpp"

// Control test-model derivation (Figure 3).
#include "testmodel/control_sim.hpp"
#include "testmodel/testmodel.hpp"

// Concretization and the validation harness (Figure 1).
#include "validate/concretize.hpp"
#include "validate/harness.hpp"

// Pipeline instrumentation (spans, counters, JSONL traces).
#include "obs/event_sink.hpp"

// The streaming validation pipeline (typed stages, budgets, cancellation).
#include "pipeline/contracts.hpp"
#include "pipeline/stages.hpp"
#include "pipeline/validation_pipeline.hpp"

// Methodology drivers: requirements, campaigns, reports.
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "core/requirements.hpp"
