// Versioned binary codecs for store artifacts.
//
// All artifact payloads are byte streams in explicit little-endian with
// length-prefixed containers — platform-independent and append-friendly
// (tour sequences are encoded one at a time as the stream yields them, so
// recording a tour costs packed-bit memory, not vector<vector<bool>>
// overhead). Bounds are checked on every read; a malformed payload throws
// CodecError, which the store surfaces as a cache miss, never as corrupt
// campaign state.
//
// Payload schemas (versions live in the artifact header, written by
// ArtifactStore; bumping a kind's version invalidates every stored artifact
// of that kind — see DESIGN.md §7):
//
//   tour:        u32 input_bits, the summary (4×f64 coverage, u64 steps,
//                u64 restarts, u8 complete), u64 sequence_count, then each
//                sequence as u64 step_count plus ceil(input_bits/8) packed
//                bytes per step. Summary first so a stored stream can
//                report it without scanning the sequences.
//   symstats:    the SymbolicFsmStats and BddStats fields, in declaration
//                order.
//   checkpoint:  u64 run_count, then per committed sequence the RunMetrics
//                quintuple (u64 sequence, u64 impl_cycles, u64 checkpoints,
//                u8 passed, u8 budget_exhausted).
//   report:      the campaign report JSON, verbatim UTF-8 bytes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "model/test_model.hpp"
#include "sym/symbolic_fsm.hpp"

namespace simcov::store {

class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian byte assembler.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void raw(const void* data, std::size_t n);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian byte cursor over a payload.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::span<const std::uint8_t> raw(std::size_t n);

  [[nodiscard]] bool done() const { return at_ == data_.size(); }
  /// Throws CodecError unless every byte was consumed.
  void expect_done() const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

// ---- Tour sequences --------------------------------------------------------

/// Encodes one reset-separated sequence: u64 step count, then each step's
/// input bits packed little-endian into ceil(input_bits/8) bytes.
void encode_sequence(ByteWriter& w,
                     const std::vector<std::vector<bool>>& sequence,
                     unsigned input_bits);

/// Decodes one sequence written by encode_sequence. Throws CodecError on a
/// step whose recorded width disagrees with `input_bits`.
[[nodiscard]] std::vector<std::vector<bool>> decode_sequence(
    ByteReader& r, unsigned input_bits);

/// Encodes the tour summary (coverage + step/restart totals + completeness).
void encode_tour_summary(ByteWriter& w, const model::TourResult& summary);
[[nodiscard]] model::TourResult decode_tour_summary(ByteReader& r);

// ---- Symbolic snapshot -----------------------------------------------------

struct SymbolicSnapshot {
  sym::SymbolicFsmStats fsm;
  bdd::BddStats bdd;
};

void encode_symbolic_snapshot(ByteWriter& w, const SymbolicSnapshot& snap);
[[nodiscard]] SymbolicSnapshot decode_symbolic_snapshot(ByteReader& r);

[[nodiscard]] std::vector<std::uint8_t> to_payload(
    const SymbolicSnapshot& snap);
[[nodiscard]] SymbolicSnapshot snapshot_from_payload(
    std::span<const std::uint8_t> payload);

// ---- Campaign checkpoint ---------------------------------------------------

/// One committed clean run, mirroring pipeline::RunMetrics (the store sits
/// below the pipeline in the dependency order, so the quintuple is restated
/// here; the pipeline converts).
struct CheckpointRun {
  std::uint64_t sequence = 0;
  std::uint64_t impl_cycles = 0;
  std::uint64_t checkpoints = 0;
  bool passed = false;
  bool budget_exhausted = false;
};

/// The committed prefix of a streaming campaign: the clean-run metrics of
/// every sequence simulated so far, in order. Everything else about the
/// prefix (the sequences themselves, their concretizations, coverage) is
/// regenerated deterministically on resume; only the expensive simulation
/// verdicts are persisted.
struct CampaignCheckpoint {
  std::vector<CheckpointRun> clean_runs;
};

void encode_checkpoint(ByteWriter& w, const CampaignCheckpoint& ckpt);
[[nodiscard]] CampaignCheckpoint decode_checkpoint(ByteReader& r);

[[nodiscard]] std::vector<std::uint8_t> to_payload(
    const CampaignCheckpoint& ckpt);
[[nodiscard]] CampaignCheckpoint checkpoint_from_payload(
    std::span<const std::uint8_t> payload);

// ---- Performance baseline --------------------------------------------------

/// Compact performance summary of one completed campaign, archived under
/// the campaign's report fingerprint (ArtifactKind::kBaseline). The work
/// counts (sequences/steps/cycles) identify *what* ran — a --baseline-check
/// comparison against a baseline that did different work would be
/// meaningless — and the phase timings are what the check compares.
struct PerfBaseline {
  std::uint64_t sequences = 0;
  std::uint64_t test_steps = 0;
  std::uint64_t total_impl_cycles = 0;
  double total_seconds = 0.0;
  double tour_seconds = 0.0;
  double concretize_seconds = 0.0;
  double simulate_seconds = 0.0;

  friend bool operator==(const PerfBaseline&, const PerfBaseline&) = default;
};

void encode_baseline(ByteWriter& w, const PerfBaseline& baseline);
[[nodiscard]] PerfBaseline decode_baseline(ByteReader& r);

[[nodiscard]] std::vector<std::uint8_t> to_payload(
    const PerfBaseline& baseline);
[[nodiscard]] PerfBaseline baseline_from_payload(
    std::span<const std::uint8_t> payload);

}  // namespace simcov::store
