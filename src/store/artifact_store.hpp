// Directory-backed, content-addressed artifact store.
//
// Artifacts are opaque byte payloads filed under (kind, fingerprint):
// `<dir>/<kind>-<32 hex digits>.art`. The fingerprint is recomputed from
// the producing inputs (see store/fingerprint.hpp), so lookups need no
// manifest — a file either exists under the derived name or the artifact
// must be rebuilt.
//
// Durability and integrity:
//  * Atomic publish. Payloads are written to a temp file in the store
//    directory and renamed into place, so a reader never observes a
//    half-written artifact and concurrent publishers of the same key
//    converge on one complete file.
//  * Verified reads. Every file carries a fixed header (magic, kind tag,
//    schema version, payload size, 128-bit payload checksum). Any mismatch
//    — truncation, bit rot, a schema bump, a foreign file — makes load()
//    delete the file and report a miss; corruption can cost a rebuild but
//    never poisons a campaign.
//  * Size-capped LRU eviction. When `max_bytes > 0`, publishing sweeps the
//    directory and removes least-recently-used artifacts (by file mtime,
//    which load() bumps on every hit) until the store fits. Checkpoints
//    are exempt: evicting one would silently discard resumable progress.
//
// Observability: hits, misses, evictions and checkpoint writes are counted
// in StoreStats and emitted as `store.hit` / `store.miss` / `store.evict` /
// `checkpoint.write` counter events through the obs::EventSink passed per
// call, tagged with the pipeline stage the store is serving (the store has
// no stage of its own — its time and events belong to whichever stage would
// otherwise have recomputed the artifact).
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "obs/event_sink.hpp"
#include "store/fingerprint.hpp"

namespace simcov::store {

enum class ArtifactKind : std::uint32_t {
  kTour = 1,              ///< recorded tour stream + summary
  kSymbolicSnapshot = 2,  ///< SymbolicFsmStats + BddStats pair
  kReport = 3,            ///< campaign report JSON bytes
  kCheckpoint = 4,        ///< committed campaign prefix (eviction-exempt)
  kBaseline = 5,          ///< compact performance baseline of a campaign
};

/// The filename prefix of a kind ("tour", "symstats", "report",
/// "checkpoint", "baseline").
[[nodiscard]] const char* kind_name(ArtifactKind kind);

/// Current payload schema version of a kind. Stored in the artifact header;
/// bumping it orphans (and on next load deletes) every artifact of that
/// kind written by older code.
[[nodiscard]] std::uint32_t schema_version(ArtifactKind kind);

struct StoreOptions {
  std::filesystem::path dir;
  /// LRU size cap over non-checkpoint artifacts in bytes; 0 = unlimited.
  std::uint64_t max_bytes = 0;
};

/// Aggregate store activity of one campaign — surfaced in the campaign
/// report JSON under "store".
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Sequences restored from a checkpoint instead of simulated (set by the
  /// pipeline, not the store).
  std::uint64_t resumed_sequences = 0;
};

class ArtifactStore {
 public:
  /// Creates the store directory if needed. Throws std::runtime_error when
  /// the directory cannot be created.
  explicit ArtifactStore(StoreOptions options);

  /// Returns the verified payload of (kind, key), or nullopt on miss.
  /// A file that fails verification (bad magic/kind/version/size/checksum)
  /// is deleted and reported as a miss. Hits bump the file's mtime (the
  /// LRU clock) and emit `store.hit`; misses emit `store.miss`.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load(
      ArtifactKind kind, const Fingerprint& key, obs::Stage stage,
      obs::EventSink& sink);

  /// Atomically publishes the payload under (kind, key): temp file +
  /// rename, then an LRU sweep when a size cap is set. Checkpoint publishes
  /// emit `checkpoint.write`. Throws std::runtime_error on I/O failure.
  void publish(ArtifactKind kind, const Fingerprint& key,
               std::span<const std::uint8_t> payload, obs::Stage stage,
               obs::EventSink& sink);

  /// Removes (kind, key) if present (e.g. the checkpoint of a campaign that
  /// ran to completion). Not counted as an eviction.
  void erase(ArtifactKind kind, const Fingerprint& key);

  /// Path an artifact would live at — exposed for tests and diagnostics.
  [[nodiscard]] std::filesystem::path path_for(ArtifactKind kind,
                                               const Fingerprint& key) const;

  [[nodiscard]] StoreStats stats() const;
  /// Adds pipeline-attributed activity (resumed sequences) into the stats.
  void add_resumed_sequences(std::uint64_t n);

 private:
  void evict_lru(obs::Stage stage, obs::EventSink& sink);

  StoreOptions options_;
  mutable std::mutex mutex_;
  StoreStats stats_;
  std::uint64_t temp_counter_ = 0;
};

}  // namespace simcov::store
