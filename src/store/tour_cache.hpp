// Tour-stream recording and replay over the artifact store.
//
// Tour generation is the expensive front of the pipeline (a BDD walk or a
// greedy Eulerian construction), and it is a pure function of (model,
// tour options). These two adapters make it cacheable without giving up
// the streaming memory bound:
//
//  * RecordingTourStream wraps a live TourStream and tees every yielded
//    sequence into an incrementally packed byte buffer (ceil(input_bits/8)
//    bytes per step — the encoded form is usually smaller than the
//    vector<vector<bool>> it mirrors). After the inner stream is exhausted
//    with a clean status, artifact() assembles the versioned tour payload
//    (summary first, then sequences) for ArtifactStore::publish. A
//    truncated stream (budget / cancellation) must not be published: the
//    caller gates on exhausted() plus its own status.
//
//  * StoredTourStream replays a tour payload as a TourStream: the summary
//    decodes eagerly (it leads the payload), sequences decode lazily one
//    next_sequence() call at a time, so a warm campaign holds at most the
//    payload bytes plus one window of decoded sequences — the same shape
//    as a cold run, minus the generation cost.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "model/test_model.hpp"
#include "store/codec.hpp"

namespace simcov::store {

/// Tees a live tour stream into an incrementally encoded tour payload.
class RecordingTourStream final : public model::TourStream {
 public:
  RecordingTourStream(std::unique_ptr<model::TourStream> inner,
                      unsigned input_bits);

  std::optional<std::vector<std::vector<bool>>> next_sequence() override;
  model::TourResult summary() override;

  /// True once the inner stream has returned nullopt.
  [[nodiscard]] bool exhausted() const { return exhausted_; }

  /// Assembles the complete tour payload. Call only after exhausted() —
  /// throws std::logic_error otherwise (a partial tour must never be
  /// published).
  [[nodiscard]] std::vector<std::uint8_t> artifact();

 private:
  std::unique_ptr<model::TourStream> inner_;
  unsigned input_bits_;
  ByteWriter sequences_;
  std::uint64_t sequence_count_ = 0;
  bool exhausted_ = false;
};

/// Replays a stored tour payload as a TourStream.
class StoredTourStream final : public model::TourStream {
 public:
  /// Decodes the header and summary eagerly; throws CodecError on a
  /// malformed payload.
  explicit StoredTourStream(std::vector<std::uint8_t> payload);

  std::optional<std::vector<std::vector<bool>>> next_sequence() override;
  model::TourResult summary() override { return summary_; }

 private:
  std::vector<std::uint8_t> payload_;
  ByteReader reader_;
  model::TourResult summary_;
  unsigned input_bits_ = 0;
  std::uint64_t remaining_ = 0;
};

}  // namespace simcov::store
