#include "store/tour_cache.hpp"

#include <stdexcept>
#include <utility>

namespace simcov::store {

RecordingTourStream::RecordingTourStream(
    std::unique_ptr<model::TourStream> inner, unsigned input_bits)
    : inner_(std::move(inner)), input_bits_(input_bits) {}

std::optional<std::vector<std::vector<bool>>>
RecordingTourStream::next_sequence() {
  auto seq = inner_->next_sequence();
  if (!seq.has_value()) {
    exhausted_ = true;
    return std::nullopt;
  }
  encode_sequence(sequences_, *seq, input_bits_);
  ++sequence_count_;
  return seq;
}

model::TourResult RecordingTourStream::summary() { return inner_->summary(); }

std::vector<std::uint8_t> RecordingTourStream::artifact() {
  if (!exhausted_) {
    throw std::logic_error(
        "RecordingTourStream: artifact() before the stream was exhausted");
  }
  ByteWriter w;
  w.u32(input_bits_);
  encode_tour_summary(w, inner_->summary());
  w.u64(sequence_count_);
  w.raw(sequences_.data().data(), sequences_.size());
  return w.take();
}

StoredTourStream::StoredTourStream(std::vector<std::uint8_t> payload)
    : payload_(std::move(payload)), reader_(payload_) {
  input_bits_ = reader_.u32();
  summary_ = decode_tour_summary(reader_);
  remaining_ = reader_.u64();
}

std::optional<std::vector<std::vector<bool>>>
StoredTourStream::next_sequence() {
  if (remaining_ == 0) {
    reader_.expect_done();
    return std::nullopt;
  }
  --remaining_;
  return decode_sequence(reader_, input_bits_);
}

}  // namespace simcov::store
