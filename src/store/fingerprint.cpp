#include "store/fingerprint.hpp"

#include <array>
#include <bit>
#include <cstdio>

namespace simcov::store {

namespace {

/// splitmix64 finalizer — full-avalanche mixing of one 64-bit word.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t rotl(std::uint64_t x, unsigned k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    // Lane A: FNV-1a. Lane B: add-rotate-multiply with a distinct prime.
    a_ = (a_ ^ p[i]) * 0x00000100000001b3ull;
    b_ = rotl(b_ + p[i] + 0x2545f4914f6cdd1dull, 23) * 0xff51afd7ed558ccdull;
  }
  length_ += n;
  return *this;
}

Hasher& Hasher::u8(std::uint8_t v) { return bytes(&v, 1); }

Hasher& Hasher::u32(std::uint32_t v) {
  const std::array<std::uint8_t, 4> le{
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  return bytes(le.data(), le.size());
}

Hasher& Hasher::u64(std::uint64_t v) {
  std::array<std::uint8_t, 8> le;
  for (unsigned i = 0; i < 8; ++i) {
    le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return bytes(le.data(), le.size());
}

Hasher& Hasher::f64(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0
  return u64(std::bit_cast<std::uint64_t>(v));
}

Hasher& Hasher::boolean(bool v) { return u8(v ? 1 : 0); }

Hasher& Hasher::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

Hasher& Hasher::fp(const Fingerprint& f) { return u64(f.hi).u64(f.lo); }

Fingerprint Hasher::digest() const {
  // Cross-mix the lanes with the length so the digest depends on both lanes
  // and truncation is visible.
  Fingerprint out;
  out.hi = mix64(a_ ^ rotl(b_, 32) ^ length_);
  out.lo = mix64(b_ + mix64(a_) + length_);
  return out;
}

Fingerprint fingerprint_circuit(const sym::SequentialCircuit& circuit) {
  Hasher h;
  h.str("simcov.circuit.v1");
  const auto& net = circuit.net;
  h.u64(net.num_signals());
  for (sym::SignalId s = 0; s < net.num_signals(); ++s) {
    const auto g = net.gate(s);
    h.u8(static_cast<std::uint8_t>(g.op)).u32(g.a).u32(g.b).u32(g.c);
  }
  h.u64(net.num_inputs());
  for (std::size_t k = 0; k < net.num_inputs(); ++k) {
    h.u32(net.inputs()[k]).str(net.input_name(k));
  }
  h.u64(circuit.latches.size());
  for (const auto& latch : circuit.latches) {
    h.u32(latch.current).u32(latch.next).boolean(latch.init).str(latch.name);
  }
  h.u64(circuit.primary_inputs.size());
  for (const sym::SignalId pi : circuit.primary_inputs) h.u32(pi);
  h.u64(circuit.outputs.size());
  for (const auto& [name, signal] : circuit.outputs) {
    h.str(name).u32(signal);
  }
  h.boolean(circuit.valid.has_value());
  if (circuit.valid.has_value()) h.u32(*circuit.valid);
  return h.digest();
}

Fingerprint fingerprint_model(model::TestModel& model,
                              std::size_t max_states) {
  Hasher h;
  h.str("simcov.model.v1");
  h.u32(model.input_bits()).u32(model.state_bits());
  h.u64(model.reset_state());
  model.visit_reachable(
      max_states, [&](std::uint64_t state, const model::TestModel::Edge& e) {
        const auto out = model.output(state, e.input);
        h.u64(state).u64(e.input).u64(e.next);
        // A reachable edge always has an output; hash a sentinel if the
        // backend disagrees so the mismatch is at least visible.
        h.u64(out.has_value() ? *out : ~std::uint64_t{0});
      });
  return h.digest();
}

Fingerprint fingerprint_options(const testmodel::TestModelOptions& options) {
  Hasher h;
  h.str("simcov.testmodel_options.v1");
  h.boolean(options.output_sync_latches);
  h.u32(options.reg_addr_bits);
  h.boolean(options.fetch_controller);
  h.boolean(options.aux_outputs);
  h.boolean(options.onehot_opclass);
  h.boolean(options.interlock_registers);
  h.boolean(options.keep_dest_in_state);
  h.boolean(options.expose_dest_outputs);
  h.boolean(options.reduced_isa);
  return h.digest();
}

}  // namespace simcov::store
