// Content fingerprints — the addressing scheme of the artifact store.
//
// Every cached artifact is keyed by a 128-bit fingerprint of the content
// that produced it: the test model and the option values that shape the
// artifact. Identical inputs hash identically across processes and runs
// (byte-level canonical serialization, explicit little-endian, no pointers
// or addresses), so a second campaign over the same model finds the first
// campaign's artifacts by pure recomputation of the key — no manifest, no
// coordination.
//
// Three canonical serializations are provided:
//  * fingerprint_circuit — structural: the exact gate netlist of a
//    sym::SequentialCircuit (gates, latches, PIs, outputs, constraint).
//    This is what the pipeline keys on: the DLX test-model build is a pure
//    function of TestModelOptions, so circuit identity == model identity,
//    and it stays cheap even when the reachable state space is huge.
//  * fingerprint_model — behavioural: a BFS of the reachable state graph
//    through the TestModel seam, hashing every (state, input, output,
//    successor) quadruple in deterministic order. Backend-independent: the
//    same machine loaded through ExplicitModel and SymbolicModel produces
//    the same fingerprint, and any single-transition mutation (output or
//    transfer) changes it. Costs a full enumeration — use for explicit-
//    scale models and differential tests.
//  * fingerprint_options — the TestModelOptions value, field by field.
//
// Hasher is the shared accumulator: two independently seeded 64-bit lanes
// over the byte stream with a strong finalizer, plus the total length — not
// cryptographic, but 128 bits of well-mixed state is far below any
// realistic collision risk for a build cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "model/test_model.hpp"
#include "sym/symbolic_fsm.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::store {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex digits, hi first — the artifact filename stem.
  [[nodiscard]] std::string hex() const;
};

/// Streaming 128-bit hash accumulator with typed, length-prefixed updates.
/// Update order is part of the canonical form: compose fingerprints by
/// hashing fields in a fixed documented order, never by set union.
class Hasher {
 public:
  Hasher& bytes(const void* data, std::size_t n);
  Hasher& u8(std::uint8_t v);
  Hasher& u32(std::uint32_t v);
  Hasher& u64(std::uint64_t v);
  /// Bit pattern of the double (canonicalizes -0.0 to 0.0 so equal values
  /// hash equally).
  Hasher& f64(double v);
  Hasher& boolean(bool v);
  /// Length-prefixed, so "ab","c" never collides with "a","bc".
  Hasher& str(std::string_view s);
  /// Folds an already computed fingerprint in (for composite keys).
  Hasher& fp(const Fingerprint& f);

  [[nodiscard]] Fingerprint digest() const;

 private:
  std::uint64_t a_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  std::uint64_t b_ = 0x9e3779b97f4a7c15ull;  // golden-ratio seed
  std::uint64_t length_ = 0;
};

/// Structural fingerprint of a sequential circuit: every gate, latch,
/// primary input, output and the validity constraint, in storage order.
[[nodiscard]] Fingerprint fingerprint_circuit(
    const sym::SequentialCircuit& circuit);

/// Behavioural fingerprint of a test model: BFS over the reachable state
/// graph hashing (state, input, output, successor) per transition, plus the
/// interface widths and reset key. Throws std::runtime_error when the
/// reachable state space exceeds `max_states`.
[[nodiscard]] Fingerprint fingerprint_model(model::TestModel& model,
                                            std::size_t max_states = 1u << 20);

/// Field-by-field fingerprint of the test-model build options.
[[nodiscard]] Fingerprint fingerprint_options(
    const testmodel::TestModelOptions& options);

}  // namespace simcov::store
