#include "store/codec.hpp"

#include <bit>

namespace simcov::store {

void ByteWriter::u32(std::uint32_t v) {
  for (unsigned i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out_.insert(out_.end(), p, p + n);
}

std::uint8_t ByteReader::u8() {
  if (at_ >= data_.size()) {
    throw CodecError("codec: read past end of payload");
  }
  return data_[at_++];
}

std::uint32_t ByteReader::u32() {
  const auto p = raw(4);
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  const auto p = raw(8);
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::span<const std::uint8_t> ByteReader::raw(std::size_t n) {
  if (n > data_.size() - at_ || at_ > data_.size()) {
    throw CodecError("codec: read past end of payload");
  }
  const auto out = data_.subspan(at_, n);
  at_ += n;
  return out;
}

void ByteReader::expect_done() const {
  if (!done()) {
    throw CodecError("codec: trailing bytes after payload");
  }
}

void encode_sequence(ByteWriter& w,
                     const std::vector<std::vector<bool>>& sequence,
                     unsigned input_bits) {
  const std::size_t bytes_per_step = (input_bits + 7) / 8;
  w.u64(sequence.size());
  for (const auto& step : sequence) {
    if (step.size() != input_bits) {
      throw CodecError("codec: step width disagrees with model input width");
    }
    std::size_t bit = 0;
    for (std::size_t byte = 0; byte < bytes_per_step; ++byte) {
      std::uint8_t packed = 0;
      for (unsigned j = 0; j < 8 && bit < step.size(); ++j, ++bit) {
        if (step[bit]) packed |= static_cast<std::uint8_t>(1u << j);
      }
      w.u8(packed);
    }
  }
}

std::vector<std::vector<bool>> decode_sequence(ByteReader& r,
                                               unsigned input_bits) {
  const std::size_t bytes_per_step = (input_bits + 7) / 8;
  const std::uint64_t steps = r.u64();
  std::vector<std::vector<bool>> out;
  out.reserve(steps);
  for (std::uint64_t s = 0; s < steps; ++s) {
    const auto packed = r.raw(bytes_per_step);
    std::vector<bool> step(input_bits, false);
    for (unsigned bit = 0; bit < input_bits; ++bit) {
      step[bit] = (packed[bit / 8] >> (bit % 8)) & 1u;
    }
    out.push_back(std::move(step));
  }
  return out;
}

void encode_tour_summary(ByteWriter& w, const model::TourResult& summary) {
  w.f64(summary.coverage.states_visited);
  w.f64(summary.coverage.states_total);
  w.f64(summary.coverage.transitions_covered);
  w.f64(summary.coverage.transitions_total);
  w.u64(summary.steps);
  w.u64(summary.restarts);
  w.boolean(summary.complete);
}

model::TourResult decode_tour_summary(ByteReader& r) {
  model::TourResult out;
  out.coverage.states_visited = r.f64();
  out.coverage.states_total = r.f64();
  out.coverage.transitions_covered = r.f64();
  out.coverage.transitions_total = r.f64();
  out.steps = r.u64();
  out.restarts = r.u64();
  out.complete = r.boolean();
  return out;
}

void encode_symbolic_snapshot(ByteWriter& w, const SymbolicSnapshot& snap) {
  w.u32(snap.fsm.num_latches);
  w.u32(snap.fsm.num_primary_inputs);
  w.u32(snap.fsm.num_outputs);
  w.u64(snap.fsm.transition_relation_nodes);
  w.u32(snap.fsm.reachability_iterations);
  w.f64(snap.fsm.reachable_states);
  w.f64(snap.fsm.transitions);
  w.f64(snap.fsm.valid_input_combinations);
  w.u64(snap.bdd.allocated_nodes);
  w.u64(snap.bdd.live_nodes);
  w.u64(snap.bdd.free_nodes);
  w.u64(snap.bdd.unique_lookups);
  w.u64(snap.bdd.unique_hits);
  w.u64(snap.bdd.cache_lookups);
  w.u64(snap.bdd.cache_hits);
  w.u64(snap.bdd.gc_runs);
  // v2 tail: reordering telemetry. Appended so the field order mirrors the
  // BddStats declaration; readers of v1 payloads never reach this point
  // because the store drops entries whose kind version mismatches.
  w.u64(snap.bdd.reorders);
  w.u64(snap.bdd.level_swaps);
  w.u64(snap.bdd.peak_live_nodes);
  w.u64(snap.bdd.order_fingerprint);
}

SymbolicSnapshot decode_symbolic_snapshot(ByteReader& r) {
  SymbolicSnapshot snap;
  snap.fsm.num_latches = r.u32();
  snap.fsm.num_primary_inputs = r.u32();
  snap.fsm.num_outputs = r.u32();
  snap.fsm.transition_relation_nodes = r.u64();
  snap.fsm.reachability_iterations = r.u32();
  snap.fsm.reachable_states = r.f64();
  snap.fsm.transitions = r.f64();
  snap.fsm.valid_input_combinations = r.f64();
  snap.bdd.allocated_nodes = r.u64();
  snap.bdd.live_nodes = r.u64();
  snap.bdd.free_nodes = r.u64();
  snap.bdd.unique_lookups = r.u64();
  snap.bdd.unique_hits = r.u64();
  snap.bdd.cache_lookups = r.u64();
  snap.bdd.cache_hits = r.u64();
  snap.bdd.gc_runs = r.u64();
  snap.bdd.reorders = r.u64();
  snap.bdd.level_swaps = r.u64();
  snap.bdd.peak_live_nodes = r.u64();
  snap.bdd.order_fingerprint = r.u64();
  return snap;
}

void encode_checkpoint(ByteWriter& w, const CampaignCheckpoint& ckpt) {
  w.u64(ckpt.clean_runs.size());
  for (const CheckpointRun& run : ckpt.clean_runs) {
    w.u64(run.sequence);
    w.u64(run.impl_cycles);
    w.u64(run.checkpoints);
    w.boolean(run.passed);
    w.boolean(run.budget_exhausted);
  }
}

std::vector<std::uint8_t> to_payload(const SymbolicSnapshot& snap) {
  ByteWriter w;
  encode_symbolic_snapshot(w, snap);
  return w.take();
}

SymbolicSnapshot snapshot_from_payload(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  SymbolicSnapshot snap = decode_symbolic_snapshot(r);
  r.expect_done();
  return snap;
}

CampaignCheckpoint decode_checkpoint(ByteReader& r) {
  CampaignCheckpoint ckpt;
  const std::uint64_t count = r.u64();
  ckpt.clean_runs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointRun run;
    run.sequence = r.u64();
    run.impl_cycles = r.u64();
    run.checkpoints = r.u64();
    run.passed = r.boolean();
    run.budget_exhausted = r.boolean();
    ckpt.clean_runs.push_back(run);
  }
  return ckpt;
}

std::vector<std::uint8_t> to_payload(const CampaignCheckpoint& ckpt) {
  ByteWriter w;
  encode_checkpoint(w, ckpt);
  return w.take();
}

CampaignCheckpoint checkpoint_from_payload(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  CampaignCheckpoint ckpt = decode_checkpoint(r);
  r.expect_done();
  return ckpt;
}

void encode_baseline(ByteWriter& w, const PerfBaseline& baseline) {
  w.u64(baseline.sequences);
  w.u64(baseline.test_steps);
  w.u64(baseline.total_impl_cycles);
  w.f64(baseline.total_seconds);
  w.f64(baseline.tour_seconds);
  w.f64(baseline.concretize_seconds);
  w.f64(baseline.simulate_seconds);
}

PerfBaseline decode_baseline(ByteReader& r) {
  PerfBaseline b;
  b.sequences = r.u64();
  b.test_steps = r.u64();
  b.total_impl_cycles = r.u64();
  b.total_seconds = r.f64();
  b.tour_seconds = r.f64();
  b.concretize_seconds = r.f64();
  b.simulate_seconds = r.f64();
  return b;
}

std::vector<std::uint8_t> to_payload(const PerfBaseline& baseline) {
  ByteWriter w;
  encode_baseline(w, baseline);
  return w.take();
}

PerfBaseline baseline_from_payload(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  PerfBaseline b = decode_baseline(r);
  r.expect_done();
  return b;
}

}  // namespace simcov::store
