#include "store/artifact_store.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <string>
#include <system_error>

#include "store/codec.hpp"

namespace simcov::store {

namespace {

constexpr std::array<char, 8> kMagic{'S', 'I', 'M', 'C', 'O', 'V', 'A', '1'};

/// Fixed artifact header preceding the payload. All integers little-endian.
struct Header {
  std::uint32_t kind = 0;
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  Fingerprint checksum;
};

Fingerprint payload_checksum(std::span<const std::uint8_t> payload) {
  Hasher h;
  h.str("simcov.artifact.payload");
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

void encode_header(ByteWriter& w, const Header& h) {
  w.raw(kMagic.data(), kMagic.size());
  w.u32(h.kind);
  w.u32(h.version);
  w.u64(h.payload_size);
  w.u64(h.checksum.hi);
  w.u64(h.checksum.lo);
}

/// Parses and magic-checks the header; nullopt on any shape mismatch.
std::optional<Header> decode_header(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  try {
    const auto magic = r.raw(kMagic.size());
    if (std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0) {
      return std::nullopt;
    }
    Header h;
    h.kind = r.u32();
    h.version = r.u32();
    h.payload_size = r.u64();
    h.checksum.hi = r.u64();
    h.checksum.lo = r.u64();
    return h;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 8;

}  // namespace

const char* kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kTour: return "tour";
    case ArtifactKind::kSymbolicSnapshot: return "symstats";
    case ArtifactKind::kReport: return "report";
    case ArtifactKind::kCheckpoint: return "checkpoint";
    case ArtifactKind::kBaseline: return "baseline";
  }
  return "unknown";
}

std::uint32_t schema_version(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kTour: return 1;
    // v2: appended reorders/level_swaps/peak_live_nodes/order_fingerprint
    // to the BddStats tail. v1 entries decode-mismatch and are recomputed.
    case ArtifactKind::kSymbolicSnapshot: return 2;
    case ArtifactKind::kReport: return 1;
    case ArtifactKind::kCheckpoint: return 1;
    case ArtifactKind::kBaseline: return 1;
  }
  return 0;
}

ArtifactStore::ArtifactStore(StoreOptions options)
    : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec || !std::filesystem::is_directory(options_.dir)) {
    throw std::runtime_error("ArtifactStore: cannot create store directory " +
                             options_.dir.string());
  }
}

std::filesystem::path ArtifactStore::path_for(ArtifactKind kind,
                                              const Fingerprint& key) const {
  return options_.dir /
         (std::string(kind_name(kind)) + "-" + key.hex() + ".art");
}

std::optional<std::vector<std::uint8_t>> ArtifactStore::load(
    ArtifactKind kind, const Fingerprint& key, obs::Stage stage,
    obs::EventSink& sink) {
  const std::filesystem::path path = path_for(kind, key);
  const auto miss = [&]() -> std::optional<std::vector<std::uint8_t>> {
    std::lock_guard lock(mutex_);
    ++stats_.misses;
    sink.counter(stage, "store.miss", 1);
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return miss();
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();

  const auto reject = [&]() {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // corrupt/foreign: clear the slot
    return miss();
  };
  const auto header = decode_header(bytes);
  if (!header.has_value()) return reject();
  if (header->kind != static_cast<std::uint32_t>(kind) ||
      header->version != schema_version(kind) ||
      header->payload_size != bytes.size() - kHeaderSize) {
    return reject();
  }
  std::vector<std::uint8_t> payload(bytes.begin() + kHeaderSize, bytes.end());
  if (!(payload_checksum(payload) == header->checksum)) return reject();

  // Bump the LRU clock; failure to do so only weakens eviction ordering.
  std::error_code ec;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ec);

  {
    std::lock_guard lock(mutex_);
    ++stats_.hits;
    stats_.bytes_read += payload.size();
  }
  sink.counter(stage, "store.hit", 1);
  return payload;
}

void ArtifactStore::publish(ArtifactKind kind, const Fingerprint& key,
                            std::span<const std::uint8_t> payload,
                            obs::Stage stage, obs::EventSink& sink) {
  Header h;
  h.kind = static_cast<std::uint32_t>(kind);
  h.version = schema_version(kind);
  h.payload_size = payload.size();
  h.checksum = payload_checksum(payload);
  ByteWriter w;
  encode_header(w, h);
  w.raw(payload.data(), payload.size());

  std::uint64_t serial = 0;
  {
    std::lock_guard lock(mutex_);
    serial = temp_counter_++;
  }
  const std::filesystem::path tmp =
      options_.dir / (".tmp-" + key.hex() + "-" + std::to_string(serial));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ArtifactStore: cannot write " + tmp.string());
    }
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.size()));
    if (!out) {
      throw std::runtime_error("ArtifactStore: short write to " +
                               tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_for(kind, key), ec);
  if (ec) {
    std::error_code cleanup;
    std::filesystem::remove(tmp, cleanup);
    throw std::runtime_error("ArtifactStore: cannot publish " +
                             path_for(kind, key).string() + ": " +
                             ec.message());
  }

  {
    std::lock_guard lock(mutex_);
    stats_.bytes_written += w.size();
    if (kind == ArtifactKind::kCheckpoint) ++stats_.checkpoint_writes;
  }
  if (kind == ArtifactKind::kCheckpoint) {
    sink.counter(stage, "checkpoint.write", 1);
  }
  if (options_.max_bytes > 0) evict_lru(stage, sink);
}

void ArtifactStore::erase(ArtifactKind kind, const Fingerprint& key) {
  std::error_code ec;
  std::filesystem::remove(path_for(kind, key), ec);
}

void ArtifactStore::evict_lru(obs::Stage stage, obs::EventSink& sink) {
  struct Entry {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    std::uint64_t size = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  const std::string checkpoint_prefix =
      std::string(kind_name(ArtifactKind::kCheckpoint)) + "-";
  for (const auto& de :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    if (ec) break;
    if (!de.is_regular_file(ec) || ec) continue;
    const std::string name = de.path().filename().string();
    if (!name.ends_with(".art")) continue;
    if (name.starts_with(checkpoint_prefix)) continue;  // eviction-exempt
    Entry e;
    e.path = de.path();
    e.mtime = de.last_write_time(ec);
    if (ec) continue;
    e.size = de.file_size(ec);
    if (ec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= options_.max_bytes) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& e : entries) {
    if (total <= options_.max_bytes) break;
    std::error_code rm;
    std::filesystem::remove(e.path, rm);
    if (rm) continue;
    total -= e.size;
    {
      std::lock_guard lock(mutex_);
      ++stats_.evictions;
    }
    sink.counter(stage, "store.evict", 1);
  }
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void ArtifactStore::add_resumed_sequences(std::uint64_t n) {
  std::lock_guard lock(mutex_);
  stats_.resumed_sequences += n;
}

}  // namespace simcov::store
