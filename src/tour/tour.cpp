#include "tour/tour.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <random>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "graph/postman.hpp"

namespace simcov::tour {

using fsm::InputId;
using fsm::MealyMachine;
using fsm::StateId;

namespace {

/// Dense renumbering of the reachable states of m.
struct ReachableIndex {
  std::vector<StateId> to_dense;    // state -> dense id (or kNone)
  std::vector<StateId> to_state;    // dense id -> state
  static constexpr StateId kNone = 0xffffffffu;

  ReachableIndex(const MealyMachine& m, StateId start)
      : to_dense(m.num_states(), kNone) {
    const auto seen = m.reachable_states(start);
    for (StateId s = 0; s < m.num_states(); ++s) {
      if (seen[s]) {
        to_dense[s] = static_cast<StateId>(to_state.size());
        to_state.push_back(s);
      }
    }
  }
};

/// BFS from `from` to the nearest state satisfying `is_goal`, through
/// defined transitions. Returns the input sequence, or nullopt.
std::optional<std::vector<InputId>> bfs_to(
    const MealyMachine& m, StateId from,
    const std::function<bool(StateId)>& is_goal) {
  if (is_goal(from)) return std::vector<InputId>{};
  std::vector<bool> seen(m.num_states(), false);
  struct Link {
    StateId prev;
    InputId via;
  };
  std::unordered_map<StateId, Link> parent;
  std::deque<StateId> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (InputId i = 0; i < m.num_inputs(); ++i) {
      const auto t = m.transition(s, i);
      if (!t.has_value() || seen[t->next]) continue;
      seen[t->next] = true;
      parent[t->next] = Link{s, i};
      if (is_goal(t->next)) {
        std::vector<InputId> path;
        for (StateId at = t->next; at != from; at = parent[at].prev) {
          path.push_back(parent[at].via);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(t->next);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Tour> minimum_transition_tour(const MealyMachine& m,
                                            StateId start) {
  const ReachableIndex ri(m, start);
  graph::Digraph g(static_cast<graph::NodeId>(ri.to_state.size()));
  for (StateId dense = 0; dense < ri.to_state.size(); ++dense) {
    const StateId s = ri.to_state[dense];
    for (InputId i = 0; i < m.num_inputs(); ++i) {
      const auto t = m.transition(s, i);
      if (!t.has_value()) continue;
      // Reachable source implies reachable target.
      g.add_edge(dense, ri.to_dense[t->next], /*cost=*/1,
                 /*label=*/static_cast<std::uint64_t>(s) * m.num_inputs() + i);
    }
  }
  const auto cpp = graph::directed_chinese_postman(g, ri.to_dense[start]);
  if (!cpp.has_value()) return std::nullopt;
  Tour tour;
  tour.start = start;
  tour.inputs.reserve(cpp->tour.size());
  for (graph::EdgeId e : cpp->tour) {
    tour.inputs.push_back(
        static_cast<InputId>(g.edge(e).label % m.num_inputs()));
  }
  return tour;
}

std::optional<Tour> greedy_transition_tour(const MealyMachine& m,
                                           StateId start) {
  const auto targets = m.reachable_transitions(start);
  std::set<fsm::TransitionRef> uncovered(targets.begin(), targets.end());
  Tour tour;
  tour.start = start;
  StateId at = start;
  while (!uncovered.empty()) {
    auto has_uncovered_out = [&](StateId s) {
      auto it = uncovered.lower_bound(fsm::TransitionRef{s, 0});
      return it != uncovered.end() && it->state == s;
    };
    const auto path = bfs_to(m, at, has_uncovered_out);
    if (!path.has_value()) return std::nullopt;  // stuck
    for (InputId i : *path) {
      uncovered.erase(fsm::TransitionRef{at, i});
      tour.inputs.push_back(i);
      at = m.transition(at, i)->next;
    }
    // Take the smallest uncovered input out of `at`.
    const auto it = uncovered.lower_bound(fsm::TransitionRef{at, 0});
    const InputId i = it->input;
    uncovered.erase(it);
    tour.inputs.push_back(i);
    at = m.transition(at, i)->next;
  }
  return tour;
}

std::optional<Tour> state_tour(const MealyMachine& m, StateId start) {
  const auto reachable = m.reachable_states(start);
  std::vector<bool> visited(m.num_states(), false);
  std::size_t remaining = 0;
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (reachable[s]) ++remaining;
  }
  Tour tour;
  tour.start = start;
  StateId at = start;
  visited[at] = true;
  --remaining;
  while (remaining > 0) {
    const auto path = bfs_to(
        m, at, [&](StateId s) { return reachable[s] && !visited[s]; });
    if (!path.has_value()) return std::nullopt;
    for (InputId i : *path) {
      tour.inputs.push_back(i);
      at = m.transition(at, i)->next;
      if (!visited[at]) {
        visited[at] = true;
        --remaining;
      }
    }
  }
  return tour;
}

Tour random_walk(const MealyMachine& m, StateId start, std::size_t length,
                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Tour tour;
  tour.start = start;
  tour.inputs.reserve(length);
  StateId at = start;
  for (std::size_t step = 0; step < length; ++step) {
    std::vector<InputId> defined;
    for (InputId i = 0; i < m.num_inputs(); ++i) {
      if (m.transition(at, i).has_value()) defined.push_back(i);
    }
    if (defined.empty()) {
      throw std::domain_error("random_walk: dead-end state reached");
    }
    const InputId i = defined[rng() % defined.size()];
    tour.inputs.push_back(i);
    at = m.transition(at, i)->next;
  }
  return tour;
}

std::size_t TourSet::total_length() const {
  std::size_t n = 0;
  for (const auto& seq : sequences) n += seq.size();
  return n;
}

TransitionTourSetGenerator::TransitionTourSetGenerator(const MealyMachine& m,
                                                       StateId start)
    : machine_(m), start_(start) {
  const auto targets = m.reachable_transitions(start);
  uncovered_ = std::set<fsm::TransitionRef>(targets.begin(), targets.end());
}

std::optional<std::vector<InputId>> TransitionTourSetGenerator::next() {
  if (uncovered_.empty() || stuck_) return std::nullopt;
  auto has_uncovered_out = [&](StateId s) {
    auto it = uncovered_.lower_bound(fsm::TransitionRef{s, 0});
    return it != uncovered_.end() && it->state == s;
  };
  std::vector<InputId> seq;
  StateId at = start_;
  bool progressed = false;
  for (;;) {
    const auto path = bfs_to(machine_, at, has_uncovered_out);
    if (!path.has_value()) break;  // stuck: end this sequence
    for (InputId i : *path) {
      uncovered_.erase(fsm::TransitionRef{at, i});
      seq.push_back(i);
      at = machine_.transition(at, i)->next;
    }
    const auto it = uncovered_.lower_bound(fsm::TransitionRef{at, 0});
    const InputId i = it->input;
    uncovered_.erase(it);
    seq.push_back(i);
    at = machine_.transition(at, i)->next;
    progressed = true;
  }
  if (!progressed) {  // even a fresh reset can't reach
    stuck_ = true;
    return std::nullopt;
  }
  return seq;
}

std::optional<TourSet> greedy_transition_tour_set(const MealyMachine& m,
                                                  StateId start) {
  TransitionTourSetGenerator gen(m, start);
  TourSet set;
  set.start = start;
  while (auto seq = gen.next()) set.sequences.push_back(std::move(*seq));
  if (gen.stuck()) return std::nullopt;
  return set;
}

namespace {

/// Reachable state/transition totals for the tracker, shared by both
/// evaluators.
model::CoverageTracker make_tracker(const MealyMachine& m, StateId start) {
  const auto reachable = m.reachable_states(start);
  std::size_t states_total = 0;
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (reachable[s]) ++states_total;
  }
  return model::CoverageTracker(
      static_cast<double>(states_total),
      static_cast<double>(m.reachable_transitions(start).size()));
}

}  // namespace

CoverageStats evaluate_coverage(const MealyMachine& m, StateId start,
                                std::span<const InputId> inputs) {
  model::CoverageTracker tracker = make_tracker(m, start);
  StateId at = start;
  tracker.visit_state(at);
  for (InputId i : inputs) {
    const auto t = m.transition(at, i);
    if (!t.has_value()) {
      throw std::domain_error("evaluate_coverage: undefined transition");
    }
    tracker.cover_transition(at, i);
    at = t->next;
    tracker.visit_state(at);
  }
  return tracker.stats();
}

bool is_transition_tour(const MealyMachine& m, StateId start,
                        std::span<const InputId> inputs) {
  const auto stats = evaluate_coverage(m, start, inputs);
  return stats.transitions_covered == stats.transitions_total;
}

CoverageStats evaluate_coverage_set(const MealyMachine& m,
                                    const TourSet& set) {
  model::CoverageTracker tracker = make_tracker(m, set.start);
  tracker.visit_state(set.start);
  for (const auto& seq : set.sequences) {
    StateId at = set.start;
    for (InputId i : seq) {
      const auto t = m.transition(at, i);
      if (!t.has_value()) {
        throw std::domain_error(
            "evaluate_coverage_set: undefined transition");
      }
      tracker.cover_transition(at, i);
      at = t->next;
      tracker.visit_state(at);
    }
  }
  return tracker.stats();
}

bool is_transition_tour_set(const MealyMachine& m, const TourSet& set) {
  const auto stats = evaluate_coverage_set(m, set);
  return stats.transitions_covered == stats.transitions_total;
}

}  // namespace simcov::tour
