// Test-sequence generation over explicit test models.
//
// A *transition tour* is an input sequence that exercises every (reachable)
// transition of the test model at least once; a *state tour* covers every
// state. The paper's central result (Theorem 3) is that under Requirements
// 1-5 a transition tour is a *complete* test set. Section 6.5 reduces
// minimum-cost tour generation to the Directed Chinese Postman Problem.
//
// Three generators are provided:
//  * minimum_transition_tour — CPP-optimal closed tour (needs the reachable
//    state graph to be strongly connected);
//  * greedy_transition_tour — nearest-uncovered-transition heuristic, an
//    open walk that also works on some non-strongly-connected machines;
//  * state_tour / random_walk — the weaker coverage baselines the paper
//    contrasts against (state coverage [Iwashita+94], plain simulation).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "fsm/mealy.hpp"
#include "model/coverage.hpp"

namespace simcov::tour {

struct Tour {
  fsm::StateId start = 0;
  std::vector<fsm::InputId> inputs;

  [[nodiscard]] std::size_t length() const { return inputs.size(); }
};

/// Backend-neutral coverage statistics (model/coverage.hpp). The explicit
/// evaluators below and the symbolic tour driver (src/sym) both account
/// through the shared model::CoverageTracker, so "state coverage" and
/// "transition coverage" mean the same thing whichever backend measured
/// them.
using CoverageStats = model::CoverageStats;

/// Minimum-length transition tour (closed walk) from `start` covering every
/// reachable defined transition, via the Directed Chinese Postman reduction.
/// Empty optional when the reachable state graph is not strongly connected.
std::optional<Tour> minimum_transition_tour(const fsm::MealyMachine& m,
                                            fsm::StateId start);

/// Greedy transition tour: repeatedly walk (via BFS) to the nearest state
/// with an uncovered outgoing transition and take it. Not length-optimal and
/// not necessarily closed, but succeeds on any machine where coverage is
/// possible in some order. Empty optional if it gets stuck (uncovered
/// transitions no longer reachable).
std::optional<Tour> greedy_transition_tour(const fsm::MealyMachine& m,
                                           fsm::StateId start);

/// Greedy state tour: visits every reachable state at least once.
std::optional<Tour> state_tour(const fsm::MealyMachine& m, fsm::StateId start);

/// Random walk of `length` steps over defined transitions (uniform among the
/// defined inputs of the current state). Throws std::domain_error if the walk
/// reaches a state with no defined outgoing transition.
Tour random_walk(const fsm::MealyMachine& m, fsm::StateId start,
                 std::size_t length, std::uint64_t seed);

/// A test set in the paper's sense: several input sequences, each applied
/// from the (reset) start state. Needed when the start state is transient —
/// e.g. the empty-pipeline reset state of a processor control model, which
/// no closed tour can revisit.
struct TourSet {
  fsm::StateId start = 0;
  std::vector<std::vector<fsm::InputId>> sequences;

  [[nodiscard]] std::size_t total_length() const;
};

/// Greedy transition tour set: walks from `start` covering uncovered
/// transitions; when no uncovered transition is reachable any more, ends the
/// sequence and restarts from `start` (a reset). Covers every reachable
/// defined transition. Empty optional only if some transition is uncoverable
/// even after a reset (cannot happen for transitions reachable from start).
std::optional<TourSet> greedy_transition_tour_set(const fsm::MealyMachine& m,
                                                  fsm::StateId start);

/// Incremental form of greedy_transition_tour_set: yields the tour set one
/// reset-separated sequence at a time, so a campaign can concretize and
/// simulate each sequence while the next one is still being generated,
/// never holding the whole test set in memory. Produces exactly the
/// sequences (and order) of greedy_transition_tour_set — that function is
/// now a thin loop over this generator.
///
/// The machine must outlive the generator.
class TransitionTourSetGenerator {
 public:
  TransitionTourSetGenerator(const fsm::MealyMachine& m, fsm::StateId start);

  /// The next sequence of the set; nullopt when every reachable transition
  /// is covered (done()) or when the generator is stuck().
  std::optional<std::vector<fsm::InputId>> next();

  /// Every reachable transition has been covered.
  [[nodiscard]] bool done() const { return uncovered_.empty(); }
  /// A reset no longer reaches any uncovered transition (the failure case
  /// greedy_transition_tour_set reports as an empty optional).
  [[nodiscard]] bool stuck() const { return stuck_; }
  /// Transitions still to cover.
  [[nodiscard]] std::size_t remaining() const { return uncovered_.size(); }
  [[nodiscard]] fsm::StateId start() const { return start_; }

 private:
  const fsm::MealyMachine& machine_;
  fsm::StateId start_;
  std::set<fsm::TransitionRef> uncovered_;
  bool stuck_ = false;
};

/// State/transition coverage achieved by running `inputs` from `start`.
/// Totals count the reachable portion of the machine.
CoverageStats evaluate_coverage(const fsm::MealyMachine& m, fsm::StateId start,
                                std::span<const fsm::InputId> inputs);

/// Aggregate coverage of a multi-sequence test set (each sequence restarts
/// from the set's start state).
CoverageStats evaluate_coverage_set(const fsm::MealyMachine& m,
                                    const TourSet& set);

/// True when the test set covers every reachable defined transition.
bool is_transition_tour_set(const fsm::MealyMachine& m, const TourSet& set);

/// True when `inputs` is a transition tour: every reachable defined
/// transition is exercised at least once.
bool is_transition_tour(const fsm::MealyMachine& m, fsm::StateId start,
                        std::span<const fsm::InputId> inputs);

}  // namespace simcov::tour
