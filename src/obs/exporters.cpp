#include "obs/exporters.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/json.hpp"

namespace simcov::obs {

namespace {

std::uint64_t seconds_to_us(double seconds) {
  if (!(seconds > 0.0)) return 0;
  return static_cast<std::uint64_t>(seconds * 1e6);
}

}  // namespace

// ---------------------------------------------------------------------------
// PerfettoTraceSink
// ---------------------------------------------------------------------------

PerfettoTraceSink::PerfettoTraceSink(const std::string& path)
    : out_(path), start_(std::chrono::steady_clock::now()) {
  if (!out_) {
    throw std::runtime_error("PerfettoTraceSink: cannot open " + path);
  }
  out_ << "[";
  // Name the per-stage tracks up front ("M" metadata events), so the
  // Perfetto timeline reads as stage names instead of bare tids.
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const auto stage = static_cast<Stage>(s);
    core::JsonWriter w;
    w.begin_object()
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", s)
        .field("name", "thread_name")
        .begin_object("args")
        .field("name", stage_name(stage))
        .end_object()
        .end_object();
    write_event(w.str());
    core::JsonWriter wi;
    wi.begin_object()
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", 100 + s)
        .field("name", "thread_name")
        .begin_object("args")
        .field("name", std::string(stage_name(stage)) + " items")
        .end_object()
        .end_object();
    write_event(wi.str());
  }
}

PerfettoTraceSink::~PerfettoTraceSink() {
  std::lock_guard lock(mutex_);
  out_ << "\n]\n";
}

std::uint64_t PerfettoTraceSink::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void PerfettoTraceSink::write_event(const std::string& json) {
  std::lock_guard lock(mutex_);
  if (!first_) out_ << ',';
  first_ = false;
  out_ << '\n' << json;
}

void PerfettoTraceSink::span(Stage stage, double seconds) {
  // Spans arrive when they close; back-date the slice start so the timeline
  // shows it where it actually ran.
  const std::uint64_t dur = seconds_to_us(seconds);
  const std::uint64_t end = now_us();
  core::JsonWriter w;
  w.begin_object()
      .field("ph", "X")
      .field("pid", 1)
      .field("tid", static_cast<std::uint64_t>(stage))
      .field("ts", end > dur ? end - dur : 0)
      .field("dur", dur)
      .field("name", stage_name(stage))
      .end_object();
  write_event(w.str());
}

void PerfettoTraceSink::counter(Stage stage, std::string_view name,
                                std::uint64_t value) {
  // Counter events are increments; a Perfetto counter track wants levels.
  // Accumulate per (stage, name) so the track plots the running total.
  const std::string key =
      std::string(stage_name(stage)) + "." + std::string(name);
  std::uint64_t total = 0;
  {
    std::lock_guard lock(mutex_);
    total = (counter_totals_[key] += value);
  }
  core::JsonWriter w;
  w.begin_object()
      .field("ph", "C")
      .field("pid", 1)
      .field("ts", now_us())
      .field("name", key)
      .begin_object("args")
      .field("value", total)
      .end_object()
      .end_object();
  write_event(w.str());
}

void PerfettoTraceSink::gauge(Stage stage, std::string_view name,
                              std::uint64_t value) {
  core::JsonWriter w;
  w.begin_object()
      .field("ph", "C")
      .field("pid", 1)
      .field("ts", now_us())
      .field("name", std::string(stage_name(stage)) + "." + std::string(name))
      .begin_object("args")
      .field("value", value)
      .end_object()
      .end_object();
  write_event(w.str());
}

void PerfettoTraceSink::item(Stage stage, std::string_view kind,
                             std::uint64_t id, std::uint64_t value) {
  core::JsonWriter w;
  w.begin_object()
      .field("ph", "i")
      .field("s", "t")
      .field("pid", 1)
      .field("tid", static_cast<std::uint64_t>(stage))
      .field("ts", now_us())
      .field("name", std::string(kind))
      .begin_object("args")
      .field("id", id)
      .field("value", value)
      .end_object()
      .end_object();
  write_event(w.str());
}

void PerfettoTraceSink::latency(Stage stage, std::string_view kind,
                                std::uint64_t id, double seconds) {
  const std::uint64_t dur = seconds_to_us(seconds);
  const std::uint64_t end = now_us();
  core::JsonWriter w;
  w.begin_object()
      .field("ph", "X")
      .field("pid", 1)
      .field("tid", 100 + static_cast<std::uint64_t>(stage))
      .field("ts", end > dur ? end - dur : 0)
      .field("dur", dur)
      .field("name", std::string(kind))
      .begin_object("args")
      .field("id", id)
      .end_object()
      .end_object();
  write_event(w.str());
}

void PerfettoTraceSink::status(Stage stage, StageStatus status) {
  core::JsonWriter w;
  w.begin_object()
      .field("ph", "i")
      .field("s", "g")
      .field("pid", 1)
      .field("tid", static_cast<std::uint64_t>(stage))
      .field("ts", now_us())
      .field("name", std::string("status:") + status_name(status))
      .end_object();
  write_event(w.str());
  std::lock_guard lock(mutex_);
  out_.flush();
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:] only.
std::string sanitize_metric_name(std::string_view name) {
  std::string out = "simcov_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Series of one family, re-grouped by metric name (summaries arrive
/// sorted by (stage, name); exposition wants one TYPE line per name).
template <typename Value>
std::vector<std::vector<const MetricEntry<Value>*>> group_by_name(
    const std::vector<MetricEntry<Value>>& entries) {
  std::vector<const MetricEntry<Value>*> sorted;
  sorted.reserve(entries.size());
  for (const auto& e : entries) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto* a, const auto* b) {
                     if (a->name != b->name) return a->name < b->name;
                     return a->stage < b->stage;
                   });
  std::vector<std::vector<const MetricEntry<Value>*>> groups;
  for (const auto* e : sorted) {
    if (groups.empty() || groups.back().front()->name != e->name) {
      groups.emplace_back();
    }
    groups.back().push_back(e);
  }
  return groups;
}

/// HELP text is a single line: escape backslash and newline per the
/// exposition format so arbitrary text cannot break the frame.
std::string escape_help_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_help_text(std::string_view name) {
  struct Entry {
    std::string_view name;
    std::string_view help;
  };
  // The event vocabulary the pipeline emits today. New names fall through
  // to the generic line below, so HELP coverage never regresses to absent.
  static constexpr Entry kKnown[] = {
      {"span_ns", "Stage batch span durations in nanoseconds."},
      {"sequence", "Tour sequence lengths in steps."},
      {"sequence.latency_ns", "Per-sequence tour pull latency, nanoseconds."},
      {"program", "Concretized program lengths in instructions."},
      {"program.latency_ns",
       "Per-program concretization latency, nanoseconds."},
      {"clean_run", "Implementation cycles per committed clean run."},
      {"clean_run.latency_ns",
       "Per-run clean simulation latency, nanoseconds."},
      {"queue_wait.latency_ns",
       "Worker-pool scheduling delay per claimed index, nanoseconds."},
      {"store.hit", "Artifact-store lookups served from disk."},
      {"store.miss", "Artifact-store lookups that forced a recompute."},
      {"store.evict", "Artifacts removed by the store's LRU size cap."},
      {"checkpoint.write", "Campaign checkpoints written."},
      {"states", "Reachable states of the campaign model."},
      {"transitions", "Reachable transitions of the campaign model."},
      {"bdd.gc", "Garbage-collection passes of the live BDD manager."},
      {"bdd.reorder", "Variable-reordering passes of the live BDD manager."},
      {"bdd_live_nodes", "Live BDD nodes of the symbolic backend."},
      {"bdd_peak_nodes", "Peak live BDD nodes of the symbolic backend."},
      {"campaign.stall",
       "Watchdog stall detections, labelled by the attributed stage."},
      {"sequences_in_flight_peak",
       "Peak sequences held in the streaming window."},
  };
  for (const Entry& e : kKnown) {
    if (e.name == name) return std::string(e.help);
  }
  return "simcov metric '" + std::string(name) +
         "', aggregated per pipeline stage.";
}

std::string write_prometheus_text(const MetricsSummary& summary) {
  std::ostringstream os;
  // Prometheus text values must survive a parse back into float64. Today's
  // summaries are all integers (unaffected by stream precision), but any
  // floating-point series added later would otherwise be silently rounded
  // to ostream's default 6 significant digits.
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& group : group_by_name(summary.counters)) {
    const std::string name = sanitize_metric_name(group.front()->name);
    os << "# HELP " << name << "_total "
       << escape_help_text(prometheus_help_text(group.front()->name)) << "\n";
    os << "# TYPE " << name << "_total counter\n";
    for (const auto* e : group) {
      os << name << "_total{stage=\""
         << prometheus_escape_label(stage_name(e->stage)) << "\"} "
         << e->value << "\n";
    }
  }
  for (const auto& group : group_by_name(summary.gauges)) {
    const std::string name = sanitize_metric_name(group.front()->name);
    os << "# HELP " << name << " "
       << escape_help_text(prometheus_help_text(group.front()->name)) << "\n";
    os << "# TYPE " << name << " gauge\n";
    for (const auto* e : group) {
      os << name << "{stage=\""
         << prometheus_escape_label(stage_name(e->stage)) << "\"} "
         << e->value << "\n";
    }
  }
  for (const auto& group : group_by_name(summary.histograms)) {
    const std::string name = sanitize_metric_name(group.front()->name);
    os << "# HELP " << name << " "
       << escape_help_text(prometheus_help_text(group.front()->name)) << "\n";
    os << "# TYPE " << name << " histogram\n";
    for (const auto* e : group) {
      const std::string stage = prometheus_escape_label(stage_name(e->stage));
      const HistogramSummary& h = e->value;
      // Cumulative buckets; skip the le's where nothing changed to keep the
      // dump readable — cumulative semantics stay exact, and the mandatory
      // +Inf bucket always closes the series.
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
        if (h.buckets[i] == 0) continue;
        cumulative += h.buckets[i];
        os << name << "_bucket{stage=\"" << stage << "\",le=\""
           << histogram_bucket_upper_bound(i) << "\"} " << cumulative << "\n";
      }
      os << name << "_bucket{stage=\"" << stage << "\",le=\"+Inf\"} "
         << h.count << "\n";
      os << name << "_sum{stage=\"" << stage << "\"} " << h.sum << "\n";
      os << name << "_count{stage=\"" << stage << "\"} " << h.count << "\n";
    }
  }
  return os.str();
}

std::string write_prometheus_text(const MetricsRegistry& registry) {
  return write_prometheus_text(registry.summary());
}

}  // namespace simcov::obs
