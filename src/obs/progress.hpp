// ProgressEstimator: the live convergence view of a running campaign.
//
// The pipeline commits sequences on the coordinator thread and, when a
// CampaignMonitor is attached, reports each commit here together with the
// coverage account of the CoverageTelemetryCollector (states visited,
// transitions covered after that commit) — the same deterministic
// replay-based numbers the "coverage_telemetry" report section is built
// from, observed mid-run instead of post-hoc.
//
// From that stream the estimator derives the /progress payload:
//   * committed sequences / steps and the transition-coverage fraction,
//   * a sequence throughput (committed / elapsed),
//   * an ETA to full transition coverage, extrapolated from the live
//     convergence curve. Coverage discovery decays as a tour saturates
//     (most of the paper's convergence curves are concave), so the
//     estimator compares the discovery rate of the two halves of a recent
//     window and, when the rate is decaying, sums the implied geometric
//     tail instead of extrapolating linearly — a linear fit on a concave
//     curve systematically under-reports the remaining work.
//
// The clock is injectable (seconds as double) so unit tests drive the
// estimator deterministically; the default reads the steady clock.
// Thread-safe: on_commit arrives from the coordinator while snapshot() is
// called from the HTTP-server and watchdog threads.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

namespace simcov::obs {

/// Point-in-time view of campaign progress — the /progress "campaign"
/// object.
struct ProgressSnapshot {
  bool active = false;  ///< between begin() and end()
  std::uint64_t committed_sequences = 0;
  std::uint64_t committed_steps = 0;
  std::uint64_t states_visited = 0;
  std::uint64_t transitions_covered = 0;
  std::uint64_t transitions_total = 0;
  double transition_coverage = 0.0;  ///< covered / total (0 when total is 0)
  double elapsed_seconds = 0.0;
  double sequences_per_second = 0.0;
  /// Seconds until full transition coverage at the extrapolated discovery
  /// rate; nullopt when unknown (no commits yet, discovery stopped, or the
  /// geometric tail cannot reach the remaining transitions).
  std::optional<double> eta_seconds;
};

class ProgressEstimator {
 public:
  using Clock = std::function<double()>;

  /// `clock` returns seconds on a monotonic axis; nullptr uses the steady
  /// clock. `window` caps the commit records kept for rate estimation.
  explicit ProgressEstimator(Clock clock = nullptr,
                             std::size_t window = 256);

  /// Marks campaign start: zeroes the account and records the start time.
  void begin(std::uint64_t transitions_total);
  /// Marks campaign end; snapshots keep the final numbers but report
  /// active=false.
  void end();

  /// One (or one batch of) committed sequence(s): the totals *after* the
  /// commit, straight from the pipeline's counters and the telemetry
  /// collector's tracker. Coordinator thread only.
  void on_commit(std::uint64_t committed_sequences,
                 std::uint64_t committed_steps,
                 std::uint64_t states_visited,
                 std::uint64_t transitions_covered);

  [[nodiscard]] ProgressSnapshot snapshot() const;

 private:
  struct Record {
    double at = 0.0;  ///< clock seconds of the commit
    std::uint64_t transitions = 0;
  };

  /// ETA from the recent-window records; caller holds the lock.
  [[nodiscard]] std::optional<double> estimate_eta_locked() const;

  Clock clock_;
  std::size_t window_;
  mutable std::mutex mutex_;
  bool active_ = false;
  double started_at_ = 0.0;
  std::uint64_t committed_sequences_ = 0;
  std::uint64_t committed_steps_ = 0;
  std::uint64_t states_visited_ = 0;
  std::uint64_t transitions_covered_ = 0;
  std::uint64_t transitions_total_ = 0;
  std::deque<Record> recent_;
};

}  // namespace simcov::obs
