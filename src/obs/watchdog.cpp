#include "obs/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace simcov::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Watchdog::Watchdog(const MetricsRegistry& registry, WatchdogOptions options)
    : registry_(registry), options_(options) {
  options_.interval_seconds = std::max(options_.interval_seconds, 1e-3);
  options_.stall_intervals = std::max<std::size_t>(options_.stall_intervals, 1);
  options_.series_capacity = std::max<std::size_t>(options_.series_capacity, 1);
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::set_stall_sink(EventSink* sink) { stall_sink_ = sink; }

void Watchdog::set_queue_depth_fn(std::function<std::uint64_t()> fn) {
  queue_depth_ = std::move(fn);
}

void Watchdog::set_on_stall(std::function<void()> fn) {
  on_stall_ = std::move(fn);
}

void Watchdog::tick(double now_seconds) {
  // Sample outside the lock: summary() walks the registry's shards and the
  // queue-depth callback takes the pool mutex.
  const MetricsSummary summary = registry_.summary();
  WatchdogSample sample;
  sample.at_seconds = now_seconds;
  for (const auto& e : summary.counters) {
    sample.stage_activity[static_cast<std::size_t>(e.stage)] += e.value;
  }
  for (const auto& e : summary.histograms) {
    sample.stage_activity[static_cast<std::size_t>(e.stage)] +=
        e.value.count;
    if (e.stage == Stage::kSimulate && e.name == "clean_run") {
      sample.committed = e.value.count;
    }
  }
  sample.queue_depth = queue_depth_ ? queue_depth_() : 0;

  bool fire = false;
  Stage fire_stage = Stage::kTour;
  {
    std::lock_guard lock(mutex_);
    ++ticks_;
    // Attribution: the stage whose event activity advanced most recently.
    // Ascending scan, so when several stages advanced in the same tick the
    // one furthest along the pipeline wins — that is where work last moved.
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (sample.stage_activity[s] > last_activity_[s]) {
        last_active_stage_ = static_cast<Stage>(s);
      }
    }
    last_activity_ = sample.stage_activity;

    if (sample.committed > last_committed_) {
      last_committed_ = sample.committed;
      idle_intervals_ = 0;
      stalled_ = false;  // commits resumed: re-arm the alarm
    } else {
      ++idle_intervals_;
      if (!stalled_ && idle_intervals_ >= options_.stall_intervals) {
        stalled_ = true;
        fire = true;
        fire_stage = last_active_stage_;
        stalls_.push_back(StallEvent{now_seconds, last_active_stage_,
                                     sample.committed, sample.queue_depth,
                                     idle_intervals_});
      }
    }

    series_.push_back(sample);
    while (series_.size() > options_.series_capacity) series_.pop_front();
  }
  // Emit and cancel outside the lock — the sink may be the campaign's
  // MultiSink fan-out and must not observe the watchdog's mutex held.
  if (fire) {
    if (stall_sink_ != nullptr) {
      stall_sink_->counter(fire_stage, "campaign.stall", 1);
    }
    if (on_stall_) on_stall_();
  }
}

void Watchdog::start() {
  std::lock_guard lock(thread_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void Watchdog::stop() {
  {
    std::lock_guard lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  std::lock_guard lock(thread_mutex_);
  running_ = false;
}

void Watchdog::run_loop() {
  const auto period = std::chrono::duration<double>(options_.interval_seconds);
  std::unique_lock lock(thread_mutex_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, period, [&] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    tick(steady_seconds());
    lock.lock();
  }
}

std::uint64_t Watchdog::ticks() const {
  std::lock_guard lock(mutex_);
  return ticks_;
}

bool Watchdog::stalled() const {
  std::lock_guard lock(mutex_);
  return stalled_;
}

std::vector<StallEvent> Watchdog::stalls() const {
  std::lock_guard lock(mutex_);
  return stalls_;
}

std::vector<WatchdogSample> Watchdog::series() const {
  std::lock_guard lock(mutex_);
  return std::vector<WatchdogSample>(series_.begin(), series_.end());
}

}  // namespace simcov::obs
