#include "obs/coverage_telemetry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace simcov::obs {

// ---------------------------------------------------------------------------
// CoverageCurveBuilder
// ---------------------------------------------------------------------------

CoverageCurveBuilder::CoverageCurveBuilder(std::size_t budget)
    : budget_(std::max<std::size_t>(2, budget)) {}

void CoverageCurveBuilder::add(const CoveragePoint& point) {
  ++appended_;
  last_ = point;
  if (appended_ % stride_ != 0) return;
  if (kept_.size() + 1 > budget_) {
    // Budget full: keep every other point (kept_[j] holds append index
    // (j+1)*stride, so the survivors of a doubled stride are the odd
    // 0-based positions) and double the stride.
    std::vector<CoveragePoint> thinned;
    thinned.reserve(kept_.size() / 2 + 1);
    for (std::size_t j = 1; j < kept_.size(); j += 2) {
      thinned.push_back(kept_[j]);
    }
    kept_ = std::move(thinned);
    stride_ *= 2;
    if (appended_ % stride_ != 0) return;
  }
  kept_.push_back(point);
}

std::vector<CoveragePoint> CoverageCurveBuilder::points() const {
  std::vector<CoveragePoint> out = kept_;
  if (last_.has_value() &&
      (out.empty() || out.back().sequence != last_->sequence)) {
    out.push_back(*last_);
  }
  return out;
}

// ---------------------------------------------------------------------------
// CoverageTelemetryCollector
// ---------------------------------------------------------------------------

CoverageTelemetryCollector::CoverageTelemetryCollector(model::TestModel& model,
                                                       std::size_t curve_budget)
    : model_(model), curve_(curve_budget) {}

void CoverageTelemetryCollector::commit_sequence(
    const std::vector<std::vector<bool>>& steps) {
  // Mirror TestModel::evaluate's accounting exactly, one sequence at a time.
  std::uint64_t at = model_.reset_state();
  tracker_.visit_state(at);
  for (const auto& bits : steps) {
    const std::uint64_t input = model::TestModel::pack_bits(bits);
    const auto next = model_.step(at, input);
    if (!next.has_value()) {
      throw std::domain_error(
          "CoverageTelemetryCollector: invalid input in committed sequence");
    }
    tracker_.cover_transition(at, input);
    at = *next;
    tracker_.visit_state(at);
  }
  ++committed_;
  curve_.add(CoveragePoint{committed_,
                           static_cast<std::uint64_t>(tracker_.states_visited()),
                           static_cast<std::uint64_t>(
                               tracker_.transitions_covered())});
}

void CoverageTelemetryCollector::commit_batch(
    std::span<const std::vector<std::vector<bool>>> batch) {
  // Phase 1 — lane-parallel replay: every sequence is a lane; one
  // step_batch round advances all lanes that still have steps left. The
  // traces are only recorded here, not yet folded, because fold order (not
  // replay order) is what the convergence curve observes.
  const std::size_t n = batch.size();
  std::vector<std::uint64_t> at(n, model_.reset_state());
  std::vector<std::size_t> pos(n, 0);
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> trace(n);
  for (std::size_t l = 0; l < n; ++l) trace[l].reserve(batch[l].size());

  std::vector<std::size_t> running(n);
  for (std::size_t l = 0; l < n; ++l) running[l] = l;
  std::vector<std::uint64_t> states, inputs;
  std::vector<std::optional<std::uint64_t>> next;
  while (!running.empty()) {
    std::erase_if(running,
                  [&](std::size_t l) { return pos[l] >= batch[l].size(); });
    if (running.empty()) break;
    states.clear();
    inputs.clear();
    for (const std::size_t l : running) {
      states.push_back(at[l]);
      inputs.push_back(model::TestModel::pack_bits(batch[l][pos[l]]));
    }
    next.assign(running.size(), std::nullopt);
    model_.step_batch(states, inputs, next);
    for (std::size_t k = 0; k < running.size(); ++k) {
      if (!next[k].has_value()) {
        throw std::domain_error(
            "CoverageTelemetryCollector: invalid input in committed sequence");
      }
      const std::size_t l = running[k];
      trace[l].emplace_back(at[l], inputs[k]);
      at[l] = *next[k];
      ++pos[l];
    }
  }

  // Phase 2 — fold in batch order, mirroring commit_sequence exactly.
  for (std::size_t l = 0; l < n; ++l) {
    tracker_.visit_state(model_.reset_state());
    for (const auto& [state, input] : trace[l]) {
      tracker_.cover_transition(state, input);
    }
    // visit_state of every post-step state: entry j+1's source state, then
    // the lane's final state.
    for (std::size_t j = 1; j < trace[l].size(); ++j) {
      tracker_.visit_state(trace[l][j].first);
    }
    if (!trace[l].empty()) tracker_.visit_state(at[l]);
    ++committed_;
    curve_.add(
        CoveragePoint{committed_,
                      static_cast<std::uint64_t>(tracker_.states_visited()),
                      static_cast<std::uint64_t>(
                          tracker_.transitions_covered())});
  }
}

CoverageTelemetry CoverageTelemetryCollector::snapshot() const {
  CoverageTelemetry out;
  out.curve_budget = curve_.budget();
  out.convergence = curve_.points();
  out.distinct_transitions =
      static_cast<std::uint64_t>(tracker_.transitions_covered());
  tracker_.for_each_transition_hit([&](std::uint64_t hits) {
    ++out.transition_hits[histogram_bucket_index(hits)];
    out.max_transition_hits = std::max(out.max_transition_hits, hits);
  });
  return out;
}

}  // namespace simcov::obs
