#include "obs/coverage_telemetry.hpp"

#include <algorithm>
#include <stdexcept>

namespace simcov::obs {

// ---------------------------------------------------------------------------
// CoverageCurveBuilder
// ---------------------------------------------------------------------------

CoverageCurveBuilder::CoverageCurveBuilder(std::size_t budget)
    : budget_(std::max<std::size_t>(2, budget)) {}

void CoverageCurveBuilder::add(const CoveragePoint& point) {
  ++appended_;
  last_ = point;
  if (appended_ % stride_ != 0) return;
  if (kept_.size() + 1 > budget_) {
    // Budget full: keep every other point (kept_[j] holds append index
    // (j+1)*stride, so the survivors of a doubled stride are the odd
    // 0-based positions) and double the stride.
    std::vector<CoveragePoint> thinned;
    thinned.reserve(kept_.size() / 2 + 1);
    for (std::size_t j = 1; j < kept_.size(); j += 2) {
      thinned.push_back(kept_[j]);
    }
    kept_ = std::move(thinned);
    stride_ *= 2;
    if (appended_ % stride_ != 0) return;
  }
  kept_.push_back(point);
}

std::vector<CoveragePoint> CoverageCurveBuilder::points() const {
  std::vector<CoveragePoint> out = kept_;
  if (last_.has_value() &&
      (out.empty() || out.back().sequence != last_->sequence)) {
    out.push_back(*last_);
  }
  return out;
}

// ---------------------------------------------------------------------------
// CoverageTelemetryCollector
// ---------------------------------------------------------------------------

CoverageTelemetryCollector::CoverageTelemetryCollector(model::TestModel& model,
                                                       std::size_t curve_budget)
    : model_(model), curve_(curve_budget) {}

void CoverageTelemetryCollector::commit_sequence(
    const std::vector<std::vector<bool>>& steps) {
  // Mirror TestModel::evaluate's accounting exactly, one sequence at a time.
  std::uint64_t at = model_.reset_state();
  tracker_.visit_state(at);
  for (const auto& bits : steps) {
    const std::uint64_t input = model::TestModel::pack_bits(bits);
    const auto next = model_.step(at, input);
    if (!next.has_value()) {
      throw std::domain_error(
          "CoverageTelemetryCollector: invalid input in committed sequence");
    }
    tracker_.cover_transition(at, input);
    at = *next;
    tracker_.visit_state(at);
  }
  ++committed_;
  curve_.add(CoveragePoint{committed_,
                           static_cast<std::uint64_t>(tracker_.states_visited()),
                           static_cast<std::uint64_t>(
                               tracker_.transitions_covered())});
}

CoverageTelemetry CoverageTelemetryCollector::snapshot() const {
  CoverageTelemetry out;
  out.curve_budget = curve_.budget();
  out.convergence = curve_.points();
  out.distinct_transitions =
      static_cast<std::uint64_t>(tracker_.transitions_covered());
  tracker_.for_each_transition_hit([&](std::uint64_t hits) {
    ++out.transition_hits[histogram_bucket_index(hits)];
    out.max_transition_hits = std::max(out.max_transition_hits, hits);
  });
  return out;
}

}  // namespace simcov::obs
