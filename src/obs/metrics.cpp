#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace simcov::obs {

namespace {

std::uint64_t seconds_to_ns(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const double ns = seconds * 1e9;
  if (ns >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(ns);
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t quantile_upper_bound(
    const std::array<std::uint64_t, kHistogramBuckets>& buckets,
    std::uint64_t count, double q) {
  if (count == 0) return 0;
  // Rank of the q-quantile, 1-based: the smallest bucket whose cumulative
  // count reaches it. ceil(q * count) clamped to [1, count].
  const auto rank = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(
             count, static_cast<std::uint64_t>(
                        std::ceil(q * static_cast<double>(count)))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return histogram_bucket_upper_bound(i);
  }
  return histogram_bucket_upper_bound(kHistogramBuckets - 1);
}

}  // namespace

std::size_t histogram_bucket_index(std::uint64_t value) {
  if (value == 0) return 0;
  return std::min<std::size_t>(std::bit_width(value), kHistogramBuckets - 1);
}

std::uint64_t histogram_bucket_upper_bound(std::size_t index) {
  if (index == 0) return 0;
  if (index >= kHistogramBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return (std::uint64_t{1} << index) - 1;
}

// ---------------------------------------------------------------------------
// EventSink mapping
// ---------------------------------------------------------------------------

void MetricsRegistry::span(Stage stage, double seconds) {
  observe(stage, "span_ns", seconds_to_ns(seconds));
}

void MetricsRegistry::counter(Stage stage, std::string_view name,
                              std::uint64_t value) {
  add_counter(stage, name, value);
}

void MetricsRegistry::gauge(Stage stage, std::string_view name,
                            std::uint64_t value) {
  max_gauge(stage, name, value);
}

void MetricsRegistry::item(Stage stage, std::string_view kind,
                           std::uint64_t id, std::uint64_t value) {
  (void)id;
  observe(stage, kind, value);
}

void MetricsRegistry::latency(Stage stage, std::string_view kind,
                              std::uint64_t id, double seconds) {
  (void)id;
  // One histogram per latency kind; the name carries the unit so the
  // Prometheus export and report JSON stay self-describing.
  std::string name;
  name.reserve(kind.size() + 11);
  name.append(kind);
  name.append(".latency_ns");
  observe(stage, name, seconds_to_ns(seconds));
}

// ---------------------------------------------------------------------------
// Direct API
// ---------------------------------------------------------------------------

MetricsRegistry::Shard& MetricsRegistry::shard_for(Stage stage,
                                                   std::string_view name) {
  const std::size_t h =
      std::hash<std::string_view>{}(name) * 31 + static_cast<std::size_t>(stage);
  return shards_[h % kShardCount];
}

template <typename Cell>
Cell& MetricsRegistry::cell(Shard& shard, CellMap<Cell> Shard::*map,
                            Stage stage, std::string_view name) {
  std::lock_guard lock(shard.mutex);
  CellMap<Cell>& cells = shard.*map;
  const auto it = cells.find(std::pair(stage, name));
  if (it != cells.end()) return *it->second;
  return *cells
              .emplace(std::pair(stage, std::string(name)),
                       std::make_unique<Cell>())
              .first->second;
}

void MetricsRegistry::add_counter(Stage stage, std::string_view name,
                                  std::uint64_t value) {
  Shard& shard = shard_for(stage, name);
  CounterCell& c = cell(shard, &Shard::counters, stage, name);
  c.value.fetch_add(value, std::memory_order_relaxed);
}

void MetricsRegistry::max_gauge(Stage stage, std::string_view name,
                                std::uint64_t value) {
  Shard& shard = shard_for(stage, name);
  GaugeCell& g = cell(shard, &Shard::gauges, stage, name);
  atomic_max(g.value, value);
}

void MetricsRegistry::observe(Stage stage, std::string_view name,
                              std::uint64_t value) {
  Shard& shard = shard_for(stage, name);
  HistogramCell& h = cell(shard, &Shard::histograms, stage, name);
  h.buckets[histogram_bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_max(h.max, value);
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

MetricsSummary MetricsRegistry::summary() const {
  MetricsSummary out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, c] : shard.counters) {
      out.counters.push_back(
          {key.first, key.second, c->value.load(std::memory_order_relaxed)});
    }
    for (const auto& [key, g] : shard.gauges) {
      out.gauges.push_back(
          {key.first, key.second, g->value.load(std::memory_order_relaxed)});
    }
    for (const auto& [key, h] : shard.histograms) {
      HistogramSummary s;
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        s.buckets[i] = h->buckets[i].load(std::memory_order_relaxed);
      }
      s.count = h->count.load(std::memory_order_relaxed);
      s.sum = h->sum.load(std::memory_order_relaxed);
      s.max = h->max.load(std::memory_order_relaxed);
      s.p50 = quantile_upper_bound(s.buckets, s.count, 0.50);
      s.p90 = quantile_upper_bound(s.buckets, s.count, 0.90);
      s.p99 = quantile_upper_bound(s.buckets, s.count, 0.99);
      out.histograms.push_back({key.first, key.second, std::move(s)});
    }
  }
  const auto by_key = [](const auto& a, const auto& b) {
    if (a.stage != b.stage) return a.stage < b.stage;
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_key);
  std::sort(out.gauges.begin(), out.gauges.end(), by_key);
  std::sort(out.histograms.begin(), out.histograms.end(), by_key);
  return out;
}

}  // namespace simcov::obs
