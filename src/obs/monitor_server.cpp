#include "obs/monitor_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/json.hpp"
#include "obs/exporters.hpp"

namespace simcov::obs {

namespace {

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Writes the whole buffer, retrying on short writes / EINTR.
bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, 0);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

void send_response(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (write_all(fd, head.data(), head.size())) {
    write_all(fd, response.body.data(), response.body.size());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// MonitorServer
// ---------------------------------------------------------------------------

MonitorServer::MonitorServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("MonitorServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    close_fd(listen_fd_);
    throw std::runtime_error(std::string("MonitorServer: cannot bind port ") +
                             std::to_string(port) + ": " +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    close_fd(listen_fd_);
    throw std::runtime_error("MonitorServer: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

MonitorServer::~MonitorServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  close_fd(listen_fd_);
}

void MonitorServer::serve_loop() {
  // Poll with a short timeout so destruction is observed within ~100ms
  // without needing a self-pipe.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    close_fd(fd);
  }
}

void MonitorServer::handle_connection(int fd) {
  // Read until the end of the request head; scrape requests are tiny, so a
  // fixed cap (8 KiB) is a correctness bound, not a tuning knob.
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 1000) <= 0) return;  // slow client: drop it
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  // "GET <path> HTTP/1.1"
  const auto line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_response(fd, HttpResponse{405, "text/plain; charset=utf-8",
                                   "malformed request\n"});
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const auto query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  if (method != "GET") {
    send_response(fd, HttpResponse{405, "text/plain; charset=utf-8",
                                   "GET only\n"});
    return;
  }
  if (auto response = handler_(path)) {
    send_response(fd, *response);
  } else {
    send_response(fd, HttpResponse{404, "text/plain; charset=utf-8",
                                   "not found\n"});
  }
}

std::optional<HttpResult> http_get(std::uint16_t port,
                                   const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close_fd(fd);
    return std::nullopt;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!write_all(fd, request.data(), request.size())) {
    close_fd(fd);
    return std::nullopt;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  close_fd(fd);

  // "HTTP/1.1 <status> ..." + head, blank line, body.
  if (response.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  const auto sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) return std::nullopt;
  HttpResult result;
  result.status = std::atoi(response.c_str() + sp + 1);
  const auto head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  result.body = response.substr(head_end + 4);
  return result;
}

// ---------------------------------------------------------------------------
// CampaignMonitor
// ---------------------------------------------------------------------------

namespace {

/// Bucket-upper-bound quantile over a merged bucket array — the same
/// account MetricsRegistry::summary uses per histogram, applied to
/// cross-stage merges (queue wait spans every stage that runs a pool).
std::uint64_t merged_quantile(
    const std::array<std::uint64_t, kHistogramBuckets>& buckets,
    std::uint64_t count, double q) {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, q * static_cast<double>(count) + 0.5));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return histogram_bucket_upper_bound(i);
  }
  return histogram_bucket_upper_bound(kHistogramBuckets - 1);
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

CampaignMonitor::CampaignMonitor(MonitorOptions options)
    : options_(options) {
  WatchdogOptions wopt;
  wopt.interval_seconds =
      options_.watchdog_seconds > 0.0 ? options_.watchdog_seconds : 1.0;
  wopt.stall_intervals = options_.stall_intervals;
  wopt.series_capacity = options_.series_capacity;
  watchdog_ = std::make_unique<Watchdog>(registry_, wopt);
  // Stall events land in the monitor's own registry (surfacing on /metrics
  // as simcov_campaign_stall_total), never on the campaign report.
  watchdog_->set_stall_sink(&registry_);
  if (options_.port >= 0) {
    server_ = std::make_unique<MonitorServer>(
        static_cast<std::uint16_t>(options_.port),
        [this](const std::string& path) { return route(path); });
  }
}

CampaignMonitor::~CampaignMonitor() {
  server_.reset();  // stop serving before the views it reads die
  watchdog_->stop();
}

std::uint16_t CampaignMonitor::port() const {
  return server_ != nullptr ? server_->port() : 0;
}

void CampaignMonitor::begin_campaign(std::uint64_t transitions_total,
                                     std::function<std::uint64_t()> queue_depth,
                                     std::function<void()> cancel) {
  progress_.begin(transitions_total);
  watchdog_->set_queue_depth_fn(std::move(queue_depth));
  watchdog_->set_on_stall(options_.cancel_on_stall ? std::move(cancel)
                                                   : std::function<void()>());
  if (options_.watchdog_seconds > 0.0) watchdog_->start();
}

void CampaignMonitor::on_commit(std::uint64_t committed_sequences,
                                std::uint64_t committed_steps,
                                std::uint64_t states_visited,
                                std::uint64_t transitions_covered) {
  progress_.on_commit(committed_sequences, committed_steps, states_visited,
                      transitions_covered);
}

void CampaignMonitor::end_campaign() {
  watchdog_->stop();
  // Clear the campaign-scoped hooks: the pool and the token they capture
  // die with the pipeline run, while the monitor (and its HTTP server)
  // live on.
  watchdog_->set_queue_depth_fn(nullptr);
  watchdog_->set_on_stall(nullptr);
  progress_.end();
}

std::string CampaignMonitor::metrics_text() const {
  return write_prometheus_text(registry_);
}

std::string CampaignMonitor::health_text() const {
  return watchdog_->stalled() ? "stalled\n" : "ok\n";
}

std::string CampaignMonitor::progress_json() const {
  const ProgressSnapshot p = progress_.snapshot();
  const MetricsSummary summary = registry_.summary();
  core::JsonWriter w;
  w.begin_object().field("report", "progress");

  w.begin_object("campaign")
      .field("active", p.active)
      .field("committed_sequences", p.committed_sequences)
      .field("committed_steps", p.committed_steps)
      .field("states_visited", p.states_visited)
      .field("transitions_covered", p.transitions_covered)
      .field("transitions_total", p.transitions_total)
      .field("transition_coverage", p.transition_coverage)
      .field("elapsed_seconds", p.elapsed_seconds)
      .field("sequences_per_second", p.sequences_per_second);
  if (p.eta_seconds.has_value()) {
    w.field("eta_seconds", *p.eta_seconds);
  } else {
    w.null_field("eta_seconds");
  }
  w.end_object();

  // Per-stage work items: every non-latency histogram is an item stream
  // ("sequence", "program", "clean_run", …) whose count is the stage's
  // throughput numerator; its sibling "<kind>.latency_ns" histogram (when
  // the stage emits latencies) carries the p50/p99.
  w.begin_array("stages");
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const auto stage = static_cast<Stage>(s);
    bool any = false;
    for (const auto& h : summary.histograms) {
      if (h.stage == stage) {
        any = true;
        break;
      }
    }
    for (const auto& c : summary.counters) {
      if (c.stage == stage) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    w.element_object().field("stage", stage_name(stage));
    w.begin_array("items");
    for (const auto& h : summary.histograms) {
      if (h.stage != stage || h.name == "span_ns" ||
          ends_with(h.name, ".latency_ns")) {
        continue;
      }
      w.element_object()
          .field("kind", h.name)
          .field("count", h.value.count);
      if (p.elapsed_seconds > 0.0) {
        w.field("throughput_per_second",
                static_cast<double>(h.value.count) / p.elapsed_seconds);
      }
      const std::string latency_name = h.name + ".latency_ns";
      for (const auto& lat : summary.histograms) {
        if (lat.stage == stage && lat.name == latency_name) {
          w.field("latency_p50_ns", lat.value.p50)
              .field("latency_p99_ns", lat.value.p99);
          break;
        }
      }
      w.end_object();
    }
    w.end_array().end_object();
  }
  w.end_array();

  // Queue wait, merged across every stage that ran a pool loop.
  {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    for (const auto& h : summary.histograms) {
      if (h.name != "queue_wait.latency_ns") continue;
      count += h.value.count;
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        buckets[i] += h.value.buckets[i];
      }
    }
    w.begin_object("queue_wait_ns")
        .field("count", count)
        .field("p50", merged_quantile(buckets, count, 0.50))
        .field("p99", merged_quantile(buckets, count, 0.99))
        .end_object();
  }

  // Store hit ratio (only when a store reported activity).
  {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto& c : summary.counters) {
      if (c.name == "store.hit") hits += c.value;
      if (c.name == "store.miss") misses += c.value;
    }
    if (hits + misses > 0) {
      w.begin_object("store")
          .field("hits", hits)
          .field("misses", misses)
          .field("hit_ratio", static_cast<double>(hits) /
                                  static_cast<double>(hits + misses))
          .end_object();
    }
  }

  // BDD engine levels (emitted by the symbolic stage as gauges).
  {
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
    bool have = false;
    for (const auto& g : summary.gauges) {
      if (g.name == "bdd_live_nodes") {
        live = g.value;
        have = true;
      } else if (g.name == "bdd_peak_nodes") {
        peak = g.value;
        have = true;
      }
    }
    if (have) {
      w.begin_object("bdd")
          .field("live_nodes", live)
          .field("peak_nodes", peak)
          .end_object();
    }
  }

  // Watchdog: alarm state, stall history, and the sampled time series.
  {
    const auto stalls = watchdog_->stalls();
    const auto series = watchdog_->series();
    w.begin_object("watchdog")
        .field("interval_seconds", watchdog_->options().interval_seconds)
        .field("stall_intervals",
               std::uint64_t{watchdog_->options().stall_intervals})
        .field("ticks", watchdog_->ticks())
        .field("stalled", watchdog_->stalled());
    w.begin_array("stalls");
    for (const auto& e : stalls) {
      w.element_object()
          .field("at_seconds", e.at_seconds)
          .field("stage", stage_name(e.stage))
          .field("committed", e.committed)
          .field("queue_depth", e.queue_depth)
          .field("idle_intervals", e.idle_intervals)
          .end_object();
    }
    w.end_array();
    w.begin_array("series");
    for (const auto& sample : series) {
      w.element_object()
          .field("at_seconds", sample.at_seconds)
          .field("committed", sample.committed)
          .field("queue_depth", sample.queue_depth)
          .end_object();
    }
    w.end_array().end_object();
  }

  w.end_object();
  return w.str();
}

std::optional<HttpResponse> CampaignMonitor::route(
    const std::string& path) const {
  if (path == "/metrics") {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        metrics_text()};
  }
  if (path == "/progress") {
    return HttpResponse{200, "application/json", progress_json()};
  }
  if (path == "/healthz") {
    return HttpResponse{200, "text/plain; charset=utf-8", health_text()};
  }
  return std::nullopt;
}

}  // namespace simcov::obs
