#include "obs/event_sink.hpp"

#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "core/json.hpp"

namespace simcov::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kModelBuild: return "model_build";
    case Stage::kSymbolic: return "symbolic";
    case Stage::kTour: return "tour";
    case Stage::kConcretize: return "concretize";
    case Stage::kSimulate: return "simulate";
    case Stage::kCompare: return "compare";
    case Stage::kMutantReplay: return "mutant_replay";
  }
  return "?";
}

const char* status_name(StageStatus status) {
  switch (status) {
    case StageStatus::kOk: return "ok";
    case StageStatus::kBudgetExhausted: return "budget_exhausted";
    case StageStatus::kCancelled: return "cancelled";
  }
  return "?";
}

EventSink& null_sink() {
  static EventSink sink;
  return sink;
}

// ---------------------------------------------------------------------------
// SpanRecorder
// ---------------------------------------------------------------------------

void SpanRecorder::span(Stage stage, double seconds) {
  std::lock_guard lock(mutex_);
  seconds_[static_cast<std::size_t>(stage)] += seconds;
}

void SpanRecorder::status(Stage stage, StageStatus status) {
  std::lock_guard lock(mutex_);
  status_[static_cast<std::size_t>(stage)] = status;
}

double SpanRecorder::seconds(Stage stage) const {
  std::lock_guard lock(mutex_);
  return seconds_[static_cast<std::size_t>(stage)];
}

double SpanRecorder::total_seconds() const {
  std::lock_guard lock(mutex_);
  double total = 0.0;
  for (const double s : seconds_) total += s;
  return total;
}

StageStatus SpanRecorder::stage_status(Stage stage) const {
  std::lock_guard lock(mutex_);
  return status_[static_cast<std::size_t>(stage)];
}

// ---------------------------------------------------------------------------
// MultiSink
// ---------------------------------------------------------------------------

MultiSink::MultiSink(std::vector<EventSink*> sinks) {
  for (EventSink* sink : sinks) add(sink);
}

void MultiSink::add(EventSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void MultiSink::span(Stage stage, double seconds) {
  for (EventSink* sink : sinks_) sink->span(stage, seconds);
}

void CounterRecorder::counter(Stage stage, std::string_view name,
                              std::uint64_t value) {
  (void)stage;
  std::lock_guard lock(mutex_);
  const auto it = counts_.find(name);
  if (it != counts_.end()) {
    it->second += value;
  } else {
    counts_.emplace(std::string(name), value);
  }
}

void CounterRecorder::gauge(Stage stage, std::string_view name,
                            std::uint64_t value) {
  (void)stage;
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    if (value > it->second) it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

std::uint64_t CounterRecorder::value(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t CounterRecorder::gauge_value(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void MultiSink::counter(Stage stage, std::string_view name,
                        std::uint64_t value) {
  for (EventSink* sink : sinks_) sink->counter(stage, name, value);
}

void MultiSink::gauge(Stage stage, std::string_view name,
                      std::uint64_t value) {
  for (EventSink* sink : sinks_) sink->gauge(stage, name, value);
}

void MultiSink::item(Stage stage, std::string_view kind, std::uint64_t id,
                     std::uint64_t value) {
  for (EventSink* sink : sinks_) sink->item(stage, kind, id, value);
}

void MultiSink::latency(Stage stage, std::string_view kind, std::uint64_t id,
                        double seconds) {
  for (EventSink* sink : sinks_) sink->latency(stage, kind, id, seconds);
}

void MultiSink::status(Stage stage, StageStatus status) {
  for (EventSink* sink : sinks_) sink->status(stage, status);
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(EventSink& sink, Stage stage)
    : sink_(sink), stage_(stage), start_(std::chrono::steady_clock::now()) {}

double ScopedSpan::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

ScopedSpan::~ScopedSpan() { sink_.span(stage_, elapsed()); }

// ---------------------------------------------------------------------------
// JsonlTraceSink
// ---------------------------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string& path,
                               std::uint64_t max_bytes,
                               std::size_t max_rotated)
    : out_(path),
      path_(path),
      max_bytes_(max_bytes),
      max_rotated_(max_rotated) {
  if (!out_) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
}

void JsonlTraceSink::rotate_locked() {
  out_.close();
  // Shift the suffix chain from the oldest end: .(n-1) -> .n, …, path -> .1.
  std::error_code ec;  // rename failures only lose history, never the live file
  std::filesystem::remove(path_ + "." + std::to_string(max_rotated_), ec);
  for (std::size_t i = max_rotated_; i > 1; --i) {
    std::filesystem::rename(path_ + "." + std::to_string(i - 1),
                            path_ + "." + std::to_string(i), ec);
  }
  std::filesystem::rename(path_, path_ + ".1", ec);
  out_.open(path_, std::ios::trunc);
  bytes_written_ = 0;
}

void JsonlTraceSink::write_line(const std::string& line) {
  std::lock_guard lock(mutex_);
  const std::uint64_t line_bytes = line.size() + 1;
  if (max_bytes_ > 0 && max_rotated_ > 0 && bytes_written_ > 0 &&
      bytes_written_ + line_bytes > max_bytes_) {
    rotate_locked();
  }
  out_ << line << '\n';
  bytes_written_ += line_bytes;
}

void JsonlTraceSink::span(Stage stage, double seconds) {
  core::JsonWriter w;
  w.begin_object()
      .field("event", "span")
      .field("stage", stage_name(stage))
      .field("seconds", seconds)
      .end_object();
  write_line(w.str());
}

void JsonlTraceSink::counter(Stage stage, std::string_view name,
                             std::uint64_t value) {
  core::JsonWriter w;
  w.begin_object()
      .field("event", "counter")
      .field("stage", stage_name(stage))
      .field("name", std::string(name))
      .field("value", value)
      .end_object();
  write_line(w.str());
}

void JsonlTraceSink::gauge(Stage stage, std::string_view name,
                           std::uint64_t value) {
  core::JsonWriter w;
  w.begin_object()
      .field("event", "gauge")
      .field("stage", stage_name(stage))
      .field("name", std::string(name))
      .field("value", value)
      .end_object();
  write_line(w.str());
}

void JsonlTraceSink::item(Stage stage, std::string_view kind,
                          std::uint64_t id, std::uint64_t value) {
  core::JsonWriter w;
  w.begin_object()
      .field("event", "item")
      .field("stage", stage_name(stage))
      .field("kind", std::string(kind))
      .field("id", id)
      .field("value", value)
      .end_object();
  write_line(w.str());
}

void JsonlTraceSink::latency(Stage stage, std::string_view kind,
                             std::uint64_t id, double seconds) {
  core::JsonWriter w;
  w.begin_object()
      .field("event", "latency")
      .field("stage", stage_name(stage))
      .field("kind", std::string(kind))
      .field("id", id)
      .field("seconds", seconds)
      .end_object();
  write_line(w.str());
}

void JsonlTraceSink::status(Stage stage, StageStatus status) {
  core::JsonWriter w;
  w.begin_object()
      .field("event", "status")
      .field("stage", stage_name(stage))
      .field("status", status_name(status))
      .end_object();
  write_line(w.str());
  // Stage boundaries are where a killed campaign wants its trace intact:
  // everything before the last status survives even an abrupt exit.
  flush();
}

void JsonlTraceSink::flush() {
  std::lock_guard lock(mutex_);
  out_.flush();
}

}  // namespace simcov::obs
