// MetricsRegistry: the aggregation backend of the obs event flow.
//
// The registry is an EventSink that folds the raw event stream into three
// kinds of metric, all keyed by (Stage, name):
//
//   * counters   — summed `counter` events (store.hit, checkpoint.write, …)
//   * gauges     — max'ed `gauge` events (sequences_in_flight_peak, …)
//   * histograms — fixed-bucket log2 distributions fed by `span` events
//     (name "span_ns", value in nanoseconds), `item` events (name = the item
//     kind, value = the item's value field, e.g. steps per sequence), and
//     `latency` events (name = kind + ".latency_ns", value in nanoseconds)
//
// Histograms use 64 power-of-two buckets over uint64 ticks: value v lands in
// bucket bit_width(v), whose upper bound is 2^i - 1. Quantiles (p50/p90/p99)
// are reported as the upper bound of the bucket where the cumulative count
// crosses the rank — ≤2x relative error by construction, which is plenty for
// latency triage — while max is exact. The bucket scheme is fixed (no
// rebalancing), so merging and golden-testing summaries is trivial.
//
// Hot-path cost: one sharded mutex acquire to resolve (Stage, name) → entry,
// then lock-free atomic updates. Shards are selected by key hash, so
// concurrent workers observing different metrics rarely contend.
//
// Wall-clock derived values (span/latency histograms) are inherently
// nondeterministic run to run; consumers that need bit-identical reports
// erase the "metrics" JSON section (see tests' semantic_fingerprint), the
// same way they already erase "timings".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_sink.hpp"

namespace simcov::obs {

inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index a raw value lands in: 0 for 0, otherwise bit_width(value)
/// clamped to the last bucket. Exposed for tests and exporters.
[[nodiscard]] std::size_t histogram_bucket_index(std::uint64_t value);

/// Inclusive upper bound of a bucket: 0 for bucket 0, 2^i - 1 for bucket i,
/// UINT64_MAX for the last bucket.
[[nodiscard]] std::uint64_t histogram_bucket_upper_bound(std::size_t index);

/// Point-in-time snapshot of one histogram.
struct HistogramSummary {
  std::uint64_t count = 0;  ///< total observations
  std::uint64_t sum = 0;    ///< sum of raw observed values
  std::uint64_t max = 0;    ///< exact maximum observed value
  std::uint64_t p50 = 0;    ///< bucket-upper-bound quantiles
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// One named metric in a summary, ordered by (stage, name).
template <typename Value>
struct MetricEntry {
  Stage stage{};
  std::string name;
  Value value{};
};

/// Everything the registry has aggregated, in deterministic (stage, name)
/// order — the input to write_prometheus_text and the report JSON section.
struct MetricsSummary {
  std::vector<MetricEntry<std::uint64_t>> counters;
  std::vector<MetricEntry<std::uint64_t>> gauges;
  std::vector<MetricEntry<HistogramSummary>> histograms;
};

/// Thread-safe metrics aggregation: attach it to a campaign (alone or via
/// MultiSink) and read summary() when the campaign returns.
class MetricsRegistry final : public EventSink {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // EventSink: the event → metric mapping described in the file header.
  void span(Stage stage, double seconds) override;
  void counter(Stage stage, std::string_view name,
               std::uint64_t value) override;
  void gauge(Stage stage, std::string_view name, std::uint64_t value) override;
  void item(Stage stage, std::string_view kind, std::uint64_t id,
            std::uint64_t value) override;
  void latency(Stage stage, std::string_view kind, std::uint64_t id,
               double seconds) override;

  // Direct API for code that aggregates without the event vocabulary.
  void add_counter(Stage stage, std::string_view name, std::uint64_t value);
  void max_gauge(Stage stage, std::string_view name, std::uint64_t value);
  void observe(Stage stage, std::string_view name, std::uint64_t value);

  [[nodiscard]] MetricsSummary summary() const;

 private:
  struct CounterCell {
    std::atomic<std::uint64_t> value{0};
  };
  struct GaugeCell {
    std::atomic<std::uint64_t> value{0};
  };
  struct HistogramCell {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  struct KeyLess {
    using is_transparent = void;
    bool operator()(const std::pair<Stage, std::string>& a,
                    const std::pair<Stage, std::string_view>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return std::string_view(a.second) < b.second;
    }
    bool operator()(const std::pair<Stage, std::string_view>& a,
                    const std::pair<Stage, std::string>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second < std::string_view(b.second);
    }
    bool operator()(const std::pair<Stage, std::string>& a,
                    const std::pair<Stage, std::string>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    }
  };

  template <typename Cell>
  using CellMap =
      std::map<std::pair<Stage, std::string>, std::unique_ptr<Cell>, KeyLess>;

  /// Keys hash to a shard; each shard owns its maps under one mutex.
  /// Cells are heap-allocated so their atomics stay valid after the shard
  /// lock is released — the hot path holds the lock only for the lookup.
  struct Shard {
    mutable std::mutex mutex;
    CellMap<CounterCell> counters;
    CellMap<GaugeCell> gauges;
    CellMap<HistogramCell> histograms;
  };

  static constexpr std::size_t kShardCount = 16;

  [[nodiscard]] Shard& shard_for(Stage stage, std::string_view name);

  template <typename Cell>
  [[nodiscard]] static Cell& cell(Shard& shard, CellMap<Cell> Shard::*map,
                                  Stage stage, std::string_view name);

  std::array<Shard, kShardCount> shards_;
};

}  // namespace simcov::obs
