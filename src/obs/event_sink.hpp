// The instrumentation seam of the validation pipeline.
//
// Every pipeline stage reports through one interface — obs::EventSink —
// instead of hand-rolled per-phase stopwatch plumbing:
//
//   * span(stage, seconds):   a completed timing slice of a stage. Stages
//     run in interleaved batches (the tour streams while earlier sequences
//     simulate), so a stage emits many spans; consumers accumulate.
//   * counter(stage, name, value): one occurrence worth `value` of a named
//     event-like quantity (store.hit, checkpoint.write). Consumers SUM
//     counter emissions — snapshot-style values must use gauge instead.
//   * gauge(stage, name, value):  a named level snapshot (e.g. the peak
//     number of in-flight sequences). Consumers keep the MAX over
//     emissions, so re-emitting a gauge is never wrong by construction.
//   * item(stage, kind, id, value): one unit of work finishing (a sequence
//     generated, a program concretized, a clean run simulated). Item events
//     may arrive from worker threads; implementations must be thread-safe.
//   * latency(stage, kind, id, seconds): wall-clock latency of one unit of
//     work (a sequence pulled, a program concretized, a clean run
//     simulated, an index' queue wait). Like item, may arrive from worker
//     threads concurrently.
//   * status(stage, status):  how the stage ended (ok / budget / cancelled).
//
// SpanRecorder folds spans back into the legacy PhaseTimings view;
// CounterRecorder aggregates counters (summed) and gauges (max);
// MetricsRegistry (obs/metrics.hpp) turns the full event flow into
// counters and latency histograms; JsonlTraceSink streams every event as
// one JSON object per line (the bench binaries' --trace output);
// PerfettoTraceSink (obs/exporters.hpp) writes Chrome trace-event JSON;
// MultiSink fans out to any combination.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace simcov::obs {

/// The stages of the Figure-1 flow (plus the Theorem-3 mutant replay).
enum class Stage : std::uint8_t {
  kModelBuild,    ///< circuit build + backend selection + reachable counts
  kSymbolic,      ///< optional BDD reachability snapshot
  kTour,          ///< test-sequence generation (streamed or materialized)
  kConcretize,    ///< tour sequence -> DLX program
  kSimulate,      ///< clean spec-vs-impl runs
  kCompare,       ///< per-bug exposure runs
  kMutantReplay,  ///< Theorem-3 model-level mutant replay
};
inline constexpr std::size_t kStageCount = 7;

[[nodiscard]] const char* stage_name(Stage stage);

/// How a stage ended.
enum class StageStatus : std::uint8_t {
  kOk,
  kBudgetExhausted,  ///< deadline or max-items budget hit; output truncated
  kCancelled,        ///< cancellation token observed; output truncated
};

[[nodiscard]] const char* status_name(StageStatus status);

/// Pipeline instrumentation interface. Every method has a no-op default so
/// sinks override only what they consume. span/counter/status arrive from
/// the coordinating thread; item may arrive from pool workers concurrently.
class EventSink {
 public:
  virtual ~EventSink() = default;

  virtual void span(Stage stage, double seconds) {
    (void)stage;
    (void)seconds;
  }
  virtual void counter(Stage stage, std::string_view name,
                       std::uint64_t value) {
    (void)stage;
    (void)name;
    (void)value;
  }
  virtual void gauge(Stage stage, std::string_view name,
                     std::uint64_t value) {
    (void)stage;
    (void)name;
    (void)value;
  }
  virtual void item(Stage stage, std::string_view kind, std::uint64_t id,
                    std::uint64_t value) {
    (void)stage;
    (void)kind;
    (void)id;
    (void)value;
  }
  virtual void latency(Stage stage, std::string_view kind, std::uint64_t id,
                       double seconds) {
    (void)stage;
    (void)kind;
    (void)id;
    (void)seconds;
  }
  virtual void status(Stage stage, StageStatus status) {
    (void)stage;
    (void)status;
  }
};

/// Shared do-nothing sink: lets stages call `sink.span(...)` unconditionally.
[[nodiscard]] EventSink& null_sink();

/// Accumulates per-stage span seconds and final statuses — the source the
/// legacy PhaseTimings view is computed from (pipeline::timings_from_spans).
class SpanRecorder final : public EventSink {
 public:
  void span(Stage stage, double seconds) override;
  void status(Stage stage, StageStatus status) override;

  /// Accumulated seconds of one stage.
  [[nodiscard]] double seconds(Stage stage) const;
  /// Sum over every stage — the pipeline's total instrumented time.
  [[nodiscard]] double total_seconds() const;
  [[nodiscard]] StageStatus stage_status(Stage stage) const;

 private:
  mutable std::mutex mutex_;
  std::array<double, kStageCount> seconds_{};
  std::array<StageStatus, kStageCount> status_{};
};

/// Accumulates counter events by name (summed across stages and emissions)
/// and gauge events by name (max over emissions). The split makes summed
/// counters correct by construction: event-per-occurrence quantities
/// (`store.hit`, `checkpoint.write`, …) arrive as counters, level
/// snapshots (`sequences_in_flight_peak`) as gauges. Thread-safe.
class CounterRecorder final : public EventSink {
 public:
  void counter(Stage stage, std::string_view name,
               std::uint64_t value) override;
  void gauge(Stage stage, std::string_view name,
             std::uint64_t value) override;

  /// Total accumulated value of a counter name (0 when never emitted).
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  /// Maximum emitted value of a gauge name (0 when never emitted).
  [[nodiscard]] std::uint64_t gauge_value(std::string_view name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counts_;
  std::map<std::string, std::uint64_t, std::less<>> gauges_;
};

/// Forwards every event to each registered sink, in order.
class MultiSink final : public EventSink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<EventSink*> sinks);
  /// Ignores null pointers, so callers can pass optional sinks directly.
  void add(EventSink* sink);

  void span(Stage stage, double seconds) override;
  void counter(Stage stage, std::string_view name,
               std::uint64_t value) override;
  void gauge(Stage stage, std::string_view name,
             std::uint64_t value) override;
  void item(Stage stage, std::string_view kind, std::uint64_t id,
            std::uint64_t value) override;
  void latency(Stage stage, std::string_view kind, std::uint64_t id,
               double seconds) override;
  void status(Stage stage, StageStatus status) override;

 private:
  std::vector<EventSink*> sinks_;
};

/// RAII span: measures from construction to destruction and emits one
/// span event. Stages open one per batch, so accumulation is the sink's job.
class ScopedSpan {
 public:
  ScopedSpan(EventSink& sink, Stage stage);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Seconds elapsed so far (the span is still emitted at destruction).
  [[nodiscard]] double elapsed() const;

 private:
  EventSink& sink_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_;
};

/// Streams events as JSON Lines — one object per event, e.g.
///   {"event":"span","stage":"tour","seconds":0.0123}
///   {"event":"item","stage":"simulate","kind":"clean_run","id":3,"value":6}
/// Writes are mutex-serialized; worker-thread item events may interleave
/// with coordinator events in file order, which is fine for a trace.
///
/// The stream flushes on every status event (stage boundaries are exactly
/// where a killed campaign wants its trace intact — pairs with the
/// checkpoint/resume story) and on explicit flush(); everything else is
/// buffered for throughput.
///
/// Long campaigns can emit per-item events for millions of sequences, so
/// the sink optionally rotates: when a write would push the current file
/// past `max_bytes`, the file is closed and renamed to `<path>.1` (an
/// existing `.1` shifts to `.2`, and so on up to `max_rotated` files, the
/// oldest falling off the end) and a fresh `<path>` is opened. Rotation
/// happens at line boundaries only — every file is valid JSONL on its own.
class JsonlTraceSink final : public EventSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  /// `max_bytes` 0 disables rotation (the pre-rotation behaviour);
  /// `max_rotated` is the number of `.N` files kept besides the live one.
  explicit JsonlTraceSink(const std::string& path,
                          std::uint64_t max_bytes = 0,
                          std::size_t max_rotated = 2);

  void span(Stage stage, double seconds) override;
  void counter(Stage stage, std::string_view name,
               std::uint64_t value) override;
  void gauge(Stage stage, std::string_view name,
             std::uint64_t value) override;
  void item(Stage stage, std::string_view kind, std::uint64_t id,
            std::uint64_t value) override;
  void latency(Stage stage, std::string_view kind, std::uint64_t id,
               double seconds) override;
  void status(Stage stage, StageStatus status) override;

  /// Pushes everything buffered so far to the file.
  void flush();

 private:
  void write_line(const std::string& line);
  /// Shifts path -> .1 -> .2 -> … (dropping the oldest) and reopens path.
  /// Caller holds the mutex.
  void rotate_locked();

  std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
  std::uint64_t max_bytes_ = 0;    ///< 0: rotation off
  std::size_t max_rotated_ = 2;
  std::uint64_t bytes_written_ = 0;  ///< bytes in the current file
};

}  // namespace simcov::obs
