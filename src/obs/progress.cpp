#include "obs/progress.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace simcov::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProgressEstimator::ProgressEstimator(Clock clock, std::size_t window)
    : clock_(clock ? std::move(clock) : Clock(&steady_seconds)),
      window_(std::max<std::size_t>(window, 4)) {}

void ProgressEstimator::begin(std::uint64_t transitions_total) {
  std::lock_guard lock(mutex_);
  active_ = true;
  started_at_ = clock_();
  committed_sequences_ = 0;
  committed_steps_ = 0;
  states_visited_ = 0;
  transitions_covered_ = 0;
  transitions_total_ = transitions_total;
  recent_.clear();
}

void ProgressEstimator::end() {
  std::lock_guard lock(mutex_);
  active_ = false;
}

void ProgressEstimator::on_commit(std::uint64_t committed_sequences,
                                  std::uint64_t committed_steps,
                                  std::uint64_t states_visited,
                                  std::uint64_t transitions_covered) {
  std::lock_guard lock(mutex_);
  committed_sequences_ = committed_sequences;
  committed_steps_ = committed_steps;
  states_visited_ = states_visited;
  transitions_covered_ = transitions_covered;
  recent_.push_back(Record{clock_(), transitions_covered});
  while (recent_.size() > window_) recent_.pop_front();
}

std::optional<double> ProgressEstimator::estimate_eta_locked() const {
  if (transitions_total_ == 0 ||
      transitions_covered_ >= transitions_total_) {
    return 0.0;
  }
  if (recent_.size() < 2) return std::nullopt;
  const double remaining =
      static_cast<double>(transitions_total_ - transitions_covered_);

  // Split the recent window into two halves by record count and compare
  // their coverage-discovery rates.
  const std::size_t half = recent_.size() / 2;
  const Record& a = recent_.front();
  const Record& m = recent_[half];
  const Record& b = recent_.back();
  const double dt1 = m.at - a.at;
  const double dt2 = b.at - m.at;
  const double gain1 = static_cast<double>(m.transitions - a.transitions);
  const double gain2 = static_cast<double>(b.transitions - m.transitions);
  if (!(dt2 > 0.0)) return std::nullopt;
  const double rate2 = gain2 / dt2;

  if (dt1 > 0.0 && gain1 > 0.0 && gain2 > 0.0) {
    const double rate1 = gain1 / dt1;
    if (rate2 < rate1) {
      // Decaying discovery: each successive half-window of duration dt2
      // gains r times the previous one's transitions, r = rate2/rate1.
      // The whole geometric tail tops out at gain2 * r / (1 - r); when the
      // remaining transitions exceed that, this curve never gets there.
      const double r = rate2 / rate1;
      const double tail = gain2 * r / (1.0 - r);
      if (remaining >= tail) return std::nullopt;
      // Smallest n with gain2 * (r + ... + r^n) >= remaining.
      const double n =
          std::log(1.0 - remaining * (1.0 - r) / (gain2 * r)) / std::log(r);
      return std::max(0.0, n * dt2);
    }
  }
  // Flat or accelerating discovery: linear extrapolation of the recent
  // rate is the best unbiased guess.
  if (!(rate2 > 0.0)) return std::nullopt;
  return remaining / rate2;
}

ProgressSnapshot ProgressEstimator::snapshot() const {
  std::lock_guard lock(mutex_);
  ProgressSnapshot s;
  s.active = active_;
  s.committed_sequences = committed_sequences_;
  s.committed_steps = committed_steps_;
  s.states_visited = states_visited_;
  s.transitions_covered = transitions_covered_;
  s.transitions_total = transitions_total_;
  if (transitions_total_ > 0) {
    s.transition_coverage = static_cast<double>(transitions_covered_) /
                            static_cast<double>(transitions_total_);
  }
  const double now = clock_();
  s.elapsed_seconds = active_ ? std::max(0.0, now - started_at_) : 0.0;
  if (s.elapsed_seconds > 0.0) {
    s.sequences_per_second =
        static_cast<double>(committed_sequences_) / s.elapsed_seconds;
  }
  s.eta_seconds = estimate_eta_locked();
  return s;
}

}  // namespace simcov::obs
