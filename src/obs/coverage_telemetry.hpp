// Deterministic coverage telemetry — the quantitative heart of the paper,
// made observable.
//
// Three artifacts, all keyed off *committed sequence indices* rather than
// wall-clock, so every one of them is bit-identical at any thread count and
// across a checkpoint/resume boundary:
//
//   * convergence curve — (sequence index, states visited, transitions
//     covered) after each committed sequence, downsampled by a
//     stride-doubling builder to a bounded point budget. The shape shows
//     how fast the method approaches full transition coverage (Theorem 2's
//     argument as a curve instead of a final scalar).
//   * transition hit histogram — log2-bucketed distribution of how many
//     times each distinct transition was exercised. A transition tour
//     should be nearly flat (balance ≈ 1); a random walk is heavy-tailed.
//   * exposure latency — sequences until first exposure, per bug (campaign)
//     or per mutant (Theorem-3 replay). Derived from the committed indices
//     the Compare / MutantReplay stages already record.
//
// The collector replays each committed sequence through the TestModel into
// its own hit-counting CoverageTracker, mirroring TestModel::evaluate's
// accounting exactly. Replay (not the stream's tracker) is deliberate: a
// store-replayed tour (store::StoredTourStream) has no live tracker, and a
// resumed campaign restores verdicts without regenerating per-sequence
// coverage — the replay path is the one account that is identical for
// live, cached, and resumed campaigns.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "model/test_model.hpp"
#include "obs/metrics.hpp"

namespace simcov::obs {

/// Coverage after the sequence with this 1-based committed index.
struct CoveragePoint {
  std::uint64_t sequence = 0;
  std::uint64_t states_visited = 0;
  std::uint64_t transitions_covered = 0;

  friend bool operator==(const CoveragePoint&, const CoveragePoint&) = default;
};

/// Downsamples an append-only point stream to a bounded budget by stride
/// doubling: every point is kept until the budget fills, then every other
/// kept point is dropped and the keep-stride doubles. The final point is
/// always retained (the curve's endpoint is the campaign's headline
/// coverage). Deterministic in the append sequence alone.
class CoverageCurveBuilder {
 public:
  explicit CoverageCurveBuilder(std::size_t budget = 512);

  void add(const CoveragePoint& point);

  /// The downsampled curve, ending with the last appended point.
  [[nodiscard]] std::vector<CoveragePoint> points() const;

  [[nodiscard]] std::size_t budget() const { return budget_; }

 private:
  std::size_t budget_;
  std::uint64_t stride_ = 1;
  std::uint64_t appended_ = 0;
  std::vector<CoveragePoint> kept_;
  std::optional<CoveragePoint> last_;
};

/// Sequences until a bug / mutant was first exposed (1-based), or
/// unexposed. One entry per compare target, in target order.
struct ExposureLatency {
  bool exposed = false;
  std::uint64_t sequences = 0;  ///< meaningful only when exposed

  friend bool operator==(const ExposureLatency&,
                         const ExposureLatency&) = default;
};

/// The "coverage_telemetry" report section.
struct CoverageTelemetry {
  std::uint64_t curve_budget = 0;
  std::vector<CoveragePoint> convergence;
  /// Distinct transitions the committed test set covered.
  std::uint64_t distinct_transitions = 0;
  /// Exact maximum hit count over the distinct transitions.
  std::uint64_t max_transition_hits = 0;
  /// Log2-bucketed hit-count distribution (histogram_bucket_index scheme);
  /// trailing all-zero buckets are meaningful but boring — the report
  /// emitter trims them.
  std::array<std::uint64_t, kHistogramBuckets> transition_hits{};
  /// Per-bug exposure latency (campaign reports); per-mutant latency lives
  /// on MutantCoverageResult directly.
  std::vector<ExposureLatency> bug_exposure_latency;
};

/// Feed committed sequences in commit order; snapshot() at campaign end.
/// Single-threaded by contract — the pipeline commits on the coordinator.
class CoverageTelemetryCollector {
 public:
  CoverageTelemetryCollector(model::TestModel& model,
                             std::size_t curve_budget = 512);

  /// Replays one committed sequence (one PI bit vector per step) through
  /// the model from reset, exactly as TestModel::evaluate accounts it, and
  /// appends one convergence point. Throws std::domain_error on an input
  /// that is invalid in its state (committed sequences are valid by
  /// construction, so this indicates stream corruption).
  void commit_sequence(const std::vector<std::vector<bool>>& steps);

  /// Batch form: replays every sequence of `batch` lane-parallel through
  /// TestModel::step_batch (one word-level pass advances up to 64 sequences
  /// per call), then folds the recorded traces into the tracker strictly in
  /// batch order — the resulting telemetry (convergence points included) is
  /// byte-identical to calling commit_sequence on each element in turn.
  void commit_batch(std::span<const std::vector<std::vector<bool>>> batch);

  [[nodiscard]] std::uint64_t committed() const { return committed_; }

  // Live view of the tracker's account, O(1) — the CampaignMonitor's
  // progress feed reads these after every commit, with exactly the same
  // replay-based numbers the final telemetry section reports.
  [[nodiscard]] std::uint64_t states_visited() const {
    return tracker_.states_visited();
  }
  [[nodiscard]] std::uint64_t transitions_covered() const {
    return tracker_.transitions_covered();
  }

  /// The telemetry so far. bug_exposure_latency is left empty — the
  /// pipeline fills it from the compare stage's results.
  [[nodiscard]] CoverageTelemetry snapshot() const;

 private:
  model::TestModel& model_;
  model::CoverageTracker tracker_;
  CoverageCurveBuilder curve_;
  std::uint64_t committed_ = 0;
};

}  // namespace simcov::obs
