// Exporters: the obs event flow and MetricsRegistry rendered in the two
// formats the outside tooling world actually speaks.
//
//   * PerfettoTraceSink — Chrome trace-event JSON (the legacy array
//     format), loadable in https://ui.perfetto.dev or chrome://tracing.
//     Spans and per-item latencies appear as complete ("X") slices on
//     per-stage tracks, counters and gauges as counter ("C") tracks,
//     items and statuses as instants ("i").
//   * write_prometheus_text — the text exposition format: counters as
//     `<name>_total`, gauges as gauges, histograms as cumulative
//     `_bucket{le=...}` series plus `_sum`/`_count`. Every metric is
//     prefixed `simcov_` and labelled by stage.
//
// Both are presentation only: they add no event semantics of their own, so
// attaching them cannot change what a campaign computes.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"

namespace simcov::obs {

/// Streams events as Chrome trace-event JSON. Timestamps are microseconds
/// since sink construction on the steady clock. Each stage gets its own
/// track (tid = stage), with per-item latency slices on a parallel track
/// (tid = stage + 100) so worker-thread slices don't visually nest into the
/// coordinator's batch spans.
///
/// The file is a JSON array; the closing bracket lands in the destructor.
/// (The trace-event spec also permits the unterminated form, so even a
/// killed campaign leaves a loadable trace — flush follows the same
/// status-boundary policy as JsonlTraceSink.)
class PerfettoTraceSink final : public EventSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  explicit PerfettoTraceSink(const std::string& path);
  ~PerfettoTraceSink() override;

  void span(Stage stage, double seconds) override;
  void counter(Stage stage, std::string_view name,
               std::uint64_t value) override;
  void gauge(Stage stage, std::string_view name, std::uint64_t value) override;
  void item(Stage stage, std::string_view kind, std::uint64_t id,
            std::uint64_t value) override;
  void latency(Stage stage, std::string_view kind, std::uint64_t id,
               double seconds) override;
  void status(Stage stage, StageStatus status) override;

 private:
  /// Microseconds since construction, saturating at 0.
  [[nodiscard]] std::uint64_t now_us() const;
  void write_event(const std::string& json);

  std::mutex mutex_;
  std::ofstream out_;
  std::chrono::steady_clock::time_point start_;
  bool first_ = true;
  /// Counter events are increments; the "C" track plots running totals.
  std::map<std::string, std::uint64_t> counter_totals_;
};

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and newline become \\, \" and \n. Exposed for
/// the exporter's golden tests.
[[nodiscard]] std::string prometheus_escape_label(std::string_view value);

/// One-line HELP text of a metric family, looked up by its *raw* event
/// name (before `simcov_` sanitization); unknown names get a generic
/// derived line, so every exposed family always carries HELP metadata.
[[nodiscard]] std::string prometheus_help_text(std::string_view name);

/// Renders a registry snapshot in the Prometheus text exposition format.
/// Each family carries `# HELP` and `# TYPE` metadata, and every label
/// value is escaped per the format.
[[nodiscard]] std::string write_prometheus_text(const MetricsSummary& summary);
[[nodiscard]] std::string write_prometheus_text(const MetricsRegistry& registry);

}  // namespace simcov::obs
