// Watchdog: the liveness sentinel of a running campaign.
//
// A campaign that wedges — a stuck pool worker, an unbounded symbolic
// tour, a pathological sequence — stops committing sequences but keeps the
// process alive. The watchdog samples the live MetricsRegistry at a fixed
// interval into a bounded ring-buffer time series and watches the one
// signal every healthy campaign advances: the committed-sequence count
// (the (simulate, "clean_run") histogram). When that count holds still for
// N consecutive intervals the watchdog declares a stall, exactly once per
// stall episode (the alarm latches, and re-arms when commits resume):
//
//   * a `campaign.stall` counter event is emitted into the configured sink,
//     tagged with the attributed stage — the stage whose per-stage event
//     activity advanced most recently, i.e. where the pipeline was last
//     alive (ties prefer the later pipeline stage);
//   * a StallEvent is recorded with the evidence: attributed stage, idle
//     interval count, committed count, and the worker-pool queue depth at
//     detection (a deep queue points at slow workers, an empty one at a
//     starved stream);
//   * optionally a cancellation callback fires (CampaignMonitor wires the
//     campaign's CancellationToken here), turning the stall into a clean
//     truncated campaign instead of a hung process.
//
// tick(now_seconds) is the whole detector and is callable directly, so
// tests drive stall scenarios deterministically with a synthetic clock;
// start()/stop() run the same tick on a background thread against the
// steady clock for real campaigns.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace simcov::obs {

struct WatchdogOptions {
  double interval_seconds = 1.0;
  /// Consecutive commit-free intervals before a stall is declared.
  std::size_t stall_intervals = 5;
  /// Ring-buffer capacity of the sampled time series.
  std::size_t series_capacity = 256;
};

/// One registry sample — an entry of the ring-buffer time series.
struct WatchdogSample {
  double at_seconds = 0.0;
  std::uint64_t committed = 0;    ///< clean_run count at the tick
  std::uint64_t queue_depth = 0;  ///< worker-pool backlog at the tick
  /// Per-stage event activity (summed counters + histogram observations).
  std::array<std::uint64_t, kStageCount> stage_activity{};
};

/// One detected stall episode, with the attribution evidence.
struct StallEvent {
  double at_seconds = 0.0;
  Stage stage = Stage::kTour;  ///< last stage observed making progress
  std::uint64_t committed = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t idle_intervals = 0;
};

class Watchdog {
 public:
  Watchdog(const MetricsRegistry& registry, WatchdogOptions options);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Sink the `campaign.stall` counter event is emitted into (nullptr: the
  /// event is only recorded in stalls()). Set before start().
  void set_stall_sink(EventSink* sink);
  /// Reports the worker-pool backlog for stall evidence (nullptr: 0).
  void set_queue_depth_fn(std::function<std::uint64_t()> fn);
  /// Invoked once per detected stall, after the event is recorded —
  /// CampaignMonitor passes the campaign CancellationToken's cancel here.
  void set_on_stall(std::function<void()> fn);

  /// One detector step at `now_seconds`: samples the registry, appends to
  /// the time series, and fires at most one stall per episode. Thread-safe
  /// and deterministic in the (registry state, call sequence) alone.
  void tick(double now_seconds);

  /// Starts the background sampler (steady clock, options.interval_seconds
  /// period). No-op when already running.
  void start();
  /// Stops and joins the background sampler. Safe to call when stopped.
  void stop();

  [[nodiscard]] const WatchdogOptions& options() const { return options_; }
  [[nodiscard]] std::uint64_t ticks() const;
  /// True while the current stall episode is unresolved.
  [[nodiscard]] bool stalled() const;
  [[nodiscard]] std::vector<StallEvent> stalls() const;
  /// The ring-buffer time series, oldest first.
  [[nodiscard]] std::vector<WatchdogSample> series() const;

 private:
  void run_loop();

  const MetricsRegistry& registry_;
  WatchdogOptions options_;
  EventSink* stall_sink_ = nullptr;
  std::function<std::uint64_t()> queue_depth_;
  std::function<void()> on_stall_;

  mutable std::mutex mutex_;
  std::deque<WatchdogSample> series_;
  std::vector<StallEvent> stalls_;
  std::uint64_t ticks_ = 0;
  std::uint64_t last_committed_ = 0;
  std::uint64_t idle_intervals_ = 0;
  bool stalled_ = false;
  Stage last_active_stage_ = Stage::kTour;
  std::array<std::uint64_t, kStageCount> last_activity_{};

  std::mutex thread_mutex_;
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace simcov::obs
