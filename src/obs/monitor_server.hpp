// CampaignMonitor: the live observability plane of a running campaign.
//
// PR 5 made campaigns post-hoc observable (MetricsRegistry snapshots,
// Prometheus/Perfetto files written after the run). The monitor makes the
// same event flow observable *while the campaign runs*:
//
//   * CampaignMonitor owns a private MetricsRegistry that the pipeline
//     adds to its sink fan-out (next to CampaignOptions::sink/metrics), a
//     ProgressEstimator fed per committed sequence, and an optional
//     Watchdog sampling the registry on a background thread.
//   * MonitorServer is a dependency-free embedded HTTP/1.1 server (POSIX
//     sockets, loopback only) serving
//       GET /metrics   — Prometheus text exposition of the live registry
//       GET /progress  — JSON: committed sequences, transition-coverage
//                        fraction and ETA, per-stage throughput and
//                        p50/p99 latencies, queue wait, store hit ratio,
//                        BDD live/peak nodes, watchdog time series
//       GET /healthz   — "ok" (liveness), or "stalled" while the watchdog
//                        alarm is raised (HTTP 200 either way; the body is
//                        the signal)
//
// The monitor is a read-only observer by construction: it only *receives*
// the event stream a campaign already emits, its registry never lands on
// CampaignResult, and the pipeline's control flow never consults it — so a
// campaign report is byte-identical with the monitor on or off (gated by
// bench_obs_overhead).
//
// The monitor outlives any single campaign: construct one, point any
// number of sequential pipeline runs at it via CampaignOptions::monitor,
// and scrape between or during runs. begin_campaign/end_campaign are
// called by the pipeline, not by users.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/watchdog.hpp"

namespace simcov::obs {

/// One HTTP response a MonitorServer handler produced.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal embedded HTTP/1.1 server: loopback-only, GET-only, one request
/// per connection (Connection: close), served sequentially on one
/// background thread — plenty for a scrape endpoint, and no thundering
/// herd can reach it. The handler runs on the server thread and must be
/// thread-safe against the rest of the process; returning nullopt yields
/// 404.
class MonitorServer {
 public:
  using Handler =
      std::function<std::optional<HttpResponse>(const std::string& path)>;

  /// Binds 127.0.0.1:port (port 0: an ephemeral port, see port()) and
  /// starts the accept loop. Throws std::runtime_error when the socket
  /// cannot be bound.
  MonitorServer(std::uint16_t port, Handler handler);
  ~MonitorServer();
  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// The bound TCP port (the resolved one when constructed with 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void handle_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Result of one http_get round trip.
struct HttpResult {
  int status = 0;
  std::string body;
};

/// Blocking loopback GET against a MonitorServer — the self-scrape helper
/// tests and benches use instead of shelling out to curl. nullopt when the
/// connection or the response parse fails.
[[nodiscard]] std::optional<HttpResult> http_get(std::uint16_t port,
                                                 const std::string& path);

struct MonitorOptions {
  /// TCP port of the embedded HTTP server; 0 picks an ephemeral port
  /// (read it back via port()). Negative: no HTTP server — the monitor
  /// still aggregates, and progress_json()/metrics_text() serve in-process.
  int port = 0;
  /// Watchdog sampling interval; 0 disables the watchdog thread entirely.
  double watchdog_seconds = 0.0;
  /// Commit-free watchdog intervals before a stall is declared.
  std::size_t stall_intervals = 5;
  /// Ring-buffer capacity of the watchdog time series.
  std::size_t series_capacity = 256;
  /// Cancel the campaign (via the token the pipeline registers) when a
  /// stall is detected, turning a wedged campaign into a clean truncated
  /// one.
  bool cancel_on_stall = false;
};

class CampaignMonitor {
 public:
  /// Starts the HTTP server immediately (unless options.port < 0). Throws
  /// std::runtime_error when the port cannot be bound.
  explicit CampaignMonitor(MonitorOptions options = {});
  ~CampaignMonitor();
  CampaignMonitor(const CampaignMonitor&) = delete;
  CampaignMonitor& operator=(const CampaignMonitor&) = delete;

  /// The sink the pipeline adds to its fan-out — feeds the live registry.
  [[nodiscard]] EventSink& sink() { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }
  [[nodiscard]] ProgressEstimator& progress() { return progress_; }
  /// The watchdog (present even when the sampling thread is disabled, so
  /// tests can drive tick() manually).
  [[nodiscard]] Watchdog& watchdog() { return *watchdog_; }

  /// Bound HTTP port; 0 when the server is disabled.
  [[nodiscard]] std::uint16_t port() const;

  // ---- Pipeline lifecycle hooks (called by ValidationPipeline) ----------
  /// Campaign start: arms the progress estimator with the transition
  /// total, wires stall evidence (worker-pool queue depth) and the stall
  /// cancellation hook, and starts the watchdog thread when configured.
  void begin_campaign(std::uint64_t transitions_total,
                      std::function<std::uint64_t()> queue_depth,
                      std::function<void()> cancel);
  /// One committed sequence (or batch): totals after the commit.
  void on_commit(std::uint64_t committed_sequences,
                 std::uint64_t committed_steps,
                 std::uint64_t states_visited,
                 std::uint64_t transitions_covered);
  /// Campaign end: stops the watchdog thread and parks the estimator.
  /// Idempotent; also run by the destructor path via the pipeline's guard.
  void end_campaign();

  // ---- In-process views (what the HTTP endpoints serve) -----------------
  [[nodiscard]] std::string progress_json() const;
  [[nodiscard]] std::string metrics_text() const;
  [[nodiscard]] std::string health_text() const;

 private:
  [[nodiscard]] std::optional<HttpResponse> route(const std::string& path)
      const;

  MonitorOptions options_;
  MetricsRegistry registry_;
  ProgressEstimator progress_;
  std::unique_ptr<Watchdog> watchdog_;
  std::unique_ptr<MonitorServer> server_;
};

}  // namespace simcov::obs
