// Implementation-validation harness (Figure 1 of the paper).
//
// Runs the ISA-level golden model and the pipelined implementation on the
// same program and compares the RetireInfo checkpoint streams — the
// "comparison at special checkpointing steps, e.g. at the completion of
// each instruction" of Section 2. Any mismatch (differing record or
// differing stream length) is a detected design error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dlx/isa_model.hpp"
#include "dlx/pipeline.hpp"
#include "validate/concretize.hpp"

namespace simcov::validate {

struct Divergence {
  std::size_t index = 0;  ///< checkpoint number (retired-instruction index)
  std::optional<dlx::RetireInfo> spec;  ///< nullopt: spec stream ended first
  std::optional<dlx::RetireInfo> impl;  ///< nullopt: impl stream ended first
};

struct ValidationResult {
  bool passed = false;
  std::size_t checkpoints_compared = 0;
  std::uint64_t impl_cycles = 0;
  std::optional<Divergence> divergence;
  /// Set when the implementation model crashed (e.g. a corrupted address
  /// reached the memory stage). A crash counts as a detected error.
  std::optional<std::string> impl_exception;
  /// Set when either model ran out of its cycle budget before halting. The
  /// run is then *inconclusive*, not failed: the compared checkpoint prefix
  /// matched (otherwise `divergence` is set), and a stream-length mismatch
  /// is expected — the spec retires one instruction per step while the
  /// pipeline needs several cycles — so it is not reported as a divergence.
  bool cycle_budget_exhausted = false;

  /// True when the run produced positive evidence of a design error — a
  /// checkpoint divergence or an implementation crash. Campaigns must count
  /// exposure with this, not with `!passed`, or budget-limited runs get
  /// misclassified as exposed bugs.
  [[nodiscard]] bool error_detected() const {
    return divergence.has_value() || impl_exception.has_value();
  }
};

/// Runs both models on `program` (with shared memory/register presets) and
/// compares checkpoints. `config` selects the implementation's injected bugs.
ValidationResult run_validation(const ConcretizedProgram& program,
                                const dlx::PipelineConfig& config = {},
                                std::size_t max_cycles = 1u << 20);

/// Same, for a raw instruction vector with no presets.
ValidationResult run_validation(const std::vector<dlx::Instruction>& program,
                                const dlx::PipelineConfig& config = {},
                                std::size_t max_cycles = 1u << 20);

/// One-line human-readable summary of a result.
std::string describe(const ValidationResult& result);

}  // namespace simcov::validate
