#include "validate/concretize.hpp"

#include <stdexcept>
#include <string>

namespace simcov::validate {

using dlx::Instruction;
using dlx::OpClass;
using dlx::Opcode;
using testmodel::ControlInput;

namespace {

constexpr std::uint32_t kLoadRegionBase = 0x1000;

/// Maps an abstract (reduced-width) register id to a concrete DLX register.
/// The abstract link register (top id) corresponds to concrete r31.
unsigned reg_map(unsigned abstract_reg, unsigned reg_addr_bits) {
  const unsigned top = (1u << reg_addr_bits) - 1;
  if (reg_addr_bits < 5 && abstract_reg == top) return dlx::kLinkRegister;
  return abstract_reg;
}

}  // namespace

std::vector<std::uint32_t> ConcretizedProgram::words() const {
  std::vector<std::uint32_t> w;
  w.reserve(instructions.size());
  for (const auto& ins : instructions) w.push_back(dlx::encode(ins));
  return w;
}

ConcretizedProgram concretize_tour(const testmodel::BuiltTestModel& model,
                                   const std::vector<ControlInput>& tour) {
  if (model.options.fetch_controller) {
    throw std::invalid_argument(
        "concretize_tour: use a test model without the fetch controller "
        "(instruction input feeds decode directly)");
  }
  const unsigned R = model.options.reg_addr_bits;
  testmodel::ControlModelSim sim(model);

  ConcretizedProgram out;
  // Architectural shadow of the register file (concrete register ids).
  // All-zero start: branch directions are then realizable from the first
  // instruction on, and compare-op results stay in {0, 1}.
  std::array<std::uint32_t, dlx::kNumRegisters> shadow{};
  out.initial_regs = shadow;

  std::uint32_t load_counter = 0;
  bool pending_squash = false;

  // Memory accesses cycle through a bounded window of word addresses so
  // immediates always reach them; each address is preloaded once, with a
  // unique value, and its content is tracked for the shadow.
  constexpr std::uint32_t kWindowWords = 4096;
  std::map<std::uint32_t, std::uint32_t> memory_image;
  auto fresh_data_addr = [&]() {
    return kLoadRegionBase + 4 * (load_counter % kWindowWords);
  };
  auto mem_offset_for = [&](std::uint32_t base) {
    const std::int64_t imm = static_cast<std::int64_t>(fresh_data_addr()) -
                             static_cast<std::int64_t>(base);
    if (imm < -32768 || imm > 32767) {
      throw std::invalid_argument(
          "concretize_tour: register value out of immediate reach for a "
          "memory access (tour too long or data discipline violated)");
    }
    return static_cast<std::int32_t>(imm);
  };

  const std::size_t stall_idx = sim.output_index("stall");
  const std::size_t squash_idx = sim.output_index("squash");
  for (std::size_t t = 0; t < tour.size(); ++t) {
    const ControlInput& in = tour[t];
    sim.step_fast(in);  // throws on constraint violation
    const bool stall = sim.out_at(stall_idx);
    const bool squash = sim.out_at(squash_idx);
    const bool accepted = !stall && !squash && !pending_squash;

    if (stall) {
      // The pipeline holds the stalled instruction in decode; this tour
      // input has no program-order counterpart.
      ++out.steps_dropped;
      pending_squash = false;  // squash and stall are mutually exclusive
      continue;
    }

    const std::uint32_t addr = 4 * static_cast<std::uint32_t>(
                                       out.instructions.size());
    const unsigned rs1 = reg_map(in.rs1, R);
    const unsigned rs2 = reg_map(in.rs2, R);
    const unsigned rd = reg_map(in.rd, R);
    Instruction concrete = dlx::make_nop();

    switch (in.cls) {
      case OpClass::kNop:
        break;
      case OpClass::kHalt:
        concrete = dlx::make_halt();
        break;
      case OpClass::kAlu:
        // Compare ops keep register values in {0, 1} (bounded data
        // discipline; see header).
        concrete = dlx::make_rtype(Opcode::kSne, rd, rs1, rs2);
        if (accepted && rd != 0) {
          shadow[rd] = shadow[rs1] != shadow[rs2] ? 1 : 0;
        }
        break;
      case OpClass::kAluImm:
        concrete = dlx::make_itype(Opcode::kSlti, rd, rs1, 1);
        if (accepted && rd != 0) {
          shadow[rd] =
              static_cast<std::int32_t>(shadow[rs1]) < 1 ? 1 : 0;
        }
        break;
      case OpClass::kLoad: {
        const std::int32_t imm = mem_offset_for(shadow[rs1]);
        const std::uint32_t a = fresh_data_addr();
        ++load_counter;
        if (memory_image.count(a) == 0) {
          // Recognizable unique data (Requirement 3's data selection):
          // distinct from every compare-op result and the zero start state.
          const std::uint32_t value = 100 + load_counter;
          memory_image[a] = value;
          out.memory_init.emplace_back(a, value);
        }
        concrete = dlx::make_load(Opcode::kLw, rd, rs1, imm);
        if (accepted && rd != 0) shadow[rd] = memory_image[a];
        break;
      }
      case OpClass::kStore: {
        const std::int32_t imm = mem_offset_for(shadow[rs1]);
        const std::uint32_t a = fresh_data_addr();
        ++load_counter;
        concrete = dlx::make_store(Opcode::kSw, rs1, rs2, imm);
        if (accepted) memory_image[a] = shadow[rs2];
        break;
      }
      case OpClass::kBranch: {
        // The status bit for this branch arrives on the next tour step
        // (when the branch sits in EX).
        const bool want_taken =
            accepted && t + 1 < tour.size() && tour[t + 1].branch_outcome;
        const bool reg_is_zero = shadow[rs1] == 0;
        const Opcode op = (want_taken == reg_is_zero) ? Opcode::kBeqz
                                                      : Opcode::kBnez;
        concrete = dlx::make_branch(op, rs1, 8);  // target = PC + 12
        break;
      }
      case OpClass::kJump:
        concrete = dlx::make_jump(Opcode::kJ, 8);
        break;
      case OpClass::kJumpLink:
        concrete = dlx::make_jump(Opcode::kJal, 8);
        if (accepted) shadow[dlx::kLinkRegister] = addr + 4;
        break;
      case OpClass::kJumpReg:
      case OpClass::kJumpLinkReg:
        if (accepted) {
          throw std::invalid_argument(
              "concretize_tour: committed register-indirect jump at step " +
              std::to_string(t) + " is not concretizable");
        }
        concrete = dlx::make_jump_reg(in.cls == OpClass::kJumpReg
                                          ? Opcode::kJr
                                          : Opcode::kJalr,
                                      rs1);
        break;
    }

    out.instructions.push_back(concrete);
    ++out.steps_emitted;
    pending_squash = squash;
  }

  out.instructions.push_back(dlx::make_halt());
  return out;
}

testmodel::ControlInput decode_control_input(
    const testmodel::BuiltTestModel& model, const std::vector<bool>& pi_bits) {
  const auto& c = model.circuit;
  if (pi_bits.size() != c.primary_inputs.size()) {
    throw std::invalid_argument("decode_control_input: width mismatch");
  }
  // Name every primary-input position.
  std::map<sym::SignalId, std::string> names;
  const auto net_inputs = c.net.inputs();
  for (std::size_t k = 0; k < net_inputs.size(); ++k) {
    names[net_inputs[k]] = c.net.input_name(k);
  }
  ControlInput in;
  unsigned cls_bits = 0;
  for (std::size_t p = 0; p < c.primary_inputs.size(); ++p) {
    const std::string& name = names[c.primary_inputs[p]];
    const bool v = pi_bits[p];
    if (!v) continue;
    if (name.rfind("op", 0) == 0) {
      const unsigned idx = static_cast<unsigned>(std::stoul(name.substr(2)));
      if (model.options.onehot_opclass) {
        cls_bits = idx;  // one-hot: index is the class id
      } else {
        cls_bits |= 1u << idx;
      }
    } else if (name.rfind("rs1_", 0) == 0) {
      in.rs1 |= 1u << std::stoul(name.substr(4));
    } else if (name.rfind("rs2_", 0) == 0) {
      in.rs2 |= 1u << std::stoul(name.substr(4));
    } else if (name.rfind("rd_", 0) == 0) {
      in.rd |= 1u << std::stoul(name.substr(3));
    } else if (name == "branch_outcome") {
      in.branch_outcome = true;
    } else if (name == "instr_valid") {
      in.instr_valid = true;
    }
  }
  in.cls = static_cast<OpClass>(cls_bits);
  if (model.options.fetch_controller) {
    // instr_valid was parsed only if set; default false in that case.
    bool saw_valid = false;
    for (std::size_t p = 0; p < c.primary_inputs.size(); ++p) {
      if (names[c.primary_inputs[p]] == "instr_valid" && pi_bits[p]) {
        saw_valid = true;
      }
    }
    in.instr_valid = saw_valid;
  }
  return in;
}

ConcretizedProgram concretize_sequence(
    const testmodel::BuiltTestModel& model,
    const std::vector<std::vector<bool>>& pi_steps) {
  std::vector<testmodel::ControlInput> steps;
  steps.reserve(pi_steps.size());
  for (const auto& bits : pi_steps) {
    steps.push_back(decode_control_input(model, bits));
  }
  return concretize_tour(model, steps);
}

}  // namespace simcov::validate
