#include "validate/harness.hpp"

#include <sstream>

namespace simcov::validate {

namespace {

constexpr std::size_t kDataSize = 1u << 16;

ValidationResult compare_traces(const std::vector<dlx::RetireInfo>& spec,
                                const std::vector<dlx::RetireInfo>& impl,
                                std::uint64_t impl_cycles,
                                bool budget_exhausted) {
  ValidationResult result;
  result.impl_cycles = impl_cycles;
  result.cycle_budget_exhausted = budget_exhausted;
  const std::size_t n = std::min(spec.size(), impl.size());
  for (std::size_t k = 0; k < n; ++k) {
    if (!(spec[k] == impl[k])) {
      result.checkpoints_compared = k + 1;
      result.divergence = Divergence{k, spec[k], impl[k]};
      return result;
    }
  }
  result.checkpoints_compared = n;
  if (spec.size() != impl.size()) {
    if (budget_exhausted) {
      // One stream was truncated by the budget, not by a halt: a length
      // mismatch carries no information (inconclusive, not a divergence).
      return result;
    }
    Divergence d;
    d.index = n;
    if (n < spec.size()) d.spec = spec[n];
    if (n < impl.size()) d.impl = impl[n];
    result.divergence = d;
    return result;
  }
  result.passed = !budget_exhausted;
  return result;
}

}  // namespace

ValidationResult run_validation(const ConcretizedProgram& program,
                                const dlx::PipelineConfig& config,
                                std::size_t max_cycles) {
  const auto words = program.words();
  dlx::IsaModel spec(words, kDataSize);
  dlx::Pipeline impl(words, config, kDataSize);
  for (unsigned r = 1; r < dlx::kNumRegisters; ++r) {
    spec.set_reg(r, program.initial_regs[r]);
    impl.set_reg(r, program.initial_regs[r]);
  }
  for (const auto& [addr, value] : program.memory_init) {
    spec.poke_word(addr, value);
    impl.poke_word(addr, value);
  }
  const auto spec_trace = spec.run(max_cycles);
  std::vector<dlx::RetireInfo> impl_trace;
  try {
    impl_trace = impl.run(max_cycles);
  } catch (const std::exception& e) {
    // The implementation crashed mid-run (e.g. a bug corrupted a memory
    // address): a detected error. Compare the prefix it produced is not
    // recoverable from Pipeline::run, so report the crash directly.
    ValidationResult result;
    result.impl_cycles = impl.cycles();
    result.impl_exception = e.what();
    result.divergence = Divergence{};
    return result;
  }
  // Budget exhaustion means the model consumed every cycle it was given and
  // still had work left. Running off the program end (step() returning
  // nothing with cycles to spare) is a genuine end of stream, not
  // exhaustion, and keeps its historical length-mismatch-is-divergence
  // semantics.
  const bool spec_budget =
      !spec.halted() && spec_trace.size() >= max_cycles;
  const bool impl_budget = !impl.halted() && impl.cycles() >= max_cycles;
  return compare_traces(spec_trace, impl_trace, impl.cycles(),
                        spec_budget || impl_budget);
}

ValidationResult run_validation(const std::vector<dlx::Instruction>& program,
                                const dlx::PipelineConfig& config,
                                std::size_t max_cycles) {
  ConcretizedProgram p;
  p.instructions = program;
  return run_validation(p, config, max_cycles);
}

std::string describe(const ValidationResult& result) {
  std::ostringstream os;
  if (result.passed) {
    os << "PASS: " << result.checkpoints_compared
       << " checkpoints compared in " << result.impl_cycles << " cycles";
    return os.str();
  }
  if (result.impl_exception.has_value()) {
    os << "FAIL: implementation crashed: " << *result.impl_exception;
    return os.str();
  }
  if (result.cycle_budget_exhausted && !result.divergence.has_value()) {
    os << "INCONCLUSIVE: cycle budget exhausted after "
       << result.checkpoints_compared << " matching checkpoints ("
       << result.impl_cycles << " cycles)";
    return os.str();
  }
  os << "FAIL at checkpoint " << (result.divergence ? result.divergence->index
                                                    : 0);
  if (result.divergence) {
    const auto& d = *result.divergence;
    if (d.spec.has_value() && d.impl.has_value()) {
      os << ": spec retired '" << dlx::disassemble(d.spec->ins)
         << "' (pc=" << d.spec->pc << "), impl retired '"
         << dlx::disassemble(d.impl->ins) << "' (pc=" << d.impl->pc << ")";
    } else if (d.spec.has_value()) {
      os << ": implementation stream ended early (spec continues with '"
         << dlx::disassemble(d.spec->ins) << "')";
    } else if (d.impl.has_value()) {
      os << ": implementation retired extra '"
         << dlx::disassemble(d.impl->ins) << "'";
    }
  }
  return os.str();
}

}  // namespace simcov::validate
