// Tour concretization: abstract test-model inputs -> a real DLX program.
//
// A transition tour of the control test model is a sequence of abstract
// inputs (instruction class + register fields + branch outcome). To simulate
// it on the implementation, those inputs must be converted into concrete
// instruction words and data values (Section 6.5: "appropriate input values
// must be filled in before the generated test set can be used for
// simulation"). The paper leaves the general conversion open (end of
// Section 4.3); this module implements a principled concretization for the
// concretizable class subset:
//
//  * kAlu is realized with compare ops (SEQ/SNE/SLT/SLTU) so register
//    values stay small and bounded;
//  * loads are given fresh addresses preloaded with unique data values —
//    the data-selection side of Requirement 3;
//  * branch direction is controlled by choosing BEQZ vs BNEZ against the
//    architecturally known register value, matching the tour's
//    branch-outcome status bit;
//  * taken control transfers target PC+12, so the two wrong-path (squashed)
//    slots are exactly the next two tour steps, laid out sequentially;
//  * tour steps arriving during a stall cycle are dropped from the program:
//    the pipeline holds the stalled instruction, so those inputs have no
//    program-order counterpart.
//
// Committed register-indirect jumps (JR/JALR) are not concretizable without
// violating the data discipline and raise an error; build tour models with
// TestModelOptions::reduced_isa for end-to-end experiments.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dlx/isa.hpp"
#include "testmodel/control_sim.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::validate {

struct ConcretizedProgram {
  std::vector<dlx::Instruction> instructions;
  /// Words to preload into data memory of both models.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> memory_init;
  /// Initial register values for both models.
  std::array<std::uint32_t, dlx::kNumRegisters> initial_regs{};
  /// Tour steps that became program instructions.
  std::size_t steps_emitted = 0;
  /// Tour steps dropped on stall cycles.
  std::size_t steps_dropped = 0;

  [[nodiscard]] std::vector<std::uint32_t> words() const;
};

/// Converts a tour over the test model into a runnable program. Appends a
/// final HALT. Throws std::domain_error on inputs that violate the model's
/// constraint and std::invalid_argument on non-concretizable steps.
ConcretizedProgram concretize_tour(
    const testmodel::BuiltTestModel& model,
    const std::vector<testmodel::ControlInput>& tour);

/// Decodes one explicit-machine input symbol (primary-input bit vector from
/// sym::extract_explicit, ordered as the model's PI list) back into a
/// ControlInput.
testmodel::ControlInput decode_control_input(
    const testmodel::BuiltTestModel& model, const std::vector<bool>& pi_bits);

/// Concretizes one backend-neutral tour sequence: each step is a
/// primary-input bit vector (model PI order) as produced by the TestModel
/// tours of either backend.
ConcretizedProgram concretize_sequence(
    const testmodel::BuiltTestModel& model,
    const std::vector<std::vector<bool>>& pi_steps);

}  // namespace simcov::validate
