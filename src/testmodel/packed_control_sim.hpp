// 64-lane bit-parallel counterpart of ControlModelSim.
//
// Each lane is one independent replay of the control test model: lane L's
// latch values live in bit L of one std::uint64_t per latch, and one
// word-level pass of the circuit (sym::PackedLogicSim) advances all lanes
// a clock at once. Input decoding shares ControlModelSim's InputRole
// classification, so a lane computes bit-for-bit what the scalar simulator
// computes for the same ControlInput sequence (pinned by
// tests/bitparallel_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sym/packed_logic_sim.hpp"
#include "testmodel/control_sim.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::testmodel {

class PackedControlModelSim {
 public:
  static constexpr std::size_t kLanes = sym::PackedLogicSim::kLanes;

  explicit PackedControlModelSim(const BuiltTestModel& model);

  /// Resets every lane to the latch init values.
  void reset();

  /// Applies one clock cycle to lanes [0, inputs.size()); lanes beyond the
  /// span hold their state. Throws std::domain_error when any stepped
  /// lane's input violates the model's validity constraint (the scalar
  /// simulator's per-lane behaviour).
  void step(std::span<const ControlInput> inputs);

  /// Lane word of one named-output index after the last step (bit L =
  /// lane L's value).
  [[nodiscard]] std::uint64_t out_lanes(std::size_t output_index) const {
    return out_words_[output_index];
  }
  [[nodiscard]] bool out_at(std::size_t lane, std::size_t output_index) const {
    return ((out_words_[output_index] >> lane) & 1u) != 0;
  }
  /// Resolves an output name once for hot loops (same indices as
  /// ControlModelSim::output_index). Throws std::out_of_range.
  [[nodiscard]] std::size_t output_index(const std::string& name) const;

  [[nodiscard]] bool latch(std::size_t lane, std::size_t latch_index) const {
    return ((latch_words_[latch_index] >> lane) & 1u) != 0;
  }

 private:
  const BuiltTestModel& model_;
  std::vector<InputRole> roles_;
  sym::PackedLogicSim sim_;
  std::vector<std::uint64_t> latch_words_;  // one word per latch
  std::vector<std::uint64_t> out_words_;    // one word per output
  std::map<std::string, std::size_t> output_index_;
  mutable std::vector<std::uint64_t> input_words_;  // reused scratch
  mutable std::vector<std::uint64_t> values_;       // reused scratch
};

}  // namespace simcov::testmodel
