// Derivation of the DLX control test model (Section 7.1 of the paper).
//
// The test model is the non-observable part of the design: the pipeline
// control. Following Figure 3(a), the datapath is abstracted away — the
// instruction word and the datapath status (branch outcome) become primary
// inputs, control signals become primary outputs — and the latch netlist
// retains per-stage instruction class, validity, and the destination
// register addresses of the current and two previous instructions (exactly
// the interaction state called out in Section 7.1), plus the squash state.
//
// `TestModelOptions` parameterizes the abstraction ladder of Figure 3(b):
// each boolean adds/removes a latch group, so the bench can print the
// latch-count sequence; behaviour of the *core* control (stall, squash,
// forwarding) is identical across the ladder, which is what makes each step
// a transition-preserving local transformation.
//
// Two extra switches support the paper's requirement ablations:
//  * keep_dest_in_state = false drops the destination-register addresses
//    from the latches — "abstracting too much" (Section 6.3): output errors
//    on interlock transitions become non-uniform.
//  * expose_dest_outputs = false hides them from the outputs — violating
//    Requirement 5 (observability of interaction state).
#pragma once

#include <string>
#include <vector>

#include "sym/symbolic_fsm.hpp"

namespace simcov::testmodel {

struct TestModelOptions {
  // ---- Figure 3(b) ladder switches (initial model = all true, 5-bit regs,
  //      one-hot) ----
  bool output_sync_latches = true;  ///< registered copies of every output
  unsigned reg_addr_bits = 5;       ///< 5 = 32 registers, 2 = 4 registers
  bool fetch_controller = true;     ///< IF stage FSM + IF/ID latch group
  bool aux_outputs = true;  ///< datapath-control outputs (ALU op, mem size,
                            ///< WB select) and the latches that carry them
  bool onehot_opclass = true;       ///< one-hot vs binary stage class encoding
  bool interlock_registers = true;  ///< redundant latched interlock results
  // ---- Requirement ablations (not part of the ladder) ----
  bool keep_dest_in_state = true;
  bool expose_dest_outputs = true;
  // ---- Scale reduction for explicit-tour experiments ----
  bool reduced_isa = false;  ///< restrict to {nop, alu, load, store, branch}
};

struct BuiltTestModel {
  sym::SequentialCircuit circuit;
  unsigned num_latches = 0;
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  TestModelOptions options;
};

/// Builds the control test model netlist for the given options.
BuiltTestModel build_dlx_control_model(const TestModelOptions& options = {});

/// The abstraction ladder of Figure 3(b): initial model first, fully
/// abstracted final model last. Labels quote the paper's step names.
struct LadderStep {
  std::string label;
  TestModelOptions options;
};

std::vector<LadderStep> figure3b_ladder();

}  // namespace simcov::testmodel
