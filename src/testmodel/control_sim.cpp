#include "testmodel/control_sim.hpp"

#include <stdexcept>

namespace simcov::testmodel {

ControlModelSim::ControlModelSim(const BuiltTestModel& model) : model_(model) {
  const auto& c = model_.circuit;
  // Classify every network input as latch or primary input, by signal id.
  std::map<sym::SignalId, std::size_t> latch_of;
  for (std::size_t j = 0; j < c.latches.size(); ++j) {
    latch_of[c.latches[j].current] = j;
  }
  std::map<sym::SignalId, std::string> pi_name;
  const auto net_inputs = c.net.inputs();
  for (std::size_t k = 0; k < net_inputs.size(); ++k) {
    pi_name[net_inputs[k]] = c.net.input_name(k);
  }
  auto parse_pi = [](const std::string& name, Role& role) {
    auto suffix_bits = [&](std::size_t prefix_len) {
      return static_cast<unsigned>(std::stoul(name.substr(prefix_len)));
    };
    if (name == "branch_outcome") {
      role.pi_kind = PiKind::kBranchOutcome;
    } else if (name == "instr_valid") {
      role.pi_kind = PiKind::kInstrValid;
    } else if (name.rfind("op", 0) == 0) {
      role.pi_kind = PiKind::kOpBit;
      role.pi_bit = suffix_bits(2);
    } else if (name.rfind("rs1_", 0) == 0) {
      role.pi_kind = PiKind::kRs1Bit;
      role.pi_bit = suffix_bits(4);
    } else if (name.rfind("rs2_", 0) == 0) {
      role.pi_kind = PiKind::kRs2Bit;
      role.pi_bit = suffix_bits(4);
    } else if (name.rfind("rd_", 0) == 0) {
      role.pi_kind = PiKind::kRdBit;
      role.pi_bit = suffix_bits(3);
    } else {
      throw std::logic_error("ControlModelSim: unmapped primary input " +
                             name);
    }
  };
  roles_.reserve(net_inputs.size());
  for (sym::SignalId s : net_inputs) {
    Role role;
    const auto it = latch_of.find(s);
    if (it != latch_of.end()) {
      role.is_latch = true;
      role.latch_index = it->second;
    } else {
      parse_pi(pi_name[s], role);
    }
    roles_.push_back(role);
  }
  for (std::size_t k = 0; k < c.outputs.size(); ++k) {
    output_index_[c.outputs[k].first] = k;
  }
  input_scratch_.assign(roles_.size(), false);
  reset();
}

void ControlModelSim::reset() {
  latches_.assign(model_.circuit.latches.size(), false);
  for (std::size_t j = 0; j < latches_.size(); ++j) {
    latches_[j] = model_.circuit.latches[j].init;
  }
  last_outputs_.assign(model_.circuit.outputs.size(), false);
}

void ControlModelSim::fill_network_inputs(const ControlInput& in) const {
  const bool onehot = model_.options.onehot_opclass;
  const unsigned cls_value = static_cast<unsigned>(in.cls);
  for (std::size_t k = 0; k < roles_.size(); ++k) {
    const Role& role = roles_[k];
    if (role.is_latch) {
      input_scratch_[k] = latches_[role.latch_index];
      continue;
    }
    switch (role.pi_kind) {
      case PiKind::kOpBit:
        input_scratch_[k] = onehot ? (role.pi_bit == cls_value)
                                   : (((cls_value >> role.pi_bit) & 1u) != 0);
        break;
      case PiKind::kRs1Bit:
        input_scratch_[k] = ((in.rs1 >> role.pi_bit) & 1u) != 0;
        break;
      case PiKind::kRs2Bit:
        input_scratch_[k] = ((in.rs2 >> role.pi_bit) & 1u) != 0;
        break;
      case PiKind::kRdBit:
        input_scratch_[k] = ((in.rd >> role.pi_bit) & 1u) != 0;
        break;
      case PiKind::kBranchOutcome:
        input_scratch_[k] = in.branch_outcome;
        break;
      case PiKind::kInstrValid:
        input_scratch_[k] = in.instr_valid;
        break;
    }
  }
}

bool ControlModelSim::input_valid(const ControlInput& in) const {
  fill_network_inputs(in);
  static thread_local std::vector<bool> sig;
  model_.circuit.net.eval_into(input_scratch_, sig);
  return !model_.circuit.valid.has_value() || sig[*model_.circuit.valid];
}

void ControlModelSim::step_fast(const ControlInput& in) {
  fill_network_inputs(in);
  static thread_local std::vector<bool> sig;
  model_.circuit.net.eval_into(input_scratch_, sig);
  if (model_.circuit.valid.has_value() && !sig[*model_.circuit.valid]) {
    throw std::domain_error("ControlModelSim: invalid input combination");
  }
  const auto& outputs = model_.circuit.outputs;
  for (std::size_t k = 0; k < outputs.size(); ++k) {
    last_outputs_[k] = sig[outputs[k].second];
  }
  std::vector<bool> next(latches_.size());
  for (std::size_t j = 0; j < latches_.size(); ++j) {
    next[j] = sig[model_.circuit.latches[j].next];
  }
  latches_ = std::move(next);
}

std::map<std::string, bool> ControlModelSim::step(const ControlInput& in) {
  step_fast(in);
  std::map<std::string, bool> named;
  for (const auto& [name, index] : output_index_) {
    named[name] = last_outputs_[index];
  }
  return named;
}

std::size_t ControlModelSim::output_index(const std::string& name) const {
  const auto it = output_index_.find(name);
  if (it == output_index_.end()) {
    throw std::out_of_range("ControlModelSim: no output named " + name);
  }
  return it->second;
}

bool ControlModelSim::out(const std::string& name) const {
  return last_outputs_[output_index(name)];
}

}  // namespace simcov::testmodel
