#include "testmodel/control_sim.hpp"

#include <stdexcept>

namespace simcov::testmodel {

std::vector<InputRole> classify_network_inputs(const BuiltTestModel& model) {
  const auto& c = model.circuit;
  // Classify every network input as latch or primary input, by signal id.
  std::map<sym::SignalId, std::size_t> latch_of;
  for (std::size_t j = 0; j < c.latches.size(); ++j) {
    latch_of[c.latches[j].current] = j;
  }
  std::map<sym::SignalId, std::string> pi_name;
  const auto net_inputs = c.net.inputs();
  for (std::size_t k = 0; k < net_inputs.size(); ++k) {
    pi_name[net_inputs[k]] = c.net.input_name(k);
  }
  auto parse_pi = [](const std::string& name, InputRole& role) {
    auto suffix_bits = [&](std::size_t prefix_len) {
      return static_cast<unsigned>(std::stoul(name.substr(prefix_len)));
    };
    if (name == "branch_outcome") {
      role.pi_kind = InputRole::Pi::kBranchOutcome;
    } else if (name == "instr_valid") {
      role.pi_kind = InputRole::Pi::kInstrValid;
    } else if (name.rfind("op", 0) == 0) {
      role.pi_kind = InputRole::Pi::kOpBit;
      role.pi_bit = suffix_bits(2);
    } else if (name.rfind("rs1_", 0) == 0) {
      role.pi_kind = InputRole::Pi::kRs1Bit;
      role.pi_bit = suffix_bits(4);
    } else if (name.rfind("rs2_", 0) == 0) {
      role.pi_kind = InputRole::Pi::kRs2Bit;
      role.pi_bit = suffix_bits(4);
    } else if (name.rfind("rd_", 0) == 0) {
      role.pi_kind = InputRole::Pi::kRdBit;
      role.pi_bit = suffix_bits(3);
    } else {
      throw std::logic_error("ControlModelSim: unmapped primary input " +
                             name);
    }
  };
  std::vector<InputRole> roles;
  roles.reserve(net_inputs.size());
  for (sym::SignalId s : net_inputs) {
    InputRole role;
    const auto it = latch_of.find(s);
    if (it != latch_of.end()) {
      role.is_latch = true;
      role.latch_index = it->second;
    } else {
      parse_pi(pi_name[s], role);
    }
    roles.push_back(role);
  }
  return roles;
}

bool role_pi_value(const InputRole& role, const ControlInput& in,
                   bool onehot) {
  const unsigned cls_value = static_cast<unsigned>(in.cls);
  switch (role.pi_kind) {
    case InputRole::Pi::kOpBit:
      return onehot ? (role.pi_bit == cls_value)
                    : (((cls_value >> role.pi_bit) & 1u) != 0);
    case InputRole::Pi::kRs1Bit:
      return ((in.rs1 >> role.pi_bit) & 1u) != 0;
    case InputRole::Pi::kRs2Bit:
      return ((in.rs2 >> role.pi_bit) & 1u) != 0;
    case InputRole::Pi::kRdBit:
      return ((in.rd >> role.pi_bit) & 1u) != 0;
    case InputRole::Pi::kBranchOutcome:
      return in.branch_outcome;
    case InputRole::Pi::kInstrValid:
      return in.instr_valid;
  }
  return false;
}

ControlModelSim::ControlModelSim(const BuiltTestModel& model) : model_(model) {
  const auto& c = model_.circuit;
  roles_ = classify_network_inputs(model_);
  for (std::size_t k = 0; k < c.outputs.size(); ++k) {
    output_index_[c.outputs[k].first] = k;
  }
  input_scratch_.assign(roles_.size(), false);
  reset();
}

void ControlModelSim::reset() {
  latches_.assign(model_.circuit.latches.size(), false);
  for (std::size_t j = 0; j < latches_.size(); ++j) {
    latches_[j] = model_.circuit.latches[j].init;
  }
  last_outputs_.assign(model_.circuit.outputs.size(), false);
}

void ControlModelSim::fill_network_inputs(const ControlInput& in) const {
  const bool onehot = model_.options.onehot_opclass;
  for (std::size_t k = 0; k < roles_.size(); ++k) {
    const InputRole& role = roles_[k];
    input_scratch_[k] = role.is_latch ? static_cast<bool>(
                                            latches_[role.latch_index])
                                      : role_pi_value(role, in, onehot);
  }
}

bool ControlModelSim::input_valid(const ControlInput& in) const {
  fill_network_inputs(in);
  static thread_local std::vector<bool> sig;
  model_.circuit.net.eval_into(input_scratch_, sig);
  return !model_.circuit.valid.has_value() || sig[*model_.circuit.valid];
}

void ControlModelSim::step_fast(const ControlInput& in) {
  fill_network_inputs(in);
  static thread_local std::vector<bool> sig;
  model_.circuit.net.eval_into(input_scratch_, sig);
  if (model_.circuit.valid.has_value() && !sig[*model_.circuit.valid]) {
    throw std::domain_error("ControlModelSim: invalid input combination");
  }
  const auto& outputs = model_.circuit.outputs;
  for (std::size_t k = 0; k < outputs.size(); ++k) {
    last_outputs_[k] = sig[outputs[k].second];
  }
  std::vector<bool> next(latches_.size());
  for (std::size_t j = 0; j < latches_.size(); ++j) {
    next[j] = sig[model_.circuit.latches[j].next];
  }
  latches_ = std::move(next);
}

std::map<std::string, bool> ControlModelSim::step(const ControlInput& in) {
  step_fast(in);
  std::map<std::string, bool> named;
  for (const auto& [name, index] : output_index_) {
    named[name] = last_outputs_[index];
  }
  return named;
}

std::size_t ControlModelSim::output_index(const std::string& name) const {
  const auto it = output_index_.find(name);
  if (it == output_index_.end()) {
    throw std::out_of_range("ControlModelSim: no output named " + name);
  }
  return it->second;
}

bool ControlModelSim::out(const std::string& name) const {
  return last_outputs_[output_index(name)];
}

}  // namespace simcov::testmodel
