#include "testmodel/testmodel.hpp"

#include <map>
#include <stdexcept>

#include "dlx/isa.hpp"

namespace simcov::testmodel {

using dlx::OpClass;
using sym::LogicNetwork;
using sym::SequentialCircuit;
using sym::SignalId;

namespace {

/// Instruction classes the control model distinguishes, ordered as in
/// dlx::OpClass (values 0..10).
constexpr unsigned kNumClasses = 11;

constexpr bool class_reads_rs1(unsigned c) {
  switch (static_cast<OpClass>(c)) {
    case OpClass::kAlu:
    case OpClass::kAluImm:
    case OpClass::kLoad:
    case OpClass::kStore:
    case OpClass::kBranch:
    case OpClass::kJumpReg:
    case OpClass::kJumpLinkReg:
      return true;
    default:
      return false;
  }
}

constexpr bool class_reads_rs2(unsigned c) {
  const auto cls = static_cast<OpClass>(c);
  return cls == OpClass::kAlu || cls == OpClass::kStore;
}

constexpr bool class_writes(unsigned c) {
  switch (static_cast<OpClass>(c)) {
    case OpClass::kAlu:
    case OpClass::kAluImm:
    case OpClass::kLoad:
    case OpClass::kJumpLink:
    case OpClass::kJumpLinkReg:
      return true;
    default:
      return false;
  }
}

constexpr bool class_is_link(unsigned c) {
  const auto cls = static_cast<OpClass>(c);
  return cls == OpClass::kJumpLink || cls == OpClass::kJumpLinkReg;
}

constexpr bool class_is_jump(unsigned c) {
  switch (static_cast<OpClass>(c)) {
    case OpClass::kJump:
    case OpClass::kJumpLink:
    case OpClass::kJumpReg:
    case OpClass::kJumpLinkReg:
      return true;
    default:
      return false;
  }
}

/// Helper for building the netlist: bit-vector operations and latch-group
/// bookkeeping on top of LogicNetwork.
class Builder {
 public:
  explicit Builder(const TestModelOptions& opt) : opt_(opt) {
    if (opt.reg_addr_bits < 1 || opt.reg_addr_bits > 5) {
      throw std::invalid_argument(
          "build_dlx_control_model: reg_addr_bits must be in [1, 5]");
    }
    allowed_.assign(kNumClasses, true);
    if (opt.reduced_isa) {
      allowed_.assign(kNumClasses, false);
      for (OpClass c : {OpClass::kNop, OpClass::kAlu, OpClass::kLoad,
                        OpClass::kStore, OpClass::kBranch}) {
        allowed_[static_cast<unsigned>(c)] = true;
      }
    }
  }

  LogicNetwork& net() { return circuit_.net; }

  SignalId pi(const std::string& name) {
    const SignalId s = net().add_input(name);
    circuit_.primary_inputs.push_back(s);
    return s;
  }

  std::vector<SignalId> pi_vec(const std::string& name, unsigned width) {
    std::vector<SignalId> v;
    for (unsigned b = 0; b < width; ++b) v.push_back(pi(name + std::to_string(b)));
    return v;
  }

  SignalId latch(const std::string& name) {
    const SignalId s = net().add_input(name);
    latch_inputs_.push_back(s);
    latch_names_.push_back(name);
    return s;
  }

  std::vector<SignalId> latch_vec(const std::string& name, unsigned width) {
    std::vector<SignalId> v;
    for (unsigned b = 0; b < width; ++b) {
      v.push_back(latch(name + std::to_string(b)));
    }
    return v;
  }

  void drive(SignalId latch_in, SignalId next) {
    next_of_[latch_in] = next;
  }
  void drive_vec(const std::vector<SignalId>& latch_in,
                 const std::vector<SignalId>& next) {
    for (std::size_t b = 0; b < latch_in.size(); ++b) {
      drive(latch_in[b], next[b]);
    }
  }

  void output(const std::string& name, SignalId s) {
    raw_outputs_.emplace_back(name, s);
  }
  void output_vec(const std::string& name, const std::vector<SignalId>& v) {
    for (std::size_t b = 0; b < v.size(); ++b) {
      output(name + std::to_string(b), v[b]);
    }
  }

  // ---- vector helpers -------------------------------------------------------
  std::vector<SignalId> zeros(unsigned width) {
    return std::vector<SignalId>(width, net().constant(false));
  }
  std::vector<SignalId> const_vec(unsigned width, std::uint32_t value) {
    std::vector<SignalId> v;
    for (unsigned b = 0; b < width; ++b) {
      v.push_back(net().constant(((value >> b) & 1u) != 0));
    }
    return v;
  }
  std::vector<SignalId> mux_vec(SignalId sel, const std::vector<SignalId>& t,
                                const std::vector<SignalId>& f) {
    std::vector<SignalId> v;
    for (std::size_t b = 0; b < t.size(); ++b) {
      v.push_back(net().make_mux(sel, t[b], f[b]));
    }
    return v;
  }
  std::vector<SignalId> gate_vec(SignalId en, const std::vector<SignalId>& x) {
    std::vector<SignalId> v;
    for (SignalId s : x) v.push_back(net().make_and(en, s));
    return v;
  }
  SignalId nonzero(const std::vector<SignalId>& x) { return net().make_or(x); }

  /// Class encoding width for latches/PIs.
  [[nodiscard]] unsigned cls_width() const {
    return opt_.onehot_opclass ? kNumClasses : 4;
  }

  /// Predicate "this class vector encodes class c".
  SignalId is_class(const std::vector<SignalId>& cls, unsigned c) {
    if (opt_.onehot_opclass) return cls[c];
    return net().make_eq_const(cls, c);
  }

  /// OR of is_class over all allowed classes satisfying `pred`.
  template <typename Pred>
  SignalId class_pred(const std::vector<SignalId>& cls, Pred pred) {
    std::vector<SignalId> terms;
    for (unsigned c = 0; c < kNumClasses; ++c) {
      if (allowed_[c] && pred(c)) terms.push_back(is_class(cls, c));
    }
    return net().make_or(terms);
  }

  /// The canonical encoding of class value c, as a constant vector.
  std::vector<SignalId> class_const(unsigned c) {
    if (opt_.onehot_opclass) {
      std::vector<SignalId> v = zeros(kNumClasses);
      v[c] = net().constant(true);
      return v;
    }
    return const_vec(4, c);
  }

  /// Format constraint on the raw instruction-field primary inputs.
  SignalId format_constraint(const std::vector<SignalId>& cls,
                             const std::vector<SignalId>& rs1,
                             const std::vector<SignalId>& rs2,
                             const std::vector<SignalId>& rd) {
    std::vector<SignalId> conj;
    if (opt_.onehot_opclass) {
      // Exactly one allowed class bit set; disallowed bits always 0.
      std::vector<SignalId> one_hot_terms;
      for (unsigned c = 0; c < kNumClasses; ++c) {
        if (!allowed_[c]) {
          conj.push_back(net().make_not(cls[c]));
          continue;
        }
        SignalId only_c = cls[c];
        for (unsigned d = 0; d < kNumClasses; ++d) {
          if (d != c) only_c = net().make_and(only_c, net().make_not(cls[d]));
        }
        one_hot_terms.push_back(only_c);
      }
      conj.push_back(net().make_or(one_hot_terms));
    } else {
      std::vector<SignalId> in_range;
      for (unsigned c = 0; c < kNumClasses; ++c) {
        if (allowed_[c]) in_range.push_back(net().make_eq_const(cls, c));
      }
      conj.push_back(net().make_or(in_range));
    }
    // Unused register fields must be zero (input don't-care normalization).
    const SignalId rs1_zero = net().make_not(nonzero(rs1));
    const SignalId rs2_zero = net().make_not(nonzero(rs2));
    const SignalId rd_zero = net().make_not(nonzero(rd));
    for (unsigned c = 0; c < kNumClasses; ++c) {
      if (!allowed_[c]) continue;
      const SignalId when = is_class(cls, c);
      const SignalId not_when = net().make_not(when);
      if (!class_reads_rs1(c)) conj.push_back(net().make_or(not_when, rs1_zero));
      if (!class_reads_rs2(c)) conj.push_back(net().make_or(not_when, rs2_zero));
      // rd is explicit only for ALU/ALU-imm/load destinations; links use the
      // implicit link register.
      const bool explicit_rd = class_writes(c) && !class_is_link(c);
      if (!explicit_rd) conj.push_back(net().make_or(not_when, rd_zero));
    }
    return net().make_and(conj);
  }

  BuiltTestModel finish(SignalId valid_constraint) {
    // Register outputs if the ladder step keeps synchronizing latches.
    for (auto& [name, sig] : raw_outputs_) {
      if (opt_.output_sync_latches) {
        const SignalId l = latch("out_" + name);
        drive(l, sig);
        circuit_.outputs.emplace_back(name, l);
      } else {
        circuit_.outputs.emplace_back(name, sig);
      }
    }
    circuit_.valid = valid_constraint;
    // Materialize latch records.
    for (std::size_t k = 0; k < latch_inputs_.size(); ++k) {
      const SignalId in = latch_inputs_[k];
      const auto it = next_of_.find(in);
      if (it == next_of_.end()) {
        throw std::logic_error("test model latch has no next-state function: " +
                               latch_names_[k]);
      }
      circuit_.latches.push_back({in, it->second, false, latch_names_[k]});
    }
    BuiltTestModel built;
    built.num_latches = static_cast<unsigned>(circuit_.latches.size());
    built.num_inputs = static_cast<unsigned>(circuit_.primary_inputs.size());
    built.num_outputs = static_cast<unsigned>(circuit_.outputs.size());
    built.options = opt_;
    built.circuit = std::move(circuit_);
    return built;
  }

  const TestModelOptions& opt() const { return opt_; }
  [[nodiscard]] bool allowed(unsigned c) const { return allowed_[c]; }

 private:
  TestModelOptions opt_;
  std::vector<bool> allowed_;
  SequentialCircuit circuit_;
  std::vector<SignalId> latch_inputs_;
  std::vector<std::string> latch_names_;
  std::map<SignalId, SignalId> next_of_;
  std::vector<std::pair<std::string, SignalId>> raw_outputs_;
};

}  // namespace

BuiltTestModel build_dlx_control_model(const TestModelOptions& options) {
  Builder b(options);
  LogicNetwork& net = b.net();
  const unsigned R = options.reg_addr_bits;
  const std::uint32_t link_reg = (1u << R) - 1;  // top register is the link

  // ---- Primary inputs: the reduced instruction format + datapath status ----
  const std::vector<SignalId> pi_cls = b.pi_vec("op", b.cls_width());
  const std::vector<SignalId> pi_rs1 = b.pi_vec("rs1_", R);
  const std::vector<SignalId> pi_rs2 = b.pi_vec("rs2_", R);
  const std::vector<SignalId> pi_rd = b.pi_vec("rd_", R);
  const SignalId branch_outcome = b.pi("branch_outcome");
  const SignalId pi_instr_valid =
      options.fetch_controller ? b.pi("instr_valid") : net.constant(true);

  // ---- Latch groups ----------------------------------------------------------
  // EX stage (the paper's "current instruction").
  const SignalId ex_valid = b.latch("ex_valid");
  const std::vector<SignalId> ex_cls = b.latch_vec("ex_cls", b.cls_width());
  // The register-address vectors are created bit-interleaved: the
  // forwarding/interlock comparators relate bit j of each vector, so keeping
  // those bits adjacent in the (creation-order) BDD variable order keeps the
  // transition relation compact at 32-register scale.
  std::vector<SignalId> ex_rs1(R), ex_rs2(R);
  std::vector<SignalId> ex_dest, mem_dest, wb_dest;
  if (options.keep_dest_in_state) {
    ex_dest.resize(R);
    mem_dest.resize(R);
    wb_dest.resize(R);
  }
  for (unsigned j = 0; j < R; ++j) {
    const std::string bit = std::to_string(j);
    ex_rs1[j] = b.latch("ex_rs1_" + bit);
    ex_rs2[j] = b.latch("ex_rs2_" + bit);
    if (options.keep_dest_in_state) {
      ex_dest[j] = b.latch("ex_dest" + bit);
      mem_dest[j] = b.latch("mem_dest" + bit);
      wb_dest[j] = b.latch("wb_dest" + bit);
    }
  }
  if (!options.keep_dest_in_state) {
    ex_dest = b.zeros(R);
    mem_dest = b.zeros(R);
    wb_dest = b.zeros(R);
  }
  // MEM / WB stages (the "two previous" instructions).
  const SignalId mem_valid = b.latch("mem_valid");
  const std::vector<SignalId> mem_cls = b.latch_vec("mem_cls", b.cls_width());
  const SignalId wb_valid = b.latch("wb_valid");
  const std::vector<SignalId> wb_cls = b.latch_vec("wb_cls", b.cls_width());

  // Optional IF stage (fetch controller + IF/ID latch group).
  SignalId in_valid = pi_instr_valid;
  std::vector<SignalId> in_cls = pi_cls, in_rs1 = pi_rs1, in_rs2 = pi_rs2,
                        in_rd = pi_rd;
  SignalId ifid_valid = 0;
  std::vector<SignalId> ifid_cls, ifid_rs1, ifid_rs2, ifid_rd, fetch_state;
  SignalId halt_seen = 0, fetch_valid = 0;
  if (options.fetch_controller) {
    ifid_valid = b.latch("ifid_valid");
    ifid_cls = b.latch_vec("ifid_cls", b.cls_width());
    ifid_rs1 = b.latch_vec("ifid_rs1_", R);
    ifid_rs2 = b.latch_vec("ifid_rs2_", R);
    ifid_rd = b.latch_vec("ifid_rd_", R);
    fetch_state = b.latch_vec("fetch_state", 4);  // one-hot RUN/STALL/SQ/HALT
    halt_seen = b.latch("halt_seen");
    fetch_valid = b.latch("fetch_valid");
    in_valid = ifid_valid;
    in_cls = ifid_cls;
    in_rs1 = ifid_rs1;
    in_rs2 = ifid_rs2;
    in_rd = ifid_rd;
  }
  // Extra squash state needed when the instruction enters decode directly.
  SignalId squash_pending = 0;
  if (!options.fetch_controller) squash_pending = b.latch("squash_pending");

  // ---- Core control logic ------------------------------------------------------
  const SignalId in_reads_rs1 = b.class_pred(in_cls, class_reads_rs1);
  const SignalId in_reads_rs2 = b.class_pred(in_cls, class_reads_rs2);
  const SignalId in_writes = b.class_pred(in_cls, class_writes);
  const SignalId in_is_link = b.class_pred(in_cls, class_is_link);
  const SignalId in_is_halt = b.class_pred(in_cls, [](unsigned c) {
    return static_cast<OpClass>(c) == OpClass::kHalt;
  });

  const SignalId ex_is_load = b.class_pred(ex_cls, [](unsigned c) {
    return static_cast<OpClass>(c) == OpClass::kLoad;
  });
  const SignalId ex_is_branch = b.class_pred(ex_cls, [](unsigned c) {
    return static_cast<OpClass>(c) == OpClass::kBranch;
  });
  const SignalId ex_is_jump = b.class_pred(ex_cls, class_is_jump);
  const SignalId ex_reads_rs1 = b.class_pred(ex_cls, class_reads_rs1);
  const SignalId ex_reads_rs2 = b.class_pred(ex_cls, class_reads_rs2);

  const SignalId mem_writes = b.class_pred(mem_cls, class_writes);
  const SignalId mem_is_load = b.class_pred(mem_cls, [](unsigned c) {
    return static_cast<OpClass>(c) == OpClass::kLoad;
  });
  const SignalId mem_is_store = b.class_pred(mem_cls, [](unsigned c) {
    return static_cast<OpClass>(c) == OpClass::kStore;
  });
  const SignalId wb_writes = b.class_pred(wb_cls, class_writes);

  // Interlock: load in EX whose destination is read by the incoming
  // instruction (Section 7.1's read-after-write interlock).
  const SignalId ex_dest_nz = b.nonzero(ex_dest);
  const SignalId rs1_hits_ex = net.make_eq(in_rs1, ex_dest);
  const SignalId rs2_hits_ex = net.make_eq(in_rs2, ex_dest);
  const SignalId stall = net.make_and(
      net.make_and(ex_valid, net.make_and(ex_is_load, ex_dest_nz)),
      net.make_and(in_valid,
                   net.make_or(net.make_and(in_reads_rs1, rs1_hits_ex),
                               net.make_and(in_reads_rs2, rs2_hits_ex))));

  // Squash: control transfer resolving in EX.
  const SignalId squash = net.make_and(
      ex_valid,
      net.make_or(ex_is_jump, net.make_and(ex_is_branch, branch_outcome)));

  const SignalId kill =
      options.fetch_controller ? squash : net.make_or(squash, squash_pending);
  const SignalId accept = net.make_and(
      in_valid, net.make_and(net.make_not(stall), net.make_not(kill)));

  // Effective destination of the incoming instruction.
  const std::vector<SignalId> in_dest = b.gate_vec(
      in_writes,
      b.mux_vec(in_is_link, b.const_vec(R, link_reg), in_rd));

  // ---- Forwarding decisions (outputs; computed on the EX instruction) -------
  const SignalId mem_fw_ok = net.make_and(
      net.make_and(mem_valid, mem_writes),
      net.make_and(net.make_not(mem_is_load), b.nonzero(mem_dest)));
  const SignalId wb_fw_ok =
      net.make_and(net.make_and(wb_valid, wb_writes), b.nonzero(wb_dest));
  const SignalId a_hits_mem =
      net.make_and(net.make_eq(ex_rs1, mem_dest), mem_fw_ok);
  const SignalId a_hits_wb =
      net.make_and(net.make_eq(ex_rs1, wb_dest), wb_fw_ok);
  const SignalId b_hits_mem =
      net.make_and(net.make_eq(ex_rs2, mem_dest), mem_fw_ok);
  const SignalId b_hits_wb =
      net.make_and(net.make_eq(ex_rs2, wb_dest), wb_fw_ok);
  const SignalId ex_active_rs1 = net.make_and(ex_valid, ex_reads_rs1);
  const SignalId ex_active_rs2 = net.make_and(ex_valid, ex_reads_rs2);
  const SignalId fwdA_exmem = net.make_and(ex_active_rs1, a_hits_mem);
  const SignalId fwdA_memwb = net.make_and(
      ex_active_rs1, net.make_and(net.make_not(a_hits_mem), a_hits_wb));
  const SignalId fwdB_exmem = net.make_and(ex_active_rs2, b_hits_mem);
  const SignalId fwdB_memwb = net.make_and(
      ex_active_rs2, net.make_and(net.make_not(b_hits_mem), b_hits_wb));

  // ---- Next-state functions ---------------------------------------------------
  b.drive(ex_valid, accept);
  b.drive_vec(ex_cls, b.gate_vec(accept, in_cls));
  b.drive_vec(ex_rs1, b.gate_vec(accept, in_rs1));
  b.drive_vec(ex_rs2, b.gate_vec(accept, in_rs2));
  if (options.keep_dest_in_state) {
    b.drive_vec(ex_dest, b.gate_vec(accept, in_dest));
    b.drive_vec(mem_dest, b.gate_vec(ex_valid, ex_dest));
    b.drive_vec(wb_dest, b.gate_vec(mem_valid, mem_dest));
  }
  b.drive(mem_valid, ex_valid);
  b.drive_vec(mem_cls, b.gate_vec(ex_valid, ex_cls));
  b.drive(wb_valid, mem_valid);
  b.drive_vec(wb_cls, b.gate_vec(mem_valid, mem_cls));
  if (!options.fetch_controller) b.drive(squash_pending, squash);

  if (options.fetch_controller) {
    // IF/ID: hold on stall, kill on squash, else take the fetched word.
    const SignalId take = net.make_and(pi_instr_valid, net.make_not(squash));
    auto held = [&](const std::vector<SignalId>& cur,
                    const std::vector<SignalId>& incoming) {
      return b.mux_vec(stall, cur, b.gate_vec(take, incoming));
    };
    b.drive(ifid_valid,
            net.make_mux(stall, ifid_valid, take));
    b.drive_vec(ifid_cls, held(ifid_cls, pi_cls));
    b.drive_vec(ifid_rs1, held(ifid_rs1, pi_rs1));
    b.drive_vec(ifid_rs2, held(ifid_rs2, pi_rs2));
    b.drive_vec(ifid_rd, held(ifid_rd, pi_rd));
    // Fetch-state FSM (one-hot): RUN / STALLED / SQUASHING / HALTED.
    const SignalId halt_now =
        net.make_or(halt_seen, net.make_and(accept, in_is_halt));
    const SignalId not_halt = net.make_not(halt_now);
    b.drive(fetch_state[0],
            net.make_and(not_halt, net.make_and(net.make_not(stall),
                                                net.make_not(squash))));
    b.drive(fetch_state[1], net.make_and(not_halt, stall));
    b.drive(fetch_state[2], net.make_and(not_halt, squash));
    b.drive(fetch_state[3], halt_now);
    b.drive(halt_seen, halt_now);
    b.drive(fetch_valid, net.make_and(pi_instr_valid, not_halt));
  }

  // Redundant interlock registers (the "less efficient implementation
  // style" latches the ladder removes last).
  if (options.interlock_registers) {
    b.drive(b.latch("r_stall"), stall);
    b.drive(b.latch("r_squash"), squash);
    b.drive(b.latch("r_fwdA_exmem"), fwdA_exmem);
    b.drive(b.latch("r_fwdA_memwb"), fwdA_memwb);
    b.drive(b.latch("r_fwdB_exmem"), fwdB_exmem);
    b.drive(b.latch("r_fwdB_memwb"), fwdB_memwb);
    b.drive(b.latch("r_cmp_a_mem"), a_hits_mem);
    b.drive(b.latch("r_cmp_a_wb"), a_hits_wb);
    b.drive(b.latch("r_cmp_b_mem"), b_hits_mem);
    b.drive(b.latch("r_cmp_b_wb"), b_hits_wb);
    b.drive(b.latch("r_cmp_rs1_ex"), rs1_hits_ex);
    b.drive(b.latch("r_cmp_rs2_ex"), rs2_hits_ex);
  }

  // ---- Outputs -------------------------------------------------------------------
  b.output("stall", stall);
  b.output("squash", squash);
  b.output("fwdA_exmem", fwdA_exmem);
  b.output("fwdA_memwb", fwdA_memwb);
  b.output("fwdB_exmem", fwdB_exmem);
  b.output("fwdB_memwb", fwdB_memwb);
  if (options.expose_dest_outputs && options.keep_dest_in_state) {
    // Requirement 5: the interaction state (destination addresses) is made
    // observable during simulation.
    b.output_vec("obs_ex_dest", ex_dest);
    b.output_vec("obs_mem_dest", mem_dest);
    b.output_vec("obs_wb_dest", wb_dest);
  }

  // Datapath-control signals that do not affect control flow, plus the
  // latches carrying them down the pipe (removed by the ladder's
  // "remove outputs not affecting control logic" step).
  if (options.aux_outputs) {
    // Binary operation code derived from the incoming class.
    std::vector<SignalId> in_cls_bin;
    if (options.onehot_opclass) {
      for (unsigned bit = 0; bit < 4; ++bit) {
        std::vector<SignalId> terms;
        for (unsigned c = 0; c < kNumClasses; ++c) {
          if (b.allowed(c) && ((c >> bit) & 1u)) terms.push_back(in_cls[c]);
        }
        in_cls_bin.push_back(net.make_or(terms));
      }
    } else {
      in_cls_bin = in_cls;
    }
    const SignalId in_is_load = b.class_pred(in_cls, [](unsigned c) {
      return static_cast<OpClass>(c) == OpClass::kLoad;
    });
    const SignalId in_is_store = b.class_pred(in_cls, [](unsigned c) {
      return static_cast<OpClass>(c) == OpClass::kStore;
    });
    const std::vector<SignalId> ex_aluop = b.latch_vec("ex_aluop", 4);
    const std::vector<SignalId> mem_aluop = b.latch_vec("mem_aluop", 4);
    b.drive_vec(ex_aluop, b.gate_vec(accept, in_cls_bin));
    b.drive_vec(mem_aluop, b.gate_vec(ex_valid, ex_aluop));
    const std::vector<SignalId> ex_memsz = b.latch_vec("ex_memsz", 2);
    const std::vector<SignalId> mem_memsz = b.latch_vec("mem_memsz", 2);
    const std::vector<SignalId> wb_memsz = b.latch_vec("wb_memsz", 2);
    std::vector<SignalId> in_memsz{net.make_and(accept, in_is_load),
                                   net.make_and(accept, in_is_store)};
    b.drive_vec(ex_memsz, in_memsz);
    b.drive_vec(mem_memsz, b.gate_vec(ex_valid, ex_memsz));
    b.drive_vec(wb_memsz, b.gate_vec(mem_valid, mem_memsz));
    const SignalId ex_wbsel = b.latch("ex_wbsel");
    const SignalId mem_wbsel = b.latch("mem_wbsel");
    const SignalId wb_wbsel = b.latch("wb_wbsel");
    b.drive(ex_wbsel, net.make_and(accept, in_is_load));
    b.drive(mem_wbsel, net.make_and(ex_valid, ex_wbsel));
    b.drive(wb_wbsel, net.make_and(mem_valid, mem_wbsel));
    const SignalId ex_islink = b.latch("ex_islink");
    const SignalId mem_islink = b.latch("mem_islink");
    const SignalId wb_islink = b.latch("wb_islink");
    b.drive(ex_islink, net.make_and(accept, in_is_link));
    b.drive(mem_islink, net.make_and(ex_valid, ex_islink));
    b.drive(wb_islink, net.make_and(mem_valid, mem_islink));

    b.output_vec("aluop", mem_aluop);
    b.output_vec("memsz", mem_memsz);
    b.output("wbsel", wb_wbsel);
    b.output("islink", wb_islink);
    b.output("mem_read", net.make_and(mem_valid, mem_is_load));
    b.output("mem_write", net.make_and(mem_valid, mem_is_store));
  }

  // ---- Input constraint ------------------------------------------------------
  SignalId constraint = b.format_constraint(pi_cls, pi_rs1, pi_rs2, pi_rd);
  // The branch-outcome status signal is generated by the datapath only when
  // a branch is actually in EX ("relationships between datapath outputs
  // modeled as primary inputs", Section 7.2).
  const SignalId branch_ok = net.make_or(
      net.make_not(branch_outcome), net.make_and(ex_valid, ex_is_branch));
  constraint = net.make_and(constraint, branch_ok);

  return b.finish(constraint);
}

std::vector<LadderStep> figure3b_ladder() {
  std::vector<LadderStep> steps;
  TestModelOptions opt;  // initial model: everything present, 32 registers
  steps.push_back({"initial model", opt});
  opt.output_sync_latches = false;
  steps.push_back({"no synchronizing latches for outputs", opt});
  opt.reg_addr_bits = 2;
  steps.push_back({"4 registers instead of 32", opt});
  opt.fetch_controller = false;
  steps.push_back({"fetch controller removed", opt});
  opt.aux_outputs = false;
  steps.push_back({"remove outputs not affecting control logic", opt});
  opt.onehot_opclass = false;
  steps.push_back({"1-hot to binary encoding", opt});
  opt.interlock_registers = false;
  steps.push_back({"remove interlock registers (final model)", opt});
  return steps;
}

}  // namespace simcov::testmodel
