// Concrete cycle-level simulator for a built control test model.
//
// Drives the SequentialCircuit of a BuiltTestModel with decoded instruction
// inputs and reads back the named control outputs. Used by tests to check
// the model's stall/squash/forwarding behaviour against the real pipeline,
// and by the validation harness when replaying tours (hot path: all name
// resolution happens once, in the constructor).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dlx/isa.hpp"
#include "testmodel/testmodel.hpp"

namespace simcov::testmodel {

/// One cycle's worth of test-model primary inputs: the (reduced-format)
/// instruction entering decode plus the datapath status signals.
struct ControlInput {
  dlx::OpClass cls = dlx::OpClass::kNop;
  unsigned rs1 = 0;
  unsigned rs2 = 0;
  unsigned rd = 0;
  bool branch_outcome = false;
  bool instr_valid = true;  ///< only meaningful with a fetch controller
};

/// How one network input of a built control model is driven: either from a
/// latch (by latch index) or from a field of the decoded ControlInput.
/// Shared between the scalar ControlModelSim and the 64-lane
/// PackedControlModelSim so the two fill network inputs identically.
struct InputRole {
  enum class Pi : std::uint8_t {
    kOpBit, kRs1Bit, kRs2Bit, kRdBit, kBranchOutcome, kInstrValid,
  };
  bool is_latch = false;
  std::size_t latch_index = 0;  ///< when is_latch
  Pi pi_kind = Pi::kOpBit;
  unsigned pi_bit = 0;
};

/// Classifies every network input of the model's circuit, in network input
/// order, by latch signal id or primary-input name. Throws std::logic_error
/// on an unmapped primary-input name.
std::vector<InputRole> classify_network_inputs(const BuiltTestModel& model);

/// Value a non-latch role takes for the decoded input `in`. `onehot`
/// follows TestModelOptions::onehot_opclass.
[[nodiscard]] bool role_pi_value(const InputRole& role, const ControlInput& in,
                                 bool onehot);

class ControlModelSim {
 public:
  explicit ControlModelSim(const BuiltTestModel& model);

  /// Evaluates the input constraint for `in` against the *current* state.
  [[nodiscard]] bool input_valid(const ControlInput& in) const;

  /// Applies one clock cycle; returns the named output values sampled
  /// before the edge (also retrievable via out()). Throws std::domain_error
  /// when the input violates the model's validity constraint.
  std::map<std::string, bool> step(const ControlInput& in);

  /// Like step(), but without materializing the name->value map. Output
  /// values are read back with out() / out_index().
  void step_fast(const ControlInput& in);

  /// Value of a named output after the last step. Throws std::out_of_range
  /// for unknown names.
  [[nodiscard]] bool out(const std::string& name) const;
  /// Index-based access for hot loops (resolve once with output_index).
  [[nodiscard]] std::size_t output_index(const std::string& name) const;
  [[nodiscard]] bool out_at(std::size_t index) const {
    return last_outputs_[index];
  }

  void reset();
  [[nodiscard]] const std::vector<bool>& latch_values() const {
    return latches_;
  }

 private:
  void fill_network_inputs(const ControlInput& in) const;

  const BuiltTestModel& model_;
  std::vector<InputRole> roles_;
  std::vector<bool> latches_;
  std::vector<bool> last_outputs_;           // by output index
  std::map<std::string, std::size_t> output_index_;
  mutable std::vector<bool> input_scratch_;  // reused network-input buffer
};

}  // namespace simcov::testmodel
