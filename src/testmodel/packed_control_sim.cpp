#include "testmodel/packed_control_sim.hpp"

#include <stdexcept>

namespace simcov::testmodel {

PackedControlModelSim::PackedControlModelSim(const BuiltTestModel& model)
    : model_(model),
      roles_(classify_network_inputs(model)),
      sim_(model.circuit.net) {
  const auto& c = model_.circuit;
  for (std::size_t k = 0; k < c.outputs.size(); ++k) {
    output_index_[c.outputs[k].first] = k;
  }
  latch_words_.assign(c.latches.size(), 0);
  out_words_.assign(c.outputs.size(), 0);
  reset();
}

void PackedControlModelSim::reset() {
  const auto& c = model_.circuit;
  for (std::size_t j = 0; j < c.latches.size(); ++j) {
    latch_words_[j] = c.latches[j].init ? ~std::uint64_t{0} : 0;
  }
  out_words_.assign(c.outputs.size(), 0);
}

void PackedControlModelSim::step(std::span<const ControlInput> inputs) {
  const std::size_t lanes = inputs.size();
  if (lanes > kLanes) {
    throw std::invalid_argument("PackedControlModelSim::step: too many lanes");
  }
  const bool onehot = model_.options.onehot_opclass;
  input_words_.assign(roles_.size(), 0);
  for (std::size_t k = 0; k < roles_.size(); ++k) {
    const InputRole& role = roles_[k];
    if (role.is_latch) {
      input_words_[k] = latch_words_[role.latch_index];
      continue;
    }
    std::uint64_t word = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (role_pi_value(role, inputs[l], onehot)) {
        word |= std::uint64_t{1} << l;
      }
    }
    input_words_[k] = word;
  }
  sim_.eval_into(input_words_, values_);

  const std::uint64_t lane_mask =
      lanes == kLanes ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
  const auto& c = model_.circuit;
  if (c.valid.has_value() && (values_[*c.valid] & lane_mask) != lane_mask) {
    throw std::domain_error(
        "PackedControlModelSim: invalid input combination");
  }
  for (std::size_t k = 0; k < c.outputs.size(); ++k) {
    out_words_[k] = values_[c.outputs[k].second] & lane_mask;
  }
  // Stepped lanes advance; the rest hold their latch values.
  for (std::size_t j = 0; j < c.latches.size(); ++j) {
    latch_words_[j] = (values_[c.latches[j].next] & lane_mask) |
                      (latch_words_[j] & ~lane_mask);
  }
}

std::size_t PackedControlModelSim::output_index(const std::string& name) const {
  const auto it = output_index_.find(name);
  if (it == output_index_.end()) {
    throw std::out_of_range("PackedControlModelSim: no output named " + name);
  }
  return it->second;
}

}  // namespace simcov::testmodel
