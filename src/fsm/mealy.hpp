// Explicit-state Mealy machines.
//
// The paper models both the implementation and the test model as Mealy
// machines (Section 4.1): transitions carry outputs, errors are classified
// as output errors (wrong output on a transition) or transfer errors (wrong
// destination state). This module provides the explicit representation used
// by the tour generators, the error model, and the distinguishability
// analyses; the symbolic (BDD) representation lives in src/sym.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace simcov::fsm {

using StateId = std::uint32_t;
using InputId = std::uint32_t;
using OutputId = std::uint32_t;

struct Transition {
  StateId next = 0;
  OutputId output = 0;

  friend bool operator==(const Transition&, const Transition&) = default;
};

/// Identifies a transition by its source state and input symbol. For a
/// deterministic machine this pins down exactly one edge of the state graph.
struct TransitionRef {
  StateId state = 0;
  InputId input = 0;

  friend bool operator==(const TransitionRef&, const TransitionRef&) = default;
  friend auto operator<=>(const TransitionRef&, const TransitionRef&) = default;
};

/// A deterministic, possibly partial, Mealy machine.
///
/// States and inputs are dense ids. Undefined (state, input) pairs model
/// invalid input combinations (the paper's "input don't-cares", Section 7.2:
/// only 8228 of 2^25 combinations are valid).
class MealyMachine {
 public:
  MealyMachine() = default;
  MealyMachine(StateId num_states, InputId num_inputs);

  [[nodiscard]] StateId num_states() const { return num_states_; }
  [[nodiscard]] InputId num_inputs() const { return num_inputs_; }

  void set_initial_state(StateId s);
  [[nodiscard]] StateId initial_state() const { return initial_; }

  /// Defines (or redefines) the transition out of `s` on `i`.
  void set_transition(StateId s, InputId i, StateId next, OutputId output);
  /// Removes the transition, making (s, i) undefined.
  void clear_transition(StateId s, InputId i);
  [[nodiscard]] std::optional<Transition> transition(StateId s,
                                                     InputId i) const;

  /// True when every (state, input) pair is defined.
  [[nodiscard]] bool is_complete() const;
  [[nodiscard]] std::size_t num_defined_transitions() const {
    return defined_count_;
  }

  /// Largest output value used, plus one (0 if no transitions defined).
  [[nodiscard]] OutputId output_alphabet_size() const;

  // ---- Simulation ---------------------------------------------------------
  /// Runs the machine from `from`, returning the output sequence.
  /// Throws std::domain_error on an undefined transition.
  [[nodiscard]] std::vector<OutputId> run(std::span<const InputId> inputs,
                                          StateId from) const;
  /// Runs from the initial state.
  [[nodiscard]] std::vector<OutputId> run(std::span<const InputId> inputs) const {
    return run(inputs, initial_);
  }
  /// Final state after consuming `inputs` from `from`.
  [[nodiscard]] StateId run_to_state(std::span<const InputId> inputs,
                                     StateId from) const;

  // ---- Structure ----------------------------------------------------------
  /// States reachable from `from` through defined transitions.
  [[nodiscard]] std::vector<bool> reachable_states(StateId from) const;
  [[nodiscard]] std::size_t num_reachable_states(StateId from) const;
  /// All defined transitions with a reachable source state, in
  /// (state, input) order. These are the transitions a tour must cover.
  [[nodiscard]] std::vector<TransitionRef> reachable_transitions(
      StateId from) const;

  /// Graphviz DOT rendering of the (reachable part of the) state graph,
  /// edges labelled "input/output".
  [[nodiscard]] std::string to_dot(StateId start) const;

  // ---- Naming (optional, for reports) --------------------------------------
  void set_state_name(StateId s, std::string name);
  void set_input_name(InputId i, std::string name);
  [[nodiscard]] std::string state_name(StateId s) const;
  [[nodiscard]] std::string input_name(InputId i) const;

 private:
  [[nodiscard]] std::size_t idx(StateId s, InputId i) const {
    return static_cast<std::size_t>(s) * num_inputs_ + i;
  }
  void check_ids(StateId s, InputId i) const;

  StateId num_states_ = 0;
  InputId num_inputs_ = 0;
  StateId initial_ = 0;
  std::vector<std::optional<Transition>> table_;
  std::size_t defined_count_ = 0;
  std::vector<std::string> state_names_;
  std::vector<std::string> input_names_;
};

/// Result of an equivalence check between two machines.
struct EquivalenceResult {
  bool equivalent = false;
  /// When not equivalent: a shortest input sequence whose output sequences
  /// differ (or that is defined in one machine and not the other).
  std::vector<InputId> counterexample;
};

/// Output-language equivalence of (a from sa) and (b from sb): every input
/// sequence defined in both produces identical outputs, and definedness
/// agrees. BFS over the product machine; counterexamples are shortest.
EquivalenceResult check_equivalence(const MealyMachine& a, StateId sa,
                                    const MealyMachine& b, StateId sb);

/// Convenience: equivalence from the two initial states.
EquivalenceResult check_equivalence(const MealyMachine& a,
                                    const MealyMachine& b);

/// A random complete machine whose states are all reachable from state 0
/// (a spanning in-tree of transitions is planted first). Deterministic in
/// `seed`.
MealyMachine random_connected_machine(StateId num_states, InputId num_inputs,
                                      OutputId num_outputs,
                                      std::uint64_t seed);

}  // namespace simcov::fsm
