#include "fsm/nondet.hpp"

#include <algorithm>
#include <stdexcept>

namespace simcov::fsm {

NondetMealyMachine::NondetMealyMachine(StateId num_states, InputId num_inputs)
    : num_states_(num_states),
      num_inputs_(num_inputs),
      table_(static_cast<std::size_t>(num_states) * num_inputs) {}

void NondetMealyMachine::check_ids(StateId s, InputId i) const {
  if (s >= num_states_) {
    throw std::out_of_range("NondetMealyMachine: bad state id");
  }
  if (i >= num_inputs_) {
    throw std::out_of_range("NondetMealyMachine: bad input id");
  }
}

void NondetMealyMachine::set_initial_state(StateId s) {
  if (s >= num_states_) {
    throw std::out_of_range("NondetMealyMachine: bad state id");
  }
  initial_ = s;
}

void NondetMealyMachine::add_transition(StateId s, InputId i, StateId next,
                                        OutputId output) {
  check_ids(s, i);
  if (next >= num_states_) {
    throw std::out_of_range("NondetMealyMachine: bad next-state id");
  }
  auto& edges = table_[idx(s, i)];
  const Transition t{next, output};
  if (std::find(edges.begin(), edges.end(), t) == edges.end()) {
    edges.push_back(t);
  }
}

std::span<const Transition> NondetMealyMachine::transitions(StateId s,
                                                            InputId i) const {
  check_ids(s, i);
  return table_[idx(s, i)];
}

bool NondetMealyMachine::is_deterministic() const {
  return std::all_of(table_.begin(), table_.end(),
                     [](const auto& edges) { return edges.size() <= 1; });
}

bool NondetMealyMachine::has_output_nondeterminism() const {
  return !output_nondeterministic_pairs().empty();
}

std::vector<TransitionRef> NondetMealyMachine::output_nondeterministic_pairs()
    const {
  std::vector<TransitionRef> result;
  for (StateId s = 0; s < num_states_; ++s) {
    for (InputId i = 0; i < num_inputs_; ++i) {
      const auto& edges = table_[idx(s, i)];
      const bool mixed_outputs =
          std::any_of(edges.begin(), edges.end(), [&](const Transition& t) {
            return t.output != edges.front().output;
          });
      if (mixed_outputs) result.push_back({s, i});
    }
  }
  return result;
}

std::optional<MealyMachine> NondetMealyMachine::to_deterministic() const {
  MealyMachine m(num_states_, num_inputs_);
  m.set_initial_state(initial_);
  for (StateId s = 0; s < num_states_; ++s) {
    for (InputId i = 0; i < num_inputs_; ++i) {
      const auto& edges = table_[idx(s, i)];
      if (edges.empty()) continue;
      if (edges.size() > 1) return std::nullopt;
      m.set_transition(s, i, edges.front().next, edges.front().output);
    }
  }
  return m;
}

}  // namespace simcov::fsm
