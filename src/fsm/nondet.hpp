// Nondeterministic Mealy machines.
//
// The paper notes (Section 4.1) that because "multiple transitions in the
// implementation, with possibly different outputs, may map to the same
// transition in the test model, the test model may have non-deterministic
// outputs." Quotient machines built by the abstraction module therefore land
// here first; output nondeterminism on a (state, input) pair is exactly the
// symptom of abstracting too much (a Requirement 1 hazard, Section 6.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fsm/mealy.hpp"

namespace simcov::fsm {

class NondetMealyMachine {
 public:
  NondetMealyMachine() = default;
  NondetMealyMachine(StateId num_states, InputId num_inputs);

  [[nodiscard]] StateId num_states() const { return num_states_; }
  [[nodiscard]] InputId num_inputs() const { return num_inputs_; }

  void set_initial_state(StateId s);
  [[nodiscard]] StateId initial_state() const { return initial_; }

  /// Adds an edge; duplicate (next, output) pairs on the same (s, i) are
  /// collapsed.
  void add_transition(StateId s, InputId i, StateId next, OutputId output);
  [[nodiscard]] std::span<const Transition> transitions(StateId s,
                                                        InputId i) const;

  /// Exactly one successor edge for every *defined* (state, input) pair.
  [[nodiscard]] bool is_deterministic() const;
  /// Some (state, input) pair admits two edges with different outputs —
  /// the "non-deterministic outputs" the paper warns about.
  [[nodiscard]] bool has_output_nondeterminism() const;
  /// The (state, input) pairs exhibiting output nondeterminism.
  [[nodiscard]] std::vector<TransitionRef> output_nondeterministic_pairs()
      const;

  /// Converts to a deterministic machine. Empty optional when any (s, i)
  /// pair has more than one edge.
  [[nodiscard]] std::optional<MealyMachine> to_deterministic() const;

 private:
  [[nodiscard]] std::size_t idx(StateId s, InputId i) const {
    return static_cast<std::size_t>(s) * num_inputs_ + i;
  }
  void check_ids(StateId s, InputId i) const;

  StateId num_states_ = 0;
  InputId num_inputs_ = 0;
  StateId initial_ = 0;
  std::vector<std::vector<Transition>> table_;
};

}  // namespace simcov::fsm
