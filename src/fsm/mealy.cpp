#include "fsm/mealy.hpp"

#include <algorithm>
#include <deque>
#include <random>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace simcov::fsm {

MealyMachine::MealyMachine(StateId num_states, InputId num_inputs)
    : num_states_(num_states),
      num_inputs_(num_inputs),
      table_(static_cast<std::size_t>(num_states) * num_inputs) {}

void MealyMachine::check_ids(StateId s, InputId i) const {
  if (s >= num_states_) throw std::out_of_range("MealyMachine: bad state id");
  if (i >= num_inputs_) throw std::out_of_range("MealyMachine: bad input id");
}

void MealyMachine::set_initial_state(StateId s) {
  if (s >= num_states_) throw std::out_of_range("MealyMachine: bad state id");
  initial_ = s;
}

void MealyMachine::set_transition(StateId s, InputId i, StateId next,
                                  OutputId output) {
  check_ids(s, i);
  if (next >= num_states_) {
    throw std::out_of_range("MealyMachine: bad next-state id");
  }
  auto& slot = table_[idx(s, i)];
  if (!slot.has_value()) ++defined_count_;
  slot = Transition{next, output};
}

void MealyMachine::clear_transition(StateId s, InputId i) {
  check_ids(s, i);
  auto& slot = table_[idx(s, i)];
  if (slot.has_value()) --defined_count_;
  slot.reset();
}

std::optional<Transition> MealyMachine::transition(StateId s, InputId i) const {
  check_ids(s, i);
  return table_[idx(s, i)];
}

bool MealyMachine::is_complete() const {
  return defined_count_ == table_.size();
}

OutputId MealyMachine::output_alphabet_size() const {
  OutputId max_plus_one = 0;
  for (const auto& t : table_) {
    if (t.has_value()) max_plus_one = std::max(max_plus_one, t->output + 1);
  }
  return max_plus_one;
}

std::vector<OutputId> MealyMachine::run(std::span<const InputId> inputs,
                                        StateId from) const {
  std::vector<OutputId> outputs;
  outputs.reserve(inputs.size());
  StateId at = from;
  for (InputId i : inputs) {
    const auto t = transition(at, i);
    if (!t.has_value()) {
      throw std::domain_error("MealyMachine::run: undefined transition");
    }
    outputs.push_back(t->output);
    at = t->next;
  }
  return outputs;
}

StateId MealyMachine::run_to_state(std::span<const InputId> inputs,
                                   StateId from) const {
  StateId at = from;
  for (InputId i : inputs) {
    const auto t = transition(at, i);
    if (!t.has_value()) {
      throw std::domain_error("MealyMachine::run_to_state: undefined transition");
    }
    at = t->next;
  }
  return at;
}

std::vector<bool> MealyMachine::reachable_states(StateId from) const {
  std::vector<bool> seen(num_states_, false);
  if (from >= num_states_) return seen;
  std::deque<StateId> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (InputId i = 0; i < num_inputs_; ++i) {
      const auto& t = table_[idx(s, i)];
      if (t.has_value() && !seen[t->next]) {
        seen[t->next] = true;
        queue.push_back(t->next);
      }
    }
  }
  return seen;
}

std::size_t MealyMachine::num_reachable_states(StateId from) const {
  const auto seen = reachable_states(from);
  return static_cast<std::size_t>(
      std::count(seen.begin(), seen.end(), true));
}

std::vector<TransitionRef> MealyMachine::reachable_transitions(
    StateId from) const {
  const auto seen = reachable_states(from);
  std::vector<TransitionRef> result;
  for (StateId s = 0; s < num_states_; ++s) {
    if (!seen[s]) continue;
    for (InputId i = 0; i < num_inputs_; ++i) {
      if (table_[idx(s, i)].has_value()) result.push_back({s, i});
    }
  }
  return result;
}

std::string MealyMachine::to_dot(StateId start) const {
  const auto reachable = reachable_states(start);
  std::ostringstream os;
  os << "digraph mealy {\n  rankdir=LR;\n";
  os << "  entry [shape=point];\n  entry -> s" << start << ";\n";
  for (StateId s = 0; s < num_states_; ++s) {
    if (!reachable[s]) continue;
    os << "  s" << s << " [label=\"" << state_name(s)
       << "\", shape=circle];\n";
    for (InputId i = 0; i < num_inputs_; ++i) {
      const auto& t = table_[idx(s, i)];
      if (!t.has_value()) continue;
      os << "  s" << s << " -> s" << t->next << " [label=\"" << input_name(i)
         << "/" << t->output << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

void MealyMachine::set_state_name(StateId s, std::string name) {
  if (s >= num_states_) throw std::out_of_range("MealyMachine: bad state id");
  if (state_names_.size() < num_states_) state_names_.resize(num_states_);
  state_names_[s] = std::move(name);
}

void MealyMachine::set_input_name(InputId i, std::string name) {
  if (i >= num_inputs_) throw std::out_of_range("MealyMachine: bad input id");
  if (input_names_.size() < num_inputs_) input_names_.resize(num_inputs_);
  input_names_[i] = std::move(name);
}

std::string MealyMachine::state_name(StateId s) const {
  if (s < state_names_.size() && !state_names_[s].empty()) {
    return state_names_[s];
  }
  return "s" + std::to_string(s);
}

std::string MealyMachine::input_name(InputId i) const {
  if (i < input_names_.size() && !input_names_[i].empty()) {
    return input_names_[i];
  }
  return "i" + std::to_string(i);
}

// ---------------------------------------------------------------------------
// Equivalence
// ---------------------------------------------------------------------------

EquivalenceResult check_equivalence(const MealyMachine& a, StateId sa,
                                    const MealyMachine& b, StateId sb) {
  if (a.num_inputs() != b.num_inputs()) {
    throw std::invalid_argument(
        "check_equivalence: machines have different input alphabets");
  }
  EquivalenceResult result;
  // BFS over the product machine with parent pointers for counterexamples.
  struct Entry {
    std::int64_t parent;  // index into visited_list, -1 for root
    InputId via;
  };
  std::unordered_map<std::uint64_t, std::size_t> visited;
  std::vector<std::pair<StateId, StateId>> pair_of;
  std::vector<Entry> entry_of;
  auto key = [](StateId x, StateId y) {
    return (static_cast<std::uint64_t>(x) << 32) | y;
  };
  auto rebuild = [&](std::size_t leaf, InputId last) {
    std::vector<InputId> seq{last};
    for (std::int64_t n = static_cast<std::int64_t>(leaf);
         entry_of[n].parent >= 0; n = entry_of[n].parent) {
      seq.push_back(entry_of[n].via);
    }
    std::reverse(seq.begin(), seq.end());
    return seq;
  };

  std::deque<std::size_t> queue;
  visited.emplace(key(sa, sb), 0);
  pair_of.emplace_back(sa, sb);
  entry_of.push_back(Entry{-1, 0});
  queue.push_back(0);

  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    const auto [xa, xb] = pair_of[cur];
    for (InputId i = 0; i < a.num_inputs(); ++i) {
      const auto ta = a.transition(xa, i);
      const auto tb = b.transition(xb, i);
      if (ta.has_value() != tb.has_value()) {
        result.counterexample = rebuild(cur, i);
        return result;  // definedness mismatch
      }
      if (!ta.has_value()) continue;
      if (ta->output != tb->output) {
        result.counterexample = rebuild(cur, i);
        return result;
      }
      const std::uint64_t k = key(ta->next, tb->next);
      if (visited.emplace(k, pair_of.size()).second) {
        pair_of.emplace_back(ta->next, tb->next);
        entry_of.push_back(Entry{static_cast<std::int64_t>(cur), i});
        queue.push_back(pair_of.size() - 1);
      }
    }
  }
  result.equivalent = true;
  return result;
}

EquivalenceResult check_equivalence(const MealyMachine& a,
                                    const MealyMachine& b) {
  return check_equivalence(a, a.initial_state(), b, b.initial_state());
}

MealyMachine random_connected_machine(StateId num_states, InputId num_inputs,
                                      OutputId num_outputs,
                                      std::uint64_t seed) {
  if (num_states == 0 || num_inputs == 0 || num_outputs == 0) {
    throw std::invalid_argument(
        "random_connected_machine: all sizes must be positive");
  }
  std::mt19937_64 rng(seed);
  MealyMachine m(num_states, num_inputs);
  m.set_initial_state(0);
  // Plant a spanning in-tree: state s>0 is reached from a random earlier
  // state on a random input, guaranteeing reachability from state 0.
  for (StateId s = 1; s < num_states; ++s) {
    // Retry until we find an unused (state, input) slot among earlier
    // states, so tree edges never overwrite each other. A free slot always
    // exists when s <= s * num_inputs - (s - 1), which holds for all s.
    for (;;) {
      const StateId from = static_cast<StateId>(rng() % s);
      const InputId in = static_cast<InputId>(rng() % num_inputs);
      if (m.transition(from, in).has_value()) continue;
      m.set_transition(from, in, s,
                       static_cast<OutputId>(rng() % num_outputs));
      break;
    }
  }
  // Fill in the rest randomly.
  for (StateId s = 0; s < num_states; ++s) {
    for (InputId i = 0; i < num_inputs; ++i) {
      if (m.transition(s, i).has_value()) continue;
      m.set_transition(s, i, static_cast<StateId>(rng() % num_states),
                       static_cast<OutputId>(rng() % num_outputs));
    }
  }
  return m;
}

}  // namespace simcov::fsm
