// Bit-parallel (word-level) evaluation of combinational logic networks.
//
// The classic fault-simulation trick [ROADMAP: "Bit-parallel and sharded
// simulation"]: a signal's value for 64 independent simulations is packed
// into one std::uint64_t — bit L of every word is lane L's run — so one
// pass of word ops (~, &, |, ^) evaluates the whole network for 64 input
// vectors at once. PackedLogicSim levelizes the gate DAG once at
// construction and replays the level-ordered schedule on every eval; the
// schedule is a topological order, so packed lane L computes exactly what
// LogicNetwork::eval_into would compute for lane L's scalar inputs (the
// randomized differential test in tests/bitparallel_test.cpp pins this).
//
// PackedCircuitSim lifts the same trick to a SequentialCircuit: each lane
// is an independent (state, input) pair in the packed 64-bit key encoding
// of model::TestModel, so batch stepping 64 test-model sequences costs one
// network pass instead of 64.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sym/logic_network.hpp"
#include "sym/symbolic_fsm.hpp"

namespace simcov::sym {

class PackedLogicSim {
 public:
  /// Lanes per machine word; partial blocks simply leave high lanes unused.
  static constexpr std::size_t kLanes = 64;

  /// Levelizes `net` (inputs and constants at level 0, every other gate one
  /// past its deepest operand). The network must outlive the simulator.
  explicit PackedLogicSim(const LogicNetwork& net);

  [[nodiscard]] const LogicNetwork& network() const { return *net_; }
  /// Depth of the levelized DAG (0 for a network of bare inputs/constants).
  [[nodiscard]] std::size_t num_levels() const { return num_levels_; }
  [[nodiscard]] std::size_t level(SignalId s) const { return levels_[s]; }

  /// Evaluates all 64 lanes: `input_words[k]` carries the lane values of
  /// input k (bit L = lane L), `values` is resized to num_signals() and
  /// filled with one lane word per signal. Lanes beyond the ones the caller
  /// packed compute garbage-in/garbage-out and are simply ignored on
  /// readback. Throws std::invalid_argument on an input-count mismatch.
  void eval_into(std::span<const std::uint64_t> input_words,
                 std::vector<std::uint64_t>& values) const;

  /// Packs per-lane booleans into a lane word (bit L = lanes[L]).
  [[nodiscard]] static std::uint64_t pack_lanes(std::span<const bool> lanes);

 private:
  const LogicNetwork* net_;
  std::vector<std::uint32_t> levels_;    // per signal
  std::vector<SignalId> schedule_;       // level-major topological order
  std::size_t num_levels_ = 0;
};

/// Word-level batch stepper for a SequentialCircuit: every lane is one
/// independent (state, input) pair, packed little-endian into 64-bit keys
/// exactly as model::TestModel does. Stateless between calls — latches are
/// part of the per-lane state keys the caller threads through.
class PackedCircuitSim {
 public:
  static constexpr std::size_t kLanes = PackedLogicSim::kLanes;

  /// The circuit must outlive the simulator. Throws std::invalid_argument
  /// beyond 63 latches / primary inputs (the packed-key limit) or when a
  /// network input is neither a latch's current signal nor a declared
  /// primary input. Reading outputs additionally requires at most 63
  /// output signals (checked per step() call, like SymbolicModel::output).
  explicit PackedCircuitSim(const SequentialCircuit& circuit);

  /// Steps lanes [0, states.size()) once: lane L starts in state key
  /// states[L] and consumes input key inputs[L]. Returns the mask of lanes
  /// whose (state, input) satisfies the circuit's validity constraint;
  /// next[L] and (when `outputs` is non-empty) outputs[L] are filled for
  /// valid lanes only. Spans must agree in size (at most kLanes).
  std::uint64_t step(std::span<const std::uint64_t> states,
                     std::span<const std::uint64_t> inputs,
                     std::span<std::uint64_t> next,
                     std::span<std::uint64_t> outputs = {}) const;

 private:
  const SequentialCircuit* circuit_;
  PackedLogicSim sim_;
  /// Per network input: latch index (is_latch_) or primary-input index.
  std::vector<std::uint32_t> source_index_;
  std::vector<bool> is_latch_;
  mutable std::vector<std::uint64_t> input_words_;  // reused scratch
  mutable std::vector<std::uint64_t> values_;       // reused scratch
};

}  // namespace simcov::sym
