// Concrete replay of input sequences on a SequentialCircuit.
//
// The circuit frontend (src/io) and the external-circuit campaign path
// (pipeline::CircuitReplayStage) both need the same primitive: start the
// latches at their reset values, apply one primary-input vector per cycle,
// evaluate the combinational network, read the outputs, and clock the
// latches. CircuitReplayer packages that loop — validity-aware (a step
// whose (state, input) violates the circuit's constraint ends the replay),
// budget-aware (max_steps truncation is reported, not an error), and
// thread-safe (replay() keeps all scratch local, so one replayer can serve
// every worker of a sharded batch).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sym/symbolic_fsm.hpp"

namespace simcov::sym {

/// One replayed sequence: per-cycle latch/input/output values plus how the
/// replay ended. Cycle i reads states[i] and inputs[i] and produces
/// outputs[i]; states has one extra entry (the latch values after the last
/// replayed cycle). An invalid step is not recorded at all — the trace
/// covers exactly the `steps` cycles that satisfied the constraint.
struct SequenceTrace {
  std::vector<std::vector<bool>> states;   ///< size steps + 1 (latch order)
  std::vector<std::vector<bool>> inputs;   ///< size steps (PI order)
  std::vector<std::vector<bool>> outputs;  ///< size steps (output order)
  std::size_t steps = 0;   ///< cycles replayed
  bool valid = true;       ///< false: a step violated the circuit constraint
  bool truncated = false;  ///< true: max_steps ended the replay early
};

/// Reusable replay engine over one circuit. Construction resolves every
/// network input to its role (latch index or primary-input index) once;
/// replay() is const and allocation-local, so a single instance may be
/// shared across threads.
class CircuitReplayer {
 public:
  /// Throws std::invalid_argument when the circuit declares a network input
  /// that is neither a latch's current signal nor a primary input (the
  /// SequentialCircuit contract).
  explicit CircuitReplayer(const SequentialCircuit& circuit);

  [[nodiscard]] const SequentialCircuit& circuit() const { return *circuit_; }

  /// Replays `pi_steps` from reset. Each step must carry exactly one bit per
  /// declared primary input (std::invalid_argument otherwise). Replay stops
  /// at the first invalid step (trace.valid = false, the step unrecorded) or
  /// after max_steps cycles (trace.truncated = true).
  [[nodiscard]] SequenceTrace replay(
      std::span<const std::vector<bool>> pi_steps,
      std::size_t max_steps = static_cast<std::size_t>(-1)) const;

 private:
  const SequentialCircuit* circuit_;
  /// Per network input: the latch (is_latch_) or primary-input index.
  std::vector<std::uint32_t> source_index_;
  std::vector<bool> is_latch_;
};

/// One-shot convenience over a throwaway CircuitReplayer.
[[nodiscard]] SequenceTrace replay_sequence(
    const SequentialCircuit& circuit,
    std::span<const std::vector<bool>> pi_steps,
    std::size_t max_steps = static_cast<std::size_t>(-1));

}  // namespace simcov::sym
