// Symbolic transition-tour generation.
//
// The paper's 22-latch test model has 123 million transitions — no explicit
// enumeration fits, so its 1069M-step tour was generated on the implicit
// (BDD) representation (Section 7.2). This module does the same: it walks
// the machine concretely, one state vector at a time, while tracking the
// set of covered (state, input) pairs as a BDD and navigating toward
// uncovered transitions with pre-image distance layers.
//
// Algorithm sketch:
//   covered(ps, pi) := 0
//   repeat:
//     if the current state has an uncovered valid input: take it, mark it
//     else: follow pre-image layers to the nearest state that has one
//     when no uncovered transition is reachable: restart from reset
//   until every reachable transition is covered (or the step cap is hit).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "model/coverage.hpp"
#include "sym/symbolic_fsm.hpp"

namespace simcov::sym {

struct SymbolicTourOptions {
  /// Hard cap on total walk length.
  std::size_t max_steps = 10'000'000;
  /// Record the concrete input vectors (per reset-separated sequence).
  /// Disable for very long tours to save memory; statistics still work.
  bool record_inputs = true;
};

struct SymbolicTourResult {
  /// Reset-separated input sequences (each entry is PI values per step);
  /// empty when record_inputs was false.
  std::vector<std::vector<std::vector<bool>>> sequences;
  std::size_t steps = 0;
  std::size_t restarts = 0;
  double transitions_total = 0.0;    ///< reachable (state, input) pairs
  double transitions_covered = 0.0;
  bool complete = false;             ///< every reachable transition covered

  /// Coverage accounted through the shared model::CoverageTracker: the
  /// walk's distinct visited states and distinct exercised transitions —
  /// the identical definition the explicit evaluators (src/tour) report,
  /// which is what makes backends comparable. `transitions_covered` above
  /// mirrors `stats.transitions_covered`.
  model::CoverageStats stats;

  [[nodiscard]] double coverage() const {
    return transitions_total == 0.0 ? 1.0
                                    : transitions_covered / transitions_total;
  }
};

/// Generates a transition tour of `fsm` on the implicit representation.
/// Convenience wrapper: drains a SymbolicTourStream to completion.
SymbolicTourResult symbolic_transition_tour(
    SymbolicFsm& fsm, const SymbolicTourOptions& options = {});

/// Incremental form of symbolic_transition_tour: the walk is suspended at
/// every reset, yielding one reset-separated input sequence at a time so
/// downstream stages can consume a sequence while the walk continues. The
/// concatenation of all yielded sequences is exactly what
/// symbolic_transition_tour would have recorded for the same fsm/options
/// (including a possibly empty trailing sequence after a final reset).
///
/// With record_inputs off the yielded sequences are empty vectors — the
/// segmentation and the summary statistics are still exact.
///
/// The fsm must outlive the stream.
class SymbolicTourStream {
 public:
  explicit SymbolicTourStream(SymbolicFsm& fsm,
                              const SymbolicTourOptions& options = {});
  ~SymbolicTourStream();
  SymbolicTourStream(SymbolicTourStream&&) noexcept;
  SymbolicTourStream& operator=(SymbolicTourStream&&) noexcept;

  /// Walks until the next reset (yielding the finished sequence) or until
  /// the tour completes / hits the step cap (yielding the final sequence).
  /// nullopt once the walk has ended.
  std::optional<std::vector<std::vector<bool>>> next_sequence();

  /// True once next_sequence() has returned its last sequence.
  [[nodiscard]] bool finished() const;

  /// Statistics of the walk so far (final once finished()). The returned
  /// result's `sequences` is always empty — the caller already holds the
  /// yielded sequences.
  [[nodiscard]] SymbolicTourResult summary() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace simcov::sym
