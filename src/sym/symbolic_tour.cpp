#include "sym/symbolic_tour.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace simcov::sym {

/// Drives the tour: concrete walking over the implicit model, suspended at
/// every reset so SymbolicTourStream can yield sequence-by-sequence.
///
/// Per visited state, the valid inputs and their successor states are
/// enumerated once (via generalized cofactor of the input constraint) and
/// memoized packed; covering steps then cost O(1). A per-state cursor is
/// exact coverage bookkeeping: transition (s, i) can only be covered by
/// taking i at s, so inputs before the cursor are covered, inputs after are
/// not. Navigation toward uncovered states uses pre-image distance layers,
/// recomputed lazily when stale.
struct SymbolicTourStream::Impl {
 public:
  Impl(SymbolicFsm& fsm, const SymbolicTourOptions& options)
      : fsm_(fsm),
        mgr_(fsm.manager()),
        options_(options),
        num_latches_(fsm.ps_vars().size()),
        num_pis_(fsm.pi_vars().size()) {
    if (num_latches_ > 63 || num_pis_ > 63) {
      throw std::invalid_argument(
          "symbolic_transition_tour: too many variables for packed keys");
    }
    assignment_.assign(mgr_.var_count(), false);

    const bdd::Bdd reached = fsm_.reachable_states();
    transitions_total_ = fsm_.count_transitions(reached);
    total_count_ = static_cast<std::size_t>(transitions_total_);

    // Shared cross-backend coverage accounting: distinct visited states and
    // distinct taken transitions (navigation steps included — they exercise
    // transitions just like covering steps do).
    tracker_.emplace(fsm_.count_states(reached), transitions_total_);

    const std::vector<unsigned> pi_vec(fsm_.pi_vars().begin(),
                                       fsm_.pi_vars().end());
    uncovered_states_ =
        reached & mgr_.exists(fsm_.valid_inputs(), mgr_.cube(pi_vec));

    state_ = pack_bits(fsm_.initial_state_bits());
    tracker_->visit_state(state_);
  }

  /// Resumes the walk until the next reset or until it ends. See the
  /// header for the yielded-sequence contract.
  std::optional<std::vector<std::vector<bool>>> next_sequence() {
    if (finished_) return std::nullopt;
    std::vector<std::vector<bool>> seq;
    while (steps_ < options_.max_steps) {
      if (covered_count_ >= total_count_) {
        complete_ = true;
        break;
      }
      StateInfo& info = state_info(state_);
      std::uint64_t input = 0;
      std::uint64_t next = 0;
      if (info.cursor < info.edges.size()) {
        // Cover the next fresh transition out of this state.
        input = info.edges[info.cursor].input;
        next = info.edges[info.cursor].next;
        ++info.cursor;
        ++covered_count_;
        if (info.cursor == info.edges.size()) {
          pending_exhausted_.push_back(state_);
        }
      } else if (!navigate(info, input, next)) {
        // No path to an uncovered transition from here: reset and yield the
        // sequence that just ended.
        ++restarts_;
        state_ = pack_bits(fsm_.initial_state_bits());
        return seq;
      }
      if (options_.record_inputs) {
        seq.push_back(unpack_input(input));
      }
      tracker_->cover_transition(state_, input);
      state_ = next;
      tracker_->visit_state(state_);
      ++steps_;
    }
    finished_ = true;
    return seq;
  }

  [[nodiscard]] bool finished() const { return finished_; }

  [[nodiscard]] SymbolicTourResult summary() const {
    SymbolicTourResult result;
    result.steps = steps_;
    result.restarts = restarts_;
    result.transitions_total = transitions_total_;
    result.complete = complete_;
    result.stats = tracker_->stats();
    // The tracker count dominates the per-state cursors: navigation may
    // take an edge its cursor has not reached yet, which still covers it —
    // a step-capped walk can therefore be complete before the cursors are.
    result.transitions_covered = result.stats.transitions_covered;
    if (result.stats.complete()) result.complete = true;
    return result;
  }

 private:
  struct Edge {
    std::uint64_t input;
    std::uint64_t next;
  };
  struct StateInfo {
    std::vector<Edge> edges;
    std::size_t cursor = 0;
  };

  // ---- packing -------------------------------------------------------------
  static std::uint64_t pack_bits(const std::vector<bool>& bits) {
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < bits.size(); ++j) {
      if (bits[j]) key |= std::uint64_t{1} << j;
    }
    return key;
  }
  std::vector<bool> unpack_input(std::uint64_t input) const {
    std::vector<bool> bits(num_pis_);
    for (std::size_t k = 0; k < num_pis_; ++k) {
      bits[k] = (input >> k) & 1u;
    }
    return bits;
  }

  void load_assignment(std::uint64_t state, std::uint64_t input) {
    for (std::size_t j = 0; j < num_latches_; ++j) {
      assignment_[fsm_.ps_var(j)] = (state >> j) & 1u;
    }
    for (std::size_t k = 0; k < num_pis_; ++k) {
      assignment_[fsm_.pi_var(k)] = (input >> k) & 1u;
    }
  }

  bdd::Bdd state_minterm(std::uint64_t state) {
    std::vector<bool> bits(num_latches_);
    for (std::size_t j = 0; j < num_latches_; ++j) {
      bits[j] = (state >> j) & 1u;
    }
    return mgr_.minterm(fsm_.ps_vars(), bits);
  }

  /// Enumerates (valid input, successor) pairs of a state, once.
  StateInfo& state_info(std::uint64_t state) {
    const auto it = cache_.find(state);
    if (it != cache_.end()) return it->second;
    StateInfo info;
    const bdd::Bdd at_state =
        mgr_.constrain(fsm_.valid_inputs(), state_minterm(state));
    const auto& funcs = fsm_.next_functions();
    mgr_.for_each_minterm(
        at_state, fsm_.pi_vars(), [&](const std::vector<bool>& in) {
          const std::uint64_t input = pack_bits(in);
          load_assignment(state, input);
          std::uint64_t next = 0;
          for (std::size_t j = 0; j < num_latches_; ++j) {
            if (mgr_.eval(funcs[j], assignment_)) {
              next |= std::uint64_t{1} << j;
            }
          }
          info.edges.push_back(Edge{input, next});
          return true;
        });
    return cache_.emplace(state, std::move(info)).first->second;
  }

  bool eval_at_state(const bdd::Bdd& f, std::uint64_t state) {
    load_assignment(state, 0);
    return mgr_.eval(f, assignment_);
  }

  // ---- navigation ----------------------------------------------------------
  void flush_exhausted() {
    if (pending_exhausted_.empty()) return;
    bdd::Bdd gone = mgr_.zero();
    for (const std::uint64_t s : pending_exhausted_) {
      gone |= state_minterm(s);
    }
    uncovered_states_ &= !gone;
    pending_exhausted_.clear();
  }

  void compute_layers() {
    flush_exhausted();
    layers_.clear();
    layers_.push_back(uncovered_states_);
    bdd::Bdd seen = uncovered_states_;
    for (;;) {
      const bdd::Bdd prev = fsm_.preimage(seen) & !seen;
      if (prev.is_zero()) break;
      layers_.push_back(prev);
      seen |= prev;
      if (eval_at_state(prev, state_)) break;  // current state reached
    }
  }

  std::optional<std::size_t> layer_of(std::uint64_t state) {
    for (std::size_t k = 0; k < layers_.size(); ++k) {
      if (eval_at_state(layers_[k], state)) return k;
    }
    return std::nullopt;
  }

  /// Picks the edge stepping one layer closer to the uncovered set.
  bool descend(const StateInfo& info, std::size_t target_layer,
               std::uint64_t& input_out, std::uint64_t& next_out) {
    for (const Edge& e : info.edges) {
      if (eval_at_state(layers_[target_layer], e.next)) {
        input_out = e.input;
        next_out = e.next;
        return true;
      }
    }
    return false;
  }

  bool navigate(const StateInfo& info, std::uint64_t& input_out,
                std::uint64_t& next_out) {
    if (info.edges.empty()) return false;  // dead end
    auto k = layer_of(state_);
    if (k.has_value() && *k > 0 &&
        descend(info, *k - 1, input_out, next_out)) {
      return true;
    }
    // Missing or stale layers: recompute once and retry.
    compute_layers();
    k = layer_of(state_);
    if (!k.has_value() || *k == 0) return false;
    return descend(info, *k - 1, input_out, next_out);
  }

  SymbolicFsm& fsm_;
  bdd::BddManager& mgr_;
  SymbolicTourOptions options_;
  const std::size_t num_latches_;
  const std::size_t num_pis_;

  std::uint64_t state_ = 0;
  std::vector<bool> assignment_;
  std::unordered_map<std::uint64_t, StateInfo> cache_;
  std::vector<std::uint64_t> pending_exhausted_;
  std::size_t covered_count_ = 0;
  std::size_t total_count_ = 0;
  double transitions_total_ = 0.0;
  std::size_t steps_ = 0;
  std::size_t restarts_ = 0;
  bool complete_ = false;
  bool finished_ = false;
  std::optional<model::CoverageTracker> tracker_;
  bdd::Bdd uncovered_states_;
  std::vector<bdd::Bdd> layers_;
};

SymbolicTourStream::SymbolicTourStream(SymbolicFsm& fsm,
                                       const SymbolicTourOptions& options)
    : impl_(std::make_unique<Impl>(fsm, options)) {}

SymbolicTourStream::~SymbolicTourStream() = default;
SymbolicTourStream::SymbolicTourStream(SymbolicTourStream&&) noexcept = default;
SymbolicTourStream& SymbolicTourStream::operator=(SymbolicTourStream&&) noexcept =
    default;

std::optional<std::vector<std::vector<bool>>>
SymbolicTourStream::next_sequence() {
  return impl_->next_sequence();
}

bool SymbolicTourStream::finished() const { return impl_->finished(); }

SymbolicTourResult SymbolicTourStream::summary() const {
  return impl_->summary();
}

SymbolicTourResult symbolic_transition_tour(
    SymbolicFsm& fsm, const SymbolicTourOptions& options) {
  SymbolicTourStream stream(fsm, options);
  std::vector<std::vector<std::vector<bool>>> sequences;
  while (auto seq = stream.next_sequence()) {
    if (options.record_inputs) sequences.push_back(std::move(*seq));
  }
  SymbolicTourResult result = stream.summary();
  result.sequences = std::move(sequences);
  return result;
}

}  // namespace simcov::sym
