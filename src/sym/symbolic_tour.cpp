#include "sym/symbolic_tour.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace simcov::sym {

namespace {

/// Drives the tour: concrete walking over the implicit model.
///
/// Per visited state, the valid inputs and their successor states are
/// enumerated once (via generalized cofactor of the input constraint) and
/// memoized packed; covering steps then cost O(1). A per-state cursor is
/// exact coverage bookkeeping: transition (s, i) can only be covered by
/// taking i at s, so inputs before the cursor are covered, inputs after are
/// not. Navigation toward uncovered states uses pre-image distance layers,
/// recomputed lazily when stale.
class TourDriver {
 public:
  TourDriver(SymbolicFsm& fsm, const SymbolicTourOptions& options)
      : fsm_(fsm),
        mgr_(fsm.manager()),
        options_(options),
        num_latches_(fsm.ps_vars().size()),
        num_pis_(fsm.pi_vars().size()) {
    if (num_latches_ > 63 || num_pis_ > 63) {
      throw std::invalid_argument(
          "symbolic_transition_tour: too many variables for packed keys");
    }
    assignment_.assign(mgr_.var_count(), false);
    zeros_pi_.assign(num_pis_, false);
  }

  SymbolicTourResult run() {
    SymbolicTourResult result;
    const bdd::Bdd reached = fsm_.reachable_states();
    result.transitions_total = fsm_.count_transitions(reached);
    const auto total_count =
        static_cast<std::size_t>(result.transitions_total);

    // Shared cross-backend coverage accounting: distinct visited states and
    // distinct taken transitions (navigation steps included — they exercise
    // transitions just like covering steps do).
    model::CoverageTracker tracker(fsm_.count_states(reached),
                                   result.transitions_total);

    const std::vector<unsigned> pi_vec(fsm_.pi_vars().begin(),
                                       fsm_.pi_vars().end());
    uncovered_states_ =
        reached & mgr_.exists(fsm_.valid_inputs(), mgr_.cube(pi_vec));

    state_ = pack_bits(fsm_.initial_state_bits());
    tracker.visit_state(state_);
    if (options_.record_inputs) result.sequences.emplace_back();

    while (result.steps < options_.max_steps) {
      if (covered_count_ >= total_count) {
        result.complete = true;
        break;
      }
      StateInfo& info = state_info(state_);
      std::uint64_t input = 0;
      std::uint64_t next = 0;
      if (info.cursor < info.edges.size()) {
        // Cover the next fresh transition out of this state.
        input = info.edges[info.cursor].input;
        next = info.edges[info.cursor].next;
        ++info.cursor;
        ++covered_count_;
        if (info.cursor == info.edges.size()) {
          pending_exhausted_.push_back(state_);
        }
      } else if (!navigate(info, input, next)) {
        // No path to an uncovered transition from here: reset.
        ++result.restarts;
        state_ = pack_bits(fsm_.initial_state_bits());
        if (options_.record_inputs) result.sequences.emplace_back();
        continue;
      }
      if (options_.record_inputs) {
        result.sequences.back().push_back(unpack_input(input));
      }
      tracker.cover_transition(state_, input);
      state_ = next;
      tracker.visit_state(state_);
      ++result.steps;
    }
    result.stats = tracker.stats();
    // The tracker count dominates the per-state cursors: navigation may
    // take an edge its cursor has not reached yet, which still covers it —
    // a step-capped walk can therefore be complete before the cursors are.
    result.transitions_covered = result.stats.transitions_covered;
    if (result.stats.complete()) result.complete = true;
    return result;
  }

 private:
  struct Edge {
    std::uint64_t input;
    std::uint64_t next;
  };
  struct StateInfo {
    std::vector<Edge> edges;
    std::size_t cursor = 0;
  };

  // ---- packing -------------------------------------------------------------
  static std::uint64_t pack_bits(const std::vector<bool>& bits) {
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < bits.size(); ++j) {
      if (bits[j]) key |= std::uint64_t{1} << j;
    }
    return key;
  }
  std::vector<bool> unpack_input(std::uint64_t input) const {
    std::vector<bool> bits(num_pis_);
    for (std::size_t k = 0; k < num_pis_; ++k) {
      bits[k] = (input >> k) & 1u;
    }
    return bits;
  }

  void load_assignment(std::uint64_t state, std::uint64_t input) {
    for (std::size_t j = 0; j < num_latches_; ++j) {
      assignment_[fsm_.ps_var(j)] = (state >> j) & 1u;
    }
    for (std::size_t k = 0; k < num_pis_; ++k) {
      assignment_[fsm_.pi_var(k)] = (input >> k) & 1u;
    }
  }

  bdd::Bdd state_minterm(std::uint64_t state) {
    std::vector<bool> bits(num_latches_);
    for (std::size_t j = 0; j < num_latches_; ++j) {
      bits[j] = (state >> j) & 1u;
    }
    return mgr_.minterm(fsm_.ps_vars(), bits);
  }

  /// Enumerates (valid input, successor) pairs of a state, once.
  StateInfo& state_info(std::uint64_t state) {
    const auto it = cache_.find(state);
    if (it != cache_.end()) return it->second;
    StateInfo info;
    const bdd::Bdd at_state =
        mgr_.constrain(fsm_.valid_inputs(), state_minterm(state));
    const auto& funcs = fsm_.next_functions();
    mgr_.for_each_minterm(
        at_state, fsm_.pi_vars(), [&](const std::vector<bool>& in) {
          const std::uint64_t input = pack_bits(in);
          load_assignment(state, input);
          std::uint64_t next = 0;
          for (std::size_t j = 0; j < num_latches_; ++j) {
            if (mgr_.eval(funcs[j], assignment_)) {
              next |= std::uint64_t{1} << j;
            }
          }
          info.edges.push_back(Edge{input, next});
          return true;
        });
    return cache_.emplace(state, std::move(info)).first->second;
  }

  bool eval_at_state(const bdd::Bdd& f, std::uint64_t state) {
    load_assignment(state, 0);
    return mgr_.eval(f, assignment_);
  }

  // ---- navigation ---------------------------------------------------------------
  void flush_exhausted() {
    if (pending_exhausted_.empty()) return;
    bdd::Bdd gone = mgr_.zero();
    for (const std::uint64_t s : pending_exhausted_) {
      gone |= state_minterm(s);
    }
    uncovered_states_ &= !gone;
    pending_exhausted_.clear();
  }

  void compute_layers() {
    flush_exhausted();
    layers_.clear();
    layers_.push_back(uncovered_states_);
    bdd::Bdd seen = uncovered_states_;
    for (;;) {
      const bdd::Bdd prev = fsm_.preimage(seen) & !seen;
      if (prev.is_zero()) break;
      layers_.push_back(prev);
      seen |= prev;
      if (eval_at_state(prev, state_)) break;  // current state reached
    }
  }

  std::optional<std::size_t> layer_of(std::uint64_t state) {
    for (std::size_t k = 0; k < layers_.size(); ++k) {
      if (eval_at_state(layers_[k], state)) return k;
    }
    return std::nullopt;
  }

  /// Picks the edge stepping one layer closer to the uncovered set.
  bool descend(const StateInfo& info, std::size_t target_layer,
               std::uint64_t& input_out, std::uint64_t& next_out) {
    for (const Edge& e : info.edges) {
      if (eval_at_state(layers_[target_layer], e.next)) {
        input_out = e.input;
        next_out = e.next;
        return true;
      }
    }
    return false;
  }

  bool navigate(const StateInfo& info, std::uint64_t& input_out,
                std::uint64_t& next_out) {
    if (info.edges.empty()) return false;  // dead end
    auto k = layer_of(state_);
    if (k.has_value() && *k > 0 &&
        descend(info, *k - 1, input_out, next_out)) {
      return true;
    }
    // Missing or stale layers: recompute once and retry.
    compute_layers();
    k = layer_of(state_);
    if (!k.has_value() || *k == 0) return false;
    return descend(info, *k - 1, input_out, next_out);
  }

  SymbolicFsm& fsm_;
  bdd::BddManager& mgr_;
  SymbolicTourOptions options_;
  const std::size_t num_latches_;
  const std::size_t num_pis_;

  std::uint64_t state_ = 0;
  std::vector<bool> assignment_;
  std::vector<bool> zeros_pi_;
  std::unordered_map<std::uint64_t, StateInfo> cache_;
  std::vector<std::uint64_t> pending_exhausted_;
  std::size_t covered_count_ = 0;
  bdd::Bdd uncovered_states_;
  std::vector<bdd::Bdd> layers_;
};

}  // namespace

SymbolicTourResult symbolic_transition_tour(
    SymbolicFsm& fsm, const SymbolicTourOptions& options) {
  TourDriver driver(fsm, options);
  return driver.run();
}

}  // namespace simcov::sym
