// Symbolic (BDD-based) finite state machines over latch netlists.
//
// This is the implicit state-space machinery of Section 2/7.2: the test
// model's transition relation is represented as a BDD, reachable states are
// computed by an image-computation fixpoint [Touati+90], and the counts the
// paper reports (valid input combinations, reachable states, transitions)
// are satisfying-assignment counts of the corresponding BDDs.
//
// Initial variable order: primary inputs first (they are quantified
// innermost-first during image computation), then present/next-state
// variables interleaved. This is only the order variables are *created* in;
// dynamic reordering (BddManager sifting) may move levels afterwards. All
// code here addresses variables by their stable ids (ps_var/ns_var/pi_var),
// which reordering never changes, so the FSM is reorder-safe by
// construction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "fsm/mealy.hpp"
#include "sym/logic_network.hpp"

namespace simcov::sym {

/// A sequential circuit: a combinational network plus latches.
/// Every network input must be either a latch's current-state signal or a
/// declared primary input.
struct SequentialCircuit {
  struct Latch {
    SignalId current;  ///< network input signal carrying the latch value
    SignalId next;     ///< network signal computing the next value
    bool init = false; ///< reset value
    std::string name;
  };

  LogicNetwork net;
  std::vector<Latch> latches;
  std::vector<SignalId> primary_inputs;
  std::vector<std::pair<std::string, SignalId>> outputs;
  /// Input-constraint signal over latches + primary inputs; combinations
  /// where it evaluates 0 are invalid (the paper's input don't-cares).
  /// Default: none (all combinations valid).
  std::optional<SignalId> valid;
};

struct SymbolicFsmStats {
  unsigned num_latches = 0;
  unsigned num_primary_inputs = 0;
  unsigned num_outputs = 0;
  std::size_t transition_relation_nodes = 0;
  unsigned reachability_iterations = 0;
  double reachable_states = 0.0;
  double transitions = 0.0;              ///< valid (state, input) pairs from reachable states
  double valid_input_combinations = 0.0; ///< over primary inputs, any state
};

/// BDD-backed view of a SequentialCircuit.
class SymbolicFsm {
 public:
  SymbolicFsm(bdd::BddManager& mgr, const SequentialCircuit& circuit);

  [[nodiscard]] unsigned num_latches() const {
    return static_cast<unsigned>(ps_vars_.size());
  }
  [[nodiscard]] unsigned num_inputs() const {
    return static_cast<unsigned>(pi_vars_.size());
  }

  /// T(ps, pi, ns) = valid(ps, pi) ∧ ∧_j (ns_j ↔ f_j(ps, pi)).
  [[nodiscard]] const bdd::Bdd& transition_relation() const { return tr_; }
  /// Characteristic function of the reset state (over present-state vars).
  [[nodiscard]] const bdd::Bdd& initial_states() const { return init_; }
  /// Constraint over (ps, pi); one() when the circuit declares none.
  [[nodiscard]] const bdd::Bdd& valid_inputs() const { return valid_; }
  /// Output functions over (ps, pi), in declaration order.
  [[nodiscard]] const std::vector<bdd::Bdd>& output_functions() const {
    return out_funcs_;
  }

  /// Image: states reachable in one step from `states` (over ps vars).
  [[nodiscard]] bdd::Bdd image(const bdd::Bdd& states);
  /// Pre-image: states with a valid transition into `states` (over ps vars).
  [[nodiscard]] bdd::Bdd preimage(const bdd::Bdd& states);
  /// Least fixpoint of image from the initial state. Cached after first call.
  const bdd::Bdd& reachable_states();
  [[nodiscard]] unsigned reachability_iterations() const { return iters_; }

  /// Satisfying-state count of a present-state predicate.
  [[nodiscard]] double count_states(const bdd::Bdd& states) const;
  /// Number of valid (state, input) pairs with state in `states`.
  [[nodiscard]] double count_transitions(const bdd::Bdd& states) const;
  /// Number of primary-input combinations valid in at least one state.
  [[nodiscard]] double count_valid_input_combinations();

  /// Full statistics snapshot (forces reachability).
  SymbolicFsmStats stats();

  /// A concrete execution trace: latch values per step, and the
  /// primary-input values taken between consecutive steps.
  struct Trace {
    std::vector<std::vector<bool>> states;  ///< size k+1
    std::vector<std::vector<bool>> inputs;  ///< size k
  };

  struct InvariantResult {
    bool holds = false;
    /// When violated: a shortest trace from reset to a bad state.
    std::optional<Trace> counterexample;
  };

  /// Symbolic safety check: do all reachable states satisfy `good`
  /// (a predicate over present-state variables)?
  InvariantResult check_invariant(const bdd::Bdd& good);

  [[nodiscard]] unsigned ps_var(std::size_t latch) const {
    return ps_vars_[latch];
  }
  [[nodiscard]] unsigned ns_var(std::size_t latch) const {
    return ns_vars_[latch];
  }
  [[nodiscard]] unsigned pi_var(std::size_t input) const {
    return pi_vars_[input];
  }
  [[nodiscard]] std::span<const unsigned> ps_vars() const { return ps_vars_; }
  [[nodiscard]] std::span<const unsigned> pi_vars() const { return pi_vars_; }
  [[nodiscard]] bdd::BddManager& manager() { return mgr_; }
  /// Next-state functions over (ps, pi), one per latch.
  [[nodiscard]] const std::vector<bdd::Bdd>& next_functions() const {
    return next_funcs_;
  }
  /// Reset-state latch values.
  [[nodiscard]] std::vector<bool> initial_state_bits() const;

 private:
  bdd::BddManager& mgr_;
  std::vector<unsigned> pi_vars_, ps_vars_, ns_vars_;
  bdd::Bdd tr_, init_, valid_;
  std::vector<bdd::Bdd> next_funcs_, out_funcs_;
  bdd::Bdd ps_pi_cube_, pi_cube_, ps_cube_, ns_pi_cube_;
  std::vector<int> ns_to_ps_;  // permutation for image computation
  std::vector<int> ps_to_ns_;  // permutation for pre-image computation
  bdd::Bdd reached_;
  bool reached_valid_ = false;
  unsigned iters_ = 0;
  std::vector<bool> init_bits_;
};

/// Explicit extraction of the (reachable part of the) circuit as a Mealy
/// machine. The input alphabet is the set of primary-input combinations that
/// are valid in at least one state (paper Section 7.2 counts exactly these);
/// transitions invalid in a particular state stay undefined. The output
/// symbol packs the output bits little-endian.
struct ExplicitModel {
  fsm::MealyMachine machine;
  /// Latch values of each explicit state (index = state id).
  std::vector<std::vector<bool>> state_bits;
  /// Primary-input values of each input symbol (index = input id).
  std::vector<std::vector<bool>> input_bits;
  /// True when extraction stopped at max_states before exhausting the space.
  bool truncated = false;
};

ExplicitModel extract_explicit(const SequentialCircuit& circuit,
                               std::size_t max_states);

}  // namespace simcov::sym
