#include "sym/packed_logic_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace simcov::sym {

// ---------------------------------------------------------------------------
// PackedLogicSim
// ---------------------------------------------------------------------------

PackedLogicSim::PackedLogicSim(const LogicNetwork& net) : net_(&net) {
  const std::size_t n = net.num_signals();
  levels_.assign(n, 0);
  for (SignalId s = 0; s < n; ++s) {
    const auto g = net.gate(s);
    std::uint32_t lvl = 0;
    switch (g.op) {
      case GateOp::kInput:
      case GateOp::kConst:
        break;
      case GateOp::kNot:
        lvl = levels_[g.a] + 1;
        break;
      case GateOp::kAnd:
      case GateOp::kOr:
      case GateOp::kXor:
        lvl = std::max(levels_[g.a], levels_[g.b]) + 1;
        break;
      case GateOp::kMux:
        lvl = std::max({levels_[g.a], levels_[g.b], levels_[g.c]}) + 1;
        break;
    }
    levels_[s] = lvl;
    num_levels_ = std::max<std::size_t>(num_levels_, lvl);
  }
  // Level-major schedule via a counting sort: gates of one level are
  // independent and keep their id order within it, so the pass is both a
  // valid topological order and deterministic.
  std::vector<std::size_t> level_counts(num_levels_ + 1, 0);
  for (SignalId s = 0; s < n; ++s) ++level_counts[levels_[s]];
  std::vector<std::size_t> offsets(num_levels_ + 1, 0);
  for (std::size_t l = 1; l <= num_levels_; ++l) {
    offsets[l] = offsets[l - 1] + level_counts[l - 1];
  }
  schedule_.resize(n);
  for (SignalId s = 0; s < n; ++s) {
    schedule_[offsets[levels_[s]]++] = s;
  }
}

std::uint64_t PackedLogicSim::pack_lanes(std::span<const bool> lanes) {
  std::uint64_t word = 0;
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    if (lanes[l]) word |= std::uint64_t{1} << l;
  }
  return word;
}

void PackedLogicSim::eval_into(std::span<const std::uint64_t> input_words,
                               std::vector<std::uint64_t>& values) const {
  const LogicNetwork& net = *net_;
  if (input_words.size() != net.num_inputs()) {
    throw std::invalid_argument(
        "PackedLogicSim::eval_into: input count mismatch");
  }
  values.assign(net.num_signals(), 0);
  std::uint64_t* val = values.data();
  for (const SignalId s : schedule_) {
    const auto g = net.gate(s);
    switch (g.op) {
      case GateOp::kInput:
        val[s] = input_words[g.a];
        break;
      case GateOp::kConst:
        val[s] = g.a != 0 ? ~std::uint64_t{0} : 0;
        break;
      case GateOp::kNot:
        val[s] = ~val[g.a];
        break;
      case GateOp::kAnd:
        val[s] = val[g.a] & val[g.b];
        break;
      case GateOp::kOr:
        val[s] = val[g.a] | val[g.b];
        break;
      case GateOp::kXor:
        val[s] = val[g.a] ^ val[g.b];
        break;
      case GateOp::kMux:
        val[s] = (val[g.a] & val[g.b]) | (~val[g.a] & val[g.c]);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// PackedCircuitSim
// ---------------------------------------------------------------------------

PackedCircuitSim::PackedCircuitSim(const SequentialCircuit& circuit)
    : circuit_(&circuit), sim_(circuit.net) {
  if (circuit.latches.size() > 63 || circuit.primary_inputs.size() > 63) {
    throw std::invalid_argument(
        "PackedCircuitSim: too many variables for packed 64-bit keys");
  }
  std::unordered_map<SignalId, std::uint32_t> latch_of, pi_of;
  for (std::size_t j = 0; j < circuit.latches.size(); ++j) {
    latch_of[circuit.latches[j].current] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t k = 0; k < circuit.primary_inputs.size(); ++k) {
    pi_of[circuit.primary_inputs[k]] = static_cast<std::uint32_t>(k);
  }
  const auto net_inputs = circuit.net.inputs();
  source_index_.reserve(net_inputs.size());
  is_latch_.reserve(net_inputs.size());
  for (const SignalId s : net_inputs) {
    if (const auto it = latch_of.find(s); it != latch_of.end()) {
      is_latch_.push_back(true);
      source_index_.push_back(it->second);
    } else if (const auto pit = pi_of.find(s); pit != pi_of.end()) {
      is_latch_.push_back(false);
      source_index_.push_back(pit->second);
    } else {
      throw std::invalid_argument(
          "PackedCircuitSim: network input is neither a latch nor a declared "
          "primary input");
    }
  }
}

std::uint64_t PackedCircuitSim::step(std::span<const std::uint64_t> states,
                                     std::span<const std::uint64_t> inputs,
                                     std::span<std::uint64_t> next,
                                     std::span<std::uint64_t> outputs) const {
  const std::size_t lanes = states.size();
  if (lanes > kLanes || inputs.size() != lanes || next.size() != lanes ||
      (!outputs.empty() && outputs.size() != lanes)) {
    throw std::invalid_argument("PackedCircuitSim::step: lane span mismatch");
  }
  if (!outputs.empty() && circuit_->outputs.size() > 63) {
    throw std::invalid_argument(
        "PackedCircuitSim::step: too many outputs for a packed 64-bit key");
  }
  // Transpose the per-lane keys into per-signal lane words: network input k
  // gets bit L from bit source_index_[k] of lane L's state or input key.
  input_words_.assign(source_index_.size(), 0);
  for (std::size_t k = 0; k < source_index_.size(); ++k) {
    const std::uint32_t bit = source_index_[k];
    std::uint64_t word = 0;
    if (is_latch_[k]) {
      for (std::size_t l = 0; l < lanes; ++l) {
        word |= ((states[l] >> bit) & 1u) << l;
      }
    } else {
      for (std::size_t l = 0; l < lanes; ++l) {
        word |= ((inputs[l] >> bit) & 1u) << l;
      }
    }
    input_words_[k] = word;
  }
  sim_.eval_into(input_words_, values_);

  const std::uint64_t lane_mask =
      lanes == kLanes ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
  const std::uint64_t valid =
      circuit_->valid.has_value()
          ? values_[*circuit_->valid] & lane_mask
          : lane_mask;

  // Transpose back: bit L of next-state signal j becomes bit j of next[L].
  for (std::size_t l = 0; l < lanes; ++l) next[l] = 0;
  for (std::size_t j = 0; j < circuit_->latches.size(); ++j) {
    const std::uint64_t word = values_[circuit_->latches[j].next];
    for (std::size_t l = 0; l < lanes; ++l) {
      next[l] |= ((word >> l) & 1u) << j;
    }
  }
  if (!outputs.empty()) {
    for (std::size_t l = 0; l < lanes; ++l) outputs[l] = 0;
    for (std::size_t j = 0; j < circuit_->outputs.size(); ++j) {
      const std::uint64_t word = values_[circuit_->outputs[j].second];
      for (std::size_t l = 0; l < lanes; ++l) {
        outputs[l] |= ((word >> l) & 1u) << j;
      }
    }
  }
  return valid;
}

}  // namespace simcov::sym
